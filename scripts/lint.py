#!/usr/bin/env python3
"""Repo policy lint: rules clang-tidy cannot express.

Run from anywhere; exits non-zero iff a violation is found:

    python3 scripts/lint.py [--root <repo>]

Enforced policy (see DESIGN.md "Correctness tooling & invariant policy"):

  no-exceptions   `throw` / `try` are banned in src/: every fallible
                  operation returns Status/Result (util/status.h), and the
                  build never relies on stack unwinding.
  no-naked-new    `new` / `malloc`-family calls are banned in src/ outside
                  the slab-arena machinery; ownership goes through
                  containers and std::make_unique. A deliberate exception
                  carries `// lint:allow(no-naked-new) <reason>`.
  no-ad-hoc-rng   `rand()` / `std::random_device` are banned everywhere
                  outside util/rng: benchmarks and tests must be
                  reproducible from a seed, and the library's generators
                  are deterministic by contract.
  no-cout         `std::cout` / `std::cerr` are banned in src/ library
                  code — including the serving layer (src/service/); the
                  library reports through Status and leaves I/O to callers
                  (bench/, examples/, tests/ may print).
  no-raw-sockets  raw POSIX socket/epoll/eventfd calls (socket, bind,
                  listen, accept, connect, close, epoll_*, eventfd, ...)
                  are banned everywhere except the src/service/net_io
                  wrapper pair, so fd lifetimes, EINTR handling, and
                  SIGPIPE suppression live in exactly one audited place.
                  A deliberate exception outside the wrappers carries
                  `// lint:allow(no-raw-sockets) <reason>`.
  no-raw-intrinsics
                  x86 SIMD intrinsics (`_mm*`, `__m128/256/512` vector
                  types, `<immintrin.h>`) are banned everywhere except the
                  src/core/sweep_backend* translation units, so every
                  target-specific code path sits behind the SweepBackend
                  seam with its runtime dispatch and scalar parity twin.
                  A deliberate exception carries
                  `// lint:allow(no-raw-intrinsics) <reason>`.
  no-raw-mutex    raw standard locking primitives (`std::mutex` and
                  friends, `std::lock_guard`/`std::unique_lock`/...,
                  `std::condition_variable[_any]`, and their headers) are
                  banned everywhere except the src/util/mutex.h wrappers,
                  so every lock in the tree carries Clang thread-safety
                  capability annotations (util/thread_annotations.h) and
                  `-Wthread-safety -Werror` sees the whole locking story.
                  A deliberate exception carries
                  `// lint:allow(no-raw-mutex) <reason>`.
  header-guards   every header uses a classic include guard named
                  FLOS_<PATH>_H_ (no #pragma once), matching its path so
                  moved files cannot silently collide.

Suppression: append `// lint:allow(<rule>)` to the offending line with a
reason. Suppressions are themselves counted and printed so they stay rare.
A `lint:allow` naming an unknown rule, or one that no longer suppresses
anything on its line, is itself a violation — suppressions cannot rot.
"""

import argparse
import pathlib
import re
import sys

LIBRARY_DIRS = ("src",)
ALL_DIRS = ("src", "bench", "tests", "examples")
HEADER_DIRS = ("src", "bench", "tests", "examples")

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z0-9-]+)\)")

# Rules as (name, regex, message). Regexes run on comment/string-stripped
# lines, so identifiers inside docs or log text never trip them.
TOKEN_RULES_LIBRARY = [
    (
        "no-exceptions",
        re.compile(r"(^|[^\w])(throw|try)\s*[\s({;]"),
        "exceptions are banned in src/; return Status/Result instead",
    ),
    (
        "no-naked-new",
        re.compile(r"(^|[^\w.:])new\s+[\w:<(]|(^|[^\w])(malloc|calloc|realloc|free)\s*\("),
        "naked allocation in src/; use containers/std::make_unique (or "
        "annotate a deliberate arena/singleton with lint:allow)",
    ),
    (
        "no-cout",
        re.compile(r"std::(cout|cerr)\b"),
        "library code must not print; return Status or take a sink",
    ),
]

TOKEN_RULES_EVERYWHERE = [
    (
        "no-ad-hoc-rng",
        re.compile(r"(^|[^\w])s?rand\s*\(|std::random_device\b"),
        "ad-hoc randomness; use util/rng (seeded, reproducible)",
    ),
]

# Applied everywhere EXCEPT src/service/net_io.{h,cc}, the one audited
# home for raw fd handling. The leading [^\w.:>] keeps method calls
# (conn.close(), ::close() inside the wrappers) and std::-qualified names
# from tripping; the lowercase names match only the POSIX C API.
TOKEN_RULES_SOCKETS = [
    (
        "no-raw-sockets",
        re.compile(
            r"(^|[^\w.:>])(socket|bind|listen|accept4?|connect|setsockopt|"
            r"getsockname|epoll_create1?|epoll_ctl|epoll_wait|eventfd|"
            r"recvfrom|sendto|recv|send|close|shutdown)\s*\("
        ),
        "raw POSIX socket/fd call; go through the service/net_io wrappers "
        "(UniqueFd, ListenTcp, Epoll, WakeFd) or annotate a deliberate "
        "exception with lint:allow(no-raw-sockets)",
    ),
]


# Applied everywhere EXCEPT src/util/mutex.h, the one header allowed to
# touch the standard locking primitives (it wraps them with thread-safety
# capability annotations). Catches the types, the RAII lockers, the
# condition variables, and the header includes, so an unannotated lock
# cannot enter the tree — the capability analysis only proves what it can
# see. <shared_mutex> has no wrapper yet; add an annotated one to
# util/mutex.h before reaching for it.
TOKEN_RULES_MUTEX = [
    (
        "no-raw-mutex",
        re.compile(
            r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
            r"recursive_timed_mutex|shared_timed_mutex|lock_guard|"
            r"unique_lock|scoped_lock|shared_lock|condition_variable_any|"
            r"condition_variable)\b|"
            r"#\s*include\s*<(mutex|shared_mutex|condition_variable)>"
        ),
        "raw standard mutex/lock/condvar; use the annotated flos::Mutex / "
        "MutexLock / CondVar wrappers (util/mutex.h) so the Clang "
        "thread-safety analysis sees the lock, or annotate a deliberate "
        "exception with lint:allow(no-raw-mutex)",
    ),
]


# Applied everywhere EXCEPT src/core/sweep_backend_avx2.cc, the one TU
# allowed to speak AVX2. Catches the intrinsic calls, the vector types,
# and the header include, so a second SIMD island cannot grow silently.
TOKEN_RULES_INTRINSICS = [
    (
        "no-raw-intrinsics",
        re.compile(
            r"(^|[^\w])_mm\d*_\w+\s*\(|__m(128|256|512)[a-z]*\b|"
            r"#\s*include\s*<(imm|emm|xmm|smm|avx)\w*intrin\.h>"
        ),
        "raw SIMD intrinsic; implement a SweepBackend in "
        "core/sweep_backend_avx2.cc (runtime-dispatched, scalar-paritied) "
        "or annotate a deliberate exception with "
        "lint:allow(no-raw-intrinsics)",
    ),
]


# Every rule name a lint:allow may legitimately reference (header-guards
# deliberately absent: structural guard violations have no escape hatch).
KNOWN_RULES = frozenset(
    name
    for rules in (TOKEN_RULES_LIBRARY, TOKEN_RULES_EVERYWHERE,
                  TOKEN_RULES_SOCKETS, TOKEN_RULES_INTRINSICS,
                  TOKEN_RULES_MUTEX)
    for name, _, _ in rules
)


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line
    structure so reported line numbers stay correct. Suppression comments
    are honored BEFORE stripping (see lint_file)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def expected_guard(path: pathlib.Path, root: pathlib.Path) -> str:
    rel = path.relative_to(root)
    parts = list(rel.parts)
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    return "FLOS_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_"


def check_header_guard(path, root, text, findings):
    if "#pragma once" in text:
        findings.append((path, text[: text.index("#pragma once")].count("\n") + 1,
                         "header-guards",
                         "#pragma once is banned; use a FLOS_*_H_ guard"))
    guard = expected_guard(path, root)
    ifndef = re.search(r"^#ifndef\s+(\S+)\s*$", text, re.MULTILINE)
    if ifndef is None:
        findings.append((path, 1, "header-guards", f"missing include guard {guard}"))
        return
    line = text[: ifndef.start()].count("\n") + 1
    if ifndef.group(1) != guard:
        findings.append((path, line, "header-guards",
                         f"guard {ifndef.group(1)} should be {guard}"))
        return
    if not re.search(r"^#define\s+" + re.escape(guard) + r"\s*$", text, re.MULTILINE):
        findings.append((path, line, "header-guards",
                         f"#ifndef {guard} without matching #define"))
    if not re.search(r"#endif\s*//\s*" + re.escape(guard), text):
        findings.append((path, len(text.splitlines()), "header-guards",
                         f"closing #endif should carry `// {guard}`"))


def lint_file(path, root, findings, suppressions):
    text = path.read_text(encoding="utf-8")
    raw_lines = text.splitlines()
    allow = {}  # line number -> set of rule names
    for ln, raw in enumerate(raw_lines, 1):
        for m in ALLOW_RE.finditer(raw):
            allow.setdefault(ln, set()).add(m.group(1))

    rel_root = path.relative_to(root).parts[0]
    in_library = rel_root in LIBRARY_DIRS and "util/rng" not in path.as_posix()

    rules = []
    if rel_root in LIBRARY_DIRS:
        rules += TOKEN_RULES_LIBRARY
    if "util/rng" not in path.as_posix():
        rules += TOKEN_RULES_EVERYWHERE
    if "service/net_io" not in path.as_posix():
        rules += TOKEN_RULES_SOCKETS
    if "core/sweep_backend" not in path.as_posix():
        rules += TOKEN_RULES_INTRINSICS
    if "util/mutex" not in path.as_posix():
        rules += TOKEN_RULES_MUTEX

    consumed = set()  # (line, rule) pairs whose lint:allow suppressed a hit
    stripped = strip_comments_and_strings(text).splitlines()
    for ln, line in enumerate(stripped, 1):
        for name, rx, msg in rules:
            if not rx.search(line):
                continue
            if name in allow.get(ln, ()):
                consumed.add((ln, name))
                suppressions.append((path, ln, name))
                continue
            findings.append((path, ln, name, msg))

    # A suppression must name a real rule AND actually suppress something;
    # otherwise the tag is noise that would hide a future regression.
    for ln, names in sorted(allow.items()):
        for name in sorted(names):
            if name not in KNOWN_RULES:
                findings.append((path, ln, "lint-allow",
                                 f"unknown rule '{name}' in lint:allow "
                                 f"(known: {', '.join(sorted(KNOWN_RULES))})"))
            elif (ln, name) not in consumed:
                findings.append((path, ln, "lint-allow",
                                 f"stale suppression: lint:allow({name}) "
                                 "matches nothing on this line; delete it"))

    if path.suffix == ".h" and rel_root in HEADER_DIRS:
        check_header_guard(path, root, text, findings)
    return in_library


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    args = parser.parse_args()
    root = pathlib.Path(args.root) if args.root else pathlib.Path(
        __file__).resolve().parent.parent

    files = []
    for top in ALL_DIRS:
        base = root / top
        if base.is_dir():
            files += sorted(p for p in base.rglob("*")
                            if p.suffix in (".h", ".cc", ".cpp") and p.is_file())

    findings, suppressions = [], []
    for path in files:
        lint_file(path, root, findings, suppressions)

    for path, ln, name, msg in findings:
        print(f"{path.relative_to(root)}:{ln}: [{name}] {msg}")
    if suppressions:
        print(f"-- {len(suppressions)} suppression(s) in effect:")
        for path, ln, name in suppressions:
            print(f"   {path.relative_to(root)}:{ln}: lint:allow({name})")
    print(f"lint: {len(files)} files, {len(findings)} violation(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
