// Common result type for the state-of-the-art comparison methods (paper
// Table 5). Each baseline answers a top-k proximity query; `exact` records
// whether the method guarantees exactness (GI, NN_EI, Castanet, K-dash) or
// is approximate (DNE, LS_*, GE).

#ifndef FLOS_BASELINES_BASELINE_H_
#define FLOS_BASELINES_BASELINE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace flos {

/// Answer of a baseline top-k query.
struct TopKAnswer {
  std::vector<NodeId> nodes;    ///< top-k, closest first
  std::vector<double> scores;   ///< parallel to nodes, measure units
  bool exact = false;           ///< method-level exactness guarantee
  uint64_t touched_nodes = 0;   ///< nodes the method inspected (if local)
};

}  // namespace flos

#endif  // FLOS_BASELINES_BASELINE_H_
