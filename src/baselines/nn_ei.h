// NN_EI: exact local top-k search for effective importance (paper Table 5,
// Bogdanov & Singh [3]), built on the push style of Berkhin's
// bookmark-coloring algorithm [2].
//
// Works on the PHP-form system r = alpha T r + e_q (EI is a positive
// multiple of PHP, Theorem 2, so the ranking is EI's). State: estimates x
// and residuals rho with the invariant r = x + (I - alpha T)^{-1} rho.
// Pushing node u moves rho_u into x_u and spreads alpha p_iu rho_u to u's
// neighbors. Because residuals stay non-negative, x is a monotone lower
// bound and x_i + max(rho)/(1 - alpha) is an upper bound, which yields an
// exact termination test for the top-k.

#ifndef FLOS_BASELINES_NN_EI_H_
#define FLOS_BASELINES_NN_EI_H_

#include "baselines/baseline.h"
#include "graph/accessor.h"
#include "util/status.h"

namespace flos {

struct NnEiOptions {
  /// Restart probability of EI; the push system uses alpha = 1 - c.
  double c = 0.5;
  /// Stop pushing when the largest residual falls below this floor even if
  /// the top-k gap has not closed (guards score ties).
  double residual_floor = 1e-12;
  /// Push budget. The residual-based certificate is much looser than
  /// FLoS's bounds, and on queries whose k-th gap is tiny the push count
  /// explodes; past the budget the method returns its current best with
  /// `exact == false`.
  uint64_t max_pushes = 2000000;
  /// How often (in pushes) the exact termination test runs.
  uint32_t check_interval = 64;
};

/// Runs NN_EI. Returns the exact top-k ranking under EI (scores are in the
/// internal PHP-form scale).
Result<TopKAnswer> NnEiTopK(GraphAccessor* accessor, NodeId query, int k,
                            const NnEiOptions& options);

}  // namespace flos

#endif  // FLOS_BASELINES_NN_EI_H_
