// GI: global iteration baseline (paper Table 5, [16]).
//
// Runs Algorithm 7 (power-style fixed-point iteration) over the ENTIRE
// graph until the update norm drops below tau, then scans for the top-k.
// Exact (up to tau) for every measure; this is the method FLoS is
// benchmarked against in Figures 7, 8, 10, 11, 12.

#ifndef FLOS_BASELINES_GI_H_
#define FLOS_BASELINES_GI_H_

#include "baselines/baseline.h"
#include "graph/graph.h"
#include "measures/measure.h"
#include "util/status.h"

namespace flos {

struct GiOptions {
  Measure measure = Measure::kPhp;
  MeasureParams params;
  /// Iteration threshold tau; the paper's experiments use 1e-5.
  double tolerance = 1e-5;
  uint32_t max_iterations = 10000;
};

/// Runs global iteration and returns the top-k nodes for `query`.
Result<TopKAnswer> GiTopK(const Graph& graph, NodeId query, int k,
                          const GiOptions& options);

}  // namespace flos

#endif  // FLOS_BASELINES_GI_H_
