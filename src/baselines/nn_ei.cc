#include "baselines/nn_ei.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <vector>

namespace flos {

namespace {

struct HeapEntry {
  double rho;
  NodeId node;
  bool operator<(const HeapEntry& other) const { return rho < other.rho; }
};

}  // namespace

Result<TopKAnswer> NnEiTopK(GraphAccessor* accessor, NodeId query, int k,
                            const NnEiOptions& options) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (query >= accessor->NumNodes()) {
    return Status::OutOfRange("query out of range");
  }
  const double alpha = 1.0 - options.c;
  if (!(alpha > 0) || !(alpha < 1)) {
    return Status::InvalidArgument("c must be in (0, 1)");
  }

  std::unordered_map<NodeId, double> x;      // estimates (lower bounds)
  std::unordered_map<NodeId, double> rho;    // residuals
  std::unordered_map<NodeId, std::vector<Neighbor>> adjacency;
  std::unordered_map<NodeId, double> degree;
  std::priority_queue<HeapEntry> heap;

  const auto fetch = [&](NodeId u) -> Status {
    if (adjacency.count(u)) return Status::OK();
    std::vector<Neighbor> nbs;
    FLOS_RETURN_IF_ERROR(accessor->CopyNeighbors(u, &nbs));
    double w = 0;
    for (const Neighbor& nb : nbs) w += nb.weight;
    degree[u] = w;
    adjacency.emplace(u, std::move(nbs));
    return Status::OK();
  };

  rho[query] = 1.0;
  heap.push({1.0, query});

  uint64_t pushes = 0;
  const double slack_factor = 1.0 / (1.0 - alpha);

  const auto terminated = [&]() -> bool {
    // Exact test: the k-th best lower bound must dominate every other
    // node's upper bound x_i + rho_max / (1 - alpha) (0 for undiscovered).
    double rho_max = 0;
    for (const auto& [node, r] : rho) {
      (void)node;
      rho_max = std::max(rho_max, r);
    }
    const double slack = rho_max * slack_factor;
    std::vector<double> lowers;
    std::vector<std::pair<double, NodeId>> entries;
    entries.reserve(x.size());
    for (const auto& [node, value] : x) {
      if (node != query) entries.push_back({value, node});
    }
    if (entries.size() < static_cast<size_t>(k)) return false;
    std::nth_element(entries.begin(), entries.begin() + (k - 1), entries.end(),
                     [](const auto& a, const auto& b) { return a.first > b.first; });
    const double kth = entries[k - 1].first;
    double best_other = 0;  // undiscovered nodes have x = 0
    for (size_t i = k; i < entries.size(); ++i) {
      best_other = std::max(best_other, entries[i].first);
    }
    return kth >= best_other + slack;
  };

  bool certified = false;
  while (!heap.empty()) {
    if (pushes >= options.max_pushes) break;  // budget: approximate answer
    const HeapEntry top = heap.top();
    heap.pop();
    const auto it = rho.find(top.node);
    if (it == rho.end() || it->second != top.rho) continue;  // stale
    if (top.rho < options.residual_floor) {
      certified = true;
      break;
    }

    const NodeId u = top.node;
    const double mass = it->second;
    it->second = 0;
    x[u] += mass;
    FLOS_RETURN_IF_ERROR(fetch(u));
    for (const Neighbor& nb : adjacency[u]) {
      if (nb.id == query) continue;  // row q of T is zero: q never receives
      // Degree probe only; the neighbor's adjacency is fetched lazily when
      // (and if) it is itself pushed.
      auto deg_it = degree.find(nb.id);
      if (deg_it == degree.end()) {
        deg_it = degree.emplace(nb.id, accessor->WeightedDegree(nb.id)).first;
      }
      const double w_i = deg_it->second;
      if (w_i <= 0) continue;
      const double add = alpha * (nb.weight / w_i) * mass;
      double& r = rho[nb.id];
      r += add;
      heap.push({r, nb.id});
    }
    ++pushes;
    if (pushes % options.check_interval == 0 && terminated()) {
      certified = true;
      break;
    }
  }
  if (heap.empty()) certified = true;  // all residual mass consumed

  TopKAnswer answer;
  std::vector<std::pair<double, NodeId>> entries;
  for (const auto& [node, value] : x) {
    if (node != query) entries.push_back({value, node});
  }
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  const auto kk = std::min<size_t>(k, entries.size());
  for (size_t i = 0; i < kk; ++i) {
    answer.nodes.push_back(entries[i].second);
    answer.scores.push_back(entries[i].first);
  }
  answer.exact = certified;
  answer.touched_nodes = adjacency.size();
  return answer;
}

}  // namespace flos
