// GE: graph-embedding baseline for RWR (paper Table 5, Zhao et al.
// VLDB'13 [22]).
//
// Embedding: pick L landmark nodes (highest degree, the strategy that best
// preserves random-walk mass) and compute each landmark's full RWR vector
// by global iteration — the expensive step the paper reports as infeasible
// for large graphs. The degree-normalized kernel K(i, j) = RWR_i(j) / w_j
// (effective importance) is symmetric, so the landmark rows support a
// Nystrom low-rank reconstruction:
//
//   K(q, i) ~= k_q^T  W^+  k_i,
//
// where k_x is x's vector of landmark proximities and W the landmark-by-
// landmark Gram block (ridge-regularized). Query: assemble q's coordinates
// from the stored rows, combine, and scan for the top-k. Constant-ish
// query time, approximate results — exactly the trade-off the paper
// measures.

#ifndef FLOS_BASELINES_GE_EMBED_H_
#define FLOS_BASELINES_GE_EMBED_H_

#include <cstdint>
#include <vector>

#include "baselines/baseline.h"
#include "graph/graph.h"
#include "util/status.h"

namespace flos {

struct GeOptions {
  /// Restart probability of RWR.
  double c = 0.5;
  /// Number of landmarks (embedding dimensionality).
  uint32_t num_landmarks = 16;
  /// Tolerance for the per-landmark global iterations.
  double tolerance = 1e-6;
  /// Ridge added to the landmark Gram block before inversion.
  double ridge = 1e-9;
  uint64_t seed = 1;
};

/// Precomputed landmark embedding; build once, query many times.
class GeEmbedding {
 public:
  /// Runs the embedding step (num_landmarks full global iterations).
  static Result<GeEmbedding> Build(const Graph* graph, const GeOptions& options);

  /// Approximate top-k RWR for `query`.
  Result<TopKAnswer> Query(NodeId query, int k) const;

  uint32_t num_landmarks() const {
    return static_cast<uint32_t>(landmarks_.size());
  }

 private:
  const Graph* graph_ = nullptr;
  GeOptions options_;
  std::vector<NodeId> landmarks_;
  /// ei_rows_[l][i] = K(landmark_l, i) = RWR_l(i) / w_i (symmetric kernel).
  std::vector<std::vector<double>> ei_rows_;
  /// Inverse (ridge-regularized) of the landmark Gram block W.
  std::vector<std::vector<double>> w_inverse_;
};

}  // namespace flos

#endif  // FLOS_BASELINES_GE_EMBED_H_
