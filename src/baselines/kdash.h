// K-dash: precomputation-based exact RWR top-k (paper Table 5, Fujiwara et
// al. VLDB'12 [8]).
//
// Build time: factor A = I - (1-c) P^T once with a sparse LU after an RCM
// reordering (the fill-reducing step standing in for K-dash's ordering
// strategies). Query time: one forward/backward substitution and a top-k
// scan — the fastest per-query method, at the cost of a precomputation that
// is infeasible for large graphs (the paper could only run K-dash on its
// two medium datasets; our factorization likewise refuses to exceed a fill
// budget and reports ResourceExhausted).

#ifndef FLOS_BASELINES_KDASH_H_
#define FLOS_BASELINES_KDASH_H_

#include <cstdint>
#include <vector>

#include "baselines/baseline.h"
#include "graph/graph.h"
#include "linalg/lu.h"
#include "util/status.h"

namespace flos {

struct KdashOptions {
  /// Restart probability of RWR.
  double c = 0.5;
  /// Factorization abort threshold (total stored L+U entries).
  uint64_t max_fill_entries = 200000000;
};

/// Precomputed factorization; build once, query many times.
class KdashIndex {
 public:
  /// Factors the RWR system for `graph` (not owned; must outlive the index).
  static Result<KdashIndex> Build(const Graph* graph,
                                  const KdashOptions& options);

  /// Exact top-k RWR for `query`.
  Result<TopKAnswer> Query(NodeId query, int k) const;

  uint64_t fill_entries() const { return lu_.FillEntries(); }

 private:
  const Graph* graph_ = nullptr;
  KdashOptions options_;
  std::vector<NodeId> perm_;     // new -> old
  std::vector<NodeId> inverse_;  // old -> new
  SparseLu lu_;
};

}  // namespace flos

#endif  // FLOS_BASELINES_KDASH_H_
