#include "baselines/castanet.h"

#include <algorithm>
#include <vector>

namespace flos {

Result<TopKAnswer> CastanetTopK(const Graph& graph, NodeId query, int k,
                                const CastanetOptions& options) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (query >= graph.NumNodes()) return Status::OutOfRange("query out of range");
  const double c = options.c;
  if (!(c > 0) || !(c < 1)) return Status::InvalidArgument("c must be in (0,1)");

  const uint64_t n = graph.NumNodes();
  // walk[i] = probability an l-step walk from q ends at i (support list kept
  // alongside, so early iterations touch only the explored ball).
  std::vector<double> walk(n, 0.0);
  std::vector<double> next(n, 0.0);
  std::vector<double> lower(n, 0.0);  // partial Neumann sums (lower bounds)
  std::vector<bool> in_next(n, false);
  std::vector<bool> is_reached(n, false);
  std::vector<NodeId> walk_support = {query};
  std::vector<NodeId> next_support;
  std::vector<NodeId> reached = {query};

  walk[query] = 1.0;
  lower[query] = c;  // l = 0 term
  is_reached[query] = true;
  double remaining = 1.0 - c;  // upper_i - lower_i after each level
  uint64_t touched = 1;

  const auto make_answer = [&](size_t count) {
    std::vector<std::pair<double, NodeId>> entries;
    for (const NodeId i : reached) {
      if (i != query) entries.push_back({lower[i], i});
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    if (entries.size() > count) entries.resize(count);
    TopKAnswer answer;
    for (const auto& [score, node] : entries) {
      answer.nodes.push_back(node);
      answer.scores.push_back(score);
    }
    answer.exact = true;
    answer.touched_nodes = touched;
    return answer;
  };

  for (uint32_t it = 0; it < options.max_iterations; ++it) {
    // One level: next = P^T walk.
    next_support.clear();
    for (const NodeId u : walk_support) {
      const double pu = walk[u];
      const auto ids = graph.NeighborIds(u);
      const auto ws = graph.NeighborWeights(u);
      const double wu = graph.WeightedDegree(u);
      for (size_t e = 0; e < ids.size(); ++e) {
        const NodeId v = ids[e];
        if (!in_next[v]) {
          in_next[v] = true;
          next_support.push_back(v);
        }
        next[v] += ws[e] / wu * pu;
      }
    }
    for (const NodeId u : walk_support) walk[u] = 0;

    const double coeff = c * remaining;  // c (1-c)^{level}
    for (const NodeId v : next_support) {
      lower[v] += coeff * next[v];
      walk[v] = next[v];
      next[v] = 0;
      in_next[v] = false;
      if (!is_reached[v]) {
        is_reached[v] = true;
        reached.push_back(v);
      }
    }
    walk_support.swap(next_support);
    remaining *= (1.0 - c);
    touched = std::max<uint64_t>(touched, reached.size());

    // Certification: upper_i = lower_i + remaining for EVERY node (reached
    // or not), so the top-k is final once the k-th lower bound clears the
    // best competing lower bound by `remaining`.
    std::vector<double> lowers;
    lowers.reserve(reached.size());
    for (const NodeId i : reached) {
      if (i != query) lowers.push_back(lower[i]);
    }
    if (lowers.size() >= static_cast<size_t>(k)) {
      std::nth_element(lowers.begin(), lowers.begin() + (k - 1), lowers.end(),
                       std::greater<double>());
      const double kth = lowers[k - 1];
      double best_other = 0;  // unreached nodes have lower = 0
      for (size_t i = k; i < lowers.size(); ++i) {
        best_other = std::max(best_other, lowers[i]);
      }
      if (kth >= best_other + remaining || remaining < options.mass_floor) {
        return make_answer(k);
      }
    } else if (remaining < options.mass_floor || walk_support.empty()) {
      // Fewer than k reachable nodes: return them all.
      return make_answer(lowers.size());
    }
  }
  return Status::Internal("Castanet did not converge");
}

}  // namespace flos
