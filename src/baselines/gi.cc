#include "baselines/gi.h"

#include "measures/exact.h"

namespace flos {

Result<TopKAnswer> GiTopK(const Graph& graph, NodeId query, int k,
                          const GiOptions& options) {
  ExactSolveOptions solve;
  solve.tolerance = options.tolerance;
  solve.max_iterations = options.max_iterations;
  FLOS_ASSIGN_OR_RETURN(
      const std::vector<double> scores,
      ExactMeasure(graph, query, options.measure, options.params, solve));
  TopKAnswer answer;
  answer.nodes = TopKFromScores(scores, query, k,
                                MeasureDirection(options.measure));
  answer.scores.reserve(answer.nodes.size());
  for (const NodeId n : answer.nodes) answer.scores.push_back(scores[n]);
  answer.exact = true;
  answer.touched_nodes = graph.NumNodes();
  return answer;
}

}  // namespace flos
