// LS_EI / LS_RWR: approximate local search with clustering preprocessing
// (paper Table 5, Sarkar & Moore KDD'10 [18]).
//
// Preprocessing partitions the graph into bounded-size clusters (the paper
// reports "tens of hours" for its clustering; we use cheap BFS-grown
// clusters, which preserves the query-time behaviour the paper measures:
// constant-time approximate answers computed within the query's cluster).
// A query runs the measure's iteration restricted to the cluster subgraph
// and returns the top-k among cluster members.

#ifndef FLOS_BASELINES_LS_PUSH_H_
#define FLOS_BASELINES_LS_PUSH_H_

#include <cstdint>
#include <vector>

#include "baselines/baseline.h"
#include "graph/graph.h"
#include "measures/measure.h"
#include "util/status.h"

namespace flos {

struct LsPushOptions {
  /// Maximum nodes per cluster.
  uint32_t cluster_size = 4000;
  /// Measure iteration settings at query time.
  double tolerance = 1e-5;
  uint32_t max_iterations = 1000;
};

/// Precomputed clustering; build once per graph, query many times.
class LsPushIndex {
 public:
  /// Partitions `graph` (not owned; must outlive the index).
  static Result<LsPushIndex> Build(const Graph* graph,
                                   const LsPushOptions& options);

  /// Approximate top-k for `measure` (EI or RWR in the paper; any measure
  /// works) within the query's cluster.
  Result<TopKAnswer> Query(NodeId query, int k, Measure measure,
                           const MeasureParams& params) const;

  uint32_t num_clusters() const { return num_clusters_; }
  /// Preprocessing cost proxy: total nodes assigned (== |V|).
  uint64_t preprocessed_nodes() const { return node_cluster_.size(); }

 private:
  const Graph* graph_ = nullptr;
  LsPushOptions options_;
  std::vector<uint32_t> node_cluster_;
  std::vector<std::vector<NodeId>> cluster_nodes_;
  uint32_t num_clusters_ = 0;
};

}  // namespace flos

#endif  // FLOS_BASELINES_LS_PUSH_H_
