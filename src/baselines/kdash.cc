#include "baselines/kdash.h"

#include <algorithm>

#include "linalg/csr_matrix.h"
#include "linalg/rcm.h"
#include "measures/exact.h"

namespace flos {

Result<KdashIndex> KdashIndex::Build(const Graph* graph,
                                     const KdashOptions& options) {
  if (graph == nullptr) return Status::InvalidArgument("null graph");
  const double c = options.c;
  if (!(c > 0) || !(c < 1)) return Status::InvalidArgument("c must be in (0,1)");
  KdashIndex index;
  index.graph_ = graph;
  index.options_ = options;
  index.perm_ = ReverseCuthillMckee(*graph);
  index.inverse_ = InvertPermutation(index.perm_);

  // A = I - (1-c) P^T in the RCM-permuted order.
  const auto n = static_cast<uint32_t>(graph->NumNodes());
  std::vector<Triplet> triplets;
  triplets.reserve(graph->NumDirectedEdges() + n);
  for (uint32_t new_i = 0; new_i < n; ++new_i) {
    triplets.push_back({new_i, new_i, 1.0});
    const NodeId old_i = index.perm_[new_i];
    const auto ids = graph->NeighborIds(old_i);
    const auto ws = graph->NeighborWeights(old_i);
    for (size_t e = 0; e < ids.size(); ++e) {
      // (P^T)_{i,j} = p_{j,i} = w_ij / w_j.
      const double wj = graph->WeightedDegree(ids[e]);
      triplets.push_back(
          {new_i, index.inverse_[ids[e]], -(1.0 - c) * ws[e] / wj});
    }
  }
  FLOS_ASSIGN_OR_RETURN(const CsrMatrix a,
                        CsrMatrix::FromTriplets(n, n, std::move(triplets)));
  FLOS_ASSIGN_OR_RETURN(index.lu_,
                        SparseLu::Factor(a, options.max_fill_entries));
  return index;
}

Result<TopKAnswer> KdashIndex::Query(NodeId query, int k) const {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (query >= graph_->NumNodes()) {
    return Status::OutOfRange("query out of range");
  }
  const auto n = static_cast<uint32_t>(graph_->NumNodes());
  std::vector<double> b(n, 0.0);
  b[inverse_[query]] = options_.c;
  std::vector<double> x;
  FLOS_RETURN_IF_ERROR(lu_.Solve(b, &x));
  // Un-permute into node-id order.
  std::vector<double> scores(n, 0.0);
  for (uint32_t new_i = 0; new_i < n; ++new_i) scores[perm_[new_i]] = x[new_i];
  TopKAnswer answer;
  answer.nodes = TopKFromScores(scores, query, k, Direction::kMaximize);
  for (const NodeId node : answer.nodes) answer.scores.push_back(scores[node]);
  answer.exact = true;
  answer.touched_nodes = n;
  return answer;
}

}  // namespace flos
