#include "baselines/ls_push.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "measures/exact.h"

namespace flos {

Result<LsPushIndex> LsPushIndex::Build(const Graph* graph,
                                       const LsPushOptions& options) {
  if (graph == nullptr) return Status::InvalidArgument("null graph");
  if (options.cluster_size < 2) {
    return Status::InvalidArgument("cluster_size must be >= 2");
  }
  LsPushIndex index;
  index.graph_ = graph;
  index.options_ = options;
  const uint64_t n = graph->NumNodes();
  index.node_cluster_.assign(n, static_cast<uint32_t>(-1));

  // BFS-grown clusters: repeatedly seed at the lowest unassigned node and
  // absorb unassigned neighbors breadth-first up to the size cap.
  std::deque<NodeId> queue;
  for (uint64_t seed = 0; seed < n; ++seed) {
    if (index.node_cluster_[seed] != static_cast<uint32_t>(-1)) continue;
    const uint32_t cid = index.num_clusters_++;
    index.cluster_nodes_.emplace_back();
    auto& members = index.cluster_nodes_.back();
    queue.clear();
    queue.push_back(static_cast<NodeId>(seed));
    index.node_cluster_[seed] = cid;
    members.push_back(static_cast<NodeId>(seed));
    while (!queue.empty() && members.size() < options.cluster_size) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (const NodeId v : graph->NeighborIds(u)) {
        if (index.node_cluster_[v] != static_cast<uint32_t>(-1)) continue;
        if (members.size() >= options.cluster_size) break;
        index.node_cluster_[v] = cid;
        members.push_back(v);
        queue.push_back(v);
      }
    }
  }
  return index;
}

Result<TopKAnswer> LsPushIndex::Query(NodeId query, int k, Measure measure,
                                      const MeasureParams& params) const {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (query >= graph_->NumNodes()) {
    return Status::OutOfRange("query out of range");
  }
  const uint32_t cid = node_cluster_[query];
  const std::vector<NodeId>& members = cluster_nodes_[cid];

  // Build the cluster-induced subgraph with local ids. A hash map keeps the
  // query cost proportional to the cluster, not to |V|.
  std::unordered_map<NodeId, NodeId> local_ids;
  local_ids.reserve(members.size() * 2);
  for (size_t i = 0; i < members.size(); ++i) {
    local_ids.emplace(members[i], static_cast<NodeId>(i));
  }
  const auto local_of_global = [&](NodeId g) {
    const auto it = local_ids.find(g);
    return it == local_ids.end() ? kInvalidNode : it->second;
  };
  GraphBuilder::Options builder_options;
  builder_options.num_nodes = static_cast<int64_t>(members.size());
  GraphBuilder builder(builder_options);
  for (size_t i = 0; i < members.size(); ++i) {
    const NodeId u = members[i];
    const auto ids = graph_->NeighborIds(u);
    const auto ws = graph_->NeighborWeights(u);
    for (size_t e = 0; e < ids.size(); ++e) {
      const NodeId lv = local_of_global(ids[e]);
      if (lv == kInvalidNode || lv <= i) continue;  // outside or already added
      FLOS_RETURN_IF_ERROR(builder.AddEdge(static_cast<NodeId>(i), lv, ws[e]));
    }
  }
  FLOS_ASSIGN_OR_RETURN(const Graph sub, std::move(builder).Build());

  ExactSolveOptions solve;
  solve.tolerance = options_.tolerance;
  solve.max_iterations = options_.max_iterations;
  FLOS_ASSIGN_OR_RETURN(
      const std::vector<double> scores,
      ExactMeasure(sub, local_of_global(query), measure, params, solve));
  const std::vector<NodeId> local_top = TopKFromScores(
      scores, local_of_global(query), k, MeasureDirection(measure));

  TopKAnswer answer;
  for (const NodeId lt : local_top) {
    answer.nodes.push_back(members[lt]);
    answer.scores.push_back(scores[lt]);
  }
  answer.exact = false;
  answer.touched_nodes = members.size();
  return answer;
}

}  // namespace flos
