#include "baselines/dne.h"

#include <algorithm>

#include "core/local_graph.h"
#include "core/unified_bound_engine.h"

namespace flos {

Result<TopKAnswer> DneTopK(GraphAccessor* accessor, NodeId query, int k,
                           const DneOptions& options) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  LocalGraph local(accessor);
  FLOS_RETURN_IF_ERROR(local.Init(query));

  // Estimate PHP on the visited subgraph: this is exactly the
  // deleted-transition (lower bound) system without tightening.
  UnifiedBoundOptions be;
  be.traits.family = BoundFamily::kFixedPoint;
  be.traits.alpha = options.c;
  be.tolerance = options.tolerance;
  be.max_inner_iterations = options.max_inner_iterations;
  be.self_loop_tightening = false;
  UnifiedBoundEngine engine(&local, be);
  const LocalId q_local = local.LocalIndex(query);

  while (local.Size() < options.node_budget) {
    LocalId best = kInvalidLocal;
    double best_score = -1;
    for (LocalId i = 0; i < local.Size(); ++i) {
      if (!local.IsBoundary(i)) continue;
      if (engine.lower(i) > best_score) {
        best = i;
        best_score = engine.lower(i);
      }
    }
    if (best == kInvalidLocal) break;  // component exhausted
    FLOS_ASSIGN_OR_RETURN(const uint32_t added, local.Expand(best));
    (void)added;
    engine.OnGrowth();
    engine.UpdateLowerOnly();
  }

  std::vector<LocalId> ids;
  for (LocalId i = 0; i < local.Size(); ++i) {
    if (i != q_local) ids.push_back(i);
  }
  const auto kk = std::min<size_t>(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + kk, ids.end(),
                    [&](LocalId a, LocalId b) {
                      if (engine.lower(a) != engine.lower(b)) {
                        return engine.lower(a) > engine.lower(b);
                      }
                      return local.GlobalId(a) < local.GlobalId(b);
                    });
  TopKAnswer answer;
  for (size_t i = 0; i < kk; ++i) {
    answer.nodes.push_back(local.GlobalId(ids[i]));
    answer.scores.push_back(engine.lower(ids[i]));
  }
  answer.exact = false;
  answer.touched_nodes = local.Size();
  return answer;
}

}  // namespace flos
