#include "baselines/ls_tht.h"

#include <algorithm>
#include <vector>

#include "core/local_graph.h"
#include "core/unified_bound_engine.h"

namespace flos {

Result<TopKAnswer> LsThtTopK(GraphAccessor* accessor, NodeId query, int k,
                             const LsThtOptions& options) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (options.length < 1) return Status::InvalidArgument("length must be >= 1");
  LocalGraph local(accessor);
  FLOS_RETURN_IF_ERROR(local.Init(query));
  UnifiedBoundOptions be;
  be.traits.family = BoundFamily::kHorizonDp;
  be.traits.horizon = options.length;
  UnifiedBoundEngine engine(&local, be);
  const LocalId q_local = local.LocalIndex(query);

  const auto approx_done = [&]() -> bool {
    std::vector<LocalId> ids;
    for (LocalId i = 0; i < local.Size(); ++i) {
      if (i != q_local) ids.push_back(i);
    }
    if (ids.size() < static_cast<size_t>(k)) return false;
    std::nth_element(ids.begin(), ids.begin() + (k - 1), ids.end(),
                     [&](LocalId a, LocalId b) {
                       return engine.upper(a) < engine.upper(b);
                     });
    double kth = 0;
    for (int i = 0; i < k; ++i) kth = std::max(kth, engine.upper(ids[i]));
    double best_other = static_cast<double>(options.length);
    for (size_t i = k; i < ids.size(); ++i) {
      best_other = std::min(best_other, engine.lower(ids[i]));
    }
    return kth <= best_other + options.epsilon;
  };

  while (local.Size() < options.node_budget) {
    // Grow the ball one hop: expand every current boundary node.
    std::vector<LocalId> ring;
    for (LocalId i = 0; i < local.Size(); ++i) {
      if (local.IsBoundary(i)) ring.push_back(i);
    }
    if (ring.empty()) break;  // component exhausted
    for (const LocalId u : ring) {
      FLOS_ASSIGN_OR_RETURN(const uint32_t added, local.Expand(u));
      (void)added;
      if (local.Size() >= options.node_budget) break;
    }
    engine.OnGrowth();
    engine.UpdateBounds();
    if (approx_done()) break;
  }

  // Rank by the pessimistic (upper) bound, as the selection step does: the
  // optimistic DP is uniformly loose for ball-boundary nodes (every escaped
  // walk looks like an instant hit), so midpoints misrank; the pessimistic
  // value orders near nodes faithfully.
  std::vector<LocalId> ids;
  for (LocalId i = 0; i < local.Size(); ++i) {
    if (i != q_local) ids.push_back(i);
  }
  const auto kk = std::min<size_t>(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + kk, ids.end(),
                    [&](LocalId a, LocalId b) {
                      if (engine.upper(a) != engine.upper(b)) {
                        return engine.upper(a) < engine.upper(b);
                      }
                      return local.GlobalId(a) < local.GlobalId(b);
                    });
  TopKAnswer answer;
  for (size_t i = 0; i < kk; ++i) {
    answer.nodes.push_back(local.GlobalId(ids[i]));
    answer.scores.push_back(engine.upper(ids[i]));
  }
  answer.exact = false;
  answer.touched_nodes = local.Size();
  return answer;
}

}  // namespace flos
