// LS_THT: approximate local search for truncated hitting time (paper
// Table 5, Sarkar & Moore UAI'07 [17]).
//
// Grows a BFS ball around the query one hop at a time; within the ball,
// optimistic and pessimistic THT values are computed by the same L-step DP
// bounds FLoS uses (walks leaving the ball contribute 0 / the maximal
// remaining horizon). The search stops when the k-th pessimistic value beats
// every other optimistic value by the approximation slack epsilon, or when
// the node budget is exhausted — hence approximate, unlike FLoS_THT whose
// expansion is guided and whose termination has no slack.

#ifndef FLOS_BASELINES_LS_THT_H_
#define FLOS_BASELINES_LS_THT_H_

#include "baselines/baseline.h"
#include "graph/accessor.h"
#include "util/status.h"

namespace flos {

struct LsThtOptions {
  /// Truncation length L (the paper's experiments use 10).
  int length = 10;
  /// Approximation slack in hitting-time units.
  double epsilon = 0.25;
  /// Node budget for the ball.
  uint64_t node_budget = 4000;
};

/// Approximate top-k under THT (smaller = closer).
Result<TopKAnswer> LsThtTopK(GraphAccessor* accessor, NodeId query, int k,
                             const LsThtOptions& options);

}  // namespace flos

#endif  // FLOS_BASELINES_LS_THT_H_
