#include "baselines/ge_embed.h"

#include <algorithm>
#include <cmath>

#include "linalg/dense_matrix.h"
#include "linalg/lu.h"
#include "measures/exact.h"

namespace flos {

Result<GeEmbedding> GeEmbedding::Build(const Graph* graph,
                                       const GeOptions& options) {
  if (graph == nullptr) return Status::InvalidArgument("null graph");
  if (options.num_landmarks < 1) {
    return Status::InvalidArgument("need at least one landmark");
  }
  GeEmbedding ge;
  ge.graph_ = graph;
  ge.options_ = options;
  // Landmarks: the highest-degree nodes, which random walks visit most and
  // whose kernel rows therefore carry the most information.
  const auto count = static_cast<size_t>(
      std::min<uint64_t>(options.num_landmarks, graph->NumNodes()));
  ge.landmarks_.assign(graph->DegreeOrder().begin(),
                       graph->DegreeOrder().begin() + count);
  ExactSolveOptions solve;
  solve.tolerance = options.tolerance;
  ge.ei_rows_.reserve(count);
  for (const NodeId l : ge.landmarks_) {
    FLOS_ASSIGN_OR_RETURN(std::vector<double> r,
                          ExactRwr(*graph, l, options.c, solve));
    for (uint64_t i = 0; i < r.size(); ++i) {
      const double wi = graph->WeightedDegree(static_cast<NodeId>(i));
      r[i] = wi > 0 ? r[i] / wi : 0.0;  // symmetric EI kernel row
    }
    ge.ei_rows_.push_back(std::move(r));
  }
  // Invert the ridge-regularized landmark Gram block W[l][m] = K(l, m).
  const auto L = static_cast<uint32_t>(count);
  DenseMatrix w(L, L);
  for (uint32_t l = 0; l < L; ++l) {
    for (uint32_t m = 0; m < L; ++m) {
      w.at(l, m) = ge.ei_rows_[l][ge.landmarks_[m]];
    }
    w.at(l, l) += options.ridge;
  }
  FLOS_ASSIGN_OR_RETURN(const DenseLu lu, DenseLu::Factor(w));
  ge.w_inverse_.assign(L, std::vector<double>(L, 0.0));
  std::vector<double> unit(L, 0.0);
  std::vector<double> column;
  for (uint32_t m = 0; m < L; ++m) {
    unit[m] = 1.0;
    FLOS_RETURN_IF_ERROR(lu.Solve(unit, &column));
    unit[m] = 0.0;
    for (uint32_t l = 0; l < L; ++l) ge.w_inverse_[l][m] = column[l];
  }
  return ge;
}

Result<TopKAnswer> GeEmbedding::Query(NodeId query, int k) const {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (query >= graph_->NumNodes()) {
    return Status::OutOfRange("query out of range");
  }
  const uint64_t n = graph_->NumNodes();
  const auto L = static_cast<uint32_t>(landmarks_.size());
  // q's coordinates: k_q[l] = K(l, q), available from the stored rows by
  // kernel symmetry.
  std::vector<double> kq(L);
  for (uint32_t l = 0; l < L; ++l) kq[l] = ei_rows_[l][query];
  // Nystrom combination weights u = W^+ k_q.
  std::vector<double> u(L, 0.0);
  double mass = 0;
  for (uint32_t l = 0; l < L; ++l) {
    for (uint32_t m = 0; m < L; ++m) u[l] += w_inverse_[l][m] * kq[m];
    mass += std::abs(u[l]);
  }
  if (mass <= 0) {
    // Query disconnected from every landmark: no information.
    return TopKAnswer{};
  }
  // K(q, i) ~= sum_l u_l K(l, i); rank RWR = K(q, i) * w_i.
  std::vector<double> scores(n, 0.0);
  for (uint32_t l = 0; l < L; ++l) {
    const double ul = u[l];
    if (ul == 0) continue;
    const std::vector<double>& row = ei_rows_[l];
    for (uint64_t i = 0; i < n; ++i) scores[i] += ul * row[i];
  }
  for (uint64_t i = 0; i < n; ++i) {
    scores[i] *= graph_->WeightedDegree(static_cast<NodeId>(i));
  }
  TopKAnswer answer;
  answer.nodes = TopKFromScores(scores, query, k, Direction::kMaximize);
  for (const NodeId node : answer.nodes) answer.scores.push_back(scores[node]);
  answer.exact = false;
  answer.touched_nodes = n;
  return answer;
}

}  // namespace flos
