// DNE: dynamic neighborhood expansion (paper Table 5, [21]).
//
// Heuristic local search for PHP: best-first expansion around the query,
// scoring visited nodes by the PHP values of the visited subgraph (deleted
// outside transitions), until a fixed budget of visited nodes is reached.
// The paper fixes the budget at 4,000 nodes. No exactness guarantee.

#ifndef FLOS_BASELINES_DNE_H_
#define FLOS_BASELINES_DNE_H_

#include "baselines/baseline.h"
#include "graph/accessor.h"
#include "util/status.h"

namespace flos {

struct DneOptions {
  /// PHP decay factor.
  double c = 0.5;
  /// Fixed number of nodes to visit (4,000 in the paper's experiments).
  uint64_t node_budget = 4000;
  double tolerance = 1e-5;
  uint32_t max_inner_iterations = 10000;
};

/// Runs DNE and returns its (approximate) top-k under PHP.
Result<TopKAnswer> DneTopK(GraphAccessor* accessor, NodeId query, int k,
                           const DneOptions& options);

}  // namespace flos

#endif  // FLOS_BASELINES_DNE_H_
