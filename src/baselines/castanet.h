// Castanet-style exact top-k RWR (paper Table 5, Fujiwara et al.
// SIGMOD'13 [9]).
//
// Improves plain global iteration by turning the Neumann expansion
//
//   r = sum_{l>=0} c (1-c)^l (P^T)^l e_q
//
// into per-node lower bounds (the partial sums) and upper bounds (partial
// sum + remaining mass (1-c)^{t+1}), pruning nodes whose upper bound cannot
// reach the current k-th lower bound, and stopping as soon as the top-k is
// certified — usually far earlier than the tolerance-driven GI stop.

#ifndef FLOS_BASELINES_CASTANET_H_
#define FLOS_BASELINES_CASTANET_H_

#include "baselines/baseline.h"
#include "graph/graph.h"
#include "util/status.h"

namespace flos {

struct CastanetOptions {
  /// Restart probability of RWR.
  double c = 0.5;
  /// Hard floor on the remaining-mass bound (guards exact ties). At the
  /// floor the answer is exact up to score gaps below it — the same
  /// de-facto precision as tolerance-driven global iteration.
  double mass_floor = 1e-8;
  uint32_t max_iterations = 10000;
};

/// Exact top-k RWR query.
Result<TopKAnswer> CastanetTopK(const Graph& graph, NodeId query, int k,
                                const CastanetOptions& options);

}  // namespace flos

#endif  // FLOS_BASELINES_CASTANET_H_
