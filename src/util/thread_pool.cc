#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace flos {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_ready_.NotifyAll();
  // Workers exit only once the queue is drained, so every task submitted
  // before Shutdown — queued or in flight — still runs to completion.
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

Status ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      return Status::FailedPrecondition(
          "ThreadPool::Submit after Shutdown: task rejected");
    }
    queue_.push_back(std::move(task));
    ++pending_;
  }
  work_ready_.NotifyOne();
  return Status::OK();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (pending_ != 0) all_idle_.Wait(mu_);
}

int ThreadPool::DefaultNumThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) work_ready_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(mu_);
      if (--pending_ == 0) all_idle_.NotifyAll();
    }
  }
}

}  // namespace flos
