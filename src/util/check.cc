#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace flos {
namespace internal {

namespace {

[[noreturn]] void AbortWithMessage(const char* file, int line,
                                   const char* condition,
                                   const char* detail,
                                   const char* message) {
  std::fprintf(stderr, "FLOS_CHECK failed at %s:%d: %s%s%s%s%s\n", file, line,
               condition, detail[0] != '\0' ? " " : "", detail,
               message != nullptr ? ": " : "",
               message != nullptr ? message : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void CheckFailed(const char* file, int line, const char* condition,
                 const char* message) {
  AbortWithMessage(file, line, condition, "", message);
}

void CheckOpFailed(const char* file, int line, const char* expression,
                   const std::string& a, const std::string& b,
                   const char* message) {
  const std::string detail = "(" + a + " vs " + b + ")";
  AbortWithMessage(file, line, expression, detail.c_str(), message);
}

std::string CheckValueString(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string CheckValueString(long double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.21Lg", v);
  return buf;
}

std::string CheckValueString(unsigned long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", v);
  return buf;
}

std::string CheckValueString(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

}  // namespace internal
}  // namespace flos
