#include "util/rng.h"

#include <cassert>
#include <unordered_set>

namespace flos {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 top bits scaled into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

std::vector<uint64_t> Rng::SampleDistinct(uint64_t n, uint64_t count) {
  assert(count <= n);
  std::vector<uint64_t> out;
  out.reserve(count);
  if (count > n / 2) {
    // Dense case: Fisher-Yates over the full range prefix.
    std::vector<uint64_t> all(n);
    for (uint64_t i = 0; i < n; ++i) all[i] = i;
    for (uint64_t i = 0; i < count; ++i) {
      const uint64_t j = i + NextBounded(n - i);
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
    return out;
  }
  std::unordered_set<uint64_t> seen;
  seen.reserve(count * 2);
  while (out.size() < count) {
    const uint64_t v = NextBounded(n);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace flos
