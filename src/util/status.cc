#include "util/status.h"

namespace flos {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kOverloaded:
      return "overloaded";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string message)
    : code_(code), message_(std::move(message)) {
  assert(code != StatusCode::kOk && "error Status requires a non-OK code");
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace flos
