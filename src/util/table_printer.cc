#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace flos {

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

void TablePrinter::Print(std::FILE* out) const {
  if (rows_.empty()) return;
  if (csv_) {
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size(); ++i) {
        std::fprintf(out, "%s%s", i ? "," : "", row[i].c_str());
      }
      std::fprintf(out, "\n");
    }
    return;
  }
  size_t num_cols = 0;
  for (const auto& row : rows_) num_cols = std::max(num_cols, row.size());
  std::vector<size_t> width(num_cols, 0);
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      std::fprintf(out, "%-*s%s", static_cast<int>(width[i]), row[i].c_str(),
                   i + 1 < row.size() ? "  " : "");
    }
    std::fprintf(out, "\n");
  }
}

}  // namespace flos
