// Fixed-size thread pool for fan-out query serving.
//
// Deliberately minimal: N long-lived workers draining one mutex-protected
// FIFO queue. No work stealing, no priorities, no futures — batch top-k
// serving submits coarse per-thread loops (each worker pulls query indices
// from a shared atomic counter), so a simple queue is never the
// bottleneck. Tasks must not throw; the library is exception-free
// (Status/Result), and a throwing task would terminate.

#ifndef FLOS_UTIL_THREAD_POOL_H_
#define FLOS_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace flos {

/// Fixed pool of worker threads consuming submitted tasks FIFO.
/// Submit/Wait/Shutdown may be called from any single controlling thread;
/// tasks themselves must not Submit or Wait (no nested scheduling).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks (as if by Shutdown) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks (unbounded queue). After Shutdown has
  /// begun the task is rejected with kFailedPrecondition and never runs.
  Status Submit(std::function<void()> task) FLOS_EXCLUDES(mu_);

  /// Blocks until every submitted task has finished running.
  void Wait() FLOS_EXCLUDES(mu_);

  /// Graceful shutdown: stops accepting new tasks, lets every already
  /// submitted task (queued or in flight) run to completion, then joins
  /// the workers. Idempotent; the destructor calls it implicitly.
  void Shutdown() FLOS_EXCLUDES(mu_);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Hardware concurrency, with a floor of 1 (hardware_concurrency may
  /// report 0). The default worker count for batch serving.
  static int DefaultNumThreads();

 private:
  void WorkerLoop();

  Mutex mu_;
  CondVar work_ready_;   // queue non-empty or shutdown
  CondVar all_idle_;     // pending_ reached zero
  std::deque<std::function<void()>> queue_ FLOS_GUARDED_BY(mu_);
  uint64_t pending_ FLOS_GUARDED_BY(mu_) = 0;  // queued + running tasks
  bool shutdown_ FLOS_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace flos

#endif  // FLOS_UTIL_THREAD_POOL_H_
