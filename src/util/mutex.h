// Annotated synchronization primitives: the only mutex the library uses.
//
// `flos::Mutex`, `flos::MutexLock`, and `flos::CondVar` are zero-cost
// wrappers over `std::mutex` / `std::condition_variable` that carry the
// Clang thread-safety capability annotations (util/thread_annotations.h).
// With them, the locking contract is part of the type system: declare a
// field `FLOS_GUARDED_BY(mu_)` and the `thread-safety` CI job rejects any
// access that does not hold `mu_` — at compile time, on every build.
//
// Raw `std::mutex` / `std::lock_guard` / `std::unique_lock` /
// `std::condition_variable` are banned everywhere outside this header
// (scripts/lint.py rule `no-raw-mutex`), so no lock can silently opt out
// of the analysis.
//
// Zero-cost: every method is an inline forward to the std primitive; under
// -O2 the wrappers compile to the identical code (the annotations are pure
// metadata, erased on non-Clang builds). CondVar::Wait adopts the Mutex's
// underlying std::mutex rather than going through condition_variable_any,
// so waiting costs exactly what std::condition_variable costs.
//
// No predicate-wait overload is provided on purpose: the capability
// analysis cannot see through a predicate lambda (it would analyze the
// lambda body without the caller's capability and reject guarded reads),
// so waits are written as explicit loops in the locked scope —
//
//     MutexLock lock(mu_);
//     while (!condition_using_guarded_state()) cv_.Wait(mu_);
//
// which reads the guarded state exactly where the analysis can prove the
// lock is held.
//
// Lock discipline (enforced by convention, documented in DESIGN.md
// "Concurrency contract"): every flos::Mutex in the tree is a LEAF lock —
// no code path acquires a second flos::Mutex while holding one, so
// lock-order inversion is impossible by construction. Use FLOS_EXCLUDES on
// functions that callers might otherwise invoke with the lock held.

#ifndef FLOS_UTIL_MUTEX_H_
#define FLOS_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace flos {

class CondVar;

/// Standard exclusive mutex carrying the `mutex` capability. Prefer
/// locking through MutexLock (RAII); Lock/Unlock exist for the rare
/// split-scope case and for the wrappers themselves.
class FLOS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FLOS_ACQUIRE() { mu_.lock(); }
  void Unlock() FLOS_RELEASE() { mu_.unlock(); }
  bool TryLock() FLOS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a Mutex; the annotated replacement for std::lock_guard
/// and scope-long std::unique_lock.
class FLOS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FLOS_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() FLOS_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait REQUIRES the mutex (the
/// analysis rejects a wait outside the locked scope — the "cond-var wait
/// with wrong capability" bug class); it releases the capability while
/// blocked and reacquires before returning, exactly like the std wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks until notified (spurious wakeups
  /// possible — always wait in a condition loop).
  void Wait(Mutex& mu) FLOS_REQUIRES(mu) {
    // Adopt the already-held std::mutex for the duration of the wait, then
    // release ownership back without unlocking: the capability stays with
    // the caller, matching the REQUIRES contract.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace flos

#endif  // FLOS_UTIL_MUTEX_H_
