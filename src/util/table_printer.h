// Aligned-column table output for benchmark harnesses.
//
// Each figure/table bench prints its rows through `TablePrinter` so the
// console output lines up like the paper's tables, and `--csv` mode emits the
// same rows as comma-separated values for plotting.

#ifndef FLOS_UTIL_TABLE_PRINTER_H_
#define FLOS_UTIL_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace flos {

/// Collects rows of string cells and prints them with aligned columns
/// (or as CSV). The first added row is treated as the header.
class TablePrinter {
 public:
  /// If `csv` is true, Print emits CSV instead of aligned columns.
  explicit TablePrinter(bool csv = false) : csv_(csv) {}

  /// Appends a row. Rows may have differing lengths; short rows are padded.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` significant digits.
  static std::string FormatDouble(double v, int precision = 4);

  /// Writes all rows to `out` (default stdout) and clears nothing; a printer
  /// can be printed repeatedly as rows accumulate.
  void Print(std::FILE* out = stdout) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  bool csv_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace flos

#endif  // FLOS_UTIL_TABLE_PRINTER_H_
