// Clang thread-safety capability annotations (no-ops elsewhere).
//
// These macros expose Clang's `-Wthread-safety` capability analysis — the
// STATIC complement to ThreadSanitizer. TSAN observes the interleavings a
// test happens to schedule; the capability analysis proves, on every
// compile, that each access to a `FLOS_GUARDED_BY(mu)` field happens with
// `mu` held and that every `FLOS_REQUIRES(mu)` caller actually holds it.
// A race that TSAN would need the right schedule (and minutes of runtime)
// to catch becomes a compile error in seconds.
//
// The annotations attach to `flos::Mutex` / `flos::MutexLock` /
// `flos::CondVar` (util/mutex.h), which are the ONLY synchronization
// primitives library code may use — scripts/lint.py bans raw `std::mutex`
// and friends outside util/mutex.h (rule `no-raw-mutex`), so every lock in
// the tree participates in the analysis.
//
// Under GCC (or any compiler without the attributes) every macro expands
// to nothing and the wrappers compile to exactly the std primitives they
// wrap; the analysis gate is CI's `thread-safety` job (pinned clang++,
// `-Wthread-safety -Werror`). The negative-compile harness
// (tests/compile_fail/) proves the analysis actually fires.
//
// Macro reference (mirrors the Clang documentation's vocabulary):
//   FLOS_CAPABILITY(x)        class declares capability x (a mutex type)
//   FLOS_SCOPED_CAPABILITY    RAII class acquiring in ctor, releasing in dtor
//   FLOS_GUARDED_BY(mu)       field may only be touched with mu held
//   FLOS_PT_GUARDED_BY(mu)    pointee may only be touched with mu held
//   FLOS_REQUIRES(mu)         caller must hold mu (and keeps holding it)
//   FLOS_ACQUIRE(mu)          function acquires mu, caller must not hold it
//   FLOS_RELEASE(mu)          function releases mu, caller must hold it
//   FLOS_TRY_ACQUIRE(b, mu)   acquires mu iff the function returns b
//   FLOS_EXCLUDES(mu)         caller must NOT hold mu (deadlock guard)
//   FLOS_ASSERT_CAPABILITY(mu) runtime assertion that mu is held
//   FLOS_RETURN_CAPABILITY(mu) function returns a reference to mu
//   FLOS_ACQUIRED_BEFORE/AFTER declare lock-ordering edges (hierarchy)
//   FLOS_NO_THREAD_SAFETY_ANALYSIS  opt a definition out (last resort)

#ifndef FLOS_UTIL_THREAD_ANNOTATIONS_H_
#define FLOS_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define FLOS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef FLOS_THREAD_ANNOTATION
#define FLOS_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define FLOS_CAPABILITY(x) FLOS_THREAD_ANNOTATION(capability(x))
#define FLOS_SCOPED_CAPABILITY FLOS_THREAD_ANNOTATION(scoped_lockable)
#define FLOS_GUARDED_BY(x) FLOS_THREAD_ANNOTATION(guarded_by(x))
#define FLOS_PT_GUARDED_BY(x) FLOS_THREAD_ANNOTATION(pt_guarded_by(x))
#define FLOS_ACQUIRED_BEFORE(...) \
  FLOS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define FLOS_ACQUIRED_AFTER(...) \
  FLOS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define FLOS_REQUIRES(...) \
  FLOS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define FLOS_REQUIRES_SHARED(...) \
  FLOS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define FLOS_ACQUIRE(...) \
  FLOS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define FLOS_RELEASE(...) \
  FLOS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define FLOS_TRY_ACQUIRE(...) \
  FLOS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define FLOS_EXCLUDES(...) FLOS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define FLOS_ASSERT_CAPABILITY(x) \
  FLOS_THREAD_ANNOTATION(assert_capability(x))
#define FLOS_RETURN_CAPABILITY(x) FLOS_THREAD_ANNOTATION(lock_returned(x))
#define FLOS_NO_THREAD_SAFETY_ANALYSIS \
  FLOS_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // FLOS_UTIL_THREAD_ANNOTATIONS_H_
