// Invariant checking for the exactness-critical paths.
//
// FLoS's correctness guarantee rests on every stored value being a
// *certified* lower/upper bound (SIGMOD'14 Theorems 2-5); a single
// uncertified value silently poisons every result derived from it. This
// header provides three tiers of runtime checks so the certification
// chain can be audited without taxing production builds:
//
//   FLOS_CHECK   — always on, in every build type. For cheap conditions
//                  whose violation means memory corruption or a broken
//                  API contract. Aborts with file:line and the condition.
//   FLOS_DCHECK  — on in Debug builds (and whenever the audit layer is
//                  enabled); compiled to nothing in Release. For cheap
//                  per-operation sanity conditions on hot paths (index
//                  bounds, epoch-stamp sanity).
//   FLOS_AUDIT   — on only when the build defines FLOS_ENABLE_AUDIT
//                  (the `audit` CMake preset). For expensive invariant
//                  recomputation: bound sandwich after every sweep,
//                  monotone tightening across sweeps, boundary-count and
//                  RowInMass ground-truth comparison, certified top-k
//                  termination.
//
// Disabled tiers expand to an expression that TYPE-CHECKS its operands
// but never evaluates them (`true ? void() : void(cond)`), so a stale
// condition still fails to compile yet costs zero cycles and zero code in
// Release — tests/check_test.cc proves the zero-evaluation property, and
// bench_micro_kernels records that a Release sweep with the audit sites
// compiled in is indistinguishable from one without.
//
// `FLOS_AUDIT_SCOPE { ... }` guards multi-statement recomputation (scratch
// vectors, ground-truth loops); the block always compiles but is dead
// code unless auditing is enabled.
//
// This layer is for programming errors: conditions that can only be false
// if the code itself is wrong. Fallible operations on user input keep
// returning Status/Result (util/status.h) — never CHECK on bad input.

#ifndef FLOS_UTIL_CHECK_H_
#define FLOS_UTIL_CHECK_H_

#include <string>

namespace flos {

#ifdef FLOS_ENABLE_AUDIT
#define FLOS_AUDIT_ENABLED 1
#else
#define FLOS_AUDIT_ENABLED 0
#endif

#if !defined(NDEBUG) || FLOS_AUDIT_ENABLED
#define FLOS_DCHECK_ENABLED 1
#else
#define FLOS_DCHECK_ENABLED 0
#endif

/// True iff the FLOS_AUDIT tier is compiled in (the `audit` preset).
inline constexpr bool kAuditEnabled = FLOS_AUDIT_ENABLED != 0;

/// True iff the FLOS_DCHECK tier is compiled in.
inline constexpr bool kDcheckEnabled = FLOS_DCHECK_ENABLED != 0;

namespace internal {

/// Prints "FLOS_CHECK failed at <file>:<line>: <condition>[: <message>]"
/// to stderr and aborts. Never returns.
[[noreturn]] void CheckFailed(const char* file, int line,
                              const char* condition,
                              const char* message = nullptr);

/// Binary-comparison failure: additionally prints the two operand values.
[[noreturn]] void CheckOpFailed(const char* file, int line,
                                const char* expression, const std::string& a,
                                const std::string& b,
                                const char* message = nullptr);

/// Renders a checked operand for the failure message. Floating-point
/// values keep full precision so off-by-one-ulp violations are visible.
std::string CheckValueString(double v);
std::string CheckValueString(long double v);
std::string CheckValueString(unsigned long long v);
std::string CheckValueString(long long v);
inline std::string CheckValueString(float v) {
  return CheckValueString(static_cast<double>(v));
}
inline std::string CheckValueString(unsigned long v) {
  return CheckValueString(static_cast<unsigned long long>(v));
}
inline std::string CheckValueString(unsigned int v) {
  return CheckValueString(static_cast<unsigned long long>(v));
}
inline std::string CheckValueString(long v) {
  return CheckValueString(static_cast<long long>(v));
}
inline std::string CheckValueString(int v) {
  return CheckValueString(static_cast<long long>(v));
}
inline std::string CheckValueString(bool v) { return v ? "true" : "false"; }

}  // namespace internal
}  // namespace flos

// ---------------------------------------------------------------------------
// Tier 1: FLOS_CHECK — always on.

/// Aborts with file:line + the condition text (and an optional literal
/// message) unless `cond` is true. Enabled in every build type.
#define FLOS_CHECK(cond, ...)                                             \
  ((cond) ? static_cast<void>(0)                                          \
          : ::flos::internal::CheckFailed(__FILE__, __LINE__,             \
                                          #cond __VA_OPT__(, ) __VA_ARGS__))

#define FLOS_INTERNAL_CHECK_OP(op, a, b, ...)                              \
  do {                                                                     \
    const auto flos_check_a_ = (a);                                        \
    const auto flos_check_b_ = (b);                                        \
    if (!(flos_check_a_ op flos_check_b_)) {                               \
      ::flos::internal::CheckOpFailed(                                     \
          __FILE__, __LINE__, #a " " #op " " #b,                           \
          ::flos::internal::CheckValueString(flos_check_a_),               \
          ::flos::internal::CheckValueString(flos_check_b_)                \
              __VA_OPT__(, ) __VA_ARGS__);                                 \
    }                                                                      \
  } while (false)

/// Comparison checks that print both operand values on failure. Operands
/// are evaluated exactly once.
#define FLOS_CHECK_EQ(a, b, ...) FLOS_INTERNAL_CHECK_OP(==, a, b, __VA_ARGS__)
#define FLOS_CHECK_LE(a, b, ...) FLOS_INTERNAL_CHECK_OP(<=, a, b, __VA_ARGS__)
#define FLOS_CHECK_GE(a, b, ...) FLOS_INTERNAL_CHECK_OP(>=, a, b, __VA_ARGS__)
#define FLOS_CHECK_LT(a, b, ...) FLOS_INTERNAL_CHECK_OP(<, a, b, __VA_ARGS__)

// Disabled form shared by the DCHECK/AUDIT tiers: the operands are
// type-checked (a stale expression still breaks the build) but NEVER
// evaluated, and the whole expression folds to nothing.
#define FLOS_INTERNAL_NOP_CHECK(cond, ...) \
  (true ? static_cast<void>(0) : static_cast<void>(cond))
#define FLOS_INTERNAL_NOP_CHECK_OP(a, b, ...)       \
  (true ? static_cast<void>(0)                      \
        : static_cast<void>((void)(a), (void)(b)))

// ---------------------------------------------------------------------------
// Tier 2: FLOS_DCHECK — Debug (and audit) builds only.

#if FLOS_DCHECK_ENABLED
#define FLOS_DCHECK(cond, ...) FLOS_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#define FLOS_DCHECK_EQ(a, b, ...) FLOS_CHECK_EQ(a, b __VA_OPT__(, ) __VA_ARGS__)
#define FLOS_DCHECK_LE(a, b, ...) FLOS_CHECK_LE(a, b __VA_OPT__(, ) __VA_ARGS__)
#define FLOS_DCHECK_GE(a, b, ...) FLOS_CHECK_GE(a, b __VA_OPT__(, ) __VA_ARGS__)
#define FLOS_DCHECK_LT(a, b, ...) FLOS_CHECK_LT(a, b __VA_OPT__(, ) __VA_ARGS__)
#else
#define FLOS_DCHECK(cond, ...) FLOS_INTERNAL_NOP_CHECK(cond)
#define FLOS_DCHECK_EQ(a, b, ...) FLOS_INTERNAL_NOP_CHECK_OP(a, b)
#define FLOS_DCHECK_LE(a, b, ...) FLOS_INTERNAL_NOP_CHECK_OP(a, b)
#define FLOS_DCHECK_GE(a, b, ...) FLOS_INTERNAL_NOP_CHECK_OP(a, b)
#define FLOS_DCHECK_LT(a, b, ...) FLOS_INTERNAL_NOP_CHECK_OP(a, b)
#endif

// ---------------------------------------------------------------------------
// Tier 3: FLOS_AUDIT — only with -DFLOS_ENABLE_AUDIT=ON.

#if FLOS_AUDIT_ENABLED
#define FLOS_AUDIT(cond, ...) FLOS_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#define FLOS_AUDIT_EQ(a, b, ...) FLOS_CHECK_EQ(a, b __VA_OPT__(, ) __VA_ARGS__)
#define FLOS_AUDIT_LE(a, b, ...) FLOS_CHECK_LE(a, b __VA_OPT__(, ) __VA_ARGS__)
#define FLOS_AUDIT_GE(a, b, ...) FLOS_CHECK_GE(a, b __VA_OPT__(, ) __VA_ARGS__)
#else
#define FLOS_AUDIT(cond, ...) FLOS_INTERNAL_NOP_CHECK(cond)
#define FLOS_AUDIT_EQ(a, b, ...) FLOS_INTERNAL_NOP_CHECK_OP(a, b)
#define FLOS_AUDIT_LE(a, b, ...) FLOS_INTERNAL_NOP_CHECK_OP(a, b)
#define FLOS_AUDIT_GE(a, b, ...) FLOS_INTERNAL_NOP_CHECK_OP(a, b)
#endif

/// Guards a multi-statement audit block: `FLOS_AUDIT_SCOPE { ... }`. The
/// block always compiles (so audit code cannot rot) but is discarded by
/// the optimizer unless FLOS_ENABLE_AUDIT is defined.
#define FLOS_AUDIT_SCOPE if constexpr (::flos::kAuditEnabled)

#endif  // FLOS_UTIL_CHECK_H_
