// Wall-clock timing helpers for the benchmark harnesses.

#ifndef FLOS_UTIL_TIMER_H_
#define FLOS_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace flos {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace flos

#endif  // FLOS_UTIL_TIMER_H_
