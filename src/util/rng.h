// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (graph generators, query sampling,
// baselines that sample walks) draw from `Rng` so that experiments are
// reproducible given a seed. The engine is SplitMix64-seeded xoshiro256**,
// which is fast, high quality, and identical across platforms (unlike
// std::mt19937 paired with std::uniform_int_distribution, whose output is
// implementation-defined).

#ifndef FLOS_UTIL_RNG_H_
#define FLOS_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace flos {

/// Deterministic 64-bit random number generator (xoshiro256**).
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield equal streams on all platforms.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit draw.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Returns `count` distinct values sampled uniformly from [0, n).
  /// `count` must be <= n.
  std::vector<uint64_t> SampleDistinct(uint64_t n, uint64_t count);

  /// UniformRandomBitGenerator interface, so `Rng` works with <algorithm>.
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return Next(); }

 private:
  uint64_t state_[4];
};

}  // namespace flos

#endif  // FLOS_UTIL_RNG_H_
