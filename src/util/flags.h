// Minimal command-line flag parsing for benchmark and example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name` /
// `--no-name` forms. Unknown flags are an error so typos in experiment
// scripts fail loudly instead of silently running the default configuration.
//
// Usage:
//   FlagParser flags;
//   int k = 20;
//   flags.AddInt("k", &k, "number of neighbors to return");
//   if (!flags.Parse(argc, argv).ok()) { flags.PrintUsage(); return 1; }

#ifndef FLOS_UTIL_FLAGS_H_
#define FLOS_UTIL_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace flos {

/// Registry and parser for a binary's command-line flags.
class FlagParser {
 public:
  /// Registers flags. `target` must outlive Parse; it holds the default and
  /// receives the parsed value.
  void AddInt(const std::string& name, int64_t* target,
              const std::string& help);
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);
  void AddBool(const std::string& name, bool* target, const std::string& help);
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);

  /// Parses argv. Returns InvalidArgument on unknown flags or malformed
  /// values. Positional (non-flag) arguments are collected in
  /// `positional_args()`.
  Status Parse(int argc, char** argv);

  /// Writes a usage summary (flag names, defaults, help strings) to stderr.
  void PrintUsage(const std::string& program_name) const;

  const std::vector<std::string>& positional_args() const {
    return positional_;
  }

 private:
  enum class Type { kInt, kDouble, kBool, kString };
  struct Flag {
    std::string name;
    Type type;
    void* target;
    std::string help;
    std::string default_repr;
  };

  Status SetValue(const Flag& flag, const std::string& value);
  const Flag* Find(const std::string& name) const;

  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace flos

#endif  // FLOS_UTIL_FLAGS_H_
