// Lightweight error-handling primitives used throughout the library.
//
// The library is exception-free: fallible operations return a `Status`, or a
// `Result<T>` when they also produce a value. Both carry an error code and a
// human-readable message on failure. `FLOS_RETURN_IF_ERROR` and
// `FLOS_ASSIGN_OR_RETURN` provide the usual propagation shorthand.

#ifndef FLOS_UTIL_STATUS_H_
#define FLOS_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace flos {

/// Machine-readable category of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kCorruption,
  kResourceExhausted,
  kInternal,
  /// A serving layer refused the request because its bounded queue is full
  /// (admission control); the client should back off and retry.
  kOverloaded,
  /// The request's deadline passed before any work could start. Mid-search
  /// expiry is NOT an error: the engine returns its current certified
  /// bounds with stats.deadline_expired set instead.
  kDeadlineExceeded,
  /// A remote endpoint is transiently unreachable (connection refused or
  /// timed out). Retrying with backoff is reasonable; see
  /// ServiceClient::Connect's retry overload.
  kUnavailable,
};

/// Returns a stable lowercase name for `code` (e.g., "invalid_argument").
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation that produces no value.
///
/// A default-constructed `Status` is OK. Error statuses carry a code and a
/// message. The type is cheap to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs an error status. `code` must not be `kOk`.
  Status(StatusCode code, std::string message);

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "ok" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Outcome of a fallible operation that produces a `T` on success.
///
/// Holds either a value or an error `Status`. Access the value only after
/// checking `ok()`; violating that is a programming error (asserts in debug
/// builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value marks success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. `status.ok()` must be false.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace flos

/// Propagates a non-OK `Status` from the current function.
#define FLOS_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::flos::Status flos_status_ = (expr);     \
    if (!flos_status_.ok()) return flos_status_; \
  } while (0)

/// Evaluates a `Result<T>` expression; on success binds the value to `lhs`,
/// on failure returns the error from the current function.
#define FLOS_ASSIGN_OR_RETURN(lhs, expr)                 \
  auto FLOS_CONCAT_(flos_result_, __LINE__) = (expr);    \
  if (!FLOS_CONCAT_(flos_result_, __LINE__).ok())        \
    return FLOS_CONCAT_(flos_result_, __LINE__).status(); \
  lhs = std::move(FLOS_CONCAT_(flos_result_, __LINE__)).value()

#define FLOS_CONCAT_INNER_(a, b) a##b
#define FLOS_CONCAT_(a, b) FLOS_CONCAT_INNER_(a, b)

#endif  // FLOS_UTIL_STATUS_H_
