#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

namespace flos {

namespace {

std::string BoolRepr(bool b) { return b ? "true" : "false"; }

}  // namespace

void FlagParser::AddInt(const std::string& name, int64_t* target,
                        const std::string& help) {
  flags_.push_back({name, Type::kInt, target, help, std::to_string(*target)});
}

void FlagParser::AddDouble(const std::string& name, double* target,
                           const std::string& help) {
  flags_.push_back(
      {name, Type::kDouble, target, help, std::to_string(*target)});
}

void FlagParser::AddBool(const std::string& name, bool* target,
                         const std::string& help) {
  flags_.push_back({name, Type::kBool, target, help, BoolRepr(*target)});
}

void FlagParser::AddString(const std::string& name, std::string* target,
                           const std::string& help) {
  flags_.push_back({name, Type::kString, target, help, *target});
}

const FlagParser::Flag* FlagParser::Find(const std::string& name) const {
  for (const Flag& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

Status FlagParser::SetValue(const Flag& flag, const std::string& value) {
  char* end = nullptr;
  switch (flag.type) {
    case Type::kInt: {
      const long long v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + flag.name +
                                       ": not an integer: '" + value + "'");
      }
      *static_cast<int64_t*>(flag.target) = v;
      return Status::OK();
    }
    case Type::kDouble: {
      const double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + flag.name +
                                       ": not a number: '" + value + "'");
      }
      *static_cast<double*>(flag.target) = v;
      return Status::OK();
    }
    case Type::kBool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return Status::InvalidArgument("flag --" + flag.name +
                                       ": not a boolean: '" + value + "'");
      }
      return Status::OK();
    }
    case Type::kString:
      *static_cast<std::string*>(flag.target) = value;
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

Status FlagParser::Parse(int argc, char** argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    } else {
      name = arg;
    }
    const Flag* flag = Find(name);
    if (flag == nullptr && !has_value && name.rfind("no-", 0) == 0) {
      // `--no-foo` as shorthand for `--foo=false`.
      flag = Find(name.substr(3));
      if (flag != nullptr && flag->type == Type::kBool) {
        *static_cast<bool*>(flag->target) = false;
        continue;
      }
      flag = nullptr;
    }
    if (flag == nullptr) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    if (!has_value) {
      if (flag->type == Type::kBool) {
        *static_cast<bool*>(flag->target) = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + name + " expects a value");
      }
      value = argv[++i];
    }
    FLOS_RETURN_IF_ERROR(SetValue(*flag, value));
  }
  return Status::OK();
}

void FlagParser::PrintUsage(const std::string& program_name) const {
  std::fprintf(stderr, "usage: %s [flags]\n", program_name.c_str());
  for (const Flag& f : flags_) {
    std::fprintf(stderr, "  --%-24s %s (default: %s)\n", f.name.c_str(),
                 f.help.c_str(), f.default_repr.c_str());
  }
}

}  // namespace flos
