#include "graph/edge_list_io.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_set>

namespace flos {

Result<Graph> ReadEdgeList(const std::string& path,
                           const EdgeListOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::IoError("cannot open edge list: " + path);
  }
  GraphBuilder::Options builder_options;
  builder_options.ignore_self_loops = options.ignore_self_loops;
  GraphBuilder builder(builder_options);

  std::unordered_set<uint64_t> seen;
  char line[512];
  uint64_t line_no = 0;
  Status status = Status::OK();
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++line_no;
    const char* p = line;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '#' || *p == '%' || *p == '\n' || *p == '\0') continue;
    char* end = nullptr;
    const unsigned long long u = std::strtoull(p, &end, 10);
    if (end == p) {
      status = Status::Corruption(path + ":" + std::to_string(line_no) +
                                  ": expected node id");
      break;
    }
    p = end;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p) {
      status = Status::Corruption(path + ":" + std::to_string(line_no) +
                                  ": expected second node id");
      break;
    }
    p = end;
    double w = std::strtod(p, &end);
    if (end == p) w = 1.0;
    if (u > kInvalidNode - 1 || v > kInvalidNode - 1) {
      status = Status::OutOfRange(path + ":" + std::to_string(line_no) +
                                  ": node id exceeds 32-bit range");
      break;
    }
    if (options.dedup_duplicates && u != v) {
      const uint64_t lo = u < v ? u : v;
      const uint64_t hi = u < v ? v : u;
      if (!seen.insert((lo << 32) | hi).second) continue;
    }
    status = builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v), w);
    if (!status.ok()) break;
  }
  std::fclose(f);
  FLOS_RETURN_IF_ERROR(status);
  return std::move(builder).Build();
}

Status WriteEdgeList(const Graph& graph, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot create edge list: " + path);
  }
  std::fprintf(f, "# flos edge list: %llu nodes, %llu edges\n",
               static_cast<unsigned long long>(graph.NumNodes()),
               static_cast<unsigned long long>(graph.NumEdges()));
  for (uint64_t u = 0; u < graph.NumNodes(); ++u) {
    const auto ids = graph.NeighborIds(static_cast<NodeId>(u));
    const auto ws = graph.NeighborWeights(static_cast<NodeId>(u));
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] <= u) continue;  // emit each undirected edge once
      std::fprintf(f, "%llu %u %.17g\n", static_cast<unsigned long long>(u),
                   ids[i], ws[i]);
    }
  }
  if (std::fclose(f) != 0) {
    return Status::IoError("failed writing edge list: " + path);
  }
  return Status::OK();
}

}  // namespace flos
