#include "graph/edge_list_io.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_set>

namespace flos {

Result<Graph> ReadEdgeList(const std::string& path,
                           const EdgeListOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::IoError("cannot open edge list: " + path);
  }
  GraphBuilder::Options builder_options;
  builder_options.ignore_self_loops = options.ignore_self_loops;
  builder_options.num_nodes = options.num_nodes;
  GraphBuilder builder(builder_options);

  // Every malformed row is a hard, line-numbered error — a silently
  // skipped or misparsed row would corrupt the graph without a trace.
  const auto at_line = [&path](uint64_t line_no, const std::string& what) {
    return path + ":" + std::to_string(line_no) + ": " + what;
  };
  const auto skip_space = [](const char* p) {
    while (*p == ' ' || *p == '\t' || *p == '\r') ++p;
    return p;
  };
  const auto at_eol = [](const char* p) { return *p == '\n' || *p == '\0'; };

  std::unordered_set<uint64_t> seen;
  char line[512];
  uint64_t line_no = 0;
  Status status = Status::OK();
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++line_no;
    const char* p = skip_space(line);
    if (*p == '#' || *p == '%' || at_eol(p)) continue;
    if (*p == '-') {
      status = Status::Corruption(at_line(line_no, "negative node id"));
      break;
    }
    char* end = nullptr;
    const unsigned long long u = std::strtoull(p, &end, 10);
    if (end == p) {
      status = Status::Corruption(at_line(line_no, "expected node id"));
      break;
    }
    p = skip_space(end);
    if (*p == '-') {
      status = Status::Corruption(at_line(line_no, "negative node id"));
      break;
    }
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p) {
      status = Status::Corruption(
          at_line(line_no, at_eol(p) ? "truncated edge: expected second "
                                       "node id"
                                     : "expected second node id"));
      break;
    }
    p = skip_space(end);
    double w = 1.0;
    if (!at_eol(p)) {
      w = std::strtod(p, &end);
      if (end == p) {
        status = Status::Corruption(
            at_line(line_no, "malformed edge weight '" + std::string(p) +
                                 "' (expected a number)"));
        break;
      }
      p = skip_space(end);
      if (!at_eol(p)) {
        status = Status::Corruption(at_line(
            line_no, "trailing garbage after edge weight: '" +
                         std::string(p) + "'"));
        break;
      }
    }
    if (u > kInvalidNode - 1 || v > kInvalidNode - 1) {
      status = Status::OutOfRange(
          at_line(line_no, "node id exceeds 32-bit range"));
      break;
    }
    if (options.dedup_duplicates && u != v) {
      const uint64_t lo = u < v ? u : v;
      const uint64_t hi = u < v ? v : u;
      if (!seen.insert((lo << 32) | hi).second) continue;
    }
    const Status added =
        builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v), w);
    if (!added.ok()) {
      // Builder rejections (negative/zero/non-finite weight, endpoint out
      // of a fixed node range) gain the file:line prefix on the way out.
      status = Status(added.code(), at_line(line_no, added.message()));
      break;
    }
  }
  std::fclose(f);
  FLOS_RETURN_IF_ERROR(status);
  return std::move(builder).Build();
}

Status WriteEdgeList(const Graph& graph, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot create edge list: " + path);
  }
  std::fprintf(f, "# flos edge list: %llu nodes, %llu edges\n",
               static_cast<unsigned long long>(graph.NumNodes()),
               static_cast<unsigned long long>(graph.NumEdges()));
  for (uint64_t u = 0; u < graph.NumNodes(); ++u) {
    const auto ids = graph.NeighborIds(static_cast<NodeId>(u));
    const auto ws = graph.NeighborWeights(static_cast<NodeId>(u));
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] <= u) continue;  // emit each undirected edge once
      std::fprintf(f, "%llu %u %.17g\n", static_cast<unsigned long long>(u),
                   ids[i], ws[i]);
    }
  }
  if (std::fclose(f) != 0) {
    return Status::IoError("failed writing edge list: " + path);
  }
  return Status::OK();
}

}  // namespace flos
