// Uniform neighbor-query interface over graph storage.
//
// Local search algorithms (FLoS and the local baselines) touch a graph only
// through this interface: fetch a node's neighbor list, probe a node's
// weighted degree, and consult the global degree order. This mirrors the
// paper's disk-resident experiment, where FLoS "only calls some basic query
// functions provided by Neo4j, such as querying the neighbors of one node"
// (Section 6.4). `InMemoryAccessor` wraps a `Graph`; `storage/DiskGraph`
// implements the same interface over an on-disk adjacency file.

#ifndef FLOS_GRAPH_ACCESSOR_H_
#define FLOS_GRAPH_ACCESSOR_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace flos {

/// One neighbor of a node, with the connecting edge's weight.
struct Neighbor {
  NodeId id;
  double weight;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

/// Counters describing how much of the graph an algorithm touched.
struct AccessStats {
  uint64_t neighbor_fetches = 0;  ///< CopyNeighbors calls
  uint64_t degree_probes = 0;     ///< WeightedDegree calls
  uint64_t cache_hits = 0;        ///< disk block cache hits (disk only)
  uint64_t cache_misses = 0;      ///< disk block cache misses (disk only)
  uint64_t bytes_read = 0;        ///< bytes read from disk (disk only)
};

/// Read-only neighbor-query interface shared by in-memory and disk graphs.
///
/// Thread-safety contract (serving pattern): the underlying graph storage
/// is immutable after construction and may be shared by any number of
/// threads, but a GraphAccessor instance is thread-COMPATIBLE, not
/// thread-safe — it carries mutable per-client state (access counters
/// here; block caches and file handles in DiskGraph). Concurrent queries
/// must therefore use one accessor instance per thread, all backed by the
/// same shared graph: construct one `InMemoryAccessor` per thread over one
/// `const Graph`, or `DiskGraph::Open` the same file once per thread.
/// `BatchTopK` (core/batch_topk.h) follows exactly this pattern.
class GraphAccessor {
 public:
  virtual ~GraphAccessor() = default;

  /// Number of nodes; ids are dense in [0, NumNodes()).
  virtual uint64_t NumNodes() const = 0;

  /// Number of undirected edges.
  virtual uint64_t NumEdges() const = 0;

  /// Weighted degree w_u. Cheap (index lookup; no adjacency read on disk).
  /// Non-const: implementations count probes and may touch caches.
  virtual double WeightedDegree(NodeId u) = 0;

  /// Appends nothing and overwrites `*out` with u's neighbors (sorted by id).
  /// Non-const: implementations count fetches and may touch caches.
  virtual Status CopyNeighbors(NodeId u, std::vector<Neighbor>* out) = 0;

  /// Node ids sorted by descending weighted degree. Used by FLoS_RWR to
  /// bound the maximum degree among unvisited nodes.
  virtual const std::vector<NodeId>& DegreeOrder() const = 0;

  /// Largest weighted degree in the graph.
  virtual double MaxWeightedDegree() const = 0;

  /// Topology version of the underlying graph. Strictly increases whenever
  /// the graph an accessor serves changes (DynamicGraph bumps it per
  /// update); immutable storage reports the constant 0. Consumers that
  /// memoize derived answers — the serving layer's QueryCache — key on
  /// this epoch, so entries computed against an older topology can never
  /// match again: exact invalidation without tracking which nodes changed.
  virtual uint64_t Epoch() const { return 0; }

  /// Upper bound on the weighted degree of any node that exists in the full
  /// logical graph but is NOT represented by this accessor. Whole-graph
  /// storage returns 0 (every node is present). A ShardAccessor
  /// (graph/partition.h) serves only a partition's core plus its replicated
  /// halo, so FLoS_RWR's unknown-degree bound must also cover the off-shard
  /// remainder; returning the off-shard maximum here keeps that bound — and
  /// therefore certification — sound on shard-local graphs.
  virtual double ExternalDegreeBound() const { return 0; }

  /// True when CopyNeighbors(u) returns u's COMPLETE adjacency in the full
  /// logical graph. Whole-graph storage always does. A ShardAccessor's
  /// outermost halo ring stores only the edges that lead back toward the
  /// core, so its fringe rows are truncated: the fetched list sums to less
  /// than WeightedDegree(u) (which is always the FULL-graph degree, from
  /// the partition sidecar). LocalGraph uses this to track the hidden
  /// transition mass per row, which the bound engines must route to the
  /// dummy node for certification to stay sound on shard-local graphs.
  virtual bool CompleteAdjacency(NodeId u) const {
    (void)u;
    return true;
  }

  /// True when per-query workspaces over this accessor should index visited
  /// nodes with O(NumNodes())-memory dense stamp arrays (fastest lookups;
  /// right for in-memory CSR graphs). False steers them to hashing with
  /// memory proportional to the visited set (right for disk-resident
  /// graphs, whose node count may dwarf what each worker should pin).
  virtual bool DenseIndexHint() const { return false; }

  /// Access counters accumulated since construction or ResetStats.
  const AccessStats& stats() const { return stats_; }
  void ResetStats() { stats_ = AccessStats{}; }

 protected:
  AccessStats stats_;
};

/// `GraphAccessor` over an in-memory `Graph`. Does not own the graph; the
/// graph must outlive the accessor.
class InMemoryAccessor final : public GraphAccessor {
 public:
  explicit InMemoryAccessor(const Graph* graph) : graph_(graph) {}

  uint64_t NumNodes() const override { return graph_->NumNodes(); }
  uint64_t NumEdges() const override { return graph_->NumEdges(); }
  double WeightedDegree(NodeId u) override {
    ++stats_.degree_probes;
    return graph_->WeightedDegree(u);
  }
  Status CopyNeighbors(NodeId u, std::vector<Neighbor>* out) override;
  const std::vector<NodeId>& DegreeOrder() const override {
    return graph_->DegreeOrder();
  }
  double MaxWeightedDegree() const override {
    return graph_->MaxWeightedDegree();
  }
  bool DenseIndexHint() const override { return true; }

  const Graph& graph() const { return *graph_; }

 private:
  const Graph* graph_;
};

}  // namespace flos

#endif  // FLOS_GRAPH_ACCESSOR_H_
