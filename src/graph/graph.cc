#include "graph/graph.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

namespace flos {

double Graph::EdgeWeight(NodeId u, NodeId v) const {
  const auto ids = NeighborIds(u);
  const auto it = std::lower_bound(ids.begin(), ids.end(), v);
  if (it == ids.end() || *it != v) return 0;
  return weights_[offsets_[u] + (it - ids.begin())];
}

void Graph::FinalizeDerived() {
  const uint64_t n = NumNodes();
  directed_edge_count_ = neighbors_.size();
  weighted_degree_.assign(n, 0.0);
  for (uint64_t u = 0; u < n; ++u) {
    double sum = 0;
    for (uint64_t e = offsets_[u]; e < offsets_[u + 1]; ++e) sum += weights_[e];
    weighted_degree_[u] = sum;
  }
  max_weighted_degree_ =
      weighted_degree_.empty()
          ? 0.0
          : *std::max_element(weighted_degree_.begin(), weighted_degree_.end());
  degree_order_.resize(n);
  std::iota(degree_order_.begin(), degree_order_.end(), NodeId{0});
  std::sort(degree_order_.begin(), degree_order_.end(),
            [this](NodeId a, NodeId b) {
              if (weighted_degree_[a] != weighted_degree_[b]) {
                return weighted_degree_[a] > weighted_degree_[b];
              }
              return a < b;
            });
}

Result<Graph> GraphFromCsrParts(std::vector<uint64_t> offsets,
                                std::vector<NodeId> neighbors,
                                std::vector<double> weights) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != neighbors.size() || neighbors.size() != weights.size()) {
    return Status::Corruption("inconsistent CSR part sizes");
  }
  const uint64_t n = offsets.size() - 1;
  for (uint64_t u = 0; u < n; ++u) {
    if (offsets[u] > offsets[u + 1]) {
      return Status::Corruption("CSR offsets not monotone");
    }
    for (uint64_t e = offsets[u]; e < offsets[u + 1]; ++e) {
      if (neighbors[e] >= n) return Status::Corruption("neighbor id out of range");
      if (e > offsets[u] && neighbors[e] <= neighbors[e - 1]) {
        return Status::Corruption("neighbor list not strictly sorted");
      }
      if (!(weights[e] > 0) || !std::isfinite(weights[e])) {
        return Status::Corruption("non-positive or non-finite edge weight");
      }
    }
  }
  Graph g;
  g.offsets_ = std::move(offsets);
  g.neighbors_ = std::move(neighbors);
  g.weights_ = std::move(weights);
  g.FinalizeDerived();
  // Symmetry check: every half-edge must have its reverse.
  for (uint64_t u = 0; u < n; ++u) {
    for (const NodeId v : g.NeighborIds(static_cast<NodeId>(u))) {
      if (g.EdgeWeight(v, static_cast<NodeId>(u)) !=
          g.EdgeWeight(static_cast<NodeId>(u), v)) {
        return Status::Corruption("graph is not symmetric");
      }
    }
  }
  return g;
}

Status GraphBuilder::AddEdge(NodeId u, NodeId v, double w) {
  if (u == v) {
    if (options_.ignore_self_loops) return Status::OK();
    return Status::InvalidArgument("self-loop at node " + std::to_string(u));
  }
  if (!(w > 0) || !std::isfinite(w)) {
    return Status::InvalidArgument("edge weight must be positive and finite");
  }
  if (options_.num_nodes >= 0) {
    const auto n = static_cast<uint64_t>(options_.num_nodes);
    if (u >= n || v >= n) {
      return Status::OutOfRange("edge endpoint exceeds fixed node count");
    }
  }
  edges_.push_back({u, v, w});
  max_node_ = std::max({max_node_, u, v});
  saw_node_ = true;
  ++num_added_;
  return Status::OK();
}

Result<Graph> GraphBuilder::Build() && {
  uint64_t n = 0;
  if (options_.num_nodes >= 0) {
    n = static_cast<uint64_t>(options_.num_nodes);
  } else if (saw_node_) {
    n = static_cast<uint64_t>(max_node_) + 1;
  }

  // Materialize both directions, then sort per-source and merge duplicates.
  struct Half {
    NodeId src;
    NodeId dst;
    double w;
  };
  std::vector<Half> halves;
  halves.reserve(edges_.size() * 2);
  for (const RawEdge& e : edges_) {
    halves.push_back({e.u, e.v, e.w});
    halves.push_back({e.v, e.u, e.w});
  }
  edges_.clear();
  edges_.shrink_to_fit();
  std::sort(halves.begin(), halves.end(), [](const Half& a, const Half& b) {
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  });

  Graph g;
  g.offsets_.assign(n + 1, 0);
  g.neighbors_.reserve(halves.size());
  g.weights_.reserve(halves.size());
  size_t i = 0;
  for (uint64_t u = 0; u < n; ++u) {
    g.offsets_[u] = g.neighbors_.size();
    while (i < halves.size() && halves[i].src == u) {
      const NodeId dst = halves[i].dst;
      double w = 0;
      while (i < halves.size() && halves[i].src == u && halves[i].dst == dst) {
        w += halves[i].w;  // duplicate edges accumulate weight
        ++i;
      }
      g.neighbors_.push_back(dst);
      g.weights_.push_back(w);
    }
  }
  g.offsets_[n] = g.neighbors_.size();
  g.FinalizeDerived();
  return g;
}

}  // namespace flos
