// Dynamic (updatable) graph behind the GraphAccessor interface.
//
// The paper's central motivation for local search is that global methods
// "precompute and store the inversion of a matrix... [which] needs to be
// repeated whenever the graph changes" (Section 1). FLoS needs no
// preprocessing, so it answers correctly IMMEDIATELY after updates.
// `DynamicGraph` makes that concrete: it layers an insert-only delta over
// an immutable CSR base, serves the merged view through GraphAccessor
// (so FLoS and the local baselines run on it unchanged), and can compact
// the delta back into CSR when it grows large.
//
// Supported updates: edge insertion (new edges, or weight increments on
// existing ones) and node addition. Deletions are intentionally out of
// scope — random-walk proximities are defined on the current topology and
// deletion support would complicate the merge path for little
// reproduction value; rebuild via Compact()+GraphBuilder for removals.

#ifndef FLOS_GRAPH_DYNAMIC_GRAPH_H_
#define FLOS_GRAPH_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/accessor.h"
#include "graph/graph.h"
#include "util/status.h"

namespace flos {

/// Mutable graph: immutable CSR base + per-node insertion deltas.
class DynamicGraph final : public GraphAccessor {
 public:
  /// Starts from `base` (may be an empty Graph).
  explicit DynamicGraph(Graph base);

  /// Inserts undirected edge {u, v} with weight `w` > 0. If the edge
  /// already exists (in the base or the delta), the weights accumulate —
  /// the same semantics as GraphBuilder. Node ids must be < NumNodes().
  Status AddEdge(NodeId u, NodeId v, double w = 1.0);

  /// Appends a new isolated node and returns its id.
  NodeId AddNode();

  /// Folds the delta into a fresh CSR base. Invalidates nothing
  /// observable; afterwards delta_edges() == 0.
  Status Compact();

  /// Materializes the current graph as an immutable CSR snapshot.
  Result<Graph> Snapshot() const;

  /// Number of undirected edges currently in the delta layer.
  uint64_t delta_edges() const { return delta_edge_count_; }

  // GraphAccessor interface.
  uint64_t NumNodes() const override { return num_nodes_; }
  uint64_t NumEdges() const override;
  double WeightedDegree(NodeId u) override;
  Status CopyNeighbors(NodeId u, std::vector<Neighbor>* out) override;
  const std::vector<NodeId>& DegreeOrder() const override;
  double MaxWeightedDegree() const override { return max_weighted_degree_; }
  /// Bumped on every successful AddEdge/AddNode. Compact() does not bump:
  /// it changes the representation, never the served topology.
  uint64_t Epoch() const override { return epoch_; }

 private:
  /// Returns the delta adjacency row of `u` (sorted by neighbor id).
  std::vector<Neighbor>& DeltaRow(NodeId u) { return delta_[u]; }

  Graph base_;
  uint64_t num_nodes_ = 0;
  uint64_t delta_edge_count_ = 0;
  uint64_t epoch_ = 0;
  std::vector<std::vector<Neighbor>> delta_;   // sorted per node
  std::vector<double> weighted_degree_;        // merged, maintained online
  double max_weighted_degree_ = 0;
  /// Degree order is a lazily recomputed cache (mutable so the logically
  /// const DegreeOrder() accessor can refresh it after updates).
  mutable bool degree_order_dirty_ = true;
  mutable std::vector<NodeId> degree_order_;
};

}  // namespace flos

#endif  // FLOS_GRAPH_DYNAMIC_GRAPH_H_
