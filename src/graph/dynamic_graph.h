// Dynamic (updatable) graph behind the GraphAccessor interface.
//
// The paper's central motivation for local search is that global methods
// "precompute and store the inversion of a matrix... [which] needs to be
// repeated whenever the graph changes" (Section 1). FLoS needs no
// preprocessing, so it answers correctly IMMEDIATELY after updates.
// `DynamicGraph` makes that concrete: it layers an insert-only delta over
// an immutable CSR base, serves the merged view through GraphAccessor
// (so FLoS and the local baselines run on it unchanged), and can compact
// the delta back into CSR when it grows large.
//
// Supported updates: edge insertion (new edges, or weight increments on
// existing ones) and node addition. Deletions are intentionally out of
// scope — random-walk proximities are defined on the current topology and
// deletion support would complicate the merge path for little
// reproduction value; rebuild via Compact()+GraphBuilder for removals.

#ifndef FLOS_GRAPH_DYNAMIC_GRAPH_H_
#define FLOS_GRAPH_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/accessor.h"
#include "graph/graph.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace flos {

/// Mutable graph: immutable CSR base + per-node insertion deltas.
///
/// Threading: single-writer. Mutations (AddEdge/AddNode/Compact) must be
/// externally serialized against each other AND against reads — the
/// ROADMAP's epoch-based lock-free reader design is the planned
/// replacement. The one exception is DegreeOrder(): it is a lazily
/// recomputed cache behind a `const` accessor, so two concurrent READERS
/// would otherwise race on refreshing it; that refresh is serialized
/// internally under `degree_order_mu_` (annotated below), making
/// all-reader sharing of a quiescent DynamicGraph safe.
class DynamicGraph final : public GraphAccessor {
 public:
  /// Starts from `base` (may be an empty Graph).
  explicit DynamicGraph(Graph base);

  /// Inserts undirected edge {u, v} with weight `w` > 0. If the edge
  /// already exists (in the base or the delta), the weights accumulate —
  /// the same semantics as GraphBuilder. Node ids must be < NumNodes().
  Status AddEdge(NodeId u, NodeId v, double w = 1.0);

  /// Appends a new isolated node and returns its id.
  NodeId AddNode();

  /// Folds the delta into a fresh CSR base. Invalidates nothing
  /// observable; afterwards delta_edges() == 0.
  Status Compact();

  /// Materializes the current graph as an immutable CSR snapshot.
  Result<Graph> Snapshot() const;

  /// Number of undirected edges currently in the delta layer.
  uint64_t delta_edges() const { return delta_edge_count_; }

  // GraphAccessor interface.
  uint64_t NumNodes() const override { return num_nodes_; }
  uint64_t NumEdges() const override;
  double WeightedDegree(NodeId u) override;
  Status CopyNeighbors(NodeId u, std::vector<Neighbor>* out) override;
  const std::vector<NodeId>& DegreeOrder() const override
      FLOS_EXCLUDES(degree_order_mu_);
  double MaxWeightedDegree() const override { return max_weighted_degree_; }
  /// Bumped on every successful AddEdge/AddNode. Compact() does not bump:
  /// it changes the representation, never the served topology.
  uint64_t Epoch() const override { return epoch_; }

 private:
  /// Returns the delta adjacency row of `u` (sorted by neighbor id).
  std::vector<Neighbor>& DeltaRow(NodeId u) { return delta_[u]; }

  /// Writer-side invalidation of the lazy degree-order cache.
  void MarkDegreeOrderDirty() FLOS_EXCLUDES(degree_order_mu_);

  Graph base_;
  uint64_t num_nodes_ = 0;
  uint64_t delta_edge_count_ = 0;
  uint64_t epoch_ = 0;
  std::vector<std::vector<Neighbor>> delta_;   // sorted per node
  std::vector<double> weighted_degree_;        // merged, maintained online
  double max_weighted_degree_ = 0;
  /// Degree order is a lazily recomputed cache (mutable so the logically
  /// const DegreeOrder() accessor can refresh it after updates). The
  /// refresh is the one reader-side mutation in the class, so it runs
  /// under its own leaf mutex; the returned reference stays valid until
  /// the next mutation, per the single-writer contract above.
  mutable Mutex degree_order_mu_;
  mutable bool degree_order_dirty_ FLOS_GUARDED_BY(degree_order_mu_) = true;
  mutable std::vector<NodeId> degree_order_
      FLOS_GUARDED_BY(degree_order_mu_);
};

}  // namespace flos

#endif  // FLOS_GRAPH_DYNAMIC_GRAPH_H_
