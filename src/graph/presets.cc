#include "graph/presets.h"

#include <algorithm>

#include "graph/generators.h"

namespace flos {

const std::vector<GraphPreset>& RealGraphPresets() {
  static const std::vector<GraphPreset>* const kPresets =
      // Intentionally leaked function-local singleton: avoids a static
      // destructor racing exit-time readers.
      new std::vector<GraphPreset>{  // lint:allow(no-naked-new)
          // name, stands_for, paper |V|, paper |E|, R-MAT 'a'
          {"az", "Amazon (SNAP com-amazon)", 334863, 925872, 0.45},
          {"dp", "DBLP (SNAP com-dblp)", 317080, 1049866, 0.45},
          {"yt", "Youtube (SNAP com-youtube)", 1134890, 2987624, 0.5},
          {"lj", "LiveJournal (SNAP com-lj)", 3997962, 34681189, 0.5},
      };
  return *kPresets;
}

Result<GraphPreset> FindPreset(const std::string& name) {
  for (const GraphPreset& p : RealGraphPresets()) {
    if (p.name == name) return p;
  }
  return Status::NotFound("unknown graph preset: " + name);
}

Result<Graph> BuildPresetGraph(const GraphPreset& preset, double scale,
                               uint64_t seed) {
  if (!(scale > 0) || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  GeneratorOptions options;
  options.num_nodes = std::max<uint64_t>(
      64, static_cast<uint64_t>(static_cast<double>(preset.paper_nodes) *
                                scale));
  options.num_edges = std::max<uint64_t>(
      options.num_nodes,
      static_cast<uint64_t>(static_cast<double>(preset.paper_edges) * scale));
  options.seed = seed;
  RmatParams params;
  params.a = preset.rmat_a;
  const double rest = (1.0 - params.a) / 3.0;
  // Keep GTgraph's b = c shape with the remainder split 1:1:1 when a moves.
  params.b = rest;
  params.c = rest;
  params.d = 1.0 - params.a - params.b - params.c;
  return GenerateRmat(options, params);
}

}  // namespace flos
