#include "graph/traversal.h"

#include <deque>

namespace flos {

std::vector<int32_t> BfsDistances(const Graph& graph, NodeId source) {
  std::vector<int32_t> dist(graph.NumNodes(), -1);
  if (source >= graph.NumNodes()) return dist;
  std::deque<NodeId> queue = {source};
  dist[source] = 0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const NodeId v : graph.NeighborIds(u)) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<NodeId> BfsBall(const Graph& graph, NodeId source,
                            uint32_t max_hops) {
  std::vector<NodeId> ball;
  if (source >= graph.NumNodes()) return ball;
  std::vector<int32_t> dist(graph.NumNodes(), -1);
  std::deque<NodeId> queue = {source};
  dist[source] = 0;
  ball.push_back(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    if (static_cast<uint32_t>(dist[u]) >= max_hops) continue;
    for (const NodeId v : graph.NeighborIds(u)) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
        ball.push_back(v);
      }
    }
  }
  return ball;
}

ComponentResult ConnectedComponents(const Graph& graph) {
  ComponentResult result;
  const uint64_t n = graph.NumNodes();
  result.component.assign(n, static_cast<uint32_t>(-1));
  std::deque<NodeId> queue;
  for (uint64_t s = 0; s < n; ++s) {
    if (result.component[s] != static_cast<uint32_t>(-1)) continue;
    const auto id = static_cast<uint32_t>(result.num_components++);
    result.component[s] = id;
    queue.push_back(static_cast<NodeId>(s));
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (const NodeId v : graph.NeighborIds(u)) {
        if (result.component[v] == static_cast<uint32_t>(-1)) {
          result.component[v] = id;
          queue.push_back(v);
        }
      }
    }
  }
  return result;
}

}  // namespace flos
