// Plain-text edge list reading and writing (SNAP-compatible format).
//
// Input lines are `u v [w]` separated by whitespace; lines starting with '#'
// or '%' are comments. This is the format of the SNAP datasets the paper
// evaluates on, so a user with those files can load them directly.

#ifndef FLOS_GRAPH_EDGE_LIST_IO_H_
#define FLOS_GRAPH_EDGE_LIST_IO_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace flos {

struct EdgeListOptions {
  /// Treat repeated occurrences of the same undirected edge (in either
  /// direction) as one edge, keeping the first weight seen. SNAP files often
  /// repeat edges. When false, duplicates accumulate weight per GraphBuilder
  /// semantics.
  bool dedup_duplicates = true;
  /// Drop self-loops instead of failing.
  bool ignore_self_loops = true;
  /// If >= 0, the graph has exactly this many nodes: ids >= num_nodes fail,
  /// and trailing isolated nodes survive a round-trip (an edge list alone
  /// cannot represent them). Shard loading (graph/partition.h) passes the
  /// node count recorded in the shard map. If < 0, the node count is
  /// 1 + max node id seen.
  int64_t num_nodes = -1;
};

/// Parses an edge list file into a Graph. Parsing is strict: malformed
/// rows (bad ids, non-numeric or non-positive weights, trailing garbage,
/// a truncated final line) fail with a `<path>:<line>: ...` Status rather
/// than being skipped, so a corrupt file can never silently load as a
/// smaller graph.
Result<Graph> ReadEdgeList(const std::string& path,
                           const EdgeListOptions& options = {});

/// Writes `graph` as `u v w` lines, one per undirected edge (u < v).
Status WriteEdgeList(const Graph& graph, const std::string& path);

}  // namespace flos

#endif  // FLOS_GRAPH_EDGE_LIST_IO_H_
