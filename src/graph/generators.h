// Synthetic graph generators used in the paper's evaluation (Section 6.3):
// Erdős–Rényi G(n, m) random graphs ("RAND") and R-MAT power-law graphs,
// matching the GTgraph parameterization the authors used.

#ifndef FLOS_GRAPH_GENERATORS_H_
#define FLOS_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace flos {

/// Common generator options.
struct GeneratorOptions {
  uint64_t num_nodes = 0;
  /// Target number of undirected edges. The generated graph has exactly this
  /// many distinct edges (duplicates and self-loops are resampled).
  uint64_t num_edges = 0;
  /// When true, edge weights are drawn uniformly from (0, 1]; otherwise all
  /// weights are 1 (the paper's setting).
  bool random_weights = false;
  uint64_t seed = 1;
};

/// R-MAT recursive quadrant probabilities. Defaults are GTgraph's defaults
/// (a=0.45, b=0.15, c=0.15, d=0.25), which the paper states it used.
struct RmatParams {
  double a = 0.45;
  double b = 0.15;
  double c = 0.15;
  double d = 0.25;
};

/// Generates an Erdős–Rényi G(n, m) graph: m edges sampled uniformly from
/// all node pairs, without duplicates or self-loops.
Result<Graph> GenerateErdosRenyi(const GeneratorOptions& options);

/// Generates an R-MAT graph. `num_nodes` is rounded up to a power of two
/// internally for quadrant recursion; ids >= num_nodes are folded back, so
/// the result has exactly `num_nodes` node slots (some may be isolated,
/// as with GTgraph).
Result<Graph> GenerateRmat(const GeneratorOptions& options,
                           const RmatParams& params = {});

/// Generates a connected graph: a uniform random spanning tree on n nodes
/// plus (m - n + 1) extra ER edges. Useful for tests that need every query
/// node to reach k neighbors.
Result<Graph> GenerateConnected(const GeneratorOptions& options);

/// Generates a Watts-Strogatz small-world graph: a ring lattice where each
/// node connects to its `lattice_degree` nearest ring neighbors, with each
/// edge rewired to a random endpoint with probability `rewire_beta`. With
/// small beta this yields high clustering and LARGE diameter — the right
/// proxy for clustered real networks (Amazon, DBLP) in truncated-hitting-
/// time experiments, where an R-MAT proxy's tiny diameter would let the
/// L-hop ball swallow the whole graph. `options.num_edges` is ignored; the
/// edge count is num_nodes * lattice_degree / 2.
Result<Graph> GenerateWattsStrogatz(const GeneratorOptions& options,
                                    uint32_t lattice_degree,
                                    double rewire_beta);

}  // namespace flos

#endif  // FLOS_GRAPH_GENERATORS_H_
