#include "graph/generators.h"

#include <string>
#include <unordered_set>
#include <vector>

namespace flos {

namespace {

uint64_t PairKey(NodeId u, NodeId v) {
  const uint64_t lo = u < v ? u : v;
  const uint64_t hi = u < v ? v : u;
  return (lo << 32) | hi;
}

Status ValidateOptions(const GeneratorOptions& options) {
  if (options.num_nodes < 2) {
    return Status::InvalidArgument("generator needs at least 2 nodes");
  }
  if (options.num_nodes > kInvalidNode) {
    return Status::OutOfRange("node count exceeds 32-bit id space");
  }
  const uint64_t n = options.num_nodes;
  // Cap m at half the number of distinct pairs so rejection sampling
  // terminates quickly.
  const double max_pairs = 0.5 * static_cast<double>(n) *
                           static_cast<double>(n - 1) / 2.0;
  if (static_cast<double>(options.num_edges) > max_pairs) {
    return Status::InvalidArgument(
        "edge count too large for rejection sampling (> half of all pairs)");
  }
  return Status::OK();
}

double EdgeWeightFor(const GeneratorOptions& options, Rng* rng) {
  if (!options.random_weights) return 1.0;
  // (0, 1]: avoid zero weights, which GraphBuilder rejects.
  return 1.0 - rng->NextDouble();
}

}  // namespace

Result<Graph> GenerateErdosRenyi(const GeneratorOptions& options) {
  FLOS_RETURN_IF_ERROR(ValidateOptions(options));
  Rng rng(options.seed);
  GraphBuilder::Options builder_options;
  builder_options.num_nodes = static_cast<int64_t>(options.num_nodes);
  GraphBuilder builder(builder_options);
  std::unordered_set<uint64_t> seen;
  seen.reserve(options.num_edges * 2);
  while (seen.size() < options.num_edges) {
    const auto u = static_cast<NodeId>(rng.NextBounded(options.num_nodes));
    const auto v = static_cast<NodeId>(rng.NextBounded(options.num_nodes));
    if (u == v) continue;
    if (!seen.insert(PairKey(u, v)).second) continue;
    FLOS_RETURN_IF_ERROR(builder.AddEdge(u, v, EdgeWeightFor(options, &rng)));
  }
  return std::move(builder).Build();
}

Result<Graph> GenerateRmat(const GeneratorOptions& options,
                           const RmatParams& params) {
  FLOS_RETURN_IF_ERROR(ValidateOptions(options));
  const double total = params.a + params.b + params.c + params.d;
  if (total < 0.999 || total > 1.001) {
    return Status::InvalidArgument("R-MAT quadrant probabilities must sum to 1");
  }
  int levels = 0;
  uint64_t size = 1;
  while (size < options.num_nodes) {
    size <<= 1;
    ++levels;
  }
  Rng rng(options.seed);
  GraphBuilder::Options builder_options;
  builder_options.num_nodes = static_cast<int64_t>(options.num_nodes);
  GraphBuilder builder(builder_options);
  std::unordered_set<uint64_t> seen;
  seen.reserve(options.num_edges * 2);
  const double ab = params.a + params.b;
  const double abc = ab + params.c;
  while (seen.size() < options.num_edges) {
    uint64_t row = 0;
    uint64_t col = 0;
    for (int l = 0; l < levels; ++l) {
      const double r = rng.NextDouble();
      row <<= 1;
      col <<= 1;
      if (r < params.a) {
        // top-left: nothing to add
      } else if (r < ab) {
        col |= 1;
      } else if (r < abc) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    // Fold ids that land beyond num_nodes back into range (keeps skew).
    const auto u = static_cast<NodeId>(row % options.num_nodes);
    const auto v = static_cast<NodeId>(col % options.num_nodes);
    if (u == v) continue;
    if (!seen.insert(PairKey(u, v)).second) continue;
    FLOS_RETURN_IF_ERROR(builder.AddEdge(u, v, EdgeWeightFor(options, &rng)));
  }
  return std::move(builder).Build();
}

Result<Graph> GenerateConnected(const GeneratorOptions& options) {
  FLOS_RETURN_IF_ERROR(ValidateOptions(options));
  const uint64_t n = options.num_nodes;
  if (options.num_edges + 1 < n) {
    return Status::InvalidArgument(
        "connected graph needs at least num_nodes - 1 edges");
  }
  Rng rng(options.seed);
  GraphBuilder::Options builder_options;
  builder_options.num_nodes = static_cast<int64_t>(n);
  GraphBuilder builder(builder_options);
  std::unordered_set<uint64_t> seen;
  seen.reserve(options.num_edges * 2);
  // Random attachment tree: node i connects to a uniform earlier node.
  std::vector<NodeId> order(n);
  for (uint64_t i = 0; i < n; ++i) order[i] = static_cast<NodeId>(i);
  for (uint64_t i = n - 1; i > 0; --i) {
    std::swap(order[i], order[rng.NextBounded(i + 1)]);
  }
  for (uint64_t i = 1; i < n; ++i) {
    const NodeId u = order[i];
    const NodeId v = order[rng.NextBounded(i)];
    seen.insert(PairKey(u, v));
    FLOS_RETURN_IF_ERROR(builder.AddEdge(u, v, EdgeWeightFor(options, &rng)));
  }
  while (seen.size() < options.num_edges) {
    const auto u = static_cast<NodeId>(rng.NextBounded(n));
    const auto v = static_cast<NodeId>(rng.NextBounded(n));
    if (u == v) continue;
    if (!seen.insert(PairKey(u, v)).second) continue;
    FLOS_RETURN_IF_ERROR(builder.AddEdge(u, v, EdgeWeightFor(options, &rng)));
  }
  return std::move(builder).Build();
}

Result<Graph> GenerateWattsStrogatz(const GeneratorOptions& options,
                                    uint32_t lattice_degree,
                                    double rewire_beta) {
  if (options.num_nodes < 4) {
    return Status::InvalidArgument("Watts-Strogatz needs at least 4 nodes");
  }
  if (lattice_degree < 2 || lattice_degree % 2 != 0 ||
      lattice_degree >= options.num_nodes) {
    return Status::InvalidArgument(
        "lattice_degree must be even, >= 2 and < num_nodes");
  }
  if (rewire_beta < 0 || rewire_beta > 1) {
    return Status::InvalidArgument("rewire_beta must be in [0, 1]");
  }
  const uint64_t n = options.num_nodes;
  Rng rng(options.seed);
  GraphBuilder::Options builder_options;
  builder_options.num_nodes = static_cast<int64_t>(n);
  GraphBuilder builder(builder_options);
  std::unordered_set<uint64_t> seen;
  const uint32_t half = lattice_degree / 2;
  for (uint64_t u = 0; u < n; ++u) {
    for (uint32_t d = 1; d <= half; ++d) {
      NodeId a = static_cast<NodeId>(u);
      NodeId b = static_cast<NodeId>((u + d) % n);
      if (rng.NextBernoulli(rewire_beta)) {
        // Rewire the far endpoint to a uniform random node.
        b = static_cast<NodeId>(rng.NextBounded(n));
      }
      if (a == b || !seen.insert(PairKey(a, b)).second) continue;
      FLOS_RETURN_IF_ERROR(builder.AddEdge(a, b, EdgeWeightFor(options, &rng)));
    }
  }
  return std::move(builder).Build();
}

}  // namespace flos
