#include "graph/stats.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "graph/traversal.h"

namespace flos {

GraphStats ComputeStats(const Graph& graph) {
  GraphStats s;
  s.num_nodes = graph.NumNodes();
  s.num_edges = graph.NumEdges();
  if (s.num_nodes == 0) return s;
  s.avg_degree =
      2.0 * static_cast<double>(s.num_edges) / static_cast<double>(s.num_nodes);
  s.min_degree = static_cast<uint32_t>(-1);
  for (uint64_t u = 0; u < s.num_nodes; ++u) {
    const uint32_t d = graph.Degree(static_cast<NodeId>(u));
    s.max_degree = std::max(s.max_degree, d);
    s.min_degree = std::min(s.min_degree, d);
    if (d == 0) ++s.num_isolated;
  }
  const ComponentResult cc = ConnectedComponents(graph);
  s.num_components = cc.num_components;
  std::vector<uint64_t> sizes(cc.num_components, 0);
  for (const uint32_t c : cc.component) ++sizes[c];
  for (const uint64_t size : sizes) {
    s.largest_component = std::max(s.largest_component, size);
  }
  return s;
}

std::string StatsToString(const GraphStats& stats) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "|V|=%llu |E|=%llu density=%.1f max_deg=%u components=%llu "
                "largest_cc=%llu",
                static_cast<unsigned long long>(stats.num_nodes),
                static_cast<unsigned long long>(stats.num_edges),
                stats.avg_degree, stats.max_degree,
                static_cast<unsigned long long>(stats.num_components),
                static_cast<unsigned long long>(stats.largest_component));
  return buf;
}

}  // namespace flos
