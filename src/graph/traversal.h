// Breadth-first traversal utilities: hop distances, connected components,
// and BFS balls (used by the LS_THT baseline and by tests).

#ifndef FLOS_GRAPH_TRAVERSAL_H_
#define FLOS_GRAPH_TRAVERSAL_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace flos {

/// Hop distances from `source` to every node; unreachable nodes get -1.
std::vector<int32_t> BfsDistances(const Graph& graph, NodeId source);

/// All nodes within `max_hops` of `source` (including `source`), in BFS
/// order.
std::vector<NodeId> BfsBall(const Graph& graph, NodeId source,
                            uint32_t max_hops);

/// Component id per node (0-based, assigned in discovery order) and the
/// number of components.
struct ComponentResult {
  std::vector<uint32_t> component;
  uint64_t num_components = 0;
};
ComponentResult ConnectedComponents(const Graph& graph);

}  // namespace flos

#endif  // FLOS_GRAPH_TRAVERSAL_H_
