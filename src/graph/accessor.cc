#include "graph/accessor.h"

#include <string>

namespace flos {

Status InMemoryAccessor::CopyNeighbors(NodeId u, std::vector<Neighbor>* out) {
  if (u >= graph_->NumNodes()) {
    return Status::OutOfRange("node id " + std::to_string(u) +
                              " out of range");
  }
  ++stats_.neighbor_fetches;
  const auto ids = graph_->NeighborIds(u);
  const auto ws = graph_->NeighborWeights(u);
  out->clear();
  out->reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) out->push_back({ids[i], ws[i]});
  return Status::OK();
}

}  // namespace flos
