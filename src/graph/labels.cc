#include "graph/labels.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/check.h"
#include "util/rng.h"

namespace flos {

LabelId LabelTable::Intern(std::string_view name) {
  const auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  const LabelId id = static_cast<LabelId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

LabelId LabelTable::Find(std::string_view name) const {
  const auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kInvalidLabel : it->second;
}

void LabelStore::Builder::Add(NodeId node, LabelId label) {
  FLOS_CHECK_LT(static_cast<size_t>(node), per_node_.size(),
                "LabelStore::Builder::Add: node out of range");
  FLOS_CHECK(label != kInvalidLabel,
             "LabelStore::Builder::Add: invalid label id");
  per_node_[node].push_back(label);
}

LabelStore LabelStore::Builder::Build() && {
  LabelStore store;
  store.table_ = std::move(table_);
  store.counts_.assign(store.table_.size(), 0);
  store.offsets_.reserve(per_node_.size() + 1);
  store.offsets_.push_back(0);
  for (std::vector<LabelId>& labels : per_node_) {
    std::sort(labels.begin(), labels.end());
    labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
    for (const LabelId l : labels) {
      FLOS_CHECK_LT(l, store.table_.size(),
                    "LabelStore::Builder::Build: label id was never "
                    "interned in the builder's table");
      store.ids_.push_back(l);
      ++store.counts_[l];
    }
    store.offsets_.push_back(store.ids_.size());
  }
  return store;
}

LabelStore LabelStore::Project(
    std::span<const NodeId> local_to_global) const {
  LabelStore out;
  out.table_ = table_;  // ids stay global across shards
  out.counts_.assign(table_.size(), 0);
  out.offsets_.reserve(local_to_global.size() + 1);
  out.offsets_.push_back(0);
  for (const NodeId global : local_to_global) {
    FLOS_CHECK_LT(static_cast<uint64_t>(global), NumNodes(),
                  "LabelStore::Project: global id out of range");
    for (const LabelId l : Labels(global)) {
      out.ids_.push_back(l);
      ++out.counts_[l];
    }
    out.offsets_.push_back(out.ids_.size());
  }
  return out;
}

namespace {

Status ValidateGenOptions(const LabelGenOptions& options) {
  if (options.num_labels == 0) {
    return Status::InvalidArgument("label generator needs num_labels >= 1");
  }
  if (options.labels_per_node < 1 ||
      options.labels_per_node > options.num_labels) {
    return Status::InvalidArgument(
        "labels_per_node must be in [1, num_labels]");
  }
  return Status::OK();
}

/// Interns the universe "L0".."L<n-1>" so label id == universe index.
void InternUniverse(LabelStore::Builder* builder, uint32_t num_labels) {
  char name[16];
  for (uint32_t i = 0; i < num_labels; ++i) {
    std::snprintf(name, sizeof(name), "L%u", i);
    const LabelId id = builder->table().Intern(name);
    FLOS_CHECK_EQ(id, i, "label universe interned out of order");
  }
}

/// Draws `count` DISTINCT labels for one node from the distribution whose
/// cumulative weights are `cdf` (cdf.back() == 1), appending them via
/// builder->Add. Rejection sampling with a deterministic fallback: after a
/// bounded number of rejected draws the smallest-id unpicked label with
/// positive probability is taken, so pathological skew cannot stall the
/// generator (the fallback fires with vanishing probability in practice).
void SampleDistinctFromCdf(const std::vector<double>& cdf, uint32_t count,
                           Rng* rng, LabelStore::Builder* builder,
                           NodeId node, std::vector<LabelId>* picked) {
  picked->clear();
  const auto already_picked = [&](LabelId l) {
    return std::find(picked->begin(), picked->end(), l) != picked->end();
  };
  for (uint32_t draw = 0; draw < count; ++draw) {
    LabelId chosen = kInvalidLabel;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const double u = rng->NextDouble();
      const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
      const LabelId l = static_cast<LabelId>(
          std::min<size_t>(it - cdf.begin(), cdf.size() - 1));
      if (!already_picked(l)) {
        chosen = l;
        break;
      }
    }
    if (chosen == kInvalidLabel) {
      for (LabelId l = 0; l < cdf.size(); ++l) {
        const double mass = cdf[l] - (l == 0 ? 0.0 : cdf[l - 1]);
        if (mass > 0 && !already_picked(l)) {
          chosen = l;
          break;
        }
      }
    }
    FLOS_CHECK(chosen != kInvalidLabel,
               "label sampling exhausted the positive-probability universe");
    picked->push_back(chosen);
    builder->Add(node, chosen);
  }
}

Result<LabelStore> GenerateFromCdf(const LabelGenOptions& options,
                                   std::vector<double> cdf) {
  LabelStore::Builder builder(options.num_nodes);
  InternUniverse(&builder, options.num_labels);
  Rng rng(options.seed);
  std::vector<LabelId> picked;
  picked.reserve(options.labels_per_node);
  for (uint64_t node = 0; node < options.num_nodes; ++node) {
    SampleDistinctFromCdf(cdf, options.labels_per_node, &rng, &builder,
                          static_cast<NodeId>(node), &picked);
  }
  return std::move(builder).Build();
}

}  // namespace

Result<LabelStore> GenerateUniformLabels(const LabelGenOptions& options) {
  FLOS_RETURN_IF_ERROR(ValidateGenOptions(options));
  LabelStore::Builder builder(options.num_nodes);
  InternUniverse(&builder, options.num_labels);
  Rng rng(options.seed);
  for (uint64_t node = 0; node < options.num_nodes; ++node) {
    for (const uint64_t l :
         rng.SampleDistinct(options.num_labels, options.labels_per_node)) {
      builder.Add(static_cast<NodeId>(node), static_cast<LabelId>(l));
    }
  }
  return std::move(builder).Build();
}

Result<LabelStore> GenerateZipfLabels(const LabelGenOptions& options) {
  FLOS_RETURN_IF_ERROR(ValidateGenOptions(options));
  if (!(options.zipf_exponent > 0)) {
    return Status::InvalidArgument("zipf_exponent must be > 0");
  }
  std::vector<double> cdf(options.num_labels);
  double total = 0;
  for (uint32_t i = 0; i < options.num_labels; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i) + 1.0,
                            options.zipf_exponent);
    cdf[i] = total;
  }
  for (double& x : cdf) x /= total;
  return GenerateFromCdf(options, std::move(cdf));
}

Result<LabelStore> GenerateMultinomialLabels(
    const LabelGenOptions& options, std::span<const double> weights) {
  FLOS_RETURN_IF_ERROR(ValidateGenOptions(options));
  if (weights.size() != options.num_labels) {
    return Status::InvalidArgument(
        "multinomial weights must have num_labels entries");
  }
  double total = 0;
  uint32_t positive = 0;
  for (const double w : weights) {
    if (!(w >= 0) || !std::isfinite(w)) {
      return Status::InvalidArgument(
          "multinomial weights must be finite and >= 0");
    }
    if (w > 0) ++positive;
    total += w;
  }
  if (!(total > 0)) {
    return Status::InvalidArgument("multinomial weights must sum to > 0");
  }
  if (positive < options.labels_per_node) {
    return Status::InvalidArgument(
        "multinomial needs at least labels_per_node labels with positive "
        "weight");
  }
  std::vector<double> cdf(options.num_labels);
  double running = 0;
  for (uint32_t i = 0; i < options.num_labels; ++i) {
    running += weights[i] / total;
    cdf[i] = running;
  }
  cdf.back() = 1.0;
  return GenerateFromCdf(options, std::move(cdf));
}

namespace {

/// Reads one full line (of any length) into *out, without the newline.
/// Returns false at EOF with nothing read.
bool ReadLine(std::FILE* f, std::string* out) {
  out->clear();
  char buf[512];
  bool any = false;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    any = true;
    out->append(buf);
    if (!out->empty() && out->back() == '\n') {
      out->pop_back();
      return true;
    }
  }
  return any;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() &&
         (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

Result<LabelStore> ReadLabelFile(const std::string& path, int64_t num_nodes) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::IoError("cannot open label file: " + path);
  }
  const auto at_line = [&path](uint64_t line_no, const std::string& what) {
    return path + ":" + std::to_string(line_no) + ": " + what;
  };

  // Two passes over parsed rows would need the file in memory anyway, so
  // collect per-node name lists first and intern at the end (interning
  // order = first-appearance order, deterministic for a given file).
  std::vector<std::vector<std::string>> rows;
  std::string line;
  uint64_t line_no = 0;
  Status status = Status::OK();
  while (ReadLine(f, &line)) {
    ++line_no;
    const std::string_view trimmed = Trim(line);
    if (!trimmed.empty() && trimmed.front() == '#') continue;
    rows.emplace_back();
    if (trimmed.empty()) continue;  // node with no labels
    std::vector<std::string>& row = rows.back();
    size_t start = 0;
    const std::string body(trimmed);
    while (true) {
      const size_t comma = body.find(',', start);
      const std::string_view token = Trim(
          std::string_view(body).substr(start, comma == std::string::npos
                                                   ? std::string::npos
                                                   : comma - start));
      if (token.empty()) {
        status = Status::Corruption(
            at_line(line_no, "empty label name (stray comma?)"));
        break;
      }
      row.emplace_back(token);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    if (!status.ok()) break;
  }
  std::fclose(f);
  FLOS_RETURN_IF_ERROR(status);
  if (num_nodes >= 0 && rows.size() != static_cast<uint64_t>(num_nodes)) {
    return Status::Corruption(
        path + ": label file has " + std::to_string(rows.size()) +
        " node lines, graph has " + std::to_string(num_nodes) + " nodes");
  }

  LabelStore::Builder builder(rows.size());
  for (size_t node = 0; node < rows.size(); ++node) {
    for (const std::string& name : rows[node]) {
      builder.Add(static_cast<NodeId>(node), builder.table().Intern(name));
    }
  }
  return std::move(builder).Build();
}

Status WriteLabelFile(const LabelStore& store, const std::string& path) {
  // Names containing the format's structural characters cannot round-trip.
  for (LabelId l = 0; l < store.NumLabels(); ++l) {
    const std::string& name = store.table().Name(l);
    if (name.empty() || name.find(',') != std::string::npos ||
        name.find('\n') != std::string::npos || Trim(name) != name ||
        name.front() == '#') {
      return Status::InvalidArgument(
          "label name not representable in the label-file format: '" + name +
          "'");
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot create label file: " + path);
  }
  std::fprintf(f, "# flos labels: %llu nodes, %u labels\n",
               static_cast<unsigned long long>(store.NumNodes()),
               store.NumLabels());
  for (uint64_t node = 0; node < store.NumNodes(); ++node) {
    const auto labels = store.Labels(static_cast<NodeId>(node));
    for (size_t i = 0; i < labels.size(); ++i) {
      std::fprintf(f, "%s%s", i == 0 ? "" : ",",
                   store.table().Name(labels[i]).c_str());
    }
    std::fputc('\n', f);
  }
  if (std::fclose(f) != 0) {
    return Status::IoError("failed writing label file: " + path);
  }
  return Status::OK();
}

}  // namespace flos
