#include "graph/dynamic_graph.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

namespace flos {

DynamicGraph::DynamicGraph(Graph base) : base_(std::move(base)) {
  num_nodes_ = base_.NumNodes();
  delta_.resize(num_nodes_);
  weighted_degree_.resize(num_nodes_);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    weighted_degree_[u] = base_.WeightedDegree(u);
  }
  max_weighted_degree_ = base_.MaxWeightedDegree();
}

Status DynamicGraph::AddEdge(NodeId u, NodeId v, double w) {
  if (u >= num_nodes_ || v >= num_nodes_) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  if (u == v) return Status::InvalidArgument("self-loops are not allowed");
  if (!(w > 0) || !std::isfinite(w)) {
    return Status::InvalidArgument("edge weight must be positive and finite");
  }
  const auto delta_has = [&](NodeId src, NodeId dst) {
    const auto& row = delta_[src];
    const auto it = std::lower_bound(
        row.begin(), row.end(), dst,
        [](const Neighbor& n, NodeId id) { return n.id < id; });
    return it != row.end() && it->id == dst;
  };
  const bool existed =
      (u < base_.NumNodes() && base_.HasEdge(u, v)) || delta_has(u, v);
  const auto insert_half = [&](NodeId src, NodeId dst) {
    auto& row = delta_[src];
    const auto it = std::lower_bound(
        row.begin(), row.end(), dst,
        [](const Neighbor& n, NodeId id) { return n.id < id; });
    if (it != row.end() && it->id == dst) {
      it->weight += w;
    } else {
      row.insert(it, Neighbor{dst, w});
    }
  };
  insert_half(u, v);
  insert_half(v, u);
  if (!existed) ++delta_edge_count_;
  weighted_degree_[u] += w;
  weighted_degree_[v] += w;
  max_weighted_degree_ = std::max(
      {max_weighted_degree_, weighted_degree_[u], weighted_degree_[v]});
  MarkDegreeOrderDirty();
  ++epoch_;
  return Status::OK();
}

NodeId DynamicGraph::AddNode() {
  const auto id = static_cast<NodeId>(num_nodes_++);
  delta_.emplace_back();
  weighted_degree_.push_back(0.0);
  MarkDegreeOrderDirty();
  ++epoch_;
  return id;
}

uint64_t DynamicGraph::NumEdges() const {
  return base_.NumEdges() + delta_edge_count_;
}

double DynamicGraph::WeightedDegree(NodeId u) {
  ++stats_.degree_probes;
  return weighted_degree_[u];
}

Status DynamicGraph::CopyNeighbors(NodeId u, std::vector<Neighbor>* out) {
  if (u >= num_nodes_) {
    return Status::OutOfRange("node id " + std::to_string(u) +
                              " out of range");
  }
  ++stats_.neighbor_fetches;
  out->clear();
  // Merge the sorted base row with the sorted delta row, summing weights of
  // edges present in both.
  std::span<const NodeId> base_ids;
  std::span<const double> base_ws;
  if (u < base_.NumNodes()) {
    base_ids = base_.NeighborIds(u);
    base_ws = base_.NeighborWeights(u);
  }
  const auto& delta = delta_[u];
  out->reserve(base_ids.size() + delta.size());
  size_t bi = 0;
  size_t di = 0;
  while (bi < base_ids.size() || di < delta.size()) {
    if (di >= delta.size() ||
        (bi < base_ids.size() && base_ids[bi] < delta[di].id)) {
      out->push_back({base_ids[bi], base_ws[bi]});
      ++bi;
    } else if (bi >= base_ids.size() || delta[di].id < base_ids[bi]) {
      out->push_back(delta[di]);
      ++di;
    } else {
      out->push_back({base_ids[bi], base_ws[bi] + delta[di].weight});
      ++bi;
      ++di;
    }
  }
  return Status::OK();
}

void DynamicGraph::MarkDegreeOrderDirty() {
  MutexLock lock(degree_order_mu_);
  degree_order_dirty_ = true;
}

const std::vector<NodeId>& DynamicGraph::DegreeOrder() const {
  // Serialized refresh: without the lock, two concurrent readers of a
  // quiescent graph would both see the dirty flag and race on resorting
  // the shared cache — the one reader-side mutation in the class. The
  // reference is returned while the lock is still held; it stays valid
  // afterwards because only a (externally serialized) writer re-dirties.
  MutexLock lock(degree_order_mu_);
  if (degree_order_dirty_) {
    degree_order_.resize(num_nodes_);
    std::iota(degree_order_.begin(), degree_order_.end(), NodeId{0});
    std::sort(degree_order_.begin(), degree_order_.end(),
              [this](NodeId a, NodeId b) {
                if (weighted_degree_[a] != weighted_degree_[b]) {
                  return weighted_degree_[a] > weighted_degree_[b];
                }
                return a < b;
              });
    degree_order_dirty_ = false;
  }
  return degree_order_;
}

Result<Graph> DynamicGraph::Snapshot() const {
  GraphBuilder::Options options;
  options.num_nodes = static_cast<int64_t>(num_nodes_);
  GraphBuilder builder(options);
  for (NodeId u = 0; u < base_.NumNodes(); ++u) {
    const auto ids = base_.NeighborIds(u);
    const auto ws = base_.NeighborWeights(u);
    for (size_t e = 0; e < ids.size(); ++e) {
      if (ids[e] > u) {
        FLOS_RETURN_IF_ERROR(builder.AddEdge(u, ids[e], ws[e]));
      }
    }
  }
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (const Neighbor& nb : delta_[u]) {
      if (nb.id > u) {
        FLOS_RETURN_IF_ERROR(builder.AddEdge(u, nb.id, nb.weight));
      }
    }
  }
  return std::move(builder).Build();
}

Status DynamicGraph::Compact() {
  FLOS_ASSIGN_OR_RETURN(Graph merged, Snapshot());
  base_ = std::move(merged);
  delta_.assign(num_nodes_, {});
  delta_edge_count_ = 0;
  MarkDegreeOrderDirty();
  return Status::OK();
}

}  // namespace flos
