// Descriptive graph statistics, used to print the paper's dataset tables
// (Tables 4, 6, 7) for whatever graphs a bench run generates or loads.

#ifndef FLOS_GRAPH_STATS_H_
#define FLOS_GRAPH_STATS_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace flos {

/// Summary statistics of a graph.
struct GraphStats {
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  double avg_degree = 0;      ///< 2|E| / |V| ("density" in the paper's tables)
  uint32_t max_degree = 0;
  uint32_t min_degree = 0;
  uint64_t num_isolated = 0;  ///< nodes with degree 0
  uint64_t num_components = 0;
  uint64_t largest_component = 0;
};

/// Computes statistics in O(|V| + |E|).
GraphStats ComputeStats(const Graph& graph);

/// One-line rendering, e.g. "|V|=1024 |E|=4096 density=8.0 ...".
std::string StatsToString(const GraphStats& stats);

}  // namespace flos

#endif  // FLOS_GRAPH_STATS_H_
