#include "graph/partition.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <numeric>
#include <unordered_set>
#include <utility>

#include "graph/edge_list_io.h"
#include "util/check.h"
#include "util/rng.h"

namespace flos {

namespace {

constexpr uint32_t kUnassigned = std::numeric_limits<uint32_t>::max();
constexpr uint32_t kUnreached = std::numeric_limits<uint32_t>::max();

// Fibonacci mixing so hash placement is uncorrelated with generator id
// patterns (plain `v % shards` strides with R-MAT block structure).
uint32_t HashOwner(NodeId v, uint32_t num_shards) {
  uint64_t x = (static_cast<uint64_t>(v) + 1) * 0x9e3779b97f4a7c15ULL;
  x ^= x >> 32;
  return static_cast<uint32_t>(x % num_shards);
}

// Assigns every node an owner by multi-source BFS growth: one seed region
// per shard, then the currently smallest shard claims its next unassigned
// frontier candidate. Candidates are enqueued when their neighbor is
// claimed and may be stale by the time they are popped (another shard got
// there first), so claiming is pop-and-check — O(directed edges) total.
// Components unreachable from any live frontier are started from a fresh
// node, so every node gets an owner.
void BfsGrowOwners(const Graph& graph, uint32_t num_shards, uint64_t seed,
                   std::vector<uint32_t>* owner) {
  const uint64_t n = graph.NumNodes();
  std::vector<std::vector<NodeId>> queue(num_shards);
  std::vector<size_t> head(num_shards, 0);
  std::vector<uint64_t> size(num_shards, 0);
  uint64_t assigned = 0;

  Rng rng(seed);
  const std::vector<uint64_t> seeds = rng.SampleDistinct(n, num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    queue[s].push_back(static_cast<NodeId>(seeds[s]));
  }

  NodeId fresh_scan = 0;  // cursor for claiming isolated/new components
  while (assigned < n) {
    // Grow the smallest shard next (linear scan: num_shards is tiny).
    uint32_t best = 0;
    for (uint32_t s = 1; s < num_shards; ++s) {
      if (size[s] < size[best]) best = s;
    }
    NodeId claimed = kInvalidNode;
    while (head[best] < queue[best].size()) {
      const NodeId u = queue[best][head[best]++];
      if ((*owner)[u] == kUnassigned) {
        claimed = u;
        break;
      }
    }
    if (claimed == kInvalidNode) {
      // Frontier exhausted: seed a fresh component.
      while ((*owner)[fresh_scan] != kUnassigned) ++fresh_scan;
      claimed = fresh_scan;
    }
    (*owner)[claimed] = best;
    ++size[best];
    ++assigned;
    for (const NodeId v : graph.NeighborIds(claimed)) {
      if ((*owner)[v] == kUnassigned) queue[best].push_back(v);
    }
  }
}

}  // namespace

void ShardMeta::FinalizeDerived() {
  degree_order_.resize(local_to_global.size());
  std::iota(degree_order_.begin(), degree_order_.end(), NodeId{0});
  std::sort(degree_order_.begin(), degree_order_.end(),
            [this](NodeId a, NodeId b) {
              if (global_degree[a] != global_degree[b]) {
                return global_degree[a] > global_degree[b];
              }
              return a < b;
            });
}

Result<GraphPartition> PartitionGraph(const Graph& graph,
                                      const PartitionOptions& options) {
  const uint64_t n = graph.NumNodes();
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.halo_hops < 1) {
    return Status::InvalidArgument(
        "halo_hops must be >= 1 (the fringe ring is what makes clipping "
        "detectable)");
  }
  if (n < options.num_shards) {
    return Status::InvalidArgument("graph has fewer nodes than shards");
  }

  GraphPartition part;
  part.options = options;
  part.owner.assign(n, kUnassigned);
  if (options.method == PartitionMethod::kHash) {
    for (uint64_t v = 0; v < n; ++v) {
      part.owner[v] = HashOwner(static_cast<NodeId>(v), options.num_shards);
    }
  } else {
    BfsGrowOwners(graph, options.num_shards, options.seed, &part.owner);
  }

  for (uint64_t u = 0; u < n; ++u) {
    for (const NodeId v : graph.NeighborIds(static_cast<NodeId>(u))) {
      if (v > u && part.owner[u] != part.owner[v]) ++part.cut_edges;
    }
  }

  // Per-shard halo BFS + local graph extraction. `dist` is reused across
  // shards through the touched list.
  std::vector<uint32_t> dist(n, kUnreached);
  std::vector<NodeId> touched;
  std::vector<NodeId> local_of(n, kInvalidNode);
  part.shards.resize(options.num_shards);
  for (uint32_t s = 0; s < options.num_shards; ++s) {
    ShardPart& shard = part.shards[s];
    ShardMeta& meta = shard.meta;
    meta.shard_index = s;
    meta.num_shards = options.num_shards;
    meta.halo_hops = options.halo_hops;
    meta.global_nodes = n;

    // Ring 0 in ascending global id, then BFS rings in discovery order —
    // FIFO order makes local ids nondecreasing in ring distance, which is
    // what turns "expandable?" into `local < num_interior`.
    std::vector<NodeId>& order = meta.local_to_global;
    for (uint64_t v = 0; v < n; ++v) {
      if (part.owner[v] == s) {
        dist[v] = 0;
        order.push_back(static_cast<NodeId>(v));
      }
    }
    meta.num_core = static_cast<NodeId>(order.size());
    size_t bfs_head = 0;
    while (bfs_head < order.size()) {
      const NodeId u = order[bfs_head++];
      if (dist[u] >= options.halo_hops) continue;
      for (const NodeId v : graph.NeighborIds(u)) {
        if (dist[v] != kUnreached) continue;
        dist[v] = dist[u] + 1;
        order.push_back(v);
      }
    }
    meta.num_interior = meta.num_core;
    for (const NodeId v : order) {
      if (dist[v] != 0 && dist[v] < options.halo_hops) ++meta.num_interior;
    }
    touched = order;  // every node with dist set

    meta.global_degree.resize(order.size());
    for (NodeId l = 0; l < meta.num_local(); ++l) {
      local_of[order[l]] = l;
      meta.global_degree[l] = graph.WeightedDegree(order[l]);
    }
    meta.external_max_degree = 0;
    for (uint64_t v = 0; v < n; ++v) {
      if (dist[v] == kUnreached) {
        meta.external_max_degree = std::max(
            meta.external_max_degree, graph.WeightedDegree(static_cast<NodeId>(v)));
      }
    }
    meta.FinalizeDerived();

    // Shard edges: every global edge with at least one interior endpoint.
    // Both endpoints of such an edge are within ring h, so both have local
    // ids. Fringe-fringe edges are dropped — the fringe is never expanded,
    // so they could only be read through an expansion that never happens.
    GraphBuilder::Options builder_options;
    builder_options.num_nodes = static_cast<int64_t>(meta.num_local());
    GraphBuilder builder(builder_options);
    Status status = Status::OK();
    for (NodeId lu = 0; lu < meta.num_interior && status.ok(); ++lu) {
      const NodeId gu = order[lu];
      const auto ids = graph.NeighborIds(gu);
      const auto ws = graph.NeighborWeights(gu);
      for (size_t i = 0; i < ids.size(); ++i) {
        const NodeId gv = ids[i];
        const NodeId lv = local_of[gv];
        FLOS_DCHECK(lv != kInvalidNode,
                    "neighbor of an interior node fell outside the halo");
        const bool v_interior = lv < meta.num_interior;
        if (v_interior && gu >= gv) continue;  // added from the other side
        status = builder.AddEdge(lu, lv, ws[i]);
        if (!status.ok()) break;
      }
    }
    if (status.ok()) {
      FLOS_ASSIGN_OR_RETURN(shard.graph, std::move(builder).Build());
    }
    for (const NodeId v : touched) {
      dist[v] = kUnreached;
      local_of[v] = kInvalidNode;
    }
    FLOS_RETURN_IF_ERROR(status);
  }
  return part;
}

Status ShardAccessor::CopyNeighbors(NodeId u, std::vector<Neighbor>* out) {
  if (u >= graph_->NumNodes()) {
    return Status::OutOfRange("node id " + std::to_string(u) +
                              " out of range");
  }
  ++stats_.neighbor_fetches;
  const auto ids = graph_->NeighborIds(u);
  const auto ws = graph_->NeighborWeights(u);
  out->clear();
  out->reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) out->push_back({ids[i], ws[i]});
  return Status::OK();
}

double ShardAccessor::MaxWeightedDegree() const {
  double max_local = 0;
  if (!meta_->degree_order().empty()) {
    max_local = meta_->global_degree[meta_->degree_order().front()];
  }
  return std::max(max_local, meta_->external_max_degree);
}

std::string ShardEdgesPath(const std::string& dir, uint32_t shard) {
  return dir + "/shard" + std::to_string(shard) + ".edges";
}

std::string ShardMapPath(const std::string& dir, uint32_t shard) {
  return dir + "/shard" + std::to_string(shard) + ".map";
}

Status WriteShardFiles(const GraphPartition& partition,
                       const std::string& dir) {
  for (const ShardPart& shard : partition.shards) {
    const ShardMeta& meta = shard.meta;
    FLOS_RETURN_IF_ERROR(
        WriteEdgeList(shard.graph, ShardEdgesPath(dir, meta.shard_index)));
    const std::string path = ShardMapPath(dir, meta.shard_index);
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return Status::IoError("cannot create shard map: " + path);
    }
    std::fprintf(f, "# flos shard map: local id = line order\n");
    std::fprintf(f, "shard %u %u\n", meta.shard_index, meta.num_shards);
    std::fprintf(f, "halo_hops %u\n", meta.halo_hops);
    std::fprintf(f, "global_nodes %llu\n",
                 static_cast<unsigned long long>(meta.global_nodes));
    std::fprintf(f, "nodes %u %u %u\n", meta.num_local(), meta.num_core,
                 meta.num_interior);
    std::fprintf(f, "external_max_degree %.17g\n", meta.external_max_degree);
    for (NodeId l = 0; l < meta.num_local(); ++l) {
      std::fprintf(f, "%u %.17g\n", meta.local_to_global[l],
                   meta.global_degree[l]);
    }
    if (std::fclose(f) != 0) {
      return Status::IoError("failed writing shard map: " + path);
    }
  }
  return Status::OK();
}

namespace {

// Strict line-oriented parser mirroring edge_list_io: every malformed row
// is a hard `<path>:<line>:` error; a misparsed map would silently route
// queries to the wrong nodes.
class MapParser {
 public:
  MapParser(std::FILE* f, const std::string& path) : f_(f), path_(path) {}

  uint64_t line_no() const { return line_no_; }

  Status Fail(const std::string& what) const {
    return Status::Corruption(path_ + ":" + std::to_string(line_no_) + ": " +
                              what);
  }

  // Advances to the next non-comment, non-blank line. False on EOF.
  bool NextLine() {
    while (std::fgets(line_, sizeof(line_), f_) != nullptr) {
      ++line_no_;
      p_ = line_;
      SkipSpace();
      if (*p_ == '#' || *p_ == '%' || AtEol()) continue;
      return true;
    }
    return false;
  }

  Status ExpectWord(const char* word) {
    const size_t len = std::strlen(word);
    if (std::strncmp(p_, word, len) != 0) {
      return Fail(std::string("expected '") + word + "'");
    }
    p_ += len;
    SkipSpace();
    return Status::OK();
  }

  Status ParseU64(const char* what, uint64_t* out) {
    if (*p_ == '-') return Fail(std::string("negative ") + what);
    char* end = nullptr;
    *out = std::strtoull(p_, &end, 10);
    if (end == p_) return Fail(std::string("expected ") + what);
    p_ = end;
    SkipSpace();
    return Status::OK();
  }

  Status ParseDouble(const char* what, double* out) {
    char* end = nullptr;
    *out = std::strtod(p_, &end);
    if (end == p_) return Fail(std::string("expected ") + what);
    p_ = end;
    SkipSpace();
    return Status::OK();
  }

  Status ExpectEol() {
    if (!AtEol()) {
      return Fail("trailing garbage: '" + std::string(p_) + "'");
    }
    return Status::OK();
  }

 private:
  void SkipSpace() {
    while (*p_ == ' ' || *p_ == '\t' || *p_ == '\r') ++p_;
  }
  bool AtEol() const { return *p_ == '\n' || *p_ == '\0'; }

  std::FILE* f_;
  const std::string& path_;
  char line_[512];
  const char* p_ = line_;
  uint64_t line_no_ = 0;
};

Status ParseShardMap(MapParser* parser, ShardMeta* meta) {
  uint64_t u64 = 0;

  if (!parser->NextLine()) return parser->Fail("missing 'shard' header");
  FLOS_RETURN_IF_ERROR(parser->ExpectWord("shard"));
  FLOS_RETURN_IF_ERROR(parser->ParseU64("shard index", &u64));
  meta->shard_index = static_cast<uint32_t>(u64);
  FLOS_RETURN_IF_ERROR(parser->ParseU64("shard count", &u64));
  meta->num_shards = static_cast<uint32_t>(u64);
  FLOS_RETURN_IF_ERROR(parser->ExpectEol());
  if (meta->num_shards == 0 || meta->shard_index >= meta->num_shards) {
    return parser->Fail("shard index out of range");
  }

  if (!parser->NextLine()) return parser->Fail("missing 'halo_hops' header");
  FLOS_RETURN_IF_ERROR(parser->ExpectWord("halo_hops"));
  FLOS_RETURN_IF_ERROR(parser->ParseU64("halo hops", &u64));
  meta->halo_hops = static_cast<uint32_t>(u64);
  FLOS_RETURN_IF_ERROR(parser->ExpectEol());
  if (meta->halo_hops < 1) return parser->Fail("halo_hops must be >= 1");

  if (!parser->NextLine()) {
    return parser->Fail("missing 'global_nodes' header");
  }
  FLOS_RETURN_IF_ERROR(parser->ExpectWord("global_nodes"));
  FLOS_RETURN_IF_ERROR(parser->ParseU64("global node count", &u64));
  meta->global_nodes = u64;
  FLOS_RETURN_IF_ERROR(parser->ExpectEol());

  if (!parser->NextLine()) return parser->Fail("missing 'nodes' header");
  FLOS_RETURN_IF_ERROR(parser->ExpectWord("nodes"));
  uint64_t num_local = 0;
  uint64_t num_core = 0;
  uint64_t num_interior = 0;
  FLOS_RETURN_IF_ERROR(parser->ParseU64("local node count", &num_local));
  FLOS_RETURN_IF_ERROR(parser->ParseU64("core count", &num_core));
  FLOS_RETURN_IF_ERROR(parser->ParseU64("interior count", &num_interior));
  FLOS_RETURN_IF_ERROR(parser->ExpectEol());
  if (num_core > num_interior || num_interior > num_local ||
      num_local > meta->global_nodes || num_local > kInvalidNode) {
    return parser->Fail("node counts must satisfy core <= interior <= "
                        "local <= global");
  }
  meta->num_core = static_cast<NodeId>(num_core);
  meta->num_interior = static_cast<NodeId>(num_interior);

  if (!parser->NextLine()) {
    return parser->Fail("missing 'external_max_degree' header");
  }
  FLOS_RETURN_IF_ERROR(parser->ExpectWord("external_max_degree"));
  FLOS_RETURN_IF_ERROR(
      parser->ParseDouble("external max degree", &meta->external_max_degree));
  FLOS_RETURN_IF_ERROR(parser->ExpectEol());
  if (meta->external_max_degree < 0) {
    return parser->Fail("external_max_degree must be >= 0");
  }

  meta->local_to_global.reserve(num_local);
  meta->global_degree.reserve(num_local);
  std::unordered_set<NodeId> seen;
  seen.reserve(num_local);
  for (uint64_t l = 0; l < num_local; ++l) {
    if (!parser->NextLine()) {
      return parser->Fail("truncated map: expected " +
                          std::to_string(num_local) + " node rows, got " +
                          std::to_string(l));
    }
    uint64_t global = 0;
    double degree = 0;
    FLOS_RETURN_IF_ERROR(parser->ParseU64("global node id", &global));
    FLOS_RETURN_IF_ERROR(parser->ParseDouble("global degree", &degree));
    FLOS_RETURN_IF_ERROR(parser->ExpectEol());
    if (global >= meta->global_nodes) {
      return parser->Fail("global node id out of range");
    }
    if (!seen.insert(static_cast<NodeId>(global)).second) {
      return parser->Fail("duplicate global node id " +
                          std::to_string(global));
    }
    if (degree < 0) return parser->Fail("negative global degree");
    meta->local_to_global.push_back(static_cast<NodeId>(global));
    meta->global_degree.push_back(degree);
  }
  if (parser->NextLine()) {
    return parser->Fail("trailing rows after " + std::to_string(num_local) +
                        " node rows");
  }
  meta->FinalizeDerived();
  return Status::OK();
}

}  // namespace

Result<ShardMeta> ReadShardMap(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::IoError("cannot open shard map: " + path);
  }
  MapParser parser(f, path);
  ShardMeta meta;
  const Status status = ParseShardMap(&parser, &meta);
  std::fclose(f);
  FLOS_RETURN_IF_ERROR(status);
  return meta;
}

Result<Graph> ReadShardGraph(const std::string& path, const ShardMeta& meta) {
  EdgeListOptions options;
  options.num_nodes = static_cast<int64_t>(meta.num_local());
  // Shard files are written by WriteShardFiles with one row per edge;
  // accumulate rather than dedup so a corrupt duplicated row fails the
  // degree cross-check below instead of being silently absorbed.
  options.dedup_duplicates = false;
  FLOS_ASSIGN_OR_RETURN(Graph graph, ReadEdgeList(path, options));
  // Interior nodes must carry their complete global adjacency: their shard
  // degree must equal the recorded global degree. A mismatch means the
  // .edges and .map files are out of sync, which would silently produce
  // wrong certified answers.
  for (NodeId l = 0; l < meta.num_interior; ++l) {
    const double local_degree = graph.WeightedDegree(l);
    const double global_degree = meta.global_degree[l];
    const double tolerance =
        1e-9 * std::max(1.0, std::abs(global_degree));
    if (std::abs(local_degree - global_degree) > tolerance) {
      return Status::Corruption(
          path + ": interior node " + std::to_string(l) +
          " has shard degree " + std::to_string(local_degree) +
          " but the map records global degree " +
          std::to_string(global_degree) +
          " (edge list and map out of sync?)");
    }
  }
  return graph;
}

Result<ShardRouteTable> ShardRouteTable::Build(std::vector<ShardMeta> metas) {
  if (metas.empty()) {
    return Status::InvalidArgument("route table needs at least one shard");
  }
  const uint64_t n = metas[0].global_nodes;
  ShardRouteTable table;
  table.shard_of_.assign(n, kUnassigned);
  table.local_of_.assign(n, kInvalidNode);
  table.local_to_global_.resize(metas.size());
  for (size_t s = 0; s < metas.size(); ++s) {
    ShardMeta& meta = metas[s];
    if (meta.num_shards != metas.size()) {
      return Status::InvalidArgument(
          "shard map " + std::to_string(s) + " was cut for " +
          std::to_string(meta.num_shards) + " shards, not " +
          std::to_string(metas.size()));
    }
    if (meta.shard_index != s) {
      return Status::InvalidArgument(
          "shard map at position " + std::to_string(s) +
          " reports index " + std::to_string(meta.shard_index));
    }
    if (meta.global_nodes != n) {
      return Status::InvalidArgument(
          "shard maps disagree on the global node count");
    }
    for (NodeId l = 0; l < meta.num_core; ++l) {
      const NodeId g = meta.local_to_global[l];
      if (table.shard_of_[g] != kUnassigned) {
        return Status::Corruption(
            "global node " + std::to_string(g) + " is core in shards " +
            std::to_string(table.shard_of_[g]) + " and " +
            std::to_string(s));
      }
      table.shard_of_[g] = static_cast<uint32_t>(s);
      table.local_of_[g] = l;
    }
    table.local_to_global_[s] = std::move(meta.local_to_global);
  }
  for (uint64_t g = 0; g < n; ++g) {
    if (table.shard_of_[g] == kUnassigned) {
      return Status::Corruption("global node " + std::to_string(g) +
                                " is core in no shard");
    }
  }
  return table;
}

Result<NodeId> ShardRouteTable::ToGlobal(uint32_t shard, NodeId local) const {
  if (shard >= local_to_global_.size() ||
      local >= local_to_global_[shard].size()) {
    return Status::OutOfRange(
        "shard " + std::to_string(shard) + " local id " +
        std::to_string(local) + " is outside the remap table");
  }
  return local_to_global_[shard][local];
}

}  // namespace flos
