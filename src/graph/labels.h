// Per-node label store for filtered (label-constrained) top-k queries.
//
// Production graph workloads rarely ask for the unconstrained top-k: a
// request carries a predicate over node attributes ("top-k products in
// category X", "top-k authors with both tags"). This module provides the
// attribute side of that workload as a first-class structure, modeled on
// UNG's filtered-ANN label model: every node carries a small sorted set of
// label ids, label names are interned once in a `LabelTable`, and the
// per-node sets live in one CSR-style arena (offsets + flat id array) so a
// store over millions of nodes is two contiguous allocations.
//
// The store is immutable after Build and is shared read-only by every
// engine session of a server — the same lifetime contract as `Graph`. Per-
// label node counts are precomputed at build time; the engine uses them to
// cap k (and to certify an EMPTY filtered answer without any search) when
// a predicate can match fewer than k nodes graph-wide.
//
// Generators mirror UNG's synthetic label assignments (Zipf, multinomial,
// uniform), drawing from the deterministic `flos::Rng` so benchmarks are
// reproducible given a seed.

#ifndef FLOS_GRAPH_LABELS_H_
#define FLOS_GRAPH_LABELS_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace flos {

/// Dense label identifier in [0, NumLabels()).
using LabelId = uint32_t;

/// Sentinel for "no label".
inline constexpr LabelId kInvalidLabel = static_cast<LabelId>(-1);

/// Interned label-name table: bidirectional name <-> dense LabelId map.
/// Ids are assigned in interning order, so two tables built from the same
/// name sequence are identical (the generators rely on this).
class LabelTable {
 public:
  LabelTable() = default;

  /// Returns the id of `name`, interning it first if new.
  LabelId Intern(std::string_view name);

  /// Returns the id of `name`, or kInvalidLabel when it was never interned.
  LabelId Find(std::string_view name) const;

  /// Name of an interned id. `id` must be < size().
  const std::string& Name(LabelId id) const { return names_[id]; }

  uint32_t size() const { return static_cast<uint32_t>(names_.size()); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, LabelId> ids_;
};

/// Immutable per-node label sets in CSR form; build with LabelStore::Builder,
/// a generator, or ReadLabelFile.
class LabelStore {
 public:
  /// Constructs an empty store (0 nodes, 0 labels).
  LabelStore() = default;

  LabelStore(LabelStore&&) = default;
  LabelStore& operator=(LabelStore&&) = default;
  LabelStore(const LabelStore&) = default;
  LabelStore& operator=(const LabelStore&) = default;

  uint64_t NumNodes() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Size of the label universe (== table().size()).
  uint32_t NumLabels() const { return table_.size(); }

  /// Labels of `node`, sorted ascending, deduplicated.
  std::span<const LabelId> Labels(NodeId node) const {
    return {ids_.data() + offsets_[node], offsets_[node + 1] - offsets_[node]};
  }

  /// Number of nodes carrying `label` (graph-wide). Used by the engine to
  /// bound how many nodes a predicate can possibly match.
  uint64_t LabelNodeCount(LabelId label) const { return counts_[label]; }

  /// Total label assignments (sum of per-node set sizes).
  uint64_t NumAssignments() const { return ids_.size(); }

  const LabelTable& table() const { return table_; }

  /// Shard-local projection: result node i carries the labels of global
  /// node local_to_global[i]. The label table (and thus every LabelId) is
  /// preserved verbatim, so predicates built against the full graph
  /// evaluate unchanged on any shard; per-label counts are recomputed over
  /// the projected nodes only. Every id in `local_to_global` must be
  /// < NumNodes().
  LabelStore Project(std::span<const NodeId> local_to_global) const;

  /// Accumulates per-node label sets, then freezes them into a store.
  class Builder {
   public:
    /// The store will cover exactly `num_nodes` nodes (possibly label-less).
    explicit Builder(uint64_t num_nodes) : per_node_(num_nodes) {}

    LabelTable& table() { return table_; }

    /// Attaches label `label` (an id from table()) to `node`. Duplicate
    /// additions are fine (deduplicated at Build).
    void Add(NodeId node, LabelId label);

    /// Sorts + dedups every node's set, computes per-label counts, and
    /// returns the frozen store. The builder is consumed.
    LabelStore Build() &&;

   private:
    LabelTable table_;
    std::vector<std::vector<LabelId>> per_node_;
  };

 private:
  friend class Builder;

  LabelTable table_;
  /// CSR: labels of node i are ids_[offsets_[i] .. offsets_[i+1]).
  std::vector<uint64_t> offsets_;
  std::vector<LabelId> ids_;
  /// counts_[l] = number of nodes whose set contains label l.
  std::vector<uint64_t> counts_;
};

/// Options for the synthetic label generators. All three assign exactly
/// `labels_per_node` DISTINCT labels to every node, drawn from a universe
/// of `num_labels` names "L0".."L<n-1>" (interned in that order, so label
/// id == universe index); they differ in the draw distribution:
///
///   Uniform      every label equally likely (UNG's uniform assignment)
///   Zipf         P(label i) proportional to 1/(i+1)^zipf_exponent — a few
///                head labels cover most nodes, the realistic case
///   Multinomial  P(label i) proportional to caller-supplied weights[i]
struct LabelGenOptions {
  uint64_t num_nodes = 0;
  uint32_t num_labels = 0;
  /// Distinct labels per node; must be in [1, num_labels].
  uint32_t labels_per_node = 1;
  /// Skew of the Zipf generator (> 0). 1.0 is the classical harmonic case.
  double zipf_exponent = 1.0;
  uint64_t seed = 1;
};

Result<LabelStore> GenerateUniformLabels(const LabelGenOptions& options);
Result<LabelStore> GenerateZipfLabels(const LabelGenOptions& options);
/// `weights` must have options.num_labels entries, all finite and >= 0 with
/// a positive sum; they are normalized internally.
Result<LabelStore> GenerateMultinomialLabels(const LabelGenOptions& options,
                                             std::span<const double> weights);

/// Plain-text label file: line i holds the comma-separated label names of
/// node i (an empty line means no labels); '#' lines are comments and do
/// not count as nodes. Parsing is strict — a malformed row fails with a
/// `<path>:<line>: ...` Status. When `num_nodes` >= 0 the file must
/// contain exactly that many node lines (the graph's node count).
Result<LabelStore> ReadLabelFile(const std::string& path,
                                 int64_t num_nodes = -1);

/// Writes `store` in the ReadLabelFile format (round-trips exactly).
Status WriteLabelFile(const LabelStore& store, const std::string& path);

}  // namespace flos

#endif  // FLOS_GRAPH_LABELS_H_
