// Named graph presets standing in for the paper's datasets.
//
// The paper evaluates on four SNAP graphs (Amazon, DBLP, Youtube,
// LiveJournal; Table 4) that are not available in this offline environment.
// Each preset generates an R-MAT proxy whose density matches the original,
// scaled by a user-chosen factor so the full benchmark suite runs in a
// laptop budget (see DESIGN.md section 3 for the substitution rationale).
// If you have the SNAP files, load them with ReadEdgeList instead — every
// bench accepts --graph=<path>.

#ifndef FLOS_GRAPH_PRESETS_H_
#define FLOS_GRAPH_PRESETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace flos {

/// Description of one dataset proxy.
struct GraphPreset {
  std::string name;        ///< short name used on the command line
  std::string stands_for;  ///< the paper's dataset it substitutes
  uint64_t paper_nodes;    ///< original |V| (Table 4)
  uint64_t paper_edges;    ///< original |E| (Table 4)
  double rmat_a;           ///< R-MAT skew (higher = more hub-dominated)
};

/// The four proxies for Table 4 (az, dp, yt, lj), in paper order.
const std::vector<GraphPreset>& RealGraphPresets();

/// Looks up a preset by name ("az", "dp", "yt", "lj").
Result<GraphPreset> FindPreset(const std::string& name);

/// Generates the proxy graph for `preset` at `scale` (0 < scale <= 1):
/// |V| = paper_nodes * scale, |E| = paper_edges * scale, R-MAT with the
/// preset's skew, unit weights, deterministic seed.
Result<Graph> BuildPresetGraph(const GraphPreset& preset, double scale,
                               uint64_t seed = 42);

}  // namespace flos

#endif  // FLOS_GRAPH_PRESETS_H_
