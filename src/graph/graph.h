// In-memory undirected weighted graph in CSR (compressed sparse row) form.
//
// `Graph` is immutable after construction; build one with `GraphBuilder`.
// Node ids are dense `[0, NumNodes())`. Every undirected edge {u, v} is
// stored twice (once per endpoint) so neighbor scans are contiguous.
//
// This is the substrate every proximity algorithm in the library runs on:
// global methods iterate the CSR arrays directly, local methods go through
// the `GraphAccessor` interface (see graph/accessor.h) so they also work on
// disk-resident graphs.

#ifndef FLOS_GRAPH_GRAPH_H_
#define FLOS_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace flos {

/// Dense node identifier in [0, NumNodes()).
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Immutable undirected weighted graph (CSR).
class Graph {
 public:
  /// Constructs an empty graph (0 nodes, 0 edges).
  Graph() = default;

  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;
  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;

  /// Number of nodes. Node ids are 0..NumNodes()-1.
  uint64_t NumNodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

  /// Number of undirected edges {u, v}.
  uint64_t NumEdges() const { return directed_edge_count_ / 2; }

  /// Number of stored directed half-edges (2 * NumEdges()).
  uint64_t NumDirectedEdges() const { return directed_edge_count_; }

  /// Number of neighbors of `u`.
  uint32_t Degree(NodeId u) const {
    return static_cast<uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// Sum of weights of edges incident to `u` (w_u in the paper).
  double WeightedDegree(NodeId u) const { return weighted_degree_[u]; }

  /// Largest weighted degree over all nodes (0 for the empty graph).
  double MaxWeightedDegree() const { return max_weighted_degree_; }

  /// Neighbor ids of `u`, sorted ascending.
  std::span<const NodeId> NeighborIds(NodeId u) const {
    return {neighbors_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  /// Weights parallel to NeighborIds(u).
  std::span<const double> NeighborWeights(NodeId u) const {
    return {weights_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  /// Returns the weight of edge {u, v}, or 0 if absent. O(log deg(u)).
  double EdgeWeight(NodeId u, NodeId v) const;

  /// True iff {u, v} is an edge. O(log deg(u)).
  bool HasEdge(NodeId u, NodeId v) const { return EdgeWeight(u, v) > 0; }

  /// Node ids sorted by descending weighted degree (ties by ascending id).
  /// Used by FLoS_RWR to maintain the maximum unvisited degree.
  const std::vector<NodeId>& DegreeOrder() const { return degree_order_; }

  /// Raw CSR arrays, for algorithms that iterate the whole graph.
  const std::vector<uint64_t>& offsets() const { return offsets_; }
  const std::vector<NodeId>& neighbors() const { return neighbors_; }
  const std::vector<double>& weights() const { return weights_; }

 private:
  friend class GraphBuilder;
  friend Result<Graph> GraphFromCsrParts(std::vector<uint64_t> offsets,
                                         std::vector<NodeId> neighbors,
                                         std::vector<double> weights);

  void FinalizeDerived();

  std::vector<uint64_t> offsets_;   // size NumNodes()+1
  std::vector<NodeId> neighbors_;   // size NumDirectedEdges()
  std::vector<double> weights_;     // size NumDirectedEdges()
  std::vector<double> weighted_degree_;
  std::vector<NodeId> degree_order_;
  uint64_t directed_edge_count_ = 0;
  double max_weighted_degree_ = 0;
};

/// Reassembles a Graph from raw CSR parts (used by the disk loader). The
/// parts must describe a symmetric graph with sorted neighbor lists;
/// violations are reported as Corruption.
Result<Graph> GraphFromCsrParts(std::vector<uint64_t> offsets,
                                std::vector<NodeId> neighbors,
                                std::vector<double> weights);

/// Accumulates edges and produces an immutable `Graph`.
///
/// Thread-compatible, not thread-safe. Duplicate edges have their weights
/// summed; self-loops are rejected by default (random-walk measures in this
/// library are defined on simple graphs).
class GraphBuilder {
 public:
  struct Options {
    /// If >= 0, the graph has exactly this many nodes and edges touching
    /// ids >= num_nodes are errors. If < 0, the node count is
    /// 1 + max node id seen.
    int64_t num_nodes = -1;
    /// Reject (false) or silently drop (true) self-loops.
    bool ignore_self_loops = false;
  };

  GraphBuilder() = default;
  explicit GraphBuilder(Options options) : options_(options) {}

  /// Adds undirected edge {u, v} with weight `w` (> 0). Duplicate {u, v}
  /// edges accumulate weight.
  Status AddEdge(NodeId u, NodeId v, double w = 1.0);

  /// Number of AddEdge calls accepted so far (before dedup).
  uint64_t num_added() const { return num_added_; }

  /// Builds the CSR graph. The builder is consumed.
  Result<Graph> Build() &&;

 private:
  struct RawEdge {
    NodeId u;
    NodeId v;
    double w;
  };

  Options options_;
  std::vector<RawEdge> edges_;
  uint64_t num_added_ = 0;
  NodeId max_node_ = 0;
  bool saw_node_ = false;
};

}  // namespace flos

#endif  // FLOS_GRAPH_GRAPH_H_
