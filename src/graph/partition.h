// Graph partitioning for sharded serving (scale-out across processes).
//
// A partition assigns every node to exactly one owning shard (its "core")
// and replicates, per shard, an h-hop halo around that core. FLoS's visited
// set is tiny and local (the paper's central property), so a query routed
// to the shard owning its seed node almost always completes — and certifies
// an exact answer — without ever leaving the shard. The halo makes that
// precise:
//
//   ring 0           the core (owned nodes)
//   rings 1..h-1     replicated "interior" halo: complete adjacency (every
//                    neighbor is within ring h, hence present locally)
//   ring h           replicated "fringe": present with possibly truncated
//                    adjacency; may be VISITED and bounded, never EXPANDED
//
// Shard-local node ids are ordered core first, then interior rings, then
// the fringe, so "is this node expandable?" is the single comparison
// `local_id < num_interior` — which is exactly what
// FlosOptions::expandable_limit consumes. A search that would have to
// expand past the fringe stops uncertified with stats.frontier_clipped set
// (wire flag: halo-truncated); its bounds remain rigorous, preserving the
// serving layer's anytime contract.
//
// Soundness on a shard additionally requires global degree information:
// FLoS_RWR ranks by w_i * PHP(i) and bounds unvisited nodes through the
// maximum unknown degree, and the transition probabilities at a fringe
// node depend on its FULL degree. The shard map therefore records each
// local node's global weighted degree plus the maximum degree over all
// off-shard nodes; `ShardAccessor` serves those instead of the truncated
// shard-CSR values (see GraphAccessor::ExternalDegreeBound).

#ifndef FLOS_GRAPH_PARTITION_H_
#define FLOS_GRAPH_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/accessor.h"
#include "graph/graph.h"
#include "util/status.h"

namespace flos {

/// How nodes are assigned to owning shards.
enum class PartitionMethod {
  /// owner(v) = mix(v) mod num_shards. Placement-free and O(1) to compute,
  /// but scatters neighborhoods across shards: most searches hit the halo
  /// early. Useful as the adversarial baseline and for id-space tests.
  kHash,
  /// Multi-source BFS growth: seeds one region per shard, then repeatedly
  /// grows the currently smallest shard by one frontier node. Produces
  /// balanced, contiguous regions with a small edge cut, so local searches
  /// rarely reach the halo. Default.
  kBfsGrow,
};

struct PartitionOptions {
  uint32_t num_shards = 2;
  PartitionMethod method = PartitionMethod::kBfsGrow;
  /// Replication radius h >= 1. Nodes within h hops of the core are
  /// replicated; rings 0..h-1 are expandable (complete adjacency), ring h
  /// is the non-expandable fringe.
  uint32_t halo_hops = 2;
  /// Seed for the BFS-grow region seeding (deterministic).
  uint64_t seed = 1;
};

/// Per-shard metadata: the node-id remap table plus the global degree
/// information that keeps FLoS bounds sound on the shard-local graph.
/// Written/read as the `.map` sidecar of the shard's edge list.
struct ShardMeta {
  uint32_t shard_index = 0;
  uint32_t num_shards = 0;
  uint32_t halo_hops = 0;
  /// Node count of the FULL graph this shard was cut from.
  uint64_t global_nodes = 0;
  /// Local ids [0, num_core) are owned by this shard.
  NodeId num_core = 0;
  /// Local ids [0, num_interior) have complete adjacency and may be
  /// expanded; [num_interior, num_local()) is the fringe.
  NodeId num_interior = 0;
  /// local id -> global id (size = local node count).
  std::vector<NodeId> local_to_global;
  /// Global weighted degree of each local node (the shard CSR understates
  /// it for fringe nodes).
  std::vector<double> global_degree;
  /// Max global weighted degree over all nodes NOT replicated into this
  /// shard; feeds GraphAccessor::ExternalDegreeBound.
  double external_max_degree = 0;

  NodeId num_local() const {
    return static_cast<NodeId>(local_to_global.size());
  }

  /// Local ids sorted by descending global weighted degree (ties by
  /// ascending id). Derived by FinalizeDerived(); not serialized.
  const std::vector<NodeId>& degree_order() const { return degree_order_; }

  /// Recomputes derived members after the serialized fields are filled.
  /// Called by PartitionGraph and ReadShardMap.
  void FinalizeDerived();

 private:
  std::vector<NodeId> degree_order_;
};

/// One shard: its local-id graph plus the metadata to interpret it.
struct ShardPart {
  ShardMeta meta;
  Graph graph;
};

/// A full partition of a graph.
struct GraphPartition {
  PartitionOptions options;
  /// global node -> owning shard.
  std::vector<uint32_t> owner;
  std::vector<ShardPart> shards;
  /// Edges whose endpoints have different owners.
  uint64_t cut_edges = 0;
};

/// Partitions `graph` into `options.num_shards` halo-replicated shards.
/// Requires num_shards >= 1, halo_hops >= 1, and at least one node per
/// shard.
Result<GraphPartition> PartitionGraph(const Graph& graph,
                                      const PartitionOptions& options);

/// GraphAccessor over a shard-local graph that serves GLOBAL degree
/// information from the shard metadata, so every degree-derived quantity
/// (RWR rank weights, transition probabilities at fringe nodes, the
/// unknown-degree bound) matches what a whole-graph accessor would report.
/// Does not own the graph or the metadata; both must outlive the accessor
/// (same contract as InMemoryAccessor).
class ShardAccessor final : public GraphAccessor {
 public:
  ShardAccessor(const Graph* shard_graph, const ShardMeta* meta)
      : graph_(shard_graph), meta_(meta) {}

  uint64_t NumNodes() const override { return graph_->NumNodes(); }
  uint64_t NumEdges() const override { return graph_->NumEdges(); }
  double WeightedDegree(NodeId u) override {
    ++stats_.degree_probes;
    return meta_->global_degree[u];
  }
  Status CopyNeighbors(NodeId u, std::vector<Neighbor>* out) override;
  const std::vector<NodeId>& DegreeOrder() const override {
    return meta_->degree_order();
  }
  double MaxWeightedDegree() const override;
  double ExternalDegreeBound() const override {
    return meta_->external_max_degree;
  }
  bool DenseIndexHint() const override { return true; }
  /// Interior rows carry their complete adjacency (the partitioner stores
  /// every edge of rings 0..h-1); fringe rows (the outermost halo ring)
  /// keep only the edges leading back into the halo and are truncated.
  bool CompleteAdjacency(NodeId u) const override {
    return u < meta_->num_interior;
  }

  const ShardMeta& meta() const { return *meta_; }

 private:
  const Graph* graph_;
  const ShardMeta* meta_;
};

/// Writes `partition` into `dir` as shard<i>.edges (local-id edge list) and
/// shard<i>.map (remap table + degree sidecar). `dir` must exist.
Status WriteShardFiles(const GraphPartition& partition,
                       const std::string& dir);

/// Conventional file names inside a shard directory.
std::string ShardEdgesPath(const std::string& dir, uint32_t shard);
std::string ShardMapPath(const std::string& dir, uint32_t shard);

/// Parses a shard<i>.map file (strict, `<path>:<line>:` errors) and
/// finalizes derived members.
Result<ShardMeta> ReadShardMap(const std::string& path);

/// Loads a shard edge list against its metadata: the node count is pinned
/// to meta.num_local() so trailing isolated core nodes survive, and edge
/// endpoints are validated against it.
Result<Graph> ReadShardGraph(const std::string& path, const ShardMeta& meta);

/// Seed-to-shard routing table, assembled from every shard's metadata. The
/// router maps a QUERY's global seed to (owning shard, local id), and maps
/// result node ids back. Build() validates that the metas form a partition:
/// every global node is core in exactly one shard.
class ShardRouteTable {
 public:
  static Result<ShardRouteTable> Build(std::vector<ShardMeta> metas);

  uint64_t global_nodes() const { return shard_of_.size(); }
  size_t num_shards() const { return local_to_global_.size(); }

  /// Owning shard of a global node (valid after Build succeeded).
  uint32_t ShardOf(NodeId global) const { return shard_of_[global]; }
  /// Local id of a global node within its owning shard.
  NodeId LocalOf(NodeId global) const { return local_of_[global]; }

  /// Reverse translation for response node ids coming back from a shard.
  Result<NodeId> ToGlobal(uint32_t shard, NodeId local) const;

 private:
  std::vector<uint32_t> shard_of_;               // per global node
  std::vector<NodeId> local_of_;                 // per global node
  std::vector<std::vector<NodeId>> local_to_global_;  // per shard
};

}  // namespace flos

#endif  // FLOS_GRAPH_PARTITION_H_
