#include "storage/disk_graph.h"

#include <algorithm>
#include <cstring>

#include "storage/disk_format.h"

namespace flos {

namespace {

Status ReadExact(std::FILE* f, uint64_t offset, void* out, uint64_t bytes,
                 const char* what) {
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IoError(std::string("seek failed reading ") + what);
  }
  if (std::fread(out, 1, bytes, f) != bytes) {
    return Status::Corruption(std::string("short read of ") + what);
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<DiskGraph>> DiskGraph::Open(
    const std::string& path, const DiskGraphOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  // make_unique cannot reach the private constructor; ownership is taken
  // on the same line.
  std::unique_ptr<DiskGraph> g(new DiskGraph(options));  // lint:allow(no-naked-new)
  {
    // No other thread can see `g` yet; the lock just satisfies the
    // capability analysis for this one guarded write.
    MutexLock lock(g->io_mu_);
    g->file_ = f;
  }

  DiskHeader header{};
  FLOS_RETURN_IF_ERROR(ReadExact(f, 0, &header, sizeof(header), "header"));
  if (std::memcmp(header.magic, kDiskGraphMagic, sizeof(kDiskGraphMagic)) !=
      0) {
    return Status::Corruption("bad magic in " + path);
  }
  g->num_nodes_ = header.num_nodes;
  g->num_directed_edges_ = header.num_directed_edges;
  g->max_weighted_degree_ = header.max_weighted_degree;
  g->adjacency_offset_ = header.adjacency_offset;

  const uint64_t n = g->num_nodes_;
  g->offsets_.resize(n + 1);
  g->degrees_.resize(n);
  g->degree_order_.resize(n);
  uint64_t pos = sizeof(DiskHeader);
  FLOS_RETURN_IF_ERROR(ReadExact(f, pos, g->offsets_.data(),
                                 (n + 1) * sizeof(uint64_t), "offsets"));
  pos += (n + 1) * sizeof(uint64_t);
  FLOS_RETURN_IF_ERROR(
      ReadExact(f, pos, g->degrees_.data(), n * sizeof(double), "degrees"));
  pos += n * sizeof(double);
  FLOS_RETURN_IF_ERROR(ReadExact(f, pos, g->degree_order_.data(),
                                 n * sizeof(uint32_t), "degree order"));
  pos += n * sizeof(uint32_t);
  if (pos != g->adjacency_offset_) {
    return Status::Corruption("adjacency offset mismatch in " + path);
  }
  if (g->offsets_.back() != g->num_directed_edges_) {
    return Status::Corruption("edge count mismatch in " + path);
  }
  return g;
}

DiskGraph::~DiskGraph() {
  if (file_ != nullptr) std::fclose(file_);
}

double DiskGraph::WeightedDegree(NodeId u) {
  ++stats_.degree_probes;
  return degrees_[u];
}

Status DiskGraph::ReadRange(uint64_t offset, uint64_t bytes,
                            std::vector<char>* out) {
  out->clear();
  out->reserve(bytes);
  const uint64_t block = options_.block_bytes;
  uint64_t cursor = offset;
  const uint64_t end = offset + bytes;
  while (cursor < end) {
    const uint64_t block_id = cursor / block;
    const uint64_t block_start = block_id * block;
    const std::vector<char>* cached = cache_.Get(block_id);
    std::vector<char> loaded;
    if (cached == nullptr) {
      ++stats_.cache_misses;
      // Read up to a full block (the file may end short).
      loaded.resize(block);
      if (std::fseek(file_, static_cast<long>(block_start), SEEK_SET) != 0) {
        return Status::IoError("seek failed reading adjacency");
      }
      const size_t got = std::fread(loaded.data(), 1, block, file_);
      loaded.resize(got);
      stats_.bytes_read += got;
      cache_.Put(block_id, loaded);
      cached = &loaded;
      if (block_start + got < end && got < block) {
        return Status::Corruption("adjacency region truncated");
      }
    } else {
      ++stats_.cache_hits;
    }
    const uint64_t begin_in_block = cursor - block_start;
    const uint64_t take =
        std::min<uint64_t>(end - cursor, cached->size() - begin_in_block);
    out->insert(out->end(), cached->begin() + begin_in_block,
                cached->begin() + begin_in_block + take);
    cursor += take;
    if (take == 0) return Status::Corruption("adjacency read stalled");
  }
  return Status::OK();
}

Status DiskGraph::CopyNeighbors(NodeId u, std::vector<Neighbor>* out) {
  if (u >= num_nodes_) return Status::OutOfRange("node id out of range");
  ++stats_.neighbor_fetches;
  const uint64_t first = offsets_[u];
  const uint64_t last = offsets_[u + 1];
  const uint64_t byte_offset =
      adjacency_offset_ + first * kAdjacencyEntryBytes;
  const uint64_t byte_count = (last - first) * kAdjacencyEntryBytes;
  // One critical section spans the cached read AND the decode loop:
  // range_scratch_ must not be overwritten by another reader mid-decode.
  MutexLock lock(io_mu_);
  FLOS_RETURN_IF_ERROR(ReadRange(byte_offset, byte_count, &range_scratch_));
  out->clear();
  out->reserve(last - first);
  for (uint64_t e = 0; e < last - first; ++e) {
    const char* entry = range_scratch_.data() + e * kAdjacencyEntryBytes;
    Neighbor nb;
    std::memcpy(&nb.id, entry, sizeof(uint32_t));
    std::memcpy(&nb.weight, entry + sizeof(uint32_t), sizeof(double));
    out->push_back(nb);
  }
  return Status::OK();
}

}  // namespace flos
