#include "storage/disk_builder.h"

#include <cstdio>
#include <cstring>
#include <vector>

#include "storage/disk_format.h"

namespace flos {

Status WriteDiskGraph(const Graph& graph, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot create " + path);

  const uint64_t n = graph.NumNodes();
  DiskHeader header{};
  std::memcpy(header.magic, kDiskGraphMagic, sizeof(kDiskGraphMagic));
  header.num_nodes = n;
  header.num_directed_edges = graph.NumDirectedEdges();
  header.max_weighted_degree = graph.MaxWeightedDegree();
  header.adjacency_offset = sizeof(DiskHeader) + (n + 1) * sizeof(uint64_t) +
                            n * sizeof(double) + n * sizeof(uint32_t);

  const auto write_all = [&](const void* data, size_t bytes) -> Status {
    if (std::fwrite(data, 1, bytes, f) != bytes) {
      return Status::IoError("short write to " + path);
    }
    return Status::OK();
  };

  Status status = write_all(&header, sizeof(header));
  if (status.ok()) {
    status = write_all(graph.offsets().data(), (n + 1) * sizeof(uint64_t));
  }
  if (status.ok()) {
    std::vector<double> degrees(n);
    for (uint64_t u = 0; u < n; ++u) {
      degrees[u] = graph.WeightedDegree(static_cast<NodeId>(u));
    }
    status = write_all(degrees.data(), n * sizeof(double));
  }
  if (status.ok()) {
    status = write_all(graph.DegreeOrder().data(), n * sizeof(uint32_t));
  }
  if (status.ok()) {
    // Packed 12-byte adjacency entries, streamed through a buffer.
    std::vector<char> buffer;
    buffer.reserve(1 << 20);
    const auto& neighbors = graph.neighbors();
    const auto& weights = graph.weights();
    for (size_t e = 0; e < neighbors.size() && status.ok(); ++e) {
      char entry[kAdjacencyEntryBytes];
      std::memcpy(entry, &neighbors[e], sizeof(uint32_t));
      std::memcpy(entry + sizeof(uint32_t), &weights[e], sizeof(double));
      buffer.insert(buffer.end(), entry, entry + sizeof(entry));
      if (buffer.size() >= (1 << 20)) {
        status = write_all(buffer.data(), buffer.size());
        buffer.clear();
      }
    }
    if (status.ok() && !buffer.empty()) {
      status = write_all(buffer.data(), buffer.size());
    }
  }
  if (std::fclose(f) != 0 && status.ok()) {
    status = Status::IoError("failed to flush " + path);
  }
  return status;
}

}  // namespace flos
