// Writes a Graph (or a generator stream) into the on-disk format read by
// DiskGraph. See storage/disk_format.h for the layout.

#ifndef FLOS_STORAGE_DISK_BUILDER_H_
#define FLOS_STORAGE_DISK_BUILDER_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace flos {

/// Serializes `graph` to `path`. Overwrites an existing file.
Status WriteDiskGraph(const Graph& graph, const std::string& path);

}  // namespace flos

#endif  // FLOS_STORAGE_DISK_BUILDER_H_
