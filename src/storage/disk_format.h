// On-disk graph file layout shared by the builder and the reader.
//
// Layout (little-endian, packed):
//   header            DiskHeader (64 bytes)
//   offsets           (num_nodes + 1) x u64   adjacency entry index
//   degrees           num_nodes x f64         weighted degrees
//   degree order      num_nodes x u32         ids by descending w-degree
//   adjacency         num_directed_edges x (u32 id + f64 weight), 12 B each
//
// The three index arrays are loaded into memory at open (8-20 bytes/node);
// adjacency stays on disk behind the LRU block cache, which is the part
// that dominates for large graphs.

#ifndef FLOS_STORAGE_DISK_FORMAT_H_
#define FLOS_STORAGE_DISK_FORMAT_H_

#include <cstdint>

namespace flos {

inline constexpr char kDiskGraphMagic[8] = {'F', 'L', 'O', 'S',
                                            'G', 'R', 'F', '1'};

/// Fixed-size file header.
struct DiskHeader {
  char magic[8];
  uint64_t num_nodes;
  uint64_t num_directed_edges;
  double max_weighted_degree;
  uint64_t adjacency_offset;  ///< byte offset of the adjacency region
  char reserved[24];
};
static_assert(sizeof(DiskHeader) == 64, "DiskHeader must stay 64 bytes");

/// Bytes per adjacency entry (u32 neighbor id + f64 weight, packed).
inline constexpr uint64_t kAdjacencyEntryBytes = 12;

}  // namespace flos

#endif  // FLOS_STORAGE_DISK_FORMAT_H_
