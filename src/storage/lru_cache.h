// Fixed-budget LRU block cache used by DiskGraph to bound memory while
// reading adjacency data, mirroring the paper's disk-resident experiment
// where total memory was capped (Section 6.4).

#ifndef FLOS_STORAGE_LRU_CACHE_H_
#define FLOS_STORAGE_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace flos {

/// Maps a block id to its bytes; evicts least-recently-used blocks once the
/// byte budget is exceeded. Not thread-safe.
class LruBlockCache {
 public:
  /// `capacity_bytes` counts cached payload bytes (0 disables caching).
  explicit LruBlockCache(uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Returns the cached block or nullptr.
  const std::vector<char>* Get(uint64_t block_id) {
    const auto it = index_.find(block_id);
    if (it == index_.end()) return nullptr;
    entries_.splice(entries_.begin(), entries_, it->second);
    return &it->second->bytes;
  }

  /// Inserts (or replaces) a block and evicts as needed.
  void Put(uint64_t block_id, std::vector<char> bytes) {
    const auto it = index_.find(block_id);
    if (it != index_.end()) {
      used_ -= it->second->bytes.size();
      entries_.erase(it->second);
      index_.erase(it);
    }
    if (bytes.size() > capacity_) return;  // would never fit
    used_ += bytes.size();
    entries_.push_front(Entry{block_id, std::move(bytes)});
    index_[block_id] = entries_.begin();
    while (used_ > capacity_ && !entries_.empty()) {
      used_ -= entries_.back().bytes.size();
      index_.erase(entries_.back().id);
      entries_.pop_back();
    }
  }

  uint64_t used_bytes() const { return used_; }
  size_t num_blocks() const { return entries_.size(); }

 private:
  struct Entry {
    uint64_t id;
    std::vector<char> bytes;
  };
  uint64_t capacity_;
  uint64_t used_ = 0;
  std::list<Entry> entries_;
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
};

}  // namespace flos

#endif  // FLOS_STORAGE_LRU_CACHE_H_
