// Disk-resident graph implementing the GraphAccessor interface.
//
// This is the Neo4j stand-in for the paper's Section 6.4 experiment: FLoS
// runs unmodified over it because it only ever asks for a node's neighbors
// and degree. Adjacency lists are read from disk through a bounded LRU
// block cache; the per-node index arrays (offsets, degrees, degree order)
// are held in memory, as any disk graph store would.

#ifndef FLOS_STORAGE_DISK_GRAPH_H_
#define FLOS_STORAGE_DISK_GRAPH_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "graph/accessor.h"
#include "storage/lru_cache.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace flos {

struct DiskGraphOptions {
  /// Cache budget for adjacency blocks. The paper restricted total memory
  /// to 2 GB for multi-GB graphs; scale accordingly.
  uint64_t cache_bytes = 64ull << 20;
  /// Block (page) size for disk reads. 8 KiB keeps read amplification low
  /// for the scattered small adjacency lists local search touches.
  uint64_t block_bytes = 8 << 10;
};

/// Read-only disk graph. The instance is thread-compatible, not
/// thread-safe (the access counters are per-instance and unsynchronized);
/// the FILE ITSELF is immutable and may be shared. For concurrent
/// queries, Open the same path once per worker thread — each accessor
/// then has its own handle and cache, per the GraphAccessor thread-safety
/// contract.
///
/// Defense in depth: the one resource a contract violation would corrupt
/// SILENTLY — the seek+read pair on the shared file handle and the LRU
/// block cache it fills — is serialized internally under `io_mu_`
/// (annotated, compiler-enforced). Sharing an instance across threads
/// therefore skews counters and thrashes the cache, but can never decode
/// adjacency bytes from a torn seek.
class DiskGraph final : public GraphAccessor {
 public:
  static Result<std::unique_ptr<DiskGraph>> Open(const std::string& path,
                                                 const DiskGraphOptions& options);

  ~DiskGraph() override;
  DiskGraph(const DiskGraph&) = delete;
  DiskGraph& operator=(const DiskGraph&) = delete;

  uint64_t NumNodes() const override { return num_nodes_; }
  uint64_t NumEdges() const override { return num_directed_edges_ / 2; }
  double WeightedDegree(NodeId u) override;
  Status CopyNeighbors(NodeId u, std::vector<Neighbor>* out) override;
  const std::vector<NodeId>& DegreeOrder() const override {
    return degree_order_;
  }
  double MaxWeightedDegree() const override { return max_weighted_degree_; }

 private:
  DiskGraph(const DiskGraphOptions& options)
      : options_(options), cache_(options.cache_bytes) {}

  /// Reads `bytes` at `offset` (relative to file start) into `out`,
  /// through the block cache. Caller holds io_mu_ (the seek+read pair and
  /// the cache update must be atomic with respect to other readers).
  Status ReadRange(uint64_t offset, uint64_t bytes, std::vector<char>* out)
      FLOS_REQUIRES(io_mu_);

  DiskGraphOptions options_;
  uint64_t num_nodes_ = 0;
  uint64_t num_directed_edges_ = 0;
  double max_weighted_degree_ = 0;
  uint64_t adjacency_offset_ = 0;
  std::vector<uint64_t> offsets_;
  std::vector<double> degrees_;
  std::vector<NodeId> degree_order_;
  /// Guards the stateful read path: handle position, block cache, and the
  /// decode scratch. Open/~DiskGraph touch file_ pre/post concurrency.
  Mutex io_mu_;
  std::FILE* file_ FLOS_GUARDED_BY(io_mu_) = nullptr;
  LruBlockCache cache_ FLOS_GUARDED_BY(io_mu_);
  std::vector<char> range_scratch_ FLOS_GUARDED_BY(io_mu_);
};

}  // namespace flos

#endif  // FLOS_STORAGE_DISK_GRAPH_H_
