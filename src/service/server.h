// Networked FLoS k-NN query service.
//
// The transport (epoll IO thread, bounded admission queue, worker threads)
// lives in FrameService; ServiceServer is the FrameHandler that gives the
// frames meaning: QUERY frames run on leased engine sessions
// (session_pool.h), STATS renders the metrics registry.
//
// Deadlines: a QUERY's `deadline_us` (relative, 0 = none) is anchored at
// DEQUEUE time and handed to the engine as an absolute steady_clock
// deadline. An expired query is still a useful answer: status ok,
// `certified = 0`, and the current top-k with rigorous lower/upper bounds
// (FLoS's anytime guarantee — see FlosOptions::deadline).
//
// Shard mode: when `shard_meta` is set the served graph is one shard of a
// partition (graph/partition.h). Sessions then run over ShardAccessors
// (global degrees + external-degree bound keep every bound exact), the
// engine's expandable frontier is limited to the interior halo, and a
// search that stops at the halo boundary answers uncertified with the
// halo-truncated wire flag set — bounds still rigorous, so the anytime
// contract survives partitioning.

#ifndef FLOS_SERVICE_SERVER_H_
#define FLOS_SERVICE_SERVER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "core/query_cache.h"
#include "core/subgraph_cache.h"
#include "graph/graph.h"
#include "graph/labels.h"
#include "graph/partition.h"
#include "service/frame_service.h"
#include "service/metrics.h"
#include "service/protocol.h"
#include "service/session_pool.h"
#include "util/status.h"

namespace flos {

/// Server configuration.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with ServiceServer::port().
  uint16_t port = 0;
  /// Query worker threads; also the engine-session pool size.
  int num_workers = 4;
  /// Admission-control cap: QUERY frames waiting for a worker. Beyond this
  /// the server answers `overloaded` without queuing.
  size_t max_queue_depth = 256;
  /// Frames larger than this are a protocol violation (connection closed).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Whether a SHUTDOWN frame from a client unblocks WaitForShutdown.
  bool allow_remote_shutdown = true;
  /// Serving cap on k (bounds the response frame size).
  uint32_t max_k = 10000;
  /// Certified-result cache entries shared by every worker session
  /// (core/query_cache.h); 0 disables caching. Safe because the served
  /// graph is immutable (epoch 0 forever), so entries never go stale;
  /// repeat queries — the head of any Zipf-skewed workload — answer in
  /// microseconds with the same certified bounds the search produced.
  size_t query_cache_capacity = 4096;
  /// Warm-subgraph cache entries shared by every worker session
  /// (core/subgraph_cache.h); 0 disables the tier. The second cache tier
  /// under the result cache: a repeat seed whose exact (k, measure, c)
  /// combination misses the result cache still skips the expansion phase
  /// by resuming from its cached expanded subgraph and converged bounds —
  /// the dominant cost of a cold certified query. Entries hold whole
  /// visited-set snapshots, so capacities are much smaller than
  /// query_cache_capacity.
  size_t subgraph_cache_capacity = 64;
  /// Threads per query for parallel bound sweeps
  /// (FlosOptions::sweep_threads); 1 = serial. Each worker session owns
  /// its own sweep team, so total sweep threads = num_workers *
  /// sweep_threads; raise it when workers outnumber concurrent queries
  /// (latency mode), not when the box is already saturated (throughput
  /// mode).
  int sweep_threads = 1;
  /// Non-null = shard mode: `graph` is the shard-local graph described by
  /// this metadata (must outlive the server). Query nodes are SHARD-LOCAL
  /// ids; the router translates global ids before forwarding.
  const ShardMeta* shard_meta = nullptr;
  /// Non-null enables filtered (label-constrained) queries. Covers the
  /// GLOBAL graph: in shard mode Start() projects it onto the shard's
  /// replicated nodes through `shard_meta->local_to_global`, so predicates
  /// evaluate shard-locally with their global label ids intact; without
  /// shard_meta it must cover exactly `graph`'s nodes. Must outlive the
  /// server. When null, QUERY frames carrying a predicate are rejected
  /// with a clean invalid_argument response.
  const LabelStore* labels = nullptr;
};

/// The query server. Start() spawns the threads; Shutdown() (or the
/// destructor) joins them. `graph` must stay alive and immutable for the
/// server's lifetime.
class ServiceServer final : private FrameHandler {
 public:
  ServiceServer(const Graph* graph, ServerOptions options);
  ~ServiceServer() override;

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds, listens, and spawns the IO + worker threads.
  Status Start();

  /// Port actually bound (valid after Start; resolves ephemeral binds).
  uint16_t port() const;

  /// Blocks until a client sends SHUTDOWN or Shutdown() is called.
  void WaitForShutdown();

  /// Stops accepting, drains threads, closes every connection. Idempotent;
  /// safe to call whether or not Start succeeded.
  void Shutdown();

  /// Live metrics (readable concurrently with serving).
  const ServiceMetrics& metrics() const { return metrics_; }

 private:
  // FrameHandler: each worker leases one engine session for its lifetime.
  std::unique_ptr<WorkerState> CreateWorkerState() override;
  QueryResponse HandleQuery(
      WorkerState* state, const std::string& payload,
      std::chrono::steady_clock::time_point dequeue_time) override;
  QueryResponse HandleStats(WorkerState* state) override;

  const Graph* graph_;
  ServerOptions options_;
  ServiceMetrics metrics_;

  /// Shard mode only: options_.labels projected onto this shard's local id
  /// space (label ids stay global). Built once in Start().
  LabelStore shard_labels_;
  /// The store queries evaluate against: &shard_labels_ in shard mode,
  /// options_.labels otherwise, nullptr when filtering is disabled.
  const LabelStore* serving_labels_ = nullptr;

  std::unique_ptr<QueryCache> query_cache_;  // must outlive sessions_
  std::unique_ptr<SubgraphCache> subgraph_cache_;  // must outlive sessions_
  std::unique_ptr<EngineSessionPool> sessions_;
  // Declared after the pool: destroyed (joining worker threads) first.
  std::unique_ptr<FrameService> frames_;
};

}  // namespace flos

#endif  // FLOS_SERVICE_SERVER_H_
