// Networked FLoS k-NN query service.
//
// Threading model: one epoll IO thread owns every socket (accept, frame
// reassembly, all writes); `num_workers` worker threads run the queries on
// leased engine sessions (session_pool.h). The two sides meet at a BOUNDED
// request queue — when it is full, the IO thread answers `overloaded`
// immediately instead of queuing (admission control), so queue depth, and
// with it tail latency, stays capped no matter the offered load.
//
// Deadlines: a QUERY's `deadline_us` (relative, 0 = none) is anchored at
// DEQUEUE time and handed to the engine as an absolute steady_clock
// deadline. An expired query is still a useful answer: status ok,
// `certified = 0`, and the current top-k with rigorous lower/upper bounds
// (FLoS's anytime guarantee — see FlosOptions::deadline).
//
// STATS and SHUTDOWN are served on the IO thread (no queue, no engine):
// STATS returns the metrics registry text; SHUTDOWN (when enabled) acks,
// then unblocks WaitForShutdown so the owning thread can call Shutdown().

#ifndef FLOS_SERVICE_SERVER_H_
#define FLOS_SERVICE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/query_cache.h"
#include "graph/graph.h"
#include "service/metrics.h"
#include "service/net_io.h"
#include "service/protocol.h"
#include "service/session_pool.h"
#include "util/status.h"

namespace flos {

/// Server configuration.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with ServiceServer::port().
  uint16_t port = 0;
  /// Query worker threads; also the engine-session pool size.
  int num_workers = 4;
  /// Admission-control cap: QUERY frames waiting for a worker. Beyond this
  /// the server answers `overloaded` without queuing.
  size_t max_queue_depth = 256;
  /// Frames larger than this are a protocol violation (connection closed).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Whether a SHUTDOWN frame from a client unblocks WaitForShutdown.
  bool allow_remote_shutdown = true;
  /// Serving cap on k (bounds the response frame size).
  uint32_t max_k = 10000;
  /// Certified-result cache entries shared by every worker session
  /// (core/query_cache.h); 0 disables caching. Safe because the served
  /// graph is immutable (epoch 0 forever), so entries never go stale;
  /// repeat queries — the head of any Zipf-skewed workload — answer in
  /// microseconds with the same certified bounds the search produced.
  size_t query_cache_capacity = 4096;
};

/// The query server. Start() spawns the threads; Shutdown() (or the
/// destructor) joins them. `graph` must stay alive and immutable for the
/// server's lifetime.
class ServiceServer {
 public:
  ServiceServer(const Graph* graph, ServerOptions options);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds, listens, and spawns the IO + worker threads.
  Status Start();

  /// Port actually bound (valid after Start; resolves ephemeral binds).
  uint16_t port() const { return port_; }

  /// Blocks until a client sends SHUTDOWN or Shutdown() is called.
  void WaitForShutdown();

  /// Stops accepting, drains threads, closes every connection. Idempotent;
  /// safe to call whether or not Start succeeded.
  void Shutdown();

  /// Live metrics (readable concurrently with serving).
  const ServiceMetrics& metrics() const { return metrics_; }

 private:
  /// Per-connection state. The IO thread owns the socket and the read
  /// side; workers only append to `outbox` (under `out_mu`) and signal the
  /// wake fd. Held by shared_ptr so a worker finishing after a disconnect
  /// writes into a harmlessly orphaned buffer instead of a dangling one.
  struct Connection {
    UniqueFd fd;
    std::string inbuf;        // IO thread only
    std::mutex out_mu;
    std::string outbox;       // guarded by out_mu
    bool epoll_out = false;   // IO thread only: EPOLLOUT currently armed
  };

  /// One admitted QUERY waiting for a worker.
  struct PendingQuery {
    std::shared_ptr<Connection> conn;
    std::string payload;
    std::chrono::steady_clock::time_point accept_time;
  };

  void IoLoop();
  void WorkerLoop();

  void AcceptAll();
  /// Reads, reassembles, and dispatches frames; false = close connection.
  bool HandleReadable(const std::shared_ptr<Connection>& conn);
  /// Dispatches one complete frame payload; false = close connection.
  bool HandleFrame(const std::shared_ptr<Connection>& conn,
                   std::string payload);
  void HandleQueryFrame(const std::shared_ptr<Connection>& conn,
                        std::string payload);
  /// Runs one admitted query on a leased engine and enqueues the response.
  void ServeQuery(FlosEngine* engine, const PendingQuery& work);

  /// Encodes `response` onto the connection's outbox. `from_io_thread`
  /// lets the IO thread flush immediately instead of signaling itself.
  void EnqueueResponse(const std::shared_ptr<Connection>& conn,
                       const QueryResponse& response, bool from_io_thread);
  /// Writes as much pending outbox as the kernel takes; arms/disarms
  /// EPOLLOUT accordingly. IO thread only. False = connection broken.
  bool FlushOutbox(const std::shared_ptr<Connection>& conn);
  void CloseConnection(int fd);

  const Graph* graph_;
  ServerOptions options_;
  ServiceMetrics metrics_;

  UniqueFd listen_fd_;
  uint16_t port_ = 0;
  std::unique_ptr<Epoll> epoll_;
  std::unique_ptr<WakeFd> wake_;
  std::unique_ptr<QueryCache> query_cache_;  // must outlive sessions_
  std::unique_ptr<EngineSessionPool> sessions_;

  // IO-thread-only connection table.
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;

  // Bounded request queue (admission control).
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingQuery> queue_;  // guarded by queue_mu_

  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread io_thread_;
  std::vector<std::thread> workers_;

  // WaitForShutdown plumbing.
  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;  // guarded by shutdown_mu_
};

}  // namespace flos

#endif  // FLOS_SERVICE_SERVER_H_
