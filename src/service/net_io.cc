#include "service/net_io.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/types.h>

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

namespace flos {

namespace {

// std::strerror is MT-unsafe (shared static buffer) and this file runs on
// the IO thread AND every worker; std::system_category().message() is the
// thread-safe spelling of the same text.
std::string ErrnoText(int err) {
  return std::system_category().message(err);
}

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + ErrnoText(errno));
}

Status ResolveIpv4(const std::string& host, uint16_t port,
                   sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const std::string ip = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, ip.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return Status::OK();
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  // Best-effort: small request/response frames must not wait for Nagle.
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

UniqueFd& UniqueFd::operator=(UniqueFd&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void UniqueFd::Close() {
  if (fd_ >= 0) {
    // EINTR on close is unrecoverable by retry (the fd state is
    // unspecified); accept the kernel's outcome either way.
    (void)close(fd_);
    fd_ = -1;
  }
}

Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog) {
  sockaddr_in addr;
  FLOS_RETURN_IF_ERROR(ResolveIpv4(host, port, &addr));
  UniqueFd fd(socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  const int one = 1;
  if (setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return ErrnoStatus("setsockopt(SO_REUSEADDR)");
  }
  if (bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) < 0) {
    return ErrnoStatus("bind");
  }
  if (listen(fd.get(), backlog) < 0) return ErrnoStatus("listen");
  FLOS_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  return fd;
}

Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  FLOS_RETURN_IF_ERROR(ResolveIpv4(host, port, &addr));
  UniqueFd fd(socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  int rc;
  do {
    rc = connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    // Distinguish "endpoint not there right now" from hard I/O failure so
    // callers (ServiceClient, the shard router's backend pool) can apply a
    // retry-with-backoff policy to exactly the transient class.
    if (errno == ECONNREFUSED || errno == ECONNRESET || errno == ETIMEDOUT ||
        errno == EHOSTUNREACH || errno == ENETUNREACH || errno == EAGAIN) {
      return Status::Unavailable("connect: " + ErrnoText(errno));
    }
    return ErrnoStatus("connect");
  }
  SetNoDelay(fd.get());
  return fd;
}

Result<UniqueFd> AcceptConnection(int listen_fd) {
  int rc;
  do {
    rc = accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return UniqueFd();
    return ErrnoStatus("accept");
  }
  UniqueFd fd(rc);
  FLOS_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  SetNoDelay(fd.get());
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return ErrnoStatus("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Status SendAll(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status RecvAll(int fd, void* data, size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    const ssize_t n = recv(fd, p, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("recv");
    }
    if (n == 0) {
      return Status::IoError("connection closed mid-message");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SendSome(int fd, const void* data, size_t len, size_t* written) {
  *written = 0;
  const char* p = static_cast<const char*>(data);
  while (*written < len) {
    const ssize_t n =
        send(fd, p + *written, len - *written, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
      return ErrnoStatus("send");
    }
    *written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status RecvSome(int fd, size_t max_bytes, std::string* out, bool* eof) {
  *eof = false;
  char buf[16384];
  size_t total = 0;
  while (total < max_bytes) {
    const size_t want = std::min(sizeof(buf), max_bytes - total);
    const ssize_t n = recv(fd, buf, want, MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
      return ErrnoStatus("recv");
    }
    if (n == 0) {
      *eof = true;
      return Status::OK();
    }
    out->append(buf, static_cast<size_t>(n));
    total += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Epoll> Epoll::Create() {
  UniqueFd fd(epoll_create1(EPOLL_CLOEXEC));
  if (!fd.valid()) return ErrnoStatus("epoll_create1");
  return Epoll(std::move(fd));
}

namespace {
uint32_t EpollMask(bool want_read, bool want_write) {
  uint32_t mask = 0;
  if (want_read) mask |= EPOLLIN;
  if (want_write) mask |= EPOLLOUT;
  return mask;
}
}  // namespace

Status Epoll::Add(int fd, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = EpollMask(want_read, want_write);
  ev.data.fd = fd;
  if (epoll_ctl(fd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    return ErrnoStatus("epoll_ctl(ADD)");
  }
  return Status::OK();
}

Status Epoll::Modify(int fd, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = EpollMask(want_read, want_write);
  ev.data.fd = fd;
  if (epoll_ctl(fd_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    return ErrnoStatus("epoll_ctl(MOD)");
  }
  return Status::OK();
}

Status Epoll::Remove(int fd) {
  if (epoll_ctl(fd_.get(), EPOLL_CTL_DEL, fd, nullptr) < 0) {
    return ErrnoStatus("epoll_ctl(DEL)");
  }
  return Status::OK();
}

Status Epoll::Wait(int timeout_ms, std::vector<EpollEvent>* events) {
  events->clear();
  epoll_event raw[64];
  int n;
  do {
    n = epoll_wait(fd_.get(), raw, 64, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return ErrnoStatus("epoll_wait");
  events->reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    EpollEvent ev;
    ev.fd = raw[i].data.fd;
    ev.readable = (raw[i].events & EPOLLIN) != 0;
    ev.writable = (raw[i].events & EPOLLOUT) != 0;
    ev.error = (raw[i].events & (EPOLLERR | EPOLLHUP)) != 0;
    events->push_back(ev);
  }
  return Status::OK();
}

Result<WakeFd> WakeFd::Create() {
  UniqueFd fd(eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!fd.valid()) return ErrnoStatus("eventfd");
  return WakeFd(std::move(fd));
}

void WakeFd::Signal() {
  const uint64_t one = 1;
  // The counter saturating (EAGAIN) still leaves the fd readable, which is
  // all a wakeup needs; nothing to handle.
  (void)write(fd_.get(), &one, sizeof(one));
}

void WakeFd::Drain() {
  uint64_t value;
  (void)read(fd_.get(), &value, sizeof(value));
}

}  // namespace flos
