#include "service/shard_router.h"

#include <cstdio>
#include <utility>

namespace flos {

namespace {

uint64_t MicrosBetween(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count();
  return us > 0 ? static_cast<uint64_t>(us) : 0;
}

}  // namespace

/// One router worker's backend connections: clients[i] talks to shard i.
/// A default-constructed (closed) client means "connect on next use".
struct ShardRouter::BackendSet final : FrameHandler::WorkerState {
  explicit BackendSet(size_t num_shards)
      : clients(num_shards), connected(num_shards, false) {}
  std::vector<ServiceClient> clients;
  std::vector<bool> connected;
};

ShardRouter::ShardRouter(ShardRouteTable route, ShardRouterOptions options)
    : route_(std::move(route)), options_(std::move(options)) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  const size_t n = route_.num_shards();
  for (size_t i = 0; i < n; ++i) {
    shard_forwarded_.emplace_back();
    shard_errors_.emplace_back();
    shard_inflight_.emplace_back();
    const std::string prefix = "shard" + std::to_string(i);
    metrics_.registry.RegisterCounter(prefix + "_forwarded",
                                      &shard_forwarded_.back());
    metrics_.registry.RegisterCounter(prefix + "_errors",
                                      &shard_errors_.back());
    metrics_.registry.RegisterGauge(prefix + "_inflight",
                                    &shard_inflight_.back());
  }
}

ShardRouter::~ShardRouter() { Shutdown(); }

Status ShardRouter::Start() {
  if (frames_ != nullptr) {
    return Status::FailedPrecondition("ShardRouter::Start called twice");
  }
  if (options_.shards.size() != route_.num_shards()) {
    return Status::InvalidArgument(
        "endpoint list has " + std::to_string(options_.shards.size()) +
        " shards but the route table has " +
        std::to_string(route_.num_shards()));
  }
  FrameServiceOptions fopts;
  fopts.host = options_.host;
  fopts.port = options_.port;
  fopts.num_workers = options_.num_workers;
  fopts.max_queue_depth = options_.max_queue_depth;
  fopts.max_frame_bytes = options_.max_frame_bytes;
  fopts.allow_remote_shutdown = options_.allow_remote_shutdown;
  frames_ = std::make_unique<FrameService>(
      std::move(fopts), static_cast<FrameHandler*>(this), &metrics_);
  const Status started = frames_->Start();
  if (!started.ok()) {
    frames_.reset();
    return started;
  }
  return Status::OK();
}

uint16_t ShardRouter::port() const {
  return frames_ != nullptr ? frames_->port() : 0;
}

void ShardRouter::WaitForShutdown() {
  if (frames_ != nullptr) frames_->WaitForShutdown();
}

void ShardRouter::Shutdown() {
  if (frames_ != nullptr) frames_->Shutdown();
}

void ShardRouter::ShutdownBackends() {
  for (const ShardEndpoint& ep : options_.shards) {
    Result<ServiceClient> client =
        ServiceClient::Connect(ep.host, ep.port, options_.backend_retry);
    if (!client.ok()) continue;  // already down is fine
    (void)client->Shutdown();
  }
}

std::unique_ptr<FrameHandler::WorkerState> ShardRouter::CreateWorkerState() {
  return std::make_unique<BackendSet>(route_.num_shards());
}

Result<ServiceClient*> ShardRouter::Backend(BackendSet* set, uint32_t shard) {
  if (!set->connected[shard]) {
    const ShardEndpoint& ep = options_.shards[shard];
    FLOS_ASSIGN_OR_RETURN(
        set->clients[shard],
        ServiceClient::Connect(ep.host, ep.port, options_.backend_retry));
    set->connected[shard] = true;
  }
  return &set->clients[shard];
}

QueryResponse ShardRouter::HandleQuery(
    WorkerState* state, const std::string& payload,
    std::chrono::steady_clock::time_point /*dequeue_time*/) {
  BackendSet* const set = static_cast<BackendSet*>(state);

  const Result<QueryRequest> decoded = DecodeQueryRequest(payload);
  if (!decoded.ok()) {
    metrics_.requests_malformed.Increment();
    metrics_.queries_error.Increment();
    return MakeErrorResponse(MessageType::kQuery, decoded.status());
  }
  if (static_cast<uint64_t>(decoded->query_node) >= route_.global_nodes()) {
    metrics_.queries_error.Increment();
    return MakeErrorResponse(
        MessageType::kQuery,
        Status::OutOfRange("query node " +
                           std::to_string(decoded->query_node) +
                           " exceeds the partitioned graph (" +
                           std::to_string(route_.global_nodes()) + " nodes)"));
  }
  const uint32_t shard = route_.ShardOf(decoded->query_node);

  Result<ServiceClient*> backend = Backend(set, shard);
  if (!backend.ok()) {
    shard_errors_[shard].Increment();
    metrics_.queries_error.Increment();
    return MakeErrorResponse(MessageType::kQuery, backend.status());
  }

  // Forward with the seed rewritten into the shard's local id space; all
  // other fields (measure, k, c, deadline, flags) pass through verbatim.
  QueryRequest forwarded = *decoded;
  forwarded.query_node = route_.LocalOf(decoded->query_node);

  shard_forwarded_[shard].Increment();
  shard_inflight_[shard].Add(1);
  const auto serve_start = std::chrono::steady_clock::now();
  Result<QueryResponse> answer = (*backend)->Query(forwarded);
  const auto serve_end = std::chrono::steady_clock::now();
  shard_inflight_[shard].Add(-1);
  metrics_.serve_us.Record(MicrosBetween(serve_start, serve_end));

  if (!answer.ok()) {
    // Transport-level failure: the connection is in an unknown state, so
    // drop it; the next query for this shard reconnects with backoff.
    set->clients[shard].Close();
    set->connected[shard] = false;
    shard_errors_[shard].Increment();
    metrics_.queries_error.Increment();
    return MakeErrorResponse(
        MessageType::kQuery,
        Status::Unavailable("shard " + std::to_string(shard) +
                            " failed mid-query: " +
                            answer.status().ToString()));
  }

  QueryResponse resp = std::move(*answer);
  // Translate result ids back into the global space before the client
  // sees them.
  for (ResponseEntry& e : resp.topk) {
    const Result<NodeId> global =
        route_.ToGlobal(shard, static_cast<NodeId>(e.node));
    if (!global.ok()) {
      shard_errors_[shard].Increment();
      metrics_.queries_error.Increment();
      return MakeErrorResponse(
          MessageType::kQuery,
          Status::Corruption("shard " + std::to_string(shard) +
                             " returned unmapped local node " +
                             std::to_string(e.node)));
    }
    e.node = static_cast<uint64_t>(*global);
  }

  if (resp.status == StatusCode::kOk) {
    metrics_.queries_ok.Increment();
    if (resp.cache_hit) metrics_.cache_hits.Increment();
    if (resp.halo_truncated) metrics_.queries_halo_truncated.Increment();
    // Mirror the server's split: filtered traffic has its own certified
    // counters so the router's certified_ratio stays comparable to its
    // backends' (see metrics.h).
    if (!decoded->predicate.empty()) {
      metrics_.filtered_queries.Increment();
      if (resp.certified) {
        metrics_.filtered_certified.Increment();
      } else {
        metrics_.filtered_uncertified.Increment();
      }
    } else if (resp.certified) {
      metrics_.queries_certified.Increment();
    } else {
      metrics_.queries_uncertified.Increment();
    }
  } else {
    metrics_.queries_error.Increment();
  }
  return resp;
}

QueryResponse ShardRouter::HandleStats(WorkerState* state) {
  BackendSet* const set = static_cast<BackendSet*>(state);
  QueryResponse resp;
  resp.type = MessageType::kStats;
  resp.status = StatusCode::kOk;
  resp.message = "router\n" + metrics_.registry.RenderText();
  for (uint32_t shard = 0; shard < route_.num_shards(); ++shard) {
    const ShardEndpoint& ep = options_.shards[shard];
    resp.message += "shard " + std::to_string(shard) + " " + ep.host + ":" +
                    std::to_string(ep.port) + "\n";
    Result<ServiceClient*> backend = Backend(set, shard);
    Result<QueryResponse> stats =
        backend.ok() ? (*backend)->Stats()
                     : Result<QueryResponse>(backend.status());
    if (!stats.ok() || stats->status != StatusCode::kOk) {
      if (backend.ok()) {
        // Same containment as queries: an unreadable backend connection
        // gets dropped and re-dialed on next use.
        set->clients[shard].Close();
        set->connected[shard] = false;
      }
      shard_errors_[shard].Increment();
      resp.message += "unavailable: " +
                      (stats.ok() ? stats->message
                                  : stats.status().ToString()) +
                      "\n";
      continue;
    }
    resp.message += stats->message;
  }
  return resp;
}

}  // namespace flos
