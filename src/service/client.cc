#include "service/client.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace flos {

Result<ServiceClient> ServiceClient::Connect(const std::string& host,
                                             uint16_t port) {
  FLOS_ASSIGN_OR_RETURN(UniqueFd fd, ConnectTcp(host, port));
  return ServiceClient(std::move(fd));
}

Result<ServiceClient> ServiceClient::Connect(const std::string& host,
                                             uint16_t port,
                                             const ConnectRetryPolicy& retry) {
  const int attempts = std::max(1, retry.max_attempts);
  uint32_t backoff_ms = retry.initial_backoff_ms;
  Status last = Status::Unavailable("connect: no attempts made");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min(backoff_ms, retry.max_backoff_ms)));
      if (backoff_ms < retry.max_backoff_ms) backoff_ms *= 2;
    }
    Result<UniqueFd> fd = ConnectTcp(host, port);
    if (fd.ok()) return ServiceClient(std::move(*fd));
    // Only "the endpoint is not there right now" is worth waiting out;
    // anything else (bad address, fd exhaustion) will not self-heal.
    if (fd.status().code() != StatusCode::kUnavailable) return fd.status();
    last = fd.status();
  }
  return last;
}

Result<QueryResponse> ServiceClient::Query(const QueryRequest& request) {
  std::string frame;
  EncodeQueryRequest(request, &frame);
  FLOS_RETURN_IF_ERROR(SendFrame(frame));
  return ReceiveResponse();
}

Result<QueryResponse> ServiceClient::Stats() {
  std::string frame;
  EncodeStatsRequest(&frame);
  FLOS_RETURN_IF_ERROR(SendFrame(frame));
  return ReceiveResponse();
}

Result<QueryResponse> ServiceClient::Shutdown() {
  std::string frame;
  EncodeShutdownRequest(&frame);
  FLOS_RETURN_IF_ERROR(SendFrame(frame));
  return ReceiveResponse();
}

Status ServiceClient::SendFrame(const std::string& frame) {
  if (!fd_.valid()) {
    return Status::FailedPrecondition("client connection is closed");
  }
  return SendAll(fd_.get(), frame.data(), frame.size());
}

Result<QueryResponse> ServiceClient::ReceiveResponse() {
  if (!fd_.valid()) {
    return Status::FailedPrecondition("client connection is closed");
  }
  uint32_t frame_len = 0;
  FLOS_RETURN_IF_ERROR(RecvAll(fd_.get(), &frame_len, sizeof(frame_len)));
  if (frame_len > kDefaultMaxFrameBytes) {
    return Status::Corruption("response frame exceeds the size cap");
  }
  std::string payload(frame_len, '\0');
  if (frame_len > 0) {
    FLOS_RETURN_IF_ERROR(RecvAll(fd_.get(), payload.data(), payload.size()));
  }
  return DecodeResponse(payload);
}

}  // namespace flos
