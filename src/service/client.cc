#include "service/client.h"

#include <cstring>
#include <utility>

namespace flos {

Result<ServiceClient> ServiceClient::Connect(const std::string& host,
                                             uint16_t port) {
  FLOS_ASSIGN_OR_RETURN(UniqueFd fd, ConnectTcp(host, port));
  return ServiceClient(std::move(fd));
}

Result<QueryResponse> ServiceClient::Query(const QueryRequest& request) {
  std::string frame;
  EncodeQueryRequest(request, &frame);
  FLOS_RETURN_IF_ERROR(SendFrame(frame));
  return ReceiveResponse();
}

Result<QueryResponse> ServiceClient::Stats() {
  std::string frame;
  EncodeStatsRequest(&frame);
  FLOS_RETURN_IF_ERROR(SendFrame(frame));
  return ReceiveResponse();
}

Result<QueryResponse> ServiceClient::Shutdown() {
  std::string frame;
  EncodeShutdownRequest(&frame);
  FLOS_RETURN_IF_ERROR(SendFrame(frame));
  return ReceiveResponse();
}

Status ServiceClient::SendFrame(const std::string& frame) {
  if (!fd_.valid()) {
    return Status::FailedPrecondition("client connection is closed");
  }
  return SendAll(fd_.get(), frame.data(), frame.size());
}

Result<QueryResponse> ServiceClient::ReceiveResponse() {
  if (!fd_.valid()) {
    return Status::FailedPrecondition("client connection is closed");
  }
  uint32_t frame_len = 0;
  FLOS_RETURN_IF_ERROR(RecvAll(fd_.get(), &frame_len, sizeof(frame_len)));
  if (frame_len > kDefaultMaxFrameBytes) {
    return Status::Corruption("response frame exceeds the size cap");
  }
  std::string payload(frame_len, '\0');
  if (frame_len > 0) {
    FLOS_RETURN_IF_ERROR(RecvAll(fd_.get(), payload.data(), payload.size()));
  }
  return DecodeResponse(payload);
}

}  // namespace flos
