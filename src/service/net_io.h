// RAII socket / epoll / eventfd wrappers for the serving layer.
//
// This is the ONLY file pair in the tree allowed to touch the raw POSIX
// socket API (scripts/lint.py rule `no-raw-sockets`); everything else —
// server, client, tests — goes through these wrappers, so fd lifetimes,
// EINTR loops, SIGPIPE suppression, and non-blocking setup live in exactly
// one place. Errors surface as Status (util/status.h) carrying errno text.

#ifndef FLOS_SERVICE_NET_IO_H_
#define FLOS_SERVICE_NET_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace flos {

/// Owning file descriptor: closes on destruction, move-only. An
/// default-constructed instance holds no fd (`valid()` is false).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Close(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  UniqueFd& operator=(UniqueFd&& other) noexcept;
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Closes the held fd now (no-op when empty). Idempotent.
  void Close();

  /// Releases ownership without closing; returns the raw fd.
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Creates a TCP listening socket bound to `host:port` (SO_REUSEADDR,
/// non-blocking, backlog `backlog`). `port` 0 binds an ephemeral port —
/// read it back with LocalPort.
Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog);

/// Blocking TCP connect to `host:port` (IPv4 dotted quad or "localhost").
/// The returned socket is blocking with TCP_NODELAY set — right for the
/// one-request-in-flight client; the server sets its accepted sockets
/// non-blocking itself.
Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port);

/// Accepts one pending connection on a listening socket; the result is
/// non-blocking with TCP_NODELAY. Returns an empty (invalid) UniqueFd when
/// no connection is pending (EAGAIN) — not an error.
Result<UniqueFd> AcceptConnection(int listen_fd);

/// Port a bound socket actually listens on (for ephemeral binds).
Result<uint16_t> LocalPort(int fd);

/// Blocking loops (EINTR-safe, SIGPIPE suppressed). SendAll fails if the
/// peer closes mid-write; RecvAll fails on EOF before `len` bytes.
Status SendAll(int fd, const void* data, size_t len);
Status RecvAll(int fd, void* data, size_t len);

/// Non-blocking write for the server's IO thread: writes as much as the
/// kernel accepts, stores the byte count in `*written`, and reports
/// "would block" as OK with a short count. Hard errors (peer reset) fail.
Status SendSome(int fd, const void* data, size_t len, size_t* written);

/// Non-blocking read: appends up to `max_bytes` onto `*out`. Sets `*eof`
/// when the peer closed cleanly; "would block" reads zero bytes with OK.
Status RecvSome(int fd, size_t max_bytes, std::string* out, bool* eof);

/// One ready event from Epoll::Wait.
struct EpollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;  ///< EPOLLERR / EPOLLHUP: tear the connection down
};

/// Thin epoll wrapper (level-triggered).
class Epoll {
 public:
  static Result<Epoll> Create();

  Status Add(int fd, bool want_read, bool want_write);
  Status Modify(int fd, bool want_read, bool want_write);
  Status Remove(int fd);

  /// Blocks up to `timeout_ms` (-1 = forever); fills `*events` with the
  /// ready set (cleared first).
  Status Wait(int timeout_ms, std::vector<EpollEvent>* events);

 private:
  explicit Epoll(UniqueFd fd) : fd_(std::move(fd)) {}
  UniqueFd fd_;
};

/// Self-pipe replacement: an eventfd the workers signal to wake the IO
/// thread out of epoll_wait. Signal() is async-signal- and thread-safe.
class WakeFd {
 public:
  static Result<WakeFd> Create();

  int fd() const { return fd_.get(); }
  void Signal();
  /// Drains pending signals so level-triggered epoll stops reporting.
  void Drain();

 private:
  explicit WakeFd(UniqueFd fd) : fd_(std::move(fd)) {}
  UniqueFd fd_;
};

}  // namespace flos

#endif  // FLOS_SERVICE_NET_IO_H_
