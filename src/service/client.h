// Blocking client for the FLoS query service.
//
// One TCP connection, one request in flight: Query/Stats/Shutdown each
// send a frame and block until the matching response arrives, so the
// unordered-response caveat of the wire protocol (protocol.h) never
// applies here. Tests that exercise pipelining drive SendFrame /
// ReceiveResponse directly.
//
// The client is move-only and thread-compatible: share connections across
// threads only with external synchronization, or give each thread its own.

#ifndef FLOS_SERVICE_CLIENT_H_
#define FLOS_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>

#include "service/net_io.h"
#include "service/protocol.h"
#include "util/status.h"

namespace flos {

/// Synchronous connection to a ServiceServer.
class ServiceClient {
 public:
  /// A default-constructed client is closed; every call returns
  /// kFailedPrecondition until it is replaced via Connect.
  ServiceClient() = default;

  /// Blocking TCP connect (IPv4 dotted quad or "localhost").
  static Result<ServiceClient> Connect(const std::string& host,
                                       uint16_t port);

  /// Bounded retry for TRANSIENT connect failures (kUnavailable:
  /// connection refused/reset/timed out — typically a server that has not
  /// finished binding yet, or a shard process restarting). Any other error
  /// fails immediately. Sleeps `initial_backoff_ms` before the second
  /// attempt, doubling up to `max_backoff_ms`; returns the last
  /// kUnavailable status once attempts are exhausted.
  struct ConnectRetryPolicy {
    int max_attempts = 10;
    uint32_t initial_backoff_ms = 10;
    uint32_t max_backoff_ms = 500;
  };

  /// Connect with retry-on-unavailable. Used by the shard router's backend
  /// pool and by clients racing a server's startup.
  static Result<ServiceClient> Connect(const std::string& host, uint16_t port,
                                       const ConnectRetryPolicy& retry);

  ServiceClient(ServiceClient&&) = default;
  ServiceClient& operator=(ServiceClient&&) = default;

  /// Sends a QUERY and blocks for the answer. A deadline expiring on the
  /// server is NOT an error here: the response has status ok with
  /// `certified == false` — inspect it. Transport failures and server
  /// rejections (overloaded, invalid argument) surface via the response's
  /// status field; only wire-level problems fail the Result.
  Result<QueryResponse> Query(const QueryRequest& request);

  /// Fetches the metrics snapshot (response.message holds the text).
  Result<QueryResponse> Stats();

  /// Asks the server to shut down; resolves once the server acks.
  Result<QueryResponse> Shutdown();

  /// Raw frame IO for pipelining tests and custom drivers. `frame` must be
  /// a complete encoded frame (header + payload).
  Status SendFrame(const std::string& frame);
  Result<QueryResponse> ReceiveResponse();

  /// Closes the connection now (also happens on destruction).
  void Close() { fd_.Close(); }

 private:
  explicit ServiceClient(UniqueFd fd) : fd_(std::move(fd)) {}
  UniqueFd fd_;
};

}  // namespace flos

#endif  // FLOS_SERVICE_CLIENT_H_
