#include "service/server.h"

#include <cstdio>
#include <utility>

#include "core/flos.h"
#include "core/flos_engine.h"

namespace flos {

namespace {

uint64_t MicrosBetween(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count();
  return us > 0 ? static_cast<uint64_t>(us) : 0;
}

/// A worker's leased engine session, held for the worker's lifetime.
struct EngineWorkerState final : FrameHandler::WorkerState {
  explicit EngineWorkerState(EngineSessionPool::Lease l)
      : lease(std::move(l)) {}
  EngineSessionPool::Lease lease;
};

}  // namespace

ServiceServer::ServiceServer(const Graph* graph, ServerOptions options)
    : graph_(graph), options_(std::move(options)) {
  if (options_.num_workers < 1) options_.num_workers = 1;
}

ServiceServer::~ServiceServer() { Shutdown(); }

Status ServiceServer::Start() {
  if (frames_ != nullptr) {
    return Status::FailedPrecondition("ServiceServer::Start called twice");
  }
  if (options_.query_cache_capacity > 0) {
    query_cache_ = std::make_unique<QueryCache>(options_.query_cache_capacity);
  }
  if (options_.subgraph_cache_capacity > 0) {
    subgraph_cache_ =
        std::make_unique<SubgraphCache>(options_.subgraph_cache_capacity);
  }
  if (options_.labels != nullptr) {
    if (options_.shard_meta != nullptr) {
      // Project the global store onto this shard's replicated nodes once;
      // label ids stay global, so predicates forwarded by the router
      // evaluate unchanged here.
      for (const NodeId global : options_.shard_meta->local_to_global) {
        if (static_cast<uint64_t>(global) >= options_.labels->NumNodes()) {
          return Status::InvalidArgument(
              "label store covers " +
              std::to_string(options_.labels->NumNodes()) +
              " nodes but the shard map references global node " +
              std::to_string(global));
        }
      }
      shard_labels_ = options_.labels->Project(
          std::span<const NodeId>(options_.shard_meta->local_to_global));
      serving_labels_ = &shard_labels_;
    } else {
      if (options_.labels->NumNodes() !=
          static_cast<uint64_t>(graph_->NumNodes())) {
        return Status::InvalidArgument(
            "label store covers " +
            std::to_string(options_.labels->NumNodes()) +
            " nodes but the served graph has " +
            std::to_string(graph_->NumNodes()));
      }
      serving_labels_ = options_.labels;
    }
  }
  if (options_.shard_meta != nullptr) {
    const Graph* const graph = graph_;
    const ShardMeta* const meta = options_.shard_meta;
    sessions_ = std::make_unique<EngineSessionPool>(
        [graph, meta]() -> std::unique_ptr<GraphAccessor> {
          return std::make_unique<ShardAccessor>(graph, meta);
        },
        static_cast<size_t>(options_.num_workers), query_cache_.get(),
        subgraph_cache_.get());
  } else {
    sessions_ = std::make_unique<EngineSessionPool>(
        graph_, static_cast<size_t>(options_.num_workers),
        query_cache_.get(), subgraph_cache_.get());
  }

  FrameServiceOptions fopts;
  fopts.host = options_.host;
  fopts.port = options_.port;
  fopts.num_workers = options_.num_workers;
  fopts.max_queue_depth = options_.max_queue_depth;
  fopts.max_frame_bytes = options_.max_frame_bytes;
  fopts.allow_remote_shutdown = options_.allow_remote_shutdown;
  frames_ = std::make_unique<FrameService>(
      std::move(fopts), static_cast<FrameHandler*>(this), &metrics_);
  const Status started = frames_->Start();
  if (!started.ok()) {
    // No threads were spawned on the failure path; unwind so a caller can
    // retry Start (e.g. with another port).
    frames_.reset();
    sessions_.reset();
    subgraph_cache_.reset();
    query_cache_.reset();
    return started;
  }
  return Status::OK();
}

uint16_t ServiceServer::port() const {
  return frames_ != nullptr ? frames_->port() : 0;
}

void ServiceServer::WaitForShutdown() {
  if (frames_ != nullptr) frames_->WaitForShutdown();
}

void ServiceServer::Shutdown() {
  // Session pool first: a worker still blocked in Acquire (CreateWorkerState)
  // gets its empty lease and exits, letting the FrameService join finish.
  if (sessions_ != nullptr) sessions_->Shutdown();
  if (frames_ != nullptr) frames_->Shutdown();
}

std::unique_ptr<FrameHandler::WorkerState> ServiceServer::CreateWorkerState() {
  EngineSessionPool::Lease lease = sessions_->Acquire();
  if (lease.engine() == nullptr) return nullptr;  // pool already shut down
  return std::make_unique<EngineWorkerState>(std::move(lease));
}

QueryResponse ServiceServer::HandleQuery(
    WorkerState* state, const std::string& payload,
    std::chrono::steady_clock::time_point dequeue_time) {
  FlosEngine* const engine =
      static_cast<EngineWorkerState*>(state)->lease.engine();

  QueryResponse resp;
  resp.type = MessageType::kQuery;
  const Result<QueryRequest> decoded = DecodeQueryRequest(payload);
  Status failure;
  if (!decoded.ok()) {
    metrics_.requests_malformed.Increment();
    failure = decoded.status();
  } else if (decoded->k == 0 || decoded->k > options_.max_k) {
    failure = Status::InvalidArgument(
        "k must be in [1, " + std::to_string(options_.max_k) + "]");
  } else if (!(decoded->c > 0.0 && decoded->c < 1.0)) {
    failure = Status::InvalidArgument("c must be in (0, 1)");
  } else if (decoded->tht_length < 1 || decoded->tht_length > 1000) {
    failure = Status::InvalidArgument("tht_length must be in [1, 1000]");
  } else if (!decoded->predicate.empty() && serving_labels_ == nullptr) {
    failure = Status::InvalidArgument(
        "this server has no label store; filtered queries are not "
        "supported");
  }
  if (!failure.ok()) {
    metrics_.queries_error.Increment();
    return MakeErrorResponse(MessageType::kQuery, failure);
  }

  FlosOptions opts;
  opts.measure = decoded->measure;
  opts.c = decoded->c;
  opts.tht_length = static_cast<int>(decoded->tht_length);
  opts.sweep_threads = options_.sweep_threads;
  if (decoded->deadline_us > 0) {
    opts.deadline =
        dequeue_time + std::chrono::microseconds(decoded->deadline_us);
  }
  if (options_.shard_meta != nullptr) {
    // Shard mode: only the interior halo (complete adjacency) may be
    // expanded; the fringe is visit-and-bound only.
    opts.expandable_limit =
        static_cast<uint64_t>(options_.shard_meta->num_interior);
  }
  const bool is_filtered = !decoded->predicate.empty();
  if (is_filtered) {
    opts.labels = serving_labels_;
    opts.predicate = decoded->predicate;
  }

  const auto serve_start = std::chrono::steady_clock::now();
  const Result<FlosResult> result = engine->TopK(
      decoded->query_node, static_cast<int>(decoded->k), opts);
  const auto serve_end = std::chrono::steady_clock::now();
  const uint64_t serve_micros = MicrosBetween(serve_start, serve_end);
  metrics_.serve_us.Record(serve_micros);
  if (is_filtered) {
    switch (decoded->predicate.type()) {
      case PredicateType::kEquality:
        metrics_.filtered_eq_us.Record(serve_micros);
        break;
      case PredicateType::kContainment:
        metrics_.filtered_contain_us.Record(serve_micros);
        break;
      case PredicateType::kOverlap:
        metrics_.filtered_overlap_us.Record(serve_micros);
        break;
      case PredicateType::kNone:
        break;  // unreachable: is_filtered excludes kNone
    }
  }

  if (!result.ok()) {
    metrics_.queries_error.Increment();
    resp = MakeErrorResponse(MessageType::kQuery, result.status());
  } else {
    metrics_.queries_ok.Increment();
    resp.status = StatusCode::kOk;
    resp.certified = result->stats.exact;
    resp.cache_hit = result->stats.cache_hit;
    resp.halo_truncated = result->stats.frontier_clipped;
    // A result-cache hit never ran the search, so its stats describe the
    // original run; only searches that actually executed count toward the
    // warm-subgraph flag and counters.
    resp.subgraph_hit = result->stats.subgraph_hit && !resp.cache_hit;
    if (query_cache_ != nullptr) {
      if (resp.cache_hit) {
        metrics_.cache_hits.Increment();
      } else {
        metrics_.cache_misses.Increment();
      }
    }
    if (subgraph_cache_ != nullptr && !resp.cache_hit) {
      if (resp.subgraph_hit) {
        metrics_.subgraph_hits.Increment();
      } else {
        metrics_.subgraph_misses.Increment();
      }
    }
    resp.visited = result->stats.visited_nodes;
    resp.wall_us = MicrosBetween(serve_start, serve_end);
    resp.topk.reserve(result->topk.size());
    for (const ScoredNode& s : result->topk) {
      ResponseEntry e;
      e.node = s.node;
      e.score = s.score;
      e.lower = s.lower;
      e.upper = s.upper;
      resp.topk.push_back(e);
    }
    if (result->stats.deadline_expired) {
      metrics_.deadline_expiries.Increment();
    }
    if (resp.halo_truncated) {
      metrics_.queries_halo_truncated.Increment();
    }
    // Filtered traffic keeps its own certified counters so the headline
    // certified_ratio stays an unfiltered-workload signal (metrics.h).
    if (is_filtered) {
      metrics_.filtered_queries.Increment();
      if (resp.certified) {
        metrics_.filtered_certified.Increment();
      } else {
        metrics_.filtered_uncertified.Increment();
      }
    } else if (resp.certified) {
      metrics_.queries_certified.Increment();
    } else {
      metrics_.queries_uncertified.Increment();
    }
  }
  return resp;
}

QueryResponse ServiceServer::HandleStats(WorkerState* /*state*/) {
  QueryResponse resp;
  resp.type = MessageType::kStats;
  resp.status = StatusCode::kOk;
  resp.message = metrics_.registry.RenderText();
  // Derived line: fraction of ok queries whose proof finished. The
  // raw counters stay above so dashboards can re-derive it.
  const uint64_t certified = metrics_.queries_certified.value();
  const uint64_t total = certified + metrics_.queries_uncertified.value();
  char ratio_line[64];
  std::snprintf(ratio_line, sizeof(ratio_line),
                "ratio certified_ratio %.4f\n",
                total > 0 ? static_cast<double>(certified) /
                                static_cast<double>(total)
                          : 0.0);
  resp.message += ratio_line;
  // Same idea for the warm-subgraph tier: fraction of executed searches
  // (result-cache misses) that resumed from a cached subgraph.
  const uint64_t sub_hits = metrics_.subgraph_hits.value();
  const uint64_t sub_total = sub_hits + metrics_.subgraph_misses.value();
  std::snprintf(ratio_line, sizeof(ratio_line),
                "ratio subgraph_hit_ratio %.4f\n",
                sub_total > 0 ? static_cast<double>(sub_hits) /
                                    static_cast<double>(sub_total)
                              : 0.0);
  resp.message += ratio_line;
  // Filtered traffic's own certification ratio (separate counters keep it
  // out of certified_ratio above — see metrics.h).
  const uint64_t f_certified = metrics_.filtered_certified.value();
  const uint64_t f_total =
      f_certified + metrics_.filtered_uncertified.value();
  std::snprintf(ratio_line, sizeof(ratio_line),
                "ratio filtered_certified_ratio %.4f\n",
                f_total > 0 ? static_cast<double>(f_certified) /
                                  static_cast<double>(f_total)
                            : 0.0);
  resp.message += ratio_line;
  return resp;
}

}  // namespace flos
