#include "service/server.h"

#include <cstdio>
#include <cstring>
#include <utility>

#include "core/flos.h"
#include "core/flos_engine.h"

namespace flos {

namespace {

uint64_t MicrosBetween(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count();
  return us > 0 ? static_cast<uint64_t>(us) : 0;
}

}  // namespace

ServiceServer::ServiceServer(const Graph* graph, ServerOptions options)
    : graph_(graph), options_(std::move(options)) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.max_queue_depth < 1) options_.max_queue_depth = 1;
}

ServiceServer::~ServiceServer() { Shutdown(); }

Status ServiceServer::Start() {
  if (started_) {
    return Status::FailedPrecondition("ServiceServer::Start called twice");
  }
  FLOS_ASSIGN_OR_RETURN(listen_fd_,
                        ListenTcp(options_.host, options_.port, 128));
  FLOS_ASSIGN_OR_RETURN(port_, LocalPort(listen_fd_.get()));
  FLOS_ASSIGN_OR_RETURN(Epoll ep, Epoll::Create());
  epoll_ = std::make_unique<Epoll>(std::move(ep));
  FLOS_ASSIGN_OR_RETURN(WakeFd wake, WakeFd::Create());
  wake_ = std::make_unique<WakeFd>(std::move(wake));
  FLOS_RETURN_IF_ERROR(epoll_->Add(listen_fd_.get(), /*want_read=*/true,
                                   /*want_write=*/false));
  FLOS_RETURN_IF_ERROR(
      epoll_->Add(wake_->fd(), /*want_read=*/true, /*want_write=*/false));

  if (options_.query_cache_capacity > 0) {
    query_cache_ = std::make_unique<QueryCache>(options_.query_cache_capacity);
  }
  sessions_ = std::make_unique<EngineSessionPool>(
      graph_, static_cast<size_t>(options_.num_workers), query_cache_.get());

  started_ = true;
  stop_.store(false, std::memory_order_relaxed);
  io_thread_ = std::thread([this] { IoLoop(); });
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void ServiceServer::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] {
    return shutdown_requested_ || stop_.load(std::memory_order_relaxed);
  });
}

void ServiceServer::Shutdown() {
  if (!started_) return;
  started_ = false;
  stop_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
  queue_cv_.notify_all();
  if (sessions_ != nullptr) sessions_->Shutdown();
  if (wake_ != nullptr) wake_->Signal();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (io_thread_.joinable()) io_thread_.join();
  connections_.clear();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.clear();
    metrics_.queue_depth.Set(0);
  }
  epoll_.reset();
  wake_.reset();
  listen_fd_.Close();
}

void ServiceServer::IoLoop() {
  std::vector<EpollEvent> events;
  while (!stop_.load(std::memory_order_relaxed)) {
    const Status waited = epoll_->Wait(/*timeout_ms=*/200, &events);
    if (!waited.ok()) {
      std::fprintf(stderr, "flos service: epoll wait failed: %s\n",
                   waited.ToString().c_str());
      break;
    }
    // A worker may have enqueued output for any connection; level-triggered
    // EPOLLOUT is only armed lazily here, so sweep every wakeup.
    if (stop_.load(std::memory_order_relaxed)) break;
    for (const EpollEvent& ev : events) {
      if (ev.fd == wake_->fd()) {
        wake_->Drain();
        continue;
      }
      if (ev.fd == listen_fd_.get()) {
        AcceptAll();
        continue;
      }
      const auto it = connections_.find(ev.fd);
      if (it == connections_.end()) continue;
      const std::shared_ptr<Connection> conn = it->second;
      bool alive = !ev.error;
      if (alive && ev.readable) alive = HandleReadable(conn);
      if (alive && ev.writable) alive = FlushOutbox(conn);
      if (!alive) CloseConnection(ev.fd);
    }
    // Arm EPOLLOUT for connections the workers filled since last pass.
    for (auto it = connections_.begin(); it != connections_.end();) {
      const std::shared_ptr<Connection>& conn = it->second;
      const int fd = conn->fd.get();
      ++it;  // FlushOutbox may CloseConnection(fd) and invalidate `it`
      bool pending = false;
      {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        pending = !conn->outbox.empty();
      }
      if (pending && !FlushOutbox(conn)) CloseConnection(fd);
    }
  }
  // Drop every connection on the way out so clients see EOF promptly.
  for (auto& [fd, conn] : connections_) {
    (void)conn;
    (void)epoll_->Remove(fd);
  }
  connections_.clear();
}

void ServiceServer::AcceptAll() {
  while (true) {
    Result<UniqueFd> accepted = AcceptConnection(listen_fd_.get());
    if (!accepted.ok()) {
      std::fprintf(stderr, "flos service: accept failed: %s\n",
                   accepted.status().ToString().c_str());
      return;
    }
    if (!accepted->valid()) return;  // EAGAIN: drained the backlog
    auto conn = std::make_shared<Connection>();
    conn->fd = std::move(*accepted);
    const int fd = conn->fd.get();
    const Status added =
        epoll_->Add(fd, /*want_read=*/true, /*want_write=*/false);
    if (!added.ok()) {
      std::fprintf(stderr, "flos service: epoll add failed: %s\n",
                   added.ToString().c_str());
      continue;  // conn drops here, closing the socket
    }
    connections_.emplace(fd, std::move(conn));
    metrics_.connections_opened.Increment();
    metrics_.active_connections.Add(1);
  }
}

bool ServiceServer::HandleReadable(const std::shared_ptr<Connection>& conn) {
  bool eof = false;
  const Status received =
      RecvSome(conn->fd.get(), 64 * 1024, &conn->inbuf, &eof);
  if (!received.ok()) return false;
  // Reassemble complete frames; track a consumed offset so pipelined
  // bursts erase the buffer prefix once instead of per frame.
  size_t consumed = 0;
  bool alive = true;
  while (alive) {
    if (conn->inbuf.size() - consumed < kFrameHeaderBytes) break;
    uint32_t frame_len = 0;
    std::memcpy(&frame_len, conn->inbuf.data() + consumed,
                sizeof(frame_len));
    if (frame_len > options_.max_frame_bytes) {
      // Cannot resynchronize framing after an oversized length; drop the
      // connection.
      metrics_.requests_malformed.Increment();
      alive = false;
      break;
    }
    if (conn->inbuf.size() - consumed < kFrameHeaderBytes + frame_len) break;
    std::string payload = conn->inbuf.substr(
        consumed + kFrameHeaderBytes, frame_len);
    consumed += kFrameHeaderBytes + frame_len;
    alive = HandleFrame(conn, std::move(payload));
  }
  if (consumed > 0) conn->inbuf.erase(0, consumed);
  if (alive && eof) {
    // Peer finished sending. Keep the connection only while responses for
    // already-admitted work may still arrive; simplest correct policy:
    // close once the outbox drains. Workers holding the shared_ptr write
    // into an orphaned buffer, which is safe.
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->outbox.empty()) alive = false;
  }
  return alive;
}

bool ServiceServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                                std::string payload) {
  const Result<MessageType> type = PeekMessageType(payload);
  if (!type.ok()) {
    metrics_.requests_malformed.Increment();
    EnqueueResponse(conn,
                    MakeErrorResponse(MessageType::kQuery, type.status()),
                    /*from_io_thread=*/true);
    return true;  // framing is intact; the connection can continue
  }
  switch (*type) {
    case MessageType::kQuery:
      HandleQueryFrame(conn, std::move(payload));
      return true;
    case MessageType::kStats: {
      metrics_.stats_requests.Increment();
      QueryResponse resp;
      resp.type = MessageType::kStats;
      resp.status = StatusCode::kOk;
      resp.message = metrics_.registry.RenderText();
      // Derived line: fraction of ok queries whose proof finished. The
      // raw counters stay above so dashboards can re-derive it.
      const uint64_t certified = metrics_.queries_certified.value();
      const uint64_t total = certified + metrics_.queries_uncertified.value();
      char ratio_line[64];
      std::snprintf(ratio_line, sizeof(ratio_line),
                    "ratio certified_ratio %.4f\n",
                    total > 0 ? static_cast<double>(certified) /
                                    static_cast<double>(total)
                              : 0.0);
      resp.message += ratio_line;
      EnqueueResponse(conn, resp, /*from_io_thread=*/true);
      return true;
    }
    case MessageType::kShutdown: {
      if (!options_.allow_remote_shutdown) {
        EnqueueResponse(
            conn,
            MakeErrorResponse(MessageType::kShutdown,
                              Status::FailedPrecondition(
                                  "remote shutdown is disabled")),
            /*from_io_thread=*/true);
        return true;
      }
      QueryResponse resp;
      resp.type = MessageType::kShutdown;
      resp.status = StatusCode::kOk;
      EnqueueResponse(conn, resp, /*from_io_thread=*/true);
      {
        std::lock_guard<std::mutex> lock(shutdown_mu_);
        shutdown_requested_ = true;
      }
      shutdown_cv_.notify_all();
      return true;
    }
  }
  return true;
}

void ServiceServer::HandleQueryFrame(const std::shared_ptr<Connection>& conn,
                                     std::string payload) {
  PendingQuery work;
  work.conn = conn;
  work.payload = std::move(payload);
  work.accept_time = std::chrono::steady_clock::now();
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() < options_.max_queue_depth) {
      queue_.push_back(std::move(work));
      metrics_.queue_depth.Set(static_cast<int64_t>(queue_.size()));
      admitted = true;
    }
  }
  if (admitted) {
    metrics_.requests_accepted.Increment();
    queue_cv_.notify_one();
  } else {
    metrics_.requests_rejected_overload.Increment();
    EnqueueResponse(
        conn,
        MakeErrorResponse(MessageType::kQuery,
                          Status::Overloaded(
                              "request queue full; back off and retry")),
        /*from_io_thread=*/true);
  }
}

void ServiceServer::WorkerLoop() {
  EngineSessionPool::Lease lease = sessions_->Acquire();
  FlosEngine* const engine = lease.engine();
  if (engine == nullptr) return;  // pool shut down before we started
  while (true) {
    PendingQuery work;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_relaxed) || !queue_.empty();
      });
      if (stop_.load(std::memory_order_relaxed)) return;
      work = std::move(queue_.front());
      queue_.pop_front();
      metrics_.queue_depth.Set(static_cast<int64_t>(queue_.size()));
    }
    ServeQuery(engine, work);
  }
}

void ServiceServer::ServeQuery(FlosEngine* engine,
                               const PendingQuery& work) {
  const auto dequeue_time = std::chrono::steady_clock::now();
  metrics_.queue_wait_us.Record(
      MicrosBetween(work.accept_time, dequeue_time));

  QueryResponse resp;
  resp.type = MessageType::kQuery;
  const Result<QueryRequest> decoded = DecodeQueryRequest(work.payload);
  Status failure;
  if (!decoded.ok()) {
    metrics_.requests_malformed.Increment();
    failure = decoded.status();
  } else if (decoded->k == 0 || decoded->k > options_.max_k) {
    failure = Status::InvalidArgument(
        "k must be in [1, " + std::to_string(options_.max_k) + "]");
  } else if (!(decoded->c > 0.0 && decoded->c < 1.0)) {
    failure = Status::InvalidArgument("c must be in (0, 1)");
  } else if (decoded->tht_length < 1 || decoded->tht_length > 1000) {
    failure = Status::InvalidArgument("tht_length must be in [1, 1000]");
  }
  if (!failure.ok()) {
    metrics_.queries_error.Increment();
    resp = MakeErrorResponse(MessageType::kQuery, failure);
    EnqueueResponse(work.conn, resp, /*from_io_thread=*/false);
    metrics_.total_us.Record(MicrosBetween(
        work.accept_time, std::chrono::steady_clock::now()));
    return;
  }

  FlosOptions opts;
  opts.measure = decoded->measure;
  opts.c = decoded->c;
  opts.tht_length = static_cast<int>(decoded->tht_length);
  if (decoded->deadline_us > 0) {
    opts.deadline =
        dequeue_time + std::chrono::microseconds(decoded->deadline_us);
  }

  const auto serve_start = std::chrono::steady_clock::now();
  const Result<FlosResult> result = engine->TopK(
      decoded->query_node, static_cast<int>(decoded->k), opts);
  const auto serve_end = std::chrono::steady_clock::now();
  metrics_.serve_us.Record(MicrosBetween(serve_start, serve_end));

  if (!result.ok()) {
    metrics_.queries_error.Increment();
    resp = MakeErrorResponse(MessageType::kQuery, result.status());
  } else {
    metrics_.queries_ok.Increment();
    resp.status = StatusCode::kOk;
    resp.certified = result->stats.exact;
    resp.cache_hit = result->stats.cache_hit;
    if (query_cache_ != nullptr) {
      if (resp.cache_hit) {
        metrics_.cache_hits.Increment();
      } else {
        metrics_.cache_misses.Increment();
      }
    }
    resp.visited = result->stats.visited_nodes;
    resp.wall_us = MicrosBetween(serve_start, serve_end);
    resp.topk.reserve(result->topk.size());
    for (const ScoredNode& s : result->topk) {
      ResponseEntry e;
      e.node = s.node;
      e.score = s.score;
      e.lower = s.lower;
      e.upper = s.upper;
      resp.topk.push_back(e);
    }
    if (result->stats.deadline_expired) {
      metrics_.deadline_expiries.Increment();
    }
    if (resp.certified) {
      metrics_.queries_certified.Increment();
    } else {
      metrics_.queries_uncertified.Increment();
    }
  }
  EnqueueResponse(work.conn, resp, /*from_io_thread=*/false);
  metrics_.total_us.Record(
      MicrosBetween(work.accept_time, std::chrono::steady_clock::now()));
}

void ServiceServer::EnqueueResponse(const std::shared_ptr<Connection>& conn,
                                    const QueryResponse& response,
                                    bool from_io_thread) {
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    EncodeResponse(response, &conn->outbox);
  }
  if (from_io_thread) {
    if (!FlushOutbox(conn)) CloseConnection(conn->fd.get());
  } else {
    wake_->Signal();
  }
}

bool ServiceServer::FlushOutbox(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(conn->out_mu);
  if (!conn->outbox.empty()) {
    size_t written = 0;
    const Status sent = SendSome(conn->fd.get(), conn->outbox.data(),
                                 conn->outbox.size(), &written);
    if (!sent.ok()) return false;
    if (written > 0) conn->outbox.erase(0, written);
  }
  const bool want_write = !conn->outbox.empty();
  if (want_write != conn->epoll_out) {
    const Status modified =
        epoll_->Modify(conn->fd.get(), /*want_read=*/true, want_write);
    if (!modified.ok()) return false;
    conn->epoll_out = want_write;
  }
  return true;
}

void ServiceServer::CloseConnection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  (void)epoll_->Remove(fd);
  connections_.erase(it);
  metrics_.connections_closed.Increment();
  metrics_.active_connections.Add(-1);
}

}  // namespace flos
