// Shard router: the scale-out front-end of the FLoS query service.
//
// A fleet of independent flos_server processes each serves one
// halo-replicated shard of a partitioned graph (graph/partition.h). The
// router speaks the SAME length-prefixed wire protocol on both sides: it
// accepts client frames through a FrameService, maps each QUERY's seed
// node to the shard that owns it (ShardRouteTable), rewrites the seed to
// the shard-local id, forwards the frame over a pooled persistent backend
// connection (one ServiceClient per shard per router worker), and
// translates result node ids back to global before answering. Clients
// cannot tell a router from a single server — except through STATS, which
// fans out to every shard and returns the per-shard metric text alongside
// the router's own (forwarding counters, per-shard admission gauges).
//
// Because FLoS searches stay local to the seed's neighborhood (the paper's
// central property), a BFS-grown partition with an adequate halo serves
// almost every query entirely within one shard, certified exact — so
// aggregate QPS scales with the number of shard processes. A query whose
// search would leave the halo comes back uncertified with the
// halo-truncated flag (rigorous bounds, anytime contract intact).
//
// Error containment: a backend that cannot be reached (or dies mid-query)
// fails only the queries routed to it, with status `unavailable`; the
// worker drops that connection and reconnects (with bounded backoff) on
// the next query for that shard.

#ifndef FLOS_SERVICE_SHARD_ROUTER_H_
#define FLOS_SERVICE_SHARD_ROUTER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "graph/partition.h"
#include "service/client.h"
#include "service/frame_service.h"
#include "service/metrics.h"
#include "service/protocol.h"
#include "util/status.h"

namespace flos {

/// Network address of one shard server.
struct ShardEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct ShardRouterOptions {
  /// Client-facing listen address (0 = ephemeral port).
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Router worker threads; each holds one persistent connection per
  /// shard, so concurrent backend requests per shard are capped here.
  int num_workers = 4;
  /// Admission-control cap shared with the single-server front-end.
  size_t max_queue_depth = 256;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  bool allow_remote_shutdown = true;
  /// shards[i] serves shard i of the route table. Size must equal the
  /// route table's shard count.
  std::vector<ShardEndpoint> shards;
  /// Backoff for (re)connecting to a backend.
  ServiceClient::ConnectRetryPolicy backend_retry;
};

/// The router process. Start() spawns the FrameService threads; backend
/// connections are opened lazily by each worker on first use.
class ShardRouter final : private FrameHandler {
 public:
  /// `route` comes from ShardRouteTable::Build over every shard's map.
  ShardRouter(ShardRouteTable route, ShardRouterOptions options);
  ~ShardRouter() override;

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  Status Start();
  uint16_t port() const;
  void WaitForShutdown();
  void Shutdown();

  /// Best-effort SHUTDOWN frame to every backend (fresh connections; does
  /// not disturb the workers'). For drivers that own the whole fleet.
  void ShutdownBackends();

  /// Live metrics: the shared service counters plus, per shard i,
  /// `shard<i>_forwarded`, `shard<i>_errors`, and the `shard<i>_inflight`
  /// gauge (max = peak concurrent backend requests).
  const ServiceMetrics& metrics() const { return metrics_; }

 private:
  struct BackendSet;

  std::unique_ptr<WorkerState> CreateWorkerState() override;
  QueryResponse HandleQuery(
      WorkerState* state, const std::string& payload,
      std::chrono::steady_clock::time_point dequeue_time) override;
  QueryResponse HandleStats(WorkerState* state) override;

  /// The worker's connection to `shard`, connecting (with backoff) if
  /// needed. Null with the connect status on failure.
  Result<ServiceClient*> Backend(BackendSet* set, uint32_t shard);

  ShardRouteTable route_;
  ShardRouterOptions options_;
  ServiceMetrics metrics_;
  // Per-shard instruments; deques because metrics pin their addresses in
  // the registry. Sized and registered in the constructor.
  std::deque<Counter> shard_forwarded_;
  std::deque<Counter> shard_errors_;
  std::deque<Gauge> shard_inflight_;
  std::unique_ptr<FrameService> frames_;
};

}  // namespace flos

#endif  // FLOS_SERVICE_SHARD_ROUTER_H_
