#include "service/frame_service.h"

#include <cstdio>
#include <cstring>
#include <utility>

namespace flos {

namespace {

uint64_t MicrosBetween(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count();
  return us > 0 ? static_cast<uint64_t>(us) : 0;
}

}  // namespace

FrameService::FrameService(FrameServiceOptions options, FrameHandler* handler,
                           ServiceMetrics* metrics)
    : options_(std::move(options)), handler_(handler), metrics_(metrics) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.max_queue_depth < 1) options_.max_queue_depth = 1;
}

FrameService::~FrameService() { Shutdown(); }

Status FrameService::Start() {
  if (started_) {
    return Status::FailedPrecondition("FrameService::Start called twice");
  }
  FLOS_ASSIGN_OR_RETURN(listen_fd_,
                        ListenTcp(options_.host, options_.port, 128));
  FLOS_ASSIGN_OR_RETURN(port_, LocalPort(listen_fd_.get()));
  FLOS_ASSIGN_OR_RETURN(Epoll ep, Epoll::Create());
  epoll_ = std::make_unique<Epoll>(std::move(ep));
  FLOS_ASSIGN_OR_RETURN(WakeFd wake, WakeFd::Create());
  wake_ = std::make_unique<WakeFd>(std::move(wake));
  FLOS_RETURN_IF_ERROR(epoll_->Add(listen_fd_.get(), /*want_read=*/true,
                                   /*want_write=*/false));
  FLOS_RETURN_IF_ERROR(
      epoll_->Add(wake_->fd(), /*want_read=*/true, /*want_write=*/false));

  started_ = true;
  stop_.store(false, std::memory_order_relaxed);
  io_thread_ = std::thread([this] { IoLoop(); });
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void FrameService::WaitForShutdown() {
  MutexLock lock(shutdown_mu_);
  while (!shutdown_requested_ && !stop_.load(std::memory_order_relaxed)) {
    shutdown_cv_.Wait(shutdown_mu_);
  }
}

void FrameService::Shutdown() {
  if (!started_) return;
  started_ = false;
  stop_.store(true, std::memory_order_relaxed);
  {
    MutexLock lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.NotifyAll();
  queue_cv_.NotifyAll();
  if (wake_ != nullptr) wake_->Signal();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (io_thread_.joinable()) io_thread_.join();
  connections_.clear();
  {
    MutexLock lock(queue_mu_);
    queue_.clear();
    metrics_->queue_depth.Set(0);
  }
  epoll_.reset();
  wake_.reset();
  listen_fd_.Close();
}

void FrameService::IoLoop() {
  std::vector<EpollEvent> events;
  while (!stop_.load(std::memory_order_relaxed)) {
    const Status waited = epoll_->Wait(/*timeout_ms=*/200, &events);
    if (!waited.ok()) {
      std::fprintf(stderr, "flos service: epoll wait failed: %s\n",
                   waited.ToString().c_str());
      break;
    }
    // A worker may have enqueued output for any connection; level-triggered
    // EPOLLOUT is only armed lazily here, so sweep every wakeup.
    if (stop_.load(std::memory_order_relaxed)) break;
    for (const EpollEvent& ev : events) {
      if (ev.fd == wake_->fd()) {
        wake_->Drain();
        continue;
      }
      if (ev.fd == listen_fd_.get()) {
        AcceptAll();
        continue;
      }
      const auto it = connections_.find(ev.fd);
      if (it == connections_.end()) continue;
      const std::shared_ptr<Connection> conn = it->second;
      bool alive = !ev.error;
      if (alive && ev.readable) alive = HandleReadable(conn);
      if (alive && ev.writable) alive = FlushOutbox(conn);
      if (!alive) CloseConnection(ev.fd);
    }
    // Arm EPOLLOUT for connections the workers filled since last pass.
    for (auto it = connections_.begin(); it != connections_.end();) {
      const std::shared_ptr<Connection>& conn = it->second;
      const int fd = conn->fd.get();
      ++it;  // FlushOutbox may CloseConnection(fd) and invalidate `it`
      bool pending = false;
      {
        MutexLock lock(conn->out_mu);
        pending = !conn->outbox.empty();
      }
      if (pending && !FlushOutbox(conn)) CloseConnection(fd);
    }
  }
  // Drop every connection on the way out so clients see EOF promptly.
  for (auto& [fd, conn] : connections_) {
    (void)conn;
    (void)epoll_->Remove(fd);
  }
  connections_.clear();
}

void FrameService::AcceptAll() {
  while (true) {
    Result<UniqueFd> accepted = AcceptConnection(listen_fd_.get());
    if (!accepted.ok()) {
      std::fprintf(stderr, "flos service: accept failed: %s\n",
                   accepted.status().ToString().c_str());
      return;
    }
    if (!accepted->valid()) return;  // EAGAIN: drained the backlog
    auto conn = std::make_shared<Connection>();
    conn->fd = std::move(*accepted);
    const int fd = conn->fd.get();
    const Status added =
        epoll_->Add(fd, /*want_read=*/true, /*want_write=*/false);
    if (!added.ok()) {
      std::fprintf(stderr, "flos service: epoll add failed: %s\n",
                   added.ToString().c_str());
      continue;  // conn drops here, closing the socket
    }
    connections_.emplace(fd, std::move(conn));
    metrics_->connections_opened.Increment();
    metrics_->active_connections.Add(1);
  }
}

bool FrameService::HandleReadable(const std::shared_ptr<Connection>& conn) {
  bool eof = false;
  const Status received =
      RecvSome(conn->fd.get(), 64 * 1024, &conn->inbuf, &eof);
  if (!received.ok()) return false;
  // Reassemble complete frames; track a consumed offset so pipelined
  // bursts erase the buffer prefix once instead of per frame.
  size_t consumed = 0;
  bool alive = true;
  while (alive) {
    if (conn->inbuf.size() - consumed < kFrameHeaderBytes) break;
    uint32_t frame_len = 0;
    std::memcpy(&frame_len, conn->inbuf.data() + consumed,
                sizeof(frame_len));
    if (frame_len > options_.max_frame_bytes) {
      // Cannot resynchronize framing after an oversized length; drop the
      // connection.
      metrics_->requests_malformed.Increment();
      alive = false;
      break;
    }
    if (conn->inbuf.size() - consumed < kFrameHeaderBytes + frame_len) break;
    std::string payload = conn->inbuf.substr(
        consumed + kFrameHeaderBytes, frame_len);
    consumed += kFrameHeaderBytes + frame_len;
    alive = HandleFrame(conn, std::move(payload));
  }
  if (consumed > 0) conn->inbuf.erase(0, consumed);
  if (alive && eof) {
    // Peer finished sending. Keep the connection only while responses for
    // already-admitted work may still arrive; simplest correct policy:
    // close once the outbox drains. Workers holding the shared_ptr write
    // into an orphaned buffer, which is safe.
    MutexLock lock(conn->out_mu);
    if (conn->outbox.empty()) alive = false;
  }
  return alive;
}

bool FrameService::HandleFrame(const std::shared_ptr<Connection>& conn,
                               std::string payload) {
  const Result<MessageType> type = PeekMessageType(payload);
  if (!type.ok()) {
    metrics_->requests_malformed.Increment();
    EnqueueResponse(conn,
                    MakeErrorResponse(MessageType::kQuery, type.status()),
                    /*from_io_thread=*/true);
    return true;  // framing is intact; the connection can continue
  }
  switch (*type) {
    case MessageType::kQuery:
      AdmitFrame(conn, MessageType::kQuery, std::move(payload));
      return true;
    case MessageType::kStats:
      metrics_->stats_requests.Increment();
      AdmitFrame(conn, MessageType::kStats, std::move(payload));
      return true;
    case MessageType::kShutdown: {
      if (!options_.allow_remote_shutdown) {
        EnqueueResponse(
            conn,
            MakeErrorResponse(MessageType::kShutdown,
                              Status::FailedPrecondition(
                                  "remote shutdown is disabled")),
            /*from_io_thread=*/true);
        return true;
      }
      QueryResponse resp;
      resp.type = MessageType::kShutdown;
      resp.status = StatusCode::kOk;
      EnqueueResponse(conn, resp, /*from_io_thread=*/true);
      {
        MutexLock lock(shutdown_mu_);
        shutdown_requested_ = true;
      }
      shutdown_cv_.NotifyAll();
      return true;
    }
  }
  return true;
}

void FrameService::AdmitFrame(const std::shared_ptr<Connection>& conn,
                              MessageType type, std::string payload) {
  PendingFrame work;
  work.conn = conn;
  work.type = type;
  work.payload = std::move(payload);
  work.accept_time = std::chrono::steady_clock::now();
  bool admitted = false;
  {
    MutexLock lock(queue_mu_);
    if (queue_.size() < options_.max_queue_depth) {
      queue_.push_back(std::move(work));
      metrics_->queue_depth.Set(static_cast<int64_t>(queue_.size()));
      admitted = true;
    }
  }
  if (admitted) {
    if (type == MessageType::kQuery) metrics_->requests_accepted.Increment();
    queue_cv_.NotifyOne();
  } else {
    metrics_->requests_rejected_overload.Increment();
    EnqueueResponse(
        conn,
        MakeErrorResponse(type,
                          Status::Overloaded(
                              "request queue full; back off and retry")),
        /*from_io_thread=*/true);
  }
}

void FrameService::WorkerLoop() {
  const std::unique_ptr<FrameHandler::WorkerState> state =
      handler_->CreateWorkerState();
  if (state == nullptr) return;  // backing resources gone before we started
  while (true) {
    PendingFrame work;
    {
      MutexLock lock(queue_mu_);
      while (!stop_.load(std::memory_order_relaxed) && queue_.empty()) {
        queue_cv_.Wait(queue_mu_);
      }
      if (stop_.load(std::memory_order_relaxed)) return;
      work = std::move(queue_.front());
      queue_.pop_front();
      metrics_->queue_depth.Set(static_cast<int64_t>(queue_.size()));
    }
    if (work.type == MessageType::kQuery) {
      const auto dequeue_time = std::chrono::steady_clock::now();
      metrics_->queue_wait_us.Record(
          MicrosBetween(work.accept_time, dequeue_time));
      const QueryResponse resp =
          handler_->HandleQuery(state.get(), work.payload, dequeue_time);
      EnqueueResponse(work.conn, resp, /*from_io_thread=*/false);
      metrics_->total_us.Record(MicrosBetween(
          work.accept_time, std::chrono::steady_clock::now()));
    } else {
      EnqueueResponse(work.conn, handler_->HandleStats(state.get()),
                      /*from_io_thread=*/false);
    }
  }
}

void FrameService::EnqueueResponse(const std::shared_ptr<Connection>& conn,
                                   const QueryResponse& response,
                                   bool from_io_thread) {
  {
    MutexLock lock(conn->out_mu);
    EncodeResponse(response, &conn->outbox);
  }
  if (from_io_thread) {
    if (!FlushOutbox(conn)) CloseConnection(conn->fd.get());
  } else {
    wake_->Signal();
  }
}

bool FrameService::FlushOutbox(const std::shared_ptr<Connection>& conn) {
  MutexLock lock(conn->out_mu);
  if (!conn->outbox.empty()) {
    size_t written = 0;
    const Status sent = SendSome(conn->fd.get(), conn->outbox.data(),
                                 conn->outbox.size(), &written);
    if (!sent.ok()) return false;
    if (written > 0) conn->outbox.erase(0, written);
  }
  const bool want_write = !conn->outbox.empty();
  if (want_write != conn->epoll_out) {
    const Status modified =
        epoll_->Modify(conn->fd.get(), /*want_read=*/true, want_write);
    if (!modified.ok()) return false;
    conn->epoll_out = want_write;
  }
  return true;
}

void FrameService::CloseConnection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  (void)epoll_->Remove(fd);
  connections_.erase(it);
  metrics_->connections_closed.Increment();
  metrics_->active_connections.Add(-1);
}

}  // namespace flos
