// Lock-free metrics for the query service: counters, gauges, and
// fixed-bucket latency histograms, grouped behind a small registry that
// renders a stable text snapshot for the STATS protocol command.
//
// Everything is std::atomic with relaxed ordering — metrics observe, they
// never synchronize. Recording from any number of threads is wait-free;
// rendering reads a (possibly slightly torn across metrics, never within
// one) snapshot, which is the usual and acceptable monitoring contract.

#ifndef FLOS_SERVICE_METRICS_H_
#define FLOS_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace flos {

/// Monotone event counter.
class Counter {
 public:
  void Increment(uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level (queue depth, open connections). Tracks the peak
/// observed value so bounded-queue claims are checkable after the fact.
class Gauge {
 public:
  void Set(int64_t v);
  void Add(int64_t delta);
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t max_value() const { return max_.load(std::memory_order_relaxed); }

 private:
  void BumpMax(int64_t v);
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Fixed-bucket latency histogram over microseconds. Bucket upper bounds
/// follow a 1-2-5 decade ladder from 1us to 1e7us plus an overflow bucket,
/// so Percentile is conservative within ~2.5x resolution at every scale —
/// plenty for p50/p95/p99 service dashboards, with zero allocation and
/// wait-free recording.
class LatencyHistogram {
 public:
  /// Bucket upper bounds in microseconds (exclusive overflow at the end).
  static const std::array<uint64_t, 22>& BucketBounds();

  void Record(uint64_t micros);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_micros() const {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Upper bound of the bucket holding the p-quantile (p in [0, 1]) of
  /// everything recorded so far; 0 when empty. Conservative: the true
  /// quantile is <= the returned value.
  uint64_t PercentileUpperBound(double p) const;

  /// Raw bucket counts (index-aligned with BucketBounds; the last entry is
  /// the overflow bucket).
  std::vector<uint64_t> Snapshot() const;

 private:
  std::array<std::atomic<uint64_t>, 23> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Named views over metrics owned elsewhere; renders the STATS text.
/// Register* calls must finish before concurrent RenderText begins (the
/// server registers everything in its constructor).
class MetricsRegistry {
 public:
  void RegisterCounter(const std::string& name, const Counter* counter);
  void RegisterGauge(const std::string& name, const Gauge* gauge);
  void RegisterHistogram(const std::string& name,
                         const LatencyHistogram* histogram);

  /// Stable text snapshot, one metric per line:
  ///   counter <name> <value>
  ///   gauge <name> <value> max <max>
  ///   hist <name> count <n> sum_us <s> p50_us <a> p95_us <b> p99_us <c>
  std::string RenderText() const;

 private:
  std::vector<std::pair<std::string, const Counter*>> counters_;
  std::vector<std::pair<std::string, const Gauge*>> gauges_;
  std::vector<std::pair<std::string, const LatencyHistogram*>> histograms_;
};

/// The service's metric set (ISSUE: accept/queue/serve histograms, queue
/// depth, rejects, deadline expiries, certified ratio). Owned by the
/// server; exported through `registry`.
struct ServiceMetrics {
  ServiceMetrics();

  Counter connections_opened;
  Counter connections_closed;
  Counter requests_accepted;        ///< admitted into the bounded queue
  Counter requests_rejected_overload;
  Counter requests_malformed;
  Counter queries_ok;
  Counter queries_error;
  Counter queries_certified;    ///< unfiltered ok queries whose proof finished
  Counter queries_uncertified;  ///< unfiltered ok queries, proof cut short
  Counter queries_halo_truncated;  ///< stopped at a shard's halo boundary
  /// Filtered (label-constrained) traffic is accounted separately so the
  /// headline certified_ratio keeps describing the unfiltered workload:
  /// a selective predicate changes the certification economics (the search
  /// must find k MATCHING nodes), and mixing the two would make the ratio
  /// swing with traffic mix rather than serving health.
  Counter filtered_queries;      ///< ok queries carrying a predicate
  Counter filtered_certified;
  Counter filtered_uncertified;
  Counter cache_hits;               ///< answered from the certified cache
  Counter cache_misses;             ///< ran the search (cache enabled)
  Counter subgraph_hits;    ///< searches resumed from a warm subgraph
  Counter subgraph_misses;  ///< searches expanded from scratch (cache on)
  Counter deadline_expiries;
  Counter stats_requests;
  Gauge queue_depth;
  Gauge active_connections;
  LatencyHistogram queue_wait_us;   ///< dequeue time - accept time
  LatencyHistogram serve_us;        ///< engine time inside the worker
  LatencyHistogram total_us;        ///< accept time -> response enqueued
  /// Per-predicate-type serve latency (filtered queries also record into
  /// serve_us; these break the same samples down by predicate type).
  LatencyHistogram filtered_eq_us;
  LatencyHistogram filtered_contain_us;
  LatencyHistogram filtered_overlap_us;

  MetricsRegistry registry;
};

}  // namespace flos

#endif  // FLOS_SERVICE_METRICS_H_
