// Generic frame-serving front-end shared by the query server and the shard
// router.
//
// FrameService owns the network machinery of a length-prefixed-protocol
// endpoint: one epoll IO thread holding every socket (accept, frame
// reassembly, all writes), `num_workers` worker threads, and the BOUNDED
// admission queue between them — when the queue is full, the IO thread
// answers `overloaded` immediately instead of queuing, so queue depth (and
// with it tail latency) stays capped no matter the offered load.
//
// What a frame MEANS is delegated to a FrameHandler: ServiceServer runs
// QUERY frames on leased FLoS engines; ShardRouter forwards them to the
// owning shard process. QUERY and STATS frames ride the worker queue
// (STATS may gather remote state — the router fans out to its backends);
// SHUTDOWN and malformed frames are answered on the IO thread.

#ifndef FLOS_SERVICE_FRAME_SERVICE_H_
#define FLOS_SERVICE_FRAME_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/metrics.h"
#include "service/net_io.h"
#include "service/protocol.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace flos {

/// Network-side configuration of a frame endpoint (the meaning-side knobs —
/// max k, cache size, shard maps — live with the handler's owner).
struct FrameServiceOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with FrameService::port().
  uint16_t port = 0;
  /// Worker threads draining the admission queue.
  int num_workers = 4;
  /// Admission-control cap: frames waiting for a worker. Beyond this the
  /// IO thread answers `overloaded` without queuing.
  size_t max_queue_depth = 256;
  /// Frames larger than this are a protocol violation (connection closed).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Whether a SHUTDOWN frame from a client unblocks WaitForShutdown.
  bool allow_remote_shutdown = true;
};

/// Gives meaning to admitted frames. Implementations must stay alive for
/// the FrameService's lifetime and be callable from its worker threads.
class FrameHandler {
 public:
  /// Per-worker-thread state (an engine lease; the router's backend
  /// connections). Created on the worker thread itself, destroyed there.
  struct WorkerState {
    virtual ~WorkerState() = default;
  };

  virtual ~FrameHandler() = default;

  /// Called once per worker thread before it serves. Returning nullptr
  /// aborts that worker (e.g. the session pool was already shut down).
  virtual std::unique_ptr<WorkerState> CreateWorkerState() = 0;

  /// Serves one admitted QUERY payload. `dequeue_time` is the instant the
  /// worker picked the frame up — the anchor for relative deadlines.
  virtual QueryResponse HandleQuery(
      WorkerState* state, const std::string& payload,
      std::chrono::steady_clock::time_point dequeue_time) = 0;

  /// Serves one admitted STATS frame.
  virtual QueryResponse HandleStats(WorkerState* state) = 0;
};

/// The transport endpoint. Start() spawns the threads; Shutdown() (or the
/// destructor) joins them. `handler` and `metrics` must outlive the
/// service; the service records the transport-side metrics (connections,
/// admissions, queue depth/wait, total latency, malformed frames) and
/// leaves the handler-side counters to the handler.
class FrameService {
 public:
  FrameService(FrameServiceOptions options, FrameHandler* handler,
               ServiceMetrics* metrics);
  ~FrameService();

  FrameService(const FrameService&) = delete;
  FrameService& operator=(const FrameService&) = delete;

  /// Binds, listens, and spawns the IO + worker threads.
  Status Start();

  /// Port actually bound (valid after Start; resolves ephemeral binds).
  uint16_t port() const { return port_; }

  /// Blocks until a client sends SHUTDOWN or Shutdown() is called.
  void WaitForShutdown() FLOS_EXCLUDES(shutdown_mu_);

  /// Stops accepting, drains threads, closes every connection. Idempotent;
  /// safe to call whether or not Start succeeded. Callers whose worker
  /// state blocks on an external resource (the engine session pool) must
  /// release that resource first so the worker join can finish.
  void Shutdown() FLOS_EXCLUDES(shutdown_mu_, queue_mu_);

 private:
  /// Per-connection state. The IO thread owns the socket and the read
  /// side; workers only append to `outbox` (under `out_mu`) and signal the
  /// wake fd. Held by shared_ptr so a worker finishing after a disconnect
  /// writes into a harmlessly orphaned buffer instead of a dangling one.
  struct Connection {
    UniqueFd fd;
    std::string inbuf;        // IO thread only
    Mutex out_mu;
    std::string outbox FLOS_GUARDED_BY(out_mu);
    bool epoll_out = false;   // IO thread only: EPOLLOUT currently armed
  };

  /// One admitted frame waiting for a worker.
  struct PendingFrame {
    std::shared_ptr<Connection> conn;
    MessageType type = MessageType::kQuery;
    std::string payload;
    std::chrono::steady_clock::time_point accept_time;
  };

  void IoLoop();
  void WorkerLoop();

  void AcceptAll();
  /// Reads, reassembles, and dispatches frames; false = close connection.
  bool HandleReadable(const std::shared_ptr<Connection>& conn);
  /// Dispatches one complete frame payload; false = close connection.
  bool HandleFrame(const std::shared_ptr<Connection>& conn,
                   std::string payload);
  /// Admission control for QUERY/STATS frames headed to the workers.
  void AdmitFrame(const std::shared_ptr<Connection>& conn, MessageType type,
                  std::string payload) FLOS_EXCLUDES(queue_mu_);

  /// Encodes `response` onto the connection's outbox. `from_io_thread`
  /// lets the IO thread flush immediately instead of signaling itself.
  void EnqueueResponse(const std::shared_ptr<Connection>& conn,
                       const QueryResponse& response, bool from_io_thread);
  /// Writes as much pending outbox as the kernel takes; arms/disarms
  /// EPOLLOUT accordingly. IO thread only. False = connection broken.
  bool FlushOutbox(const std::shared_ptr<Connection>& conn);
  void CloseConnection(int fd);

  FrameServiceOptions options_;
  FrameHandler* handler_;
  ServiceMetrics* metrics_;

  UniqueFd listen_fd_;
  uint16_t port_ = 0;
  std::unique_ptr<Epoll> epoll_;
  std::unique_ptr<WakeFd> wake_;

  // IO-thread-only connection table.
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;

  // Bounded request queue (admission control).
  Mutex queue_mu_;
  CondVar queue_cv_;
  std::deque<PendingFrame> queue_ FLOS_GUARDED_BY(queue_mu_);

  std::atomic<bool> stop_{false};
  bool started_ = false;  // Start/Shutdown controlling thread only
  std::thread io_thread_;
  std::vector<std::thread> workers_;

  // WaitForShutdown plumbing.
  Mutex shutdown_mu_;
  CondVar shutdown_cv_;
  bool shutdown_requested_ FLOS_GUARDED_BY(shutdown_mu_) = false;
};

}  // namespace flos

#endif  // FLOS_SERVICE_FRAME_SERVICE_H_
