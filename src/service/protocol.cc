#include "service/protocol.h"

#include <cstring>

namespace flos {

namespace {

// Little-endian primitive writers. memcpy of the value bytes is correct on
// little-endian targets and compiles to single stores; big-endian hosts
// would need byte swaps here (the only place the wire order is spelled
// out).
void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutF64(std::string* out, double v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Bounds-checked little-endian reader over a payload.
class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  bool Read(void* out, size_t n) {
    if (pos_ + n > data_.size()) return false;
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  bool ReadU8(uint8_t* v) { return Read(v, sizeof(*v)); }
  bool ReadU16(uint16_t* v) { return Read(v, sizeof(*v)); }
  bool ReadU32(uint32_t* v) { return Read(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return Read(v, sizeof(*v)); }
  bool ReadF64(double* v) { return Read(v, sizeof(*v)); }
  bool ReadString(size_t n, std::string* v) {
    if (pos_ + n > data_.size()) return false;
    v->assign(data_, pos_, n);
    pos_ += n;
    return true;
  }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

void AppendFrameHeader(std::string* out, size_t payload_start) {
  const size_t payload = out->size() - payload_start;
  const uint32_t len = static_cast<uint32_t>(payload);
  std::memcpy(out->data() + payload_start - kFrameHeaderBytes, &len,
              sizeof(len));
}

/// Reserves the length slot, returns the payload start offset.
size_t BeginFrame(std::string* out) {
  out->append(kFrameHeaderBytes, '\0');
  return out->size();
}

bool ValidMeasure(uint8_t m) {
  return m <= static_cast<uint8_t>(Measure::kRwr);
}

}  // namespace

void EncodeQueryRequest(const QueryRequest& request, std::string* out) {
  const size_t start = BeginFrame(out);
  PutU8(out, static_cast<uint8_t>(MessageType::kQuery));
  PutU8(out, static_cast<uint8_t>(request.measure));
  PutU8(out, kProtocolVersion);
  PutU8(out, static_cast<uint8_t>(request.predicate.type()));
  PutU32(out, request.k);
  PutU32(out, request.flags);
  PutU32(out, request.tht_length);
  PutU64(out, request.query_node);
  PutU64(out, request.deadline_us);
  PutF64(out, request.c);
  if (!request.predicate.empty()) {
    const auto labels = request.predicate.labels();
    PutU32(out, static_cast<uint32_t>(labels.size()));
    for (const LabelId l : labels) PutU32(out, l);
  }
  AppendFrameHeader(out, start);
}

void EncodeStatsRequest(std::string* out) {
  const size_t start = BeginFrame(out);
  PutU8(out, static_cast<uint8_t>(MessageType::kStats));
  AppendFrameHeader(out, start);
}

void EncodeShutdownRequest(std::string* out) {
  const size_t start = BeginFrame(out);
  PutU8(out, static_cast<uint8_t>(MessageType::kShutdown));
  AppendFrameHeader(out, start);
}

void EncodeResponse(const QueryResponse& response, std::string* out) {
  const size_t start = BeginFrame(out);
  PutU8(out, static_cast<uint8_t>(response.type));
  PutU8(out, static_cast<uint8_t>(response.status));
  PutU8(out, response.certified ? 1 : 0);
  // Flags: bit0 = cache hit, bit1 = halo-truncated, bit2 = warm subgraph.
  PutU8(out, static_cast<uint8_t>((response.cache_hit ? 0x01 : 0) |
                                  (response.halo_truncated ? 0x02 : 0) |
                                  (response.subgraph_hit ? 0x04 : 0)));
  PutU32(out, static_cast<uint32_t>(response.topk.size()));
  PutU64(out, response.visited);
  PutU64(out, response.wall_us);
  for (const ResponseEntry& e : response.topk) {
    PutU64(out, e.node);
    PutF64(out, e.score);
    PutF64(out, e.lower);
    PutF64(out, e.upper);
  }
  PutU32(out, static_cast<uint32_t>(response.message.size()));
  out->append(response.message);
  AppendFrameHeader(out, start);
}

Result<MessageType> PeekMessageType(const std::string& payload) {
  if (payload.empty()) {
    return Status::InvalidArgument("empty frame payload");
  }
  const uint8_t type = static_cast<uint8_t>(payload[0]);
  switch (type) {
    case static_cast<uint8_t>(MessageType::kQuery):
    case static_cast<uint8_t>(MessageType::kStats):
    case static_cast<uint8_t>(MessageType::kShutdown):
      return static_cast<MessageType>(type);
    default:
      return Status::InvalidArgument("unknown message type " +
                                     std::to_string(type));
  }
}

Result<QueryRequest> DecodeQueryRequest(const std::string& payload) {
  Reader r(payload);
  uint8_t type = 0;
  uint8_t measure = 0;
  uint8_t version = 0;
  uint8_t predicate_type = 0;
  QueryRequest req;
  uint64_t node = 0;
  if (!r.ReadU8(&type) || !r.ReadU8(&measure) || !r.ReadU8(&version) ||
      !r.ReadU8(&predicate_type) || !r.ReadU32(&req.k) ||
      !r.ReadU32(&req.flags) || !r.ReadU32(&req.tht_length) ||
      !r.ReadU64(&node) || !r.ReadU64(&req.deadline_us) ||
      !r.ReadF64(&req.c)) {
    return Status::InvalidArgument("truncated QUERY payload");
  }
  if (type != static_cast<uint8_t>(MessageType::kQuery)) {
    return Status::InvalidArgument("payload is not a QUERY frame");
  }
  // Version-skew guard: the v1 layout carried a zero u16 where version +
  // predicate_type now live, so old frames land here (version 0) and are
  // refused cleanly instead of misparsed.
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        "protocol version mismatch: frame speaks version " +
        std::to_string(version) + ", this endpoint speaks version " +
        std::to_string(kProtocolVersion));
  }
  if (!ValidMeasure(measure)) {
    return Status::InvalidArgument("unknown measure id " +
                                   std::to_string(measure));
  }
  if (predicate_type > static_cast<uint8_t>(PredicateType::kOverlap)) {
    return Status::InvalidArgument("unknown predicate type " +
                                   std::to_string(predicate_type));
  }
  if (predicate_type != static_cast<uint8_t>(PredicateType::kNone)) {
    uint32_t label_count = 0;
    if (!r.ReadU32(&label_count)) {
      return Status::InvalidArgument("truncated QUERY predicate");
    }
    if (label_count > kMaxPredicateLabels) {
      return Status::InvalidArgument(
          "predicate label count " + std::to_string(label_count) +
          " exceeds the per-frame cap " +
          std::to_string(kMaxPredicateLabels));
    }
    if (label_count > r.remaining() / sizeof(uint32_t)) {
      return Status::InvalidArgument(
          "predicate label count exceeds payload");
    }
    std::vector<LabelId> labels(label_count);
    for (LabelId& l : labels) {
      if (!r.ReadU32(&l)) {
        return Status::InvalidArgument("truncated QUERY predicate labels");
      }
    }
    FLOS_ASSIGN_OR_RETURN(
        req.predicate,
        LabelPredicate::Make(static_cast<PredicateType>(predicate_type),
                             std::move(labels)));
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes after QUERY payload");
  }
  if (node >= kInvalidNode) {
    return Status::OutOfRange("query node exceeds the node id range");
  }
  req.measure = static_cast<Measure>(measure);
  req.query_node = static_cast<NodeId>(node);
  return req;
}

Result<QueryResponse> DecodeResponse(const std::string& payload) {
  Reader r(payload);
  uint8_t type = 0;
  uint8_t status = 0;
  uint8_t certified = 0;
  uint8_t flags = 0;
  uint32_t count = 0;
  QueryResponse resp;
  if (!r.ReadU8(&type) || !r.ReadU8(&status) || !r.ReadU8(&certified) ||
      !r.ReadU8(&flags) || !r.ReadU32(&count) ||
      !r.ReadU64(&resp.visited) || !r.ReadU64(&resp.wall_us)) {
    return Status::InvalidArgument("truncated response payload");
  }
  const auto peek = PeekMessageType(payload);
  if (!peek.ok()) return peek.status();
  resp.type = *peek;
  if (status > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::InvalidArgument("unknown status code in response");
  }
  resp.status = static_cast<StatusCode>(status);
  resp.certified = certified != 0;
  resp.cache_hit = (flags & 0x01) != 0;
  resp.halo_truncated = (flags & 0x02) != 0;
  resp.subgraph_hit = (flags & 0x04) != 0;
  // 32 bytes per row; the cap protects against a hostile length field.
  if (count > r.remaining() / 32) {
    return Status::InvalidArgument("response row count exceeds payload");
  }
  resp.topk.resize(count);
  for (ResponseEntry& e : resp.topk) {
    if (!r.ReadU64(&e.node) || !r.ReadF64(&e.score) ||
        !r.ReadF64(&e.lower) || !r.ReadF64(&e.upper)) {
      return Status::InvalidArgument("truncated response rows");
    }
  }
  uint32_t msg_len = 0;
  if (!r.ReadU32(&msg_len) || msg_len != r.remaining() ||
      !r.ReadString(msg_len, &resp.message)) {
    return Status::InvalidArgument("malformed response message field");
  }
  return resp;
}

QueryResponse MakeErrorResponse(MessageType type, const Status& status) {
  QueryResponse resp;
  resp.type = type;
  resp.status = status.code();
  resp.certified = false;
  resp.message = status.message();
  return resp;
}

}  // namespace flos
