// Wire protocol of the FLoS k-NN query service.
//
// Framing: every message is a little-endian `uint32 payload_length`
// followed by exactly that many payload bytes. Payloads start with a
// one-byte message type. Frames larger than a server-configured cap are a
// protocol violation and close the connection.
//
// Request payload layouts (all integers little-endian, doubles IEEE-754
// little-endian via bit pattern):
//
//   QUERY (type 1, protocol version 2):
//     u8 type  u8 measure  u8 version  u8 predicate_type
//     u32 k  u32 flags  u32 tht_length
//     u64 query_node  u64 deadline_us  f64 c
//     [ if predicate_type != 0:  u32 label_count  label_count * u32 ]
//   STATS (type 2), SHUTDOWN (type 3): u8 type only (versionless: a
//   single fixed byte cannot skew across versions).
//
// Versioning: byte 2 of a QUERY payload carries kProtocolVersion. The
// pre-predicate layout (version 1) sent a zero `u16 reserved` there, so a
// v1 frame decodes as version 0 and is rejected with a clean
// "protocol version mismatch" error response instead of being misparsed;
// likewise any future layout change bumps the byte and old servers reject
// rather than misread. `predicate_type` is a PredicateType discriminant
// (core/predicate.h); non-zero values append the sorted label-id set as a
// trailing array, and servers answer the top-k among matching nodes only.
//
// Response payload (one layout for every request type):
//     u8 type (echoes the request)  u8 status (StatusCode)  u8 certified
//     u8 flags (bit0 = answered from the certified-result cache; bit1 =
//     halo-truncated: the search ran out of expandable frontier at a shard
//     replica's halo before certifying, so certified is 0 but the bounds
//     are still rigorous; bit2 = warm-subgraph hit: the search resumed
//     from a cached expanded subgraph instead of expanding from scratch —
//     the answer was still computed and certified by this run; other bits
//     reserved, sent as 0)
//     u32 topk_count  u64 visited  u64 wall_us
//     topk_count * { u64 node  f64 score  f64 lower  f64 upper }
//     u32 message_length  message bytes (error text, or STATS text)
//
// `deadline_us` is RELATIVE to the instant the server dequeues the frame
// (0 = no deadline). A deadline expiring mid-search is NOT an error: the
// response carries status ok, `certified = 0`, and the current top-k with
// its still-rigorous lower/upper bounds — the paper's anytime guarantee
// (monotone no-local-optimum bounds, Theorems 2-5) made visible on the
// wire. `status = overloaded` means admission control rejected the request
// before any work; back off and retry.
//
// Pipelining: a client may have several QUERY frames in flight on one
// connection, but responses complete in whatever order the workers finish
// and carry no request ids — clients that pipeline must treat responses as
// unordered. ServiceClient (client.h) keeps exactly one request in flight.

#ifndef FLOS_SERVICE_PROTOCOL_H_
#define FLOS_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/predicate.h"
#include "graph/graph.h"
#include "measures/measure.h"
#include "util/status.h"

namespace flos {

/// Message type tags (first payload byte).
enum class MessageType : uint8_t {
  kQuery = 1,
  kStats = 2,
  kShutdown = 3,
};

/// Wire-format generation of the QUERY layout. Bumped on every layout
/// change; decoders reject any other value (see the file comment).
inline constexpr uint8_t kProtocolVersion = 2;

/// Hard cap on predicate labels per QUERY frame — far above any sane
/// predicate, low enough that a hostile length field cannot balloon the
/// decode.
inline constexpr uint32_t kMaxPredicateLabels = 1024;

/// A top-k proximity query as it travels over the wire.
struct QueryRequest {
  Measure measure = Measure::kPhp;
  NodeId query_node = 0;
  uint32_t k = 10;
  /// Microseconds the server may spend before returning its current
  /// anytime answer; 0 = run to full certification.
  uint64_t deadline_us = 0;
  /// Reserved for future use (carried verbatim; servers ignore it today).
  uint32_t flags = 0;
  uint32_t tht_length = 10;
  double c = 0.5;
  /// Optional label constraint; kNone (the default) asks for the classic
  /// unfiltered top-k. Serialized as the predicate_type byte plus the
  /// trailing label-id array.
  LabelPredicate predicate;
};

/// One certified result row.
struct ResponseEntry {
  uint64_t node = 0;
  double score = 0;
  double lower = 0;
  double upper = 0;
};

/// A response frame in decoded form (shared by QUERY/STATS/SHUTDOWN).
struct QueryResponse {
  MessageType type = MessageType::kQuery;
  StatusCode status = StatusCode::kOk;
  /// True iff the top-k is exact (bounds certified it before any deadline).
  bool certified = false;
  /// True iff the server answered from its certified-result cache instead
  /// of running the search (implies certified).
  bool cache_hit = false;
  /// True iff a shard server stopped the search at its halo boundary
  /// before certifying (FlosStats::frontier_clipped on the wire; implies
  /// !certified). The bounds returned are still rigorous; re-asking a
  /// server holding the whole graph — or a partition with a larger halo —
  /// can certify the query.
  bool halo_truncated = false;
  /// True iff the search resumed from the server's warm-subgraph cache
  /// (core/subgraph_cache.h) instead of expanding from scratch. Unlike
  /// cache_hit the answer was still computed — and certified — by this
  /// run; the flag only explains why the expansion phase was cheap.
  bool subgraph_hit = false;
  uint64_t visited = 0;
  uint64_t wall_us = 0;
  std::vector<ResponseEntry> topk;
  /// Error text when status != ok; the metrics dump for STATS.
  std::string message;
};

/// Frame sizing shared by server and client.
inline constexpr size_t kFrameHeaderBytes = 4;
inline constexpr size_t kDefaultMaxFrameBytes = 1 << 20;

/// Serializes a full frame (header + payload) onto `*out`.
void EncodeQueryRequest(const QueryRequest& request, std::string* out);
void EncodeStatsRequest(std::string* out);
void EncodeShutdownRequest(std::string* out);
void EncodeResponse(const QueryResponse& response, std::string* out);

/// Parses one request payload (the bytes after the length header).
/// `payload` must be a complete frame payload.
Result<QueryRequest> DecodeQueryRequest(const std::string& payload);

/// Reads the type byte of a payload (kInvalidArgument on empty/unknown).
Result<MessageType> PeekMessageType(const std::string& payload);

/// Parses a response payload.
Result<QueryResponse> DecodeResponse(const std::string& payload);

/// Convenience for one-line error responses.
QueryResponse MakeErrorResponse(MessageType type, const Status& status);

}  // namespace flos

#endif  // FLOS_SERVICE_PROTOCOL_H_
