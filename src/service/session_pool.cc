#include "service/session_pool.h"

#include <algorithm>
#include <utility>

namespace flos {

EngineSessionPool::EngineSessionPool(const Graph* graph, size_t capacity,
                                     QueryCache* query_cache,
                                     SubgraphCache* subgraph_cache)
    : EngineSessionPool(
          [graph] { return std::make_unique<InMemoryAccessor>(graph); },
          capacity, query_cache, subgraph_cache) {}

EngineSessionPool::EngineSessionPool(const AccessorFactory& factory,
                                     size_t capacity,
                                     QueryCache* query_cache,
                                     SubgraphCache* subgraph_cache) {
  const size_t n = std::max<size_t>(1, capacity);
  sessions_.reserve(n);
  free_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    sessions_.push_back(std::make_unique<Session>(factory()));
    sessions_.back()->engine.set_query_cache(query_cache);
    sessions_.back()->engine.set_subgraph_cache(subgraph_cache);
    free_.push_back(i);
  }
}

EngineSessionPool::Lease EngineSessionPool::Acquire() {
  MutexLock lock(mu_);
  while (!shutdown_ && free_.empty()) available_.Wait(mu_);
  if (shutdown_) return Lease();
  const size_t index = free_.back();
  free_.pop_back();
  return Lease(this, index);
}

void EngineSessionPool::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  available_.NotifyAll();
}

void EngineSessionPool::Return(size_t index) {
  {
    MutexLock lock(mu_);
    free_.push_back(index);
  }
  available_.NotifyOne();
}

EngineSessionPool::Lease& EngineSessionPool::Lease::operator=(
    Lease&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    index_ = other.index_;
    other.pool_ = nullptr;
  }
  return *this;
}

FlosEngine* EngineSessionPool::Lease::engine() const {
  return pool_ == nullptr ? nullptr
                          : &pool_->sessions_[index_]->engine;
}

void EngineSessionPool::Lease::Release() {
  if (pool_ != nullptr) {
    pool_->Return(index_);
    pool_ = nullptr;
  }
}

}  // namespace flos
