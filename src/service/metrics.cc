#include "service/metrics.h"

#include <algorithm>
#include <cstdio>

namespace flos {

void Gauge::Set(int64_t v) {
  value_.store(v, std::memory_order_relaxed);
  BumpMax(v);
}

void Gauge::Add(int64_t delta) {
  const int64_t now =
      value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  BumpMax(now);
}

void Gauge::BumpMax(int64_t v) {
  int64_t cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v,
                                                std::memory_order_relaxed)) {
  }
}

const std::array<uint64_t, 22>& LatencyHistogram::BucketBounds() {
  // 1-2-5 ladder: 1us .. 10s. The overflow bucket (index 22) catches the
  // rest.
  static const std::array<uint64_t, 22> kBounds = {
      1,      2,      5,      10,      20,      50,      100,    200,
      500,    1000,   2000,   5000,    10000,   20000,   50000,  100000,
      200000, 500000, 1000000, 2000000, 5000000, 10000000};
  return kBounds;
}

void LatencyHistogram::Record(uint64_t micros) {
  const auto& bounds = BucketBounds();
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), micros);
  const size_t idx = static_cast<size_t>(it - bounds.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(micros, std::memory_order_relaxed);
}

uint64_t LatencyHistogram::PercentileUpperBound(double p) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the p-quantile sample (1-based, ceil).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(p * static_cast<double>(total) + 0.999999));
  const auto& bounds = BucketBounds();
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Overflow bucket has no upper bound; report the largest ladder
      // step so dashboards stay finite.
      return i < bounds.size() ? bounds[i] : bounds.back();
    }
  }
  return bounds.back();
}

std::vector<uint64_t> LatencyHistogram::Snapshot() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void MetricsRegistry::RegisterCounter(const std::string& name,
                                      const Counter* counter) {
  counters_.emplace_back(name, counter);
}

void MetricsRegistry::RegisterGauge(const std::string& name,
                                    const Gauge* gauge) {
  gauges_.emplace_back(name, gauge);
}

void MetricsRegistry::RegisterHistogram(const std::string& name,
                                        const LatencyHistogram* histogram) {
  histograms_.emplace_back(name, histogram);
}

std::string MetricsRegistry::RenderText() const {
  std::string out;
  char line[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(line, sizeof(line), "counter %s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += line;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(line, sizeof(line), "gauge %s %lld max %lld\n",
                  name.c_str(), static_cast<long long>(g->value()),
                  static_cast<long long>(g->max_value()));
    out += line;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(
        line, sizeof(line),
        "hist %s count %llu sum_us %llu p50_us %llu p95_us %llu "
        "p99_us %llu\n",
        name.c_str(), static_cast<unsigned long long>(h->count()),
        static_cast<unsigned long long>(h->sum_micros()),
        static_cast<unsigned long long>(h->PercentileUpperBound(0.50)),
        static_cast<unsigned long long>(h->PercentileUpperBound(0.95)),
        static_cast<unsigned long long>(h->PercentileUpperBound(0.99)));
    out += line;
  }
  return out;
}

ServiceMetrics::ServiceMetrics() {
  registry.RegisterCounter("connections_opened", &connections_opened);
  registry.RegisterCounter("connections_closed", &connections_closed);
  registry.RegisterCounter("requests_accepted", &requests_accepted);
  registry.RegisterCounter("requests_rejected_overload",
                           &requests_rejected_overload);
  registry.RegisterCounter("requests_malformed", &requests_malformed);
  registry.RegisterCounter("queries_ok", &queries_ok);
  registry.RegisterCounter("queries_error", &queries_error);
  registry.RegisterCounter("queries_certified", &queries_certified);
  registry.RegisterCounter("queries_uncertified", &queries_uncertified);
  registry.RegisterCounter("queries_halo_truncated", &queries_halo_truncated);
  registry.RegisterCounter("filtered_queries", &filtered_queries);
  registry.RegisterCounter("filtered_certified", &filtered_certified);
  registry.RegisterCounter("filtered_uncertified", &filtered_uncertified);
  registry.RegisterCounter("cache_hits", &cache_hits);
  registry.RegisterCounter("cache_misses", &cache_misses);
  registry.RegisterCounter("subgraph_hits", &subgraph_hits);
  registry.RegisterCounter("subgraph_misses", &subgraph_misses);
  registry.RegisterCounter("deadline_expiries", &deadline_expiries);
  registry.RegisterCounter("stats_requests", &stats_requests);
  registry.RegisterGauge("queue_depth", &queue_depth);
  registry.RegisterGauge("active_connections", &active_connections);
  registry.RegisterHistogram("queue_wait_us", &queue_wait_us);
  registry.RegisterHistogram("serve_us", &serve_us);
  registry.RegisterHistogram("total_us", &total_us);
  registry.RegisterHistogram("filtered_eq_us", &filtered_eq_us);
  registry.RegisterHistogram("filtered_contain_us", &filtered_contain_us);
  registry.RegisterHistogram("filtered_overlap_us", &filtered_overlap_us);
}

}  // namespace flos
