// Pool of reusable FLoS query sessions for the serving layer.
//
// A "session" is the pairing the GraphAccessor thread-safety contract
// requires for concurrent serving: one InMemoryAccessor plus one
// FlosEngine, both private to whichever thread holds the lease, over one
// shared immutable Graph. Engines keep their workspaces warm across
// queries (zero steady-state allocation, PR 1), so pooling them — instead
// of constructing per request — is what makes high-QPS serving cheap.
//
// Acquire blocks until a session frees up (or the pool is shut down), so
// the number of concurrently running queries can never exceed the pool
// capacity; the server sizes the pool to its worker count, making Acquire
// effectively non-blocking there.

#ifndef FLOS_SERVICE_SESSION_POOL_H_
#define FLOS_SERVICE_SESSION_POOL_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/flos_engine.h"
#include "graph/accessor.h"
#include "graph/graph.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace flos {

class QueryCache;
class SubgraphCache;

/// Builds one accessor per session slot. Called `capacity` times at pool
/// construction; each returned accessor becomes private to one session.
using AccessorFactory = std::function<std::unique_ptr<GraphAccessor>()>;

/// Fixed-capacity pool of {accessor, engine} sessions over one graph.
class EngineSessionPool {
 public:
  /// One warm session per slot. `graph` must stay immutable and outlive
  /// the pool. When `query_cache` is non-null every engine shares it
  /// (QueryCache is thread-safe), so a result certified on one session is
  /// a warm hit on all of them; likewise `subgraph_cache` (the warm
  /// expanded-subgraph tier, core/subgraph_cache.h) is shared by every
  /// engine when non-null. Both caches must outlive the pool.
  EngineSessionPool(const Graph* graph, size_t capacity,
                    QueryCache* query_cache = nullptr,
                    SubgraphCache* subgraph_cache = nullptr);

  /// Same pool, but each session's accessor comes from `factory` — the
  /// seam that lets a shard server pool engines over ShardAccessors (global
  /// degrees, external-degree bound) instead of plain InMemoryAccessors.
  /// Whatever the accessors reference must outlive the pool.
  EngineSessionPool(const AccessorFactory& factory, size_t capacity,
                    QueryCache* query_cache = nullptr,
                    SubgraphCache* subgraph_cache = nullptr);

  EngineSessionPool(const EngineSessionPool&) = delete;
  EngineSessionPool& operator=(const EngineSessionPool&) = delete;

  class Lease;

  /// Blocks until a session is free; returns an empty lease (engine() ==
  /// nullptr) once Shutdown has been called.
  Lease Acquire() FLOS_EXCLUDES(mu_);

  /// Wakes every blocked Acquire with an empty lease and makes future
  /// Acquires return empty immediately. Outstanding leases stay valid
  /// until released.
  void Shutdown() FLOS_EXCLUDES(mu_);

  size_t capacity() const { return sessions_.size(); }

  /// RAII session lease; returns the session to the pool on destruction.
  class Lease {
   public:
    Lease() = default;
    ~Lease() { Release(); }
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), index_(other.index_) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    /// nullptr iff the lease is empty (pool shut down).
    FlosEngine* engine() const;

    void Release();

   private:
    friend class EngineSessionPool;
    Lease(EngineSessionPool* pool, size_t index)
        : pool_(pool), index_(index) {}
    EngineSessionPool* pool_ = nullptr;
    size_t index_ = 0;
  };

 private:
  struct Session {
    explicit Session(std::unique_ptr<GraphAccessor> a)
        : accessor(std::move(a)), engine(accessor.get()) {}
    std::unique_ptr<GraphAccessor> accessor;
    FlosEngine engine;
  };

  void Return(size_t index) FLOS_EXCLUDES(mu_);

  std::vector<std::unique_ptr<Session>> sessions_;
  Mutex mu_;
  CondVar available_;
  /// Indexes of idle sessions.
  std::vector<size_t> free_ FLOS_GUARDED_BY(mu_);
  bool shutdown_ FLOS_GUARDED_BY(mu_) = false;
};

}  // namespace flos

#endif  // FLOS_SERVICE_SESSION_POOL_H_
