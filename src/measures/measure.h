// Random-walk proximity measures and their shared vocabulary.
//
// The five measures from the paper (Table 2):
//
//   PHP  penalized hitting probability     r_i = c * sum_j p_ij r_j, r_q = 1
//   EI   effective importance              degree-normalized RWR
//   DHT  discounted hitting time           r_i = 1 + (1-c) sum_j p_ij r_j
//   THT  L-truncated hitting time          L-step DP version of HT
//   RWR  random walk with restart          personalized PageRank at q
//
// PHP, EI and DHT are rank-equivalent (Theorem 2); RWR relates to PHP via
// RWR(i) = RWR(q)/w_q * w_i * PHP(i) (Theorem 6). PHP/EI have no local
// maximum, DHT/THT no local minimum, RWR has local maxima.

#ifndef FLOS_MEASURES_MEASURE_H_
#define FLOS_MEASURES_MEASURE_H_

#include <string>

namespace flos {

/// Proximity measure identifiers.
enum class Measure { kPhp, kEi, kDht, kTht, kRwr };

/// Whether larger or smaller scores mean "closer to the query".
enum class Direction { kMaximize, kMinimize };

/// Parameters shared by all measures.
struct MeasureParams {
  /// Decay factor (PHP, DHT) or restart probability (RWR, EI). The paper's
  /// experiments use 0.5 for all of them.
  double c = 0.5;
  /// Truncation length L for THT (the paper uses 10).
  int tht_length = 10;
};

/// Direction of `m`: kMaximize for PHP/EI/RWR, kMinimize for DHT/THT.
Direction MeasureDirection(Measure m);

/// True iff score `a` is strictly closer than score `b` under direction `d`.
inline bool IsCloser(Direction d, double a, double b) {
  return d == Direction::kMaximize ? a > b : a < b;
}

/// True iff the measure provably has no local optimum (Table 2); false for
/// RWR, which FLoS handles through its PHP relationship instead.
bool HasNoLocalOptimum(Measure m);

/// Short name, e.g. "PHP".
std::string MeasureName(Measure m);

}  // namespace flos

#endif  // FLOS_MEASURES_MEASURE_H_
