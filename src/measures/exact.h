// Exact (whole-graph) reference solvers for every proximity measure.
//
// Two families:
//  * iterative solvers that run Algorithm 7 over the full graph until the
//    update norm drops below a tolerance — these are the "GI" baselines'
//    computational core and the scalable ground truth;
//  * dense solvers that solve the defining linear system with LU — exact up
//    to floating point, used as ground truth on small test graphs.
//
// All functions return the full proximity vector indexed by node id.

#ifndef FLOS_MEASURES_EXACT_H_
#define FLOS_MEASURES_EXACT_H_

#include <vector>

#include "graph/graph.h"
#include "measures/measure.h"
#include "util/status.h"

namespace flos {

/// Iterative-solver configuration for the exact solvers.
struct ExactSolveOptions {
  double tolerance = 1e-10;
  uint32_t max_iterations = 100000;
};

/// PHP: r = c T r + e_q with T the transition matrix with row q zeroed.
/// r_q = 1 by construction.
Result<std::vector<double>> ExactPhp(const Graph& graph, NodeId query,
                                     double c,
                                     const ExactSolveOptions& options = {});

/// RWR (personalized PageRank): r = (1-c) P^T r + c e_q.
Result<std::vector<double>> ExactRwr(const Graph& graph, NodeId query,
                                     double c,
                                     const ExactSolveOptions& options = {});

/// EI: RWR divided by weighted degree. Nodes with degree 0 get 0.
Result<std::vector<double>> ExactEi(const Graph& graph, NodeId query, double c,
                                    const ExactSolveOptions& options = {});

/// DHT: r_i = 1 + (1-c) sum_j p_ij r_j for i != q, r_q = 0. Unreachable
/// nodes converge to the maximum 1/c.
Result<std::vector<double>> ExactDht(const Graph& graph, NodeId query,
                                     double c,
                                     const ExactSolveOptions& options = {});

/// THT: L-step dynamic program; nodes unreachable within L hops get L.
Result<std::vector<double>> ExactTht(const Graph& graph, NodeId query,
                                     int length);

/// Dispatches on `measure` with `params`.
Result<std::vector<double>> ExactMeasure(const Graph& graph, NodeId query,
                                         Measure measure,
                                         const MeasureParams& params,
                                         const ExactSolveOptions& options = {});

/// Dense LU ground truth for PHP (small graphs only; O(n^3)).
Result<std::vector<double>> DensePhp(const Graph& graph, NodeId query,
                                     double c);

/// Dense LU ground truth for RWR.
Result<std::vector<double>> DenseRwr(const Graph& graph, NodeId query,
                                     double c);

/// Dense LU ground truth for DHT.
Result<std::vector<double>> DenseDht(const Graph& graph, NodeId query,
                                     double c);

/// Indices of the top-k nodes (excluding `query`) under `direction`, ties
/// broken by smaller node id. Helper shared by tests and baselines.
std::vector<NodeId> TopKFromScores(const std::vector<double>& scores,
                                   NodeId query, int k, Direction direction);

}  // namespace flos

#endif  // FLOS_MEASURES_EXACT_H_
