#include "measures/transforms.h"

#include <string>

namespace flos {

Result<double> RwrScaleFromPhp(
    const Graph& graph, NodeId query, double c,
    const std::vector<double>& php_at_query_neighbors) {
  if (query >= graph.NumNodes()) {
    return Status::OutOfRange("query out of range");
  }
  const auto ids = graph.NeighborIds(query);
  const auto ws = graph.NeighborWeights(query);
  if (php_at_query_neighbors.size() != ids.size()) {
    return Status::InvalidArgument(
        "expected one PHP value per query neighbor, got " +
        std::to_string(php_at_query_neighbors.size()));
  }
  const double wq = graph.WeightedDegree(query);
  if (wq <= 0) {
    return Status::FailedPrecondition("query node has no edges");
  }
  double sum = 0;
  for (size_t e = 0; e < ids.size(); ++e) {
    sum += ws[e] / wq * php_at_query_neighbors[e];
  }
  const double denom = wq * (1.0 - (1.0 - c) * sum);
  if (denom <= 0) {
    return Status::Internal("non-positive denominator in RWR scale");
  }
  return c / denom;
}

}  // namespace flos
