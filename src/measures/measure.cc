#include "measures/measure.h"

namespace flos {

Direction MeasureDirection(Measure m) {
  switch (m) {
    case Measure::kPhp:
    case Measure::kEi:
    case Measure::kRwr:
      return Direction::kMaximize;
    case Measure::kDht:
    case Measure::kTht:
      return Direction::kMinimize;
  }
  return Direction::kMaximize;
}

bool HasNoLocalOptimum(Measure m) {
  switch (m) {
    case Measure::kPhp:
    case Measure::kEi:
    case Measure::kDht:
    case Measure::kTht:
      return true;
    case Measure::kRwr:
      return false;
  }
  return false;
}

std::string MeasureName(Measure m) {
  switch (m) {
    case Measure::kPhp:
      return "PHP";
    case Measure::kEi:
      return "EI";
    case Measure::kDht:
      return "DHT";
    case Measure::kTht:
      return "THT";
    case Measure::kRwr:
      return "RWR";
  }
  return "?";
}

}  // namespace flos
