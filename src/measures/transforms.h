// Ranking-equivalence transforms among measures (Theorems 2 and 6).
//
// With matching parameters (PHP decay 1-c vs. EI/RWR restart c vs. DHT decay
// c), the measures are connected by:
//
//   EI(i)  = K * PHP(i)            (same ranking)
//   RWR(i) = K * w_i * PHP(i)      (degree-weighted ranking)
//   DHT(i) = (1 - PHP(i)) / c      (reversed ranking, exact affine map)
//
// where K = RWR(q) / w_q depends only on the query. FLoS exploits these to
// run one bound engine (the PHP-form system) for four measures.

#ifndef FLOS_MEASURES_TRANSFORMS_H_
#define FLOS_MEASURES_TRANSFORMS_H_

#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace flos {

/// DHT score from a PHP score computed with decay (1 - c_dht):
/// DHT(i) = (1 - PHP(i)) / c_dht.
inline double DhtFromPhp(double php, double c_dht) {
  return (1.0 - php) / c_dht;
}

/// PHP score (decay 1 - c_dht) from a DHT score: PHP(i) = 1 - c_dht*DHT(i).
inline double PhpFromDht(double dht, double c_dht) {
  return 1.0 - c_dht * dht;
}

/// The query-dependent scale K = RWR(q)/w_q = EI(q) relating PHP (decay
/// 1-c) to EI and RWR (restart c):
///
///   K = c / (w_q * (1 - (1-c) * sum_j p_qj PHP(j)))
///
/// `php_at_query_neighbors` holds PHP(j) for each neighbor j of `query`, in
/// NeighborIds order. Derived in Theorem 6's proof.
Result<double> RwrScaleFromPhp(const Graph& graph, NodeId query, double c,
                               const std::vector<double>& php_at_query_neighbors);

}  // namespace flos

#endif  // FLOS_MEASURES_TRANSFORMS_H_
