#include "measures/exact.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "linalg/dense_matrix.h"
#include "linalg/lu.h"

namespace flos {

namespace {

Status ValidateQuery(const Graph& graph, NodeId query) {
  if (query >= graph.NumNodes()) {
    return Status::OutOfRange("query node " + std::to_string(query) +
                              " out of range");
  }
  return Status::OK();
}

Status ValidateC(double c) {
  if (!(c > 0) || !(c < 1)) {
    return Status::InvalidArgument("c must be in (0, 1)");
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<double>> ExactPhp(const Graph& graph, NodeId query,
                                     double c,
                                     const ExactSolveOptions& options) {
  FLOS_RETURN_IF_ERROR(ValidateQuery(graph, query));
  FLOS_RETURN_IF_ERROR(ValidateC(c));
  const uint64_t n = graph.NumNodes();
  std::vector<double> r(n, 0.0);
  std::vector<double> next(n, 0.0);
  r[query] = 1.0;
  for (uint32_t it = 0; it < options.max_iterations; ++it) {
    double delta = 0;
    for (uint64_t i = 0; i < n; ++i) {
      if (i == query) {
        next[i] = 1.0;
        continue;
      }
      const auto ids = graph.NeighborIds(static_cast<NodeId>(i));
      const auto ws = graph.NeighborWeights(static_cast<NodeId>(i));
      double sum = 0;
      for (size_t e = 0; e < ids.size(); ++e) sum += ws[e] * r[ids[e]];
      const double wi = graph.WeightedDegree(static_cast<NodeId>(i));
      next[i] = wi > 0 ? c * sum / wi : 0.0;
      delta = std::max(delta, std::abs(next[i] - r[i]));
    }
    r.swap(next);
    if (delta < options.tolerance) return r;
  }
  return Status::Internal("ExactPhp did not converge");
}

Result<std::vector<double>> ExactRwr(const Graph& graph, NodeId query,
                                     double c,
                                     const ExactSolveOptions& options) {
  FLOS_RETURN_IF_ERROR(ValidateQuery(graph, query));
  FLOS_RETURN_IF_ERROR(ValidateC(c));
  const uint64_t n = graph.NumNodes();
  std::vector<double> r(n, 0.0);
  std::vector<double> next(n, 0.0);
  r[query] = c;
  for (uint32_t it = 0; it < options.max_iterations; ++it) {
    double delta = 0;
    for (uint64_t i = 0; i < n; ++i) {
      const auto ids = graph.NeighborIds(static_cast<NodeId>(i));
      const auto ws = graph.NeighborWeights(static_cast<NodeId>(i));
      double sum = 0;
      for (size_t e = 0; e < ids.size(); ++e) {
        const double wj = graph.WeightedDegree(ids[e]);
        sum += ws[e] / wj * r[ids[e]];  // p_{j,i} r_j
      }
      next[i] = (1 - c) * sum + (i == query ? c : 0.0);
      delta = std::max(delta, std::abs(next[i] - r[i]));
    }
    r.swap(next);
    if (delta < options.tolerance) return r;
  }
  return Status::Internal("ExactRwr did not converge");
}

Result<std::vector<double>> ExactEi(const Graph& graph, NodeId query, double c,
                                    const ExactSolveOptions& options) {
  FLOS_ASSIGN_OR_RETURN(std::vector<double> r,
                        ExactRwr(graph, query, c, options));
  for (uint64_t i = 0; i < r.size(); ++i) {
    const double wi = graph.WeightedDegree(static_cast<NodeId>(i));
    r[i] = wi > 0 ? r[i] / wi : 0.0;
  }
  return r;
}

Result<std::vector<double>> ExactDht(const Graph& graph, NodeId query,
                                     double c,
                                     const ExactSolveOptions& options) {
  FLOS_RETURN_IF_ERROR(ValidateQuery(graph, query));
  FLOS_RETURN_IF_ERROR(ValidateC(c));
  const uint64_t n = graph.NumNodes();
  const double max_value = 1.0 / c;
  std::vector<double> r(n, 0.0);
  std::vector<double> next(n, 0.0);
  for (uint32_t it = 0; it < options.max_iterations; ++it) {
    double delta = 0;
    for (uint64_t i = 0; i < n; ++i) {
      if (i == query) {
        next[i] = 0.0;
        continue;
      }
      const auto ids = graph.NeighborIds(static_cast<NodeId>(i));
      if (ids.empty()) {
        // An isolated node never reaches q; DHT saturates at 1/c.
        next[i] = max_value;
        continue;
      }
      const auto ws = graph.NeighborWeights(static_cast<NodeId>(i));
      double sum = 0;
      for (size_t e = 0; e < ids.size(); ++e) sum += ws[e] * r[ids[e]];
      const double wi = graph.WeightedDegree(static_cast<NodeId>(i));
      next[i] = 1.0 + (1 - c) * sum / wi;
      delta = std::max(delta, std::abs(next[i] - r[i]));
    }
    r.swap(next);
    if (delta < options.tolerance) return r;
  }
  return Status::Internal("ExactDht did not converge");
}

Result<std::vector<double>> ExactTht(const Graph& graph, NodeId query,
                                     int length) {
  FLOS_RETURN_IF_ERROR(ValidateQuery(graph, query));
  if (length < 1) {
    return Status::InvalidArgument("THT length must be >= 1");
  }
  const uint64_t n = graph.NumNodes();
  std::vector<double> r(n, 0.0);
  std::vector<double> next(n, 0.0);
  for (int step = 0; step < length; ++step) {
    for (uint64_t i = 0; i < n; ++i) {
      if (i == query) {
        next[i] = 0.0;
        continue;
      }
      const auto ids = graph.NeighborIds(static_cast<NodeId>(i));
      if (ids.empty()) {
        next[i] = length;  // isolated nodes can never hit q
        continue;
      }
      const auto ws = graph.NeighborWeights(static_cast<NodeId>(i));
      double sum = 0;
      for (size_t e = 0; e < ids.size(); ++e) sum += ws[e] * r[ids[e]];
      next[i] = 1.0 + sum / graph.WeightedDegree(static_cast<NodeId>(i));
    }
    r.swap(next);
  }
  return r;
}

Result<std::vector<double>> ExactMeasure(const Graph& graph, NodeId query,
                                         Measure measure,
                                         const MeasureParams& params,
                                         const ExactSolveOptions& options) {
  switch (measure) {
    case Measure::kPhp:
      return ExactPhp(graph, query, params.c, options);
    case Measure::kEi:
      return ExactEi(graph, query, params.c, options);
    case Measure::kDht:
      return ExactDht(graph, query, params.c, options);
    case Measure::kTht:
      return ExactTht(graph, query, params.tht_length);
    case Measure::kRwr:
      return ExactRwr(graph, query, params.c, options);
  }
  return Status::InvalidArgument("unknown measure");
}

namespace {

// Builds the dense system (I - M) x = b where M and b are filled by the
// caller, then solves it.
Result<std::vector<double>> DenseSolve(DenseMatrix m, std::vector<double> b) {
  const uint32_t n = m.rows();
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      m.at(i, j) = (i == j ? 1.0 : 0.0) - m.at(i, j);
    }
  }
  FLOS_ASSIGN_OR_RETURN(DenseLu lu, DenseLu::Factor(m));
  std::vector<double> x;
  FLOS_RETURN_IF_ERROR(lu.Solve(b, &x));
  return x;
}

}  // namespace

Result<std::vector<double>> DensePhp(const Graph& graph, NodeId query,
                                     double c) {
  FLOS_RETURN_IF_ERROR(ValidateQuery(graph, query));
  FLOS_RETURN_IF_ERROR(ValidateC(c));
  const auto n = static_cast<uint32_t>(graph.NumNodes());
  DenseMatrix m(n, n);
  std::vector<double> b(n, 0.0);
  b[query] = 1.0;
  for (uint32_t i = 0; i < n; ++i) {
    if (i == query) continue;
    const auto ids = graph.NeighborIds(i);
    const auto ws = graph.NeighborWeights(i);
    const double wi = graph.WeightedDegree(i);
    for (size_t e = 0; e < ids.size(); ++e) {
      m.at(i, ids[e]) = c * ws[e] / wi;
    }
  }
  return DenseSolve(std::move(m), std::move(b));
}

Result<std::vector<double>> DenseRwr(const Graph& graph, NodeId query,
                                     double c) {
  FLOS_RETURN_IF_ERROR(ValidateQuery(graph, query));
  FLOS_RETURN_IF_ERROR(ValidateC(c));
  const auto n = static_cast<uint32_t>(graph.NumNodes());
  DenseMatrix m(n, n);
  std::vector<double> b(n, 0.0);
  b[query] = c;
  for (uint32_t i = 0; i < n; ++i) {
    const auto ids = graph.NeighborIds(i);
    const auto ws = graph.NeighborWeights(i);
    for (size_t e = 0; e < ids.size(); ++e) {
      const double wj = graph.WeightedDegree(ids[e]);
      m.at(i, ids[e]) = (1 - c) * ws[e] / wj;  // p_{j,i}
    }
  }
  return DenseSolve(std::move(m), std::move(b));
}

Result<std::vector<double>> DenseDht(const Graph& graph, NodeId query,
                                     double c) {
  FLOS_RETURN_IF_ERROR(ValidateQuery(graph, query));
  FLOS_RETURN_IF_ERROR(ValidateC(c));
  const auto n = static_cast<uint32_t>(graph.NumNodes());
  DenseMatrix m(n, n);
  std::vector<double> b(n, 1.0);
  b[query] = 0.0;
  for (uint32_t i = 0; i < n; ++i) {
    if (i == query) continue;
    const auto ids = graph.NeighborIds(i);
    if (ids.empty()) {
      b[i] = 1.0 / c;  // isolated: saturate
      continue;
    }
    const auto ws = graph.NeighborWeights(i);
    const double wi = graph.WeightedDegree(i);
    for (size_t e = 0; e < ids.size(); ++e) {
      m.at(i, ids[e]) = (1 - c) * ws[e] / wi;
    }
  }
  return DenseSolve(std::move(m), std::move(b));
}

std::vector<NodeId> TopKFromScores(const std::vector<double>& scores,
                                   NodeId query, int k, Direction direction) {
  std::vector<NodeId> ids;
  ids.reserve(scores.size());
  for (uint64_t i = 0; i < scores.size(); ++i) {
    if (i != query) ids.push_back(static_cast<NodeId>(i));
  }
  const auto cmp = [&](NodeId a, NodeId b) {
    if (scores[a] != scores[b]) return IsCloser(direction, scores[a], scores[b]);
    return a < b;
  };
  const size_t kk = std::min<size_t>(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + kk, ids.end(), cmp);
  ids.resize(kk);
  return ids;
}

}  // namespace flos
