#include "linalg/lu.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace flos {

Result<DenseLu> DenseLu::Factor(const DenseMatrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("dense LU requires a square matrix");
  }
  const uint32_t n = a.rows();
  DenseLu out;
  out.lu_ = a;
  out.perm_.resize(n);
  for (uint32_t i = 0; i < n; ++i) out.perm_[i] = i;
  DenseMatrix& lu = out.lu_;
  for (uint32_t k = 0; k < n; ++k) {
    // Partial pivoting: find the largest entry in column k at or below row k.
    uint32_t pivot = k;
    double best = std::abs(lu.at(k, k));
    for (uint32_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu.at(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best == 0) {
      return Status::FailedPrecondition("matrix is singular");
    }
    if (pivot != k) {
      for (uint32_t c = 0; c < n; ++c) {
        std::swap(lu.at(k, c), lu.at(pivot, c));
      }
      std::swap(out.perm_[k], out.perm_[pivot]);
    }
    const double inv = 1.0 / lu.at(k, k);
    for (uint32_t r = k + 1; r < n; ++r) {
      const double factor = lu.at(r, k) * inv;
      lu.at(r, k) = factor;
      if (factor == 0) continue;
      for (uint32_t c = k + 1; c < n; ++c) {
        lu.at(r, c) -= factor * lu.at(k, c);
      }
    }
  }
  return out;
}

Status DenseLu::Solve(const std::vector<double>& b,
                      std::vector<double>* x) const {
  const uint32_t n = lu_.rows();
  if (b.size() != n) {
    return Status::InvalidArgument("rhs size mismatch in DenseLu::Solve");
  }
  std::vector<double> y(n);
  for (uint32_t i = 0; i < n; ++i) {
    double sum = b[perm_[i]];
    for (uint32_t j = 0; j < i; ++j) sum -= lu_.at(i, j) * y[j];
    y[i] = sum;
  }
  x->assign(n, 0.0);
  for (uint32_t ii = n; ii > 0; --ii) {
    const uint32_t i = ii - 1;
    double sum = y[i];
    for (uint32_t j = i + 1; j < n; ++j) sum -= lu_.at(i, j) * (*x)[j];
    (*x)[i] = sum / lu_.at(i, i);
  }
  return Status::OK();
}

Result<SparseLu> SparseLu::Factor(const CsrMatrix& a,
                                  uint64_t max_fill_entries) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("sparse LU requires a square matrix");
  }
  const uint32_t n = a.rows();
  SparseLu out;
  out.n_ = n;

  // Up-looking LU: process rows in order; each row is expanded into a sparse
  // workspace, eliminated against previously factored rows, then compressed
  // into L (below diagonal) and U (diagonal and above).
  out.lower_.offsets.assign(1, 0);
  out.upper_.offsets.assign(1, 0);

  // Column-major view of U rows built so far, for elimination: for each
  // pivot row k we need U[k, j], j > k. We store U rows compressed already;
  // elimination walks them directly.
  std::map<uint32_t, double> work;
  uint64_t fill = 0;
  for (uint32_t r = 0; r < n; ++r) {
    work.clear();
    for (uint64_t e = a.row_offsets()[r]; e < a.row_offsets()[r + 1]; ++e) {
      work[a.col_indices()[e]] = a.values()[e];
    }
    // Eliminate entries left of the diagonal in increasing column order.
    // map iteration order gives us that directly; new fill-in to the right
    // of the current position is handled because map stays sorted.
    for (auto it = work.begin(); it != work.end() && it->first < r;) {
      const uint32_t k = it->first;
      const double u_kk =
          out.upper_.values[out.upper_.offsets[k]];  // diagonal first in row k
      const double factor = it->second / u_kk;
      it->second = factor;  // becomes L[r, k]
      // Subtract factor * U[k, j] for j > k.
      for (uint64_t e = out.upper_.offsets[k] + 1; e < out.upper_.offsets[k + 1];
           ++e) {
        work[out.upper_.cols[e]] -= factor * out.upper_.values[e];
      }
      ++it;
    }
    // Compress: entries < r into L, entries >= r into U (diagonal first).
    const auto diag_it = work.find(r);
    if (diag_it == work.end() || diag_it->second == 0) {
      return Status::FailedPrecondition("zero pivot in sparse LU (row " +
                                        std::to_string(r) + ")");
    }
    for (const auto& [c, v] : work) {
      if (v == 0) continue;
      if (c < r) {
        out.lower_.cols.push_back(c);
        out.lower_.values.push_back(v);
      }
    }
    out.upper_.cols.push_back(r);
    out.upper_.values.push_back(diag_it->second);
    for (const auto& [c, v] : work) {
      if (c <= r || v == 0) continue;
      out.upper_.cols.push_back(c);
      out.upper_.values.push_back(v);
    }
    out.lower_.offsets.push_back(out.lower_.cols.size());
    out.upper_.offsets.push_back(out.upper_.cols.size());
    fill = out.lower_.cols.size() + out.upper_.cols.size();
    if (fill > max_fill_entries) {
      return Status::ResourceExhausted(
          "sparse LU fill exceeded budget at row " + std::to_string(r) + " (" +
          std::to_string(fill) + " entries)");
    }
  }
  return out;
}

Status SparseLu::Solve(const std::vector<double>& b,
                       std::vector<double>* x) const {
  if (b.size() != n_) {
    return Status::InvalidArgument("rhs size mismatch in SparseLu::Solve");
  }
  // Forward: L y = b (unit diagonal).
  std::vector<double> y(b);
  for (uint32_t r = 0; r < n_; ++r) {
    double sum = y[r];
    for (uint64_t e = lower_.offsets[r]; e < lower_.offsets[r + 1]; ++e) {
      sum -= lower_.values[e] * y[lower_.cols[e]];
    }
    y[r] = sum;
  }
  // Backward: U x = y (diagonal stored first in each row).
  x->assign(n_, 0.0);
  for (uint32_t rr = n_; rr > 0; --rr) {
    const uint32_t r = rr - 1;
    double sum = y[r];
    for (uint64_t e = upper_.offsets[r] + 1; e < upper_.offsets[r + 1]; ++e) {
      sum -= upper_.values[e] * (*x)[upper_.cols[e]];
    }
    (*x)[r] = sum / upper_.values[upper_.offsets[r]];
  }
  return Status::OK();
}

uint64_t SparseLu::FillEntries() const {
  return lower_.cols.size() + upper_.cols.size();
}

}  // namespace flos
