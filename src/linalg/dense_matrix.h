// Dense row-major matrix used for small-graph ground truth in tests and as
// the building block of the LU factorization.

#ifndef FLOS_LINALG_DENSE_MATRIX_H_
#define FLOS_LINALG_DENSE_MATRIX_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace flos {

/// Dense rows x cols matrix of doubles, row-major.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(uint32_t rows, uint32_t cols)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, 0) {}

  /// Identity matrix of size n.
  static DenseMatrix Identity(uint32_t n);

  uint32_t rows() const { return rows_; }
  uint32_t cols() const { return cols_; }

  double& at(uint32_t r, uint32_t c) { return data_[size_t{r} * cols_ + c]; }
  double at(uint32_t r, uint32_t c) const {
    return data_[size_t{r} * cols_ + c];
  }

  /// y = A x.
  void Multiply(const std::vector<double>& x, std::vector<double>* y) const;

 private:
  uint32_t rows_ = 0;
  uint32_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace flos

#endif  // FLOS_LINALG_DENSE_MATRIX_H_
