// Fixed-point iteration for linear systems x = A x + b (paper Algorithm 7).
//
// All random-walk proximity measures in the library reduce to systems of
// this form with ||A||_inf < 1, so plain Jacobi-style iteration converges
// geometrically. The solver supports warm starts and reports an a-posteriori
// error certificate so callers can turn an approximate solve into rigorous
// lower/upper bounds.

#ifndef FLOS_LINALG_ITERATIVE_SOLVER_H_
#define FLOS_LINALG_ITERATIVE_SOLVER_H_

#include <cstdint>
#include <vector>

#include "linalg/csr_matrix.h"
#include "util/status.h"

namespace flos {

/// Outcome of a fixed-point solve.
struct SolveInfo {
  uint32_t iterations = 0;
  /// Infinity norm of the last update ||x_n - x_{n-1}||.
  double final_residual = 0;
  /// Rigorous bound on ||x - x*||_inf: final_residual * L / (1 - L) where L
  /// is the contraction factor (||A||_inf). Valid only if L < 1.
  double error_bound = 0;
  bool converged = false;
};

/// Iterates x <- A x + b from the warm start in `*x` until the update norm
/// drops below `tolerance` or `max_iterations` is reached. `contraction`
/// must be an upper bound on ||A||_inf strictly below 1 for the error
/// certificate to be valid (pass A.InfinityNorm() if unsure).
SolveInfo FixedPointSolve(const CsrMatrix& a, const std::vector<double>& b,
                          double tolerance, uint32_t max_iterations,
                          double contraction, std::vector<double>* x);

}  // namespace flos

#endif  // FLOS_LINALG_ITERATIVE_SOLVER_H_
