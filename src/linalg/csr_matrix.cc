#include "linalg/csr_matrix.h"

#include <algorithm>
#include <cmath>

namespace flos {

Result<CsrMatrix> CsrMatrix::FromTriplets(uint32_t rows, uint32_t cols,
                                          std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    if (t.row >= rows || t.col >= cols) {
      return Status::OutOfRange("triplet index out of range");
    }
    if (!std::isfinite(t.value)) {
      return Status::InvalidArgument("non-finite matrix entry");
    }
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              if (a.row != b.row) return a.row < b.row;
              return a.col < b.col;
            });
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_offsets_.assign(rows + 1, 0);
  size_t i = 0;
  for (uint32_t r = 0; r < rows; ++r) {
    m.row_offsets_[r] = m.values_.size();
    while (i < triplets.size() && triplets[i].row == r) {
      const uint32_t c = triplets[i].col;
      double v = 0;
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == c) {
        v += triplets[i].value;
        ++i;
      }
      m.col_indices_.push_back(c);
      m.values_.push_back(v);
    }
  }
  m.row_offsets_[rows] = m.values_.size();
  return m;
}

void CsrMatrix::Multiply(const std::vector<double>& x,
                         std::vector<double>* y) const {
  y->assign(rows_, 0.0);
  for (uint32_t r = 0; r < rows_; ++r) {
    double sum = 0;
    for (uint64_t e = row_offsets_[r]; e < row_offsets_[r + 1]; ++e) {
      sum += values_[e] * x[col_indices_[e]];
    }
    (*y)[r] = sum;
  }
}

CsrMatrix CsrMatrix::Transpose() const {
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_offsets_.assign(cols_ + 1, 0);
  for (const uint32_t c : col_indices_) ++t.row_offsets_[c + 1];
  for (uint32_t c = 0; c < cols_; ++c) {
    t.row_offsets_[c + 1] += t.row_offsets_[c];
  }
  t.col_indices_.resize(values_.size());
  t.values_.resize(values_.size());
  std::vector<uint64_t> cursor(t.row_offsets_.begin(), t.row_offsets_.end() - 1);
  for (uint32_t r = 0; r < rows_; ++r) {
    for (uint64_t e = row_offsets_[r]; e < row_offsets_[r + 1]; ++e) {
      const uint64_t pos = cursor[col_indices_[e]]++;
      t.col_indices_[pos] = r;
      t.values_[pos] = values_[e];
    }
  }
  return t;
}

double CsrMatrix::InfinityNorm() const {
  double best = 0;
  for (uint32_t r = 0; r < rows_; ++r) {
    double sum = 0;
    for (uint64_t e = row_offsets_[r]; e < row_offsets_[r + 1]; ++e) {
      sum += std::abs(values_[e]);
    }
    best = std::max(best, sum);
  }
  return best;
}

}  // namespace flos
