// Reverse Cuthill-McKee ordering: a bandwidth-reducing node permutation
// used to keep fill-in manageable in the sparse LU factorization (K-dash
// baseline).

#ifndef FLOS_LINALG_RCM_H_
#define FLOS_LINALG_RCM_H_

#include <vector>

#include "graph/graph.h"

namespace flos {

/// Returns a permutation `perm` such that `perm[new_id] = old_id`, computed
/// by reverse Cuthill-McKee (BFS from a low-degree node per component,
/// neighbors visited in increasing-degree order, final order reversed).
std::vector<NodeId> ReverseCuthillMckee(const Graph& graph);

/// Inverts a permutation: result[old_id] = new_id.
std::vector<NodeId> InvertPermutation(const std::vector<NodeId>& perm);

}  // namespace flos

#endif  // FLOS_LINALG_RCM_H_
