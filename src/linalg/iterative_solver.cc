#include "linalg/iterative_solver.h"

#include <algorithm>
#include <cmath>

namespace flos {

SolveInfo FixedPointSolve(const CsrMatrix& a, const std::vector<double>& b,
                          double tolerance, uint32_t max_iterations,
                          double contraction, std::vector<double>* x) {
  SolveInfo info;
  std::vector<double> next;
  for (uint32_t it = 0; it < max_iterations; ++it) {
    a.Multiply(*x, &next);
    double delta = 0;
    for (size_t i = 0; i < next.size(); ++i) {
      next[i] += b[i];
      delta = std::max(delta, std::abs(next[i] - (*x)[i]));
    }
    x->swap(next);
    ++info.iterations;
    info.final_residual = delta;
    if (delta < tolerance) {
      info.converged = true;
      break;
    }
  }
  if (contraction < 1.0) {
    info.error_bound =
        info.final_residual * contraction / (1.0 - contraction);
  } else {
    info.error_bound = std::numeric_limits<double>::infinity();
  }
  return info;
}

}  // namespace flos
