#include "linalg/rcm.h"

#include <algorithm>
#include <deque>

namespace flos {

std::vector<NodeId> ReverseCuthillMckee(const Graph& graph) {
  const uint64_t n = graph.NumNodes();
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);

  // Start nodes: ascending degree, so each component's BFS starts at a
  // peripheral (low-degree) node.
  std::vector<NodeId> by_degree(n);
  for (uint64_t i = 0; i < n; ++i) by_degree[i] = static_cast<NodeId>(i);
  std::sort(by_degree.begin(), by_degree.end(), [&](NodeId a, NodeId b) {
    if (graph.Degree(a) != graph.Degree(b)) {
      return graph.Degree(a) < graph.Degree(b);
    }
    return a < b;
  });

  std::vector<NodeId> scratch;
  for (const NodeId start : by_degree) {
    if (visited[start]) continue;
    visited[start] = true;
    std::deque<NodeId> queue = {start};
    order.push_back(start);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      scratch.clear();
      for (const NodeId v : graph.NeighborIds(u)) {
        if (!visited[v]) {
          visited[v] = true;
          scratch.push_back(v);
        }
      }
      std::sort(scratch.begin(), scratch.end(), [&](NodeId a, NodeId b) {
        if (graph.Degree(a) != graph.Degree(b)) {
          return graph.Degree(a) < graph.Degree(b);
        }
        return a < b;
      });
      for (const NodeId v : scratch) {
        queue.push_back(v);
        order.push_back(v);
      }
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<NodeId> InvertPermutation(const std::vector<NodeId>& perm) {
  std::vector<NodeId> inverse(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    inverse[perm[i]] = static_cast<NodeId>(i);
  }
  return inverse;
}

}  // namespace flos
