#include "linalg/dense_matrix.h"

namespace flos {

DenseMatrix DenseMatrix::Identity(uint32_t n) {
  DenseMatrix m(n, n);
  for (uint32_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

void DenseMatrix::Multiply(const std::vector<double>& x,
                           std::vector<double>* y) const {
  y->assign(rows_, 0.0);
  for (uint32_t r = 0; r < rows_; ++r) {
    double sum = 0;
    const double* row = &data_[size_t{r} * cols_];
    for (uint32_t c = 0; c < cols_; ++c) sum += row[c] * x[c];
    (*y)[r] = sum;
  }
}

}  // namespace flos
