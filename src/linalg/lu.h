// LU factorizations: dense (partial pivoting) for small-graph ground truth,
// and sparse (no pivoting, for the diagonally dominant I - cP systems that
// arise from random walks) for the K-dash baseline.

#ifndef FLOS_LINALG_LU_H_
#define FLOS_LINALG_LU_H_

#include <cstdint>
#include <vector>

#include "linalg/csr_matrix.h"
#include "linalg/dense_matrix.h"
#include "util/status.h"

namespace flos {

/// Dense LU with partial pivoting; solves A x = b exactly (up to fp error).
class DenseLu {
 public:
  /// Factors `a` (must be square and nonsingular).
  static Result<DenseLu> Factor(const DenseMatrix& a);

  /// Solves A x = b. `b.size()` must equal the matrix dimension.
  Status Solve(const std::vector<double>& b, std::vector<double>* x) const;

  uint32_t dimension() const { return lu_.rows(); }

 private:
  DenseMatrix lu_;
  std::vector<uint32_t> perm_;
};

/// Sparse LU without pivoting. Intended for strictly diagonally dominant
/// systems such as I - cP (random-walk matrices with c < 1), where no
/// pivoting is needed for stability. Fill-in is whatever the given ordering
/// produces; callers should pre-permute with RCM (see rcm.h). The
/// factorization aborts with ResourceExhausted if fill exceeds
/// `max_fill_entries`, so callers can fail gracefully on dense-fill graphs
/// (this mirrors K-dash's practical restriction to medium-size graphs).
class SparseLu {
 public:
  static Result<SparseLu> Factor(const CsrMatrix& a, uint64_t max_fill_entries);

  /// Solves A x = b via forward/backward substitution.
  Status Solve(const std::vector<double>& b, std::vector<double>* x) const;

  uint32_t dimension() const { return n_; }
  uint64_t FillEntries() const;

 private:
  // Row-compressed triangular factors. L has implicit unit diagonal.
  struct Rows {
    std::vector<uint64_t> offsets;
    std::vector<uint32_t> cols;
    std::vector<double> values;
  };
  uint32_t n_ = 0;
  Rows lower_;                 // strictly lower part, unit diagonal implied
  Rows upper_;                 // upper part including diagonal
};

}  // namespace flos

#endif  // FLOS_LINALG_LU_H_
