// General sparse matrix (CSR) with the operations the proximity solvers
// need: matrix-vector product, transpose, and construction from triplets.

#ifndef FLOS_LINALG_CSR_MATRIX_H_
#define FLOS_LINALG_CSR_MATRIX_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace flos {

/// Coordinate-form matrix entry used to assemble a CsrMatrix.
struct Triplet {
  uint32_t row;
  uint32_t col;
  double value;
};

/// Immutable sparse matrix in compressed-sparse-row form.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds a rows x cols matrix from triplets. Duplicate (row, col)
  /// entries are summed. Entries out of range are an error.
  static Result<CsrMatrix> FromTriplets(uint32_t rows, uint32_t cols,
                                        std::vector<Triplet> triplets);

  uint32_t rows() const { return rows_; }
  uint32_t cols() const { return cols_; }
  uint64_t NumNonZeros() const { return values_.size(); }

  /// y = A x. `x.size()` must equal cols(); `y` is resized to rows().
  void Multiply(const std::vector<double>& x, std::vector<double>* y) const;

  /// Returns A^T.
  CsrMatrix Transpose() const;

  /// Maximum absolute row sum (induced infinity norm).
  double InfinityNorm() const;

  /// Raw arrays.
  const std::vector<uint64_t>& row_offsets() const { return row_offsets_; }
  const std::vector<uint32_t>& col_indices() const { return col_indices_; }
  const std::vector<double>& values() const { return values_; }

 private:
  uint32_t rows_ = 0;
  uint32_t cols_ = 0;
  std::vector<uint64_t> row_offsets_;
  std::vector<uint32_t> col_indices_;
  std::vector<double> values_;
};

}  // namespace flos

#endif  // FLOS_LINALG_CSR_MATRIX_H_
