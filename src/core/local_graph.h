// Dynamic local subgraph maintained by FLoS during search.
//
// Tracks the visited set S, the within-S transition structure (the matrix T
// restricted to S), each node's full neighbor list, and boundary membership
// (delta-S = visited nodes with at least one unvisited neighbor). Nodes are
// given dense local indices in visit order; all bound computations run on
// local indices.
//
// A node "joins S" when its neighbor list is fetched through the
// GraphAccessor; the number of fetches equals |S|, matching the paper's
// "number of visited nodes".
//
// Within-S rows live in a FLAT LOCAL CSR in structure-of-arrays form: one
// arena of `LocalId` column indices and one parallel arena of `double`
// transition weights, with per-row (start, length, capacity) spines. Rows
// grow in place through power-of-two slabs carved off the arena tail: a row
// that outgrows its slab moves once to a slab of twice the size, so the
// total copy work per row is O(final row length) and a full bound sweep
// touches two dense arrays instead of one heap-allocated AoS vector per
// node. The bound kernels (core/sweep_kernel.h) stream these arrays
// directly.
//
// Reuse: a LocalGraph is a per-worker workspace, not a per-query object.
// Reset() returns it to the pre-Init state in O(|S|) without releasing any
// storage — the node-keyed indexes are epoch-versioned (core/node_index.h)
// and the row arena keeps its capacity with the bump pointer rewound — so
// steady-state queries perform no allocation and no hashing on the hot
// membership checks when the accessor advertises DenseIndexHint().

#ifndef FLOS_CORE_LOCAL_GRAPH_H_
#define FLOS_CORE_LOCAL_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/node_index.h"
#include "graph/accessor.h"
#include "graph/graph.h"
#include "util/check.h"
#include "util/status.h"

namespace flos {

/// Local (dense, within-S) node index.
using LocalId = uint32_t;

inline constexpr LocalId kInvalidLocal = static_cast<LocalId>(-1);

/// Zero-copy view of one within-S transition row: parallel index/weight
/// arrays of length `len` (structure-of-arrays). Valid until the next
/// Expand/Init/Reset call on the owning LocalGraph.
struct LocalRow {
  const LocalId* idx;
  const double* weight;
  uint32_t len;

  uint32_t size() const { return len; }
};

/// Deep, self-contained copy of a LocalGraph's per-query state, for the
/// warm-subgraph cache (core/subgraph_cache.h). Holds everything a resumed
/// query needs that cannot be rebuilt locally: the visited set in visit
/// order, the compacted local CSR (used arena prefix + spines), neighbor
/// lists, boundary/hidden-mass bookkeeping, hop distances, and the
/// delta-S-bar degree heap. The epoch-keyed node indexes
/// (global_to_local, degree cache, ever-adjacent set) are NOT stored —
/// RestoreSnapshot rebuilds them from the visit order and the heap, which
/// provably covers every unvisited ever-adjacent node (heap entries are
/// pushed exactly when a node first becomes adjacent and compaction only
/// drops visited ones).
struct LocalGraphSnapshot {
  NodeId query = kInvalidNode;
  uint32_t query_count = 0;
  std::vector<NodeId> local_to_global;
  std::vector<double> weighted_degree;
  std::vector<double> hidden_mass;
  bool truncated_seen = false;
  std::vector<uint32_t> outside_count;
  uint32_t boundary_count = 0;
  std::vector<std::vector<Neighbor>> neighbors;
  std::vector<LocalId> arena_idx;
  std::vector<double> arena_weight;
  uint32_t arena_used = 0;
  std::vector<uint32_t> row_start;
  std::vector<uint32_t> row_len;
  std::vector<uint32_t> row_cap;
  std::vector<double> row_in_mass;
  std::vector<uint32_t> hop_dist;
  std::vector<std::pair<double, NodeId>> outside_degree_heap;
  uint32_t heap_compact_size = 0;

  uint32_t Size() const { return static_cast<uint32_t>(local_to_global.size()); }
};

/// The visited subgraph S with its boundary bookkeeping.
class LocalGraph {
 public:
  /// `accessor` must outlive the LocalGraph. Allocates the visited-set
  /// index sized to the accessor's hint (dense stamp arrays for in-memory
  /// graphs, open-addressing hashing for disk graphs).
  explicit LocalGraph(GraphAccessor* accessor);

  LocalGraph(const LocalGraph&) = delete;
  LocalGraph& operator=(const LocalGraph&) = delete;

  /// Adds the query node as local id 0. Must be called exactly once per
  /// query (after construction or Reset()).
  Status Init(NodeId query);

  /// Multi-source variant: the queries become local ids 0..queries.size()-1
  /// and act as one absorbing set (walks stop at ANY of them). Queries must
  /// be distinct and in range. Must be called exactly once per query.
  Status Init(const std::vector<NodeId>& queries);

  /// Returns to the pre-Init state so the workspace can serve the next
  /// query. Keeps every buffer's capacity; O(|S|).
  void Reset();

  /// Expands node `u` (must be visited): every unvisited neighbor of `u`
  /// joins S. Returns the number of nodes added.
  Result<uint32_t> Expand(LocalId u);

  /// Number of visited nodes |S|.
  uint32_t Size() const { return static_cast<uint32_t>(local_to_global_.size()); }

  /// True iff `global` is visited.
  bool Contains(NodeId global) const {
    return global_to_local_.Contains(global);
  }

  /// Local id of a visited node, or kInvalidLocal. Single index probe;
  /// prefer one LocalIndex call over Contains-then-LocalIndex pairs.
  LocalId LocalIndex(NodeId global) const {
    const LocalId* local = global_to_local_.Find(global);
    return local == nullptr ? kInvalidLocal : *local;
  }

  NodeId GlobalId(LocalId local) const { return local_to_global_[local]; }

  /// Weighted degree w_i (over ALL neighbors, visited or not).
  double WeightedDegree(LocalId local) const { return weighted_degree_[local]; }

  /// Number of i's neighbors currently outside S. 0 means interior.
  uint32_t OutsideCount(LocalId local) const { return outside_count_[local]; }

  /// True iff i is in the boundary delta-S.
  bool IsBoundary(LocalId local) const { return outside_count_[local] > 0; }

  /// Number of boundary nodes |delta-S| (maintained, O(1)).
  uint32_t BoundaryCount() const { return boundary_count_; }

  /// True iff no visited node has an unvisited neighbor (the query's whole
  /// component has been visited). O(1): the boundary-node count is
  /// maintained where outside counts change.
  bool Exhausted() const { return boundary_count_ == 0; }

  /// Within-S transition row of node i: visited neighbors j with
  /// p_ij = w_ij / w_i (FULL weighted degree), as an SoA view into the
  /// flat local CSR.
  LocalRow Row(LocalId local) const {
    FLOS_DCHECK(local < Size(), "Row: local id out of range");
    const uint32_t start = row_start_[local];
    return {arena_idx_.data() + start, arena_weight_.data() + start,
            row_len_[local]};
  }

  /// Issues software prefetches for row i's index and weight slabs. The
  /// bound sweeps call this one row ahead so the slab is in cache by the
  /// time the scan reaches it.
  void PrefetchRow(LocalId local) const {
    const uint32_t start = row_start_[local];
    __builtin_prefetch(arena_idx_.data() + start, 0, 1);
    __builtin_prefetch(arena_weight_.data() + start, 0, 1);
  }

  /// Sum of row i's transition probabilities (the in-S mass
  /// sum_{j in S} p_ij), maintained incrementally as entries are appended.
  /// Bitwise equal to summing Row(i) in order.
  double RowInMass(LocalId local) const { return row_in_mass_[local]; }

  /// Weighted-degree mass of node i's edges the accessor cannot enumerate
  /// (a ShardAccessor's truncated fringe rows): WeightedDegree(i) minus the
  /// fetched list's sum. 0 on accessors with complete adjacency, so every
  /// full-graph code path is unchanged. The transition fraction
  /// HiddenMass(i) / WeightedDegree(i) leaves S through edges no fetched
  /// list ever reports; the bound engines must treat it as permanently
  /// outside mass routed to the dummy node.
  double HiddenMass(LocalId local) const { return hidden_mass_[local]; }

  /// True once any visited row had hidden mass. Bound refinements that
  /// assume complete neighbor enumeration must degrade conservatively when
  /// this is set.
  bool HasTruncatedRows() const { return truncated_seen_; }

  /// Full neighbor list of visited node i (global ids), as fetched.
  const std::vector<Neighbor>& Neighbors(LocalId local) const {
    return neighbors_[local];
  }

  /// Weighted degree of an arbitrary (possibly unvisited) node, cached so
  /// repeated probes of the same node cost one accessor call. Used by the
  /// self-loop tightening, which needs degrees of unvisited boundary nodes.
  double ProbeDegree(NodeId global);

  /// Nodes whose outside-neighbor set changed since the last call (newly
  /// added nodes and their visited neighbors), deduplicated. The bound
  /// engine uses this to refresh boundary coefficients incrementally.
  /// Calling this clears the set. The returned reference is valid until
  /// the next TakeDirtyNodes or Expand call.
  const std::vector<LocalId>& TakeDirtyNodes();

  /// Hop distance from the query to `local` along paths WITHIN S
  /// (maintained incrementally with decrease-relaxation, so it equals the
  /// true within-S shortest hop count).
  uint32_t HopDistance(LocalId local) const { return hop_dist_[local]; }

  /// A certified lower bound on the hop distance of every UNVISITED node:
  /// 1 + min over boundary nodes of HopDistance. Any path from q must cross
  /// the boundary before leaving S. Returns a large sentinel when S is
  /// exhausted (no unvisited nodes are reachable). Used by the THT bounds.
  uint32_t UnvisitedHopLowerBound() const;

  /// True iff `global` is unvisited but adjacent to S (in delta-S-bar).
  bool IsOutsideAdjacent(NodeId global) const {
    return ever_adjacent_.Contains(global) && !Contains(global);
  }

  /// Largest weighted degree among the unvisited nodes adjacent to S
  /// (delta-S-bar); 0 if none. Degrees are known from probes. Used by the
  /// FLoS_RWR termination test (Section 5.6 refinement).
  double MaxOutsideAdjacentDegree();

  GraphAccessor* accessor() { return accessor_; }

  /// First (or only) query node.
  NodeId query() const { return query_; }

  /// Number of query (source) nodes; their local ids are 0..count-1.
  uint32_t query_count() const { return query_count_; }

  /// True iff `local` is one of the query nodes (they are added first, so
  /// this is an index comparison).
  bool IsQueryLocal(LocalId local) const { return local < query_count_; }

  /// Deep-copies this query's state into `out` (see LocalGraphSnapshot).
  /// Must be Init'd. The snapshot is independent of this workspace and
  /// stays valid across Reset.
  void SaveSnapshot(LocalGraphSnapshot* out) const;

  /// Rebuilds the Init'd state captured by SaveSnapshot into this
  /// workspace. Must be called in the pre-Init state (after Reset), on a
  /// LocalGraph over the SAME graph the snapshot was taken from (the
  /// caller keys snapshots by graph epoch). All nodes come back dirty so
  /// the bound engine's next coefficient refresh recomputes everything.
  void RestoreSnapshot(const LocalGraphSnapshot& snap);

 private:
  Status Add(NodeId global);

  /// Audit tier: recomputes the maintained bookkeeping — per-node outside
  /// counts and the boundary count from the stored neighbor lists, and
  /// each row's in-S mass by re-summing the row in append order — and
  /// aborts on any mismatch with the incrementally maintained values.
  /// O(edges(S)); called from Init/Expand under FLOS_AUDIT_SCOPE only.
  void AuditBookkeeping() const;

  /// Appends entry (j, p) to row i, growing its slab if full.
  void RowAppend(LocalId i, LocalId j, double p);

  /// Moves row i to a fresh power-of-two slab of at least `min_cap`
  /// entries at the arena tail, copying its current entries.
  void GrowRow(LocalId i, uint32_t min_cap);

  GraphAccessor* accessor_;
  NodeId query_ = kInvalidNode;
  uint32_t query_count_ = 0;
  NodeMap<LocalId> global_to_local_;
  std::vector<NodeId> local_to_global_;
  std::vector<double> weighted_degree_;
  /// Per-node hidden (non-enumerable) edge mass; see HiddenMass(). A node
  /// with hidden mass carries a phantom +1 in outside_count_ that is never
  /// decremented: its hidden neighbors can never be visited through this
  /// accessor, so it stays boundary — and the query stays uncertifiable —
  /// forever.
  std::vector<double> hidden_mass_;
  bool truncated_seen_ = false;  ///< any visited row had hidden mass
  std::vector<uint32_t> outside_count_;
  uint32_t boundary_count_ = 0;  ///< # nodes with outside_count_ > 0
  std::vector<std::vector<Neighbor>> neighbors_;

  // Flat local CSR (SoA): per-row slabs inside two parallel arenas. The
  // arena vectors only ever grow; `arena_used_` is the bump pointer, and
  // Reset() rewinds it without releasing capacity.
  std::vector<LocalId> arena_idx_;
  std::vector<double> arena_weight_;
  uint32_t arena_used_ = 0;
  std::vector<uint32_t> row_start_;
  std::vector<uint32_t> row_len_;
  std::vector<uint32_t> row_cap_;
  std::vector<double> row_in_mass_;

  NodeMap<double> degree_cache_;
  std::vector<Neighbor> scratch_;
  std::vector<LocalId> scratch_local_;   // visited-status cache in Add
  std::vector<NodeId> expand_scratch_;   // unvisited neighbors in Expand
  std::vector<LocalId> relax_scratch_;   // hop-distance relaxation queue
  std::vector<LocalId> dirty_;
  std::vector<LocalId> dirty_out_;
  std::vector<bool> in_dirty_;
  std::vector<uint32_t> hop_dist_;
  /// Nodes that were EVER adjacent to S this query (a superset of
  /// delta-S-bar: epoch maps do not erase, so membership in the current
  /// delta-S-bar additionally requires being unvisited — see
  /// IsOutsideAdjacent).
  NodeMap<uint8_t> ever_adjacent_;
  /// Lazy max-heap over delta-S-bar degrees; entries whose node has since
  /// been visited are skipped on pop and drained wholesale once the
  /// visited set doubles, so long queries don't accumulate stale entries.
  std::vector<std::pair<double, NodeId>> outside_degree_heap_;
  uint32_t heap_compact_size_ = 0;  ///< |S| at the last heap compaction
};

}  // namespace flos

#endif  // FLOS_CORE_LOCAL_GRAPH_H_
