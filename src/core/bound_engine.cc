#include "core/bound_engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "core/sweep_kernel.h"
#include "util/check.h"

namespace flos {

namespace {
// Slack for the audited sandwich invariant. The lower and upper systems
// are evaluated in one fused fp pass over certified inputs, so the exact
// relation lower <= upper can be violated only by accumulated rounding
// (~1e-16 per row term on values in [0, 1]); anything past this slack is
// a logic bug, not noise.
constexpr double kSandwichSlack = 1e-12;
}  // namespace

PhpBoundEngine::PhpBoundEngine(LocalGraph* local,
                               const BoundEngineOptions& options)
    : local_(local) {
  Reset(options);
}

void PhpBoundEngine::Reset(const BoundEngineOptions& options) {
  options_ = options;
  deadline_hit_ = false;
  lower_.clear();
  upper_.clear();
  self_coeff_.clear();
  mesh_dummy_coeff_.clear();
  plain_dummy_coeff_.clear();
  dummy_mesh_ = 1.0;
  dummy_tight_ = 1.0;
  OnGrowth();
}

void PhpBoundEngine::CaptureDummyFromBoundary() {
  // The paper's choice is r_d^t = max upper bound over delta-S (Algorithm 5
  // line 7). Two rigorous refinements tighten it further:
  //  * every unvisited node's neighbors are boundary or unvisited nodes, so
  //    its proximity is at most alpha * max_{delta-S} exact <= alpha * that
  //    maximum upper bound — a free alpha factor that cascades, iteration
  //    by iteration, into the boundary uppers themselves;
  //  * a PHP-form walk needs at least hop-distance steps to reach q, so an
  //    unvisited node at certified distance >= d has proximity <= alpha^d.
  // All three values dominate every unvisited proximity; take the minimum
  // (clamped non-increasing across iterations).
  double best = 0;
  bool any = false;
  for (LocalId i = 0; i < local_->Size(); ++i) {
    if (local_->IsBoundary(i)) {
      best = std::max(best, upper_[i]);
      any = true;
    }
  }
  if (!any) return;
  // Mesh dummy: must dominate visited boundary values too (Lemma 4's
  // redirected mesh edges land on them), so the paper's rule is the best
  // we can do.
  dummy_mesh_ = std::min(dummy_mesh_, best);
  // Tight dummy: dominates unvisited values only.
  double candidate = best;
  if (options_.alpha_dummy_tightening) {
    candidate = options_.alpha * best;
    const double hops = std::min<double>(60, local_->UnvisitedHopLowerBound());
    candidate = std::min(candidate, std::pow(options_.alpha, hops));
    // Per-frontier-node uppers dominate every unvisited proximity too (the
    // maximum over delta-S-bar bounds deeper nodes by self-consistency).
    if (options_.frontier_dummy) {
      const OutsideUppers out = ComputeOutsideUppers();
      if (out.any) candidate = std::min(candidate, out.max_value);
    }
  }
  dummy_tight_ = std::min({dummy_tight_, dummy_mesh_, candidate});
  // The tight dummy bounds a subset of what the mesh dummy bounds, so it
  // can never exceed it; both are clamped non-increasing above.
  FLOS_DCHECK_LE(dummy_tight_, dummy_mesh_,
                 "tight dummy must not exceed mesh dummy");
}

void PhpBoundEngine::AuditBoundSandwich(const char* where) const {
  for (size_t i = 0; i < lower_.size(); ++i) {
    FLOS_CHECK_LE(lower_[i], upper_[i] + kSandwichSlack, where);
  }
}

PhpBoundEngine::OutsideUppers PhpBoundEngine::ComputeOutsideUppers() {
  // Accumulate, per unvisited frontier node v, the in-S transition mass
  // and its upper-bound-weighted sum, by walking the boundary's outside
  // edges. p_vu = w_uv / w_v with w_v from the degree probe cache.
  std::unordered_map<NodeId, std::pair<double, double>> acc;  // mass, sum
  for (LocalId u = 0; u < local_->Size(); ++u) {
    if (!local_->IsBoundary(u)) continue;
    const double ru = local_->IsQueryLocal(u) ? 1.0 : upper_[u];
    for (const Neighbor& nb : local_->Neighbors(u)) {
      if (local_->Contains(nb.id)) continue;
      const double wv = local_->ProbeDegree(nb.id);
      if (wv <= 0) continue;
      auto& [mass, sum] = acc[nb.id];
      mass += nb.weight / wv;
      sum += nb.weight / wv * ru;
    }
  }
  OutsideUppers out;
  const double alpha = options_.alpha;
  for (const auto& [v, ms] : acc) {
    const double residual = std::max(0.0, 1.0 - ms.first);
    const double bound = alpha * (ms.second + residual * dummy_tight_);
    out.max_value = std::max(out.max_value, bound);
    out.max_degree_weighted =
        std::max(out.max_degree_weighted, local_->ProbeDegree(v) * bound);
    out.any = true;
  }
  return out;
}

void PhpBoundEngine::OnGrowth() {
  const uint32_t n = local_->Size();
  // New nodes: lower = 0, upper = 1 are valid PHP-form bounds (all
  // proximities lie in [0, 1]; non-query nodes are in fact <= alpha).
  lower_.resize(n, 0.0);
  upper_.resize(n, 1.0);
  for (LocalId q = 0; q < local_->query_count(); ++q) {
    lower_[q] = 1.0;
    upper_[q] = 1.0;
  }
  self_coeff_.resize(n, 0.0);
  mesh_dummy_coeff_.resize(n, 0.0);
  plain_dummy_coeff_.resize(n, 0.0);
}

void PhpBoundEngine::RefreshBoundaryCoefficients() {
  // Incremental: only nodes whose outside-neighbor set changed since the
  // last update (new nodes and neighbors of new nodes) need their
  // coefficients recomputed.
  const double alpha = options_.alpha;
  for (const LocalId i : local_->TakeDirtyNodes()) {
    self_coeff_[i] = 0;
    mesh_dummy_coeff_[i] = 0;
    plain_dummy_coeff_[i] = 0;
    if (local_->IsQueryLocal(i) || !local_->IsBoundary(i)) continue;
    const double wi = local_->WeightedDegree(i);
    if (wi <= 0) continue;
    double out_mass = 0;        // sum over unvisited neighbors of p_iv
    double loop_mass = 0;       // sum of p_iv * p_vi
    for (const Neighbor& nb : local_->Neighbors(i)) {
      if (local_->Contains(nb.id)) continue;
      const double p_iv = nb.weight / wi;
      out_mass += p_iv;
      if (options_.self_loop_tightening) {
        const double wv = local_->ProbeDegree(nb.id);
        if (wv > 0) loop_mass += p_iv * (nb.weight / wv);
      }
    }
    // Plain construction (Theorem 5): all outside mass to the dummy.
    plain_dummy_coeff_[i] = alpha * out_mass;
    if (options_.self_loop_tightening) {
      // Mesh construction (Lemmas 3/4): p_ii = alpha * loop_mass,
      // p_id = alpha * (out - loop). In the iteration r <- alpha T r + e
      // these appear with one more alpha factor.
      self_coeff_[i] = alpha * alpha * loop_mass;
      mesh_dummy_coeff_[i] = alpha * alpha * (out_mass - loop_mass);
    }
  }
}

uint32_t PhpBoundEngine::FusedSolve(double tolerance, bool lower_only) {
  const double alpha = options_.alpha;
  const bool self_loop = options_.self_loop_tightening;
  const bool has_deadline =
      options_.deadline != std::chrono::steady_clock::time_point::max();
  double* const lo = lower_.data();
  double* const hi = upper_.data();
  uint32_t iters = 0;
  deadline_hit_ = false;
  // Audit tier: snapshot the incoming bounds so every sweep can be checked
  // against them. The entry sandwich check catches state that was already
  // uncertified before this solve (e.g. injected corruption).
  std::vector<double> audit_prev_lo;
  std::vector<double> audit_prev_hi;
  FLOS_AUDIT_SCOPE {
    AuditBoundSandwich("sandwich violated on entry to FusedSolve");
    audit_prev_lo = lower_;
    audit_prev_hi = upper_;
  }
  while (iters < options_.max_inner_iterations) {
    // Amortized convergence checks: warm-started solves converge within a
    // sweep or two, so check every sweep early; long cold solves check
    // every fourth sweep (the delta bookkeeping is skipped in between).
    const bool check = iters < 4 || (iters & 3) == 3 ||
                       iters + 1 == options_.max_inner_iterations;
    double delta = 0;
    if (lower_only) {
      RowSweep(*local_, lo, [&](LocalId i, double s) {
        if (local_->IsQueryLocal(i)) return;  // pinned at 1
        // Monotone clamp: any previous value is still a valid lower bound.
        const double v = std::max(alpha * s + self_coeff_[i] * lo[i], lo[i]);
        if (check) delta = std::max(delta, v - lo[i]);
        lo[i] = v;  // in place: Gauss–Seidel
      });
    } else {
      FusedRowSweep(*local_, lo, hi, [&](LocalId i, double s_lo, double s_hi) {
        if (local_->IsQueryLocal(i)) return;  // pinned at 1
        const double vl =
            std::max(alpha * s_lo + self_coeff_[i] * lo[i], lo[i]);
        // Both upper constructions are monotone; keep the smaller, then
        // clamp against the previous (still valid) value.
        double vu = alpha * s_hi + plain_dummy_coeff_[i] * dummy_tight_;
        if (self_loop) {
          vu = std::min(vu, alpha * s_hi + self_coeff_[i] * hi[i] +
                                mesh_dummy_coeff_[i] * dummy_mesh_);
        }
        vu = std::min(vu, hi[i]);
        if (check) delta = std::max(delta, std::max(vl - lo[i], hi[i] - vu));
        lo[i] = vl;  // in place: Gauss–Seidel
        hi[i] = vu;
      });
    }
    ++iters;
    FLOS_AUDIT_SCOPE {
      // Certified bounds only ever tighten: the in-place updates clamp
      // against the previous value with std::max/std::min, so monotonicity
      // must hold EXACTLY, sweep by sweep — any loosening means a value
      // escaped the clamp and is no longer certified.
      for (size_t i = 0; i < lower_.size(); ++i) {
        FLOS_CHECK_GE(lower_[i], audit_prev_lo[i],
                      "lower bound loosened across a sweep");
        if (!lower_only) {
          FLOS_CHECK_LE(upper_[i], audit_prev_hi[i],
                        "upper bound loosened across a sweep");
        }
      }
      AuditBoundSandwich("sandwich violated after a fused sweep");
      audit_prev_lo = lower_;
      if (!lower_only) audit_prev_hi = upper_;
    }
    if (check && delta < tolerance) break;
    // Anytime termination: each completed sweep is a certified bound state,
    // so stopping here (at the amortized checkpoints, to keep the hot loop
    // free of clock reads) leaves valid — merely looser — bounds.
    if (check && has_deadline &&
        std::chrono::steady_clock::now() >= options_.deadline) {
      deadline_hit_ = true;
      break;
    }
  }
  return iters;
}

uint32_t PhpBoundEngine::UpdateBounds() {
  RefreshBoundaryCoefficients();
  return FusedSolve(options_.tolerance, /*lower_only=*/false);
}

uint32_t PhpBoundEngine::UpdateLowerOnly() {
  RefreshBoundaryCoefficients();
  return FusedSolve(options_.tolerance, /*lower_only=*/true);
}

uint32_t PhpBoundEngine::FinalizeExhausted(double final_tolerance) {
  // With S exhausted there is no boundary: the deleted-transition system is
  // the exact system. Solve it tightly and collapse the interval.
  RefreshBoundaryCoefficients();
  const uint32_t iters = FusedSolve(final_tolerance, /*lower_only=*/true);
  // A deadline-interrupted solve has not reached the exact fixed point yet;
  // collapsing would turn a valid lower bound into an invalid upper one.
  if (!deadline_hit_) upper_ = lower_;
  return iters;
}

}  // namespace flos
