// Thread-pooled batch top-k serving.
//
// Fans a batch of single-source queries out across worker threads, each
// running its own reusable FlosEngine over the shared immutable graph —
// the serving pattern the GraphAccessor thread-safety contract prescribes
// (one accessor instance per thread, storage shared). Output order matches
// input order regardless of which worker answered which query.
//
// Error semantics are all-or-nothing: the first failing query aborts the
// batch and its Status is returned; partial results are discarded. Batch
// queries validate exactly like FlosTopK, so a well-formed batch over
// in-range nodes cannot fail.

#ifndef FLOS_CORE_BATCH_TOPK_H_
#define FLOS_CORE_BATCH_TOPK_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/flos.h"
#include "graph/accessor.h"
#include "graph/graph.h"
#include "util/status.h"

namespace flos {

/// Answers `queries[i]` into result i, preserving input order, using
/// `num_threads` workers (<= 0 selects the hardware concurrency). The
/// graph must stay immutable and outlive the call; each worker constructs
/// its own InMemoryAccessor + FlosEngine over it.
Result<std::vector<FlosResult>> BatchTopK(const Graph& graph,
                                          const std::vector<NodeId>& queries,
                                          int k, const FlosOptions& options,
                                          int num_threads = 0);

/// Generalization for non-CSR storage (disk graphs, dynamic snapshots):
/// `make_accessor` is called once per worker thread, from that thread, and
/// must yield a fresh accessor onto the same underlying storage (e.g.
/// DiskGraph::Open of the same path). It must be safe to call
/// concurrently.
using AccessorFactory =
    std::function<Result<std::unique_ptr<GraphAccessor>>()>;
Result<std::vector<FlosResult>> BatchTopK(const AccessorFactory& make_accessor,
                                          const std::vector<NodeId>& queries,
                                          int k, const FlosOptions& options,
                                          int num_threads = 0);

}  // namespace flos

#endif  // FLOS_CORE_BATCH_TOPK_H_
