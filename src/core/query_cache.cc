#include "core/query_cache.h"

#include <bit>

#include "util/check.h"

namespace flos {

size_t QueryCache::KeyHash::operator()(const Key& key) const {
  // splitmix64-style mix over the key fields; doubles hash by bit pattern
  // (keys are compared exactly, so -0.0 vs 0.0 costing a miss is fine).
  uint64_t h = 0x9e3779b97f4a7c15ull;
  const auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
  };
  mix(key.query);
  mix(static_cast<uint64_t>(key.measure));
  mix(static_cast<uint64_t>(key.k));
  mix(std::bit_cast<uint64_t>(key.c));
  mix(static_cast<uint64_t>(key.tht_length));
  mix(key.epoch);
  mix(key.predicate_fp);
  return static_cast<size_t>(h);
}

bool QueryCache::Lookup(const Key& key, FlosResult* out) {
  MutexLock lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  // The stale-epoch ground truth: an entry can only be found under a key
  // built from the CURRENT graph epoch, so its stored epoch must agree.
  // Disagreement means a certified answer from an older topology is about
  // to be served as current — corruption, never a legal state.
  FLOS_AUDIT(it->second->stored_epoch == key.epoch,
             "query cache serving a stale graph epoch");
  entries_.splice(entries_.begin(), entries_, it->second);
  *out = it->second->result;
  out->stats.cache_hit = true;
  ++hits_;
  return true;
}

void QueryCache::Insert(const Key& key, const FlosResult& result) {
  if (capacity_ == 0) return;
  // Only certified answers are facts independent of how the query ran.
  if (!result.stats.exact) return;
  FLOS_DCHECK(!result.stats.deadline_expired,
              "certified result flagged deadline_expired");
  MutexLock lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->result = result;
    it->second->stored_epoch = key.epoch;
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  entries_.push_front(Entry{key, key.epoch, result});
  index_[key] = entries_.begin();
  while (entries_.size() > capacity_) {
    index_.erase(entries_.back().key);
    entries_.pop_back();
  }
}

void QueryCache::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
  index_.clear();
}

size_t QueryCache::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

uint64_t QueryCache::hits() const {
  MutexLock lock(mu_);
  return hits_;
}

uint64_t QueryCache::misses() const {
  MutexLock lock(mu_);
  return misses_;
}

bool QueryCache::CorruptEpochForTest(const Key& key, uint64_t stored_epoch) {
  MutexLock lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  it->second->stored_epoch = stored_epoch;
  return true;
}

}  // namespace flos
