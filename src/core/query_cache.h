// Certified-result cache for repeat k-NN queries.
//
// Serving workloads are Zipf-skewed: a small set of hot query nodes
// receives most of the traffic. A certified FLoS answer is EXACT, so for
// an unchanged graph re-running the search buys nothing — the cache stores
// certified results keyed by everything that determines them:
//
//     (query node, measure, k, c, tht_length, graph epoch)
//
// and serves a warm hit in microseconds, bypassing the search entirely
// while the engine workspaces stay warm for the misses.
//
// Invalidation contract (exact, epoch-based): the key carries the
// accessor's graph epoch (GraphAccessor::Epoch, bumped by DynamicGraph on
// every topology update). A lookup computes its key from the CURRENT
// epoch, so an entry certified against an older topology can never match
// again — no enumeration of affected queries, no TTL heuristics, no stale
// window. Superseded entries age out through the LRU order. Each entry
// additionally stores its epoch redundantly; under FLOS_AUDIT a hit
// cross-checks it against the key and aborts on disagreement ("query cache
// serving a stale graph epoch"), turning memory corruption or a future
// keying bug into a crash instead of a silently wrong certified answer.
//
// Only certified results (stats.exact) are admitted: uncertified answers
// depend on the deadline that produced them and are not reusable facts.
// One cache instance assumes one solver configuration (tolerance,
// tightenings, expansion policy) — the serving layer's situation, where
// ServerOptions fixes them; the per-request knobs are all in the key.
//
// Thread-safe: one mutex guards the map + LRU list (a leaf lock in the
// concurrency contract — see DESIGN.md; the FLOS_GUARDED_BY annotations
// make the compiler enforce it). The critical section is a hash probe plus
// a list splice and a FlosResult copy (k entries), so contention is
// negligible next to even a warm-path network round trip.

#ifndef FLOS_CORE_QUERY_CACHE_H_
#define FLOS_CORE_QUERY_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "core/flos.h"
#include "graph/graph.h"
#include "measures/measure.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace flos {

/// LRU cache of certified FlosResults, shared by all engine sessions of a
/// server (thread-safe).
class QueryCache {
 public:
  /// Everything that determines a certified answer.
  struct Key {
    NodeId query = 0;
    Measure measure = Measure::kPhp;
    int k = 0;
    double c = 0;
    int tht_length = 0;
    uint64_t epoch = 0;
    /// LabelPredicate::Fingerprint() of the request's predicate (0 for
    /// unfiltered queries). A filtered answer is exact only relative to
    /// its predicate, so two requests with different predicates must
    /// never share an entry; the subgraph cache, by contrast, stays
    /// predicate-independent by design (see DESIGN.md "Filtered top-k").
    uint64_t predicate_fp = 0;

    friend bool operator==(const Key&, const Key&) = default;
  };

  /// Keeps at most `capacity` entries (0 disables the cache: every lookup
  /// misses, every insert is dropped).
  explicit QueryCache(size_t capacity) : capacity_(capacity) {}

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// On a hit copies the cached result into `*out`, marks it as a cache
  /// hit, and freshens the entry's LRU position. Counts hits/misses.
  bool Lookup(const Key& key, FlosResult* out) FLOS_EXCLUDES(mu_);

  /// Admits a certified result. Rejects (and counts) non-certified
  /// results; replaces an existing entry for the same key.
  void Insert(const Key& key, const FlosResult& result) FLOS_EXCLUDES(mu_);

  /// Drops every entry (counters are kept).
  void Clear() FLOS_EXCLUDES(mu_);

  size_t size() const FLOS_EXCLUDES(mu_);
  size_t capacity() const { return capacity_; }
  uint64_t hits() const FLOS_EXCLUDES(mu_);
  uint64_t misses() const FLOS_EXCLUDES(mu_);

  /// Test-only: overwrites the stored redundant epoch of the entry for
  /// `key`, desynchronizing it from the key it is filed under, so
  /// tests/query_cache_test.cc can prove the FLOS_AUDIT stale-epoch check
  /// fires. Returns false when the entry does not exist. Never call it
  /// from library or application code.
  bool CorruptEpochForTest(const Key& key, uint64_t stored_epoch)
      FLOS_EXCLUDES(mu_);

 private:
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };
  struct Entry {
    Key key;
    /// Redundant copy of key.epoch, audited on every hit.
    uint64_t stored_epoch = 0;
    FlosResult result;
  };

  size_t capacity_;
  mutable Mutex mu_;
  /// front = most recent
  std::list<Entry> entries_ FLOS_GUARDED_BY(mu_);
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_
      FLOS_GUARDED_BY(mu_);
  uint64_t hits_ FLOS_GUARDED_BY(mu_) = 0;
  uint64_t misses_ FLOS_GUARDED_BY(mu_) = 0;
};

}  // namespace flos

#endif  // FLOS_CORE_QUERY_CACHE_H_
