#include "core/flos.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "core/bound_engine.h"
#include "core/local_graph.h"
#include "core/tht_bound_engine.h"

namespace flos {

namespace {

// Internal ranking mode. PHP/EI/DHT rank by the PHP-form value; RWR ranks
// by w_i * value (Section 5.6); THT ranks by its own value, minimized.
enum class RankMode { kValue, kDegreeWeighted, kMinimizeValue };

RankMode RankModeFor(Measure m) {
  switch (m) {
    case Measure::kRwr:
      return RankMode::kDegreeWeighted;
    case Measure::kTht:
      return RankMode::kMinimizeValue;
    default:
      return RankMode::kValue;
  }
}

double AlphaFor(const FlosOptions& options) {
  // PHP uses its decay directly; EI/DHT/RWR reduce to a PHP system with
  // decay 1 - c (Theorems 2, 6).
  return options.measure == Measure::kPhp ? options.c : 1.0 - options.c;
}

// Shared state wrapper so PHP-form and THT engines expose uniform bounds.
class Bounds {
 public:
  Bounds(LocalGraph* local, const FlosOptions& options)
      : is_tht_(options.measure == Measure::kTht) {
    if (is_tht_) {
      tht_ = std::make_unique<ThtBoundEngine>(local, options.tht_length);
    } else {
      BoundEngineOptions be;
      be.alpha = AlphaFor(options);
      be.tolerance = options.tolerance;
      be.max_inner_iterations = options.max_inner_iterations;
      be.self_loop_tightening = options.self_loop_tightening;
      // Degree-weighted searches need the frontier bound for termination
      // anyway; folding it into the dummy value is then nearly free.
      be.frontier_dummy = options.measure == Measure::kRwr;
      php_ = std::make_unique<PhpBoundEngine>(local, be);
    }
  }

  void CaptureDummy() {
    if (php_) php_->CaptureDummyFromBoundary();
  }
  void OnGrowth() {
    if (php_) {
      php_->OnGrowth();
    } else {
      tht_->OnGrowth();
    }
  }
  uint32_t Update() {
    if (php_) return php_->UpdateBounds();
    tht_->UpdateBounds();
    return 1;
  }
  uint32_t Finalize(double final_tolerance) {
    if (php_) return php_->FinalizeExhausted(final_tolerance);
    tht_->UpdateBounds();  // DP is already exact once S is the component
    return 1;
  }
  double lower(LocalId i) const { return php_ ? php_->lower(i) : tht_->lower(i); }
  double upper(LocalId i) const { return php_ ? php_->upper(i) : tht_->upper(i); }
  PhpBoundEngine* php_engine() { return php_.get(); }

 private:
  bool is_tht_;
  std::unique_ptr<PhpBoundEngine> php_;
  std::unique_ptr<ThtBoundEngine> tht_;
};

// Tracks the maximum weighted degree among "unknown" nodes — neither
// visited nor adjacent to the visited set — using the accessor's
// descending degree order (Section 5.6). The cursor only advances, which
// is sound because membership in S and delta-S-bar only grows.
class UnknownDegreeTracker {
 public:
  explicit UnknownDegreeTracker(GraphAccessor* accessor)
      : accessor_(accessor) {}

  double MaxUnknownDegree(const LocalGraph& local) {
    const auto& order = accessor_->DegreeOrder();
    while (cursor_ < order.size() &&
           (local.Contains(order[cursor_]) ||
            local.IsOutsideAdjacent(order[cursor_]))) {
      ++cursor_;
    }
    if (cursor_ >= order.size()) return 0;
    return accessor_->WeightedDegree(order[cursor_]);
  }

 private:
  GraphAccessor* accessor_;
  size_t cursor_ = 0;
};

struct Candidate {
  LocalId local;
  double rank_lower;
  double rank_upper;
};

}  // namespace

Result<FlosResult> FlosTopKSet(GraphAccessor* accessor,
                               const std::vector<NodeId>& queries, int k,
                               const FlosOptions& options) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (!(options.c > 0) || !(options.c < 1)) {
    return Status::InvalidArgument("c must be in (0, 1)");
  }
  if (options.measure == Measure::kTht && options.tht_length < 1) {
    return Status::InvalidArgument("THT length must be >= 1");
  }
  if (queries.empty()) {
    return Status::InvalidArgument("need at least one query node");
  }
  if (queries.size() > 1 && (options.measure == Measure::kEi ||
                             options.measure == Measure::kRwr)) {
    return Status::InvalidArgument(
        "multi-source queries support the absorbing-set measures "
        "(PHP, DHT, THT); EI/RWR are defined per single source (Theorem 6)");
  }
  for (const NodeId q : queries) {
    if (q >= accessor->NumNodes()) {
      return Status::OutOfRange("query node out of range");
    }
  }

  const RankMode mode = RankModeFor(options.measure);
  const bool minimize = mode == RankMode::kMinimizeValue;

  LocalGraph local(accessor);
  FLOS_RETURN_IF_ERROR(local.Init(queries));
  Bounds bounds(&local, options);
  UnknownDegreeTracker degree_tracker(accessor);

  FlosResult result;
  FlosStats& stats = result.stats;

  // Rank value of node i given one of its bounds.
  const auto rank_of = [&](LocalId i, double value) {
    return mode == RankMode::kDegreeWeighted ? local.WeightedDegree(i) * value
                                             : value;
  };

  std::vector<Candidate> selected;  // current certified-or-not top-k

  // Termination check (Algorithm 6 + the RWR extension). Fills `selected`
  // with the current top-k interior candidates either way.
  const auto check_termination = [&]() -> bool {
    std::vector<Candidate> interior;
    interior.reserve(local.Size());
    for (LocalId i = 0; i < local.Size(); ++i) {
      if (local.IsQueryLocal(i) || local.IsBoundary(i)) continue;
      interior.push_back(
          {i, rank_of(i, bounds.lower(i)), rank_of(i, bounds.upper(i))});
    }
    if (interior.size() < static_cast<size_t>(k)) return false;
    // For maximize modes, pick k largest guaranteed (lower) rank values;
    // for minimize (THT), pick k smallest guaranteed (upper) values.
    const auto better = [&](const Candidate& a, const Candidate& b) {
      return minimize ? a.rank_upper < b.rank_upper : a.rank_lower > b.rank_lower;
    };
    std::nth_element(interior.begin(), interior.begin() + (k - 1),
                     interior.end(), better);
    selected.assign(interior.begin(), interior.begin() + k);
    // Threshold: worst guaranteed value inside K.
    double threshold = minimize ? -1e300 : 1e300;
    for (const Candidate& c : selected) {
      threshold = minimize ? std::max(threshold, c.rank_upper)
                           : std::min(threshold, c.rank_lower);
    }
    // Opponents: every other visited node's optimistic value.
    double best_other = minimize ? 1e300 : -1e300;
    for (size_t i = k; i < interior.size(); ++i) {
      best_other = minimize ? std::min(best_other, interior[i].rank_lower)
                            : std::max(best_other, interior[i].rank_upper);
    }
    for (LocalId i = 0; i < local.Size(); ++i) {
      if (local.IsQueryLocal(i) || !local.IsBoundary(i)) continue;
      const double opt = minimize ? rank_of(i, bounds.lower(i))
                                  : rank_of(i, bounds.upper(i));
      best_other = minimize ? std::min(best_other, opt)
                            : std::max(best_other, opt);
    }
    bool ok = minimize ? threshold <= best_other : threshold >= best_other;
#ifdef FLOS_DEBUG_TERMINATION
    std::fprintf(stderr, "[term] |S|=%u interior=%zu thr=%g other=%g ok=%d\n",
                 local.Size(), interior.size(), threshold, best_other, ok);
#endif
    if (!ok) return false;
    if (mode == RankMode::kDegreeWeighted) {
      // Unvisited nodes, refined beyond Section 5.6's w(unvisited) * max
      // boundary bound. Frontier-adjacent nodes (delta-S-bar) get
      // per-node certified uppers from the boundary's bounds and their
      // probed degrees; every deeper node is bounded by alpha * the
      // frontier maximum (its neighbors are all unvisited), with the
      // unknown-degree maximum from the global degree order:
      //
      //   w_v PHP(v) <= max( max_{v in dSbar} w_v r-bar_v,
      //                      maxdeg(unknown) * alpha * max_{dSbar} r-bar_v )
      const double alpha = 1.0 - options.c;
      const auto out = bounds.php_engine()->ComputeOutsideUppers();
      if (out.any) {
        const double w_unknown = degree_tracker.MaxUnknownDegree(local);
        const double unvisited_bound =
            std::max(out.max_degree_weighted,
                     w_unknown * alpha * out.max_value);
        if (threshold < unvisited_bound) return false;
      }
    }
    return true;
  };

  // Main loop (Algorithm 2, with optional batched LocalExpansion).
  bool certified = false;
  std::vector<std::pair<double, LocalId>> frontier;
  while (true) {
    // Rank the boundary by average bound (Algorithm 3); at t=1 the only
    // boundary node is the query itself.
    frontier.clear();
    for (LocalId i = 0; i < local.Size(); ++i) {
      if (!local.IsBoundary(i)) continue;
      const double mid = 0.5 * (bounds.lower(i) + bounds.upper(i));
      frontier.push_back({rank_of(i, mid), i});
    }
    if (frontier.empty()) {
      // Component exhausted: finish with a tight solve.
      stats.inner_iterations += bounds.Finalize(options.final_tolerance);
      stats.exhausted_component = true;
      certified = true;
      break;
    }
    std::sort(frontier.begin(), frontier.end(),
              [&](const auto& a, const auto& b) {
                return minimize ? a.first < b.first : a.first > b.first;
              });
    // Adaptive mode targets ~12.5% growth of |S| per bound update, so the
    // number of O(edges(S)) updates stays logarithmic in the visited count
    // while overshoot past the certification point stays small.
    const uint64_t grow_target =
        options.expansion_batch > 0
            ? 0
            : local.Size() + std::max<uint64_t>(1, local.Size() / 8);

    bounds.CaptureDummy();  // r_d from delta-S of the previous iteration
    size_t expanded = 0;
    for (const auto& [priority, node] : frontier) {
      (void)priority;
      FLOS_ASSIGN_OR_RETURN(const uint32_t added, local.Expand(node));
      (void)added;
      ++stats.expansions;
      ++expanded;
      if (options.expansion_batch > 0) {
        if (expanded >= options.expansion_batch) break;
      } else if (local.Size() >= grow_target) {
        break;
      }
      if (options.max_visited > 0 && local.Size() >= options.max_visited) {
        break;
      }
    }
    bounds.OnGrowth();
    stats.inner_iterations += bounds.Update();

    if (check_termination()) {
      certified = true;
      break;
    }
    if (options.max_visited > 0 && local.Size() >= options.max_visited) {
      break;  // best-effort cutoff
    }
  }
  stats.visited_nodes = local.Size();
  stats.exact = certified;

  // Assemble the k results. If termination selected candidates, use them;
  // otherwise (exhausted or cutoff) rank all visited non-query nodes.
  std::vector<Candidate> pool;
  if (certified && !stats.exhausted_component && !selected.empty()) {
    pool = selected;
  } else {
    for (LocalId i = 0; i < local.Size(); ++i) {
      if (local.IsQueryLocal(i)) continue;
      pool.push_back(
          {i, rank_of(i, bounds.lower(i)), rank_of(i, bounds.upper(i))});
    }
  }
  const auto mid_rank = [&](const Candidate& c) {
    return 0.5 * (c.rank_lower + c.rank_upper);
  };
  std::sort(pool.begin(), pool.end(), [&](const Candidate& a, const Candidate& b) {
    const double ma = mid_rank(a);
    const double mb = mid_rank(b);
    if (ma != mb) return minimize ? ma < mb : ma > mb;
    return local.GlobalId(a.local) < local.GlobalId(b.local);
  });
  if (pool.size() > static_cast<size_t>(k)) pool.resize(k);

  // Score transform from the internal space to the measure's units. For EI
  // and RWR the scale K = c / (w_q (1 - (1-c) sum_j p_qj PHP(j))) (Theorem
  // 6) is increasing in each PHP(j), so plugging the PHP bound endpoints of
  // q's neighbors (all visited after the first expansion) gives a rigorous
  // interval [scale_lo, scale_hi] enclosing the true K.
  double scale_lo = 1.0;
  double scale_hi = 1.0;
  if (options.measure == Measure::kEi || options.measure == Measure::kRwr) {
    const LocalId q_local = 0;  // single-source only (validated above)
    const double wq = local.WeightedDegree(q_local);
    double sigma_lo = 0;
    double sigma_hi = 0;
    if (wq > 0) {
      for (const Neighbor& nb : local.Neighbors(q_local)) {
        const LocalId j = local.LocalIndex(nb.id);
        // Every neighbor of q joins S at the first expansion, so j is
        // always valid here; the guard is belt-and-braces.
        sigma_lo += nb.weight / wq * (j == kInvalidLocal ? 0 : bounds.lower(j));
        sigma_hi += nb.weight / wq * (j == kInvalidLocal ? 0 : bounds.upper(j));
      }
      const double denom_lo = wq * (1.0 - (1.0 - options.c) * sigma_lo);
      const double denom_hi = wq * (1.0 - (1.0 - options.c) * sigma_hi);
      if (denom_lo > 0) scale_lo = options.c / denom_lo;
      scale_hi = denom_hi > 0 ? options.c / denom_hi
                              : options.c / (wq * options.c);  // <= c/(wq c)
    }
  }

  result.topk.reserve(pool.size());
  for (const Candidate& c : pool) {
    ScoredNode out;
    out.node = local.GlobalId(c.local);
    const double lo = bounds.lower(c.local);
    const double hi = bounds.upper(c.local);
    switch (options.measure) {
      case Measure::kPhp:
        out.lower = lo;
        out.upper = hi;
        break;
      case Measure::kEi:
        out.lower = scale_lo * lo;
        out.upper = scale_hi * hi;
        break;
      case Measure::kRwr: {
        const double w = local.WeightedDegree(c.local);
        out.lower = scale_lo * w * lo;
        out.upper = scale_hi * w * hi;
        break;
      }
      case Measure::kDht:
        // DHT = (1 - PHP)/c, decreasing: bounds swap.
        out.lower = (1.0 - hi) / options.c;
        out.upper = (1.0 - lo) / options.c;
        break;
      case Measure::kTht:
        out.lower = lo;
        out.upper = hi;
        break;
    }
    out.score = 0.5 * (out.lower + out.upper);
    result.topk.push_back(out);
  }
  return result;
}

Result<FlosResult> FlosTopK(GraphAccessor* accessor, NodeId query, int k,
                            const FlosOptions& options) {
  return FlosTopKSet(accessor, {query}, k, options);
}

Result<FlosResult> FlosTopK(const Graph& graph, NodeId query, int k,
                            const FlosOptions& options) {
  InMemoryAccessor accessor(&graph);
  return FlosTopK(&accessor, query, k, options);
}

Result<FlosResult> FlosTopKSet(const Graph& graph,
                               const std::vector<NodeId>& queries, int k,
                               const FlosOptions& options) {
  InMemoryAccessor accessor(&graph);
  return FlosTopKSet(&accessor, queries, k, options);
}

Result<BoundTrace> TraceFlosBounds(const Graph& graph, NodeId query, double c,
                                   bool self_loop_tightening,
                                   uint32_t max_iterations) {
  if (query >= graph.NumNodes()) {
    return Status::OutOfRange("query node out of range");
  }
  InMemoryAccessor accessor(&graph);
  LocalGraph local(&accessor);
  FLOS_RETURN_IF_ERROR(local.Init(query));
  BoundEngineOptions be;
  be.alpha = c;
  be.tolerance = 1e-12;
  be.self_loop_tightening = self_loop_tightening;
  // The trace reproduces the paper's Figure 4 verbatim, so the dummy value
  // follows Algorithm 5 line 7 without this library's extra tightenings.
  be.alpha_dummy_tightening = false;
  PhpBoundEngine engine(&local, be);

  BoundTrace trace;
  for (uint32_t t = 0; t < max_iterations; ++t) {
    LocalId best = kInvalidLocal;
    double best_score = -1;
    for (LocalId i = 0; i < local.Size(); ++i) {
      if (!local.IsBoundary(i)) continue;
      const double mid = 0.5 * (engine.lower(i) + engine.upper(i));
      if (mid > best_score) {
        best = i;
        best_score = mid;
      }
    }
    if (best == kInvalidLocal) break;
    engine.CaptureDummyFromBoundary();
    FLOS_ASSIGN_OR_RETURN(const uint32_t added, local.Expand(best));
    (void)added;
    engine.OnGrowth();
    engine.UpdateBounds();

    BoundTrace::Iteration snap;
    for (LocalId i = 0; i < local.Size(); ++i) {
      snap.nodes.push_back(local.GlobalId(i));
      snap.lower.push_back(engine.lower(i));
      snap.upper.push_back(engine.upper(i));
    }
    snap.dummy_value = engine.dummy_value();
    trace.iterations.push_back(std::move(snap));
  }
  return trace;
}

}  // namespace flos
