#include "core/flos.h"

#include "core/flos_engine.h"
#include "core/local_graph.h"
#include "core/unified_bound_engine.h"

namespace flos {

// The search itself lives in FlosEngine (core/flos_engine.h), which keeps
// a reusable per-worker workspace. These wrappers preserve the original
// one-shot API by running each call through a throwaway engine; services
// answering many queries should hold a FlosEngine (or use BatchTopK).

Result<FlosResult> FlosTopKSet(GraphAccessor* accessor,
                               const std::vector<NodeId>& queries, int k,
                               const FlosOptions& options) {
  FlosEngine engine(accessor);
  return engine.TopKSet(queries, k, options);
}

Result<FlosResult> FlosTopK(GraphAccessor* accessor, NodeId query, int k,
                            const FlosOptions& options) {
  return FlosTopKSet(accessor, {query}, k, options);
}

Result<FlosResult> FlosTopK(const Graph& graph, NodeId query, int k,
                            const FlosOptions& options) {
  InMemoryAccessor accessor(&graph);
  return FlosTopK(&accessor, query, k, options);
}

Result<FlosResult> FlosTopKSet(const Graph& graph,
                               const std::vector<NodeId>& queries, int k,
                               const FlosOptions& options) {
  InMemoryAccessor accessor(&graph);
  return FlosTopKSet(&accessor, queries, k, options);
}

Result<BoundTrace> TraceFlosBounds(const Graph& graph, NodeId query, double c,
                                   bool self_loop_tightening,
                                   uint32_t max_iterations) {
  if (query >= graph.NumNodes()) {
    return Status::OutOfRange("query node out of range");
  }
  InMemoryAccessor accessor(&graph);
  LocalGraph local(&accessor);
  FLOS_RETURN_IF_ERROR(local.Init(query));
  UnifiedBoundOptions be;
  be.traits.family = BoundFamily::kFixedPoint;
  be.traits.alpha = c;
  be.tolerance = 1e-12;
  be.self_loop_tightening = self_loop_tightening;
  // The trace reproduces the paper's Figure 4 verbatim, so the dummy value
  // follows Algorithm 5 line 7 without this library's extra tightenings.
  be.alpha_dummy_tightening = false;
  UnifiedBoundEngine engine(&local, be);

  BoundTrace trace;
  for (uint32_t t = 0; t < max_iterations; ++t) {
    LocalId best = kInvalidLocal;
    double best_score = -1;
    for (LocalId i = 0; i < local.Size(); ++i) {
      if (!local.IsBoundary(i)) continue;
      const double mid = 0.5 * (engine.lower(i) + engine.upper(i));
      if (mid > best_score) {
        best = i;
        best_score = mid;
      }
    }
    if (best == kInvalidLocal) break;
    engine.CaptureDummyFromBoundary();
    FLOS_ASSIGN_OR_RETURN(const uint32_t added, local.Expand(best));
    (void)added;
    engine.OnGrowth();
    engine.UpdateBounds();

    BoundTrace::Iteration snap;
    for (LocalId i = 0; i < local.Size(); ++i) {
      snap.nodes.push_back(local.GlobalId(i));
      snap.lower.push_back(engine.lower(i));
      snap.upper.push_back(engine.upper(i));
    }
    snap.dummy_value = engine.dummy_value();
    trace.iterations.push_back(std::move(snap));
  }
  return trace;
}

}  // namespace flos
