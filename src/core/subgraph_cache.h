// Warm-subgraph cache: expanded local subgraphs + converged bounds.
//
// The second tier of the serving cache hierarchy. The first tier
// (core/query_cache.h) stores certified RESULTS — a hit answers in
// microseconds but only for an exact (query, measure, k, c, L) repeat.
// This tier stores the expensive intermediate a cold certified query
// spends most of its milliseconds producing: the expanded LocalGraph
// around a seed and the converged bound vector over it. A result-cache
// miss on a warm seed then skips expansion entirely and RESUMES sweeping
// from the cached bounds — usually certifying immediately, since the
// cached state was tight enough to certify once before.
//
// Keying: a snapshot depends only on the seed, the internal fixed point
// the bounds solve, and the topology:
//
//     (seed, bound family, alpha, horizon, graph epoch)
//
// NOT on k or the rank mode — so one snapshot serves k=10 and k=50, and
// PHP at c shares entries with EI/DHT at 1-c (identical fixed point,
// BoundTraitsFor maps both to kFixedPoint with the same alpha) and with
// RWR at the same alpha (the degree-weighted RANKING differs, the bound
// system does not). kHorizonDp snapshots key on the horizon instead of
// alpha.
//
// Invalidation contract: exact and epoch-based, identical to QueryCache —
// the key carries GraphAccessor::Epoch, so a snapshot expanded against an
// older topology can never match a current lookup; stale entries age out
// through the LRU. Each entry stores its epoch redundantly and a hit
// cross-checks it under FLOS_AUDIT ("subgraph cache serving a stale graph
// epoch"), turning a keying bug into a crash instead of bounds computed on
// a phantom topology.
//
// Soundness of resuming: every cached quantity is a certified fact about
// (seed, family, alpha/horizon, epoch) alone. The bounds are certified
// intervals for the fixed point on the cached visited set; the dummies are
// certified dominators of the unvisited values; growth and further sweeps
// from that state are exactly the monotone continuation the engine would
// have performed had it never stopped. Options that change the system
// itself (tolerance tightenings, self-loop constructions) are fixed per
// server — the same assumption QueryCache documents.
//
// Snapshots are immutable once inserted and handed out as
// shared_ptr<const>, so a reader never blocks an evictor: the LRU can drop
// an entry while an engine is still restoring from it. Thread-safe: one
// mutex guards the map + LRU list (a leaf lock in the concurrency
// contract — see DESIGN.md; FLOS_GUARDED_BY makes the compiler enforce
// it); the critical section is a hash probe plus a shared_ptr copy.

#ifndef FLOS_CORE_SUBGRAPH_CACHE_H_
#define FLOS_CORE_SUBGRAPH_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/local_graph.h"
#include "core/measure_traits.h"
#include "graph/graph.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace flos {

/// One cached warm subgraph: the expanded LocalGraph state plus the
/// converged bound vector and dummy values over it. Immutable after
/// insertion (shared across sessions by const pointer).
struct SubgraphSnapshot {
  LocalGraphSnapshot local;
  /// Interleaved (lower, upper) per LocalId; 2 * local.Size() doubles.
  std::vector<double> bounds;
  double dummy_mesh = 1.0;
  double dummy_tight = 1.0;
};

/// LRU cache of warm subgraphs, shared by all engine sessions of a server
/// (thread-safe).
class SubgraphCache {
 public:
  /// Everything that determines a snapshot's validity (see file comment:
  /// deliberately independent of k and rank mode).
  struct Key {
    NodeId seed = 0;
    BoundFamily family = BoundFamily::kFixedPoint;
    /// Fixed-point alpha; 0.0 for the horizon-DP family.
    double alpha = 0;
    /// DP horizon L; 0 for the fixed-point family.
    int horizon = 0;
    uint64_t epoch = 0;

    friend bool operator==(const Key&, const Key&) = default;
  };

  /// Builds the key for a seed under measure traits at the current epoch.
  static Key MakeKey(NodeId seed, const BoundTraits& traits, uint64_t epoch) {
    Key key;
    key.seed = seed;
    key.family = traits.family;
    key.alpha = traits.family == BoundFamily::kFixedPoint ? traits.alpha : 0.0;
    key.horizon = traits.family == BoundFamily::kHorizonDp ? traits.horizon : 0;
    key.epoch = epoch;
    return key;
  }

  /// Keeps at most `capacity` entries (0 disables the cache: every lookup
  /// misses, every insert is dropped).
  explicit SubgraphCache(size_t capacity) : capacity_(capacity) {}

  SubgraphCache(const SubgraphCache&) = delete;
  SubgraphCache& operator=(const SubgraphCache&) = delete;

  /// On a hit returns the immutable snapshot and freshens the entry's LRU
  /// position; nullptr on a miss. Counts hits/misses.
  std::shared_ptr<const SubgraphSnapshot> Lookup(const Key& key)
      FLOS_EXCLUDES(mu_);

  /// Admits a snapshot (replaces an existing entry for the same key).
  void Insert(const Key& key, std::shared_ptr<const SubgraphSnapshot> snap)
      FLOS_EXCLUDES(mu_);

  /// Drops every entry (counters are kept).
  void Clear() FLOS_EXCLUDES(mu_);

  size_t size() const FLOS_EXCLUDES(mu_);
  size_t capacity() const { return capacity_; }
  uint64_t hits() const FLOS_EXCLUDES(mu_);
  uint64_t misses() const FLOS_EXCLUDES(mu_);

  /// Test-only: overwrites the stored redundant epoch of the entry for
  /// `key`, desynchronizing it from the key it is filed under, so
  /// tests/subgraph_cache_test.cc can prove the FLOS_AUDIT stale-epoch
  /// check fires. Returns false when the entry does not exist. Never call
  /// it from library or application code.
  bool CorruptEpochForTest(const Key& key, uint64_t stored_epoch)
      FLOS_EXCLUDES(mu_);

 private:
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };
  struct Entry {
    Key key;
    /// Redundant copy of key.epoch, audited on every hit.
    uint64_t stored_epoch = 0;
    std::shared_ptr<const SubgraphSnapshot> snap;
  };

  size_t capacity_;
  mutable Mutex mu_;
  /// front = most recent
  std::list<Entry> entries_ FLOS_GUARDED_BY(mu_);
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_
      FLOS_GUARDED_BY(mu_);
  uint64_t hits_ FLOS_GUARDED_BY(mu_) = 0;
  uint64_t misses_ FLOS_GUARDED_BY(mu_) = 0;
};

}  // namespace flos

#endif  // FLOS_CORE_SUBGRAPH_CACHE_H_
