// Bound engine for L-truncated hitting time (THT), the one measure whose
// defining recursion is a finite-horizon dynamic program rather than a
// fixed point (Appendix 10.4).
//
// Both bounds are exact L-step DP solves of modified systems on the visited
// subgraph:
//   lower (optimistic, smaller): walks leaving S land on an unvisited node,
//     whose truncated hitting time is at least min(remaining horizon,
//     hop-distance lower bound of the unvisited region) — the plain
//     transition-deletion bound (0 continuation) is also valid but can
//     never certify termination, because it makes every boundary node look
//     one step from the query;
//   upper (pessimistic): walks leaving S at horizon t contribute the maximal
//     remaining time t - 1 (dummy node with value min(t-1, L), the largest
//     possible horizon-(t-1) THT).
// Because the DP is exact (no iterative tolerance), no certificates are
// needed. Bounds tighten monotonically as S grows and coincide with the
// exact THT once the L-hop ball around the query is inside S.
//
// Each DP step is one fused scan of the flat local CSR
// (core/sweep_kernel.h) computing both bounds' dot products together; the
// step-(t-1) values appear on the right-hand side, so the horizon
// recursion keeps its Jacobi double buffer (in-place Gauss–Seidel would
// mix horizons and is NOT valid here, unlike the monotone fixed-point
// systems in core/bound_engine.h).

#ifndef FLOS_CORE_THT_BOUND_ENGINE_H_
#define FLOS_CORE_THT_BOUND_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "core/local_graph.h"

namespace flos {

/// Maintains THT lower/upper bounds on the visited subgraph.
class ThtBoundEngine {
 public:
  /// `local` must outlive the engine. `length` is the truncation L >= 1.
  ThtBoundEngine(LocalGraph* local, int length);

  /// Returns the engine to its freshly-constructed state for the next
  /// query (after the LocalGraph was Reset+Init'd), with a new truncation
  /// length and an optional anytime deadline. Keeps every buffer's
  /// capacity.
  void Reset(int length,
             std::chrono::steady_clock::time_point deadline =
                 std::chrono::steady_clock::time_point::max());

  /// Resizes state after LocalGraph growth (new nodes: lower 0, upper L).
  void OnGrowth();

  /// Recomputes both bounds with a fresh L-step DP over S. Cost
  /// O(L * edges(S)). If the deadline passes mid-DP the recompute is
  /// abandoned WITHOUT committing (a partial horizon recursion is not a
  /// valid THT bound); the previous bounds — certified for the smaller S
  /// and still valid under growth-monotone tightening — stay in place, and
  /// deadline_hit() reports the interruption.
  void UpdateBounds();

  double lower(LocalId i) const { return lower_[i]; }
  double upper(LocalId i) const { return upper_[i]; }
  int length() const { return length_; }

  /// True iff the most recent UpdateBounds was abandoned on the deadline.
  bool deadline_hit() const { return deadline_hit_; }

 private:
  LocalGraph* local_;
  int length_;
  std::chrono::steady_clock::time_point deadline_ =
      std::chrono::steady_clock::time_point::max();
  bool deadline_hit_ = false;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> work_lo_;
  std::vector<double> work_hi_;
  std::vector<double> next_lo_;
  std::vector<double> next_hi_;
};

}  // namespace flos

#endif  // FLOS_CORE_THT_BOUND_ENGINE_H_
