#include "core/tht_bound_engine.h"

#include <algorithm>

#include "core/sweep_kernel.h"
#include "util/check.h"

namespace flos {

ThtBoundEngine::ThtBoundEngine(LocalGraph* local, int length)
    : local_(local) {
  Reset(length);
}

void ThtBoundEngine::Reset(int length,
                           std::chrono::steady_clock::time_point deadline) {
  length_ = length;
  deadline_ = deadline;
  deadline_hit_ = false;
  lower_.clear();
  upper_.clear();
  OnGrowth();
}

void ThtBoundEngine::OnGrowth() {
  const uint32_t n = local_->Size();
  lower_.resize(n, 0.0);
  upper_.resize(n, static_cast<double>(length_));
  for (LocalId q = 0; q < local_->query_count(); ++q) {
    lower_[q] = 0.0;
    upper_[q] = 0.0;
  }
}

void ThtBoundEngine::UpdateBounds() {
  const uint32_t n = local_->Size();
  const bool has_deadline =
      deadline_ != std::chrono::steady_clock::time_point::max();
  deadline_hit_ = false;
  work_lo_.assign(n, 0.0);
  work_hi_.assign(n, 0.0);
  next_lo_.assign(n, 0.0);
  next_hi_.assign(n, 0.0);

  // Escaped-mass continuations. Upper: an escaped walker can take at most
  // the full remaining horizon. Lower: an escaped walker sits on an
  // unvisited node, whose hop distance to q is at least
  // UnvisitedHopLowerBound(), so its remaining truncated hitting time is at
  // least min(horizon, that distance) — this is what lets the termination
  // test fire once the boundary has receded past the top-k's values.
  const double unvisited_hops =
      std::min<double>(length_, local_->UnvisitedHopLowerBound());

  // The horizon recursion needs the step-(t-1) values on the right-hand
  // side, so the DP stays a Jacobi double buffer — but each step is ONE
  // fused scan of the local CSR computing both bound dot products, and the
  // out-of-S transition mass comes from the maintained row in-mass (no
  // per-update O(edges) rescans). Degree-0 nodes can never hit q; their
  // value saturates at L.
  for (int t = 1; t <= length_; ++t) {
    // Anytime hook: the horizon recursion is only a valid THT bound once
    // all L steps ran, so an expired deadline abandons the recompute and
    // keeps the previous (smaller-S, still certified) bounds instead.
    if (has_deadline && t > 1 &&
        std::chrono::steady_clock::now() >= deadline_) {
      deadline_hit_ = true;
      return;
    }
    const double horizon = t - 1;  // max THT value at horizon t-1 (<= L)
    const double escaped_lo = std::min(horizon, unvisited_hops);
    FusedRowSweep(*local_, work_lo_.data(), work_hi_.data(),
                  [&](LocalId i, double s_lo, double s_hi) {
                    if (local_->IsQueryLocal(i)) {
                      next_lo_[i] = 0;
                      next_hi_[i] = 0;
                      return;
                    }
                    if (local_->WeightedDegree(i) <= 0) {
                      next_lo_[i] = length_;
                      next_hi_[i] = length_;
                      return;
                    }
                    const double out =
                        std::max(0.0, 1.0 - local_->RowInMass(i));
                    next_lo_[i] = 1.0 + s_lo + out * escaped_lo;
                    next_hi_[i] = 1.0 + s_hi + out * horizon;
                  });
    work_lo_.swap(next_lo_);
    work_hi_.swap(next_hi_);
    FLOS_AUDIT_SCOPE {
      // Every DP step must preserve the sandwich: the escaped-mass
      // continuations satisfy escaped_lo <= horizon and the fused dot
      // products are computed over lo <= hi inputs with non-negative
      // weights, so work_lo <= work_hi holds exactly, step by step.
      for (LocalId i = 0; i < n; ++i) {
        FLOS_CHECK_LE(work_lo_[i], work_hi_[i],
                      "THT DP step broke the sandwich");
      }
    }
  }

  // Monotone clamps: previous bounds stay valid as S only grows.
  for (LocalId i = 0; i < n; ++i) {
    const double prev_lo = lower_[i];
    const double prev_hi = upper_[i];
    lower_[i] = std::max(lower_[i], work_lo_[i]);
    upper_[i] = std::min(upper_[i], work_hi_[i]);
    // The clamps make cross-update monotonicity exact. The clamped
    // interval intersects two independently-rounded certified intervals,
    // so the non-emptiness check allows rounding-scale slack (values are
    // O(length_), per-step errors are O(1e-15)).
    FLOS_AUDIT_GE(lower_[i], prev_lo, "THT lower bound loosened");
    FLOS_AUDIT_LE(upper_[i], prev_hi, "THT upper bound loosened");
    FLOS_AUDIT_LE(lower_[i], upper_[i] + 1e-9 * length_,
                  "THT bounds crossed after clamp");
  }
}

}  // namespace flos
