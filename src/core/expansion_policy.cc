#include "core/expansion_policy.h"

#include <algorithm>

namespace flos {

namespace {

class BestFirstPolicy final : public ExpansionPolicy {
 public:
  const char* name() const override { return "best_first"; }

  double Priority(double rank_lower, double rank_upper,
                  const ExpansionContext& context) const override {
    // Algorithm 3: rank the boundary by the interval midpoint; for
    // minimize measures a smaller midpoint means closer, so negate.
    const double mid = 0.5 * (rank_lower + rank_upper);
    return context.minimize ? -mid : mid;
  }
};

class BoundGapGreedyPolicy final : public ExpansionPolicy {
 public:
  const char* name() const override { return "bound_gap_greedy"; }

  double Priority(double rank_lower, double rank_upper,
                  const ExpansionContext& context) const override {
    // Certification waits on the gap between the k-th guaranteed rank and
    // the best optimistic rank outside the top-k. A boundary node whose
    // interval straddles that threshold is exactly what keeps the gap
    // open, and its width bounds how much one expansion can tighten the
    // decision — so score by width, discounted by how far the interval
    // sits from the contested band. Without a threshold yet (early
    // iterations), plain width is the expected-tightening proxy.
    const double width = rank_upper - rank_lower;
    if (!context.has_threshold) return width;
    double distance = 0;
    if (rank_lower > context.threshold) {
      distance = rank_lower - context.threshold;  // safely above the bar
    } else if (rank_upper < context.threshold) {
      distance = context.threshold - rank_upper;  // safely below the bar
    }
    return width - distance;
  }
};

}  // namespace

const ExpansionPolicy* GetExpansionPolicy(ExpansionPolicyKind kind) {
  static const BestFirstPolicy kBestFirst;
  static const BoundGapGreedyPolicy kBoundGapGreedy;
  switch (kind) {
    case ExpansionPolicyKind::kBoundGapGreedy:
      return &kBoundGapGreedy;
    case ExpansionPolicyKind::kBestFirst:
      break;
  }
  return &kBestFirst;
}

const char* ExpansionPolicyKindName(ExpansionPolicyKind kind) {
  switch (kind) {
    case ExpansionPolicyKind::kBestFirst:
      return "best_first";
    case ExpansionPolicyKind::kBoundGapGreedy:
      return "bound_gap_greedy";
  }
  return "unknown";
}

}  // namespace flos
