#include "core/local_graph.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <string>

namespace flos {

namespace {
constexpr uint32_t kUnreachable = std::numeric_limits<uint32_t>::max() - 1;
}  // namespace

Status LocalGraph::Init(NodeId query) {
  return Init(std::vector<NodeId>{query});
}

Status LocalGraph::Init(const std::vector<NodeId>& queries) {
  if (query_ != kInvalidNode) {
    return Status::FailedPrecondition("LocalGraph already initialized");
  }
  if (queries.empty()) {
    return Status::InvalidArgument("need at least one query node");
  }
  for (const NodeId q : queries) {
    if (q >= accessor_->NumNodes()) {
      return Status::OutOfRange("query node out of range");
    }
    if (Contains(q)) {
      return Status::InvalidArgument("duplicate query node " +
                                     std::to_string(q));
    }
    ++query_count_;  // before Add so hop distances see the seed as a source
    FLOS_RETURN_IF_ERROR(Add(q));
  }
  query_ = queries.front();
  return Status::OK();
}

Status LocalGraph::Add(NodeId global) {
  const auto local = static_cast<LocalId>(local_to_global_.size());
  global_to_local_.emplace(global, local);
  local_to_global_.push_back(global);
  in_dirty_.push_back(true);
  dirty_.push_back(local);

  FLOS_RETURN_IF_ERROR(accessor_->CopyNeighbors(global, &scratch_));
  double wi = 0;
  for (const Neighbor& nb : scratch_) wi += nb.weight;
  weighted_degree_.push_back(wi);
  degree_cache_[global] = wi;

  // Build this node's within-S row and patch existing rows/boundary counts.
  std::vector<std::pair<LocalId, double>> row;
  uint32_t outside = 0;
  for (const Neighbor& nb : scratch_) {
    const auto it = global_to_local_.find(nb.id);
    if (it == global_to_local_.end()) {
      ++outside;
      continue;
    }
    const LocalId j = it->second;
    if (wi > 0) row.emplace_back(j, nb.weight / wi);
    // Reverse direction: j gains an in-S neighbor.
    if (weighted_degree_[j] > 0) {
      rows_[j].emplace_back(local, nb.weight / weighted_degree_[j]);
    }
    --outside_count_[j];
    if (!in_dirty_[j]) {
      in_dirty_[j] = true;
      dirty_.push_back(j);
    }
  }
  rows_.push_back(std::move(row));
  outside_count_.push_back(outside);

  // Maintain delta-S-bar (unvisited nodes adjacent to S) with probed
  // degrees, feeding MaxOutsideAdjacentDegree.
  outside_adjacent_.erase(global);
  for (const Neighbor& nb : neighbors_.emplace_back(std::move(scratch_))) {
    if (global_to_local_.count(nb.id)) continue;
    if (outside_adjacent_.insert(nb.id).second) {
      outside_degree_heap_.emplace_back(ProbeDegree(nb.id), nb.id);
      std::push_heap(outside_degree_heap_.begin(),
                     outside_degree_heap_.end());
    }
  }
  scratch_ = {};

  // Within-S hop distances: initialize from visited neighbors, then relax
  // decreases through existing rows (new edges can create shortcuts).
  // Query (source) nodes are distance 0.
  uint32_t d = local < query_count_ ? 0 : kUnreachable;
  for (const auto& [j, p] : rows_[local]) {
    (void)p;
    d = std::min(d, hop_dist_[j] == kUnreachable ? kUnreachable
                                                 : hop_dist_[j] + 1);
  }
  hop_dist_.push_back(d);
  std::deque<LocalId> relax = {local};
  while (!relax.empty()) {
    const LocalId u = relax.front();
    relax.pop_front();
    if (hop_dist_[u] == kUnreachable) continue;
    for (const auto& [j, p] : rows_[u]) {
      (void)p;
      if (hop_dist_[u] + 1 < hop_dist_[j]) {
        hop_dist_[j] = hop_dist_[u] + 1;
        relax.push_back(j);
      }
    }
  }
  return Status::OK();
}

double LocalGraph::MaxOutsideAdjacentDegree() {
  while (!outside_degree_heap_.empty()) {
    const NodeId top = outside_degree_heap_.front().second;
    if (!global_to_local_.count(top)) {
      return outside_degree_heap_.front().first;
    }
    std::pop_heap(outside_degree_heap_.begin(), outside_degree_heap_.end());
    outside_degree_heap_.pop_back();
  }
  return 0;
}

uint32_t LocalGraph::UnvisitedHopLowerBound() const {
  uint32_t best = kUnreachable;
  for (LocalId i = 0; i < Size(); ++i) {
    if (outside_count_[i] > 0) best = std::min(best, hop_dist_[i]);
  }
  return best == kUnreachable ? kUnreachable : best + 1;
}

Result<uint32_t> LocalGraph::Expand(LocalId u) {
  if (u >= Size()) {
    return Status::OutOfRange("local id out of range in Expand");
  }
  uint32_t added = 0;
  // Iterate by index: Add() grows neighbors_, but u's own list is stable
  // because vectors of vectors only reallocate the outer spine; take a copy
  // of the ids to be safe against outer reallocation.
  std::vector<NodeId> to_add;
  for (const Neighbor& nb : neighbors_[u]) {
    if (!Contains(nb.id)) to_add.push_back(nb.id);
  }
  for (const NodeId v : to_add) {
    if (Contains(v)) continue;  // may have been added via an earlier sibling
    FLOS_RETURN_IF_ERROR(Add(v));
    ++added;
  }
  return added;
}

bool LocalGraph::Exhausted() const {
  for (const uint32_t c : outside_count_) {
    if (c > 0) return false;
  }
  return true;
}

std::vector<LocalId> LocalGraph::TakeDirtyNodes() {
  std::vector<LocalId> out;
  out.swap(dirty_);
  for (const LocalId i : out) in_dirty_[i] = false;
  return out;
}

double LocalGraph::ProbeDegree(NodeId global) {
  const auto it = degree_cache_.find(global);
  if (it != degree_cache_.end()) return it->second;
  const double w = accessor_->WeightedDegree(global);
  degree_cache_.emplace(global, w);
  return w;
}

}  // namespace flos
