#include "core/local_graph.h"

#include <algorithm>
#include <limits>
#include <string>

namespace flos {

namespace {
constexpr uint32_t kUnreachable = std::numeric_limits<uint32_t>::max() - 1;
/// Smallest row slab (entries). Rows double from here, so a row of final
/// length L occupies at most 2L arena entries and is copied O(L) times
/// total across all growths.
constexpr uint32_t kMinSlab = 4;
}  // namespace

LocalGraph::LocalGraph(GraphAccessor* accessor) : accessor_(accessor) {
  const bool dense = accessor->DenseIndexHint();
  const uint64_t n = accessor->NumNodes();
  global_to_local_.Configure(n, dense);
  degree_cache_.Configure(n, dense);
  ever_adjacent_.Configure(n, dense);
}

void LocalGraph::Reset() {
  query_ = kInvalidNode;
  query_count_ = 0;
  global_to_local_.Reset();
  degree_cache_.Reset();
  ever_adjacent_.Reset();
  local_to_global_.clear();
  weighted_degree_.clear();
  hidden_mass_.clear();
  truncated_seen_ = false;
  outside_count_.clear();
  boundary_count_ = 0;
  arena_used_ = 0;  // rewind the bump pointer; arena capacity is kept
  row_start_.clear();
  row_len_.clear();
  row_cap_.clear();
  row_in_mass_.clear();
  dirty_.clear();
  dirty_out_.clear();
  in_dirty_.clear();
  hop_dist_.clear();
  outside_degree_heap_.clear();
  heap_compact_size_ = 0;
  // neighbors_ keeps its high-water slots (and the slots their buffers);
  // Size() gates which entries are live.
}

Status LocalGraph::Init(NodeId query) {
  return Init(std::vector<NodeId>{query});
}

Status LocalGraph::Init(const std::vector<NodeId>& queries) {
  if (query_ != kInvalidNode) {
    return Status::FailedPrecondition(
        "LocalGraph already initialized (call Reset between queries)");
  }
  if (queries.empty()) {
    return Status::InvalidArgument("need at least one query node");
  }
  for (const NodeId q : queries) {
    if (q >= accessor_->NumNodes()) {
      return Status::OutOfRange("query node out of range");
    }
    if (Contains(q)) {
      return Status::InvalidArgument("duplicate query node " +
                                     std::to_string(q));
    }
    ++query_count_;  // before Add so hop distances see the seed as a source
    FLOS_RETURN_IF_ERROR(Add(q));
  }
  query_ = queries.front();
  heap_compact_size_ = Size();
  FLOS_AUDIT_SCOPE { AuditBookkeeping(); }
  return Status::OK();
}

void LocalGraph::AuditBookkeeping() const {
  const uint32_t n = Size();
  uint32_t boundary = 0;
  for (LocalId i = 0; i < n; ++i) {
    // Ground-truth outside count: re-resolve every stored neighbor's
    // visited status against the index.
    uint32_t outside = 0;
    for (const Neighbor& nb : neighbors_[i]) {
      if (!Contains(nb.id)) ++outside;
    }
    if (hidden_mass_[i] > 0) ++outside;  // the phantom hidden neighbor
    FLOS_CHECK_EQ(outside_count_[i], outside,
                  "maintained outside count diverged from neighbor lists");
    if (outside > 0) ++boundary;

    // Row spine sanity: the slab must lie inside the arena's used prefix.
    FLOS_CHECK_LE(row_len_[i], row_cap_[i], "row length exceeds slab");
    FLOS_CHECK_LE(static_cast<uint64_t>(row_start_[i]) + row_cap_[i],
                  static_cast<uint64_t>(arena_used_),
                  "row slab extends past the arena bump pointer");

    // RowInMass is documented bitwise-equal to summing the row in append
    // order (GrowRow preserves entry order), so compare EXACTLY: any
    // difference means an append bypassed the incremental accumulator.
    const LocalRow row = Row(i);
    double mass = 0;
    for (uint32_t e = 0; e < row.len; ++e) {
      FLOS_CHECK(row.idx[e] < n, "row entry references an unvisited node");
      mass += row.weight[e];
    }
    FLOS_CHECK_EQ(RowInMass(i), mass,
                  "maintained row in-mass diverged from the stored row");
  }
  FLOS_CHECK_EQ(BoundaryCount(), boundary,
                "maintained boundary count diverged from ground truth");
}

void LocalGraph::GrowRow(LocalId i, uint32_t min_cap) {
  uint32_t cap = std::max(kMinSlab, row_cap_[i] * 2);
  while (cap < min_cap) cap *= 2;
  const uint32_t start = arena_used_;
  arena_used_ += cap;
  if (arena_idx_.size() < arena_used_) {
    arena_idx_.resize(arena_used_);
    arena_weight_.resize(arena_used_);
  }
  const uint32_t old_start = row_start_[i];
  const uint32_t len = row_len_[i];
  // The old slab becomes garbage until the next Reset; doubling bounds the
  // total abandoned space by the live space.
  std::copy_n(arena_idx_.begin() + old_start, len, arena_idx_.begin() + start);
  std::copy_n(arena_weight_.begin() + old_start, len,
              arena_weight_.begin() + start);
  row_start_[i] = start;
  row_cap_[i] = cap;
}

void LocalGraph::RowAppend(LocalId i, LocalId j, double p) {
  FLOS_DCHECK(p >= 0.0, "transition probabilities are non-negative");
  if (row_len_[i] == row_cap_[i]) GrowRow(i, row_len_[i] + 1);
  FLOS_DCHECK(row_len_[i] < row_cap_[i], "GrowRow left the row full");
  const uint32_t at = row_start_[i] + row_len_[i];
  arena_idx_[at] = j;
  arena_weight_[at] = p;
  ++row_len_[i];
  row_in_mass_[i] += p;
}

Status LocalGraph::Add(NodeId global) {
  const auto local = static_cast<LocalId>(local_to_global_.size());
  global_to_local_.Insert(global, local);
  local_to_global_.push_back(global);
  in_dirty_.push_back(true);
  dirty_.push_back(local);

  FLOS_RETURN_IF_ERROR(accessor_->CopyNeighbors(global, &scratch_));
  // The degree comes from the accessor, NOT from summing the fetched list:
  // on truncated rows (a ShardAccessor's halo fringe) the fetched sum is
  // short, and normalizing transitions by it would overweight the visible
  // edges (RowInMass -> 1) and silently delete the escaping mass the upper
  // bounds must route to the dummy node. On complete rows the accessor
  // degree IS the fetched sum in the same accumulation order, so
  // whole-graph behavior is unchanged. Hidden mass below the shard map
  // degree sidecar's own round-trip tolerance (ReadShardGraph's 1e-9
  // cross-check) is indistinguishable from serialization noise and snaps
  // to zero rather than leaving the row boundary forever.
  const double wi = accessor_->WeightedDegree(global);
  double visible = 0;
  for (const Neighbor& nb : scratch_) visible += nb.weight;
  double hidden = 0;
  if (!accessor_->CompleteAdjacency(global)) {
    hidden = wi - visible;
    if (!(hidden > 1e-9 * wi)) hidden = 0;
  }
  weighted_degree_.push_back(wi);
  hidden_mass_.push_back(hidden);
  if (hidden > 0) truncated_seen_ = true;
  degree_cache_.Insert(global, wi);

  // New empty row; its first append carves a slab off the arena tail.
  row_start_.push_back(arena_used_);
  row_len_.push_back(0);
  row_cap_.push_back(0);
  row_in_mass_.push_back(0.0);

  // Reuse the neighbor slot (and its buffer) past a Reset; only grow the
  // spine at the high-water mark.
  if (local >= neighbors_.size()) neighbors_.emplace_back();

  // Build this node's within-S row and patch existing rows/boundary counts.
  // Each neighbor's visited status is resolved with ONE index probe and
  // remembered in scratch_local_ for the delta-S-bar pass below.
  uint32_t outside = 0;
  scratch_local_.clear();
  for (const Neighbor& nb : scratch_) {
    const LocalId j = LocalIndex(nb.id);
    scratch_local_.push_back(j);
    if (j == kInvalidLocal) {
      ++outside;
      continue;
    }
    if (wi > 0) RowAppend(local, j, nb.weight / wi);
    // Reverse direction: j gains an in-S neighbor.
    if (weighted_degree_[j] > 0) {
      RowAppend(j, local, nb.weight / weighted_degree_[j]);
    }
    if (--outside_count_[j] == 0) --boundary_count_;
    if (!in_dirty_[j]) {
      in_dirty_[j] = true;
      dirty_.push_back(j);
    }
  }
  // Phantom outside neighbor for hidden mass: the edges behind it can
  // never be fetched, so no future Add ever decrements it back — the node
  // stays boundary (and the frontier stays clipped) for the whole query.
  if (hidden > 0) ++outside;
  outside_count_.push_back(outside);
  if (outside > 0) ++boundary_count_;

  // Maintain delta-S-bar (unvisited nodes adjacent to S) with probed
  // degrees, feeding MaxOutsideAdjacentDegree. The neighbor list lands in
  // its slot by swap, leaving the slot's previous buffer as the next fetch
  // scratch.
  std::vector<Neighbor>& nbrs = neighbors_[local];
  nbrs.swap(scratch_);
  scratch_.clear();
  for (size_t i = 0; i < nbrs.size(); ++i) {
    if (scratch_local_[i] != kInvalidLocal) continue;
    if (ever_adjacent_.Insert(nbrs[i].id, 1)) {
      outside_degree_heap_.emplace_back(ProbeDegree(nbrs[i].id), nbrs[i].id);
      std::push_heap(outside_degree_heap_.begin(),
                     outside_degree_heap_.end());
    }
  }

  // Within-S hop distances: initialize from visited neighbors, then relax
  // decreases through existing rows (new edges can create shortcuts).
  // Query (source) nodes are distance 0.
  uint32_t d = local < query_count_ ? 0 : kUnreachable;
  {
    const LocalRow row = Row(local);
    for (uint32_t e = 0; e < row.len; ++e) {
      const uint32_t dj = hop_dist_[row.idx[e]];
      d = std::min(d, dj == kUnreachable ? kUnreachable : dj + 1);
    }
  }
  hop_dist_.push_back(d);
  relax_scratch_.clear();
  relax_scratch_.push_back(local);
  for (size_t head = 0; head < relax_scratch_.size(); ++head) {
    const LocalId u = relax_scratch_[head];
    if (hop_dist_[u] == kUnreachable) continue;
    const LocalRow row = Row(u);
    for (uint32_t e = 0; e < row.len; ++e) {
      const LocalId j = row.idx[e];
      if (hop_dist_[u] + 1 < hop_dist_[j]) {
        hop_dist_[j] = hop_dist_[u] + 1;
        relax_scratch_.push_back(j);
      }
    }
  }
  return Status::OK();
}

double LocalGraph::MaxOutsideAdjacentDegree() {
  // Amortized wholesale drain: once the visited set has doubled since the
  // last compaction, filter out every entry whose node has been visited.
  // Each visit is charged O(1), so long (e.g. multi-source) queries don't
  // retain stale entries indefinitely.
  if (outside_degree_heap_.size() > 64 && Size() >= 2 * heap_compact_size_) {
    std::erase_if(outside_degree_heap_,
                  [&](const std::pair<double, NodeId>& e) {
                    return Contains(e.second);
                  });
    std::make_heap(outside_degree_heap_.begin(), outside_degree_heap_.end());
    heap_compact_size_ = Size();
  }
  while (!outside_degree_heap_.empty()) {
    if (!Contains(outside_degree_heap_.front().second)) {
      return outside_degree_heap_.front().first;
    }
    std::pop_heap(outside_degree_heap_.begin(), outside_degree_heap_.end());
    outside_degree_heap_.pop_back();
  }
  return 0;
}

uint32_t LocalGraph::UnvisitedHopLowerBound() const {
  uint32_t best = kUnreachable;
  for (LocalId i = 0; i < Size(); ++i) {
    if (outside_count_[i] > 0) best = std::min(best, hop_dist_[i]);
  }
  return best == kUnreachable ? kUnreachable : best + 1;
}

Result<uint32_t> LocalGraph::Expand(LocalId u) {
  if (u >= Size()) {
    return Status::OutOfRange("local id out of range in Expand");
  }
  // Snapshot the unvisited neighbor ids first: Add() grows neighbors_, so
  // iterating the list while adding would be unsafe. Accessor neighbor
  // lists are sorted and duplicate-free, and Add(v) adds exactly v, so no
  // re-check is needed in the second loop — one index probe per neighbor.
  expand_scratch_.clear();
  for (const Neighbor& nb : neighbors_[u]) {
    if (LocalIndex(nb.id) == kInvalidLocal) expand_scratch_.push_back(nb.id);
  }
  for (const NodeId v : expand_scratch_) {
    FLOS_RETURN_IF_ERROR(Add(v));
  }
  FLOS_AUDIT_SCOPE {
    if (!expand_scratch_.empty()) AuditBookkeeping();
  }
  return static_cast<uint32_t>(expand_scratch_.size());
}

const std::vector<LocalId>& LocalGraph::TakeDirtyNodes() {
  dirty_out_.swap(dirty_);
  dirty_.clear();
  for (const LocalId i : dirty_out_) in_dirty_[i] = false;
  return dirty_out_;
}

double LocalGraph::ProbeDegree(NodeId global) {
  if (const double* cached = degree_cache_.Find(global)) return *cached;
  const double w = accessor_->WeightedDegree(global);
  degree_cache_.Insert(global, w);
  return w;
}

void LocalGraph::SaveSnapshot(LocalGraphSnapshot* out) const {
  FLOS_CHECK(query_ != kInvalidNode, "SaveSnapshot needs an Init'd graph");
  const uint32_t n = Size();
  out->query = query_;
  out->query_count = query_count_;
  out->local_to_global = local_to_global_;
  out->weighted_degree = weighted_degree_;
  out->hidden_mass = hidden_mass_;
  out->truncated_seen = truncated_seen_;
  out->outside_count = outside_count_;
  out->boundary_count = boundary_count_;
  // Only the first n neighbor slots are live; slots past the high-water
  // mark belong to earlier queries.
  out->neighbors.assign(neighbors_.begin(), neighbors_.begin() + n);
  // Only the used arena prefix: slab capacities never extend past the bump
  // pointer (AuditBookkeeping checks exactly this).
  out->arena_idx.assign(arena_idx_.begin(), arena_idx_.begin() + arena_used_);
  out->arena_weight.assign(arena_weight_.begin(),
                           arena_weight_.begin() + arena_used_);
  out->arena_used = arena_used_;
  out->row_start = row_start_;
  out->row_len = row_len_;
  out->row_cap = row_cap_;
  out->row_in_mass = row_in_mass_;
  out->hop_dist = hop_dist_;
  out->outside_degree_heap = outside_degree_heap_;
  out->heap_compact_size = heap_compact_size_;
}

void LocalGraph::RestoreSnapshot(const LocalGraphSnapshot& snap) {
  FLOS_CHECK(query_ == kInvalidNode,
             "RestoreSnapshot requires the pre-Init state (call Reset)");
  const uint32_t n = snap.Size();
  query_ = snap.query;
  query_count_ = snap.query_count;
  local_to_global_ = snap.local_to_global;
  weighted_degree_ = snap.weighted_degree;
  hidden_mass_ = snap.hidden_mass;
  truncated_seen_ = snap.truncated_seen;
  outside_count_ = snap.outside_count;
  boundary_count_ = snap.boundary_count;
  // Copy the live neighbor lists slot by slot so slots keep their reusable
  // buffers; slots past n stay as high-water scratch.
  if (neighbors_.size() < n) neighbors_.resize(n);
  for (uint32_t i = 0; i < n; ++i) neighbors_[i] = snap.neighbors[i];
  if (arena_idx_.size() < snap.arena_used) {
    arena_idx_.resize(snap.arena_used);
    arena_weight_.resize(snap.arena_used);
  }
  std::copy_n(snap.arena_idx.begin(), snap.arena_used, arena_idx_.begin());
  std::copy_n(snap.arena_weight.begin(), snap.arena_used,
              arena_weight_.begin());
  arena_used_ = snap.arena_used;
  row_start_ = snap.row_start;
  row_len_ = snap.row_len;
  row_cap_ = snap.row_cap;
  row_in_mass_ = snap.row_in_mass;
  hop_dist_ = snap.hop_dist;
  outside_degree_heap_ = snap.outside_degree_heap;
  heap_compact_size_ = snap.heap_compact_size;
  // Rebuild the epoch-keyed indexes. Visit order reproduces the dense
  // local ids; the degree cache is primed from known degrees (anything
  // else re-probes the accessor on demand); the ever-adjacent set is
  // rebuilt from the heap, which covers every unvisited ever-adjacent
  // node — pushes happen exactly on first adjacency and compaction only
  // drops visited entries (visited members only matter through
  // IsOutsideAdjacent, which excludes them anyway).
  for (LocalId i = 0; i < n; ++i) {
    global_to_local_.Insert(local_to_global_[i], i);
    degree_cache_.Insert(local_to_global_[i], weighted_degree_[i]);
  }
  for (const auto& [degree, node] : outside_degree_heap_) {
    ever_adjacent_.Insert(node, 1);
    degree_cache_.Insert(node, degree);
  }
  // Every node dirty: the consuming bound engine recomputes all boundary
  // coefficients on its next refresh instead of trusting any prior state.
  dirty_.resize(n);
  for (LocalId i = 0; i < n; ++i) dirty_[i] = i;
  dirty_out_.clear();
  in_dirty_.assign(n, true);
  FLOS_AUDIT_SCOPE { AuditBookkeeping(); }
}

}  // namespace flos
