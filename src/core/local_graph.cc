#include "core/local_graph.h"

#include <algorithm>
#include <limits>
#include <string>

namespace flos {

namespace {
constexpr uint32_t kUnreachable = std::numeric_limits<uint32_t>::max() - 1;
}  // namespace

LocalGraph::LocalGraph(GraphAccessor* accessor) : accessor_(accessor) {
  const bool dense = accessor->DenseIndexHint();
  const uint64_t n = accessor->NumNodes();
  global_to_local_.Configure(n, dense);
  degree_cache_.Configure(n, dense);
  ever_adjacent_.Configure(n, dense);
}

void LocalGraph::Reset() {
  query_ = kInvalidNode;
  query_count_ = 0;
  global_to_local_.Reset();
  degree_cache_.Reset();
  ever_adjacent_.Reset();
  local_to_global_.clear();
  weighted_degree_.clear();
  outside_count_.clear();
  dirty_.clear();
  dirty_out_.clear();
  in_dirty_.clear();
  hop_dist_.clear();
  outside_degree_heap_.clear();
  heap_compact_size_ = 0;
  // neighbors_ and rows_ keep their high-water slots (and the slots their
  // buffers); Size() gates which entries are live.
}

Status LocalGraph::Init(NodeId query) {
  return Init(std::vector<NodeId>{query});
}

Status LocalGraph::Init(const std::vector<NodeId>& queries) {
  if (query_ != kInvalidNode) {
    return Status::FailedPrecondition(
        "LocalGraph already initialized (call Reset between queries)");
  }
  if (queries.empty()) {
    return Status::InvalidArgument("need at least one query node");
  }
  for (const NodeId q : queries) {
    if (q >= accessor_->NumNodes()) {
      return Status::OutOfRange("query node out of range");
    }
    if (Contains(q)) {
      return Status::InvalidArgument("duplicate query node " +
                                     std::to_string(q));
    }
    ++query_count_;  // before Add so hop distances see the seed as a source
    FLOS_RETURN_IF_ERROR(Add(q));
  }
  query_ = queries.front();
  heap_compact_size_ = Size();
  return Status::OK();
}

Status LocalGraph::Add(NodeId global) {
  const auto local = static_cast<LocalId>(local_to_global_.size());
  global_to_local_.Insert(global, local);
  local_to_global_.push_back(global);
  in_dirty_.push_back(true);
  dirty_.push_back(local);

  FLOS_RETURN_IF_ERROR(accessor_->CopyNeighbors(global, &scratch_));
  double wi = 0;
  for (const Neighbor& nb : scratch_) wi += nb.weight;
  weighted_degree_.push_back(wi);
  degree_cache_.Insert(global, wi);

  // Reuse the slot (and its buffers) past a Reset; only grow the spines at
  // the high-water mark.
  if (local >= rows_.size()) {
    rows_.emplace_back();
    neighbors_.emplace_back();
  }
  std::vector<std::pair<LocalId, double>>& row = rows_[local];
  row.clear();

  // Build this node's within-S row and patch existing rows/boundary counts.
  // Each neighbor's visited status is resolved with ONE index probe and
  // remembered in scratch_local_ for the delta-S-bar pass below.
  uint32_t outside = 0;
  scratch_local_.clear();
  for (const Neighbor& nb : scratch_) {
    const LocalId j = LocalIndex(nb.id);
    scratch_local_.push_back(j);
    if (j == kInvalidLocal) {
      ++outside;
      continue;
    }
    if (wi > 0) row.emplace_back(j, nb.weight / wi);
    // Reverse direction: j gains an in-S neighbor.
    if (weighted_degree_[j] > 0) {
      rows_[j].emplace_back(local, nb.weight / weighted_degree_[j]);
    }
    --outside_count_[j];
    if (!in_dirty_[j]) {
      in_dirty_[j] = true;
      dirty_.push_back(j);
    }
  }
  outside_count_.push_back(outside);

  // Maintain delta-S-bar (unvisited nodes adjacent to S) with probed
  // degrees, feeding MaxOutsideAdjacentDegree. The neighbor list lands in
  // its slot by swap, leaving the slot's previous buffer as the next fetch
  // scratch.
  std::vector<Neighbor>& nbrs = neighbors_[local];
  nbrs.swap(scratch_);
  scratch_.clear();
  for (size_t i = 0; i < nbrs.size(); ++i) {
    if (scratch_local_[i] != kInvalidLocal) continue;
    if (ever_adjacent_.Insert(nbrs[i].id, 1)) {
      outside_degree_heap_.emplace_back(ProbeDegree(nbrs[i].id), nbrs[i].id);
      std::push_heap(outside_degree_heap_.begin(),
                     outside_degree_heap_.end());
    }
  }

  // Within-S hop distances: initialize from visited neighbors, then relax
  // decreases through existing rows (new edges can create shortcuts).
  // Query (source) nodes are distance 0.
  uint32_t d = local < query_count_ ? 0 : kUnreachable;
  for (const auto& [j, p] : row) {
    (void)p;
    d = std::min(d, hop_dist_[j] == kUnreachable ? kUnreachable
                                                 : hop_dist_[j] + 1);
  }
  hop_dist_.push_back(d);
  relax_scratch_.clear();
  relax_scratch_.push_back(local);
  for (size_t head = 0; head < relax_scratch_.size(); ++head) {
    const LocalId u = relax_scratch_[head];
    if (hop_dist_[u] == kUnreachable) continue;
    for (const auto& [j, p] : rows_[u]) {
      (void)p;
      if (hop_dist_[u] + 1 < hop_dist_[j]) {
        hop_dist_[j] = hop_dist_[u] + 1;
        relax_scratch_.push_back(j);
      }
    }
  }
  return Status::OK();
}

double LocalGraph::MaxOutsideAdjacentDegree() {
  // Amortized wholesale drain: once the visited set has doubled since the
  // last compaction, filter out every entry whose node has been visited.
  // Each visit is charged O(1), so long (e.g. multi-source) queries don't
  // retain stale entries indefinitely.
  if (outside_degree_heap_.size() > 64 && Size() >= 2 * heap_compact_size_) {
    std::erase_if(outside_degree_heap_,
                  [&](const std::pair<double, NodeId>& e) {
                    return Contains(e.second);
                  });
    std::make_heap(outside_degree_heap_.begin(), outside_degree_heap_.end());
    heap_compact_size_ = Size();
  }
  while (!outside_degree_heap_.empty()) {
    if (!Contains(outside_degree_heap_.front().second)) {
      return outside_degree_heap_.front().first;
    }
    std::pop_heap(outside_degree_heap_.begin(), outside_degree_heap_.end());
    outside_degree_heap_.pop_back();
  }
  return 0;
}

uint32_t LocalGraph::UnvisitedHopLowerBound() const {
  uint32_t best = kUnreachable;
  for (LocalId i = 0; i < Size(); ++i) {
    if (outside_count_[i] > 0) best = std::min(best, hop_dist_[i]);
  }
  return best == kUnreachable ? kUnreachable : best + 1;
}

Result<uint32_t> LocalGraph::Expand(LocalId u) {
  if (u >= Size()) {
    return Status::OutOfRange("local id out of range in Expand");
  }
  // Snapshot the unvisited neighbor ids first: Add() grows neighbors_, so
  // iterating the list while adding would be unsafe. Accessor neighbor
  // lists are sorted and duplicate-free, and Add(v) adds exactly v, so no
  // re-check is needed in the second loop — one index probe per neighbor.
  expand_scratch_.clear();
  for (const Neighbor& nb : neighbors_[u]) {
    if (LocalIndex(nb.id) == kInvalidLocal) expand_scratch_.push_back(nb.id);
  }
  for (const NodeId v : expand_scratch_) {
    FLOS_RETURN_IF_ERROR(Add(v));
  }
  return static_cast<uint32_t>(expand_scratch_.size());
}

bool LocalGraph::Exhausted() const {
  for (LocalId i = 0; i < Size(); ++i) {
    if (outside_count_[i] > 0) return false;
  }
  return true;
}

const std::vector<LocalId>& LocalGraph::TakeDirtyNodes() {
  dirty_out_.swap(dirty_);
  dirty_.clear();
  for (const LocalId i : dirty_out_) in_dirty_[i] = false;
  return dirty_out_;
}

double LocalGraph::ProbeDegree(NodeId global) {
  if (const double* cached = degree_cache_.Find(global)) return *cached;
  const double w = accessor_->WeightedDegree(global);
  degree_cache_.Insert(global, w);
  return w;
}

}  // namespace flos
