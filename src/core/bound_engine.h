// Lower/upper bound engine for PHP-form proximity systems (Section 4 / 5).
//
// The engine maintains rigorous bounds on the fixed point of
//
//     r = alpha * T r + e_q,   r_q = 1,
//
// restricted to the visited set S, where T is the query-row-zeroed
// transition matrix. PHP uses alpha = c; EI, DHT and RWR reduce to the same
// system with alpha = 1 - c (Theorems 2 and 6).
//
// Lower bound: transitions leaving S are deleted (Theorem 3); optionally a
// star-to-mesh self-loop p_ii = alpha * sum_{j in N_i \ S} p_ij p_ji is
// added (Lemma 3).
// Upper bound: transitions leaving S are redirected to a dummy node with
// constant value r_d >= every unvisited proximity (Theorem 5); the self-loop
// variant additionally splits the dummy mass per Lemma 4.
//
// Inner solve: ONE fused sweep per iteration computes both bounds — the
// lower and upper systems share the identical sum_j p_ij * x_j row
// structure, so each row of the flat local CSR (core/local_graph.h) is
// scanned once for both — and updates them IN PLACE in visit order
// (Gauss–Seidel) rather than into a Jacobi double buffer.
//
// Validity under inexact, in-place solves: the true proximity vector is a
// supersolution of the lower system and a subsolution of the upper system,
// and both operators are monotone. Hence applying a row update to ANY
// mixture of previous-sweep and already-updated-this-sweep values — all of
// which are certified bounds — yields a certified bound again, so the
// Gauss–Seidel iterate is valid after every partial sweep, and (since
// newer values are tighter and the operators are monotone) is elementwise
// at least as tight as the Jacobi iterate after the same number of sweeps.
// Bounds are additionally clamped elementwise against their previous
// values, which keeps them monotone across outer iterations (Section 5.2)
// even in floating point.

#ifndef FLOS_CORE_BOUND_ENGINE_H_
#define FLOS_CORE_BOUND_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "core/local_graph.h"
#include "util/status.h"

namespace flos {

/// Configuration of the PHP-form bound engine.
struct BoundEngineOptions {
  /// Contraction factor alpha of the linear system (in (0, 1)).
  double alpha = 0.5;
  /// Inner-iteration stopping threshold tau (paper Algorithm 7).
  double tolerance = 1e-5;
  /// Safety cap on inner iterations per update.
  uint32_t max_inner_iterations = 10000;
  /// Enables the star-to-mesh self-loop tightening (Section 5.3).
  bool self_loop_tightening = true;
  /// Tightens the dummy value beyond the paper's max-boundary-upper rule
  /// with the free alpha factor (unvisited nodes only neighbor boundary or
  /// unvisited nodes) and the alpha^hop-distance cap. Rigorous; see
  /// CaptureDummyFromBoundary. Off reproduces Algorithm 5 line 7 verbatim.
  bool alpha_dummy_tightening = true;
  /// Additionally folds the per-frontier-node uppers (ComputeOutsideUppers)
  /// into the tight dummy each update. Costs an O(boundary edges) pass per
  /// update; worth it for degree-weighted (RWR) searches, which need the
  /// frontier bound for termination anyway, and off by default otherwise.
  bool frontier_dummy = false;
  /// Anytime hook: solves stop between sweeps once this instant passes
  /// (checked at the amortized convergence checkpoints, so the overshoot is
  /// at most a few sweeps). Every completed sweep leaves certified bounds,
  /// so an interrupted solve is valid — just looser. `deadline_hit()`
  /// reports whether the last solve was cut short. Default: no deadline.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

/// Bound state for the visited subgraph. One instance per query WORKSPACE:
/// construct it once over a LocalGraph and Reset() it for each query after
/// the LocalGraph has been Reset+Init'd — buffers are reused across
/// queries, so steady-state serving allocates nothing.
class PhpBoundEngine {
 public:
  /// `local` must outlive the engine. The LocalGraph may be empty (not yet
  /// Init'd) or already hold the query node.
  PhpBoundEngine(LocalGraph* local, const BoundEngineOptions& options);

  /// Returns the engine to its freshly-constructed state for the next
  /// query, with new options. Call after the LocalGraph was Reset+Init'd;
  /// keeps every buffer's capacity.
  void Reset(const BoundEngineOptions& options);

  /// Records the current boundary's maximum upper bound as the next dummy
  /// value (Algorithm 5 line 7). Call BEFORE expanding, so the value refers
  /// to delta-S of the previous iteration.
  void CaptureDummyFromBoundary();

  /// Resizes state after the LocalGraph grew; new nodes start at
  /// lower = 0, upper = 1 (valid PHP-form bounds).
  void OnGrowth();

  /// Recomputes boundary coefficients (dummy mass, self-loops), then runs
  /// the warm-started fused Gauss–Seidel iterations for both bounds.
  /// Returns the number of inner sweeps spent (each sweep updates BOTH
  /// bounds).
  uint32_t UpdateBounds();

  /// Refreshes coefficients and runs only the lower system. Used by
  /// estimate-only consumers (the DNE baseline) that never need uppers.
  uint32_t UpdateLowerOnly();

  /// Runs the lower system to a much tighter tolerance and collapses
  /// upper = lower. Only valid when the LocalGraph is exhausted (no
  /// transitions leave S, so the deleted-transition system IS the exact
  /// system). Returns inner iterations spent. If the options deadline cuts
  /// the solve short (deadline_hit()), the interval is NOT collapsed — the
  /// unconverged lower is not yet the exact value — and both bounds stay
  /// certified.
  uint32_t FinalizeExhausted(double final_tolerance);

  /// True iff the most recent solve stopped on the options deadline rather
  /// than on convergence. Reset by the next Reset() or solve call.
  bool deadline_hit() const { return deadline_hit_; }

  double lower(LocalId i) const { return lower_[i]; }
  double upper(LocalId i) const { return upper_[i]; }

  /// The Algorithm-5 dummy value (max boundary upper, non-increasing).
  double dummy_value() const { return dummy_mesh_; }

  /// The tightened dummy value that bounds only UNVISITED proximities
  /// (alpha factor, hop cap, frontier uppers). Valid for the plain
  /// redirect-everything-to-dummy construction, but NOT for the
  /// star-to-mesh one, whose redirected mesh edges also land on visited
  /// boundary nodes; the fused sweep therefore evaluates both
  /// constructions per node and keeps the smaller — both are monotone
  /// upper operators, so the pointwise minimum is too.
  double tight_dummy_value() const { return dummy_tight_; }

  /// Certified upper bounds over the unvisited frontier delta-S-bar,
  /// computed from the boundary's uppers: for v adjacent to S,
  ///   r_v <= alpha * (sum_{u in N_v cap S} p_vu upper_u
  ///                   + (1 - in-mass) * r_d).
  /// Every unvisited node is bounded by `max_value`; nodes not adjacent to
  /// S by an extra alpha factor; `max_degree_weighted` maxes w_v * bound
  /// over delta-S-bar (the quantity FLoS_RWR's termination needs).
  struct OutsideUppers {
    double max_value = 0;            ///< max over delta-S-bar of r-bar_v
    double max_degree_weighted = 0;  ///< max over delta-S-bar of w_v r-bar_v
    bool any = false;
  };
  OutsideUppers ComputeOutsideUppers();

  /// Test-only: overwrites node i's stored bounds, bypassing every
  /// certification rule. Exists so tests/check_test.cc can prove the
  /// FLOS_AUDIT sandwich/monotonicity checks actually fire on corrupted
  /// state; never call it from library or application code.
  void InjectBoundsForTest(LocalId i, double lower_value, double upper_value) {
    lower_[i] = lower_value;
    upper_[i] = upper_value;
  }

 private:
  /// Audit tier: aborts unless lower <= upper elementwise (within a
  /// one-ulp-scale slack for the fused fp evaluation). `where` names the
  /// call site in the failure message.
  void AuditBoundSandwich(const char* where) const;

  void RefreshBoundaryCoefficients();

  /// The fused Gauss–Seidel solve: one row scan per sweep updates both
  /// bounds (or only the lower when `lower_only`), in place, stopping once
  /// the largest elementwise movement of a checked sweep drops below
  /// `tolerance`. Convergence checks are amortized: every sweep for the
  /// first few (warm starts converge immediately), then every fourth.
  uint32_t FusedSolve(double tolerance, bool lower_only);

  LocalGraph* local_;
  BoundEngineOptions options_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  /// Coefficient of r_i itself (self-loop) in the mesh construction.
  std::vector<double> self_coeff_;
  /// Coefficient of r_d in the mesh construction (alpha^2 (out - loop)).
  std::vector<double> mesh_dummy_coeff_;
  /// Coefficient of r_d in the plain construction (alpha * out mass).
  std::vector<double> plain_dummy_coeff_;
  double dummy_mesh_ = 1.0;   ///< >= unvisited AND visited-boundary values
  double dummy_tight_ = 1.0;  ///< >= unvisited values only
  bool deadline_hit_ = false; ///< last solve stopped on the deadline
};

}  // namespace flos

#endif  // FLOS_CORE_BOUND_ENGINE_H_
