// Scalar sweep backend and the backend factory/dispatch.
//
// The scalar kernel is the reference implementation: one fused
// Gauss–Seidel pass over the pair-layout bounds through FusedPairRowSweep,
// rows in visit order, with the monotone clamps applied per row exactly as
// the pre-seam engine did. The AVX2 backend (sweep_backend_avx2.cc) must
// stay bound-sandwich compatible with this kernel: both produce certified
// intervals that are elementwise no looser than the Jacobi iterate, but
// they need not be bitwise equal (different update order and fp
// reassociation).
//
// Parallel sweeps (FixedPointSweepArgs::pool): the non-query rows are cut
// into contiguous chunks balanced by entry count; each chunk Gauss–Seidels
// its own rows in place while reading other chunks' columns from the
// caller's pre-sweep snapshot (block-Jacobi across chunks). See the
// contract on FixedPointSweepArgs — writes are disjoint per chunk, reads
// of shared data touch only the immutable snapshot, so the sweep is
// race-free and deterministic for a fixed chunk count.

#include <algorithm>
#include <memory>
#include <vector>

#include "core/sweep_kernel.h"
#include "util/thread_pool.h"

namespace flos {

namespace {

/// Cache-line-padded per-chunk delta slot (no false sharing on commit).
struct alignas(64) PaddedDelta {
  double value = 0;
};

class ScalarSweepBackend final : public SweepBackend {
 public:
  const char* name() const override { return "scalar"; }

  void InvalidateStructure() override { partition_chunks_ = 0; }

  double FusedSweep(const FixedPointSweepArgs& args) override {
    if (UseParallel(args)) return ParallelSweep</*lower_only=*/false>(args);
    double delta = 0;
    double* const b = args.bounds;
    const LocalGraph& local = *args.local;
    FusedPairRowSweep(local, b, [&](LocalId i, double s_lo, double s_hi) {
      if (local.IsQueryLocal(i)) return;  // pinned
      double* const pi = b + 2 * static_cast<size_t>(i);
      const double lo = pi[0];
      const double hi = pi[1];
      const double vl =
          std::max(args.alpha * s_lo + args.self_coeff[i] * lo, lo);
      const double hid = args.hidden_coeff[i] * args.dummy_mesh;
      double vu = args.alpha * s_hi +
                  args.plain_dummy_coeff[i] * args.dummy_tight + hid;
      if (args.self_loop) {
        vu = std::min(vu, args.alpha * s_hi + args.self_coeff[i] * hi +
                              args.mesh_dummy_coeff[i] * args.dummy_mesh +
                              hid);
      }
      vu = std::min(vu, hi);
      delta = std::max(delta, std::max(vl - lo, hi - vu));
      pi[0] = vl;  // in place: Gauss–Seidel
      pi[1] = vu;
    });
    return delta;
  }

  double LowerSweep(const FixedPointSweepArgs& args) override {
    if (UseParallel(args)) return ParallelSweep</*lower_only=*/true>(args);
    double delta = 0;
    double* const b = args.bounds;
    const LocalGraph& local = *args.local;
    const uint32_t n = local.Size();
    for (LocalId i = 0; i < n; ++i) {
      if (i + 1 < n) local.PrefetchRow(i + 1);
      const LocalRow row = local.Row(i);
      double s = 0;
      for (uint32_t e = 0; e < row.len; ++e) {
        FLOS_AUDIT(row.idx[e] < n, "local CSR column index out of range");
        FLOS_AUDIT(row.weight[e] >= 0.0,
                   "negative transition probability in local CSR");
        s += row.weight[e] * b[2 * static_cast<size_t>(row.idx[e])];
      }
      if (local.IsQueryLocal(i)) continue;  // pinned
      double& lo = b[2 * static_cast<size_t>(i)];
      const double v = std::max(args.alpha * s + args.self_coeff[i] * lo, lo);
      delta = std::max(delta, v - lo);
      lo = v;
    }
    return delta;
  }

 private:
  bool UseParallel(const FixedPointSweepArgs& args) const {
    if (args.pool == nullptr || args.chunks < 2 || args.snapshot == nullptr) {
      return false;
    }
    const LocalGraph& local = *args.local;
    // One row per chunk is the floor for a meaningful partition.
    return local.Size() - local.query_count() >= args.chunks;
  }

  /// Cuts the non-query rows [query_count, n) into `chunks` contiguous
  /// ranges with roughly equal entry counts. Recomputed when the structure
  /// or the requested chunk count changes.
  void BuildPartition(const LocalGraph& local, uint32_t chunks) {
    const uint32_t n = local.Size();
    const LocalId first = local.query_count();
    size_t total = 0;
    for (LocalId i = first; i < n; ++i) total += local.Row(i).len;
    chunk_begin_.assign(chunks + 1, n);
    chunk_begin_[0] = first;
    size_t seen = 0;
    uint32_t next_cut = 1;
    for (LocalId i = first; i < n && next_cut < chunks; ++i) {
      seen += local.Row(i).len;
      // Cut after row i once this chunk holds its entry share; every chunk
      // still gets at least one row (i + 1 advances past the cut).
      if (seen * chunks >= total * next_cut &&
          i + 1 + (chunks - next_cut) <= n) {
        chunk_begin_[next_cut++] = i + 1;
      }
    }
    partition_chunks_ = chunks;
  }

  template <bool lower_only>
  double ParallelSweep(const FixedPointSweepArgs& args) {
    const LocalGraph& local = *args.local;
    if (partition_chunks_ != args.chunks) BuildPartition(local, args.chunks);
    const uint32_t chunks = args.chunks;
    deltas_.assign(chunks, PaddedDelta{});
    // Workers take chunks 1..chunks-1; the calling thread runs chunk 0 and
    // then waits — the pool is dedicated to this engine's sweeps, so Wait
    // is a barrier for exactly these tasks.
    for (uint32_t c = 1; c < chunks; ++c) {
      const Status submitted = args.pool->Submit([this, &args, c] {
        SweepChunk<lower_only>(args, chunk_begin_[c], chunk_begin_[c + 1],
                               &deltas_[c].value);
      });
      // A shut-down pool cannot run the chunk; fold it into the caller's
      // share instead of losing rows (bounds would stay certified but the
      // sweep must still cover every row to make progress).
      if (!submitted.ok()) {
        SweepChunk<lower_only>(args, chunk_begin_[c], chunk_begin_[c + 1],
                               &deltas_[c].value);
      }
    }
    SweepChunk<lower_only>(args, chunk_begin_[0], chunk_begin_[1],
                           &deltas_[0].value);
    args.pool->Wait();
    double delta = 0;
    for (const PaddedDelta& d : deltas_) delta = std::max(delta, d.value);
    return delta;
  }

  /// One chunk's Gauss–Seidel pass over rows [begin, end): own-range
  /// columns read the live (already updated this sweep) bounds, every
  /// other column reads the immutable pre-sweep snapshot.
  template <bool lower_only>
  void SweepChunk(const FixedPointSweepArgs& args, LocalId begin, LocalId end,
                  double* delta_out) const {
    double delta = 0;
    double* const b = args.bounds;
    const double* const snap = args.snapshot;
    const LocalGraph& local = *args.local;
    const uint32_t n = local.Size();
    for (LocalId i = begin; i < end; ++i) {
      if (i + 1 < end) local.PrefetchRow(i + 1);
      const LocalRow row = local.Row(i);
      double s_lo = 0;
      double s_hi = 0;
      for (uint32_t e = 0; e < row.len; ++e) {
        const double p = row.weight[e];
        const LocalId j = row.idx[e];
        FLOS_AUDIT(j < n, "local CSR column index out of range");
        FLOS_AUDIT(p >= 0.0, "negative transition probability in local CSR");
        // Unsigned trick: one compare classifies j as own-range.
        const bool own = static_cast<uint32_t>(j - begin) <
                         static_cast<uint32_t>(end - begin);
        const double* const pj =
            (own ? b : snap) + 2 * static_cast<size_t>(j);
        s_lo += p * pj[0];
        if (!lower_only) s_hi += p * pj[1];
      }
      double* const pi = b + 2 * static_cast<size_t>(i);
      const double lo = pi[0];
      const double vl =
          std::max(args.alpha * s_lo + args.self_coeff[i] * lo, lo);
      if (lower_only) {
        delta = std::max(delta, vl - lo);
        pi[0] = vl;
        continue;
      }
      const double hi = pi[1];
      const double hid = args.hidden_coeff[i] * args.dummy_mesh;
      double vu = args.alpha * s_hi +
                  args.plain_dummy_coeff[i] * args.dummy_tight + hid;
      if (args.self_loop) {
        vu = std::min(vu, args.alpha * s_hi + args.self_coeff[i] * hi +
                              args.mesh_dummy_coeff[i] * args.dummy_mesh +
                              hid);
      }
      vu = std::min(vu, hi);
      delta = std::max(delta, std::max(vl - lo, hi - vu));
      pi[0] = vl;
      pi[1] = vu;
    }
    *delta_out = delta;
  }

  std::vector<LocalId> chunk_begin_;  ///< partition cuts (chunks + 1)
  uint32_t partition_chunks_ = 0;     ///< 0 = partition is stale
  std::vector<PaddedDelta> deltas_;
};

}  // namespace

// Implemented in sweep_backend_avx2.cc (the only TU allowed to touch raw
// SIMD intrinsics; see scripts/lint.py no-raw-intrinsics).
std::unique_ptr<SweepBackend> MakeAvx2SweepBackend();
bool CpuHasAvx2();

bool Avx2SweepAvailable() { return CpuHasAvx2(); }

SweepBackendKind ResolveSweepBackendKind(SweepBackendKind kind) {
  if (kind == SweepBackendKind::kAuto) {
    return Avx2SweepAvailable() ? SweepBackendKind::kAvx2
                                : SweepBackendKind::kScalar;
  }
  if (kind == SweepBackendKind::kAvx2 && !Avx2SweepAvailable()) {
    return SweepBackendKind::kScalar;
  }
  return kind;
}

const char* SweepBackendKindName(SweepBackendKind kind) {
  switch (kind) {
    case SweepBackendKind::kAuto:
      return "auto";
    case SweepBackendKind::kScalar:
      return "scalar";
    case SweepBackendKind::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::unique_ptr<SweepBackend> MakeSweepBackend(SweepBackendKind kind) {
  switch (ResolveSweepBackendKind(kind)) {
    case SweepBackendKind::kAvx2:
      return MakeAvx2SweepBackend();
    default:
      return std::make_unique<ScalarSweepBackend>();
  }
}

}  // namespace flos
