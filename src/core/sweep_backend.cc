// Scalar sweep backend and the backend factory/dispatch.
//
// The scalar kernel is the reference implementation: one fused
// Gauss–Seidel pass over the pair-layout bounds through FusedPairRowSweep,
// rows in visit order, with the monotone clamps applied per row exactly as
// the pre-seam engine did. The AVX2 backend (sweep_backend_avx2.cc) must
// stay bound-sandwich compatible with this kernel: both produce certified
// intervals that are elementwise no looser than the Jacobi iterate, but
// they need not be bitwise equal (different update order and fp
// reassociation).

#include <algorithm>
#include <memory>

#include "core/sweep_kernel.h"

namespace flos {

namespace {

class ScalarSweepBackend final : public SweepBackend {
 public:
  const char* name() const override { return "scalar"; }

  void InvalidateStructure() override {}

  double FusedSweep(const FixedPointSweepArgs& args) override {
    double delta = 0;
    double* const b = args.bounds;
    const LocalGraph& local = *args.local;
    FusedPairRowSweep(local, b, [&](LocalId i, double s_lo, double s_hi) {
      if (local.IsQueryLocal(i)) return;  // pinned
      double* const pi = b + 2 * static_cast<size_t>(i);
      const double lo = pi[0];
      const double hi = pi[1];
      const double vl =
          std::max(args.alpha * s_lo + args.self_coeff[i] * lo, lo);
      const double hid = args.hidden_coeff[i] * args.dummy_mesh;
      double vu = args.alpha * s_hi +
                  args.plain_dummy_coeff[i] * args.dummy_tight + hid;
      if (args.self_loop) {
        vu = std::min(vu, args.alpha * s_hi + args.self_coeff[i] * hi +
                              args.mesh_dummy_coeff[i] * args.dummy_mesh +
                              hid);
      }
      vu = std::min(vu, hi);
      delta = std::max(delta, std::max(vl - lo, hi - vu));
      pi[0] = vl;  // in place: Gauss–Seidel
      pi[1] = vu;
    });
    return delta;
  }

  double LowerSweep(const FixedPointSweepArgs& args) override {
    double delta = 0;
    double* const b = args.bounds;
    const LocalGraph& local = *args.local;
    const uint32_t n = local.Size();
    for (LocalId i = 0; i < n; ++i) {
      if (i + 1 < n) local.PrefetchRow(i + 1);
      const LocalRow row = local.Row(i);
      double s = 0;
      for (uint32_t e = 0; e < row.len; ++e) {
        FLOS_AUDIT(row.idx[e] < n, "local CSR column index out of range");
        FLOS_AUDIT(row.weight[e] >= 0.0,
                   "negative transition probability in local CSR");
        s += row.weight[e] * b[2 * static_cast<size_t>(row.idx[e])];
      }
      if (local.IsQueryLocal(i)) continue;  // pinned
      double& lo = b[2 * static_cast<size_t>(i)];
      const double v = std::max(args.alpha * s + args.self_coeff[i] * lo, lo);
      delta = std::max(delta, v - lo);
      lo = v;
    }
    return delta;
  }
};

}  // namespace

// Implemented in sweep_backend_avx2.cc (the only TU allowed to touch raw
// SIMD intrinsics; see scripts/lint.py no-raw-intrinsics).
std::unique_ptr<SweepBackend> MakeAvx2SweepBackend();
bool CpuHasAvx2();

bool Avx2SweepAvailable() { return CpuHasAvx2(); }

SweepBackendKind ResolveSweepBackendKind(SweepBackendKind kind) {
  if (kind == SweepBackendKind::kAuto) {
    return Avx2SweepAvailable() ? SweepBackendKind::kAvx2
                                : SweepBackendKind::kScalar;
  }
  if (kind == SweepBackendKind::kAvx2 && !Avx2SweepAvailable()) {
    return SweepBackendKind::kScalar;
  }
  return kind;
}

const char* SweepBackendKindName(SweepBackendKind kind) {
  switch (kind) {
    case SweepBackendKind::kAuto:
      return "auto";
    case SweepBackendKind::kScalar:
      return "scalar";
    case SweepBackendKind::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::unique_ptr<SweepBackend> MakeSweepBackend(SweepBackendKind kind) {
  switch (ResolveSweepBackendKind(kind)) {
    case SweepBackendKind::kAvx2:
      return MakeAvx2SweepBackend();
    default:
      return std::make_unique<ScalarSweepBackend>();
  }
}

}  // namespace flos
