// Measure-traits policy layer: the per-measure facts the unified bound
// engine and the FLoS driver need, in one place.
//
// The five measures differ along exactly three axes:
//  * which bound machinery their proximity system needs — a contractive
//    fixed point r = alpha T r + e_q (PHP natively; EI, DHT and RWR by
//    rank-equivalent reduction, Theorems 2 and 6) or the L-step
//    finite-horizon DP (THT, Appendix 10.4);
//  * the PHP-form contraction factor alpha (c for PHP, 1 - c for the
//    reduced measures) or the truncation horizon L;
//  * how visited nodes are ranked: by value, by degree-weighted value
//    (RWR, Section 5.6), or by value minimized (THT, where smaller hitting
//    time means closer).
// Everything else — expansion, termination, deadline handling — is shared,
// which is the point of the unified engine (core/unified_bound_engine.h).

#ifndef FLOS_CORE_MEASURE_TRAITS_H_
#define FLOS_CORE_MEASURE_TRAITS_H_

#include "measures/measure.h"

namespace flos {

/// Which bound machinery a measure's proximity system runs on.
enum class BoundFamily {
  /// Monotone contractive fixed point; fused Gauss–Seidel sweeps, dummy
  /// redirects, self-loop tightening (PHP, EI, DHT, RWR).
  kFixedPoint,
  /// Finite-horizon dynamic program; Jacobi double buffer, exact after L
  /// steps, no iterative tolerance (THT).
  kHorizonDp,
};

/// Internal ranking mode. PHP/EI/DHT rank by the PHP-form value; RWR ranks
/// by w_i * value (Section 5.6); THT ranks by its own value, minimized.
enum class RankMode { kValue, kDegreeWeighted, kMinimizeValue };

/// The bound-engine policy derived from a measure: family plus the family
/// parameter (alpha or horizon) plus the rank/termination quirks.
struct BoundTraits {
  BoundFamily family = BoundFamily::kFixedPoint;
  /// Fixed-point contraction factor (ignored for kHorizonDp).
  double alpha = 0.5;
  /// DP truncation length L >= 1 (ignored for kFixedPoint).
  int horizon = 0;
  RankMode rank_mode = RankMode::kValue;
  /// Degree-weighted searches need the per-frontier-node uppers for
  /// termination anyway; folding them into the dummy value is then nearly
  /// free (UnifiedBoundEngine folds them into the dummy when set).
  bool frontier_dummy = false;
};

/// PHP uses its decay directly; EI/DHT/RWR reduce to a PHP system with
/// decay 1 - c (Theorems 2, 6).
inline double AlphaFor(Measure m, double c) {
  return m == Measure::kPhp ? c : 1.0 - c;
}

inline RankMode RankModeFor(Measure m) {
  switch (m) {
    case Measure::kRwr:
      return RankMode::kDegreeWeighted;
    case Measure::kTht:
      return RankMode::kMinimizeValue;
    default:
      return RankMode::kValue;
  }
}

inline BoundTraits BoundTraitsFor(Measure m, double c, int tht_length) {
  BoundTraits traits;
  traits.rank_mode = RankModeFor(m);
  if (m == Measure::kTht) {
    traits.family = BoundFamily::kHorizonDp;
    traits.horizon = tht_length;
  } else {
    traits.family = BoundFamily::kFixedPoint;
    traits.alpha = AlphaFor(m, c);
    traits.frontier_dummy = m == Measure::kRwr;
  }
  return traits;
}

}  // namespace flos

#endif  // FLOS_CORE_MEASURE_TRAITS_H_
