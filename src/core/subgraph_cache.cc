#include "core/subgraph_cache.h"

#include <bit>
#include <utility>

#include "util/check.h"

namespace flos {

size_t SubgraphCache::KeyHash::operator()(const Key& key) const {
  // splitmix64-style mix over the key fields; alpha hashes by bit pattern
  // (keys are compared exactly, so -0.0 vs 0.0 costing a miss is fine).
  uint64_t h = 0x9e3779b97f4a7c15ull;
  const auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
  };
  mix(key.seed);
  mix(static_cast<uint64_t>(key.family));
  mix(std::bit_cast<uint64_t>(key.alpha));
  mix(static_cast<uint64_t>(key.horizon));
  mix(key.epoch);
  return static_cast<size_t>(h);
}

std::shared_ptr<const SubgraphSnapshot> SubgraphCache::Lookup(const Key& key) {
  MutexLock lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  // The stale-epoch ground truth: an entry can only be found under a key
  // built from the CURRENT graph epoch, so its stored epoch must agree.
  // Disagreement means a subgraph expanded against an older topology is
  // about to seed bounds as current — corruption, never a legal state.
  FLOS_AUDIT(it->second->stored_epoch == key.epoch,
             "subgraph cache serving a stale graph epoch");
  entries_.splice(entries_.begin(), entries_, it->second);
  ++hits_;
  return it->second->snap;
}

void SubgraphCache::Insert(const Key& key,
                           std::shared_ptr<const SubgraphSnapshot> snap) {
  if (capacity_ == 0 || snap == nullptr) return;
  FLOS_DCHECK(snap->bounds.size() ==
                  2 * static_cast<size_t>(snap->local.Size()),
              "snapshot bound vector does not match its visited set");
  MutexLock lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->snap = std::move(snap);
    it->second->stored_epoch = key.epoch;
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  entries_.push_front(Entry{key, key.epoch, std::move(snap)});
  index_[key] = entries_.begin();
  while (entries_.size() > capacity_) {
    index_.erase(entries_.back().key);
    entries_.pop_back();
  }
}

void SubgraphCache::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
  index_.clear();
}

size_t SubgraphCache::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

uint64_t SubgraphCache::hits() const {
  MutexLock lock(mu_);
  return hits_;
}

uint64_t SubgraphCache::misses() const {
  MutexLock lock(mu_);
  return misses_;
}

bool SubgraphCache::CorruptEpochForTest(const Key& key, uint64_t stored_epoch) {
  MutexLock lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  it->second->stored_epoch = stored_epoch;
  return true;
}

}  // namespace flos
