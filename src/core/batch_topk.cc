#include "core/batch_topk.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <utility>

#include "core/flos_engine.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace flos {

Result<std::vector<FlosResult>> BatchTopK(const AccessorFactory& make_accessor,
                                          const std::vector<NodeId>& queries,
                                          int k, const FlosOptions& options,
                                          int num_threads) {
  if (num_threads <= 0) num_threads = ThreadPool::DefaultNumThreads();
  num_threads = static_cast<int>(
      std::min<size_t>(num_threads, std::max<size_t>(1, queries.size())));

  std::vector<FlosResult> results(queries.size());
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  Mutex error_mu;
  Status first_error;  // guarded by error_mu; `failed` is the fast flag

  const auto record_error = [&](const Status& status) {
    MutexLock lock(error_mu);
    if (first_error.ok()) first_error = status;
    failed.store(true, std::memory_order_release);
  };

  {
    ThreadPool pool(num_threads);
    for (int t = 0; t < num_threads; ++t) {
      // A freshly constructed pool always accepts; only Shutdown rejects.
      const Status submitted = pool.Submit([&] {
        auto accessor = make_accessor();
        if (!accessor.ok()) {
          record_error(accessor.status());
          return;
        }
        FlosEngine engine(accessor->get());
        for (size_t i = next.fetch_add(1, std::memory_order_relaxed);
             i < queries.size();
             i = next.fetch_add(1, std::memory_order_relaxed)) {
          if (failed.load(std::memory_order_acquire)) return;
          auto result = engine.TopK(queries[i], k, options);
          if (!result.ok()) {
            record_error(result.status());
            return;
          }
          // Each slot is written by exactly one worker (the one that drew
          // index i), so no synchronization is needed on `results`.
          results[i] = std::move(result).value();
        }
      });
      if (!submitted.ok()) record_error(submitted);
    }
    pool.Wait();
  }

  if (failed.load(std::memory_order_acquire)) return first_error;
  return results;
}

Result<std::vector<FlosResult>> BatchTopK(const Graph& graph,
                                          const std::vector<NodeId>& queries,
                                          int k, const FlosOptions& options,
                                          int num_threads) {
  return BatchTopK(
      [&graph]() -> Result<std::unique_ptr<GraphAccessor>> {
        return std::unique_ptr<GraphAccessor>(
            std::make_unique<InMemoryAccessor>(&graph));
      },
      queries, k, options, num_threads);
}

}  // namespace flos
