#include "core/predicate.h"

#include <algorithm>
#include <cstdlib>

namespace flos {

const char* PredicateTypeName(PredicateType type) {
  switch (type) {
    case PredicateType::kNone:
      return "none";
    case PredicateType::kEquality:
      return "equality";
    case PredicateType::kContainment:
      return "containment";
    case PredicateType::kOverlap:
      return "overlap";
  }
  return "unknown";
}

Result<LabelPredicate> LabelPredicate::Make(PredicateType type,
                                            std::vector<LabelId> labels) {
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  if (type == PredicateType::kNone) {
    if (!labels.empty()) {
      return Status::InvalidArgument(
          "predicate type none cannot carry labels");
    }
  } else if (labels.empty()) {
    return Status::InvalidArgument("predicate needs at least one label");
  }
  for (const LabelId l : labels) {
    if (l == kInvalidLabel) {
      return Status::InvalidArgument("invalid label id in predicate");
    }
  }
  LabelPredicate p;
  p.type_ = type;
  p.labels_ = std::move(labels);
  return p;
}

bool LabelPredicate::Matches(std::span<const LabelId> node_labels) const {
  switch (type_) {
    case PredicateType::kNone:
      return true;
    case PredicateType::kEquality:
      return node_labels.size() == labels_.size() &&
             std::equal(node_labels.begin(), node_labels.end(),
                        labels_.begin());
    case PredicateType::kContainment:
      // Every predicate label must appear in the node's (sorted) set.
      return std::includes(node_labels.begin(), node_labels.end(),
                           labels_.begin(), labels_.end());
    case PredicateType::kOverlap: {
      size_t i = 0;
      size_t j = 0;
      while (i < node_labels.size() && j < labels_.size()) {
        if (node_labels[i] == labels_[j]) return true;
        if (node_labels[i] < labels_[j]) {
          ++i;
        } else {
          ++j;
        }
      }
      return false;
    }
  }
  return false;
}

uint64_t LabelPredicate::MaxMatches(const LabelStore& store) const {
  const auto count = [&](LabelId l) -> uint64_t {
    return l < store.NumLabels() ? store.LabelNodeCount(l) : 0;
  };
  switch (type_) {
    case PredicateType::kNone:
      return store.NumNodes();
    case PredicateType::kEquality:
    case PredicateType::kContainment: {
      // A match carries EVERY predicate label, so no label's node count
      // can be exceeded.
      uint64_t bound = store.NumNodes();
      for (const LabelId l : labels_) bound = std::min(bound, count(l));
      return bound;
    }
    case PredicateType::kOverlap: {
      // A match carries SOME predicate label; the union is at most the sum.
      uint64_t bound = 0;
      for (const LabelId l : labels_) bound += count(l);
      return std::min<uint64_t>(bound, store.NumNodes());
    }
  }
  return store.NumNodes();
}

uint64_t LabelPredicate::Fingerprint() const {
  if (type_ == PredicateType::kNone) return 0;
  // FNV-1a over the type byte then each label id's 4 bytes.
  uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](uint8_t byte) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<uint8_t>(type_));
  for (const LabelId l : labels_) {
    mix(static_cast<uint8_t>(l));
    mix(static_cast<uint8_t>(l >> 8));
    mix(static_cast<uint8_t>(l >> 16));
    mix(static_cast<uint8_t>(l >> 24));
  }
  // 0 is reserved for "no predicate"; remap the (astronomically unlikely)
  // natural 0 so the reservation is airtight.
  return h == 0 ? 1 : h;
}

std::string LabelPredicate::ToString() const {
  if (type_ == PredicateType::kNone) return "none";
  std::string out;
  switch (type_) {
    case PredicateType::kEquality:
      out = "eq:";
      break;
    case PredicateType::kContainment:
      out = "contain:";
      break;
    case PredicateType::kOverlap:
      out = "overlap:";
      break;
    case PredicateType::kNone:
      break;  // unreachable
  }
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(labels_[i]);
  }
  return out;
}

Result<LabelPredicate> ParsePredicate(std::string_view text,
                                      const LabelTable* table) {
  if (text == "none" || text.empty()) return LabelPredicate();
  const size_t colon = text.find(':');
  if (colon == std::string_view::npos) {
    return Status::InvalidArgument(
        "predicate must be 'none' or '<type>:<label>[,<label>...]', got '" +
        std::string(text) + "'");
  }
  const std::string_view type_name = text.substr(0, colon);
  PredicateType type;
  if (type_name == "eq" || type_name == "equality") {
    type = PredicateType::kEquality;
  } else if (type_name == "contain" || type_name == "containment") {
    type = PredicateType::kContainment;
  } else if (type_name == "overlap" || type_name == "any") {
    type = PredicateType::kOverlap;
  } else {
    return Status::InvalidArgument("unknown predicate type '" +
                                   std::string(type_name) + "'");
  }
  std::vector<LabelId> labels;
  std::string_view rest = text.substr(colon + 1);
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    const std::string_view token = rest.substr(0, comma);
    if (comma == std::string_view::npos) {
      rest = {};
    } else {
      rest.remove_prefix(comma + 1);
    }
    if (token.empty()) {
      return Status::InvalidArgument("empty label in predicate '" +
                                     std::string(text) + "'");
    }
    const std::string token_str(token);
    char* end = nullptr;
    const unsigned long long id = std::strtoull(token_str.c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && end != token_str.c_str()) {
      if (id >= kInvalidLabel) {
        return Status::OutOfRange("label id exceeds 32-bit range: " +
                                  token_str);
      }
      labels.push_back(static_cast<LabelId>(id));
      continue;
    }
    if (table == nullptr) {
      return Status::InvalidArgument(
          "non-numeric label '" + token_str +
          "' needs a label table to resolve names");
    }
    const LabelId named = table->Find(token_str);
    if (named == kInvalidLabel) {
      return Status::NotFound("unknown label name '" + token_str + "'");
    }
    labels.push_back(named);
  }
  if (labels.empty()) {
    return Status::InvalidArgument("predicate '" + std::string(text) +
                                   "' has no labels");
  }
  return LabelPredicate::Make(type, std::move(labels));
}

}  // namespace flos
