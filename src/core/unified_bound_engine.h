// Unified lower/upper bound engine for ALL five proximity measures.
//
// One engine, parameterized by measure traits (core/measure_traits.h),
// replaces the former per-family pair (PhpBoundEngine for the PHP-form
// fixed points, ThtBoundEngine for the THT horizon DP): one expansion
// contract, one convergence loop, one deadline path, one storage layout.
//
// Fixed-point family (PHP; EI/DHT/RWR by reduction, Theorems 2 and 6):
// maintains rigorous bounds on the fixed point of
//
//     r = alpha * T r + e_q,   r_q = 1,
//
// restricted to the visited set S, where T is the query-row-zeroed
// transition matrix.
//  * Lower bound: transitions leaving S are deleted (Theorem 3);
//    optionally a star-to-mesh self-loop p_ii = alpha * sum p_ij p_ji is
//    added (Lemma 3).
//  * Upper bound: transitions leaving S are redirected to a dummy node
//    with constant value r_d >= every unvisited proximity (Theorem 5); the
//    self-loop variant additionally splits the dummy mass per Lemma 4.
//  * Inner solve: warm-started fused Gauss–Seidel sweeps — each sweep
//    computes both bounds' dot products in ONE scan of the local CSR and
//    updates them in place. The hot loop runs behind the SweepBackend seam
//    (core/sweep_kernel.h): a scalar reference kernel and a blocked-ELL
//    AVX2 kernel, runtime-dispatched.
//
// Validity under inexact, in-place, REORDERED solves: the true proximity
// vector is a supersolution of the lower system and a subsolution of the
// upper system, and both operators are monotone. Applying a row update to
// ANY mixture of previous-sweep and already-updated values — all certified
// bounds — yields a certified bound again; newer values are tighter, so
// the result is also elementwise at least as tight as the Jacobi iterate
// after the same number of sweeps, REGARDLESS of the order rows are
// visited in. That is what lets a backend reorder rows for SIMD without
// touching certification. Bounds are additionally clamped elementwise
// against their previous values, keeping them monotone across outer
// iterations (Section 5.2) even in floating point.
//
// Horizon-DP family (THT, Appendix 10.4): both bounds are exact L-step DP
// solves of modified systems on S — walks escaping S continue with
// min(remaining horizon, unvisited-hop lower bound) for the lower bound
// and with the full remaining horizon for the upper. The recursion needs
// the step-(t-1) values on the right-hand side, so the DP keeps a Jacobi
// double buffer evaluated by the scalar fused scan (in-place or reordered
// evaluation would mix horizons and is NOT valid here); the SweepBackend
// seam deliberately does not cover it.
//
// Storage: bounds live interleaved — bounds_[2i] = lower_i,
// bounds_[2i+1] = upper_i — so each random column access in a sweep
// touches one cache line instead of two.

#ifndef FLOS_CORE_UNIFIED_BOUND_ENGINE_H_
#define FLOS_CORE_UNIFIED_BOUND_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/local_graph.h"
#include "core/measure_traits.h"
#include "core/sweep_kernel.h"

namespace flos {

/// Configuration of the unified bound engine.
struct UnifiedBoundOptions {
  /// Measure policy: bound family plus alpha/horizon (BoundTraitsFor).
  BoundTraits traits;
  /// Inner-iteration stopping threshold tau (paper Algorithm 7).
  double tolerance = 1e-5;
  /// Safety cap on inner iterations per update.
  uint32_t max_inner_iterations = 10000;
  /// Enables the star-to-mesh self-loop tightening (Section 5.3).
  bool self_loop_tightening = true;
  /// Tightens the dummy value beyond the paper's max-boundary-upper rule
  /// with the free alpha factor (unvisited nodes only neighbor boundary or
  /// unvisited nodes) and the alpha^hop-distance cap. Rigorous; see
  /// CaptureDummyFromBoundary. Off reproduces Algorithm 5 line 7 verbatim.
  bool alpha_dummy_tightening = true;
  /// Whether to fold the per-frontier-node uppers (ComputeOutsideUppers)
  /// into the tight dummy each update is part of the traits
  /// (traits.frontier_dummy; BoundTraitsFor sets it for RWR, whose
  /// termination needs the frontier bound anyway).
  /// Which sweep-kernel implementation runs the fixed-point hot loop.
  SweepBackendKind backend = SweepBackendKind::kAuto;
  /// Worker team for intra-sweep parallelism (block-Jacobi across
  /// contiguous row chunks, Gauss–Seidel within; see FixedPointSweepArgs).
  /// The pool must be DEDICATED to this engine while a solve runs — the
  /// backend uses ThreadPool::Wait as its sweep barrier. nullptr = serial.
  /// Not used by the horizon-DP family (its Jacobi double buffer is pinned
  /// to bit-exact scalar evaluation).
  ThreadPool* sweep_pool = nullptr;
  /// Visited-set size below which solves stay serial even with a pool
  /// attached (small systems lose more to submit/wait synchronization than
  /// chunking saves). The decision is a pure function of the visited size,
  /// so it can only flip at growth — never mid-structure.
  uint32_t parallel_min_rows = 4096;
  /// Anytime hook: solves stop between sweeps once this instant passes
  /// (checked at the amortized convergence checkpoints). Every completed
  /// fixed-point sweep leaves certified bounds, so an interrupted solve is
  /// valid — just looser. A deadline mid-DP abandons the recompute WITHOUT
  /// committing (a partial horizon recursion is not a valid THT bound).
  /// `deadline_hit()` reports the interruption. Default: no deadline.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

/// Bound state for the visited subgraph, all measures. One instance per
/// query WORKSPACE: construct it once over a LocalGraph and Reset() it for
/// each query after the LocalGraph has been Reset+Init'd — buffers are
/// reused across queries, so steady-state serving allocates nothing.
class UnifiedBoundEngine {
 public:
  /// `local` must outlive the engine. The LocalGraph may be empty (not yet
  /// Init'd) or already hold the query node.
  UnifiedBoundEngine(LocalGraph* local, const UnifiedBoundOptions& options);

  /// Returns the engine to its freshly-constructed state for the next
  /// query, with new options (the measure may change freely). Call after
  /// the LocalGraph was Reset+Init'd; keeps every buffer's capacity.
  void Reset(const UnifiedBoundOptions& options);

  /// Records the current boundary's maximum upper bound as the next dummy
  /// value (Algorithm 5 line 7), with the optional tightenings. Call
  /// BEFORE expanding, so the value refers to delta-S of the previous
  /// iteration. No-op for the horizon-DP family (no dummy redirect there).
  void CaptureDummyFromBoundary();

  /// Resizes state after the LocalGraph grew; new nodes start at the
  /// family's trivially valid interval ([0, 1] fixed point, [0, L] DP).
  void OnGrowth();

  /// Recomputes bounds for the current S. Fixed point: refreshes boundary
  /// coefficients, then runs the warm-started fused sweeps; returns the
  /// number of inner sweeps. Horizon DP: one fresh L-step recompute;
  /// returns 1.
  uint32_t UpdateBounds();

  /// Fixed point only: refreshes coefficients and runs only the lower
  /// system. Used by estimate-only consumers (the DNE baseline) that never
  /// need uppers.
  uint32_t UpdateLowerOnly();

  /// Finishing move once the LocalGraph is exhausted (no transitions leave
  /// S). Fixed point: runs the lower system to `final_tolerance` and
  /// collapses upper = lower (the deleted-transition system IS the exact
  /// system); if the deadline cuts the solve short the interval is NOT
  /// collapsed and both bounds stay certified. Horizon DP: one recompute —
  /// the DP is already exact once S is the component.
  uint32_t FinalizeExhausted(double final_tolerance);

  /// True iff the most recent solve stopped on the options deadline rather
  /// than on convergence. Reset by the next Reset() or solve call.
  bool deadline_hit() const { return deadline_hit_; }

  double lower(LocalId i) const { return bounds_[2 * static_cast<size_t>(i)]; }
  double upper(LocalId i) const {
    return bounds_[2 * static_cast<size_t>(i) + 1];
  }

  BoundFamily family() const { return options_.traits.family; }

  /// Name of the sweep backend actually running the fixed-point hot loop.
  const char* backend_name() const { return backend_->name(); }

  /// The Algorithm-5 dummy value (max boundary upper, non-increasing).
  double dummy_value() const { return dummy_mesh_; }

  /// The tightened dummy value that bounds only UNVISITED proximities
  /// (alpha factor, hop cap, frontier uppers). Valid for the plain
  /// redirect-everything-to-dummy construction, but NOT for the
  /// star-to-mesh one, whose redirected mesh edges also land on visited
  /// boundary nodes; the fused sweep therefore evaluates both
  /// constructions per node and keeps the smaller — both are monotone
  /// upper operators, so the pointwise minimum is too.
  double tight_dummy_value() const { return dummy_tight_; }

  /// A certified upper bound on EVERY unvisited node's value, including
  /// nodes reachable only through hidden (truncated-row) edges the frontier
  /// scan never sees. This is exactly dummy_tight_: its capture argument
  /// (max boundary upper with the alpha factor and hop cap) quantifies
  /// over all unvisited nodes, enumerated or not. Termination refinements
  /// that rely on enumerating delta-S-bar must fall back to this when the
  /// LocalGraph has truncated rows.
  double unvisited_value_bound() const { return dummy_tight_; }

  /// Certified upper bounds over the unvisited frontier delta-S-bar,
  /// computed from the boundary's uppers: for v adjacent to S,
  ///   r_v <= alpha * (sum_{u in N_v cap S} p_vu upper_u
  ///                   + (1 - in-mass) * r_d).
  /// Every unvisited node is bounded by `max_value`; nodes not adjacent to
  /// S by an extra alpha factor; `max_degree_weighted` maxes w_v * bound
  /// over delta-S-bar (the quantity FLoS_RWR's termination needs).
  struct OutsideUppers {
    double max_value = 0;            ///< max over delta-S-bar of r-bar_v
    double max_degree_weighted = 0;  ///< max over delta-S-bar of w_v r-bar_v
    bool any = false;
  };
  OutsideUppers ComputeOutsideUppers();

  /// Copies the live (lower, upper) pairs — 2 * Size() doubles — into
  /// `out`, for the warm-subgraph cache. Pair the vector with
  /// dummy_value()/tight_dummy_value() when snapshotting.
  void SaveBounds(std::vector<double>* out) const;

  /// Overwrites the live bounds with a previously saved vector (RestoreBounds
  /// is the warm-start entry: call after Reset() + the LocalGraph restore,
  /// so Size() matches the saved state). The dummies are restored too —
  /// they are non-increasing across a query, so resuming from them is
  /// sound. Invalidates any backend-cached layout.
  void RestoreBounds(const double* data, size_t nodes, double dummy_mesh,
                     double dummy_tight);

  /// Test-only: overwrites node i's stored bounds, bypassing every
  /// certification rule. Exists so tests/check_test.cc can prove the
  /// FLOS_AUDIT sandwich/monotonicity checks actually fire on corrupted
  /// state; never call it from library or application code.
  void InjectBoundsForTest(LocalId i, double lower_value, double upper_value) {
    bounds_[2 * static_cast<size_t>(i)] = lower_value;
    bounds_[2 * static_cast<size_t>(i) + 1] = upper_value;
  }

 private:
  /// Audit tier: aborts unless lower <= upper elementwise (within a
  /// one-ulp-scale slack for the fused fp evaluation). `where` names the
  /// call site in the failure message.
  void AuditBoundSandwich(const char* where) const;

  /// Audit tier: recomputes the clamped Jacobi iterate from `prev` with the
  /// scalar row operator and aborts if any live bound is looser than it —
  /// the tightness floor every sweep (serial Gauss–Seidel, reordered SIMD,
  /// parallel block) must clear by the monotone-mixture argument.
  void AuditNoLooserThanJacobi(const std::vector<double>& prev,
                               bool lower_only) const;

  void RefreshBoundaryCoefficients();

  /// The fused Gauss–Seidel solve (fixed point): one backend sweep per
  /// iteration updates both bounds (or only the lower when `lower_only`),
  /// in place, stopping once the largest elementwise movement of a checked
  /// sweep drops below `tolerance`. Convergence checks are amortized:
  /// every sweep for the first few (warm starts converge immediately),
  /// then every fourth.
  uint32_t FusedSolve(double tolerance, bool lower_only);

  /// The horizon-DP recompute (THT): fresh L-step Jacobi double-buffer
  /// solve, committed through monotone clamps, abandoned uncommitted on
  /// deadline.
  void HorizonDpUpdate();

  FixedPointSweepArgs SweepArgs();

  LocalGraph* local_;
  UnifiedBoundOptions options_;
  std::unique_ptr<SweepBackend> backend_;
  SweepBackendKind backend_kind_ = SweepBackendKind::kAuto;
  /// Number of live nodes (== local_->Size() after OnGrowth). bounds_ may
  /// hold MORE than 2 * nodes_ doubles — with a sweep pool attached it is
  /// sized 4n so [2n, 4n) can hold the per-sweep snapshot — so node counts
  /// must come from here, never from bounds_.size().
  size_t nodes_ = 0;
  /// Interleaved (lower, upper) per LocalId in [0, 2 * nodes_); the
  /// parallel-sweep snapshot half in [2 * nodes_, 4 * nodes_) when a sweep
  /// pool is attached (see FixedPointSweepArgs layout contract).
  std::vector<double> bounds_;
  /// Coefficient of r_i itself (self-loop) in the mesh construction.
  std::vector<double> self_coeff_;
  /// Coefficient of r_d in the mesh construction (alpha^2 (out - loop)).
  std::vector<double> mesh_dummy_coeff_;
  /// Coefficient of r_d in the plain construction (alpha * out mass).
  std::vector<double> plain_dummy_coeff_;
  /// Coefficient of r_d for hidden (non-enumerable) row mass, multiplying
  /// dummy_mesh_ in BOTH constructions (see FixedPointSweepArgs). All-zero
  /// unless the accessor truncates adjacency (shard fringe rows).
  std::vector<double> hidden_coeff_;
  /// Horizon-DP double buffers (work = step t-1, next = step t).
  std::vector<double> work_lo_;
  std::vector<double> work_hi_;
  std::vector<double> next_lo_;
  std::vector<double> next_hi_;
  double dummy_mesh_ = 1.0;   ///< >= unvisited AND visited-boundary values
  double dummy_tight_ = 1.0;  ///< >= unvisited values only
  bool deadline_hit_ = false; ///< last solve stopped on the deadline
};

}  // namespace flos

#endif  // FLOS_CORE_UNIFIED_BOUND_ENGINE_H_
