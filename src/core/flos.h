// FLoS: fast, unified, exact local top-k search (paper Algorithm 2).
//
// Given a query node and a proximity measure, FLoS expands a neighborhood
// around the query best-first, maintains rigorous lower/upper proximity
// bounds for the visited nodes (core/unified_bound_engine.h), and stops as
// soon as the bounds certify the exact top-k — typically after visiting a
// tiny fraction of the graph.
//
// Supported measures:
//   PHP         native (alpha = c)
//   EI, DHT     via rank-equivalence with PHP (Theorem 2; alpha = 1 - c)
//   RWR         via RWR(i) = K * w_i * PHP(i) (Theorem 6; Section 5.6)
//   THT         native finite-horizon bounds (Appendix 10.4)
//
// The returned ranking is exact (up to floating-point solver tolerance).
// Returned scores for EI and RWR are scaled from PHP bounds with a
// query-local estimate of the scale K; their score intervals inherit the
// bound widths.

#ifndef FLOS_CORE_FLOS_H_
#define FLOS_CORE_FLOS_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "core/expansion_policy.h"
#include "core/predicate.h"
#include "core/sweep_kernel.h"
#include "graph/accessor.h"
#include "graph/graph.h"
#include "graph/labels.h"
#include "measures/measure.h"
#include "util/status.h"

namespace flos {

/// FLoS configuration.
struct FlosOptions {
  Measure measure = Measure::kPhp;
  /// Decay factor (PHP, DHT) / restart probability (EI, RWR). In (0, 1).
  double c = 0.5;
  /// Truncation length for THT.
  int tht_length = 10;
  /// Inner-iteration threshold tau (Algorithm 7).
  double tolerance = 1e-5;
  /// Tolerance of the final solve when the component is exhausted.
  double final_tolerance = 1e-12;
  /// Cap on inner iterations per bound update.
  uint32_t max_inner_iterations = 10000;
  /// Star-to-mesh self-loop tightening (Section 5.3). On by default; the
  /// ablation bench measures its effect.
  bool self_loop_tightening = true;
  /// Number of boundary nodes expanded per bound update. 1 reproduces the
  /// paper's Algorithm 2 exactly (one LocalExpansion per iteration); 0
  /// (default) adapts the batch to max(1, |S|/8), which keeps the number
  /// of bound updates logarithmic in the visited count — the bounds stay
  /// rigorous under ANY expansion schedule, so exactness is unaffected;
  /// the search may visit slightly more nodes in exchange for far fewer
  /// O(edges(S)) bound solves. The ablation bench quantifies the trade.
  uint32_t expansion_batch = 0;
  /// How the boundary is ranked for expansion (core/expansion_policy.h).
  /// Exactness holds under ANY schedule; policies only trade how many
  /// nodes are visited before certification.
  ExpansionPolicyKind expansion_policy = ExpansionPolicyKind::kBestFirst;
  /// Which kernel implementation runs the fixed-point inner solves
  /// (core/sweep_kernel.h). kAuto picks the AVX2 blocked-ELL backend when
  /// the CPU supports it, the scalar reference kernel otherwise.
  SweepBackendKind sweep_backend = SweepBackendKind::kAuto;
  /// Worker threads for intra-query parallel bound sweeps (block-Jacobi
  /// across contiguous row chunks, Gauss–Seidel within — see
  /// core/sweep_kernel.h). 1 = serial (default). With t > 1 the engine
  /// owns a dedicated team of t - 1 workers and the calling thread runs
  /// the remaining chunk, so t threads sweep in total. Deterministic and
  /// certification-preserving; small visited sets stay serial (see
  /// sweep_parallel_min_rows).
  int sweep_threads = 1;
  /// Visited-set size below which sweeps stay serial even when
  /// sweep_threads > 1 (synchronization costs more than chunking saves on
  /// small systems).
  uint32_t sweep_parallel_min_rows = 4096;
  /// If > 0, stop after visiting this many nodes and return the current
  /// best-effort ranking (stats.exact will be false). 0 = run to proof.
  uint64_t max_visited = 0;
  /// Nodes with id >= this limit may be VISITED (they enter the boundary
  /// and participate in the rigorous bounds) but never EXPANDED. Sharded
  /// serving (graph/partition.h) sets it to the shard's interior size: the
  /// outermost halo ring is present with possibly truncated adjacency, so
  /// expanding it would be unsound, while merely bounding it is not. When
  /// the only remaining frontier is past the limit and the top-k is not yet
  /// certified, the search stops uncertified with stats.frontier_clipped
  /// set. Certification reached before that is exact as usual — the clipped
  /// nodes' bounds took part in the termination proof. Default: no limit.
  uint64_t expandable_limit = UINT64_MAX;
  /// Label-constrained ("filtered") search. When `predicate` is non-kNone,
  /// `labels` must be a store covering the accessor's nodes, and the query
  /// returns the exact top-k among MATCHING nodes only. Non-matching
  /// visited nodes are transit-only: they stay in the local subgraph and
  /// the bound sweeps (conducting probability mass exactly as before), but
  /// they never enter the candidate set and the certified-termination test
  /// re-derives over matching nodes — see DESIGN.md "Filtered top-k" for
  /// the soundness argument. When the predicate can match fewer than k
  /// nodes, all reachable matching nodes are returned (certified). The
  /// store is not owned and must outlive the call.
  const LabelStore* labels = nullptr;
  LabelPredicate predicate;
  /// Absolute wall-clock deadline for the search (anytime termination, the
  /// serving layer's graceful-degradation hook). When the deadline passes
  /// mid-search, the engine stops expanding — including between inner
  /// bound sweeps — and returns the current best-effort top-k with its
  /// still-certified lower/upper bounds (stats.exact = false,
  /// stats.deadline_expired = true). The bounds stay rigorous at any
  /// instant (Theorems 3-5: every partial Gauss-Seidel state is a
  /// certified bound), so an expired answer is a usable interval answer,
  /// not an error. Default: no deadline.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

/// One result entry. `score` is the measure's value ((lower+upper)/2 when
/// an interval remains); lower/upper bracket the exact value.
struct ScoredNode {
  NodeId node = kInvalidNode;
  double score = 0;
  double lower = 0;
  double upper = 0;
};

/// Per-query search statistics.
struct FlosStats {
  uint64_t visited_nodes = 0;   ///< |S| = neighbor-list fetches
  uint64_t expansions = 0;      ///< outer iterations (Algorithm 2)
  uint64_t inner_iterations = 0;///< total Algorithm-7 sweeps
  bool exact = false;           ///< true iff the top-k was certified
  bool exhausted_component = false;  ///< visited the query's whole component
  bool deadline_expired = false;  ///< search was cut short by the deadline
  /// True iff the search ran out of expandable frontier because of
  /// FlosOptions::expandable_limit before certifying (sharded serving: the
  /// query needed to walk beyond the replicated halo). Implies !exact; the
  /// returned bounds are still rigorous.
  bool frontier_clipped = false;
  /// True iff the result was served from a QueryCache hit (the stats above
  /// then describe the original certifying run, not this call).
  bool cache_hit = false;
  /// True iff this run resumed from a warm-subgraph cache hit
  /// (core/subgraph_cache.h): expansion restarted from the cached visited
  /// set and the sweeps from its converged bounds. The answer itself was
  /// still computed (and certified) by THIS run — contrast cache_hit.
  bool subgraph_hit = false;
  /// Coarse per-phase wall-clock breakdown, accumulated at outer-iteration
  /// granularity: frontier ranking + expansion fetches + growth, bound
  /// solves (sweeps / horizon DP), and termination checks + result
  /// assembly. On a result-cache hit these describe the original
  /// certifying run, like the rest of the stats.
  uint64_t expand_ns = 0;
  uint64_t solve_ns = 0;
  uint64_t select_ns = 0;
};

/// Result of a FLoS query: top-k nodes, closest first.
struct FlosResult {
  std::vector<ScoredNode> topk;
  FlosStats stats;
};

/// Runs FLoS for the top-k proximity query. `k >= 1`. If the query's
/// connected component holds fewer than k non-query nodes, all of them are
/// returned (stats.exhausted_component is set).
///
/// One-shot convenience: each call builds and tears down the whole query
/// workspace. Services answering many queries should hold a `FlosEngine`
/// (core/flos_engine.h), which reuses the workspace across queries, or use
/// `BatchTopK` (core/batch_topk.h) to fan a query batch across threads.
Result<FlosResult> FlosTopK(GraphAccessor* accessor, NodeId query, int k,
                            const FlosOptions& options);

/// Convenience overload over an in-memory graph.
Result<FlosResult> FlosTopK(const Graph& graph, NodeId query, int k,
                            const FlosOptions& options);

/// Multi-source variant: the k nodes closest to the query SET, which acts
/// as one absorbing target (walks stop at any member) — e.g. "customers
/// nearest any of our stores". Supported for the absorbing-set measures
/// PHP, DHT, and THT; EI/RWR are single-source by definition (Theorem 6)
/// and are rejected. Queries must be distinct; they are excluded from the
/// result.
Result<FlosResult> FlosTopKSet(GraphAccessor* accessor,
                               const std::vector<NodeId>& queries, int k,
                               const FlosOptions& options);

/// Convenience overload over an in-memory graph.
Result<FlosResult> FlosTopKSet(const Graph& graph,
                               const std::vector<NodeId>& queries, int k,
                               const FlosOptions& options);

/// Detailed bound trajectories for small-graph inspection (Figure 4): the
/// per-iteration lower/upper bounds of every visited node, in the PHP-form
/// internal space. Runs FLoS without early termination until the component
/// is exhausted or `max_iterations` expansions happened.
struct BoundTrace {
  struct Iteration {
    std::vector<NodeId> nodes;   // visited nodes, local order
    std::vector<double> lower;   // parallel to nodes
    std::vector<double> upper;
    double dummy_value = 1.0;
  };
  std::vector<Iteration> iterations;
};
Result<BoundTrace> TraceFlosBounds(const Graph& graph, NodeId query, double c,
                                   bool self_loop_tightening,
                                   uint32_t max_iterations = 100);

}  // namespace flos

#endif  // FLOS_CORE_FLOS_H_
