// Label predicates for filtered top-k queries.
//
// A filtered query asks for the top-k nodes MATCHING a predicate over the
// per-node label sets (graph/labels.h). The three predicate types mirror
// UNG's filtered-ANN semantics, with f_v the candidate node's label set
// and f_q the predicate's label set:
//
//   Equality     f_v == f_q          (exactly these labels)
//   Containment  f_q is a subset of f_v   (all of these labels)
//   Overlap      f_q intersects f_v  (any of these labels)
//
// `Matches` is the per-node fast path the engine calls inside its
// termination check: one linear merge over two short sorted arrays, no
// allocation. `Fingerprint` condenses (type, labels) into 64 bits for the
// query-cache key — two requests with different predicates must never
// share a cached answer (see core/query_cache.h and DESIGN.md).

#ifndef FLOS_CORE_PREDICATE_H_
#define FLOS_CORE_PREDICATE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/labels.h"
#include "util/status.h"

namespace flos {

/// Wire-stable predicate discriminant (serialized as one byte in the
/// binary protocol's QUERY frame — values must never be renumbered).
enum class PredicateType : uint8_t {
  kNone = 0,         ///< unfiltered query (matches everything)
  kEquality = 1,     ///< f_v == f_q
  kContainment = 2,  ///< f_q subset of f_v
  kOverlap = 3,      ///< f_q intersects f_v
};

/// Returns a stable lowercase name ("none", "equality", ...).
const char* PredicateTypeName(PredicateType type);

/// A label predicate: a type plus a sorted, deduplicated label-id set.
/// Default-constructed (kNone) matches every node and is what unfiltered
/// code paths carry — `empty()` is the "no filtering requested" test.
class LabelPredicate {
 public:
  LabelPredicate() = default;

  /// Builds a predicate; `labels` is sorted + deduplicated internally.
  /// A non-kNone type requires at least one label (InvalidArgument
  /// otherwise); kNone requires none.
  static Result<LabelPredicate> Make(PredicateType type,
                                     std::vector<LabelId> labels);

  PredicateType type() const { return type_; }
  std::span<const LabelId> labels() const { return labels_; }
  bool empty() const { return type_ == PredicateType::kNone; }

  /// True iff a node carrying `node_labels` (sorted ascending, the
  /// LabelStore::Labels contract) satisfies the predicate. kNone matches
  /// everything, including label-less nodes.
  bool Matches(std::span<const LabelId> node_labels) const;

  /// Upper bound on how many nodes of `store` can match: min (eq /
  /// containment) or sum (overlap) of the per-label node counts. Exact
  /// only for single-label predicates; always an upper bound, which is
  /// what the engine's k clamp and certified-empty early exit need.
  /// Labels outside the store's universe contribute 0.
  uint64_t MaxMatches(const LabelStore& store) const;

  /// 64-bit digest of (type, labels) for cache keying. kNone digests to 0;
  /// distinct predicates collide with probability ~2^-64 (FNV-1a over the
  /// type byte and the sorted id array).
  uint64_t Fingerprint() const;

  /// Renders "none" or "<type>:<id>,<id>,..." (numeric ids). ParsePredicate
  /// accepts the output.
  std::string ToString() const;

  friend bool operator==(const LabelPredicate&,
                         const LabelPredicate&) = default;

 private:
  PredicateType type_ = PredicateType::kNone;
  std::vector<LabelId> labels_;  ///< sorted ascending, deduplicated
};

/// Parses "none", or "<type>:<label>[,<label>...]" where <type> is one of
/// eq | equality | contain | containment | overlap | any, and each <label>
/// is a numeric label id — or, when `table` is non-null, a label name
/// looked up in it (unknown names fail with NotFound). Used by the CLI
/// flags and the bench harness.
Result<LabelPredicate> ParsePredicate(std::string_view text,
                                      const LabelTable* table = nullptr);

}  // namespace flos

#endif  // FLOS_CORE_PREDICATE_H_
