// Reusable FLoS query engine: one per worker thread, many queries.
//
// `FlosTopK` (core/flos.h) rebuilds the entire per-query state — visited
// index, neighbor lists, bound vectors — on every call, so sustained
// throughput is dominated by allocator traffic rather than the algorithm.
// `FlosEngine` owns that state as a persistent workspace (LocalGraph with
// epoch-versioned node indexes, the unified bound engine, the
// frontier/candidate scratch) and resets it in O(|S|) between queries;
// steady-state queries allocate nothing. `FlosTopK`/`FlosTopKSet` remain
// as thin wrappers that construct a throwaway engine.
//
// Threading: an engine is bound to one GraphAccessor and is
// thread-compatible, not thread-safe. Concurrent serving uses one engine
// (with its own accessor) per thread over one shared immutable graph — see
// the GraphAccessor thread-safety contract (graph/accessor.h) and
// `BatchTopK` (core/batch_topk.h), which implements exactly that pattern.
// The optional QueryCache is the one shared piece and is itself
// thread-safe.
//
// Determinism: for a given accessor and options, a reused engine returns
// bit-identical results and statistics to a freshly constructed one
// (covered by tests/engine_reuse_test.cc).

#ifndef FLOS_CORE_FLOS_ENGINE_H_
#define FLOS_CORE_FLOS_ENGINE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/flos.h"
#include "core/local_graph.h"
#include "core/query_cache.h"
#include "core/subgraph_cache.h"
#include "core/unified_bound_engine.h"
#include "graph/accessor.h"
#include "graph/graph.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace flos {

/// Long-lived FLoS query workspace over one accessor. Measures and options
/// may vary freely from call to call.
class FlosEngine {
 public:
  /// `accessor` must outlive the engine. Allocates the workspace sized to
  /// the accessor's index hint; no per-query allocation afterwards.
  explicit FlosEngine(GraphAccessor* accessor);

  FlosEngine(const FlosEngine&) = delete;
  FlosEngine& operator=(const FlosEngine&) = delete;

  /// Single-source exact top-k query; semantics identical to FlosTopK.
  Result<FlosResult> TopK(NodeId query, int k, const FlosOptions& options);

  /// Multi-source (absorbing-set) variant; semantics identical to
  /// FlosTopKSet.
  Result<FlosResult> TopKSet(const std::vector<NodeId>& queries, int k,
                             const FlosOptions& options);

  /// Attaches a shared certified-result cache (core/query_cache.h), or
  /// detaches with nullptr. Not owned; must outlive the engine while
  /// attached. Single-source queries consult it before searching (keyed on
  /// the accessor's current graph epoch) and deposit certified answers
  /// after; multi-source queries bypass it.
  void set_query_cache(QueryCache* cache) { query_cache_ = cache; }
  QueryCache* query_cache() const { return query_cache_; }

  /// Attaches a shared warm-subgraph cache (core/subgraph_cache.h), or
  /// detaches with nullptr. Not owned; must outlive the engine while
  /// attached. On a result-cache miss, eligible single-source queries
  /// (no max_visited / expandable_limit clipping) look up a snapshot for
  /// (seed, bound family, alpha/horizon, epoch): a hit skips expansion and
  /// resumes sweeping from the cached converged bounds; certified
  /// completions deposit their expanded state back.
  void set_subgraph_cache(SubgraphCache* cache) { subgraph_cache_ = cache; }
  SubgraphCache* subgraph_cache() const { return subgraph_cache_; }

  GraphAccessor* accessor() const { return accessor_; }

 private:
  /// A visited node with its certified rank-value interval.
  struct Candidate {
    LocalId local;
    double rank_lower;
    double rank_upper;
  };

  /// Maximum weighted degree among nodes neither visited nor adjacent to
  /// the visited set, via the accessor's descending degree order (Section
  /// 5.6). The cursor only advances within a query (membership only
  /// grows) and rewinds to 0 between queries.
  double MaxUnknownDegree();

  GraphAccessor* accessor_;
  LocalGraph local_;
  UnifiedBoundEngine bounds_;
  QueryCache* query_cache_ = nullptr;
  SubgraphCache* subgraph_cache_ = nullptr;
  /// Worker team for FlosOptions::sweep_threads > 1, owned by the engine
  /// and dedicated to its sweeps (the backend uses ThreadPool::Wait as its
  /// barrier). Lazily (re)created when the requested thread count changes.
  std::unique_ptr<ThreadPool> sweep_pool_;
  size_t degree_cursor_ = 0;

  // Per-query scratch, reused across calls.
  std::vector<Candidate> interior_;
  std::vector<Candidate> selected_;
  std::vector<Candidate> pool_;
  std::vector<std::pair<double, LocalId>> frontier_;
  /// Filtered queries: match_[local] == 1 iff the node satisfies the
  /// request predicate. Filled incrementally (local ids are append-only
  /// within a query); empty and unused for unfiltered queries.
  std::vector<uint8_t> match_;
};

}  // namespace flos

#endif  // FLOS_CORE_FLOS_ENGINE_H_
