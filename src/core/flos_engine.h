// Reusable FLoS query engine: one per worker thread, many queries.
//
// `FlosTopK` (core/flos.h) rebuilds the entire per-query state — visited
// index, neighbor lists, bound vectors — on every call, so sustained
// throughput is dominated by allocator traffic rather than the algorithm.
// `FlosEngine` owns that state as a persistent workspace (LocalGraph with
// epoch-versioned node indexes, both bound engines, frontier/candidate
// scratch) and resets it in O(|S|) between queries; steady-state queries
// allocate nothing. `FlosTopK`/`FlosTopKSet` remain as thin wrappers that
// construct a throwaway engine.
//
// Threading: an engine is bound to one GraphAccessor and is
// thread-compatible, not thread-safe. Concurrent serving uses one engine
// (with its own accessor) per thread over one shared immutable graph — see
// the GraphAccessor thread-safety contract (graph/accessor.h) and
// `BatchTopK` (core/batch_topk.h), which implements exactly that pattern.
//
// Determinism: for a given accessor and options, a reused engine returns
// bit-identical results and statistics to a freshly constructed one
// (covered by tests/engine_reuse_test.cc).

#ifndef FLOS_CORE_FLOS_ENGINE_H_
#define FLOS_CORE_FLOS_ENGINE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/bound_engine.h"
#include "core/flos.h"
#include "core/local_graph.h"
#include "core/tht_bound_engine.h"
#include "graph/accessor.h"
#include "graph/graph.h"
#include "util/status.h"

namespace flos {

/// Long-lived FLoS query workspace over one accessor. Measures and options
/// may vary freely from call to call.
class FlosEngine {
 public:
  /// `accessor` must outlive the engine. Allocates the workspace sized to
  /// the accessor's index hint; no per-query allocation afterwards.
  explicit FlosEngine(GraphAccessor* accessor);

  FlosEngine(const FlosEngine&) = delete;
  FlosEngine& operator=(const FlosEngine&) = delete;

  /// Single-source exact top-k query; semantics identical to FlosTopK.
  Result<FlosResult> TopK(NodeId query, int k, const FlosOptions& options);

  /// Multi-source (absorbing-set) variant; semantics identical to
  /// FlosTopKSet.
  Result<FlosResult> TopKSet(const std::vector<NodeId>& queries, int k,
                             const FlosOptions& options);

  GraphAccessor* accessor() const { return accessor_; }

 private:
  /// A visited node with its certified rank-value interval.
  struct Candidate {
    LocalId local;
    double rank_lower;
    double rank_upper;
  };

  // Measure-uniform views over whichever bound engine the current query
  // uses (PHP-form for PHP/EI/DHT/RWR, finite-horizon DP for THT).
  double BoundLower(LocalId i) const {
    return use_tht_ ? tht_.lower(i) : php_.lower(i);
  }
  double BoundUpper(LocalId i) const {
    return use_tht_ ? tht_.upper(i) : php_.upper(i);
  }
  void CaptureDummy();
  void OnGrowth();
  uint32_t UpdateBounds();
  uint32_t FinalizeBounds(double final_tolerance);

  /// Maximum weighted degree among nodes neither visited nor adjacent to
  /// the visited set, via the accessor's descending degree order (Section
  /// 5.6). The cursor only advances within a query (membership only
  /// grows) and rewinds to 0 between queries.
  double MaxUnknownDegree();

  GraphAccessor* accessor_;
  LocalGraph local_;
  PhpBoundEngine php_;
  ThtBoundEngine tht_;
  bool use_tht_ = false;
  size_t degree_cursor_ = 0;

  // Per-query scratch, reused across calls.
  std::vector<Candidate> interior_;
  std::vector<Candidate> selected_;
  std::vector<Candidate> pool_;
  std::vector<std::pair<double, LocalId>> frontier_;
};

}  // namespace flos

#endif  // FLOS_CORE_FLOS_ENGINE_H_
