// Expansion policies: which boundary node to expand next.
//
// FLoS's exactness does not depend on the expansion schedule — the bounds
// are rigorous for EVERY visited set S, so any policy terminates with the
// same certified top-k; policies differ only in how many nodes they visit
// before the bounds separate the k-th from the (k+1)-th candidate. That
// makes the scheduler a clean seam: a policy scores each boundary node
// from its certified rank interval, and the engine expands in descending
// score order.
//
//  * BestFirst — the paper's Algorithm 3: priority = the interval
//    midpoint's rank (negated for minimize measures). Expands where the
//    answer probably is.
//  * BoundGapGreedy — priority = expected tightening of the contested
//    gap: a node whose interval straddles the current k-th guaranteed
//    rank is what blocks certification, and its interval width is an
//    upper bound on how much one expansion can move the decision; nodes
//    whose intervals sit clear of the threshold get their distance
//    subtracted. Expands where the PROOF is stuck.
//
// Policies are stateless; the engine passes the per-query context (k,
// rank direction, last certification threshold) each time.

#ifndef FLOS_CORE_EXPANSION_POLICY_H_
#define FLOS_CORE_EXPANSION_POLICY_H_

namespace flos {

/// Which expansion policy the FLoS driver uses.
enum class ExpansionPolicyKind { kBestFirst, kBoundGapGreedy };

/// Per-query facts a policy may use when scoring a boundary node.
struct ExpansionContext {
  /// Rank direction: true when smaller rank values are better (THT).
  bool minimize = false;
  /// The certification threshold of the most recent termination check —
  /// the k-th best guaranteed rank value — when one exists. Before the
  /// first check (or while fewer than k interior nodes exist) there is no
  /// threshold.
  bool has_threshold = false;
  double threshold = 0;
};

/// A boundary-node scoring policy. Stateless and thread-compatible; the
/// returned priority is "larger = expand earlier".
class ExpansionPolicy {
 public:
  virtual ~ExpansionPolicy() = default;
  virtual const char* name() const = 0;
  /// Scores a boundary node from its certified rank interval
  /// [rank_lower, rank_upper] (already in rank space: degree-weighted for
  /// RWR, raw values otherwise).
  virtual double Priority(double rank_lower, double rank_upper,
                          const ExpansionContext& context) const = 0;
};

/// Returns the process-wide instance for `kind` (policies are stateless).
const ExpansionPolicy* GetExpansionPolicy(ExpansionPolicyKind kind);

/// Human-readable kind name ("best_first", "bound_gap_greedy").
const char* ExpansionPolicyKindName(ExpansionPolicyKind kind);

}  // namespace flos

#endif  // FLOS_CORE_EXPANSION_POLICY_H_
