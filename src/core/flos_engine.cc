#include "core/flos_engine.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace flos {

namespace {

// Internal ranking mode. PHP/EI/DHT rank by the PHP-form value; RWR ranks
// by w_i * value (Section 5.6); THT ranks by its own value, minimized.
enum class RankMode { kValue, kDegreeWeighted, kMinimizeValue };

RankMode RankModeFor(Measure m) {
  switch (m) {
    case Measure::kRwr:
      return RankMode::kDegreeWeighted;
    case Measure::kTht:
      return RankMode::kMinimizeValue;
    default:
      return RankMode::kValue;
  }
}

double AlphaFor(const FlosOptions& options) {
  // PHP uses its decay directly; EI/DHT/RWR reduce to a PHP system with
  // decay 1 - c (Theorems 2, 6).
  return options.measure == Measure::kPhp ? options.c : 1.0 - options.c;
}

}  // namespace

FlosEngine::FlosEngine(GraphAccessor* accessor)
    : accessor_(accessor),
      local_(accessor),
      php_(&local_, BoundEngineOptions{}),
      tht_(&local_, /*length=*/1) {}

void FlosEngine::CaptureDummy() {
  if (!use_tht_) php_.CaptureDummyFromBoundary();
}

void FlosEngine::OnGrowth() {
  if (use_tht_) {
    tht_.OnGrowth();
  } else {
    php_.OnGrowth();
  }
}

uint32_t FlosEngine::UpdateBounds() {
  if (!use_tht_) return php_.UpdateBounds();
  tht_.UpdateBounds();
  return 1;
}

uint32_t FlosEngine::FinalizeBounds(double final_tolerance) {
  if (!use_tht_) return php_.FinalizeExhausted(final_tolerance);
  tht_.UpdateBounds();  // DP is already exact once S is the component
  return 1;
}

double FlosEngine::MaxUnknownDegree() {
  const auto& order = accessor_->DegreeOrder();
  while (degree_cursor_ < order.size() &&
         (local_.Contains(order[degree_cursor_]) ||
          local_.IsOutsideAdjacent(order[degree_cursor_]))) {
    ++degree_cursor_;
  }
  if (degree_cursor_ >= order.size()) return 0;
  return accessor_->WeightedDegree(order[degree_cursor_]);
}

Result<FlosResult> FlosEngine::TopK(NodeId query, int k,
                                    const FlosOptions& options) {
  return TopKSet({query}, k, options);
}

Result<FlosResult> FlosEngine::TopKSet(const std::vector<NodeId>& queries,
                                       int k, const FlosOptions& options) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (!(options.c > 0) || !(options.c < 1)) {
    return Status::InvalidArgument("c must be in (0, 1)");
  }
  if (options.measure == Measure::kTht && options.tht_length < 1) {
    return Status::InvalidArgument("THT length must be >= 1");
  }
  if (queries.empty()) {
    return Status::InvalidArgument("need at least one query node");
  }
  if (queries.size() > 1 && (options.measure == Measure::kEi ||
                             options.measure == Measure::kRwr)) {
    return Status::InvalidArgument(
        "multi-source queries support the absorbing-set measures "
        "(PHP, DHT, THT); EI/RWR are defined per single source (Theorem 6)");
  }
  for (const NodeId q : queries) {
    if (q >= accessor_->NumNodes()) {
      return Status::OutOfRange("query node out of range");
    }
  }

  const RankMode mode = RankModeFor(options.measure);
  const bool minimize = mode == RankMode::kMinimizeValue;

  // Rewind the workspace for this query; an error return leaves it ready
  // to be rewound again, so failed calls don't poison the engine.
  local_.Reset();
  FLOS_RETURN_IF_ERROR(local_.Init(queries));
  use_tht_ = options.measure == Measure::kTht;
  if (use_tht_) {
    tht_.Reset(options.tht_length, options.deadline);
  } else {
    BoundEngineOptions be;
    be.alpha = AlphaFor(options);
    be.tolerance = options.tolerance;
    be.max_inner_iterations = options.max_inner_iterations;
    be.self_loop_tightening = options.self_loop_tightening;
    // Degree-weighted searches need the frontier bound for termination
    // anyway; folding it into the dummy value is then nearly free.
    be.frontier_dummy = options.measure == Measure::kRwr;
    be.deadline = options.deadline;
    php_.Reset(be);
  }
  degree_cursor_ = 0;

  // Anytime deadline (the serving layer's graceful-degradation hook). The
  // check is threaded through every long-running stretch: the expansion
  // loop, the inner solves (via the bound-engine options above), and the
  // outer iteration. Bounds are certified at every instant, so stopping
  // anywhere yields a valid interval answer — just an uncertified one.
  const bool has_deadline =
      options.deadline != std::chrono::steady_clock::time_point::max();
  const auto deadline_passed = [&]() {
    return has_deadline &&
           std::chrono::steady_clock::now() >= options.deadline;
  };

  FlosResult result;
  FlosStats& stats = result.stats;

  // Rank value of node i given one of its bounds.
  const auto rank_of = [&](LocalId i, double value) {
    return mode == RankMode::kDegreeWeighted
               ? local_.WeightedDegree(i) * value
               : value;
  };

  selected_.clear();  // current certified-or-not top-k

  // Termination check (Algorithm 6 + the RWR extension). Fills `selected_`
  // with the current top-k interior candidates either way.
  const auto check_termination = [&]() -> bool {
    interior_.clear();
    for (LocalId i = 0; i < local_.Size(); ++i) {
      if (local_.IsQueryLocal(i) || local_.IsBoundary(i)) continue;
      interior_.push_back(
          {i, rank_of(i, BoundLower(i)), rank_of(i, BoundUpper(i))});
    }
    if (interior_.size() < static_cast<size_t>(k)) return false;
    // For maximize modes, pick k largest guaranteed (lower) rank values;
    // for minimize (THT), pick k smallest guaranteed (upper) values.
    const auto better = [&](const Candidate& a, const Candidate& b) {
      return minimize ? a.rank_upper < b.rank_upper
                      : a.rank_lower > b.rank_lower;
    };
    std::nth_element(interior_.begin(), interior_.begin() + (k - 1),
                     interior_.end(), better);
    selected_.assign(interior_.begin(), interior_.begin() + k);
    // Threshold: worst guaranteed value inside K.
    double threshold = minimize ? -1e300 : 1e300;
    for (const Candidate& c : selected_) {
      threshold = minimize ? std::max(threshold, c.rank_upper)
                           : std::min(threshold, c.rank_lower);
    }
    // Opponents: every other visited node's optimistic value.
    double best_other = minimize ? 1e300 : -1e300;
    for (size_t i = k; i < interior_.size(); ++i) {
      best_other = minimize ? std::min(best_other, interior_[i].rank_lower)
                            : std::max(best_other, interior_[i].rank_upper);
    }
    for (LocalId i = 0; i < local_.Size(); ++i) {
      if (local_.IsQueryLocal(i) || !local_.IsBoundary(i)) continue;
      const double opt =
          minimize ? rank_of(i, BoundLower(i)) : rank_of(i, BoundUpper(i));
      best_other = minimize ? std::min(best_other, opt)
                            : std::max(best_other, opt);
    }
    bool ok = minimize ? threshold <= best_other : threshold >= best_other;
#ifdef FLOS_DEBUG_TERMINATION
    std::fprintf(stderr, "[term] |S|=%u interior=%zu thr=%g other=%g ok=%d\n",
                 local_.Size(), interior_.size(), threshold, best_other, ok);
#endif
    if (!ok) return false;
    if (mode == RankMode::kDegreeWeighted) {
      // Unvisited nodes, refined beyond Section 5.6's w(unvisited) * max
      // boundary bound. Frontier-adjacent nodes (delta-S-bar) get
      // per-node certified uppers from the boundary's bounds and their
      // probed degrees; every deeper node is bounded by alpha * the
      // frontier maximum (its neighbors are all unvisited), with the
      // unknown-degree maximum from the global degree order:
      //
      //   w_v PHP(v) <= max( max_{v in dSbar} w_v r-bar_v,
      //                      maxdeg(unknown) * alpha * max_{dSbar} r-bar_v )
      const double alpha = 1.0 - options.c;
      const auto out = php_.ComputeOutsideUppers();
      if (out.any) {
        const double w_unknown = MaxUnknownDegree();
        const double unvisited_bound =
            std::max(out.max_degree_weighted,
                     w_unknown * alpha * out.max_value);
        if (threshold < unvisited_bound) return false;
      }
    }
    FLOS_AUDIT_SCOPE {
      // Certified-termination ground truth, recomputed without the
      // nth_element bookkeeping above: the worst guaranteed rank inside
      // the selected top-k must genuinely clear the optimistic rank of
      // EVERY other visited non-query node. Same fp values as the fast
      // path, so the comparisons are exact.
      double audit_threshold = minimize ? -1e300 : 1e300;
      for (const Candidate& c : selected_) {
        audit_threshold = minimize ? std::max(audit_threshold, c.rank_upper)
                                   : std::min(audit_threshold, c.rank_lower);
      }
      const auto is_selected = [&](LocalId i) {
        for (const Candidate& c : selected_) {
          if (c.local == i) return true;
        }
        return false;
      };
      for (LocalId i = 0; i < local_.Size(); ++i) {
        if (local_.IsQueryLocal(i) || is_selected(i)) continue;
        const double opt =
            minimize ? rank_of(i, BoundLower(i)) : rank_of(i, BoundUpper(i));
        if (minimize) {
          FLOS_CHECK_LE(audit_threshold, opt,
                        "top-k termination fired before the k-th upper "
                        "cleared a competing lower");
        } else {
          FLOS_CHECK_GE(audit_threshold, opt,
                        "top-k termination fired before the k-th lower "
                        "cleared a competing upper");
        }
      }
    }
    return true;
  };

  // Main loop (Algorithm 2, with optional batched LocalExpansion).
  bool certified = false;
  bool expired = false;
  while (true) {
    // Rank the boundary by average bound (Algorithm 3); at t=1 the only
    // boundary node is the query itself.
    frontier_.clear();
    for (LocalId i = 0; i < local_.Size(); ++i) {
      if (!local_.IsBoundary(i)) continue;
      const double mid = 0.5 * (BoundLower(i) + BoundUpper(i));
      frontier_.push_back({rank_of(i, mid), i});
    }
    if (frontier_.empty()) {
      // Component exhausted: finish with a tight solve. The solve itself
      // honors the deadline; if it was cut short the bounds are still
      // certified but not yet exact, so the result stays uncertified.
      stats.inner_iterations += FinalizeBounds(options.final_tolerance);
      const bool finalize_interrupted =
          use_tht_ ? tht_.deadline_hit() : php_.deadline_hit();
      if (finalize_interrupted) {
        expired = true;
        break;
      }
      stats.exhausted_component = true;
      certified = true;
      break;
    }
    std::sort(frontier_.begin(), frontier_.end(),
              [&](const auto& a, const auto& b) {
                return minimize ? a.first < b.first : a.first > b.first;
              });
    // Adaptive mode targets ~12.5% growth of |S| per bound update, so the
    // number of O(edges(S)) updates stays logarithmic in the visited count
    // while overshoot past the certification point stays small.
    const uint64_t grow_target =
        options.expansion_batch > 0
            ? 0
            : local_.Size() + std::max<uint64_t>(1, local_.Size() / 8);

    CaptureDummy();  // r_d from delta-S of the previous iteration
    size_t expanded = 0;
    for (const auto& [priority, node] : frontier_) {
      (void)priority;
      FLOS_ASSIGN_OR_RETURN(const uint32_t added, local_.Expand(node));
      (void)added;
      ++stats.expansions;
      ++expanded;
      if (options.expansion_batch > 0) {
        if (expanded >= options.expansion_batch) break;
      } else if (local_.Size() >= grow_target) {
        break;
      }
      if (options.max_visited > 0 && local_.Size() >= options.max_visited) {
        break;
      }
      if (deadline_passed()) {
        expired = true;
        break;
      }
    }
    // Even on an expired deadline the freshly expanded nodes need their
    // bound slots (OnGrowth seeds them with the trivially valid [0, 1] /
    // [0, L] intervals); the update after it is deadline-aware and exits
    // after at most a few sweeps.
    OnGrowth();
    stats.inner_iterations += UpdateBounds();

    if (!expired && check_termination()) {
      certified = true;
      break;
    }
    if (options.max_visited > 0 && local_.Size() >= options.max_visited) {
      break;  // best-effort cutoff
    }
    if (expired || deadline_passed()) {
      expired = true;
      break;
    }
  }
  stats.visited_nodes = local_.Size();
  stats.exact = certified;
  stats.deadline_expired = expired;
  // Anytime-certification contract: a deadline-expired answer must never
  // claim exactness — the two flags are mutually exclusive by construction
  // of the loop above, and the serving layer relies on it.
  FLOS_DCHECK(!(stats.deadline_expired && stats.exact),
              "deadline-expired query reported certified=true");

  // Assemble the k results. If termination selected candidates, use them;
  // otherwise (exhausted or cutoff) rank all visited non-query nodes.
  pool_.clear();
  if (certified && !stats.exhausted_component && !selected_.empty()) {
    pool_ = selected_;
  } else {
    for (LocalId i = 0; i < local_.Size(); ++i) {
      if (local_.IsQueryLocal(i)) continue;
      pool_.push_back(
          {i, rank_of(i, BoundLower(i)), rank_of(i, BoundUpper(i))});
    }
  }
  const auto mid_rank = [&](const Candidate& c) {
    return 0.5 * (c.rank_lower + c.rank_upper);
  };
  std::sort(pool_.begin(), pool_.end(),
            [&](const Candidate& a, const Candidate& b) {
              const double ma = mid_rank(a);
              const double mb = mid_rank(b);
              if (ma != mb) return minimize ? ma < mb : ma > mb;
              return local_.GlobalId(a.local) < local_.GlobalId(b.local);
            });
  if (pool_.size() > static_cast<size_t>(k)) pool_.resize(k);

  // Score transform from the internal space to the measure's units. For EI
  // and RWR the scale K = c / (w_q (1 - (1-c) sum_j p_qj PHP(j))) (Theorem
  // 6) is increasing in each PHP(j), so plugging the PHP bound endpoints of
  // q's neighbors (all visited after the first expansion) gives a rigorous
  // interval [scale_lo, scale_hi] enclosing the true K.
  double scale_lo = 1.0;
  double scale_hi = 1.0;
  if (options.measure == Measure::kEi || options.measure == Measure::kRwr) {
    const LocalId q_local = 0;  // single-source only (validated above)
    const double wq = local_.WeightedDegree(q_local);
    double sigma_lo = 0;
    double sigma_hi = 0;
    if (wq > 0) {
      for (const Neighbor& nb : local_.Neighbors(q_local)) {
        const LocalId j = local_.LocalIndex(nb.id);
        // Every neighbor of q joins S at the first expansion, so j is
        // always valid here; the guard is belt-and-braces.
        sigma_lo += nb.weight / wq * (j == kInvalidLocal ? 0 : BoundLower(j));
        sigma_hi += nb.weight / wq * (j == kInvalidLocal ? 0 : BoundUpper(j));
      }
      const double denom_lo = wq * (1.0 - (1.0 - options.c) * sigma_lo);
      const double denom_hi = wq * (1.0 - (1.0 - options.c) * sigma_hi);
      if (denom_lo > 0) scale_lo = options.c / denom_lo;
      scale_hi = denom_hi > 0 ? options.c / denom_hi
                              : options.c / (wq * options.c);  // <= c/(wq c)
    }
  }

  result.topk.reserve(pool_.size());
  for (const Candidate& c : pool_) {
    ScoredNode out;
    out.node = local_.GlobalId(c.local);
    const double lo = BoundLower(c.local);
    const double hi = BoundUpper(c.local);
    switch (options.measure) {
      case Measure::kPhp:
        out.lower = lo;
        out.upper = hi;
        break;
      case Measure::kEi:
        out.lower = scale_lo * lo;
        out.upper = scale_hi * hi;
        break;
      case Measure::kRwr: {
        const double w = local_.WeightedDegree(c.local);
        out.lower = scale_lo * w * lo;
        out.upper = scale_hi * w * hi;
        break;
      }
      case Measure::kDht:
        // DHT = (1 - PHP)/c, decreasing: bounds swap.
        out.lower = (1.0 - hi) / options.c;
        out.upper = (1.0 - lo) / options.c;
        break;
      case Measure::kTht:
        out.lower = lo;
        out.upper = hi;
        break;
    }
    out.score = 0.5 * (out.lower + out.upper);
    result.topk.push_back(out);
  }
  return result;
}

}  // namespace flos
