#include "core/flos_engine.h"

#include <algorithm>
#include <cmath>

#include "core/expansion_policy.h"
#include "core/measure_traits.h"
#include "util/check.h"

namespace flos {

FlosEngine::FlosEngine(GraphAccessor* accessor)
    : accessor_(accessor),
      local_(accessor),
      bounds_(&local_, UnifiedBoundOptions{}) {}

double FlosEngine::MaxUnknownDegree() {
  const auto& order = accessor_->DegreeOrder();
  while (degree_cursor_ < order.size() &&
         (local_.Contains(order[degree_cursor_]) ||
          local_.IsOutsideAdjacent(order[degree_cursor_]))) {
    ++degree_cursor_;
  }
  // An unknown node may also live outside the accessor entirely (sharded
  // serving: beyond the replicated halo), so the bound must cover both the
  // best in-accessor candidate and the off-accessor maximum.
  const double external = accessor_->ExternalDegreeBound();
  if (degree_cursor_ >= order.size()) return external;
  return std::max(external,
                  accessor_->WeightedDegree(order[degree_cursor_]));
}

Result<FlosResult> FlosEngine::TopK(NodeId query, int k,
                                    const FlosOptions& options) {
  return TopKSet({query}, k, options);
}

Result<FlosResult> FlosEngine::TopKSet(const std::vector<NodeId>& queries,
                                       int k, const FlosOptions& options) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (!(options.c > 0) || !(options.c < 1)) {
    return Status::InvalidArgument("c must be in (0, 1)");
  }
  if (options.measure == Measure::kTht && options.tht_length < 1) {
    return Status::InvalidArgument("THT length must be >= 1");
  }
  if (queries.empty()) {
    return Status::InvalidArgument("need at least one query node");
  }
  if (queries.size() > 1 && (options.measure == Measure::kEi ||
                             options.measure == Measure::kRwr)) {
    return Status::InvalidArgument(
        "multi-source queries support the absorbing-set measures "
        "(PHP, DHT, THT); EI/RWR are defined per single source (Theorem 6)");
  }
  for (const NodeId q : queries) {
    if (q >= accessor_->NumNodes()) {
      return Status::OutOfRange("query node out of range");
    }
  }
  const bool filtered = !options.predicate.empty();
  if (filtered) {
    if (options.labels == nullptr) {
      return Status::InvalidArgument(
          "filtered query (non-none predicate) needs FlosOptions::labels");
    }
    if (options.labels->NumNodes() != accessor_->NumNodes()) {
      return Status::InvalidArgument(
          "label store covers " + std::to_string(options.labels->NumNodes()) +
          " nodes but the accessor has " +
          std::to_string(accessor_->NumNodes()));
    }
  }

  // A certified answer is exact, so an unchanged-epoch repeat query needs
  // no search at all. Multi-source queries bypass the cache (the key would
  // need the whole set; set queries are rare in serving).
  QueryCache::Key cache_key;
  const bool cacheable = query_cache_ != nullptr && queries.size() == 1;
  if (cacheable) {
    cache_key = {queries[0],          options.measure,
                 k,                   options.c,
                 options.tht_length,  accessor_->Epoch(),
                 options.predicate.Fingerprint()};
    FlosResult cached;
    if (query_cache_->Lookup(cache_key, &cached)) return cached;
  }

  // Filtered early exit: the per-label counts bound how many nodes can
  // match graph-wide. Zero means the empty top-k is already certified
  // (nothing to search); fewer than k means k itself is unreachable, so
  // the termination test targets the clamped k_eff instead — otherwise a
  // selective predicate could never certify and every query would expand
  // the whole component.
  int k_eff = k;
  if (filtered) {
    const uint64_t max_matches =
        options.predicate.MaxMatches(*options.labels);
    if (max_matches == 0) {
      FlosResult empty;
      empty.stats.exact = true;
      if (cacheable) query_cache_->Insert(cache_key, empty);
      return empty;
    }
    k_eff = static_cast<int>(
        std::min<uint64_t>(static_cast<uint64_t>(k), max_matches));
  }

  const BoundTraits traits =
      BoundTraitsFor(options.measure, options.c, options.tht_length);
  const RankMode mode = traits.rank_mode;
  const bool minimize = mode == RankMode::kMinimizeValue;

  // Warm-subgraph tier (core/subgraph_cache.h), consulted only after a
  // result-cache miss. Eligibility mirrors what a snapshot can soundly
  // represent: single-source (the key is one seed), no best-effort
  // max_visited cutoff, and no shard expandable_limit (a snapshot taken
  // under clipping could embed a frontier this configuration may not
  // have).
  const bool subgraph_eligible =
      subgraph_cache_ != nullptr && queries.size() == 1 &&
      options.expandable_limit == UINT64_MAX && options.max_visited == 0;
  SubgraphCache::Key subgraph_key;
  std::shared_ptr<const SubgraphSnapshot> warm;
  if (subgraph_eligible) {
    subgraph_key =
        SubgraphCache::MakeKey(queries[0], traits, accessor_->Epoch());
    warm = subgraph_cache_->Lookup(subgraph_key);
  }
  const bool warm_hit = warm != nullptr;

  // Per-engine sweep team for intra-query parallel sweeps: t threads total
  // = t - 1 pool workers + the calling thread running its own chunk.
  // Lazily (re)created only when the requested count changes, so
  // steady-state serving keeps one warm team per session.
  const int want_workers = std::max(0, options.sweep_threads - 1);
  if (want_workers == 0) {
    sweep_pool_.reset();
  } else if (!sweep_pool_ || sweep_pool_->num_threads() != want_workers) {
    sweep_pool_ = std::make_unique<ThreadPool>(want_workers);
  }

  // Rewind the workspace for this query; an error return leaves it ready
  // to be rewound again, so failed calls don't poison the engine. On a
  // warm-subgraph hit the expansion state is restored from the snapshot
  // instead of re-Init'd, and the bound engine resumes from the cached
  // converged bounds (sound: the dummies are non-increasing and the
  // bounds are certified facts of (seed, family, alpha, epoch)).
  local_.Reset();
  if (warm_hit) {
    local_.RestoreSnapshot(warm->local);
  } else {
    FLOS_RETURN_IF_ERROR(local_.Init(queries));
  }
  {
    UnifiedBoundOptions ub;
    ub.traits = traits;
    ub.tolerance = options.tolerance;
    ub.max_inner_iterations = options.max_inner_iterations;
    ub.self_loop_tightening = options.self_loop_tightening;
    ub.backend = options.sweep_backend;
    ub.sweep_pool = sweep_pool_.get();
    ub.parallel_min_rows = options.sweep_parallel_min_rows;
    ub.deadline = options.deadline;
    bounds_.Reset(ub);
  }
  if (warm_hit) {
    bounds_.RestoreBounds(warm->bounds.data(), warm->bounds.size() / 2,
                          warm->dummy_mesh, warm->dummy_tight);
  }
  degree_cursor_ = 0;

  // Filtered queries: per-local match flags, filled incrementally (local
  // ids are append-only within a query, and a restored snapshot's nodes
  // are flagged on the first refresh). One predicate evaluation per
  // visited node per query, outside every inner loop.
  match_.clear();
  const auto refresh_matches = [&]() {
    if (!filtered) return;
    for (LocalId i = static_cast<LocalId>(match_.size());
         i < local_.Size(); ++i) {
      match_.push_back(options.predicate.Matches(
                           options.labels->Labels(local_.GlobalId(i)))
                           ? 1
                           : 0);
    }
  };
  const auto is_match = [&](LocalId i) { return !filtered || match_[i] != 0; };

  // Anytime deadline (the serving layer's graceful-degradation hook). The
  // check is threaded through every long-running stretch: the expansion
  // loop, the inner solves (via the bound-engine options above), and the
  // outer iteration. Bounds are certified at every instant, so stopping
  // anywhere yields a valid interval answer — just an uncertified one.
  const bool has_deadline =
      options.deadline != std::chrono::steady_clock::time_point::max();
  const auto deadline_passed = [&]() {
    return has_deadline &&
           std::chrono::steady_clock::now() >= options.deadline;
  };

  FlosResult result;
  FlosStats& stats = result.stats;
  stats.subgraph_hit = warm_hit;

  // Coarse per-phase timers (FlosStats::{expand,solve,select}_ns): a
  // handful of clock reads per OUTER iteration, so the inner hot loops
  // stay free of timing code.
  auto phase_mark = std::chrono::steady_clock::now();
  const auto phase_lap = [&phase_mark](uint64_t* acc) {
    const auto now = std::chrono::steady_clock::now();
    *acc += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - phase_mark)
            .count());
    phase_mark = now;
  };

  // Rank value of node i given one of its bounds.
  const auto rank_of = [&](LocalId i, double value) {
    return mode == RankMode::kDegreeWeighted
               ? local_.WeightedDegree(i) * value
               : value;
  };

  selected_.clear();  // current certified-or-not top-k

  // Expansion-policy context: the certification threshold of the most
  // recent termination check feeds the next frontier ranking (the
  // bound-gap policy scores nodes by how much they block that proof).
  const ExpansionPolicy* const policy =
      GetExpansionPolicy(options.expansion_policy);
  ExpansionContext policy_context;
  policy_context.minimize = minimize;

  // Termination check (Algorithm 6 + the RWR extension). Fills `selected_`
  // with the current top-k interior candidates either way. Filtered
  // queries rank MATCHING interior nodes only; non-matching visited nodes
  // are transit-only (they conduct mass through the sweeps but never
  // compete), and the boundary keeps competing regardless of match status
  // because its optimistic values are the certified proxy for everything
  // unvisited — including unvisited matching nodes (DESIGN.md, "Filtered
  // top-k").
  const auto check_termination = [&]() -> bool {
    refresh_matches();
    interior_.clear();
    for (LocalId i = 0; i < local_.Size(); ++i) {
      if (local_.IsQueryLocal(i) || local_.IsBoundary(i)) continue;
      if (!is_match(i)) continue;
      interior_.push_back(
          {i, rank_of(i, bounds_.lower(i)), rank_of(i, bounds_.upper(i))});
    }
    if (interior_.size() < static_cast<size_t>(k_eff)) return false;
    // For maximize modes, pick k largest guaranteed (lower) rank values;
    // for minimize (THT), pick k smallest guaranteed (upper) values.
    const auto better = [&](const Candidate& a, const Candidate& b) {
      return minimize ? a.rank_upper < b.rank_upper
                      : a.rank_lower > b.rank_lower;
    };
    std::nth_element(interior_.begin(), interior_.begin() + (k_eff - 1),
                     interior_.end(), better);
    selected_.assign(interior_.begin(), interior_.begin() + k_eff);
    // Threshold: worst guaranteed value inside K.
    double threshold = minimize ? -1e300 : 1e300;
    for (const Candidate& c : selected_) {
      threshold = minimize ? std::max(threshold, c.rank_upper)
                           : std::min(threshold, c.rank_lower);
    }
    policy_context.has_threshold = true;
    policy_context.threshold = threshold;
    // Opponents: every other candidate's optimistic value, plus the whole
    // boundary's (filtered or not — see the lambda comment above).
    double best_other = minimize ? 1e300 : -1e300;
    for (size_t i = static_cast<size_t>(k_eff); i < interior_.size(); ++i) {
      best_other = minimize ? std::min(best_other, interior_[i].rank_lower)
                            : std::max(best_other, interior_[i].rank_upper);
    }
    for (LocalId i = 0; i < local_.Size(); ++i) {
      if (local_.IsQueryLocal(i) || !local_.IsBoundary(i)) continue;
      const double opt = minimize ? rank_of(i, bounds_.lower(i))
                                  : rank_of(i, bounds_.upper(i));
      best_other = minimize ? std::min(best_other, opt)
                            : std::max(best_other, opt);
    }
    bool ok = minimize ? threshold <= best_other : threshold >= best_other;
#ifdef FLOS_DEBUG_TERMINATION
    std::fprintf(stderr, "[term] |S|=%u interior=%zu thr=%g other=%g ok=%d\n",
                 local_.Size(), interior_.size(), threshold, best_other, ok);
#endif
    if (!ok) return false;
    if (mode == RankMode::kDegreeWeighted) {
      // Unvisited nodes, refined beyond Section 5.6's w(unvisited) * max
      // boundary bound. Frontier-adjacent nodes (delta-S-bar) get
      // per-node certified uppers from the boundary's bounds and their
      // probed degrees; every deeper node is bounded by alpha * the
      // frontier maximum (its neighbors are all unvisited), with the
      // unknown-degree maximum from the global degree order:
      //
      //   w_v PHP(v) <= max( max_{v in dSbar} w_v r-bar_v,
      //                      maxdeg(unknown) * alpha * max_{dSbar} r-bar_v )
      const double alpha = 1.0 - options.c;
      const auto out = bounds_.ComputeOutsideUppers();
      // Truncated rows hide edges that reach unvisited nodes behind NO
      // enumerated frontier node, so the frontier-relative bound has a
      // hole there; those nodes are instead covered by the engine's
      // all-unvisited dummy (its capture argument never enumerates).
      const bool truncated = local_.HasTruncatedRows();
      if (out.any || truncated) {
        const double w_unknown = MaxUnknownDegree();
        double unvisited_bound = 0;
        if (out.any) {
          unvisited_bound = std::max(out.max_degree_weighted,
                                     w_unknown * alpha * out.max_value);
        }
        if (truncated) {
          unvisited_bound =
              std::max(unvisited_bound,
                       w_unknown * bounds_.unvisited_value_bound());
        }
        if (threshold < unvisited_bound) return false;
      }
    }
    FLOS_AUDIT_SCOPE {
      // Certified-termination ground truth, recomputed without the
      // nth_element bookkeeping above: the worst guaranteed rank inside
      // the selected top-k must genuinely clear the optimistic rank of
      // EVERY other visited non-query node. Same fp values as the fast
      // path, so the comparisons are exact.
      double audit_threshold = minimize ? -1e300 : 1e300;
      for (const Candidate& c : selected_) {
        audit_threshold = minimize ? std::max(audit_threshold, c.rank_upper)
                                   : std::min(audit_threshold, c.rank_lower);
      }
      const auto is_selected = [&](LocalId i) {
        for (const Candidate& c : selected_) {
          if (c.local == i) return true;
        }
        return false;
      };
      for (LocalId i = 0; i < local_.Size(); ++i) {
        if (local_.IsQueryLocal(i) || is_selected(i)) continue;
        // Non-matching interior nodes are transit-only: not candidates,
        // and (unlike the boundary) not proxies for anything unvisited.
        if (!local_.IsBoundary(i) && !is_match(i)) continue;
        const double opt = minimize ? rank_of(i, bounds_.lower(i))
                                    : rank_of(i, bounds_.upper(i));
        if (minimize) {
          FLOS_CHECK_LE(audit_threshold, opt,
                        "top-k termination fired before the k-th upper "
                        "cleared a competing lower");
        } else {
          FLOS_CHECK_GE(audit_threshold, opt,
                        "top-k termination fired before the k-th lower "
                        "cleared a competing upper");
        }
      }
    }
    return true;
  };

  // Main loop (Algorithm 2, with optional batched LocalExpansion).
  bool certified = false;
  bool expired = false;
  // A warm-subgraph hit restored a state that certified once before, so
  // for a k it can already prove the loop below never runs: check first.
  if (warm_hit) {
    phase_lap(&stats.expand_ns);  // restore cost books as expansion work
    if (check_termination()) certified = true;
    phase_lap(&stats.select_ns);
  }
  while (!certified) {
    // Rank the boundary by the expansion policy (Algorithm 3 is the
    // best-first default); at t=1 the only boundary node is the query.
    // Nodes past expandable_limit stay boundary forever: their bounds keep
    // competing in the termination check, but expanding them is unsound on
    // a shard (their adjacency may be halo-truncated).
    frontier_.clear();
    bool clipped = false;
    for (LocalId i = 0; i < local_.Size(); ++i) {
      if (!local_.IsBoundary(i)) continue;
      if (static_cast<uint64_t>(local_.GlobalId(i)) >=
          options.expandable_limit) {
        clipped = true;
        continue;
      }
      const double priority =
          policy->Priority(rank_of(i, bounds_.lower(i)),
                           rank_of(i, bounds_.upper(i)), policy_context);
      frontier_.push_back({priority, i});
    }
    if (frontier_.empty()) {
      if (clipped) {
        // Every remaining frontier node lies beyond the halo. No further
        // expansion is possible and the last bound update already failed
        // to certify, so stop uncertified; the bounds remain rigorous.
        stats.frontier_clipped = true;
        break;
      }
      // Component exhausted: finish with a tight solve. The solve itself
      // honors the deadline; if it was cut short the bounds are still
      // certified but not yet exact, so the result stays uncertified.
      phase_lap(&stats.expand_ns);
      stats.inner_iterations += bounds_.FinalizeExhausted(
          options.final_tolerance);
      phase_lap(&stats.solve_ns);
      if (bounds_.deadline_hit()) {
        expired = true;
        break;
      }
      stats.exhausted_component = true;
      certified = true;
      break;
    }
    std::sort(frontier_.begin(), frontier_.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    // Adaptive mode targets ~12.5% growth of |S| per bound update, so the
    // number of O(edges(S)) updates stays logarithmic in the visited count
    // while overshoot past the certification point stays small.
    const uint64_t grow_target =
        options.expansion_batch > 0
            ? 0
            : local_.Size() + std::max<uint64_t>(1, local_.Size() / 8);

    bounds_.CaptureDummyFromBoundary();  // r_d from the previous delta-S
    size_t expanded = 0;
    for (const auto& [priority, node] : frontier_) {
      (void)priority;
      FLOS_ASSIGN_OR_RETURN(const uint32_t added, local_.Expand(node));
      (void)added;
      ++stats.expansions;
      ++expanded;
      if (options.expansion_batch > 0) {
        if (expanded >= options.expansion_batch) break;
      } else if (local_.Size() >= grow_target) {
        break;
      }
      if (options.max_visited > 0 && local_.Size() >= options.max_visited) {
        break;
      }
      if (deadline_passed()) {
        expired = true;
        break;
      }
    }
    // Even on an expired deadline the freshly expanded nodes need their
    // bound slots (OnGrowth seeds them with the trivially valid [0, 1] /
    // [0, L] intervals); the update after it is deadline-aware and exits
    // after at most a few sweeps.
    bounds_.OnGrowth();
    phase_lap(&stats.expand_ns);
    stats.inner_iterations += bounds_.UpdateBounds();
    phase_lap(&stats.solve_ns);

    const bool done = !expired && check_termination();
    phase_lap(&stats.select_ns);
    if (done) {
      certified = true;
      break;
    }
    if (options.max_visited > 0 && local_.Size() >= options.max_visited) {
      break;  // best-effort cutoff
    }
    if (expired || deadline_passed()) {
      expired = true;
      break;
    }
  }
  stats.visited_nodes = local_.Size();
  stats.exact = certified;
  stats.deadline_expired = expired;
  // Anytime-certification contract: a deadline-expired answer must never
  // claim exactness — the two flags are mutually exclusive by construction
  // of the loop above, and the serving layer relies on it.
  FLOS_DCHECK(!(stats.deadline_expired && stats.exact),
              "deadline-expired query reported certified=true");
  // Same contract for the halo: a clipped search stopped BECAUSE it could
  // not certify, so it must never report exactness either.
  FLOS_DCHECK(!(stats.frontier_clipped && stats.exact),
              "halo-clipped query reported certified=true");

  // Assemble the k results. If termination selected candidates, use them;
  // otherwise (exhausted or cutoff) rank all visited non-query nodes.
  pool_.clear();
  refresh_matches();  // deadline/cutoff exits may skip the last check
  if (certified && !stats.exhausted_component && !selected_.empty()) {
    pool_ = selected_;
  } else {
    for (LocalId i = 0; i < local_.Size(); ++i) {
      if (local_.IsQueryLocal(i) || !is_match(i)) continue;
      pool_.push_back(
          {i, rank_of(i, bounds_.lower(i)), rank_of(i, bounds_.upper(i))});
    }
  }
  const auto mid_rank = [&](const Candidate& c) {
    return 0.5 * (c.rank_lower + c.rank_upper);
  };
  std::sort(pool_.begin(), pool_.end(),
            [&](const Candidate& a, const Candidate& b) {
              const double ma = mid_rank(a);
              const double mb = mid_rank(b);
              if (ma != mb) return minimize ? ma < mb : ma > mb;
              return local_.GlobalId(a.local) < local_.GlobalId(b.local);
            });
  if (pool_.size() > static_cast<size_t>(k)) pool_.resize(k);

  // Score transform from the internal space to the measure's units. For EI
  // and RWR the scale K = c / (w_q (1 - (1-c) sum_j p_qj PHP(j))) (Theorem
  // 6) is increasing in each PHP(j), so plugging the PHP bound endpoints of
  // q's neighbors (all visited after the first expansion) gives a rigorous
  // interval [scale_lo, scale_hi] enclosing the true K.
  double scale_lo = 1.0;
  double scale_hi = 1.0;
  if (options.measure == Measure::kEi || options.measure == Measure::kRwr) {
    const LocalId q_local = 0;  // single-source only (validated above)
    const double wq = local_.WeightedDegree(q_local);
    double sigma_lo = 0;
    double sigma_hi = 0;
    if (wq > 0) {
      for (const Neighbor& nb : local_.Neighbors(q_local)) {
        const LocalId j = local_.LocalIndex(nb.id);
        // Every neighbor of q joins S at the first expansion, so j is
        // always valid here; the guard is belt-and-braces.
        sigma_lo +=
            nb.weight / wq * (j == kInvalidLocal ? 0 : bounds_.lower(j));
        sigma_hi +=
            nb.weight / wq * (j == kInvalidLocal ? 0 : bounds_.upper(j));
      }
      const double denom_lo = wq * (1.0 - (1.0 - options.c) * sigma_lo);
      const double denom_hi = wq * (1.0 - (1.0 - options.c) * sigma_hi);
      if (denom_lo > 0) scale_lo = options.c / denom_lo;
      scale_hi = denom_hi > 0 ? options.c / denom_hi
                              : options.c / (wq * options.c);  // <= c/(wq c)
    }
  }

  result.topk.reserve(pool_.size());
  for (const Candidate& c : pool_) {
    ScoredNode out;
    out.node = local_.GlobalId(c.local);
    const double lo = bounds_.lower(c.local);
    const double hi = bounds_.upper(c.local);
    switch (options.measure) {
      case Measure::kPhp:
        out.lower = lo;
        out.upper = hi;
        break;
      case Measure::kEi:
        out.lower = scale_lo * lo;
        out.upper = scale_hi * hi;
        break;
      case Measure::kRwr: {
        const double w = local_.WeightedDegree(c.local);
        out.lower = scale_lo * w * lo;
        out.upper = scale_hi * w * hi;
        break;
      }
      case Measure::kDht:
        // DHT = (1 - PHP)/c, decreasing: bounds swap.
        out.lower = (1.0 - hi) / options.c;
        out.upper = (1.0 - lo) / options.c;
        break;
      case Measure::kTht:
        out.lower = lo;
        out.upper = hi;
        break;
    }
    out.score = 0.5 * (out.lower + out.upper);
    result.topk.push_back(out);
  }
  phase_lap(&stats.select_ns);
  if (cacheable && stats.exact) query_cache_->Insert(cache_key, result);
  // Deposit the expanded state for future warm starts. Only certified
  // completions (their bounds are reusable facts, like QueryCache's rule),
  // and only when this run actually advanced past the snapshot it resumed
  // from — a warm hit that certified instantly would only churn the LRU.
  if (subgraph_eligible && stats.exact &&
      (!warm_hit || stats.expansions > 0 || stats.inner_iterations > 0)) {
    auto snap = std::make_shared<SubgraphSnapshot>();
    local_.SaveSnapshot(&snap->local);
    bounds_.SaveBounds(&snap->bounds);
    snap->dummy_mesh = bounds_.dummy_value();
    snap->dummy_tight = bounds_.tight_dummy_value();
    subgraph_cache_->Insert(subgraph_key, std::move(snap));
  }
  return result;
}

}  // namespace flos
