// AVX2 sweep backend: blocked-ELL lockstep kernel.
//
// Row-at-a-time SIMD over the local CSR is starved by the graph's degree
// skew: half the rows hold fewer than 8 entries, so per-row fixed costs
// (accumulator setup, horizontal reduction) and the unpredictable inner
// trip count dominate, and a vectorized dot product barely beats scalar.
// This backend instead vectorizes ACROSS rows:
//
//  * non-query rows are counting-sorted by length (descending) and packed
//    into blocks of 4; each block stores its entries column-major, padded
//    to the block's max length with zero-weight entries (sorting makes the
//    padding ~1% of the entries);
//  * one sweep walks each block with a single branch-predictable inner
//    loop: per step, 4 column indexes and 4 weights load contiguously, two
//    256-bit gathers fetch the 4 (lower, upper) pairs from the interleaved
//    bound vector, and two FMAs accumulate all 8 dot products in lockstep
//    — no per-row branches, no per-row reductions;
//  * the monotone clamps then commit the 4 rows of the block.
//
// Validity: processing rows in sorted blocks makes the sweep a
// block-Jacobi-within / Gauss–Seidel-across iteration. For the monotone
// bound operators ANY mixture of previous-sweep and already-updated values
// is certified and elementwise no looser than the Jacobi iterate (see
// core/unified_bound_engine.h), so the reordering changes floating-point
// trajectories but never certification. The parity test pins this backend
// against the scalar one bound-sandwich-wise.
//
// The packed layout depends on the CSR structure and weights, so the
// engine invalidates it on every growth; rebuilds cost about one sweep and
// amortize over the sweeps of that outer iteration.
//
// This is the ONLY translation unit allowed to use raw SIMD intrinsics
// (scripts/lint.py no-raw-intrinsics). Per-function target attributes keep
// the rest of the build free of -mavx2, so the binary still runs on
// baseline x86-64 (MakeSweepBackend dispatches on cpuid at runtime).

#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/sweep_kernel.h"
#include "util/check.h"

namespace flos {

namespace {

// Pad-lane marker in the block row table.
constexpr LocalId kPadRow = static_cast<LocalId>(-1);

class Avx2SweepBackend final : public SweepBackend {
 public:
  const char* name() const override { return "avx2"; }

  void InvalidateStructure() override { dirty_ = true; }

  double FusedSweep(const FixedPointSweepArgs& args) override {
    if (dirty_) Rebuild(*args.local);
    return Sweep</*lower_only=*/false>(args);
  }

  double LowerSweep(const FixedPointSweepArgs& args) override {
    if (dirty_) Rebuild(*args.local);
    return Sweep</*lower_only=*/true>(args);
  }

 private:
  void Rebuild(const LocalGraph& local) {
    const uint32_t n = local.Size();
    // Gathers address bounds[2 * idx] through signed 32-bit indexes.
    FLOS_DCHECK(n < (1u << 30), "visited set too large for the AVX2 layout");
    const uint32_t q = local.query_count();
    const uint32_t rows = n > q ? n - q : 0;

    // Counting sort of non-query rows by length, descending, stable. Query
    // rows are pinned — their dot products are never consumed — so they are
    // simply left out of the layout.
    lens_.assign(rows, 0);
    uint32_t maxlen = 0;
    for (uint32_t r = 0; r < rows; ++r) {
      const uint32_t len = local.Row(q + r).len;
      lens_[r] = len;
      maxlen = std::max(maxlen, len);
    }
    starts_.assign(static_cast<size_t>(maxlen) + 1, 0);
    for (uint32_t r = 0; r < rows; ++r) ++starts_[lens_[r]];
    uint32_t running = 0;
    for (uint32_t len = maxlen;; --len) {
      const uint32_t count = starts_[len];
      starts_[len] = running;
      running += count;
      if (len == 0) break;
    }
    order_.resize(rows);
    for (uint32_t r = 0; r < rows; ++r) order_[starts_[lens_[r]]++] = q + r;

    // Pack blocks of 4 rows, column-major, padded to the block max length.
    const uint32_t blocks = (rows + 3) / 4;
    block_rows_.assign(static_cast<size_t>(blocks) * 4, kPadRow);
    block_width_.assign(blocks, 0);
    block_off_.assign(static_cast<size_t>(blocks) + 1, 0);
    size_t total = 0;
    for (uint32_t b = 0; b < blocks; ++b) {
      uint32_t width = 0;
      for (uint32_t lane = 0; lane < 4; ++lane) {
        const size_t slot = static_cast<size_t>(b) * 4 + lane;
        if (slot >= rows) break;
        block_rows_[slot] = order_[slot];
        width = std::max(width, local.Row(order_[slot]).len);
      }
      block_width_[b] = width;
      block_off_[b] = total;
      total += static_cast<size_t>(width) * 4;
    }
    block_off_[blocks] = total;
    ell_idx_.assign(total, 0);
    ell_weight_.assign(total, 0.0);
    for (uint32_t b = 0; b < blocks; ++b) {
      for (uint32_t lane = 0; lane < 4; ++lane) {
        const LocalId i = block_rows_[static_cast<size_t>(b) * 4 + lane];
        if (i == kPadRow) continue;
        const LocalRow row = local.Row(i);
        for (uint32_t e = 0; e < row.len; ++e) {
          // The audit-tier CSR validity checks run here, once per rebuild —
          // the same coverage the scalar path gets per sweep.
          FLOS_AUDIT(row.idx[e] < n, "local CSR column index out of range");
          FLOS_AUDIT(row.weight[e] >= 0.0,
                     "negative transition probability in local CSR");
          const size_t at = block_off_[b] + static_cast<size_t>(e) * 4 + lane;
          ell_idx_[at] = static_cast<int32_t>(2u * row.idx[e]);
          ell_weight_[at] = row.weight[e];
        }
      }
    }
    dirty_ = false;
  }

  template <bool lower_only>
  __attribute__((target("avx2,fma"))) double Sweep(
      const FixedPointSweepArgs& args) {
    double delta = 0;
    double* const bounds = args.bounds;
    const __m256d zero = _mm256_setzero_pd();
    const __m256d pass = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    const __m128i one = _mm_set1_epi32(1);
    const uint32_t blocks = static_cast<uint32_t>(block_width_.size());
    for (uint32_t b = 0; b < blocks; ++b) {
      const uint32_t width = block_width_[b];
      const int32_t* idx = ell_idx_.data() + block_off_[b];
      const double* weight = ell_weight_.data() + block_off_[b];
      __m256d acc_lo = _mm256_setzero_pd();
      __m256d acc_hi = _mm256_setzero_pd();
      for (uint32_t e = 0; e < width; ++e, idx += 4, weight += 4) {
        const __m128i iv =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
        const __m256d wv = _mm256_loadu_pd(weight);
        acc_lo = _mm256_fmadd_pd(
            wv, _mm256_mask_i32gather_pd(zero, bounds, iv, pass, 8), acc_lo);
        if (!lower_only) {
          acc_hi = _mm256_fmadd_pd(
              wv,
              _mm256_mask_i32gather_pd(zero, bounds, _mm_add_epi32(iv, one),
                                       pass, 8),
              acc_hi);
        }
      }
      alignas(32) double s_lo[4];
      alignas(32) double s_hi[4];
      _mm256_store_pd(s_lo, acc_lo);
      _mm256_store_pd(s_hi, acc_hi);
      for (uint32_t lane = 0; lane < 4; ++lane) {
        const LocalId i = block_rows_[static_cast<size_t>(b) * 4 + lane];
        if (i == kPadRow) continue;
        double* const pi = bounds + 2 * static_cast<size_t>(i);
        const double lo = pi[0];
        const double vl =
            std::max(args.alpha * s_lo[lane] + args.self_coeff[i] * lo, lo);
        if (lower_only) {
          delta = std::max(delta, vl - lo);
          pi[0] = vl;
          continue;
        }
        const double hi = pi[1];
        const double hid = args.hidden_coeff[i] * args.dummy_mesh;
        double vu = args.alpha * s_hi[lane] +
                    args.plain_dummy_coeff[i] * args.dummy_tight + hid;
        if (args.self_loop) {
          vu = std::min(vu, args.alpha * s_hi[lane] + args.self_coeff[i] * hi +
                                args.mesh_dummy_coeff[i] * args.dummy_mesh +
                                hid);
        }
        vu = std::min(vu, hi);
        delta = std::max(delta, std::max(vl - lo, hi - vu));
        pi[0] = vl;
        pi[1] = vu;
      }
    }
    return delta;
  }

  bool dirty_ = true;
  std::vector<uint32_t> lens_;
  std::vector<uint32_t> starts_;
  std::vector<LocalId> order_;
  std::vector<LocalId> block_rows_;
  std::vector<uint32_t> block_width_;
  std::vector<size_t> block_off_;
  std::vector<int32_t> ell_idx_;
  std::vector<double> ell_weight_;
};

}  // namespace

bool CpuHasAvx2() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

std::unique_ptr<SweepBackend> MakeAvx2SweepBackend() {
  return std::make_unique<Avx2SweepBackend>();
}

}  // namespace flos
