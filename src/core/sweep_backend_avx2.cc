// AVX2 sweep backend: blocked-ELL lockstep kernel.
//
// Row-at-a-time SIMD over the local CSR is starved by the graph's degree
// skew: half the rows hold fewer than 8 entries, so per-row fixed costs
// (accumulator setup, horizontal reduction) and the unpredictable inner
// trip count dominate, and a vectorized dot product barely beats scalar.
// This backend instead vectorizes ACROSS rows:
//
//  * non-query rows are counting-sorted by length (descending) and packed
//    into blocks of 4; each block stores its entries column-major, padded
//    to the block's max length with zero-weight entries (sorting makes the
//    padding ~1% of the entries);
//  * one sweep walks each block with a single branch-predictable inner
//    loop: per step, 4 column indexes and 4 weights load contiguously, two
//    256-bit gathers fetch the 4 (lower, upper) pairs from the interleaved
//    bound vector, and two FMAs accumulate all 8 dot products in lockstep
//    — no per-row branches, no per-row reductions;
//  * the monotone clamps then commit the 4 rows of the block.
//
// Validity: processing rows in sorted blocks makes the sweep a
// block-Jacobi-within / Gauss–Seidel-across iteration. For the monotone
// bound operators ANY mixture of previous-sweep and already-updated values
// is certified and elementwise no looser than the Jacobi iterate (see
// core/unified_bound_engine.h), so the reordering changes floating-point
// trajectories but never certification. The parity test pins this backend
// against the scalar one bound-sandwich-wise.
//
// The packed layout depends on the CSR structure and weights, so the
// engine invalidates it on every growth; rebuilds cost about one sweep and
// amortize over the sweeps of that outer iteration.
//
// Parallel sweeps (FixedPointSweepArgs::pool): the non-query rows are first
// cut into contiguous chunks balanced by entry count (the same partition
// the scalar backend uses), then length-sorted and block-packed WITHIN each
// chunk. Cross-chunk column indexes are rebased by +2n into the snapshot
// half of the bound allocation at pack time — the layout contract on
// FixedPointSweepArgs guarantees snapshot == bounds + 2n — so the gather
// kernel is unchanged: one base pointer serves live and snapshot reads.
// Each chunk's block range runs as one task (chunk 0 on the caller),
// writing only its own rows and delta slot.
//
// This is the ONLY translation unit allowed to use raw SIMD intrinsics
// (scripts/lint.py no-raw-intrinsics). Per-function target attributes keep
// the rest of the build free of -mavx2, so the binary still runs on
// baseline x86-64 (MakeSweepBackend dispatches on cpuid at runtime).

#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/sweep_kernel.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace flos {

namespace {

// Pad-lane marker in the block row table.
constexpr LocalId kPadRow = static_cast<LocalId>(-1);

/// Cache-line-padded per-chunk delta slot (no false sharing on commit).
struct alignas(64) PaddedDelta {
  double value = 0;
};

class Avx2SweepBackend final : public SweepBackend {
 public:
  const char* name() const override { return "avx2"; }

  void InvalidateStructure() override { dirty_ = true; }

  double FusedSweep(const FixedPointSweepArgs& args) override {
    const uint32_t chunks = DesiredChunks(args);
    if (dirty_ || built_chunks_ != chunks) Rebuild(*args.local, chunks);
    if (chunks > 1) return ParallelSweep</*lower_only=*/false>(args);
    return Sweep</*lower_only=*/false>(args, 0, NumBlocks());
  }

  double LowerSweep(const FixedPointSweepArgs& args) override {
    const uint32_t chunks = DesiredChunks(args);
    if (dirty_ || built_chunks_ != chunks) Rebuild(*args.local, chunks);
    if (chunks > 1) return ParallelSweep</*lower_only=*/true>(args);
    return Sweep</*lower_only=*/true>(args, 0, NumBlocks());
  }

 private:
  uint32_t NumBlocks() const {
    return static_cast<uint32_t>(block_width_.size());
  }

  uint32_t DesiredChunks(const FixedPointSweepArgs& args) const {
    if (args.pool == nullptr || args.chunks < 2 || args.snapshot == nullptr) {
      return 1;
    }
    const LocalGraph& local = *args.local;
    return local.Size() - local.query_count() >= args.chunks ? args.chunks : 1;
  }

  void Rebuild(const LocalGraph& local, uint32_t chunks) {
    const uint32_t n = local.Size();
    // Gathers address bounds[2 * idx] through signed 32-bit indexes; the
    // parallel layout also rebases cross-chunk indexes by +2n into the
    // snapshot half, so its indexes reach up to 4n - 2.
    FLOS_DCHECK(n < (1u << 30), "visited set too large for the AVX2 layout");
    if (chunks > 1) {
      FLOS_DCHECK(n < (1u << 29),
                  "visited set too large for the parallel AVX2 layout");
    }
    const uint32_t q = local.query_count();
    const uint32_t rows = n > q ? n - q : 0;

    // Contiguous partition of the non-query rows balanced by entry count
    // (matches the scalar backend's partition for a given chunk count).
    size_t total_entries = 0;
    for (uint32_t r = 0; r < rows; ++r) {
      total_entries += local.Row(q + r).len;
    }
    chunk_begin_.assign(static_cast<size_t>(chunks) + 1, n);
    chunk_begin_[0] = q;
    {
      size_t seen = 0;
      uint32_t next_cut = 1;
      for (LocalId i = q; i < n && next_cut < chunks; ++i) {
        seen += local.Row(i).len;
        if (seen * chunks >= total_entries * next_cut &&
            i + 1 + (chunks - next_cut) <= n) {
          chunk_begin_[next_cut++] = i + 1;
        }
      }
    }

    // Per chunk: counting sort its rows by length (descending, stable),
    // then pack blocks of 4 rows, column-major, padded to the block max
    // length. Query rows are pinned — their dot products are never
    // consumed — so they are simply left out of the layout.
    block_rows_.clear();
    block_width_.clear();
    block_off_.clear();
    chunk_blocks_.assign(static_cast<size_t>(chunks) + 1, 0);
    size_t total = 0;
    for (uint32_t c = 0; c < chunks; ++c) {
      chunk_blocks_[c] = NumBlocks();
      const LocalId begin = chunk_begin_[c];
      const LocalId end = chunk_begin_[c + 1];
      const uint32_t crows = end - begin;
      lens_.assign(crows, 0);
      uint32_t maxlen = 0;
      for (uint32_t r = 0; r < crows; ++r) {
        const uint32_t len = local.Row(begin + r).len;
        lens_[r] = len;
        maxlen = std::max(maxlen, len);
      }
      starts_.assign(static_cast<size_t>(maxlen) + 1, 0);
      for (uint32_t r = 0; r < crows; ++r) ++starts_[lens_[r]];
      uint32_t running = 0;
      for (uint32_t len = maxlen;; --len) {
        const uint32_t count = starts_[len];
        starts_[len] = running;
        running += count;
        if (len == 0) break;
      }
      order_.resize(crows);
      for (uint32_t r = 0; r < crows; ++r) {
        order_[starts_[lens_[r]]++] = begin + r;
      }
      const uint32_t blocks = (crows + 3) / 4;
      for (uint32_t b = 0; b < blocks; ++b) {
        uint32_t width = 0;
        for (uint32_t lane = 0; lane < 4; ++lane) {
          const size_t slot = static_cast<size_t>(b) * 4 + lane;
          if (slot < crows) {
            block_rows_.push_back(order_[slot]);
            width = std::max(width, local.Row(order_[slot]).len);
          } else {
            block_rows_.push_back(kPadRow);
          }
        }
        block_width_.push_back(width);
        block_off_.push_back(total);
        total += static_cast<size_t>(width) * 4;
      }
    }
    chunk_blocks_[chunks] = NumBlocks();
    block_off_.push_back(total);
    ell_idx_.assign(total, 0);
    ell_weight_.assign(total, 0.0);
    for (uint32_t c = 0; c < chunks; ++c) {
      const LocalId begin = chunk_begin_[c];
      const uint32_t span = chunk_begin_[c + 1] - begin;
      for (uint32_t b = chunk_blocks_[c]; b < chunk_blocks_[c + 1]; ++b) {
        for (uint32_t lane = 0; lane < 4; ++lane) {
          const LocalId i = block_rows_[static_cast<size_t>(b) * 4 + lane];
          if (i == kPadRow) continue;
          const LocalRow row = local.Row(i);
          for (uint32_t e = 0; e < row.len; ++e) {
            // The audit-tier CSR validity checks run here, once per rebuild
            // — the same coverage the scalar path gets per sweep.
            FLOS_AUDIT(row.idx[e] < n, "local CSR column index out of range");
            FLOS_AUDIT(row.weight[e] >= 0.0,
                       "negative transition probability in local CSR");
            const LocalId j = row.idx[e];
            // Own-chunk columns read live bounds (index 2j); cross-chunk
            // columns are rebased into the snapshot half (index 2n + 2j).
            // Query columns always read live: they are pinned — no sweep
            // writes them — so the read is race-free, and in the serial
            // layout (chunks == 1, no snapshot half allocated) rebasing
            // them would gather past the end of the bound vector.
            const bool own =
                j < q || static_cast<uint32_t>(j - begin) < span;
            const size_t at =
                block_off_[b] + static_cast<size_t>(e) * 4 + lane;
            ell_idx_[at] = static_cast<int32_t>(2u * (own ? j : n + j));
            ell_weight_[at] = row.weight[e];
          }
        }
      }
    }
    built_chunks_ = chunks;
    dirty_ = false;
  }

  template <bool lower_only>
  double ParallelSweep(const FixedPointSweepArgs& args) {
    FLOS_DCHECK(args.snapshot ==
                    args.bounds + 2 * static_cast<size_t>(args.local->Size()),
                "parallel sweep snapshot must be the upper half of the "
                "bound allocation");
    const uint32_t chunks = built_chunks_;
    deltas_.assign(chunks, PaddedDelta{});
    for (uint32_t c = 1; c < chunks; ++c) {
      const Status submitted = args.pool->Submit([this, &args, c] {
        deltas_[c].value =
            Sweep<lower_only>(args, chunk_blocks_[c], chunk_blocks_[c + 1]);
      });
      // A shut-down pool cannot run the chunk; run it on the caller so the
      // sweep still covers every row.
      if (!submitted.ok()) {
        deltas_[c].value =
            Sweep<lower_only>(args, chunk_blocks_[c], chunk_blocks_[c + 1]);
      }
    }
    deltas_[0].value =
        Sweep<lower_only>(args, chunk_blocks_[0], chunk_blocks_[1]);
    args.pool->Wait();
    double delta = 0;
    for (const PaddedDelta& d : deltas_) delta = std::max(delta, d.value);
    return delta;
  }

  template <bool lower_only>
  __attribute__((target("avx2,fma"))) double Sweep(
      const FixedPointSweepArgs& args, uint32_t block_begin,
      uint32_t block_end) {
    double delta = 0;
    double* const bounds = args.bounds;
    const __m256d zero = _mm256_setzero_pd();
    const __m256d pass = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    const __m128i one = _mm_set1_epi32(1);
    for (uint32_t b = block_begin; b < block_end; ++b) {
      const uint32_t width = block_width_[b];
      const int32_t* idx = ell_idx_.data() + block_off_[b];
      const double* weight = ell_weight_.data() + block_off_[b];
      __m256d acc_lo = _mm256_setzero_pd();
      __m256d acc_hi = _mm256_setzero_pd();
      for (uint32_t e = 0; e < width; ++e, idx += 4, weight += 4) {
        const __m128i iv =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
        const __m256d wv = _mm256_loadu_pd(weight);
        acc_lo = _mm256_fmadd_pd(
            wv, _mm256_mask_i32gather_pd(zero, bounds, iv, pass, 8), acc_lo);
        if (!lower_only) {
          acc_hi = _mm256_fmadd_pd(
              wv,
              _mm256_mask_i32gather_pd(zero, bounds, _mm_add_epi32(iv, one),
                                       pass, 8),
              acc_hi);
        }
      }
      alignas(32) double s_lo[4];
      alignas(32) double s_hi[4];
      _mm256_store_pd(s_lo, acc_lo);
      _mm256_store_pd(s_hi, acc_hi);
      for (uint32_t lane = 0; lane < 4; ++lane) {
        const LocalId i = block_rows_[static_cast<size_t>(b) * 4 + lane];
        if (i == kPadRow) continue;
        double* const pi = bounds + 2 * static_cast<size_t>(i);
        const double lo = pi[0];
        const double vl =
            std::max(args.alpha * s_lo[lane] + args.self_coeff[i] * lo, lo);
        if (lower_only) {
          delta = std::max(delta, vl - lo);
          pi[0] = vl;
          continue;
        }
        const double hi = pi[1];
        const double hid = args.hidden_coeff[i] * args.dummy_mesh;
        double vu = args.alpha * s_hi[lane] +
                    args.plain_dummy_coeff[i] * args.dummy_tight + hid;
        if (args.self_loop) {
          vu = std::min(vu, args.alpha * s_hi[lane] + args.self_coeff[i] * hi +
                                args.mesh_dummy_coeff[i] * args.dummy_mesh +
                                hid);
        }
        vu = std::min(vu, hi);
        delta = std::max(delta, std::max(vl - lo, hi - vu));
        pi[0] = vl;
        pi[1] = vu;
      }
    }
    return delta;
  }

  bool dirty_ = true;
  uint32_t built_chunks_ = 0;  ///< chunk count the layout was packed for
  std::vector<uint32_t> lens_;
  std::vector<uint32_t> starts_;
  std::vector<LocalId> order_;
  std::vector<LocalId> chunk_begin_;    ///< partition cuts (chunks + 1)
  std::vector<uint32_t> chunk_blocks_;  ///< chunk -> block range (chunks + 1)
  std::vector<LocalId> block_rows_;
  std::vector<uint32_t> block_width_;
  std::vector<size_t> block_off_;
  std::vector<int32_t> ell_idx_;
  std::vector<double> ell_weight_;
  std::vector<PaddedDelta> deltas_;
};

}  // namespace

bool CpuHasAvx2() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

std::unique_ptr<SweepBackend> MakeAvx2SweepBackend() {
  return std::make_unique<Avx2SweepBackend>();
}

}  // namespace flos
