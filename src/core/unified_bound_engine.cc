#include "core/unified_bound_engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "util/check.h"
#include "util/thread_pool.h"

namespace flos {

namespace {
// Slack for the audited sandwich invariant. The lower and upper systems
// are evaluated in one fused fp pass over certified inputs, so the exact
// relation lower <= upper can be violated only by accumulated rounding
// (~1e-16 per row term on values in [0, 1]); anything past this slack is
// a logic bug, not noise.
constexpr double kSandwichSlack = 1e-12;
}  // namespace

UnifiedBoundEngine::UnifiedBoundEngine(LocalGraph* local,
                                       const UnifiedBoundOptions& options)
    : local_(local) {
  Reset(options);
}

void UnifiedBoundEngine::Reset(const UnifiedBoundOptions& options) {
  options_ = options;
  const SweepBackendKind resolved = ResolveSweepBackendKind(options.backend);
  if (!backend_ || resolved != backend_kind_) {
    backend_ = MakeSweepBackend(resolved);
    backend_kind_ = resolved;
  }
  backend_->InvalidateStructure();
  deadline_hit_ = false;
  nodes_ = 0;
  bounds_.clear();
  self_coeff_.clear();
  mesh_dummy_coeff_.clear();
  plain_dummy_coeff_.clear();
  hidden_coeff_.clear();
  dummy_mesh_ = 1.0;
  dummy_tight_ = 1.0;
  OnGrowth();
}

void UnifiedBoundEngine::OnGrowth() {
  const uint32_t n = local_->Size();
  const size_t old_nodes = nodes_;
  nodes_ = n;
  // With a sweep pool attached the vector carries a second half for the
  // per-sweep parallel snapshot (FixedPointSweepArgs layout contract); its
  // contents are rewritten before every parallel sweep, so it needs no
  // initialization here.
  const size_t slots = options_.sweep_pool != nullptr ? 4 : 2;
  bounds_.resize(slots * static_cast<size_t>(n));
  if (options_.traits.family == BoundFamily::kFixedPoint) {
    // New nodes: lower = 0, upper = 1 are valid PHP-form bounds (all
    // proximities lie in [0, 1]; non-query nodes are in fact <= alpha).
    for (size_t i = old_nodes; i < n; ++i) {
      bounds_[2 * i] = 0.0;
      bounds_[2 * i + 1] = 1.0;
    }
    for (LocalId q = 0; q < local_->query_count(); ++q) {
      bounds_[2 * static_cast<size_t>(q)] = 1.0;
      bounds_[2 * static_cast<size_t>(q) + 1] = 1.0;
    }
    self_coeff_.resize(n, 0.0);
    mesh_dummy_coeff_.resize(n, 0.0);
    plain_dummy_coeff_.resize(n, 0.0);
    hidden_coeff_.resize(n, 0.0);
  } else {
    // New nodes: a truncated hitting time lies in [0, L]; query nodes are
    // already home (0).
    const double horizon = static_cast<double>(options_.traits.horizon);
    for (size_t i = old_nodes; i < n; ++i) {
      bounds_[2 * i] = 0.0;
      bounds_[2 * i + 1] = horizon;
    }
    for (LocalId q = 0; q < local_->query_count(); ++q) {
      bounds_[2 * static_cast<size_t>(q)] = 0.0;
      bounds_[2 * static_cast<size_t>(q) + 1] = 0.0;
    }
  }
  // Growth changes row structure and weights (edges into the new nodes are
  // appended to existing rows), so any backend-cached layout is stale.
  backend_->InvalidateStructure();
}

void UnifiedBoundEngine::CaptureDummyFromBoundary() {
  if (options_.traits.family != BoundFamily::kFixedPoint) return;
  // The paper's choice is r_d^t = max upper bound over delta-S (Algorithm 5
  // line 7). Two rigorous refinements tighten it further:
  //  * every unvisited node's neighbors are boundary or unvisited nodes, so
  //    its proximity is at most alpha * max_{delta-S} exact <= alpha * that
  //    maximum upper bound — a free alpha factor that cascades, iteration
  //    by iteration, into the boundary uppers themselves;
  //  * a PHP-form walk needs at least hop-distance steps to reach q, so an
  //    unvisited node at certified distance >= d has proximity <= alpha^d.
  // All three values dominate every unvisited proximity; take the minimum
  // (clamped non-increasing across iterations).
  double best = 0;
  bool any = false;
  for (LocalId i = 0; i < local_->Size(); ++i) {
    if (local_->IsBoundary(i)) {
      best = std::max(best, upper(i));
      any = true;
    }
  }
  if (!any) return;
  // Mesh dummy: must dominate visited boundary values too (Lemma 4's
  // redirected mesh edges land on them), so the paper's rule is the best
  // we can do.
  dummy_mesh_ = std::min(dummy_mesh_, best);
  // Tight dummy: dominates unvisited values only.
  double candidate = best;
  if (options_.alpha_dummy_tightening) {
    candidate = options_.traits.alpha * best;
    const double hops = std::min<double>(60, local_->UnvisitedHopLowerBound());
    candidate = std::min(candidate, std::pow(options_.traits.alpha, hops));
    // Per-frontier-node uppers dominate every unvisited proximity too (the
    // maximum over delta-S-bar bounds deeper nodes by self-consistency).
    // NOT valid on truncated rows: a hidden edge reaches unvisited nodes
    // that are in no enumerated frontier, so the self-consistency argument
    // has a hole — skip the refinement there (the alpha and hop-cap
    // candidates above survive: hidden-mass fringe stays boundary forever,
    // so unvisited nodes' visited neighbors are still all boundary).
    if (options_.traits.frontier_dummy && !local_->HasTruncatedRows()) {
      const OutsideUppers out = ComputeOutsideUppers();
      if (out.any) candidate = std::min(candidate, out.max_value);
    }
  }
  dummy_tight_ = std::min({dummy_tight_, dummy_mesh_, candidate});
  // The tight dummy bounds a subset of what the mesh dummy bounds, so it
  // can never exceed it; both are clamped non-increasing above.
  FLOS_DCHECK_LE(dummy_tight_, dummy_mesh_,
                 "tight dummy must not exceed mesh dummy");
}

void UnifiedBoundEngine::AuditBoundSandwich(const char* where) const {
  for (size_t i = 0; i < nodes_; ++i) {
    FLOS_CHECK_LE(bounds_[2 * i], bounds_[2 * i + 1] + kSandwichSlack, where);
  }
}

void UnifiedBoundEngine::AuditNoLooserThanJacobi(
    const std::vector<double>& prev, bool lower_only) const {
  // Jacobi-iterate floor: one scalar clamped row update evaluated entirely
  // on `prev` (the bounds as they stood before the sweep). The slack
  // absorbs fp reassociation between this reference evaluation and the
  // backend's (SIMD lockstep, chunked) one.
  constexpr double kJacobiSlack = 1e-9;
  const double* const p = prev.data();
  FusedPairRowSweep(*local_, p, [&](LocalId i, double s_lo, double s_hi) {
    if (local_->IsQueryLocal(i)) return;  // pinned
    const double* const pp = p + 2 * static_cast<size_t>(i);
    const double lo = pp[0];
    const double hi = pp[1];
    const double vl =
        std::max(options_.traits.alpha * s_lo + self_coeff_[i] * lo, lo);
    FLOS_CHECK_GE(bounds_[2 * static_cast<size_t>(i)], vl - kJacobiSlack,
                  "sweep left a lower bound looser than the Jacobi iterate");
    if (lower_only) return;
    const double hid = hidden_coeff_[i] * dummy_mesh_;
    double vu = options_.traits.alpha * s_hi +
                plain_dummy_coeff_[i] * dummy_tight_ + hid;
    if (options_.self_loop_tightening) {
      vu = std::min(vu, options_.traits.alpha * s_hi + self_coeff_[i] * hi +
                            mesh_dummy_coeff_[i] * dummy_mesh_ + hid);
    }
    vu = std::min(vu, hi);
    FLOS_CHECK_LE(bounds_[2 * static_cast<size_t>(i) + 1], vu + kJacobiSlack,
                  "sweep left an upper bound looser than the Jacobi iterate");
  });
}

UnifiedBoundEngine::OutsideUppers UnifiedBoundEngine::ComputeOutsideUppers() {
  // Accumulate, per unvisited frontier node v, the in-S transition mass
  // and its upper-bound-weighted sum, by walking the boundary's outside
  // edges. p_vu = w_uv / w_v with w_v from the degree probe cache.
  std::unordered_map<NodeId, std::pair<double, double>> acc;  // mass, sum
  for (LocalId u = 0; u < local_->Size(); ++u) {
    if (!local_->IsBoundary(u)) continue;
    const double ru = local_->IsQueryLocal(u) ? 1.0 : upper(u);
    for (const Neighbor& nb : local_->Neighbors(u)) {
      if (local_->Contains(nb.id)) continue;
      const double wv = local_->ProbeDegree(nb.id);
      if (wv <= 0) continue;
      auto& [mass, sum] = acc[nb.id];
      mass += nb.weight / wv;
      sum += nb.weight / wv * ru;
    }
  }
  OutsideUppers out;
  const double alpha = options_.traits.alpha;
  // The residual mass multiplies a dummy that must dominate v's neighbors
  // NOT found in S by the scan above. With complete rows those are all
  // unvisited (dummy_tight_). A truncated row can hide an edge from a
  // VISITED fringe node to v, so the residual then includes visited-
  // boundary values and needs dummy_mesh_ (hidden-mass fringe is boundary
  // forever, so dummy_mesh_ dominates it by its capture rule).
  const double residual_dummy =
      local_->HasTruncatedRows() ? dummy_mesh_ : dummy_tight_;
  for (const auto& [v, ms] : acc) {
    const double residual = std::max(0.0, 1.0 - ms.first);
    const double bound = alpha * (ms.second + residual * residual_dummy);
    out.max_value = std::max(out.max_value, bound);
    out.max_degree_weighted =
        std::max(out.max_degree_weighted, local_->ProbeDegree(v) * bound);
    out.any = true;
  }
  return out;
}

void UnifiedBoundEngine::RefreshBoundaryCoefficients() {
  // Incremental: only nodes whose outside-neighbor set changed since the
  // last update (new nodes and neighbors of new nodes) need their
  // coefficients recomputed.
  const double alpha = options_.traits.alpha;
  for (const LocalId i : local_->TakeDirtyNodes()) {
    self_coeff_[i] = 0;
    mesh_dummy_coeff_[i] = 0;
    plain_dummy_coeff_[i] = 0;
    hidden_coeff_[i] = 0;
    if (local_->IsQueryLocal(i) || !local_->IsBoundary(i)) continue;
    const double wi = local_->WeightedDegree(i);
    if (wi <= 0) continue;
    // Hidden (non-enumerable) edge mass keeps the plain single-alpha
    // redirect to dummy_mesh in both constructions; a node with hidden
    // mass is boundary forever, so this branch is never skipped for it.
    hidden_coeff_[i] = alpha * local_->HiddenMass(i) / wi;
    double out_mass = 0;        // sum over VISIBLE unvisited nbrs of p_iv
    double loop_mass = 0;       // sum of p_iv * p_vi
    for (const Neighbor& nb : local_->Neighbors(i)) {
      if (local_->Contains(nb.id)) continue;
      const double p_iv = nb.weight / wi;
      out_mass += p_iv;
      if (options_.self_loop_tightening) {
        const double wv = local_->ProbeDegree(nb.id);
        if (wv > 0) loop_mass += p_iv * (nb.weight / wv);
      }
    }
    // Plain construction (Theorem 5): all outside mass to the dummy.
    plain_dummy_coeff_[i] = alpha * out_mass;
    if (options_.self_loop_tightening) {
      // Mesh construction (Lemmas 3/4): p_ii = alpha * loop_mass,
      // p_id = alpha * (out - loop). In the iteration r <- alpha T r + e
      // these appear with one more alpha factor.
      self_coeff_[i] = alpha * alpha * loop_mass;
      mesh_dummy_coeff_[i] = alpha * alpha * (out_mass - loop_mass);
    }
  }
}

FixedPointSweepArgs UnifiedBoundEngine::SweepArgs() {
  FixedPointSweepArgs args;
  args.local = local_;
  args.bounds = bounds_.data();
  args.self_coeff = self_coeff_.data();
  args.mesh_dummy_coeff = mesh_dummy_coeff_.data();
  args.plain_dummy_coeff = plain_dummy_coeff_.data();
  args.hidden_coeff = hidden_coeff_.data();
  args.alpha = options_.traits.alpha;
  args.dummy_tight = dummy_tight_;
  args.dummy_mesh = dummy_mesh_;
  args.self_loop = options_.self_loop_tightening;
  return args;
}

uint32_t UnifiedBoundEngine::FusedSolve(double tolerance, bool lower_only) {
  const bool has_deadline =
      options_.deadline != std::chrono::steady_clock::time_point::max();
  FixedPointSweepArgs args = SweepArgs();
  // Adaptive parallel selection: a pure function of the visited size, so
  // the choice is stable for a fixed structure (it can only flip at
  // growth, which also invalidates the backend layout).
  const bool parallel =
      options_.sweep_pool != nullptr &&
      nodes_ >= std::max<uint32_t>(options_.parallel_min_rows, 2);
  if (parallel) {
    args.pool = options_.sweep_pool;
    args.chunks =
        static_cast<uint32_t>(options_.sweep_pool->num_threads()) + 1;
    args.snapshot = bounds_.data() + 2 * nodes_;
  }
  uint32_t iters = 0;
  deadline_hit_ = false;
  // Audit tier: snapshot the incoming bounds so every sweep can be checked
  // against them. The entry sandwich check catches state that was already
  // uncertified before this solve (e.g. injected corruption).
  std::vector<double> audit_prev;
  FLOS_AUDIT_SCOPE {
    AuditBoundSandwich("sandwich violated on entry to FusedSolve");
    audit_prev = bounds_;
  }
  while (iters < options_.max_inner_iterations) {
    // Amortized convergence checks: warm-started solves converge within a
    // sweep or two, so check every sweep early; long cold solves check
    // every fourth sweep.
    const bool check = iters < 4 || (iters & 3) == 3 ||
                       iters + 1 == options_.max_inner_iterations;
    // Parallel sweeps read cross-chunk columns from an immutable pre-sweep
    // snapshot: refresh it (the one per-sweep copy this design pays).
    if (parallel) {
      std::copy_n(bounds_.data(), 2 * nodes_, bounds_.data() + 2 * nodes_);
    }
    const double delta = lower_only ? backend_->LowerSweep(args)
                                    : backend_->FusedSweep(args);
    ++iters;
    FLOS_AUDIT_SCOPE {
      // Certified bounds only ever tighten: the in-place updates clamp
      // against the previous value with std::max/std::min, so monotonicity
      // must hold EXACTLY, sweep by sweep — any loosening means a value
      // escaped the clamp and is no longer certified.
      for (size_t i = 0; i < nodes_; ++i) {
        FLOS_CHECK_GE(bounds_[2 * i], audit_prev[2 * i],
                      "lower bound loosened across a sweep");
        if (!lower_only) {
          FLOS_CHECK_LE(bounds_[2 * i + 1], audit_prev[2 * i + 1],
                        "upper bound loosened across a sweep");
        }
      }
      // Every sweep — serial Gauss–Seidel, SIMD-reordered, or parallel
      // block — must land at least as tight as one Jacobi step from the
      // pre-sweep state (the monotone-mixture floor).
      AuditNoLooserThanJacobi(audit_prev, lower_only);
      AuditBoundSandwich("sandwich violated after a fused sweep");
      audit_prev = bounds_;
    }
    if (check && delta < tolerance) break;
    // Anytime termination: each completed sweep is a certified bound state,
    // so stopping here (at the amortized checkpoints, to keep the hot loop
    // free of clock reads) leaves valid — merely looser — bounds.
    if (check && has_deadline &&
        std::chrono::steady_clock::now() >= options_.deadline) {
      deadline_hit_ = true;
      break;
    }
  }
  return iters;
}

void UnifiedBoundEngine::HorizonDpUpdate() {
  const uint32_t n = local_->Size();
  const int length = options_.traits.horizon;
  const bool has_deadline =
      options_.deadline != std::chrono::steady_clock::time_point::max();
  deadline_hit_ = false;
  work_lo_.assign(n, 0.0);
  work_hi_.assign(n, 0.0);
  next_lo_.assign(n, 0.0);
  next_hi_.assign(n, 0.0);

  // Escaped-mass continuations. Upper: an escaped walker can take at most
  // the full remaining horizon. Lower: an escaped walker sits on an
  // unvisited node, whose hop distance to q is at least
  // UnvisitedHopLowerBound(), so its remaining truncated hitting time is at
  // least min(horizon, that distance) — this is what lets the termination
  // test fire once the boundary has receded past the top-k's values.
  const double unvisited_hops =
      std::min<double>(length, local_->UnvisitedHopLowerBound());

  // The horizon recursion needs the step-(t-1) values on the right-hand
  // side, so the DP stays a Jacobi double buffer — but each step is ONE
  // fused scan of the local CSR computing both bound dot products, and the
  // out-of-S transition mass comes from the maintained row in-mass (no
  // per-update O(edges) rescans). Degree-0 nodes can never hit q; their
  // value saturates at L. Bit-exact scalar evaluation is part of the DP's
  // test contract, so this path stays off the SweepBackend seam.
  for (int t = 1; t <= length; ++t) {
    // Anytime hook: the horizon recursion is only a valid THT bound once
    // all L steps ran, so an expired deadline abandons the recompute and
    // keeps the previous (smaller-S, still certified) bounds instead.
    if (has_deadline && t > 1 &&
        std::chrono::steady_clock::now() >= options_.deadline) {
      deadline_hit_ = true;
      return;
    }
    const double horizon = t - 1;  // max THT value at horizon t-1 (<= L)
    const double escaped_lo = std::min(horizon, unvisited_hops);
    FusedRowSweep(*local_, work_lo_.data(), work_hi_.data(),
                  [&](LocalId i, double s_lo, double s_hi) {
                    if (local_->IsQueryLocal(i)) {
                      next_lo_[i] = 0;
                      next_hi_[i] = 0;
                      return;
                    }
                    if (local_->WeightedDegree(i) <= 0) {
                      next_lo_[i] = length;
                      next_hi_[i] = length;
                      return;
                    }
                    const double out =
                        std::max(0.0, 1.0 - local_->RowInMass(i));
                    // Hidden (truncated-row) escape mass may land on a
                    // VISITED fringe node arbitrarily close to q, so the
                    // unvisited-hop continuation does not apply to it:
                    // it contributes 0 to the lower. The upper's full-
                    // horizon continuation covers it unchanged.
                    const double wdi = local_->WeightedDegree(i);
                    const double hid = std::min(
                        out, wdi > 0 ? local_->HiddenMass(i) / wdi : 0.0);
                    next_lo_[i] = 1.0 + s_lo + (out - hid) * escaped_lo;
                    next_hi_[i] = 1.0 + s_hi + out * horizon;
                  });
    work_lo_.swap(next_lo_);
    work_hi_.swap(next_hi_);
    FLOS_AUDIT_SCOPE {
      // Every DP step must preserve the sandwich: the escaped-mass
      // continuations satisfy escaped_lo <= horizon and the fused dot
      // products are computed over lo <= hi inputs with non-negative
      // weights, so work_lo <= work_hi holds exactly, step by step.
      for (LocalId i = 0; i < n; ++i) {
        FLOS_CHECK_LE(work_lo_[i], work_hi_[i],
                      "THT DP step broke the sandwich");
      }
    }
  }

  // Monotone clamps: previous bounds stay valid as S only grows.
  for (LocalId i = 0; i < n; ++i) {
    double* const pi = bounds_.data() + 2 * static_cast<size_t>(i);
    const double prev_lo = pi[0];
    const double prev_hi = pi[1];
    pi[0] = std::max(prev_lo, work_lo_[i]);
    pi[1] = std::min(prev_hi, work_hi_[i]);
    // The clamps make cross-update monotonicity exact. The clamped
    // interval intersects two independently-rounded certified intervals,
    // so the non-emptiness check allows rounding-scale slack (values are
    // O(length), per-step errors are O(1e-15)).
    FLOS_AUDIT_GE(pi[0], prev_lo, "THT lower bound loosened");
    FLOS_AUDIT_LE(pi[1], prev_hi, "THT upper bound loosened");
    FLOS_AUDIT_LE(pi[0], pi[1] + 1e-9 * length,
                  "THT bounds crossed after clamp");
  }
}

uint32_t UnifiedBoundEngine::UpdateBounds() {
  if (options_.traits.family == BoundFamily::kHorizonDp) {
    HorizonDpUpdate();
    return 1;
  }
  RefreshBoundaryCoefficients();
  return FusedSolve(options_.tolerance, /*lower_only=*/false);
}

uint32_t UnifiedBoundEngine::UpdateLowerOnly() {
  FLOS_DCHECK(options_.traits.family == BoundFamily::kFixedPoint,
              "UpdateLowerOnly is a fixed-point-only operation");
  RefreshBoundaryCoefficients();
  return FusedSolve(options_.tolerance, /*lower_only=*/true);
}

uint32_t UnifiedBoundEngine::FinalizeExhausted(double final_tolerance) {
  if (options_.traits.family == BoundFamily::kHorizonDp) {
    // The DP is already exact once S is the whole component.
    HorizonDpUpdate();
    return 1;
  }
  // With S exhausted there is no boundary: the deleted-transition system is
  // the exact system. Solve it tightly and collapse the interval.
  RefreshBoundaryCoefficients();
  const uint32_t iters = FusedSolve(final_tolerance, /*lower_only=*/true);
  // A deadline-interrupted solve has not reached the exact fixed point yet;
  // collapsing would turn a valid lower bound into an invalid upper one.
  if (!deadline_hit_) {
    for (size_t i = 0; i < nodes_; ++i) bounds_[2 * i + 1] = bounds_[2 * i];
  }
  return iters;
}

void UnifiedBoundEngine::SaveBounds(std::vector<double>* out) const {
  out->assign(bounds_.begin(),
              bounds_.begin() + static_cast<ptrdiff_t>(2 * nodes_));
}

void UnifiedBoundEngine::RestoreBounds(const double* data, size_t nodes,
                                       double dummy_mesh, double dummy_tight) {
  FLOS_CHECK_EQ(nodes, nodes_,
                "RestoreBounds size must match the restored local graph");
  std::copy_n(data, 2 * nodes, bounds_.data());
  dummy_mesh_ = dummy_mesh;
  dummy_tight_ = dummy_tight;
  // The restored values replace whatever the fresh seed wrote; any
  // backend-cached layout keyed to value-independent structure is still
  // fine, but invalidate anyway so a warm start never trusts stale state.
  backend_->InvalidateStructure();
  FLOS_AUDIT_SCOPE {
    AuditBoundSandwich("restored bounds violate the sandwich");
  }
}

}  // namespace flos
