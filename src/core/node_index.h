// Epoch-versioned node-keyed maps for reusable query workspaces.
//
// FLoS touches a tiny fraction of the graph per query but used to pay
// allocator and rehash costs for a fresh `std::unordered_map` on every call.
// `NodeMap<V>` keeps its storage across queries and resets in O(1) by
// bumping an epoch counter: a slot whose stamp differs from the current
// epoch is simply "absent". Two backends share one interface:
//
//   * dense  — stamp + value arrays indexed by NodeId. O(1) true random
//     access, but O(NumNodes()) memory per map. The right choice for
//     in-memory CSR graphs, where node count is known and a few bytes per
//     node per worker thread is cheap (see GraphAccessor::DenseIndexHint).
//   * sparse — open-addressing hash table (linear probing, power-of-two
//     capacity, epoch-stamped slots). Memory proportional to the visited
//     set, so it also serves disk-resident graphs whose node count may
//     dwarf what a per-thread dense array should pin.
//
// Neither backend supports erase; FLoS never removes a visited node within
// a query, and cross-query cleanup is the epoch bump. Both backends keep
// their capacity across Reset(), so steady-state queries allocate nothing.

#ifndef FLOS_CORE_NODE_INDEX_H_
#define FLOS_CORE_NODE_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/check.h"

namespace flos {

/// Epoch-resettable map from NodeId to V with dense and open-addressing
/// backends. Not thread-safe; one instance per query workspace.
template <typename V>
class NodeMap {
 public:
  NodeMap() = default;

  /// Selects the backend and prepares an empty map. `num_nodes` is the
  /// graph's node count (bounds every key); `dense` picks the stamp-array
  /// backend. Callable repeatedly; switching backends drops storage.
  void Configure(uint64_t num_nodes, bool dense) {
    if (dense_ != dense) {
      dense_stamp_.clear();
      dense_stamp_.shrink_to_fit();
      dense_value_.clear();
      dense_value_.shrink_to_fit();
      slots_.clear();
      slots_.shrink_to_fit();
      epoch_ = 0;
    }
    dense_ = dense;
    if (dense_) {
      dense_stamp_.resize(num_nodes, 0);
      dense_value_.resize(num_nodes);
    } else if (slots_.empty()) {
      slots_.resize(kInitialSlots);
    }
    Reset();
  }

  /// Forgets every entry in O(1); capacity is retained.
  void Reset() {
    ++epoch_;
    size_ = 0;
    if (epoch_ == 0) {  // wrapped: stale stamps could alias; hard-clear
      epoch_ = 1;
      if (dense_) {
        std::fill(dense_stamp_.begin(), dense_stamp_.end(), 0);
      } else {
        for (Slot& s : slots_) s.stamp = 0;
      }
    }
    FLOS_AUDIT_SCOPE {
      // Epoch-aliasing ground truth: after a Reset no stored stamp may
      // equal (or exceed) the new epoch, otherwise a dead entry from an
      // earlier query would resurrect as live. O(capacity), audit only.
      if (dense_) {
        for (const uint32_t stamp : dense_stamp_) {
          FLOS_CHECK_LT(stamp, epoch_, "stale stamp aliases the new epoch");
        }
      } else {
        for (const Slot& s : slots_) {
          FLOS_CHECK_LT(s.stamp, epoch_, "stale stamp aliases the new epoch");
        }
      }
    }
  }

  /// Number of live entries.
  uint32_t size() const { return size_; }

  /// Pointer to the value for `key`, or nullptr if absent. The pointer is
  /// invalidated by the next Insert (sparse backend may rehash).
  V* Find(NodeId key) {
    if (dense_) {
      FLOS_DCHECK(key < dense_stamp_.size(), "NodeMap key out of range");
      // A stamp from the future would alias as "present" after the next
      // Reset; the wrap handling in Reset() must make this impossible.
      FLOS_DCHECK_LE(dense_stamp_[key], epoch_,
                     "NodeMap stamp ahead of current epoch");
      return dense_stamp_[key] == epoch_ ? &dense_value_[key] : nullptr;
    }
    for (uint64_t i = Hash(key);; ++i) {
      Slot& s = slots_[i & (slots_.size() - 1)];
      FLOS_DCHECK_LE(s.stamp, epoch_, "NodeMap stamp ahead of current epoch");
      if (s.stamp != epoch_) return nullptr;
      if (s.key == key) return &s.value;
    }
  }

  const V* Find(NodeId key) const {
    return const_cast<NodeMap*>(this)->Find(key);
  }

  /// True iff `key` has an entry.
  bool Contains(NodeId key) const { return Find(key) != nullptr; }

  /// Inserts `key` -> `value` if absent. Returns true if inserted, false
  /// if the key was already present (existing value untouched).
  bool Insert(NodeId key, const V& value) {
    if (dense_) {
      FLOS_DCHECK(key < dense_stamp_.size(), "NodeMap key out of range");
      FLOS_DCHECK_LE(dense_stamp_[key], epoch_,
                     "NodeMap stamp ahead of current epoch");
      if (dense_stamp_[key] == epoch_) return false;
      dense_stamp_[key] = epoch_;
      dense_value_[key] = value;
      ++size_;
      return true;
    }
    if ((size_ + 1) * 2 > slots_.size()) Grow();
    for (uint64_t i = Hash(key);; ++i) {
      Slot& s = slots_[i & (slots_.size() - 1)];
      if (s.stamp != epoch_) {
        s.stamp = epoch_;
        s.key = key;
        s.value = value;
        ++size_;
        return true;
      }
      if (s.key == key) return false;
    }
  }

 private:
  static constexpr size_t kInitialSlots = 1024;  // power of two

  struct Slot {
    uint32_t stamp = 0;
    NodeId key = 0;
    V value{};
  };

  static uint64_t Hash(NodeId key) {
    // Fibonacci multiplicative hash; ids are dense so this spreads runs.
    return static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull >> 32;
  }

  void Grow() {
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.resize(old.size() * 2);
    for (const Slot& s : old) {
      if (s.stamp != epoch_) continue;
      for (uint64_t i = Hash(s.key);; ++i) {
        Slot& dst = slots_[i & (slots_.size() - 1)];
        if (dst.stamp != epoch_) {
          dst = s;
          break;
        }
      }
    }
  }

  bool dense_ = false;
  uint32_t epoch_ = 0;
  uint32_t size_ = 0;
  std::vector<uint32_t> dense_stamp_;  // dense backend
  std::vector<V> dense_value_;
  std::vector<Slot> slots_;  // sparse backend
};

}  // namespace flos

#endif  // FLOS_CORE_NODE_INDEX_H_
