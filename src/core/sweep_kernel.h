// Shared row-sweep kernels over the flat SoA local CSR (core/local_graph.h).
//
// Both bound engines — the PHP-form fixed-point engine and the THT
// finite-horizon DP — spend their inner loops computing, per visited node
// i, dot products of row i's transition probabilities against one or two
// dense value vectors. These templates are that loop, written once:
//
//  * one scan of row i produces BOTH dot products (the lower and upper
//    systems share the identical sum_j p_ij * x_j structure), halving the
//    row-index traffic of separate lower/upper passes;
//  * the next row's index and weight slabs are software-prefetched one
//    row ahead, so a sweep streams the two arena arrays;
//  * what happens with the dot products (Gauss–Seidel in-place update,
//    Jacobi double-buffer DP step, convergence bookkeeping) is the
//    caller's `body`, inlined at the call site.
//
// In-place (Gauss–Seidel) use is sound for the monotone bound operators:
// if every input value is a certified bound, any mixture of old and
// already-updated values still is, so the body may write through the same
// vectors it reads (see bound_engine.cc for the full argument).

#ifndef FLOS_CORE_SWEEP_KERNEL_H_
#define FLOS_CORE_SWEEP_KERNEL_H_

#include <cstdint>
#include <memory>

#include "core/local_graph.h"
#include "util/check.h"

namespace flos {

class ThreadPool;

/// One fused sweep: body(i, s_lo, s_hi) with s_lo = sum_j p_ij lo[j],
/// s_hi = sum_j p_ij hi[j], for i = 0..Size()-1 in visit order. `lo`/`hi`
/// may alias vectors the body writes (Gauss–Seidel).
template <typename Body>
inline void FusedRowSweep(const LocalGraph& local, const double* lo,
                          const double* hi, Body&& body) {
  const uint32_t n = local.Size();
  for (LocalId i = 0; i < n; ++i) {
    if (i + 1 < n) local.PrefetchRow(i + 1);
    const LocalRow row = local.Row(i);
    double s_lo = 0;
    double s_hi = 0;
    for (uint32_t e = 0; e < row.len; ++e) {
      const double p = row.weight[e];
      const LocalId j = row.idx[e];
      // Audit tier only: a column index past |S| or a negative transition
      // probability means the local CSR itself is corrupt, and every bound
      // computed from it is uncertified.
      FLOS_AUDIT(j < n, "local CSR column index out of range");
      FLOS_AUDIT(p >= 0.0, "negative transition probability in local CSR");
      s_lo += p * lo[j];
      s_hi += p * hi[j];
    }
    body(i, s_lo, s_hi);
  }
}

/// Single-vector variant: body(i, s) with s = sum_j p_ij x[j]. Used by
/// lower-only consumers (UpdateLowerOnly, FinalizeExhausted).
template <typename Body>
inline void RowSweep(const LocalGraph& local, const double* x, Body&& body) {
  const uint32_t n = local.Size();
  for (LocalId i = 0; i < n; ++i) {
    if (i + 1 < n) local.PrefetchRow(i + 1);
    const LocalRow row = local.Row(i);
    double s = 0;
    for (uint32_t e = 0; e < row.len; ++e) {
      FLOS_AUDIT(row.idx[e] < n, "local CSR column index out of range");
      s += row.weight[e] * x[row.idx[e]];
    }
    body(i, s);
  }
}

/// Pair-layout fused sweep: `bounds` interleaves (lower, upper) per node —
/// bounds[2i] = lower_i, bounds[2i+1] = upper_i — so each random column
/// access touches ONE cache line instead of two. body(i, s_lo, s_hi) as in
/// FusedRowSweep; the body may write back through `bounds` (Gauss–Seidel).
template <typename Body>
inline void FusedPairRowSweep(const LocalGraph& local, const double* bounds,
                              Body&& body) {
  const uint32_t n = local.Size();
  for (LocalId i = 0; i < n; ++i) {
    if (i + 1 < n) local.PrefetchRow(i + 1);
    const LocalRow row = local.Row(i);
    double s_lo = 0;
    double s_hi = 0;
    for (uint32_t e = 0; e < row.len; ++e) {
      const double p = row.weight[e];
      const LocalId j = row.idx[e];
      FLOS_AUDIT(j < n, "local CSR column index out of range");
      FLOS_AUDIT(p >= 0.0, "negative transition probability in local CSR");
      const double* const pj = bounds + 2 * static_cast<size_t>(j);
      s_lo += p * pj[0];
      s_hi += p * pj[1];
    }
    body(i, s_lo, s_hi);
  }
}

// ---------------------------------------------------------------------------
// SweepBackend: the pluggable inner-sweep kernel seam.
//
// A backend executes ONE whole fixed-point sweep (both bounds fused, or the
// lower system alone) over the pair-layout bound vector, applying the
// engine's monotone clamp rules per row, and returns the largest
// elementwise movement. Convergence policy, deadline checks, audit
// snapshots and coefficient maintenance stay in the engine — the backend is
// purely the O(edges(S)) hot loop, which is what makes an ISA-specialized
// implementation (sweep_backend_avx2.cc) drop-in safe:
//
//  * validity does not depend on the update ORDER — for the monotone bound
//    operators any mixture of old and updated values is certified and no
//    looser than the Jacobi iterate (see core/unified_bound_engine.h), so a
//    backend may reorder or block rows for SIMD;
//  * each backend must still tighten monotonically per row (the clamps are
//    part of the contract, not an optimization).
//
// The THT finite-horizon DP is NOT behind this seam: its Jacobi double
// buffer must be evaluated bit-exactly per horizon step (tests pin the DP
// against a reference recursion with exact equality), so it always runs the
// scalar FusedRowSweep path.

/// Which sweep backend to use. kAuto resolves to kAvx2 when the CPU
/// supports it, else kScalar.
enum class SweepBackendKind { kAuto, kScalar, kAvx2 };

/// Inputs of one fixed-point sweep. Arrays are indexed by LocalId and sized
/// to local->Size(); `bounds` is the interleaved (lower, upper) vector.
struct FixedPointSweepArgs {
  const LocalGraph* local = nullptr;
  double* bounds = nullptr;
  const double* self_coeff = nullptr;
  const double* mesh_dummy_coeff = nullptr;
  const double* plain_dummy_coeff = nullptr;
  /// Coefficient of r_d for each row's HIDDEN mass (alpha * hidden / w_i;
  /// all-zero on complete-adjacency accessors). Hidden edges may land on
  /// VISITED boundary nodes, so this multiplies dummy_mesh — never
  /// dummy_tight — and, lacking known return edges, it keeps the plain
  /// single-alpha redirect in BOTH upper constructions.
  const double* hidden_coeff = nullptr;
  double alpha = 0.5;
  double dummy_tight = 1.0;
  double dummy_mesh = 1.0;
  /// Star-to-mesh construction enabled (self_coeff/mesh_dummy_coeff live).
  bool self_loop = true;

  // -------------------------------------------------------------------------
  // Intra-sweep parallelism (block-Jacobi-across / Gauss–Seidel-within).
  //
  // When `pool` is non-null and `chunks > 1`, the backend partitions the
  // non-query rows into `chunks` contiguous LocalId ranges (balanced by row
  // entry counts) and runs them concurrently: `chunks - 1` ranges on the
  // pool's workers, one on the calling thread. Within its range a chunk
  // still updates in place (Gauss–Seidel: reads of OWN-range columns see
  // this sweep's already-committed values), but every read of ANOTHER
  // chunk's column comes from `snapshot` — an immutable copy of the bounds
  // the caller takes immediately before each sweep. Soundness is the same
  // monotone-mixture argument that justifies reordering (see
  // core/unified_bound_engine.h): snapshot values are the previous sweep's
  // certified bounds, own-range values are newer certified bounds, and any
  // mixture fed to the monotone row operators yields certified bounds again
  // that are elementwise no looser than the Jacobi iterate from the
  // snapshot. The partition is a pure function of the CSR structure and
  // `chunks`, and cross-chunk reads never touch live data, so the result is
  // DETERMINISTIC regardless of thread scheduling — and race-free: each
  // chunk writes only its own bound range and delta slot.
  //
  // Layout contract: `snapshot` MUST point at `bounds + 2 * local->Size()`
  // inside the same allocation (the engine sizes its bound vector to 4n
  // when a pool is attached). The AVX2 backend relies on the fixed +2n
  // offset: cross-chunk column indexes are rebased into the snapshot half
  // at ELL pack time, so one gather base pointer serves both halves.
  ThreadPool* pool = nullptr;
  uint32_t chunks = 1;
  const double* snapshot = nullptr;
};

/// One sweep-kernel implementation. Thread-compatible; one instance per
/// engine (backends may cache a derived layout of the local CSR).
class SweepBackend {
 public:
  virtual ~SweepBackend() = default;

  /// Stable identifier for stats/bench output ("scalar", "avx2").
  virtual const char* name() const = 0;

  /// The local CSR's structure or weights changed (growth); any cached
  /// derived layout must be rebuilt before the next sweep.
  virtual void InvalidateStructure() = 0;

  /// One fused Gauss–Seidel sweep updating both bounds in place. Returns
  /// the largest elementwise movement (max over lower raises and upper
  /// drops).
  virtual double FusedSweep(const FixedPointSweepArgs& args) = 0;

  /// One lower-only sweep (UpdateLowerOnly / FinalizeExhausted).
  virtual double LowerSweep(const FixedPointSweepArgs& args) = 0;
};

/// True iff this CPU can run the AVX2 backend.
bool Avx2SweepAvailable();

/// Resolves kAuto to a concrete kind for this CPU.
SweepBackendKind ResolveSweepBackendKind(SweepBackendKind kind);

/// Human-readable kind name ("auto", "scalar", "avx2").
const char* SweepBackendKindName(SweepBackendKind kind);

/// Constructs the backend for `kind` (kAuto resolves per CPU). Requesting
/// kAvx2 on a CPU without AVX2 falls back to scalar.
std::unique_ptr<SweepBackend> MakeSweepBackend(SweepBackendKind kind);

}  // namespace flos

#endif  // FLOS_CORE_SWEEP_KERNEL_H_
