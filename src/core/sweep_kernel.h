// Shared row-sweep kernels over the flat SoA local CSR (core/local_graph.h).
//
// Both bound engines — the PHP-form fixed-point engine and the THT
// finite-horizon DP — spend their inner loops computing, per visited node
// i, dot products of row i's transition probabilities against one or two
// dense value vectors. These templates are that loop, written once:
//
//  * one scan of row i produces BOTH dot products (the lower and upper
//    systems share the identical sum_j p_ij * x_j structure), halving the
//    row-index traffic of separate lower/upper passes;
//  * the next row's index and weight slabs are software-prefetched one
//    row ahead, so a sweep streams the two arena arrays;
//  * what happens with the dot products (Gauss–Seidel in-place update,
//    Jacobi double-buffer DP step, convergence bookkeeping) is the
//    caller's `body`, inlined at the call site.
//
// In-place (Gauss–Seidel) use is sound for the monotone bound operators:
// if every input value is a certified bound, any mixture of old and
// already-updated values still is, so the body may write through the same
// vectors it reads (see bound_engine.cc for the full argument).

#ifndef FLOS_CORE_SWEEP_KERNEL_H_
#define FLOS_CORE_SWEEP_KERNEL_H_

#include <cstdint>

#include "core/local_graph.h"
#include "util/check.h"

namespace flos {

/// One fused sweep: body(i, s_lo, s_hi) with s_lo = sum_j p_ij lo[j],
/// s_hi = sum_j p_ij hi[j], for i = 0..Size()-1 in visit order. `lo`/`hi`
/// may alias vectors the body writes (Gauss–Seidel).
template <typename Body>
inline void FusedRowSweep(const LocalGraph& local, const double* lo,
                          const double* hi, Body&& body) {
  const uint32_t n = local.Size();
  for (LocalId i = 0; i < n; ++i) {
    if (i + 1 < n) local.PrefetchRow(i + 1);
    const LocalRow row = local.Row(i);
    double s_lo = 0;
    double s_hi = 0;
    for (uint32_t e = 0; e < row.len; ++e) {
      const double p = row.weight[e];
      const LocalId j = row.idx[e];
      // Audit tier only: a column index past |S| or a negative transition
      // probability means the local CSR itself is corrupt, and every bound
      // computed from it is uncertified.
      FLOS_AUDIT(j < n, "local CSR column index out of range");
      FLOS_AUDIT(p >= 0.0, "negative transition probability in local CSR");
      s_lo += p * lo[j];
      s_hi += p * hi[j];
    }
    body(i, s_lo, s_hi);
  }
}

/// Single-vector variant: body(i, s) with s = sum_j p_ij x[j]. Used by
/// lower-only consumers (UpdateLowerOnly, FinalizeExhausted).
template <typename Body>
inline void RowSweep(const LocalGraph& local, const double* x, Body&& body) {
  const uint32_t n = local.Size();
  for (LocalId i = 0; i < n; ++i) {
    if (i + 1 < n) local.PrefetchRow(i + 1);
    const LocalRow row = local.Row(i);
    double s = 0;
    for (uint32_t e = 0; e < row.len; ++e) {
      FLOS_AUDIT(row.idx[e] < n, "local CSR column index out of range");
      s += row.weight[e] * x[row.idx[e]];
    }
    body(i, s);
  }
}

}  // namespace flos

#endif  // FLOS_CORE_SWEEP_KERNEL_H_
