// Shared infrastructure for the per-figure benchmark harnesses.
//
// Every harness binary accepts the same core flags:
//   --scale    fraction of the paper's dataset sizes to generate (proxies)
//   --queries  number of random query nodes per data point
//   --ks       comma-separated k values
//   --seed     RNG seed (graphs and query sampling are deterministic)
//   --csv      emit CSV instead of aligned columns
//   --graph    optional path to a real SNAP edge list to use instead of the
//              generated proxy (Figures 7-10)
//
// Results are per-query averages in milliseconds, like the paper's plots.

#ifndef FLOS_BENCH_HARNESS_H_
#define FLOS_BENCH_HARNESS_H_

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/flags.h"
#include "util/status.h"

namespace flos {
namespace bench {

/// Flags shared by all figure harnesses.
struct CommonFlags {
  double scale = 0.05;
  int64_t queries = 5;
  int64_t seed = 42;
  bool csv = false;
  std::string graph_path;
  std::string ks = "1,10,20,40";

  /// Registers the shared flags on `parser`.
  void Register(FlagParser* parser);
};

/// Parses "1,10,20" into {1, 10, 20}. Invalid entries are fatal.
std::vector<int> ParseIntList(const std::string& csv);

/// Samples `count` distinct query nodes with degree >= 1.
std::vector<NodeId> SampleQueries(const Graph& graph, int count,
                                  uint64_t seed);

/// Timing summary over a set of queries.
struct Timing {
  double avg_ms = 0;
  double min_ms = 0;
  double max_ms = 0;
  double total_ms = 0;
  int runs = 0;
};

/// Runs `fn(query)` for each query and reports per-call wall time. `fn`
/// returns false to abort (error already reported by the caller).
Timing TimeQueries(const std::vector<NodeId>& queries,
                   const std::function<bool(NodeId)>& fn);

/// Fraction of `truth` found in `got`.
double Recall(const std::vector<NodeId>& got, const std::vector<NodeId>& truth);

/// Prints "name: |V|=... |E|=..." to stdout (the Table 4 / 6 / 7 header
/// line for whatever graph a harness uses).
void PrintGraphLine(const std::string& name, const Graph& graph);

/// One synthetic-graph configuration of Table 6 (or Table 7 on disk).
struct SynthSpec {
  std::string label;    ///< e.g. "RAND n=65536"
  uint64_t nodes = 0;
  uint64_t edges = 0;
  bool rmat = false;    ///< R-MAT vs Erdős–Rényi
};

/// The paper's varying-size series: |V| in base*{1,2,4,8} at fixed density.
std::vector<SynthSpec> SizeSweep(uint64_t base_nodes, double density,
                                 bool rmat);

/// The paper's varying-density series at fixed |V|
/// (densities 4.8, 9.5, 14.3, 19.1 by default).
std::vector<SynthSpec> DensitySweep(uint64_t nodes,
                                    const std::vector<double>& densities,
                                    bool rmat);

/// Generates the graph for `spec`.
Result<Graph> BuildSynth(const SynthSpec& spec, uint64_t seed);

/// Convenience: exits with a message if `status` is not OK.
void CheckOk(const Status& status);

template <typename T>
T CheckOk(Result<T> result) {
  CheckOk(result.status());
  return std::move(result).value();
}

}  // namespace bench
}  // namespace flos

#endif  // FLOS_BENCH_HARNESS_H_
