// Table 2: empirical check of the no-local-optimum property for each
// measure on a random graph — PHP/EI have no local maximum, DHT/THT no
// local minimum (within L hops), RWR does have local maxima.

#include <cstdio>

#include "bench/harness.h"
#include "graph/generators.h"
#include "measures/exact.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace flos {
namespace {

// Counts local optima (non-query nodes with no strictly closer neighbor).
// Nodes the query cannot reach are skipped: their proximity is uniformly 0
// (maximize) or saturated (minimize), and the no-local-optimum property —
// like Theorem 1 that consumes it — concerns the reachable part of the
// graph. `skip_above` prunes saturated scores for the minimize measures.
int CountLocalOptima(const Graph& g, const std::vector<double>& r, NodeId q,
                     Direction dir, double skip_above = 1e300) {
  int count = 0;
  for (NodeId i = 0; i < g.NumNodes(); ++i) {
    if (i == q || g.Degree(i) == 0) continue;
    if (dir == Direction::kMaximize && r[i] <= 0) continue;
    if (dir == Direction::kMinimize && r[i] >= skip_above) continue;
    bool has_closer = false;
    for (const NodeId j : g.NeighborIds(i)) {
      const double margin =
          dir == Direction::kMaximize ? r[j] - r[i] : r[i] - r[j];
      if (margin > 1e-11) {
        has_closer = true;
        break;
      }
    }
    count += !has_closer;
  }
  return count;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  bench::CommonFlags common;
  common.Register(&flags);
  if (const Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }

  GeneratorOptions go;
  go.num_nodes = 5000;
  go.num_edges = 20000;
  go.seed = common.seed;
  go.random_weights = true;
  const Graph g = bench::CheckOk(GenerateRmat(go));
  bench::PrintGraphLine("R-MAT test graph", g);
  const std::vector<NodeId> queries =
      bench::SampleQueries(g, static_cast<int>(common.queries), common.seed);

  std::printf("# Table 2: local optima found over %zu random queries "
              "(0 = property holds)\n", queries.size());
  TablePrinter table(common.csv);
  table.AddRow(
      {"measure", "property", "local_optima_found", "paper_says"});
  ExactSolveOptions tight;
  tight.tolerance = 1e-12;
  int php = 0;
  int ei = 0;
  int dht = 0;
  int tht = 0;
  int rwr = 0;
  const int length = 10;
  for (const NodeId q : queries) {
    php += CountLocalOptima(g, bench::CheckOk(ExactPhp(g, q, 0.5, tight)), q,
                            Direction::kMaximize);
    ei += CountLocalOptima(g, bench::CheckOk(ExactEi(g, q, 0.5, tight)), q,
                           Direction::kMaximize);
    dht += CountLocalOptima(g, bench::CheckOk(ExactDht(g, q, 0.5, tight)), q,
                            Direction::kMinimize,
                            /*skip_above=*/1.0 / 0.5 - 1e-9);
    tht += CountLocalOptima(g, bench::CheckOk(ExactTht(g, q, length)), q,
                            Direction::kMinimize,
                            /*skip_above=*/length - 1e-9);
    // RWR's local maxima are degree-driven (Theorem 6: RWR ~ w_i * PHP);
    // a small restart probability lets the degree factor dominate, which
    // is where the counterexamples of Lemma 8 live.
    rwr += CountLocalOptima(g, bench::CheckOk(ExactRwr(g, q, 0.1, tight)), q,
                            Direction::kMaximize);
  }
  table.AddRow({"PHP", "no local maximum", std::to_string(php),
                "no local maximum"});
  table.AddRow({"EI", "no local maximum", std::to_string(ei),
                "no local maximum"});
  table.AddRow({"DHT", "no local minimum", std::to_string(dht),
                "no local minimum"});
  table.AddRow({"THT", "no local minimum (within L hops)",
                std::to_string(tht), "no local minimum (within L)"});
  table.AddRow({"RWR", "has local maxima", std::to_string(rwr),
                "local maximum"});
  table.Print();
  return 0;
}

}  // namespace
}  // namespace flos

int main(int argc, char** argv) { return flos::Main(argc, argv); }
