// Figure 12: RWR methods on in-memory synthetic graphs, k = 20: the same
// four series as Figure 11 with FLoS_RWR, GI_RWR, Castanet, and LS_RWR.
//
// Expected shape (paper): GI_RWR and Castanet grow with |V| (Castanet
// cutting ~70-90% off GI); FLoS_RWR and LS_RWR stay flat in |V|; all grow
// with density.

#include <cstdio>
#include <string>

#include "baselines/castanet.h"
#include "baselines/gi.h"
#include "baselines/ls_push.h"
#include "bench/harness.h"
#include "core/flos.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace flos {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  bench::CommonFlags common;
  common.ks = "20";
  common.queries = 3;
  common.Register(&flags);
  double c = 0.5;
  int64_t base_nodes = 16384;
  flags.AddDouble("c", &c, "RWR restart probability");
  flags.AddInt("base-nodes", &base_nodes,
               "smallest size of the varying-size series (paper: 2^20)");
  if (const Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  const int k = bench::ParseIntList(common.ks)[0];

  std::printf("# Figure 12: RWR methods on synthetic graphs (k=%d, avg "
              "ms/query over %lld queries)\n",
              k, static_cast<long long>(common.queries));
  TablePrinter table(common.csv);
  table.AddRow({"series", "graph", "method", "avg_ms"});

  std::vector<std::pair<std::string, std::vector<bench::SynthSpec>>> series;
  series.emplace_back(
      "size-RAND", bench::SizeSweep(static_cast<uint64_t>(base_nodes), 9.5,
                                    /*rmat=*/false));
  series.emplace_back(
      "size-RMAT", bench::SizeSweep(static_cast<uint64_t>(base_nodes), 9.5,
                                    /*rmat=*/true));
  const std::vector<double> densities = {4.8, 9.5, 14.3, 19.1};
  series.emplace_back("density-RAND",
                      bench::DensitySweep(static_cast<uint64_t>(base_nodes),
                                          densities, /*rmat=*/false));
  series.emplace_back("density-RMAT",
                      bench::DensitySweep(static_cast<uint64_t>(base_nodes),
                                          densities, /*rmat=*/true));

  for (const auto& [series_name, specs] : series) {
    for (const bench::SynthSpec& spec : specs) {
      const Graph g = bench::CheckOk(bench::BuildSynth(spec, common.seed));
      bench::PrintGraphLine(spec.label, g);
      const std::vector<NodeId> queries = bench::SampleQueries(
          g, static_cast<int>(common.queries), common.seed + 1);
      {
        FlosOptions options;
        options.measure = Measure::kRwr;
        options.c = c;
        const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
          bench::CheckOk(FlosTopK(g, q, k, options).status());
          return true;
        });
        table.AddRow({series_name, spec.label, "FLoS_RWR",
                      TablePrinter::FormatDouble(t.avg_ms)});
      }
      {
        GiOptions options;
        options.measure = Measure::kRwr;
        options.params.c = c;
        const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
          bench::CheckOk(GiTopK(g, q, k, options).status());
          return true;
        });
        table.AddRow({series_name, spec.label, "GI_RWR",
                      TablePrinter::FormatDouble(t.avg_ms)});
      }
      {
        CastanetOptions options;
        options.c = c;
        const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
          bench::CheckOk(CastanetTopK(g, q, k, options).status());
          return true;
        });
        table.AddRow({series_name, spec.label, "Castanet",
                      TablePrinter::FormatDouble(t.avg_ms)});
      }
      {
        LsPushOptions ls_options;
        const LsPushIndex index =
            bench::CheckOk(LsPushIndex::Build(&g, ls_options));
        MeasureParams params;
        params.c = c;
        const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
          bench::CheckOk(index.Query(q, k, Measure::kRwr, params).status());
          return true;
        });
        table.AddRow({series_name, spec.label, "LS_RWR",
                      TablePrinter::FormatDouble(t.avg_ms)});
      }
    }
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace flos

int main(int argc, char** argv) { return flos::Main(argc, argv); }
