// Figure 13 (+ Table 7 header): FLoS_PHP and FLoS_RWR on disk-resident
// R-MAT graphs, k = 20, under a bounded block-cache budget (the paper's
// stand-in: Neo4j with 2 GB of memory). Reports per-query time, visited
// ratio, and actual disk traffic.
//
// Expected shape (paper): running time stays roughly flat as the on-disk
// graph grows, and the visited fraction shrinks.

#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "core/flos.h"
#include "storage/disk_builder.h"
#include "storage/disk_graph.h"
#include "util/flags.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace flos {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  bench::CommonFlags common;
  common.ks = "20";
  common.queries = 3;
  common.Register(&flags);
  double c = 0.5;
  int64_t base_nodes = 32768;
  int64_t cache_kb = 4096;
  std::string dir = "/tmp";
  flags.AddDouble("c", &c, "decay / restart parameter");
  flags.AddInt("base-nodes", &base_nodes,
               "smallest on-disk graph size (paper: 16*2^20)");
  flags.AddInt("cache-kb", &cache_kb, "adjacency block cache budget (KiB)");
  flags.AddString("dir", &dir, "directory for the generated graph files");
  if (const Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  const int k = bench::ParseIntList(common.ks)[0];

  std::printf("# Figure 13 / Table 7: FLoS on disk-resident R-MAT graphs "
              "(k=%d, cache=%lld KiB, %lld queries)\n",
              k, static_cast<long long>(cache_kb),
              static_cast<long long>(common.queries));
  TablePrinter table(common.csv);
  table.AddRow({"graph", "measure", "avg_ms", "visited_ratio", "disk_MB_read",
                "cache_hit_rate", "file_MB"});

  // Table 7 uses sizes 16,32,48,64 x 2^20 with density 20; we keep the
  // 1:2:3:4 progression at a laptop-scale base.
  for (const uint64_t mult : {1, 2, 3, 4}) {
    bench::SynthSpec spec;
    spec.nodes = static_cast<uint64_t>(base_nodes) * mult;
    spec.edges = spec.nodes * 10;  // density 20, as in Table 7
    spec.rmat = true;
    spec.label = "disk-RMAT n=" + std::to_string(spec.nodes);
    const Graph g = bench::CheckOk(bench::BuildSynth(spec, common.seed));
    bench::PrintGraphLine(spec.label, g);
    const std::string path = dir + "/flos_bench_" +
                             std::to_string(spec.nodes) + ".flosgrf";
    bench::CheckOk(WriteDiskGraph(g, path));
    const std::vector<NodeId> queries = bench::SampleQueries(
        g, static_cast<int>(common.queries), common.seed + 1);
    const double file_mb =
        (64.0 + static_cast<double>(spec.nodes + 1) * 8.0 +
         static_cast<double>(spec.nodes) * 12.0 +
         static_cast<double>(g.NumDirectedEdges()) * 12.0) /
        (1024 * 1024);

    for (const Measure m : {Measure::kPhp, Measure::kRwr}) {
      DiskGraphOptions disk_options;
      disk_options.cache_bytes = static_cast<uint64_t>(cache_kb) * 1024;
      auto disk = bench::CheckOk(DiskGraph::Open(path, disk_options));
      FlosOptions options;
      options.measure = m;
      options.c = c;
      uint64_t visited = 0;
      const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
        const auto r = FlosTopK(disk.get(), q, k, options);
        bench::CheckOk(r.status());
        visited += r.value().stats.visited_nodes;
        return true;
      });
      const AccessStats& st = disk->stats();
      const double hit_rate =
          st.cache_hits + st.cache_misses == 0
              ? 0
              : static_cast<double>(st.cache_hits) /
                    static_cast<double>(st.cache_hits + st.cache_misses);
      table.AddRow(
          {spec.label, m == Measure::kPhp ? "FLoS_PHP" : "FLoS_RWR",
           TablePrinter::FormatDouble(t.avg_ms),
           TablePrinter::FormatDouble(
               static_cast<double>(visited) /
                   (static_cast<double>(queries.size()) *
                    static_cast<double>(spec.nodes)),
               3),
           TablePrinter::FormatDouble(
               static_cast<double>(st.bytes_read) / (1024.0 * 1024.0), 4),
           TablePrinter::FormatDouble(hit_rate, 3),
           TablePrinter::FormatDouble(file_mb, 4)});
    }
    std::remove(path.c_str());
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace flos

int main(int argc, char** argv) { return flos::Main(argc, argv); }
