// Figure 7 (+ Table 4 header): running time of PHP methods vs. k on the
// four "real" graphs (SNAP proxies unless --graph points at a real edge
// list): FLoS_PHP, GI_PHP, DNE (approximate, fixed budget), NN_EI (exact
// push), LS_EI (approximate, clustered).
//
// Expected shape (paper): FLoS_PHP and the local methods sit orders of
// magnitude below GI_PHP; FLoS_PHP beats NN_EI (tighter bounds); DNE and
// LS_EI are flat in k but approximate.

#include <cstdio>
#include <string>

#include "baselines/dne.h"
#include "baselines/gi.h"
#include "baselines/ls_push.h"
#include "baselines/nn_ei.h"
#include "bench/harness.h"
#include "core/flos.h"
#include "core/flos_engine.h"
#include "graph/accessor.h"
#include "graph/edge_list_io.h"
#include "graph/presets.h"
#include "measures/exact.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace flos {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  bench::CommonFlags common;
  common.Register(&flags);
  double c = 0.5;
  std::string graphs = "az,dp,yt,lj";
  flags.AddDouble("c", &c, "PHP decay factor");
  flags.AddString("graphs", &graphs, "comma-separated preset names");
  if (const Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  const std::vector<int> ks = bench::ParseIntList(common.ks);

  std::printf("# Figure 7: PHP methods on real-graph proxies (avg ms/query, "
              "%lld queries, c=%.2f, scale=%.3f)\n",
              static_cast<long long>(common.queries), c, common.scale);
  TablePrinter table(common.csv);
  table.AddRow({"graph", "k", "method", "avg_ms", "visited", "recall"});

  std::vector<std::string> names;
  {
    size_t pos = 0;
    while (pos < graphs.size()) {
      const size_t comma = graphs.find(',', pos);
      names.push_back(graphs.substr(pos, comma - pos));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  for (const std::string& name : names) {
    Graph g;
    if (!common.graph_path.empty()) {
      g = bench::CheckOk(ReadEdgeList(common.graph_path));
    } else {
      const GraphPreset preset = bench::CheckOk(FindPreset(name));
      g = bench::CheckOk(BuildPresetGraph(preset, common.scale, common.seed));
    }
    bench::PrintGraphLine(name, g);
    const std::vector<NodeId> queries = bench::SampleQueries(
        g, static_cast<int>(common.queries), common.seed + 1);

    // LS_EI preprocessing (clustering) happens once per graph.
    LsPushOptions ls_options;
    const LsPushIndex ls_index =
        bench::CheckOk(LsPushIndex::Build(&g, ls_options));

    // FLoS queries share one engine so per-query cost reflects the steady
    // state: epoch-versioned workspaces and the local-CSR arena are reused
    // instead of reallocated (the serving pattern, not the cold path).
    InMemoryAccessor flos_accessor(&g);
    FlosEngine flos_engine(&flos_accessor);

    for (const int k : ks) {
      // Ground truth for recall of the approximate methods: FLoS is exact,
      // so use its answers (much cheaper than GI at scale).
      std::vector<std::vector<NodeId>> truths;
      uint64_t flos_visited = 0;
      {
        FlosOptions options;
        options.measure = Measure::kPhp;
        options.c = c;
        const bench::Timing t =
            bench::TimeQueries(queries, [&](NodeId q) {
              const auto r = flos_engine.TopK(q, k, options);
              bench::CheckOk(r.status());
              flos_visited += r.value().stats.visited_nodes;
              std::vector<NodeId> ids;
              for (const auto& s : r.value().topk) ids.push_back(s.node);
              truths.push_back(std::move(ids));
              return true;
            });
        table.AddRow({name, std::to_string(k), "FLoS_PHP",
                      TablePrinter::FormatDouble(t.avg_ms),
                      std::to_string(flos_visited / queries.size()), "1.00"});
      }
      {
        GiOptions options;
        options.measure = Measure::kPhp;
        options.params.c = c;
        const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
          bench::CheckOk(GiTopK(g, q, k, options).status());
          return true;
        });
        table.AddRow({name, std::to_string(k), "GI_PHP",
                      TablePrinter::FormatDouble(t.avg_ms),
                      std::to_string(g.NumNodes()), "1.00"});
      }
      {
        DneOptions options;
        options.c = c;
        InMemoryAccessor accessor(&g);
        double recall = 0;
        size_t qi = 0;
        const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
          const auto r = DneTopK(&accessor, q, k, options);
          bench::CheckOk(r.status());
          recall += bench::Recall(r.value().nodes, truths[qi++]);
          return true;
        });
        table.AddRow({name, std::to_string(k), "DNE",
                      TablePrinter::FormatDouble(t.avg_ms),
                      std::to_string(options.node_budget),
                      TablePrinter::FormatDouble(recall / static_cast<double>(queries.size()), 3)});
      }
      {
        NnEiOptions options;
        options.c = 1.0 - c;  // EI restart matching PHP decay c
        InMemoryAccessor accessor(&g);
        uint64_t touched = 0;
        const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
          const auto r = NnEiTopK(&accessor, q, k, options);
          bench::CheckOk(r.status());
          touched += r.value().touched_nodes;
          return true;
        });
        table.AddRow({name, std::to_string(k), "NN_EI",
                      TablePrinter::FormatDouble(t.avg_ms),
                      std::to_string(touched / queries.size()), "1.00"});
      }
      {
        MeasureParams params;
        params.c = 1.0 - c;  // EI restart matching PHP decay c
        double recall = 0;
        size_t qi = 0;
        const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
          const auto r = ls_index.Query(q, k, Measure::kEi, params);
          bench::CheckOk(r.status());
          recall += bench::Recall(r.value().nodes, truths[qi++]);
          return true;
        });
        table.AddRow({name, std::to_string(k), "LS_EI",
                      TablePrinter::FormatDouble(t.avg_ms),
                      std::to_string(ls_options.cluster_size),
                      TablePrinter::FormatDouble(recall / static_cast<double>(queries.size()), 3)});
      }
    }
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace flos

int main(int argc, char** argv) { return flos::Main(argc, argv); }
