// Ablation study of FLoS design choices called out in DESIGN.md:
//   (a) self-loop tightening (Section 5.3) on vs off — visited nodes and
//       time;
//   (b) inner-solve tolerance tau — time vs the number of expansions;
//   (c) measure unification — PHP vs DHT vs EI run through the same
//       engine should visit identical node counts (Theorem 2 in action).

#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "core/flos.h"
#include "graph/presets.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace flos {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  bench::CommonFlags common;
  common.queries = 10;
  common.Register(&flags);
  double c = 0.5;
  int64_t k = 20;
  flags.AddDouble("c", &c, "decay / restart parameter");
  flags.AddInt("k", &k, "top-k");
  if (const Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }

  const GraphPreset preset = bench::CheckOk(FindPreset("dp"));
  const Graph g =
      bench::CheckOk(BuildPresetGraph(preset, common.scale, common.seed));
  bench::PrintGraphLine("dp-proxy", g);
  const std::vector<NodeId> queries = bench::SampleQueries(
      g, static_cast<int>(common.queries), common.seed + 1);

  std::printf("# Ablation (a): self-loop tightening, k=%lld\n",
              static_cast<long long>(k));
  {
    TablePrinter table(common.csv);
    table.AddRow({"self_loop", "avg_ms", "avg_visited", "avg_expansions"});
    for (const bool self_loop : {true, false}) {
      FlosOptions options;
      options.measure = Measure::kPhp;
      options.c = c;
      options.self_loop_tightening = self_loop;
      uint64_t visited = 0;
      uint64_t expansions = 0;
      const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
        const auto r = FlosTopK(g, q, static_cast<int>(k), options);
        bench::CheckOk(r.status());
        visited += r.value().stats.visited_nodes;
        expansions += r.value().stats.expansions;
        return true;
      });
      table.AddRow({self_loop ? "on" : "off",
                    TablePrinter::FormatDouble(t.avg_ms),
                    std::to_string(visited / queries.size()),
                    std::to_string(expansions / queries.size())});
    }
    table.Print();
  }

  std::printf("\n# Ablation (b): inner tolerance tau\n");
  {
    TablePrinter table(common.csv);
    table.AddRow({"tau", "avg_ms", "avg_visited", "avg_inner_iterations"});
    for (const double tau : {1e-3, 1e-5, 1e-7, 1e-9}) {
      FlosOptions options;
      options.measure = Measure::kPhp;
      options.c = c;
      options.tolerance = tau;
      uint64_t visited = 0;
      uint64_t inner = 0;
      const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
        const auto r = FlosTopK(g, q, static_cast<int>(k), options);
        bench::CheckOk(r.status());
        visited += r.value().stats.visited_nodes;
        inner += r.value().stats.inner_iterations;
        return true;
      });
      table.AddRow({TablePrinter::FormatDouble(tau, 1),
                    TablePrinter::FormatDouble(t.avg_ms),
                    std::to_string(visited / queries.size()),
                    std::to_string(inner / queries.size())});
    }
    table.Print();
  }

  std::printf("\n# Ablation (c): one engine, three measures (Theorem 2) — "
              "identical search behaviour expected\n");
  {
    TablePrinter table(common.csv);
    table.AddRow({"measure", "avg_ms", "avg_visited"});
    for (const Measure m : {Measure::kPhp, Measure::kEi, Measure::kDht}) {
      FlosOptions options;
      options.measure = m;
      // Matching parameters: PHP decay 1-c <=> EI/DHT parameter c.
      options.c = m == Measure::kPhp ? 1.0 - c : c;
      uint64_t visited = 0;
      const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
        const auto r = FlosTopK(g, q, static_cast<int>(k), options);
        bench::CheckOk(r.status());
        visited += r.value().stats.visited_nodes;
        return true;
      });
      table.AddRow({MeasureName(m), TablePrinter::FormatDouble(t.avg_ms),
                    std::to_string(visited / queries.size())});
    }
    table.Print();
  }
  return 0;
}

}  // namespace
}  // namespace flos

int main(int argc, char** argv) { return flos::Main(argc, argv); }
