// Figure 4 / Table 3: lower and upper bound trajectories of FLoS_PHP on
// the paper's 8-node example graph (q = 1, c = 0.8), plus the newly
// visited nodes per iteration and the certification point for the top-2.

#include <cstdio>

#include "bench/harness.h"
#include "core/flos.h"
#include "graph/graph.h"
#include "measures/exact.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace flos {
namespace {

Graph ExampleGraph() {
  GraphBuilder builder;
  const std::pair<int, int> edges[] = {{1, 2}, {1, 3}, {2, 4}, {3, 4},
                                       {3, 5}, {4, 6}, {4, 7}, {5, 8},
                                       {6, 8}, {7, 8}};
  for (const auto& [u, v] : edges) {
    bench::CheckOk(builder.AddEdge(u - 1, v - 1, 1.0));
  }
  return bench::CheckOk(std::move(builder).Build());
}

int Main(int argc, char** argv) {
  FlagParser flags;
  double c = 0.8;
  bool csv = false;
  bool self_loop = true;
  flags.AddDouble("c", &c, "PHP decay factor");
  flags.AddBool("csv", &csv, "emit CSV rows");
  flags.AddBool("self-loop", &self_loop, "use self-loop tightening");
  if (const Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }

  const Graph g = ExampleGraph();
  std::printf(
      "# Figure 4 / Table 3: FLoS_PHP bounds on the example graph "
      "(q=1, c=%.2f)\n",
      c);
  const std::vector<double> exact = bench::CheckOk(ExactPhp(g, 0, c));
  const BoundTrace trace =
      bench::CheckOk(TraceFlosBounds(g, 0, c, self_loop, 100));

  // Table 3: newly visited nodes per iteration.
  {
    TablePrinter t(csv);
    t.AddRow({"iteration", "newly_visited_nodes(1-based)"});
    size_t prev = 1;  // the query
    for (size_t it = 0; it < trace.iterations.size(); ++it) {
      std::string added;
      for (size_t i = prev; i < trace.iterations[it].nodes.size(); ++i) {
        if (!added.empty()) added += " ";
        added += std::to_string(trace.iterations[it].nodes[i] + 1);
      }
      prev = trace.iterations[it].nodes.size();
      t.AddRow({std::to_string(it + 1), added});
    }
    t.Print();
  }

  // Figure 4: bounds per node per iteration (1-based paper node ids).
  std::printf("\n");
  TablePrinter t(csv);
  t.AddRow({"iteration", "node", "lower", "upper", "exact", "dummy"});
  for (size_t it = 0; it < trace.iterations.size(); ++it) {
    const auto& snap = trace.iterations[it];
    for (size_t i = 0; i < snap.nodes.size(); ++i) {
      if (snap.nodes[i] == 0) continue;  // query: constant 1
      t.AddRow({std::to_string(it + 1), std::to_string(snap.nodes[i] + 1),
                TablePrinter::FormatDouble(snap.lower[i], 6),
                TablePrinter::FormatDouble(snap.upper[i], 6),
                TablePrinter::FormatDouble(exact[snap.nodes[i]], 6),
                TablePrinter::FormatDouble(snap.dummy_value, 6)});
    }
  }
  t.Print();

  // Certification point for the top-2 (paper: iteration 4, node 8 unseen).
  // Algorithm 6: the selected nodes must be interior (all neighbors
  // visited), and their minimum lower bound must clear the maximum upper
  // bound of every other visited node — boundary nodes' uppers dominate
  // all unvisited proximities (Theorem 1).
  for (size_t it = 0; it < trace.iterations.size(); ++it) {
    const auto& snap = trace.iterations[it];
    const auto visited = [&](NodeId v) {
      for (const NodeId n : snap.nodes) {
        if (n == v) return true;
      }
      return false;
    };
    double min_top = 1e300;
    double max_rest = 0;
    bool top_interior = true;
    for (size_t i = 0; i < snap.nodes.size(); ++i) {
      if (snap.nodes[i] == 0) continue;
      if (snap.nodes[i] == 1 || snap.nodes[i] == 2) {
        min_top = std::min(min_top, snap.lower[i]);
        for (const NodeId nb : g.NeighborIds(snap.nodes[i])) {
          top_interior &= visited(nb);
        }
      } else {
        max_rest = std::max(max_rest, snap.upper[i]);
      }
    }
    if (snap.nodes.size() > 2 && top_interior && min_top >= max_rest) {
      std::printf(
          "\n# top-2 {2,3} certified at iteration %zu with %zu of %llu nodes "
          "visited\n",
          it + 1, snap.nodes.size(),
          static_cast<unsigned long long>(g.NumNodes()));
      break;
    }
  }
  return 0;
}

}  // namespace
}  // namespace flos

int main(int argc, char** argv) { return flos::Main(argc, argv); }
