// Batch-serving throughput bench: quantifies the two architecture wins of
// the query-engine refactor.
//
//   1. Workspace reuse: single-thread QPS of a reused FlosEngine vs the
//      one-shot FlosTopK wrapper (fresh workspace per query).
//   2. Thread scaling: BatchTopK aggregate QPS over a list of worker
//      counts (one engine per worker over the shared graph).
//
//   ./bench/bench_batch_throughput --nodes=65536 --queries=2000
//       --threads=1,2,4,8 --k=10 [--csv]

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/batch_topk.h"
#include "core/flos.h"
#include "core/flos_engine.h"
#include "graph/accessor.h"
#include "graph/generators.h"
#include "util/flags.h"
#include "util/timer.h"

namespace flos {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  int64_t nodes = 65536;
  double density = 8.0;
  int64_t num_queries = 2000;
  int64_t k = 10;
  double c = 0.5;
  int64_t seed = 42;
  std::string threads_csv = "1,2,4,8";
  bool csv = false;
  flags.AddInt("nodes", &nodes, "graph size (Erdős–Rényi)");
  flags.AddDouble("density", &density, "average degree");
  flags.AddInt("queries", &num_queries, "queries per measurement");
  flags.AddInt("k", &k, "neighbors per query");
  flags.AddDouble("c", &c, "decay factor");
  flags.AddInt("seed", &seed, "graph + query sampling seed");
  flags.AddString("threads", &threads_csv, "worker counts for BatchTopK");
  flags.AddBool("csv", &csv, "emit CSV rows");
  if (const Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }

  bench::SynthSpec spec;
  spec.label = "RAND";
  spec.nodes = static_cast<uint64_t>(nodes);
  spec.edges = static_cast<uint64_t>(static_cast<double>(nodes) * density);
  spec.rmat = false;
  const Graph graph =
      bench::CheckOk(bench::BuildSynth(spec, static_cast<uint64_t>(seed)));
  bench::PrintGraphLine(spec.label, graph);

  const std::vector<NodeId> queries = bench::SampleQueries(
      graph, static_cast<int>(num_queries), static_cast<uint64_t>(seed) + 7);
  FlosOptions options;
  options.measure = Measure::kPhp;
  options.c = c;
  const int kk = static_cast<int>(k);

  // --- 1. Fresh workspace per query (the pre-refactor architecture). ---
  double fresh_qps = 0;
  {
    WallTimer timer;
    for (const NodeId q : queries) {
      bench::CheckOk(FlosTopK(graph, q, kk, options).status());
    }
    fresh_qps = 1000.0 * static_cast<double>(queries.size()) / timer.ElapsedMillis();
  }

  // --- 2. One reused engine (steady-state allocations: none). ---
  double reused_qps = 0;
  {
    InMemoryAccessor accessor(&graph);
    FlosEngine engine(&accessor);
    // Warm-up pass so the workspace reaches its high-water capacity.
    for (const NodeId q : queries) {
      bench::CheckOk(engine.TopK(q, kk, options).status());
    }
    WallTimer timer;
    for (const NodeId q : queries) {
      bench::CheckOk(engine.TopK(q, kk, options).status());
    }
    reused_qps = 1000.0 * static_cast<double>(queries.size()) / timer.ElapsedMillis();
  }

  if (csv) {
    std::printf("mode,threads,qps,speedup\n");
    std::printf("fresh,1,%.1f,1.00\n", fresh_qps);
    std::printf("reused,1,%.1f,%.2f\n", reused_qps, reused_qps / fresh_qps);
  } else {
    std::printf("single-thread  fresh-per-query %10.1f qps\n", fresh_qps);
    std::printf("single-thread  reused engine   %10.1f qps   (%.2fx)\n",
                reused_qps, reused_qps / fresh_qps);
  }

  // --- 3. BatchTopK thread scaling. ---
  double base_qps = 0;
  for (const int threads : bench::ParseIntList(threads_csv)) {
    WallTimer timer;
    bench::CheckOk(BatchTopK(graph, queries, kk, options, threads).status());
    const double qps = 1000.0 * static_cast<double>(queries.size()) / timer.ElapsedMillis();
    if (base_qps == 0) base_qps = qps;
    if (csv) {
      std::printf("batch,%d,%.1f,%.2f\n", threads, qps, qps / base_qps);
    } else {
      std::printf("batch          %2d thread(s)    %10.1f qps   (%.2fx)\n",
                  threads, qps, qps / base_qps);
    }
  }
  return 0;
}

}  // namespace
}  // namespace flos

int main(int argc, char** argv) { return flos::Run(argc, argv); }
