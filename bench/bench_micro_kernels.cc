// Google-benchmark microbenchmarks for the kernels the figure-level
// results are built from: CSR neighbor scans, one global-iteration sweep,
// the bound-sweep kernel in both layouts (legacy AoS rows with separate
// Jacobi lower/upper passes vs. the flat SoA local CSR with one fused
// Gauss–Seidel pass), a FLoS expansion + bound update step, full queries,
// and disk reads.
//
// After the google-benchmark run, the binary self-times the bound-sweep
// comparison and full-query throughput at k=20 on the RAND and R-MAT
// presets and writes `BENCH_kernels.json` (ns/row-sweep,
// iterations-to-converge, QPS) so future PRs have a perf trajectory to
// compare against. Pass --no-kernel-json to skip the JSON pass.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/flos.h"
#include "core/flos_engine.h"
#include "core/local_graph.h"
#include "core/sweep_kernel.h"
#include "core/unified_bound_engine.h"
#include "graph/accessor.h"
#include "graph/generators.h"
#include "measures/exact.h"
#include "storage/disk_builder.h"
#include "storage/disk_graph.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace flos {
namespace {

const Graph& TestGraph() {
  static const Graph* const kGraph = [] {
    GeneratorOptions options;
    options.num_nodes = 1 << 16;
    options.num_edges = 10 * (1 << 16);
    options.seed = 7;
    auto result = GenerateRmat(options);
    if (!result.ok()) {
      std::fprintf(stderr, "graph generation failed\n");
      std::abort();
    }
    return new Graph(std::move(result).value());
  }();
  return *kGraph;
}

const Graph& RandGraph() {
  static const Graph* const kGraph = [] {
    GeneratorOptions options;
    options.num_nodes = 1 << 16;
    options.num_edges = 10 * (1 << 16);
    options.seed = 11;
    auto result = GenerateErdosRenyi(options);
    if (!result.ok()) {
      std::fprintf(stderr, "graph generation failed\n");
      std::abort();
    }
    return new Graph(std::move(result).value());
  }();
  return *kGraph;
}

// The parallel-sweep acceptance target: a visited set big enough that
// block-parallel sweeps pay (>= 10k rows) carved out of a 1M-node graph,
// matching the service bench's RAND preset.
const Graph& BigGraph() {
  static const Graph* const kGraph = [] {
    GeneratorOptions options;
    options.num_nodes = 1 << 20;
    options.num_edges = 5 * (1 << 20);
    options.seed = 13;
    auto result = GenerateErdosRenyi(options);
    if (!result.ok()) {
      std::fprintf(stderr, "graph generation failed\n");
      std::abort();
    }
    return new Graph(std::move(result).value());
  }();
  return *kGraph;
}

// ---------------------------------------------------------------------------
// Bound-sweep kernel fixture: a frozen visited subgraph S with the PHP-form
// boundary coefficients, materialized BOTH ways — the flat SoA local CSR
// (live in the LocalGraph) and a copy in the pre-refactor layout (one
// heap-allocated AoS pair-vector per row) — so the two sweep kernels run
// over identical data.
struct SweepFixture {
  SweepFixture(const Graph& g, uint32_t target_nodes, uint64_t seed) {
    accessor = std::make_unique<InMemoryAccessor>(&g);
    local = std::make_unique<LocalGraph>(accessor.get());
    Rng rng(seed);
    NodeId q;
    do {
      q = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    } while (g.Degree(q) == 0);
    if (!local->Init(q).ok()) std::abort();
    while (local->Size() < target_nodes && !local->Exhausted()) {
      for (LocalId i = 0; i < local->Size(); ++i) {
        if (local->IsBoundary(i)) {
          if (!local->Expand(i).ok()) std::abort();
          break;
        }
      }
    }
    const uint32_t n = local->Size();
    lower.assign(n, 0.0);
    upper.assign(n, 1.0);
    lower[0] = 1.0;
    self_coeff.assign(n, 0.0);
    mesh_dummy_coeff.assign(n, 0.0);
    plain_dummy_coeff.assign(n, 0.0);
    hidden_coeff.assign(n, 0.0);
    legacy_rows.resize(n);
    row_entries = 0;
    for (LocalId i = 0; i < n; ++i) {
      const LocalRow row = local->Row(i);
      row_entries += row.len;
      legacy_rows[i].clear();
      for (uint32_t e = 0; e < row.len; ++e) {
        legacy_rows[i].emplace_back(row.idx[e], row.weight[e]);
      }
      if (local->IsQueryLocal(i) || !local->IsBoundary(i)) continue;
      const double wi = local->WeightedDegree(i);
      if (wi <= 0) continue;
      double out_mass = 0;
      double loop_mass = 0;
      for (const Neighbor& nb : local->Neighbors(i)) {
        if (local->Contains(nb.id)) continue;
        const double p_iv = nb.weight / wi;
        out_mass += p_iv;
        const double wv = local->ProbeDegree(nb.id);
        if (wv > 0) loop_mass += p_iv * (nb.weight / wv);
      }
      plain_dummy_coeff[i] = kAlpha * out_mass;
      self_coeff[i] = kAlpha * kAlpha * loop_mass;
      mesh_dummy_coeff[i] = kAlpha * kAlpha * (out_mass - loop_mass);
    }
    scratch.resize(n);
  }

  void ResetBounds() {
    std::fill(lower.begin(), lower.end(), 0.0);
    std::fill(upper.begin(), upper.end(), 1.0);
    lower[0] = 1.0;
  }

  // One legacy bound update: separate lower and upper Jacobi passes over
  // the AoS rows, each through a double buffer (the pre-refactor kernel).
  double LegacyJacobiSweep() {
    const uint32_t n = static_cast<uint32_t>(lower.size());
    double delta = 0;
    for (LocalId i = 0; i < n; ++i) {
      if (i == 0) {
        scratch[i] = 1.0;
        continue;
      }
      double sum = 0;
      for (const auto& [j, p] : legacy_rows[i]) sum += p * lower[j];
      const double v = std::max(kAlpha * sum + self_coeff[i] * lower[i],
                                lower[i]);
      delta = std::max(delta, v - lower[i]);
      scratch[i] = v;
    }
    lower.swap(scratch);
    for (LocalId i = 0; i < n; ++i) {
      if (i == 0) {
        scratch[i] = 1.0;
        continue;
      }
      double sum = 0;
      for (const auto& [j, p] : legacy_rows[i]) sum += p * upper[j];
      double v = kAlpha * sum + plain_dummy_coeff[i] * 1.0;
      v = std::min(v, kAlpha * sum + self_coeff[i] * upper[i] +
                          mesh_dummy_coeff[i] * 1.0);
      v = std::min(v, upper[i]);
      delta = std::max(delta, upper[i] - v);
      scratch[i] = v;
    }
    upper.swap(scratch);
    return delta;
  }

  // One fused bound update: a single scan of the flat SoA CSR computes
  // both dot products and updates both bounds in place (Gauss–Seidel).
  double FusedGsSweep() {
    double delta = 0;
    double* const lo = lower.data();
    double* const hi = upper.data();
    FusedRowSweep(*local, lo, hi, [&](LocalId i, double s_lo, double s_hi) {
      if (i == 0) return;
      const double vl = std::max(kAlpha * s_lo + self_coeff[i] * lo[i], lo[i]);
      double vu = kAlpha * s_hi + plain_dummy_coeff[i] * 1.0;
      vu = std::min(vu, kAlpha * s_hi + self_coeff[i] * hi[i] +
                            mesh_dummy_coeff[i] * 1.0);
      vu = std::min(vu, hi[i]);
      delta = std::max(delta, std::max(vl - lo[i], hi[i] - vu));
      lo[i] = vl;
      hi[i] = vu;
    });
    return delta;
  }

  // The fused kernel with the audit-tier checks forced on (plain
  // FLOS_CHECK where the production code has compiled-out FLOS_AUDIT):
  // the entry/exit sandwich scans, cross-sweep monotonicity against a
  // snapshot, and the per-entry CSR validity checks, mirroring what
  // bound_engine.cc + sweep_kernel.h run under -DFLOS_ENABLE_AUDIT=ON.
  // Prices the audit tier on this kernel; the plain Release kernel above
  // must not regress, since there the same sites compile to nothing.
  double AuditedFusedGsSweep() {
    const uint32_t n = static_cast<uint32_t>(lower.size());
    double* const lo = lower.data();
    double* const hi = upper.data();
    for (LocalId i = 0; i < n; ++i) {
      FLOS_CHECK_LE(lo[i], hi[i] + 1e-12, "sandwich violated on entry");
    }
    audit_prev_lo = lower;
    audit_prev_hi = upper;
    double delta = 0;
    for (LocalId i = 0; i < n; ++i) {
      if (i + 1 < n) local->PrefetchRow(i + 1);
      const LocalRow row = local->Row(i);
      double s_lo = 0;
      double s_hi = 0;
      for (uint32_t e = 0; e < row.len; ++e) {
        const double p = row.weight[e];
        const LocalId j = row.idx[e];
        FLOS_CHECK(j < n, "local CSR column index out of range");
        FLOS_CHECK(p >= 0.0, "negative transition probability in local CSR");
        s_lo += p * lo[j];
        s_hi += p * hi[j];
      }
      if (i == 0) continue;
      const double vl = std::max(kAlpha * s_lo + self_coeff[i] * lo[i], lo[i]);
      double vu = kAlpha * s_hi + plain_dummy_coeff[i] * 1.0;
      vu = std::min(vu, kAlpha * s_hi + self_coeff[i] * hi[i] +
                            mesh_dummy_coeff[i] * 1.0);
      vu = std::min(vu, hi[i]);
      delta = std::max(delta, std::max(vl - lo[i], hi[i] - vu));
      lo[i] = vl;
      hi[i] = vu;
    }
    for (LocalId i = 0; i < n; ++i) {
      FLOS_CHECK_GE(lo[i], audit_prev_lo[i], "lower bound loosened");
      FLOS_CHECK_LE(hi[i], audit_prev_hi[i], "upper bound loosened");
      FLOS_CHECK_LE(lo[i], hi[i] + 1e-12, "sandwich violated after sweep");
    }
    return delta;
  }

  // One sweep through a SweepBackend (core/sweep_kernel.h) over the
  // pair-interleaved bound layout the unified engine uses —
  // bounds[2i] = lower_i, bounds[2i+1] = upper_i. Same system, same
  // coefficients; this is what prices the scalar backend vs the blocked-ELL
  // AVX2 backend on production data. With a pool the sweep runs the
  // block-parallel path over `chunks` row blocks (snapshot half at +2n,
  // per the FixedPointSweepArgs layout contract).
  double BackendSweep(SweepBackend* backend, ThreadPool* pool = nullptr,
                      uint32_t chunks = 1) {
    FixedPointSweepArgs args;
    args.local = local.get();
    args.bounds = pair_bounds.data();
    args.self_coeff = self_coeff.data();
    args.mesh_dummy_coeff = mesh_dummy_coeff.data();
    args.plain_dummy_coeff = plain_dummy_coeff.data();
    args.hidden_coeff = hidden_coeff.data();
    args.alpha = kAlpha;
    args.dummy_tight = 1.0;
    args.dummy_mesh = 1.0;
    args.self_loop = true;
    if (pool != nullptr) {
      args.pool = pool;
      args.chunks = chunks;
      args.snapshot = pair_bounds.data() + 2 * lower.size();
    }
    return backend->FusedSweep(args);
  }

  void ResetPairBounds() {
    // Sized for the parallel layout contract (snapshot half at +2n) so the
    // same buffer serves both paths; serial sweeps only touch [0, 2n).
    pair_bounds.assign(4 * lower.size(), 0.0);
    for (size_t i = 0; i < lower.size(); ++i) pair_bounds[2 * i + 1] = 1.0;
    pair_bounds[0] = 1.0;  // query row pinned at (1, 1)
  }

  static constexpr double kAlpha = 0.5;

  std::vector<double> pair_bounds;
  std::unique_ptr<InMemoryAccessor> accessor;
  std::unique_ptr<LocalGraph> local;
  std::vector<std::vector<std::pair<LocalId, double>>> legacy_rows;
  std::vector<double> lower;
  std::vector<double> upper;
  std::vector<double> scratch;
  std::vector<double> self_coeff;
  std::vector<double> mesh_dummy_coeff;
  std::vector<double> plain_dummy_coeff;
  std::vector<double> hidden_coeff;
  std::vector<double> audit_prev_lo;
  std::vector<double> audit_prev_hi;
  uint64_t row_entries = 0;
};

SweepFixture& SharedFixture() {
  static SweepFixture* const kFixture = new SweepFixture(TestGraph(), 4000, 3);
  return *kFixture;
}

void BM_CsrNeighborScan(benchmark::State& state) {
  const Graph& g = TestGraph();
  Rng rng(1);
  double sink = 0;
  for (auto _ : state) {
    const auto u = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    for (const double w : g.NeighborWeights(u)) sink += w;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CsrNeighborScan);

void BM_GlobalIterationSweep(benchmark::State& state) {
  // One full Jacobi sweep of the PHP system over the whole graph: the unit
  // of work GI pays per iteration.
  const Graph& g = TestGraph();
  std::vector<double> r(g.NumNodes(), 0.0);
  std::vector<double> next(g.NumNodes(), 0.0);
  r[0] = 1.0;
  for (auto _ : state) {
    for (uint64_t i = 1; i < g.NumNodes(); ++i) {
      const auto ids = g.NeighborIds(static_cast<NodeId>(i));
      const auto ws = g.NeighborWeights(static_cast<NodeId>(i));
      double sum = 0;
      for (size_t e = 0; e < ids.size(); ++e) sum += ws[e] * r[ids[e]];
      next[i] = 0.5 * sum / g.WeightedDegree(static_cast<NodeId>(i));
    }
    next[0] = 1.0;
    r.swap(next);
  }
  benchmark::DoNotOptimize(r.data());
  state.SetItemsProcessed(state.iterations() * g.NumDirectedEdges());
}
BENCHMARK(BM_GlobalIterationSweep);

void BM_BoundSweepLegacyAoSJacobi(benchmark::State& state) {
  // The pre-refactor inner kernel: per-row heap vectors of AoS pairs,
  // lower and upper solved by separate double-buffered Jacobi passes.
  SweepFixture& f = SharedFixture();
  f.ResetBounds();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.LegacyJacobiSweep());
  }
  state.SetItemsProcessed(state.iterations() * f.row_entries);
  state.counters["visited"] = static_cast<double>(f.lower.size());
}
BENCHMARK(BM_BoundSweepLegacyAoSJacobi);

void BM_BoundSweepFlatSoAFusedGS(benchmark::State& state) {
  // The current kernel: one scan of the flat SoA local CSR per iteration
  // computes both bounds and updates them in place (Gauss–Seidel).
  SweepFixture& f = SharedFixture();
  f.ResetBounds();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.FusedGsSweep());
  }
  state.SetItemsProcessed(state.iterations() * f.row_entries);
  state.counters["visited"] = static_cast<double>(f.lower.size());
}
BENCHMARK(BM_BoundSweepFlatSoAFusedGS);

void BM_BoundSweepFusedGSAudited(benchmark::State& state) {
  // The same fused kernel with the audit-tier invariant checks forced on:
  // what every sweep costs under the `audit` preset.
  SweepFixture& f = SharedFixture();
  f.ResetBounds();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.AuditedFusedGsSweep());
  }
  state.SetItemsProcessed(state.iterations() * f.row_entries);
  state.counters["visited"] = static_cast<double>(f.lower.size());
}
BENCHMARK(BM_BoundSweepFusedGSAudited);

void BM_BoundSweepBackendScalar(benchmark::State& state) {
  // The scalar SweepBackend over the pair-interleaved layout — the
  // reference implementation behind the unified engine's seam.
  SweepFixture& f = SharedFixture();
  f.ResetPairBounds();
  auto backend = MakeSweepBackend(SweepBackendKind::kScalar);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.BackendSweep(backend.get()));
  }
  state.SetItemsProcessed(state.iterations() * f.row_entries);
  state.counters["visited"] = static_cast<double>(f.lower.size());
}
BENCHMARK(BM_BoundSweepBackendScalar);

void BM_BoundSweepBackendAvx2(benchmark::State& state) {
  // The blocked-ELL AVX2 SweepBackend (skipped when the CPU lacks AVX2).
  if (!Avx2SweepAvailable()) {
    state.SkipWithError("AVX2 not available");
    return;
  }
  SweepFixture& f = SharedFixture();
  f.ResetPairBounds();
  auto backend = MakeSweepBackend(SweepBackendKind::kAvx2);
  f.BackendSweep(backend.get());  // build the ELL layout outside the loop
  f.ResetPairBounds();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.BackendSweep(backend.get()));
  }
  state.SetItemsProcessed(state.iterations() * f.row_entries);
  state.counters["visited"] = static_cast<double>(f.lower.size());
}
BENCHMARK(BM_BoundSweepBackendAvx2);

void BM_FlosExpansionStep(benchmark::State& state) {
  // One LocalExpansion + bound update, amortized over a fresh query each
  // time the frontier empties.
  const Graph& g = TestGraph();
  InMemoryAccessor accessor(&g);
  Rng rng(3);
  std::unique_ptr<LocalGraph> local;
  std::unique_ptr<UnifiedBoundEngine> engine;
  UnifiedBoundOptions be;
  be.traits.alpha = 0.5;
  const auto reset = [&] {
    local = std::make_unique<LocalGraph>(&accessor);
    const auto q = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    if (!local->Init(q).ok()) std::abort();
    engine = std::make_unique<UnifiedBoundEngine>(local.get(), be);
  };
  reset();
  for (auto _ : state) {
    LocalId best = kInvalidLocal;
    double best_mid = -1;
    for (LocalId i = 0; i < local->Size(); ++i) {
      if (!local->IsBoundary(i)) continue;
      const double mid = 0.5 * (engine->lower(i) + engine->upper(i));
      if (mid > best_mid) {
        best = i;
        best_mid = mid;
      }
    }
    if (best == kInvalidLocal || local->Size() > 4000) {
      state.PauseTiming();
      reset();
      state.ResumeTiming();
      continue;
    }
    engine->CaptureDummyFromBoundary();
    if (!local->Expand(best).ok()) std::abort();
    engine->OnGrowth();
    engine->UpdateBounds();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlosExpansionStep);

void BM_FlosFullQuery(benchmark::State& state) {
  const Graph& g = TestGraph();
  InMemoryAccessor accessor(&g);
  FlosEngine engine(&accessor);
  Rng rng(4);
  FlosOptions options;
  options.measure = Measure::kPhp;
  for (auto _ : state) {
    const auto q = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    if (g.Degree(q) == 0) continue;
    const auto r = engine.TopK(q, static_cast<int>(state.range(0)), options);
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r.value().topk.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlosFullQuery)->Arg(1)->Arg(10)->Arg(50);

void BM_DiskNeighborFetch(benchmark::State& state) {
  const Graph& g = TestGraph();
  const std::string path = "/tmp/flos_micro_bench.flosgrf";
  if (!WriteDiskGraph(g, path).ok()) std::abort();
  DiskGraphOptions options;
  options.cache_bytes = 1 << 20;
  auto disk_result = DiskGraph::Open(path, options);
  if (!disk_result.ok()) std::abort();
  auto disk = std::move(disk_result).value();
  Rng rng(5);
  std::vector<Neighbor> nbs;
  for (auto _ : state) {
    const auto u = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    if (!disk->CopyNeighbors(u, &nbs).ok()) std::abort();
    benchmark::DoNotOptimize(nbs.data());
  }
  state.SetItemsProcessed(state.iterations());
  std::remove(path.c_str());
}
BENCHMARK(BM_DiskNeighborFetch);

// ---------------------------------------------------------------------------
// BENCH_kernels.json: a machine-readable perf baseline for the bound-sweep
// kernel and end-to-end queries, emitted after the google-benchmark run.

enum class SweepKind { kLegacyJacobi, kFusedGs, kFusedGsAudited };

double TimeSweeps(SweepFixture* f, SweepKind kind, int sweeps) {
  f->ResetBounds();
  WallTimer timer;
  double sink = 0;
  for (int s = 0; s < sweeps; ++s) {
    switch (kind) {
      case SweepKind::kLegacyJacobi:
        sink += f->LegacyJacobiSweep();
        break;
      case SweepKind::kFusedGs:
        sink += f->FusedGsSweep();
        break;
      case SweepKind::kFusedGsAudited:
        sink += f->AuditedFusedGsSweep();
        break;
    }
  }
  const double ns = timer.ElapsedSeconds() * 1e9 / sweeps;
  benchmark::DoNotOptimize(sink);
  return ns;
}

double TimeBackendSweeps(SweepFixture* f, SweepBackend* backend, int sweeps) {
  f->ResetPairBounds();
  WallTimer timer;
  double sink = 0;
  for (int s = 0; s < sweeps; ++s) sink += f->BackendSweep(backend);
  const double ns = timer.ElapsedSeconds() * 1e9 / sweeps;
  benchmark::DoNotOptimize(sink);
  return ns;
}

double TimeParallelBackendSweeps(SweepFixture* f, SweepBackend* backend,
                                 ThreadPool* pool, uint32_t chunks,
                                 int sweeps) {
  f->ResetPairBounds();
  WallTimer timer;
  double sink = 0;
  const size_t live = 2 * f->lower.size();
  for (int s = 0; s < sweeps; ++s) {
    // The engine refreshes the snapshot half before every parallel sweep;
    // include that copy so the reported speedup is end-to-end honest.
    std::copy_n(f->pair_bounds.data(), live, f->pair_bounds.data() + live);
    sink += f->BackendSweep(backend, pool, chunks);
  }
  const double ns = timer.ElapsedSeconds() * 1e9 / sweeps;
  benchmark::DoNotOptimize(sink);
  return ns;
}

// Serial vs block-parallel sweeps at `threads` total sweep threads (pool
// workers + the caller) on a >= 10k-row visited set over the 1M-node RAND
// graph — the configuration the acceptance bar (>= 2x at 4 threads) is
// stated for. Both backends; AVX2 numbers are zero when unavailable.
struct ParallelPoint {
  size_t visited = 0;
  uint64_t row_entries = 0;
  int threads = 0;
  double scalar_serial_ns = 0;
  double scalar_parallel_ns = 0;
  double avx2_serial_ns = 0;
  double avx2_parallel_ns = 0;
};

ParallelPoint TimeParallelSweeps(int threads, int sweeps) {
  SweepFixture f(BigGraph(), 16000, 9);
  ThreadPool pool(threads - 1);
  const auto chunks = static_cast<uint32_t>(threads);
  ParallelPoint p;
  p.visited = f.lower.size();
  p.row_entries = f.row_entries;
  p.threads = threads;
  const auto scalar = MakeSweepBackend(SweepBackendKind::kScalar);
  TimeBackendSweeps(&f, scalar.get(), sweeps / 8 + 1);
  p.scalar_serial_ns = TimeBackendSweeps(&f, scalar.get(), sweeps);
  TimeParallelBackendSweeps(&f, scalar.get(), &pool, chunks, sweeps / 8 + 1);
  p.scalar_parallel_ns =
      TimeParallelBackendSweeps(&f, scalar.get(), &pool, chunks, sweeps);
  if (Avx2SweepAvailable()) {
    const auto avx2 = MakeSweepBackend(SweepBackendKind::kAvx2);
    TimeBackendSweeps(&f, avx2.get(), sweeps / 8 + 1);  // includes ELL build
    p.avx2_serial_ns = TimeBackendSweeps(&f, avx2.get(), sweeps);
    TimeParallelBackendSweeps(&f, avx2.get(), &pool, chunks, sweeps / 8 + 1);
    p.avx2_parallel_ns =
        TimeParallelBackendSweeps(&f, avx2.get(), &pool, chunks, sweeps);
  }
  return p;
}

uint32_t SweepsToConverge(SweepFixture* f, bool fused, double tolerance) {
  f->ResetBounds();
  uint32_t sweeps = 0;
  while (sweeps < 10000) {
    const double delta = fused ? f->FusedGsSweep() : f->LegacyJacobiSweep();
    ++sweeps;
    if (delta < tolerance) break;
  }
  return sweeps;
}

struct QueryPoint {
  std::string graph;
  double qps = 0;
  double avg_ms = 0;
  double avg_visited = 0;
  // Per-phase breakdown (FlosStats timers), averaged per query: frontier
  // ranking + expansion fetches, bound solves, termination + assembly.
  double expand_ms = 0;
  double solve_ms = 0;
  double select_ms = 0;
};

QueryPoint TimeQueries(const Graph& g, const std::string& name, int k,
                       int num_queries) {
  InMemoryAccessor accessor(&g);
  FlosEngine engine(&accessor);
  FlosOptions options;
  options.measure = Measure::kPhp;
  Rng rng(21);
  std::vector<NodeId> queries;
  while (queries.size() < static_cast<size_t>(num_queries)) {
    const auto q = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    if (g.Degree(q) > 0) queries.push_back(q);
  }
  uint64_t visited = 0;
  uint64_t expand_ns = 0, solve_ns = 0, select_ns = 0;
  WallTimer timer;
  for (const NodeId q : queries) {
    const auto r = engine.TopK(q, k, options);
    if (!r.ok()) std::abort();
    visited += r.value().stats.visited_nodes;
    expand_ns += r.value().stats.expand_ns;
    solve_ns += r.value().stats.solve_ns;
    select_ns += r.value().stats.select_ns;
  }
  const double secs = timer.ElapsedSeconds();
  QueryPoint point;
  point.graph = name;
  point.qps = num_queries / secs;
  point.avg_ms = secs * 1e3 / num_queries;
  point.avg_visited = static_cast<double>(visited) / num_queries;
  point.expand_ms = static_cast<double>(expand_ns) * 1e-6 / num_queries;
  point.solve_ms = static_cast<double>(solve_ns) * 1e-6 / num_queries;
  point.select_ms = static_cast<double>(select_ns) * 1e-6 / num_queries;
  return point;
}

void EmitKernelBaseline(const char* path) {
  SweepFixture& f = SharedFixture();
  // Warm the caches, then time each kernel over enough sweeps to settle.
  TimeSweeps(&f, SweepKind::kFusedGs, 50);
  const double legacy_ns = TimeSweeps(&f, SweepKind::kLegacyJacobi, 400);
  const double fused_ns = TimeSweeps(&f, SweepKind::kFusedGs, 400);
  const double audited_ns = TimeSweeps(&f, SweepKind::kFusedGsAudited, 400);
  // The SweepBackend seam over the pair-interleaved layout: the scalar
  // reference backend and (when the CPU has it) the blocked-ELL AVX2
  // backend, both on the same fixture. simd_speedup compares AVX2 against
  // the scalar FUSED sweep above — the kernel the engine ran before the
  // seam existed — which is the acceptance bar for the SIMD backend.
  const auto scalar_backend = MakeSweepBackend(SweepBackendKind::kScalar);
  TimeBackendSweeps(&f, scalar_backend.get(), 50);
  const double scalar_pair_ns =
      TimeBackendSweeps(&f, scalar_backend.get(), 400);
  double avx2_ns = 0;
  if (Avx2SweepAvailable()) {
    const auto avx2_backend = MakeSweepBackend(SweepBackendKind::kAvx2);
    TimeBackendSweeps(&f, avx2_backend.get(), 50);  // includes ELL build
    avx2_ns = TimeBackendSweeps(&f, avx2_backend.get(), 400);
  }
  const double tol = 1e-8;
  const uint32_t jacobi_iters = SweepsToConverge(&f, /*fused=*/false, tol);
  const uint32_t gs_iters = SweepsToConverge(&f, /*fused=*/true, tol);
  const ParallelPoint par = TimeParallelSweeps(/*threads=*/4, /*sweeps=*/200);
  const QueryPoint rand_point = TimeQueries(RandGraph(), "RAND", 20, 200);
  const QueryPoint rmat_point = TimeQueries(TestGraph(), "RMAT", 20, 200);

  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bound_sweep\": {\n");
  std::fprintf(out, "    \"visited_nodes\": %zu,\n", f.lower.size());
  std::fprintf(out, "    \"row_entries\": %llu,\n",
               static_cast<unsigned long long>(f.row_entries));
  std::fprintf(out, "    \"legacy_aos_jacobi_ns_per_sweep\": %.1f,\n",
               legacy_ns);
  std::fprintf(out, "    \"flat_soa_fused_gs_ns_per_sweep\": %.1f,\n",
               fused_ns);
  std::fprintf(out, "    \"fused_gs_audited_ns_per_sweep\": %.1f,\n",
               audited_ns);
  std::fprintf(out, "    \"audit_overhead_ratio\": %.3f,\n",
               audited_ns / fused_ns);
  std::fprintf(out, "    \"speedup\": %.3f\n", legacy_ns / fused_ns);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"sweep_backend\": {\n");
  std::fprintf(out, "    \"scalar_pair_ns_per_sweep\": %.1f,\n",
               scalar_pair_ns);
  if (avx2_ns > 0) {
    std::fprintf(out, "    \"avx2_ell_ns_per_sweep\": %.1f,\n", avx2_ns);
    std::fprintf(out, "    \"simd_speedup_vs_scalar_fused\": %.3f,\n",
                 fused_ns / avx2_ns);
    std::fprintf(out, "    \"simd_speedup_vs_scalar_pair\": %.3f,\n",
                 scalar_pair_ns / avx2_ns);
  }
  std::fprintf(out, "    \"avx2_available\": %s\n",
               Avx2SweepAvailable() ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"parallel_sweep\": {\n");
  std::fprintf(out, "    \"graph\": \"RAND n=%u\",\n", 1u << 20);
  std::fprintf(out, "    \"host_cpus\": %d,\n", ThreadPool::DefaultNumThreads());
  if (ThreadPool::DefaultNumThreads() < par.threads) {
    std::fprintf(out,
                 "    \"note\": \"host has fewer cores than sweep threads; "
                 "the speedup fields price thread oversubscription on this "
                 "box, not the block-sweep design — CI's perf-smoke step "
                 "guards the >= 1x floor on multi-core runners\",\n");
  }
  std::fprintf(out, "    \"visited_nodes\": %zu,\n", par.visited);
  std::fprintf(out, "    \"row_entries\": %llu,\n",
               static_cast<unsigned long long>(par.row_entries));
  std::fprintf(out, "    \"threads\": %d,\n", par.threads);
  std::fprintf(out, "    \"scalar_serial_ns_per_sweep\": %.1f,\n",
               par.scalar_serial_ns);
  std::fprintf(out, "    \"scalar_parallel_ns_per_sweep\": %.1f,\n",
               par.scalar_parallel_ns);
  std::fprintf(out, "    \"scalar_parallel_speedup\": %.3f,\n",
               par.scalar_serial_ns / par.scalar_parallel_ns);
  if (par.avx2_parallel_ns > 0) {
    std::fprintf(out, "    \"avx2_serial_ns_per_sweep\": %.1f,\n",
                 par.avx2_serial_ns);
    std::fprintf(out, "    \"avx2_parallel_ns_per_sweep\": %.1f,\n",
                 par.avx2_parallel_ns);
    std::fprintf(out, "    \"avx2_parallel_speedup\": %.3f,\n",
                 par.avx2_serial_ns / par.avx2_parallel_ns);
  }
  std::fprintf(out, "    \"snapshot_copy_included\": true\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"iterations_to_converge\": {\n");
  std::fprintf(out, "    \"tolerance\": %g,\n", tol);
  std::fprintf(out, "    \"jacobi\": %u,\n", jacobi_iters);
  std::fprintf(out, "    \"gauss_seidel\": %u\n", gs_iters);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"full_query_k20_php\": [\n");
  const QueryPoint* points[] = {&rand_point, &rmat_point};
  for (int i = 0; i < 2; ++i) {
    std::fprintf(out,
                 "    {\"graph\": \"%s\", \"qps\": %.1f, \"avg_ms\": %.4f, "
                 "\"avg_visited\": %.1f, \"expand_ms\": %.4f, "
                 "\"solve_ms\": %.4f, \"select_ms\": %.4f}%s\n",
                 points[i]->graph.c_str(), points[i]->qps, points[i]->avg_ms,
                 points[i]->avg_visited, points[i]->expand_ms,
                 points[i]->solve_ms, points[i]->select_ms,
                 i == 0 ? "," : "");
  }
  std::fprintf(out, "  ]\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("kernel baseline written to %s (sweep speedup %.2fx, "
              "audit overhead %.2fx, simd speedup %.2fx, parallel sweep "
              "%.2fx scalar / %.2fx avx2 @%d threads, iters %u -> %u, "
              "RAND %.0f qps, RMAT %.0f qps)\n",
              path, legacy_ns / fused_ns, audited_ns / fused_ns,
              avx2_ns > 0 ? fused_ns / avx2_ns : 0.0,
              par.scalar_serial_ns / par.scalar_parallel_ns,
              par.avx2_parallel_ns > 0
                  ? par.avx2_serial_ns / par.avx2_parallel_ns
                  : 0.0,
              par.threads, jacobi_iters, gs_iters, rand_point.qps,
              rmat_point.qps);
}

// --perf-smoke: the CI guard that block-parallel sweeps never regress
// below serial. Short run, lenient bar (>= 1.0x on the scalar backend;
// the AVX2 number is reported but not asserted — on a loaded CI box its
// shorter serial sweep leaves less room over the synchronization cost).
int RunPerfSmoke() {
  // A single-core host cannot run two sweep threads at once: the measured
  // "parallel" time is serial work plus forced context switches, which
  // says nothing about the block-sweep design. Skip rather than fail —
  // the CI runners this guard targets are multi-core.
  if (ThreadPool::DefaultNumThreads() < 2) {
    std::printf("perf-smoke SKIPPED: single-core host (%d cpu)\n",
                ThreadPool::DefaultNumThreads());
    return 0;
  }
  const ParallelPoint p = TimeParallelSweeps(/*threads=*/4, /*sweeps=*/60);
  const double scalar_speedup = p.scalar_serial_ns / p.scalar_parallel_ns;
  std::printf("perf-smoke: %zu rows / %llu entries @%d threads\n",
              p.visited, static_cast<unsigned long long>(p.row_entries),
              p.threads);
  std::printf("  scalar: serial %.0f ns  parallel %.0f ns  speedup %.2fx\n",
              p.scalar_serial_ns, p.scalar_parallel_ns, scalar_speedup);
  if (p.avx2_parallel_ns > 0) {
    std::printf("  avx2:   serial %.0f ns  parallel %.0f ns  speedup %.2fx\n",
                p.avx2_serial_ns, p.avx2_parallel_ns,
                p.avx2_serial_ns / p.avx2_parallel_ns);
  }
  if (scalar_speedup < 1.0) {
    std::fprintf(stderr,
                 "perf-smoke FAILED: parallel scalar sweep slower than "
                 "serial (%.2fx)\n",
                 scalar_speedup);
    return 1;
  }
  std::printf("perf-smoke OK\n");
  return 0;
}

}  // namespace
}  // namespace flos

int main(int argc, char** argv) {
  bool emit_json = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--perf-smoke") == 0) {
      return flos::RunPerfSmoke();
    }
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-kernel-json") == 0) {
      emit_json = false;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (emit_json) flos::EmitKernelBaseline("BENCH_kernels.json");
  return 0;
}
