// Google-benchmark microbenchmarks for the kernels the figure-level
// results are built from: CSR neighbor scans, one global-iteration sweep,
// a FLoS expansion + bound update step, the push kernel, and disk reads.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "core/bound_engine.h"
#include "core/flos.h"
#include "core/local_graph.h"
#include "graph/accessor.h"
#include "graph/generators.h"
#include "measures/exact.h"
#include "storage/disk_builder.h"
#include "storage/disk_graph.h"
#include "util/rng.h"

namespace flos {
namespace {

const Graph& TestGraph() {
  static const Graph* const kGraph = [] {
    GeneratorOptions options;
    options.num_nodes = 1 << 16;
    options.num_edges = 10 * (1 << 16);
    options.seed = 7;
    auto result = GenerateRmat(options);
    if (!result.ok()) {
      std::fprintf(stderr, "graph generation failed\n");
      std::abort();
    }
    return new Graph(std::move(result).value());
  }();
  return *kGraph;
}

void BM_CsrNeighborScan(benchmark::State& state) {
  const Graph& g = TestGraph();
  Rng rng(1);
  double sink = 0;
  for (auto _ : state) {
    const auto u = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    for (const double w : g.NeighborWeights(u)) sink += w;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CsrNeighborScan);

void BM_GlobalIterationSweep(benchmark::State& state) {
  // One full Jacobi sweep of the PHP system over the whole graph: the unit
  // of work GI pays per iteration.
  const Graph& g = TestGraph();
  std::vector<double> r(g.NumNodes(), 0.0);
  std::vector<double> next(g.NumNodes(), 0.0);
  r[0] = 1.0;
  for (auto _ : state) {
    for (uint64_t i = 1; i < g.NumNodes(); ++i) {
      const auto ids = g.NeighborIds(static_cast<NodeId>(i));
      const auto ws = g.NeighborWeights(static_cast<NodeId>(i));
      double sum = 0;
      for (size_t e = 0; e < ids.size(); ++e) sum += ws[e] * r[ids[e]];
      next[i] = 0.5 * sum / g.WeightedDegree(static_cast<NodeId>(i));
    }
    next[0] = 1.0;
    r.swap(next);
  }
  benchmark::DoNotOptimize(r.data());
  state.SetItemsProcessed(state.iterations() * g.NumDirectedEdges());
}
BENCHMARK(BM_GlobalIterationSweep);

void BM_FlosExpansionStep(benchmark::State& state) {
  // One LocalExpansion + bound update, amortized over a fresh query each
  // time the frontier empties.
  const Graph& g = TestGraph();
  InMemoryAccessor accessor(&g);
  Rng rng(3);
  std::unique_ptr<LocalGraph> local;
  std::unique_ptr<PhpBoundEngine> engine;
  BoundEngineOptions be;
  be.alpha = 0.5;
  const auto reset = [&] {
    local = std::make_unique<LocalGraph>(&accessor);
    const auto q = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    if (!local->Init(q).ok()) std::abort();
    engine = std::make_unique<PhpBoundEngine>(local.get(), be);
  };
  reset();
  for (auto _ : state) {
    LocalId best = kInvalidLocal;
    double best_mid = -1;
    for (LocalId i = 0; i < local->Size(); ++i) {
      if (!local->IsBoundary(i)) continue;
      const double mid = 0.5 * (engine->lower(i) + engine->upper(i));
      if (mid > best_mid) {
        best = i;
        best_mid = mid;
      }
    }
    if (best == kInvalidLocal || local->Size() > 4000) {
      state.PauseTiming();
      reset();
      state.ResumeTiming();
      continue;
    }
    engine->CaptureDummyFromBoundary();
    if (!local->Expand(best).ok()) std::abort();
    engine->OnGrowth();
    engine->UpdateBounds();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlosExpansionStep);

void BM_FlosFullQuery(benchmark::State& state) {
  const Graph& g = TestGraph();
  Rng rng(4);
  FlosOptions options;
  options.measure = Measure::kPhp;
  for (auto _ : state) {
    const auto q = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    if (g.Degree(q) == 0) continue;
    const auto r = FlosTopK(g, q, static_cast<int>(state.range(0)), options);
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r.value().topk.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlosFullQuery)->Arg(1)->Arg(10)->Arg(50);

void BM_DiskNeighborFetch(benchmark::State& state) {
  const Graph& g = TestGraph();
  const std::string path = "/tmp/flos_micro_bench.flosgrf";
  if (!WriteDiskGraph(g, path).ok()) std::abort();
  DiskGraphOptions options;
  options.cache_bytes = 1 << 20;
  auto disk_result = DiskGraph::Open(path, options);
  if (!disk_result.ok()) std::abort();
  auto disk = std::move(disk_result).value();
  Rng rng(5);
  std::vector<Neighbor> nbs;
  for (auto _ : state) {
    const auto u = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    if (!disk->CopyNeighbors(u, &nbs).ok()) std::abort();
    benchmark::DoNotOptimize(nbs.data());
  }
  state.SetItemsProcessed(state.iterations());
  std::remove(path.c_str());
}
BENCHMARK(BM_DiskNeighborFetch);

}  // namespace
}  // namespace flos

BENCHMARK_MAIN();
