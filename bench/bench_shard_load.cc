// Shard scale-out benchmark: aggregate certified QPS of an N-shard fleet
// versus the single-process baseline on the SAME total graph.
//
// Methodology (single host): production scale-out puts each shard server
// on its own machine, so aggregate capacity is the sum of per-shard
// capacities. This host has one CPU budget, so running N saturated
// servers concurrently would just time-slice it and show a flat line that
// says nothing about the fleet. Instead the bench measures each shard
// server IN ISOLATION (closed-loop clients over loopback, queries drawn
// from that shard's core — exactly the traffic the router would send it)
// and reports the sum as the aggregate ("isolation-sum"). A separate
// router-fronted run with every server live on this one host is also
// reported, as a functional end-to-end number (router translation, pooled
// backend connections), NOT a scaling claim — it is labeled accordingly
// in the JSON.
//
// For each shard count in --shards the bench partitions the graph
// (BFS-grown cores, --halo replicated hops), reports per-shard and
// aggregate QPS, the certified and halo-truncated ratios, and the
// replication factor the halo costs, then writes the whole curve plus the
// baseline to --json (BENCH_shard.json).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/harness.h"
#include "graph/partition.h"
#include "service/client.h"
#include "service/server.h"
#include "service/shard_router.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {

flos::Result<flos::Measure> ParseMeasure(const std::string& name) {
  if (name == "php") return flos::Measure::kPhp;
  if (name == "ei") return flos::Measure::kEi;
  if (name == "dht") return flos::Measure::kDht;
  if (name == "tht") return flos::Measure::kTht;
  if (name == "rwr") return flos::Measure::kRwr;
  return flos::Status::InvalidArgument(
      "unknown measure '" + name + "' (expected php|ei|dht|tht|rwr)");
}

/// Outcome counters for one measured workload (all connections merged).
struct Workload {
  uint64_t ok = 0;
  uint64_t certified = 0;
  uint64_t halo_truncated = 0;
  uint64_t overloaded = 0;
  uint64_t errors = 0;
  double qps = 0;

  double CertifiedRatio() const {
    return ok > 0 ? static_cast<double>(certified) /
                        static_cast<double>(ok)
                  : 0.0;
  }
  double TruncatedRatio() const {
    return ok > 0 ? static_cast<double>(halo_truncated) /
                        static_cast<double>(ok)
                  : 0.0;
  }
};

/// Closed-loop clients against host:port for `duration_s`; `draw` picks
/// each query node (global or shard-local, per the caller's target).
Workload RunWorkload(const std::string& host, uint16_t port,
                     const flos::QueryRequest& base, int64_t duration_s,
                     int64_t connections, uint64_t seed,
                     const std::function<flos::NodeId(flos::Rng&)>& draw) {
  std::atomic<bool> stop{false};
  std::vector<Workload> per_client(static_cast<size_t>(connections));
  std::vector<std::thread> clients;
  clients.reserve(per_client.size());
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < per_client.size(); ++i) {
    clients.emplace_back([&, i] {
      Workload* w = &per_client[i];
      auto client = flos::ServiceClient::Connect(host, port);
      if (!client.ok()) {
        std::fprintf(stderr, "client connect: %s\n",
                     client.status().ToString().c_str());
        ++w->errors;
        return;
      }
      flos::Rng rng(seed + 1000 + i);
      while (!stop.load(std::memory_order_relaxed)) {
        flos::QueryRequest request = base;
        request.query_node = draw(rng);
        const auto resp = client->Query(request);
        if (!resp.ok()) {
          ++w->errors;
          return;  // transport broken; stop this connection
        }
        if (resp->status == flos::StatusCode::kOk) {
          ++w->ok;
          if (resp->certified) ++w->certified;
          if (resp->halo_truncated) ++w->halo_truncated;
        } else if (resp->status == flos::StatusCode::kOverloaded) {
          ++w->overloaded;
        } else {
          ++w->errors;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::seconds(duration_s));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  Workload total;
  for (const Workload& w : per_client) {
    total.ok += w.ok;
    total.certified += w.certified;
    total.halo_truncated += w.halo_truncated;
    total.overloaded += w.overloaded;
    total.errors += w.errors;
  }
  total.qps = elapsed > 0 ? static_cast<double>(total.ok) / elapsed : 0.0;
  return total;
}

/// One row of the scaling curve.
struct CurvePoint {
  uint32_t shards = 0;
  double aggregate_qps = 0;
  double min_shard_qps = 0;
  double max_shard_qps = 0;
  double certified_ratio = 0;
  double truncated_ratio = 0;
  double replication_factor = 0;
  double router_fleet_qps = 0;  ///< single-host functional number only
};

int Run(int argc, char** argv) {
  flos::FlagParser flags;
  double scale = 1.0;
  std::string shards_csv = "2,4,8";
  int64_t halo = 3;
  int64_t workers = 4;
  int64_t connections = 4;
  int64_t duration_s = 3;
  int64_t deadline_us = 5000;
  int64_t k = 10;
  int64_t max_queue = 256;
  int64_t query_cache = 4096;
  std::string measure_name = "php";
  int64_t seed = 42;
  bool skip_router = false;
  std::string json_path = "BENCH_shard.json";
  flags.AddDouble("scale", &scale,
                  "fraction of the 1M-node RAND preset to generate");
  flags.AddString("shards", &shards_csv, "shard counts to sweep");
  flags.AddInt("halo", &halo,
               "replicated halo hops per shard (3 keeps certified searches "
               "off the fringe on the RAND proxy)");
  flags.AddInt("workers", &workers, "query worker threads per server");
  flags.AddInt("connections", &connections,
               "closed-loop client threads per measured server");
  flags.AddInt("duration-s", &duration_s, "measured length of each run");
  flags.AddInt("deadline-us", &deadline_us,
               "per-query anytime budget (0 = run every query to proof)");
  flags.AddInt("k", &k, "neighbors per query");
  flags.AddInt("max-queue", &max_queue, "server admission-control cap");
  flags.AddInt("query-cache", &query_cache,
               "certified-result cache entries per server (0 = disable)");
  flags.AddString("measure", &measure_name, "php|ei|dht|tht|rwr");
  flags.AddInt("seed", &seed, "graph + query sampling seed");
  flags.AddBool("skip-router", &skip_router,
                "skip the router-fronted functional runs");
  flags.AddString("json", &json_path, "output file ('' = skip)");
  if (const flos::Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  const auto measure = ParseMeasure(measure_name);
  if (!measure.ok()) {
    std::fprintf(stderr, "%s\n", measure.status().ToString().c_str());
    return 1;
  }
  const std::vector<int> shard_counts = flos::bench::ParseIntList(shards_csv);

  flos::bench::SynthSpec spec;
  spec.nodes = static_cast<uint64_t>(1000000.0 * scale);
  spec.edges = spec.nodes * 5;
  spec.rmat = false;
  spec.label = "RAND n=" + std::to_string(spec.nodes);
  const flos::Graph graph = flos::bench::CheckOk(
      flos::bench::BuildSynth(spec, static_cast<uint64_t>(seed)));
  flos::bench::PrintGraphLine(spec.label, graph);

  flos::ServerOptions server_options;
  server_options.num_workers = static_cast<int>(workers);
  server_options.max_queue_depth = static_cast<size_t>(max_queue);
  server_options.query_cache_capacity =
      query_cache > 0 ? static_cast<size_t>(query_cache) : 0;

  flos::QueryRequest base;
  base.measure = *measure;
  base.k = static_cast<uint32_t>(k);
  base.deadline_us = static_cast<uint64_t>(deadline_us);

  const auto draw_global = [&graph](flos::Rng& rng) {
    flos::NodeId node;
    do {
      node = static_cast<flos::NodeId>(rng.NextBounded(graph.NumNodes()));
    } while (graph.Degree(node) == 0);
    return node;
  };

  uint64_t total_errors = 0;

  // -- Single-process baseline: the whole graph in one server. ----------
  Workload baseline;
  {
    flos::ServiceServer server(&graph, server_options);
    flos::bench::CheckOk(server.Start());
    baseline = RunWorkload(server_options.host, server.port(), base,
                           duration_s, connections,
                           static_cast<uint64_t>(seed), draw_global);
    server.Shutdown();
  }
  total_errors += baseline.errors;
  std::printf("baseline 1 process: qps %.1f  certified %.3f\n", baseline.qps,
              baseline.CertifiedRatio());

  // -- Scaling curve. ----------------------------------------------------
  std::vector<CurvePoint> curve;
  for (const int num_shards : shard_counts) {
    flos::PartitionOptions popts;
    popts.num_shards = static_cast<uint32_t>(num_shards);
    popts.halo_hops = static_cast<uint32_t>(halo);
    popts.method = flos::PartitionMethod::kBfsGrow;
    flos::GraphPartition partition =
        flos::bench::CheckOk(flos::PartitionGraph(graph, popts));

    CurvePoint point;
    point.shards = static_cast<uint32_t>(num_shards);
    point.min_shard_qps = -1;
    uint64_t replicated = 0;
    uint64_t ok = 0, certified = 0, truncated = 0;

    // Each shard server saturated alone — the capacity its own machine
    // would contribute — fed the core-local traffic the router routes it.
    for (flos::ShardPart& shard : partition.shards) {
      replicated += shard.meta.num_local();
      flos::ServerOptions shard_options = server_options;
      shard_options.shard_meta = &shard.meta;
      flos::ServiceServer server(&shard.graph, shard_options);
      flos::bench::CheckOk(server.Start());
      const flos::ShardMeta& meta = shard.meta;
      const flos::Graph& shard_graph = shard.graph;
      const auto draw_core = [&meta, &shard_graph](flos::Rng& rng) {
        flos::NodeId local;
        do {
          local = static_cast<flos::NodeId>(rng.NextBounded(meta.num_core));
        } while (shard_graph.Degree(local) == 0);
        return local;
      };
      const Workload w = RunWorkload(
          shard_options.host, server.port(), base, duration_s, connections,
          static_cast<uint64_t>(seed) + 13 * meta.shard_index, draw_core);
      server.Shutdown();
      total_errors += w.errors;
      point.aggregate_qps += w.qps;
      point.max_shard_qps = std::max(point.max_shard_qps, w.qps);
      point.min_shard_qps = point.min_shard_qps < 0
                                ? w.qps
                                : std::min(point.min_shard_qps, w.qps);
      ok += w.ok;
      certified += w.certified;
      truncated += w.halo_truncated;
      std::printf("  shard %u/%d isolated: qps %.1f  certified %.3f  "
                  "halo-truncated %.3f\n",
                  meta.shard_index, num_shards, w.qps,
                  w.CertifiedRatio(), w.TruncatedRatio());
    }
    point.certified_ratio =
        ok > 0 ? static_cast<double>(certified) / static_cast<double>(ok)
               : 0.0;
    point.truncated_ratio =
        ok > 0 ? static_cast<double>(truncated) / static_cast<double>(ok)
               : 0.0;
    point.replication_factor = static_cast<double>(replicated) /
                               static_cast<double>(graph.NumNodes());

    // Functional end-to-end check: whole fleet plus router on this one
    // host, global-id traffic through the router. CPU-bound here, so the
    // number validates the data path, not scaling.
    if (!skip_router) {
      std::vector<std::unique_ptr<flos::ServiceServer>> servers;
      std::vector<flos::ShardMeta> metas;
      flos::ShardRouterOptions router_options;
      for (flos::ShardPart& shard : partition.shards) {
        flos::ServerOptions shard_options = server_options;
        shard_options.shard_meta = &shard.meta;
        servers.push_back(std::make_unique<flos::ServiceServer>(
            &shard.graph, shard_options));
        flos::bench::CheckOk(servers.back()->Start());
        router_options.shards.push_back(
            {server_options.host, servers.back()->port()});
        metas.push_back(shard.meta);
      }
      router_options.num_workers = static_cast<int>(workers);
      flos::ShardRouter router(
          flos::bench::CheckOk(
              flos::ShardRouteTable::Build(std::move(metas))),
          router_options);
      flos::bench::CheckOk(router.Start());
      const Workload w = RunWorkload(
          router_options.host, router.port(), base, duration_s, connections,
          static_cast<uint64_t>(seed) + 777, draw_global);
      router.Shutdown();
      for (auto& server : servers) server->Shutdown();
      total_errors += w.errors;
      point.router_fleet_qps = w.qps;
    }

    std::printf("%d shards: aggregate qps %.1f (%.2fx)  certified %.3f  "
                "halo-truncated %.3f  replication %.2f  "
                "router-on-one-host qps %.1f\n",
                num_shards, point.aggregate_qps,
                baseline.qps > 0 ? point.aggregate_qps / baseline.qps : 0.0,
                point.certified_ratio, point.truncated_ratio,
                point.replication_factor, point.router_fleet_qps);
    curve.push_back(point);
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"shard_load\": {\n");
    std::fprintf(
        f,
        "    \"_methodology\": \"isolation-sum: each shard server is "
        "measured saturated in isolation on this single-CPU host (the "
        "capacity its own machine contributes in a real fleet) and the "
        "aggregate is the sum; router_fleet_qps_single_host runs the whole "
        "fleet plus the router on this one host and only validates the "
        "data path, not scaling\",\n");
    std::fprintf(f, "    \"graph\": \"%s\",\n", spec.label.c_str());
    std::fprintf(f, "    \"measure\": \"%s\",\n", measure_name.c_str());
    std::fprintf(f, "    \"halo_hops\": %lld,\n",
                 static_cast<long long>(halo));
    std::fprintf(f, "    \"workers\": %lld,\n",
                 static_cast<long long>(workers));
    std::fprintf(f, "    \"connections\": %lld,\n",
                 static_cast<long long>(connections));
    std::fprintf(f, "    \"deadline_us\": %lld,\n",
                 static_cast<long long>(deadline_us));
    std::fprintf(f, "    \"k\": %lld,\n", static_cast<long long>(k));
    std::fprintf(f, "    \"duration_s_per_run\": %lld,\n",
                 static_cast<long long>(duration_s));
    std::fprintf(f, "    \"baseline_qps\": %.1f,\n", baseline.qps);
    std::fprintf(f, "    \"baseline_certified_ratio\": %.4f,\n",
                 baseline.CertifiedRatio());
    std::fprintf(f, "    \"curve\": [\n");
    for (size_t i = 0; i < curve.size(); ++i) {
      const CurvePoint& p = curve[i];
      std::fprintf(
          f,
          "      {\"shards\": %u, \"aggregate_qps\": %.1f, "
          "\"speedup\": %.2f, \"min_shard_qps\": %.1f, "
          "\"max_shard_qps\": %.1f, \"certified_ratio\": %.4f, "
          "\"halo_truncated_ratio\": %.4f, \"replication_factor\": %.2f, "
          "\"router_fleet_qps_single_host\": %.1f}%s\n",
          p.shards, p.aggregate_qps,
          baseline.qps > 0 ? p.aggregate_qps / baseline.qps : 0.0,
          p.min_shard_qps, p.max_shard_qps, p.certified_ratio,
          p.truncated_ratio, p.replication_factor, p.router_fleet_qps,
          i + 1 < curve.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return total_errors > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
