// Figure 11 (+ Table 6 header): PHP methods on in-memory synthetic graphs,
// k = 20: (a) varying size on RAND, (b) varying size on R-MAT, (c) varying
// density on RAND, (d) varying density on R-MAT.
//
// Expected shape (paper): GI_PHP grows with |V| while all local methods
// stay flat; every method grows with density; local methods are slightly
// slower on R-MAT than on RAND (hub nodes enlarge the expanded
// neighborhood), while GI is slightly faster on R-MAT.

#include <cstdio>
#include <string>

#include "baselines/dne.h"
#include "baselines/gi.h"
#include "baselines/ls_push.h"
#include "baselines/nn_ei.h"
#include "bench/harness.h"
#include "core/flos.h"
#include "graph/accessor.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace flos {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  bench::CommonFlags common;
  common.ks = "20";  // the paper fixes k = 20 for the synthetic study
  common.queries = 3;
  common.Register(&flags);
  double c = 0.5;
  int64_t base_nodes = 32768;
  flags.AddDouble("c", &c, "PHP decay factor");
  flags.AddInt("base-nodes", &base_nodes,
               "smallest size of the varying-size series (paper: 2^20)");
  if (const Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  const int k = bench::ParseIntList(common.ks)[0];

  std::printf("# Figure 11: PHP methods on synthetic graphs (k=%d, avg "
              "ms/query over %lld queries)\n",
              k, static_cast<long long>(common.queries));
  TablePrinter table(common.csv);
  table.AddRow({"series", "graph", "method", "avg_ms"});

  std::vector<std::pair<std::string, std::vector<bench::SynthSpec>>> series;
  series.emplace_back(
      "size-RAND", bench::SizeSweep(static_cast<uint64_t>(base_nodes), 9.5,
                                    /*rmat=*/false));
  series.emplace_back(
      "size-RMAT", bench::SizeSweep(static_cast<uint64_t>(base_nodes), 9.5,
                                    /*rmat=*/true));
  const std::vector<double> densities = {4.8, 9.5, 14.3, 19.1};
  series.emplace_back("density-RAND",
                      bench::DensitySweep(static_cast<uint64_t>(base_nodes),
                                          densities, /*rmat=*/false));
  series.emplace_back("density-RMAT",
                      bench::DensitySweep(static_cast<uint64_t>(base_nodes),
                                          densities, /*rmat=*/true));

  for (const auto& [series_name, specs] : series) {
    for (const bench::SynthSpec& spec : specs) {
      const Graph g = bench::CheckOk(bench::BuildSynth(spec, common.seed));
      bench::PrintGraphLine(spec.label, g);
      const std::vector<NodeId> queries = bench::SampleQueries(
          g, static_cast<int>(common.queries), common.seed + 1);
      {
        FlosOptions options;
        options.measure = Measure::kPhp;
        options.c = c;
        const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
          bench::CheckOk(FlosTopK(g, q, k, options).status());
          return true;
        });
        table.AddRow({series_name, spec.label, "FLoS_PHP",
                      TablePrinter::FormatDouble(t.avg_ms)});
      }
      {
        GiOptions options;
        options.measure = Measure::kPhp;
        options.params.c = c;
        const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
          bench::CheckOk(GiTopK(g, q, k, options).status());
          return true;
        });
        table.AddRow({series_name, spec.label, "GI_PHP",
                      TablePrinter::FormatDouble(t.avg_ms)});
      }
      {
        DneOptions options;
        options.c = c;
        InMemoryAccessor accessor(&g);
        const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
          bench::CheckOk(DneTopK(&accessor, q, k, options).status());
          return true;
        });
        table.AddRow({series_name, spec.label, "DNE",
                      TablePrinter::FormatDouble(t.avg_ms)});
      }
      {
        NnEiOptions options;
        options.c = 1.0 - c;
        InMemoryAccessor accessor(&g);
        const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
          bench::CheckOk(NnEiTopK(&accessor, q, k, options).status());
          return true;
        });
        table.AddRow({series_name, spec.label, "NN_EI",
                      TablePrinter::FormatDouble(t.avg_ms)});
      }
      {
        LsPushOptions ls_options;
        const LsPushIndex index =
            bench::CheckOk(LsPushIndex::Build(&g, ls_options));
        MeasureParams params;
        params.c = 1.0 - c;
        const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
          bench::CheckOk(index.Query(q, k, Measure::kEi, params).status());
          return true;
        });
        table.AddRow({series_name, spec.label, "LS_EI",
                      TablePrinter::FormatDouble(t.avg_ms)});
      }
    }
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace flos

int main(int argc, char** argv) { return flos::Main(argc, argv); }
