// Figure 8: running time of RWR methods vs. k on the four real-graph
// proxies: FLoS_RWR, GI_RWR, Castanet, LS_RWR everywhere; K-dash and
// GE_RWR only on the two medium graphs (az, dp) — exactly as in the paper,
// where their precomputation could not scale further. Precomputation times
// are reported separately from query times.
//
// Expected shape (paper): K-dash fastest per query after an enormous
// precompute; Castanet cuts GI by ~70-90%; FLoS_RWR competitive with the
// best local methods while staying exact.

#include <cstdio>
#include <memory>
#include <string>

#include "baselines/castanet.h"
#include "baselines/ge_embed.h"
#include "baselines/gi.h"
#include "baselines/kdash.h"
#include "baselines/ls_push.h"
#include "bench/harness.h"
#include "core/flos.h"
#include "graph/edge_list_io.h"
#include "graph/presets.h"
#include "util/flags.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace flos {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  bench::CommonFlags common;
  common.queries = 3;   // RWR certification is the expensive case
  common.ks = "1,20";
  common.Register(&flags);
  double c = 0.5;
  std::string graphs = "az,dp,yt,lj";
  std::string precompute_graphs = "az,dp";
  int64_t kdash_fill_budget = 30000000;
  double kdash_scale = 0.008;
  flags.AddDouble("c", &c, "RWR restart probability");
  flags.AddString("graphs", &graphs, "comma-separated preset names");
  flags.AddString("precompute-graphs", &precompute_graphs,
                  "presets on which K-dash/GE run (medium graphs)");
  flags.AddInt("kdash-fill-budget", &kdash_fill_budget,
               "sparse LU fill budget before K-dash gives up");
  flags.AddDouble("kdash-scale", &kdash_scale,
                  "dedicated (smaller) proxy scale for K-dash: its LU "
                  "precompute is infeasible at the shared scale, exactly as "
                  "the paper reports for its larger graphs");
  if (const Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  const std::vector<int> ks = bench::ParseIntList(common.ks);

  std::printf("# Figure 8: RWR methods on real-graph proxies (avg ms/query, "
              "%lld queries, c=%.2f, scale=%.3f)\n",
              static_cast<long long>(common.queries), c, common.scale);
  TablePrinter table(common.csv);
  table.AddRow({"graph", "k", "method", "avg_ms", "recall", "note"});

  std::vector<std::string> names;
  {
    size_t pos = 0;
    while (pos < graphs.size()) {
      const size_t comma = graphs.find(',', pos);
      names.push_back(graphs.substr(pos, comma - pos));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  for (const std::string& name : names) {
    Graph g;
    if (!common.graph_path.empty()) {
      g = bench::CheckOk(ReadEdgeList(common.graph_path));
    } else {
      const GraphPreset preset = bench::CheckOk(FindPreset(name));
      g = bench::CheckOk(BuildPresetGraph(preset, common.scale, common.seed));
    }
    bench::PrintGraphLine(name, g);
    const std::vector<NodeId> queries = bench::SampleQueries(
        g, static_cast<int>(common.queries), common.seed + 1);
    const bool medium =
        precompute_graphs.find(name) != std::string::npos;

    // Preprocessing-heavy methods, built once per graph.
    LsPushOptions ls_options;
    WallTimer ls_timer;
    const LsPushIndex ls_index =
        bench::CheckOk(LsPushIndex::Build(&g, ls_options));
    std::printf("# %s: LS_RWR clustering took %.1f ms\n", name.c_str(),
                ls_timer.ElapsedMillis());

    std::unique_ptr<Graph> kdash_graph;
    std::unique_ptr<KdashIndex> kdash;
    std::unique_ptr<GeEmbedding> ge;
    if (medium) {
      // K-dash runs on a dedicated smaller proxy: its LU precompute is
      // infeasible at the shared scale (the paper likewise reports tens of
      // hours of precompute and no results on its larger graphs).
      if (common.graph_path.empty()) {
        const GraphPreset preset = bench::CheckOk(FindPreset(name));
        kdash_graph = std::make_unique<Graph>(bench::CheckOk(
            BuildPresetGraph(preset, kdash_scale, common.seed)));
      } else {
        kdash_graph = std::make_unique<Graph>(g);
      }
      KdashOptions kd;
      kd.c = c;
      kd.max_fill_entries = static_cast<uint64_t>(kdash_fill_budget);
      WallTimer kd_timer;
      auto built = KdashIndex::Build(kdash_graph.get(), kd);
      if (built.ok()) {
        kdash = std::make_unique<KdashIndex>(std::move(built).value());
        std::printf(
            "# %s: K-dash LU precompute took %.1f ms (fill %llu) on a "
            "|V|=%llu reduced proxy\n",
            name.c_str(), kd_timer.ElapsedMillis(),
            static_cast<unsigned long long>(kdash->fill_entries()),
            static_cast<unsigned long long>(kdash_graph->NumNodes()));
      } else {
        std::printf("# %s: K-dash unavailable: %s\n", name.c_str(),
                    built.status().ToString().c_str());
      }
      GeOptions go;
      go.c = c;
      WallTimer ge_timer;
      auto embedded = GeEmbedding::Build(&g, go);
      if (embedded.ok()) {
        ge = std::make_unique<GeEmbedding>(std::move(embedded).value());
        std::printf("# %s: GE embedding took %.1f ms (%u landmarks)\n",
                    name.c_str(), ge_timer.ElapsedMillis(),
                    ge->num_landmarks());
      } else {
        std::printf("# %s: GE unavailable: %s\n", name.c_str(),
                    embedded.status().ToString().c_str());
      }
    }

    for (const int k : ks) {
      std::vector<std::vector<NodeId>> truths;
      {
        FlosOptions options;
        options.measure = Measure::kRwr;
        options.c = c;
        const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
          const auto r = FlosTopK(g, q, k, options);
          bench::CheckOk(r.status());
          std::vector<NodeId> ids;
          for (const auto& s : r.value().topk) ids.push_back(s.node);
          truths.push_back(std::move(ids));
          return true;
        });
        table.AddRow({name, std::to_string(k), "FLoS_RWR",
                      TablePrinter::FormatDouble(t.avg_ms), "1.00", "exact"});
      }
      {
        GiOptions options;
        options.measure = Measure::kRwr;
        options.params.c = c;
        const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
          bench::CheckOk(GiTopK(g, q, k, options).status());
          return true;
        });
        table.AddRow({name, std::to_string(k), "GI_RWR",
                      TablePrinter::FormatDouble(t.avg_ms), "1.00", "exact"});
      }
      {
        CastanetOptions options;
        options.c = c;
        const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
          bench::CheckOk(CastanetTopK(g, q, k, options).status());
          return true;
        });
        table.AddRow({name, std::to_string(k), "Castanet",
                      TablePrinter::FormatDouble(t.avg_ms), "1.00", "exact"});
      }
      {
        MeasureParams params;
        params.c = c;
        double recall = 0;
        size_t qi = 0;
        const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
          const auto r = ls_index.Query(q, k, Measure::kRwr, params);
          bench::CheckOk(r.status());
          recall += bench::Recall(r.value().nodes, truths[qi++]);
          return true;
        });
        table.AddRow({name, std::to_string(k), "LS_RWR",
                      TablePrinter::FormatDouble(t.avg_ms),
                      TablePrinter::FormatDouble(recall / static_cast<double>(queries.size()), 3),
                      "approx"});
      }
      if (kdash != nullptr) {
        const std::vector<NodeId> kdash_queries = bench::SampleQueries(
            *kdash_graph, static_cast<int>(common.queries), common.seed + 1);
        const bench::Timing t =
            bench::TimeQueries(kdash_queries, [&](NodeId q) {
              bench::CheckOk(kdash->Query(q, k).status());
              return true;
            });
        table.AddRow({name, std::to_string(k), "K-dash",
                      TablePrinter::FormatDouble(t.avg_ms), "1.00",
                      "exact, heavy precompute, reduced proxy"});
      }
      if (ge != nullptr) {
        double recall = 0;
        size_t qi = 0;
        const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
          const auto r = ge->Query(q, k);
          bench::CheckOk(r.status());
          recall += bench::Recall(r.value().nodes, truths[qi++]);
          return true;
        });
        table.AddRow({name, std::to_string(k), "GE_RWR",
                      TablePrinter::FormatDouble(t.avg_ms),
                      TablePrinter::FormatDouble(recall / static_cast<double>(queries.size()), 3),
                      "approx, heavy precompute"});
      }
    }
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace flos

int main(int argc, char** argv) { return flos::Main(argc, argv); }
