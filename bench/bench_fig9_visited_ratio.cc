// Figure 9: ratio between the number of nodes FLoS visits and the total
// number of nodes, for FLoS_PHP and FLoS_RWR on the real-graph proxies
// (min / avg / max over the query sample, as the paper's error bars).
//
// Expected shape (paper): the ratio is small (single-digit percent or
// less), grows slowly with k, and SHRINKS as the graph gets larger.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "core/flos.h"
#include "graph/edge_list_io.h"
#include "graph/presets.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace flos {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  bench::CommonFlags common;
  common.queries = 3;
  common.ks = "1,20";
  common.Register(&flags);
  double c = 0.5;
  std::string graphs = "az,dp,yt,lj";
  flags.AddDouble("c", &c, "decay / restart parameter");
  flags.AddString("graphs", &graphs, "comma-separated preset names");
  if (const Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  const std::vector<int> ks = bench::ParseIntList(common.ks);

  std::printf("# Figure 9: visited-node ratio of FLoS (min/avg/max over "
              "%lld queries, scale=%.3f)\n",
              static_cast<long long>(common.queries), common.scale);
  TablePrinter table(common.csv);
  table.AddRow({"graph", "k", "measure", "min_ratio", "avg_ratio",
                "max_ratio"});

  std::vector<std::string> names;
  size_t pos = 0;
  while (pos < graphs.size()) {
    const size_t comma = graphs.find(',', pos);
    names.push_back(graphs.substr(pos, comma - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  for (const std::string& name : names) {
    Graph g;
    if (!common.graph_path.empty()) {
      g = bench::CheckOk(ReadEdgeList(common.graph_path));
    } else {
      const GraphPreset preset = bench::CheckOk(FindPreset(name));
      g = bench::CheckOk(BuildPresetGraph(preset, common.scale, common.seed));
    }
    bench::PrintGraphLine(name, g);
    const std::vector<NodeId> queries = bench::SampleQueries(
        g, static_cast<int>(common.queries), common.seed + 1);
    for (const Measure m : {Measure::kPhp, Measure::kRwr}) {
      for (const int k : ks) {
        FlosOptions options;
        options.measure = m;
        options.c = c;
        double min_ratio = 1;
        double max_ratio = 0;
        double sum = 0;
        for (const NodeId q : queries) {
          const FlosResult r = bench::CheckOk(FlosTopK(g, q, k, options));
          const double ratio = static_cast<double>(r.stats.visited_nodes) /
                               static_cast<double>(g.NumNodes());
          min_ratio = std::min(min_ratio, ratio);
          max_ratio = std::max(max_ratio, ratio);
          sum += ratio;
        }
        table.AddRow({name, std::to_string(k),
                      m == Measure::kPhp ? "FLoS_PHP" : "FLoS_RWR",
                      TablePrinter::FormatDouble(min_ratio, 3),
                      TablePrinter::FormatDouble(sum / static_cast<double>(queries.size()), 3),
                      TablePrinter::FormatDouble(max_ratio, 3)});
      }
    }
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace flos

int main(int argc, char** argv) { return flos::Main(argc, argv); }
