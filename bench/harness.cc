#include "bench/harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "graph/generators.h"
#include "graph/stats.h"
#include "util/rng.h"
#include "util/timer.h"

namespace flos {
namespace bench {

void CommonFlags::Register(FlagParser* parser) {
  parser->AddDouble("scale", &scale, "fraction of paper dataset sizes");
  parser->AddInt("queries", &queries, "random queries per data point");
  parser->AddInt("seed", &seed, "deterministic RNG seed");
  parser->AddBool("csv", &csv, "emit CSV rows");
  parser->AddString("graph", &graph_path,
                    "optional SNAP edge list replacing generated proxies");
  parser->AddString("ks", &ks, "comma-separated k values");
}

std::vector<int> ParseIntList(const std::string& csv) {
  std::vector<int> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    char* end = nullptr;
    const long v = std::strtol(csv.c_str() + pos, &end, 10);
    if (end == csv.c_str() + pos || v <= 0) {
      std::fprintf(stderr, "invalid integer list: %s\n", csv.c_str());
      std::exit(1);
    }
    out.push_back(static_cast<int>(v));
    pos = end - csv.c_str();
    if (pos < csv.size() && csv[pos] == ',') ++pos;
  }
  if (out.empty()) {
    std::fprintf(stderr, "empty integer list\n");
    std::exit(1);
  }
  return out;
}

std::vector<NodeId> SampleQueries(const Graph& graph, int count,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> queries;
  int attempts = 0;
  while (queries.size() < static_cast<size_t>(count) &&
         attempts < count * 1000) {
    const auto q = static_cast<NodeId>(rng.NextBounded(graph.NumNodes()));
    ++attempts;
    if (graph.Degree(q) == 0) continue;
    queries.push_back(q);
  }
  return queries;
}

Timing TimeQueries(const std::vector<NodeId>& queries,
                   const std::function<bool(NodeId)>& fn) {
  Timing t;
  t.min_ms = 1e300;
  for (const NodeId q : queries) {
    WallTimer timer;
    if (!fn(q)) break;
    const double ms = timer.ElapsedMillis();
    t.total_ms += ms;
    t.min_ms = std::min(t.min_ms, ms);
    t.max_ms = std::max(t.max_ms, ms);
    ++t.runs;
  }
  if (t.runs > 0) t.avg_ms = t.total_ms / t.runs;
  if (t.min_ms == 1e300) t.min_ms = 0;
  return t;
}

double Recall(const std::vector<NodeId>& got,
              const std::vector<NodeId>& truth) {
  if (truth.empty()) return 1.0;
  int hits = 0;
  for (const NodeId t : truth) {
    for (const NodeId g : got) {
      if (g == t) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

void PrintGraphLine(const std::string& name, const Graph& graph) {
  const GraphStats s = ComputeStats(graph);
  std::printf("# %s: %s\n", name.c_str(), StatsToString(s).c_str());
}

std::vector<SynthSpec> SizeSweep(uint64_t base_nodes, double density,
                                 bool rmat) {
  std::vector<SynthSpec> specs;
  for (const uint64_t mult : {1, 2, 4, 8}) {
    SynthSpec s;
    s.nodes = base_nodes * mult;
    s.edges =
        static_cast<uint64_t>(static_cast<double>(s.nodes) * density / 2.0);
    s.rmat = rmat;
    s.label = std::string(rmat ? "R-MAT" : "RAND") +
              " n=" + std::to_string(s.nodes);
    specs.push_back(std::move(s));
  }
  return specs;
}

std::vector<SynthSpec> DensitySweep(uint64_t nodes,
                                    const std::vector<double>& densities,
                                    bool rmat) {
  std::vector<SynthSpec> specs;
  for (const double d : densities) {
    SynthSpec s;
    s.nodes = nodes;
    s.edges = static_cast<uint64_t>(static_cast<double>(nodes) * d / 2.0);
    s.rmat = rmat;
    char label[64];
    std::snprintf(label, sizeof(label), "%s d=%.1f", rmat ? "R-MAT" : "RAND",
                  d);
    s.label = label;
    specs.push_back(std::move(s));
  }
  return specs;
}

Result<Graph> BuildSynth(const SynthSpec& spec, uint64_t seed) {
  GeneratorOptions options;
  options.num_nodes = spec.nodes;
  options.num_edges = spec.edges;
  options.seed = seed;
  return spec.rmat ? GenerateRmat(options) : GenerateErdosRenyi(options);
}

void CheckOk(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "fatal: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace bench
}  // namespace flos
