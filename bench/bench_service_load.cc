// Closed-loop load generator for the k-NN query service.
//
// Starts an in-process ServiceServer over the paper's RAND synthetic
// (Erdős–Rényi, 1M nodes / 5M edges at --scale=1), then drives it from
// --connections client threads, each running a closed loop of anytime
// queries (--deadline-us budget) against degree>=1 nodes. Query nodes are
// drawn uniformly or, with --zipf=s > 0, from a Zipf(s) distribution over
// node ids — the skewed repeat-heavy shape of real query logs, which is
// what the server's certified-result cache is for. Every client-side
// latency is kept as a RAW sample, so the reported percentiles are exact
// order statistics (nearest-rank over the merged samples), not histogram
// bucket upper bounds — at a 5 ms deadline the interesting tail lives
// inside one power-of-two bucket, where an upper bound would flatten it.
// Certified and uncertified answers get separate percentile tracks (a
// certified cache hit is microseconds, a proof is milliseconds; one merged
// track would hide both), and OVERLOADED rejections land in their own
// track so admission-control pushback never pollutes the service-time
// percentiles. The run reports QPS, per-track p50/p95/p99, and the
// server's own cache/certification counters, and writes everything to
// --json (BENCH_service.json).
//
//   ./bench/bench_service_load --scale=1 --duration-s=5
//   ./bench/bench_service_load --scale=1 --zipf=0.99 --measure=rwr
//   ./bench/bench_service_load --scale=0.05 --deadline-us=0   # certified
//
// Everything — IO thread, 4 workers, client threads — shares whatever
// cores the machine has; this is deliberately the worst honest setup for
// a latency SLO, which is exactly what the admission-control and anytime-
// deadline machinery is for.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "service/client.h"
#include "service/server.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

flos::Result<flos::Measure> ParseMeasure(const std::string& name) {
  if (name == "php") return flos::Measure::kPhp;
  if (name == "ei") return flos::Measure::kEi;
  if (name == "dht") return flos::Measure::kDht;
  if (name == "tht") return flos::Measure::kTht;
  if (name == "rwr") return flos::Measure::kRwr;
  return flos::Status::InvalidArgument(
      "unknown measure '" + name + "' (expected php|ei|dht|tht|rwr)");
}

/// Zipf(s) sampler over [0, n): node id r with probability ∝ 1/(r+1)^s.
/// One shared read-only CDF, inverse-transform per draw; exact, and the
/// O(n) build cost is paid once before the clock starts.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s) : cdf_(n) {
    double total = 0;
    for (uint64_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
  }

  flos::NodeId Draw(flos::Rng* rng) const {
    const double u = rng->NextDouble() * cdf_.back();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<flos::NodeId>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

struct ClientStats {
  uint64_t ok = 0;
  uint64_t certified = 0;
  uint64_t cache_hits = 0;
  uint64_t subgraph_hits = 0;
  uint64_t overloaded = 0;
  uint64_t errors = 0;
  // Raw per-outcome latency samples (exact percentiles are computed over
  // the merged vectors after the run): certified vs anytime-uncertified
  // service times, plus admission-control rejections in their own track.
  // certified_cold is the subset of certified that MISSED the result
  // cache — the queries that actually ran a proof. Under Zipf skew the
  // merged certified track is dominated by microsecond cache hits, which
  // buries the latency the search machinery (parallel sweeps, warm
  // subgraphs) is responsible for; the cold track is that latency.
  std::vector<uint64_t> certified_us;
  std::vector<uint64_t> certified_cold_us;
  std::vector<uint64_t> uncertified_us;
  std::vector<uint64_t> overloaded_us;
};

void RunClient(const std::string& host, uint16_t port, uint64_t seed,
               const flos::Graph& graph, const flos::QueryRequest& base,
               const ZipfSampler* zipf, const std::atomic<bool>& stop,
               ClientStats* stats) {
  auto client = flos::ServiceClient::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "client connect: %s\n",
                 client.status().ToString().c_str());
    ++stats->errors;
    return;
  }
  flos::Rng rng(seed);
  while (!stop.load(std::memory_order_relaxed)) {
    flos::QueryRequest request = base;
    do {
      request.query_node =
          zipf != nullptr
              ? zipf->Draw(&rng)
              : static_cast<flos::NodeId>(rng.NextBounded(graph.NumNodes()));
    } while (graph.Degree(request.query_node) == 0);
    const auto start = std::chrono::steady_clock::now();
    const auto resp = client->Query(request);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    const uint64_t micros = elapsed > 0 ? static_cast<uint64_t>(elapsed) : 0;
    if (!resp.ok()) {
      ++stats->errors;
      return;  // transport broken; stop this connection
    }
    if (resp->status == flos::StatusCode::kOk) {
      ++stats->ok;
      if (resp->certified) {
        ++stats->certified;
        stats->certified_us.push_back(micros);
        if (!resp->cache_hit) stats->certified_cold_us.push_back(micros);
      } else {
        stats->uncertified_us.push_back(micros);
      }
      if (resp->cache_hit) ++stats->cache_hits;
      if (resp->subgraph_hit) ++stats->subgraph_hits;
    } else if (resp->status == flos::StatusCode::kOverloaded) {
      ++stats->overloaded;
      stats->overloaded_us.push_back(micros);
    } else {
      ++stats->errors;
    }
  }
}

/// Exact nearest-rank percentile over raw samples; the vector must be
/// sorted. Empty track -> 0 (nothing to report).
uint64_t Percentile(const std::vector<uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(rank > 0 ? rank - 1 : 0, sorted.size() - 1)];
}

int Run(int argc, char** argv) {
  flos::FlagParser flags;
  double scale = 1.0;
  int64_t workers = 4;
  int64_t connections = 4;
  int64_t duration_s = 5;
  int64_t deadline_us = 50;
  int64_t k = 10;
  int64_t max_queue = 256;
  int64_t query_cache = 4096;
  int64_t subgraph_cache = 64;
  int64_t sweep_threads = 1;
  double zipf = 0.0;
  std::string measure_name = "php";
  int64_t seed = 42;
  std::string json_path = "BENCH_service.json";
  flags.AddDouble("scale", &scale,
                  "fraction of the 1M-node RAND preset to generate");
  flags.AddInt("workers", &workers, "server query worker threads");
  flags.AddInt("connections", &connections, "closed-loop client threads");
  flags.AddInt("duration-s", &duration_s, "measured run length");
  flags.AddInt("deadline-us", &deadline_us,
               "per-query anytime budget (0 = run every query to proof)");
  flags.AddInt("k", &k, "neighbors per query");
  flags.AddInt("max-queue", &max_queue, "server admission-control cap");
  flags.AddInt("query-cache", &query_cache,
               "server certified-result cache entries (0 = disable)");
  flags.AddInt("subgraph-cache", &subgraph_cache,
               "server warm expanded-subgraph cache entries (0 = disable)");
  flags.AddInt("sweep-threads", &sweep_threads,
               "server threads per query for parallel sweeps (1 = serial)");
  flags.AddDouble("zipf", &zipf,
                  "query-node skew exponent (0 = uniform; 0.99 = web-like)");
  flags.AddString("measure", &measure_name, "php|ei|dht|tht|rwr");
  flags.AddInt("seed", &seed, "graph + query sampling seed");
  flags.AddString("json", &json_path, "output file ('' = skip)");
  if (const flos::Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  const auto measure = ParseMeasure(measure_name);
  if (!measure.ok()) {
    std::fprintf(stderr, "%s\n", measure.status().ToString().c_str());
    return 1;
  }

  flos::bench::SynthSpec spec;
  spec.nodes = static_cast<uint64_t>(1000000.0 * scale);
  spec.edges = spec.nodes * 5;
  spec.rmat = false;
  spec.label = "RAND n=" + std::to_string(spec.nodes);
  const flos::Graph graph = flos::bench::CheckOk(
      flos::bench::BuildSynth(spec, static_cast<uint64_t>(seed)));
  flos::bench::PrintGraphLine(spec.label, graph);

  std::unique_ptr<ZipfSampler> zipf_sampler;
  if (zipf > 0) {
    zipf_sampler = std::make_unique<ZipfSampler>(graph.NumNodes(), zipf);
  }

  flos::ServerOptions options;
  options.num_workers = static_cast<int>(workers);
  options.max_queue_depth = static_cast<size_t>(max_queue);
  options.query_cache_capacity =
      query_cache > 0 ? static_cast<size_t>(query_cache) : 0;
  options.subgraph_cache_capacity =
      subgraph_cache > 0 ? static_cast<size_t>(subgraph_cache) : 0;
  options.sweep_threads = static_cast<int>(sweep_threads);
  flos::ServiceServer server(&graph, options);
  flos::bench::CheckOk(server.Start());

  flos::QueryRequest base;
  base.measure = *measure;
  base.k = static_cast<uint32_t>(k);
  base.deadline_us = static_cast<uint64_t>(deadline_us);

  std::atomic<bool> stop{false};
  std::vector<ClientStats> stats(static_cast<size_t>(connections));
  std::vector<std::thread> clients;
  clients.reserve(stats.size());
  for (size_t i = 0; i < stats.size(); ++i) {
    clients.emplace_back(RunClient, options.host, server.port(),
                         static_cast<uint64_t>(seed) + 1000 + i,
                         std::cref(graph), std::cref(base),
                         zipf_sampler.get(), std::cref(stop), &stats[i]);
  }
  const auto bench_start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::seconds(duration_s));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();

  std::vector<uint64_t> certified_us, certified_cold_us, uncertified_us,
      overloaded_us, all_us;
  uint64_t ok = 0, certified = 0, cache_hits = 0, subgraph_hits = 0,
           overloaded = 0, errors = 0;
  for (const ClientStats& s : stats) {
    ok += s.ok;
    certified += s.certified;
    cache_hits += s.cache_hits;
    subgraph_hits += s.subgraph_hits;
    overloaded += s.overloaded;
    errors += s.errors;
    certified_us.insert(certified_us.end(), s.certified_us.begin(),
                        s.certified_us.end());
    certified_cold_us.insert(certified_cold_us.end(),
                             s.certified_cold_us.begin(),
                             s.certified_cold_us.end());
    uncertified_us.insert(uncertified_us.end(), s.uncertified_us.begin(),
                          s.uncertified_us.end());
    overloaded_us.insert(overloaded_us.end(), s.overloaded_us.begin(),
                         s.overloaded_us.end());
  }
  all_us = certified_us;
  all_us.insert(all_us.end(), uncertified_us.begin(), uncertified_us.end());
  std::sort(certified_us.begin(), certified_us.end());
  std::sort(certified_cold_us.begin(), certified_cold_us.end());
  std::sort(uncertified_us.begin(), uncertified_us.end());
  std::sort(overloaded_us.begin(), overloaded_us.end());
  std::sort(all_us.begin(), all_us.end());
  const uint64_t server_cache_hits = server.metrics().cache_hits.value();
  const uint64_t server_subgraph_hits =
      server.metrics().subgraph_hits.value();
  const uint64_t server_subgraph_misses =
      server.metrics().subgraph_misses.value();
  const int64_t peak_queue = server.metrics().queue_depth.max_value();
  server.Shutdown();

  const uint64_t answered = ok + overloaded;
  const double qps =
      elapsed_s > 0 ? static_cast<double>(answered) / elapsed_s : 0;
  const double certified_ratio =
      ok > 0 ? static_cast<double>(certified) / static_cast<double>(ok) : 0;

  std::printf(
      "%lld connections x %.1fs, %s deadline %lld us, k=%lld, %lld workers, "
      "zipf %.2f, cache %lld\n",
      static_cast<long long>(connections), elapsed_s, measure_name.c_str(),
      static_cast<long long>(deadline_us), static_cast<long long>(k),
      static_cast<long long>(workers), zipf,
      static_cast<long long>(query_cache));
  std::printf(
      "qps %.1f  ok %llu  certified %.3f  cache_hits %llu  subgraph_hits "
      "%llu  overloaded %llu  errors %llu\n",
      qps, static_cast<unsigned long long>(ok), certified_ratio,
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(subgraph_hits),
      static_cast<unsigned long long>(overloaded),
      static_cast<unsigned long long>(errors));
  const auto print_track = [](const char* name,
                              const std::vector<uint64_t>& sorted) {
    std::printf("%-12s count %zu  p50 %llu us  p95 %llu us  p99 %llu us\n",
                name, sorted.size(),
                static_cast<unsigned long long>(Percentile(sorted, 0.50)),
                static_cast<unsigned long long>(Percentile(sorted, 0.95)),
                static_cast<unsigned long long>(Percentile(sorted, 0.99)));
  };
  print_track("all_ok", all_us);
  print_track("certified", certified_us);
  print_track("certified_cold", certified_cold_us);
  print_track("uncertified", uncertified_us);
  print_track("overloaded", overloaded_us);
  std::printf("peak queue depth %lld\n", static_cast<long long>(peak_queue));

  if (errors > 0) {
    std::fprintf(stderr, "bench saw %llu errors\n",
                 static_cast<unsigned long long>(errors));
    return 1;
  }
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    const int host_cpus = flos::ThreadPool::DefaultNumThreads();
    std::string host_note;
    if (host_cpus < workers + connections) {
      host_note =
          "    \"note\": \"host has fewer cores than workers + connections; "
          "tail latencies and certified_ratio price scheduler "
          "oversubscription on this box, not the engine -- multi-core "
          "runs are the comparable baseline\",\n";
    }
    std::fprintf(
        f,
        "{\n"
        "  \"service_load\": {\n"
        "    \"_comment\": \"recorded config changed in PR 6: 5 ms anytime "
        "deadline and --zipf=0.99 key skew (was a 50 us deadline over "
        "uniform keys), so QPS/percentile trajectories before and after "
        "are not comparable; since PR 7 the percentiles are exact order "
        "statistics over raw client-side samples, not histogram bucket "
        "upper bounds; certified_cold_* (PR 8) covers certified queries "
        "that missed the result cache, i.e. searches that ran a proof; "
        "subgraph_hits stays 0 under this workload by construction -- with "
        "a fixed k every repeated seed hits the result cache first, so the "
        "warm-subgraph tier only fires on mixed-k or post-eviction repeats "
        "(tests/service_test.cc exercises that path)\",\n"
        "    \"graph\": \"%s\",\n"
        "    \"measure\": \"%s\",\n"
        "    \"workers\": %lld,\n"
        "    \"connections\": %lld,\n"
        "    \"deadline_us\": %lld,\n"
        "    \"k\": %lld,\n"
        "    \"zipf\": %.2f,\n"
        "    \"query_cache_entries\": %lld,\n"
        "    \"subgraph_cache_entries\": %lld,\n"
        "    \"sweep_threads\": %lld,\n"
        "    \"host_cpus\": %d,\n"
        "%s"
        "    \"duration_s\": %.2f,\n"
        "    \"qps\": %.1f,\n"
        "    \"p50_us\": %llu,\n"
        "    \"p95_us\": %llu,\n"
        "    \"p99_us\": %llu,\n"
        "    \"certified_p50_us\": %llu,\n"
        "    \"certified_p99_us\": %llu,\n"
        "    \"certified_cold_count\": %zu,\n"
        "    \"certified_cold_p50_us\": %llu,\n"
        "    \"certified_cold_p95_us\": %llu,\n"
        "    \"certified_cold_p99_us\": %llu,\n"
        "    \"uncertified_p50_us\": %llu,\n"
        "    \"uncertified_p99_us\": %llu,\n"
        "    \"overloaded_p50_us\": %llu,\n"
        "    \"queries_ok\": %llu,\n"
        "    \"certified_ratio\": %.4f,\n"
        "    \"cache_hits\": %llu,\n"
        "    \"server_cache_hits\": %llu,\n"
        "    \"subgraph_hits\": %llu,\n"
        "    \"subgraph_misses\": %llu,\n"
        "    \"overload_rejects\": %llu,\n"
        "    \"peak_queue_depth\": %lld\n"
        "  }\n"
        "}\n",
        spec.label.c_str(), measure_name.c_str(),
        static_cast<long long>(workers), static_cast<long long>(connections),
        static_cast<long long>(deadline_us), static_cast<long long>(k), zipf,
        static_cast<long long>(query_cache),
        static_cast<long long>(subgraph_cache),
        static_cast<long long>(sweep_threads), host_cpus, host_note.c_str(),
        elapsed_s, qps,
        static_cast<unsigned long long>(Percentile(all_us, 0.50)),
        static_cast<unsigned long long>(Percentile(all_us, 0.95)),
        static_cast<unsigned long long>(Percentile(all_us, 0.99)),
        static_cast<unsigned long long>(Percentile(certified_us, 0.50)),
        static_cast<unsigned long long>(Percentile(certified_us, 0.99)),
        certified_cold_us.size(),
        static_cast<unsigned long long>(Percentile(certified_cold_us, 0.50)),
        static_cast<unsigned long long>(Percentile(certified_cold_us, 0.95)),
        static_cast<unsigned long long>(Percentile(certified_cold_us, 0.99)),
        static_cast<unsigned long long>(Percentile(uncertified_us, 0.50)),
        static_cast<unsigned long long>(Percentile(uncertified_us, 0.99)),
        static_cast<unsigned long long>(Percentile(overloaded_us, 0.50)),
        static_cast<unsigned long long>(ok), certified_ratio,
        static_cast<unsigned long long>(cache_hits),
        static_cast<unsigned long long>(server_cache_hits),
        static_cast<unsigned long long>(server_subgraph_hits),
        static_cast<unsigned long long>(server_subgraph_misses),
        static_cast<unsigned long long>(overloaded),
        static_cast<long long>(peak_queue));
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
