// Closed-loop load generator for the k-NN query service.
//
// Starts an in-process ServiceServer over the paper's RAND synthetic
// (Erdős–Rényi, 1M nodes / 5M edges at --scale=1), then drives it from
// --connections client threads, each running a closed loop of anytime
// queries (--deadline-us budget) against random degree>=1 nodes. Client-
// side latencies feed a LatencyHistogram; the run reports QPS and
// p50/p95/p99 and writes them to --json (BENCH_service.json) next to the
// server's own metrics (certified ratio, overload rejects, peak queue
// depth).
//
//   ./bench/bench_service_load --scale=1 --duration-s=5
//   ./bench/bench_service_load --scale=0.05 --deadline-us=0   # certified
//
// Everything — IO thread, 4 workers, client threads — shares whatever
// cores the machine has; this is deliberately the worst honest setup for
// a latency SLO, which is exactly what the admission-control and anytime-
// deadline machinery is for.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "service/client.h"
#include "service/metrics.h"
#include "service/server.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {

struct ClientStats {
  uint64_t ok = 0;
  uint64_t certified = 0;
  uint64_t overloaded = 0;
  uint64_t errors = 0;
  flos::LatencyHistogram latency_us;
};

void RunClient(const std::string& host, uint16_t port, uint64_t seed,
               const flos::Graph& graph, const flos::QueryRequest& base,
               const std::atomic<bool>& stop, ClientStats* stats) {
  auto client = flos::ServiceClient::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "client connect: %s\n",
                 client.status().ToString().c_str());
    ++stats->errors;
    return;
  }
  flos::Rng rng(seed);
  while (!stop.load(std::memory_order_relaxed)) {
    flos::QueryRequest request = base;
    do {
      request.query_node =
          static_cast<flos::NodeId>(rng.NextBounded(graph.NumNodes()));
    } while (graph.Degree(request.query_node) == 0);
    const auto start = std::chrono::steady_clock::now();
    const auto resp = client->Query(request);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    stats->latency_us.Record(
        elapsed > 0 ? static_cast<uint64_t>(elapsed) : 0);
    if (!resp.ok()) {
      ++stats->errors;
      return;  // transport broken; stop this connection
    }
    if (resp->status == flos::StatusCode::kOk) {
      ++stats->ok;
      if (resp->certified) ++stats->certified;
    } else if (resp->status == flos::StatusCode::kOverloaded) {
      ++stats->overloaded;
    } else {
      ++stats->errors;
    }
  }
}

int Run(int argc, char** argv) {
  flos::FlagParser flags;
  double scale = 1.0;
  int64_t workers = 4;
  int64_t connections = 4;
  int64_t duration_s = 5;
  int64_t deadline_us = 50;
  int64_t k = 10;
  int64_t max_queue = 256;
  int64_t seed = 42;
  std::string json_path = "BENCH_service.json";
  flags.AddDouble("scale", &scale,
                  "fraction of the 1M-node RAND preset to generate");
  flags.AddInt("workers", &workers, "server query worker threads");
  flags.AddInt("connections", &connections, "closed-loop client threads");
  flags.AddInt("duration-s", &duration_s, "measured run length");
  flags.AddInt("deadline-us", &deadline_us,
               "per-query anytime budget (0 = run every query to proof)");
  flags.AddInt("k", &k, "neighbors per query");
  flags.AddInt("max-queue", &max_queue, "server admission-control cap");
  flags.AddInt("seed", &seed, "graph + query sampling seed");
  flags.AddString("json", &json_path, "output file ('' = skip)");
  if (const flos::Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }

  flos::bench::SynthSpec spec;
  spec.nodes = static_cast<uint64_t>(1000000.0 * scale);
  spec.edges = spec.nodes * 5;
  spec.rmat = false;
  spec.label = "RAND n=" + std::to_string(spec.nodes);
  const flos::Graph graph = flos::bench::CheckOk(
      flos::bench::BuildSynth(spec, static_cast<uint64_t>(seed)));
  flos::bench::PrintGraphLine(spec.label, graph);

  flos::ServerOptions options;
  options.num_workers = static_cast<int>(workers);
  options.max_queue_depth = static_cast<size_t>(max_queue);
  flos::ServiceServer server(&graph, options);
  flos::bench::CheckOk(server.Start());

  flos::QueryRequest base;
  base.measure = flos::Measure::kPhp;
  base.k = static_cast<uint32_t>(k);
  base.deadline_us = static_cast<uint64_t>(deadline_us);

  std::atomic<bool> stop{false};
  std::vector<ClientStats> stats(static_cast<size_t>(connections));
  std::vector<std::thread> clients;
  clients.reserve(stats.size());
  for (size_t i = 0; i < stats.size(); ++i) {
    clients.emplace_back(RunClient, options.host, server.port(),
                         static_cast<uint64_t>(seed) + 1000 + i,
                         std::cref(graph), std::cref(base), std::cref(stop),
                         &stats[i]);
  }
  const auto bench_start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::seconds(duration_s));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();
  server.Shutdown();

  flos::LatencyHistogram merged;
  uint64_t ok = 0, certified = 0, overloaded = 0, errors = 0;
  for (const ClientStats& s : stats) {
    ok += s.ok;
    certified += s.certified;
    overloaded += s.overloaded;
    errors += s.errors;
    const auto buckets = s.latency_us.Snapshot();
    const auto& bounds = flos::LatencyHistogram::BucketBounds();
    for (size_t b = 0; b < buckets.size(); ++b) {
      // Replay bucket counts at their upper bound: percentile upper bounds
      // merge exactly, which is all this report uses.
      const uint64_t rep =
          b < bounds.size() ? bounds[b] : bounds.back() + 1;
      for (uint64_t n = 0; n < buckets[b]; ++n) merged.Record(rep);
    }
  }
  const uint64_t answered = ok + overloaded;
  const double qps =
      elapsed_s > 0 ? static_cast<double>(answered) / elapsed_s : 0;
  const double certified_ratio =
      ok > 0 ? static_cast<double>(certified) / static_cast<double>(ok) : 0;
  const uint64_t p50 = merged.PercentileUpperBound(0.50);
  const uint64_t p95 = merged.PercentileUpperBound(0.95);
  const uint64_t p99 = merged.PercentileUpperBound(0.99);
  const int64_t peak_queue = server.metrics().queue_depth.max_value();

  std::printf(
      "%lld connections x %.1fs, deadline %lld us, k=%lld, %lld workers\n",
      static_cast<long long>(connections), elapsed_s,
      static_cast<long long>(deadline_us), static_cast<long long>(k),
      static_cast<long long>(workers));
  std::printf(
      "qps %.1f  ok %llu  certified %.3f  overloaded %llu  errors %llu\n",
      qps, static_cast<unsigned long long>(ok), certified_ratio,
      static_cast<unsigned long long>(overloaded),
      static_cast<unsigned long long>(errors));
  std::printf("latency p50 <= %llu us, p95 <= %llu us, p99 <= %llu us; "
              "peak queue depth %lld\n",
              static_cast<unsigned long long>(p50),
              static_cast<unsigned long long>(p95),
              static_cast<unsigned long long>(p99),
              static_cast<long long>(peak_queue));

  if (errors > 0) {
    std::fprintf(stderr, "bench saw %llu errors\n",
                 static_cast<unsigned long long>(errors));
    return 1;
  }
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"service_load\": {\n"
        "    \"graph\": \"%s\",\n"
        "    \"workers\": %lld,\n"
        "    \"connections\": %lld,\n"
        "    \"deadline_us\": %lld,\n"
        "    \"k\": %lld,\n"
        "    \"duration_s\": %.2f,\n"
        "    \"qps\": %.1f,\n"
        "    \"p50_us\": %llu,\n"
        "    \"p95_us\": %llu,\n"
        "    \"p99_us\": %llu,\n"
        "    \"queries_ok\": %llu,\n"
        "    \"certified_ratio\": %.4f,\n"
        "    \"overload_rejects\": %llu,\n"
        "    \"peak_queue_depth\": %lld\n"
        "  }\n"
        "}\n",
        spec.label.c_str(), static_cast<long long>(workers),
        static_cast<long long>(connections),
        static_cast<long long>(deadline_us), static_cast<long long>(k),
        elapsed_s, qps, static_cast<unsigned long long>(p50),
        static_cast<unsigned long long>(p95),
        static_cast<unsigned long long>(p99),
        static_cast<unsigned long long>(ok), certified_ratio,
        static_cast<unsigned long long>(overloaded),
        static_cast<long long>(peak_queue));
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
