// Closed-loop load generator for filtered (label-constrained) queries.
//
// Starts an in-process ServiceServer over the paper's RAND synthetic
// (Erdős–Rényi, 1M nodes / 5M edges at --scale=1) with a Zipf-distributed
// label universe, then sweeps all three predicate types (equality,
// containment, overlap) across target selectivities (~0.1%, 1%, 10%, 50%
// of nodes matching). Predicates are CHOSEN BY MEASUREMENT: candidate
// predicates are counted against the actual label store and the one whose
// matching-node fraction lands closest to each target is used, with the
// achieved selectivity reported next to the target — a Zipf universe
// cannot hit round numbers exactly, and pretending otherwise would make
// the rows incomparable. Each combination runs TWO closed loops of
// --connections client threads for --duration-s each: a to-proof pass
// (deadline 0; its QPS and exact order-statistic latency percentiles over
// raw client-side samples price certified filtered search itself) and an
// anytime pass under --anytime-deadline-us (its certified ratio is the
// fraction of proofs that finish inside the budget). Query nodes are
// uniform (no key skew) and both server caches are disabled, so every row
// prices the search — not the cache, which would otherwise replay the
// to-proof pass's certified answers into the anytime pass. An unfiltered
// baseline row runs first under the identical setup. Everything is
// written to --json (BENCH_filtered.json).
//
//   ./bench/bench_filtered_load --scale=1 --duration-s=3
//   ./bench/bench_filtered_load --scale=0.05 --anytime-deadline-us=5000
//   ./bench/bench_filtered_load --measure=rwr --zipf-labels=0.8

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "core/predicate.h"
#include "graph/labels.h"
#include "service/client.h"
#include "service/server.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

flos::Result<flos::Measure> ParseMeasure(const std::string& name) {
  if (name == "php") return flos::Measure::kPhp;
  if (name == "ei") return flos::Measure::kEi;
  if (name == "dht") return flos::Measure::kDht;
  if (name == "tht") return flos::Measure::kTht;
  if (name == "rwr") return flos::Measure::kRwr;
  return flos::Status::InvalidArgument(
      "unknown measure '" + name + "' (expected php|ei|dht|tht|rwr)");
}

/// One benchmarked (predicate type, target selectivity) combination.
struct Combo {
  std::string name;             ///< row label, e.g. "overlap@1%"
  flos::LabelPredicate predicate;  ///< empty = unfiltered baseline
  double target_selectivity = 0;
  uint64_t matching_nodes = 0;  ///< exact count over the label store
};

struct ClientStats {
  uint64_t ok = 0;
  uint64_t certified = 0;
  uint64_t overloaded = 0;
  uint64_t errors = 0;
  std::vector<uint64_t> latency_us;  ///< raw samples, ok answers only
};

void RunClient(const std::string& host, uint16_t port, uint64_t seed,
               const flos::Graph& graph, const flos::QueryRequest& base,
               const std::atomic<bool>& stop, ClientStats* stats) {
  auto client = flos::ServiceClient::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "client connect: %s\n",
                 client.status().ToString().c_str());
    ++stats->errors;
    return;
  }
  flos::Rng rng(seed);
  while (!stop.load(std::memory_order_relaxed)) {
    flos::QueryRequest request = base;
    do {
      request.query_node =
          static_cast<flos::NodeId>(rng.NextBounded(graph.NumNodes()));
    } while (graph.Degree(request.query_node) == 0);
    const auto start = std::chrono::steady_clock::now();
    const auto resp = client->Query(request);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    const uint64_t micros = elapsed > 0 ? static_cast<uint64_t>(elapsed) : 0;
    if (!resp.ok()) {
      ++stats->errors;
      return;  // transport broken; stop this connection
    }
    if (resp->status == flos::StatusCode::kOk) {
      ++stats->ok;
      if (resp->certified) ++stats->certified;
      stats->latency_us.push_back(micros);
    } else if (resp->status == flos::StatusCode::kOverloaded) {
      ++stats->overloaded;
    } else {
      ++stats->errors;
    }
  }
}

/// Exact nearest-rank percentile over raw samples; the vector must be
/// sorted. Empty track -> 0 (nothing to report).
uint64_t Percentile(const std::vector<uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(rank > 0 ? rank - 1 : 0, sorted.size() - 1)];
}

/// Exact matching-node count of `predicate` over the whole store.
uint64_t CountMatches(const flos::LabelStore& labels,
                      const flos::LabelPredicate& predicate) {
  uint64_t matches = 0;
  for (uint64_t v = 0; v < labels.NumNodes(); ++v) {
    if (predicate.Matches(labels.Labels(static_cast<flos::NodeId>(v)))) {
      ++matches;
    }
  }
  return matches;
}

/// From `candidates` (predicate, exact count pairs) picks, for each target
/// selectivity, the candidate whose achieved fraction is closest.
std::vector<Combo> PickClosest(
    const std::string& type_name,
    const std::vector<std::pair<flos::LabelPredicate, uint64_t>>& candidates,
    const std::vector<double>& targets, uint64_t num_nodes) {
  std::vector<Combo> out;
  for (const double target : targets) {
    const std::pair<flos::LabelPredicate, uint64_t>* best = nullptr;
    double best_gap = 0;
    for (const auto& cand : candidates) {
      const double fraction =
          static_cast<double>(cand.second) / static_cast<double>(num_nodes);
      // Relative gap in log space: 0.05% is "close" to a 0.1% target in a
      // way 5% is not, which an absolute gap would get backwards.
      const double gap =
          std::fabs(std::log((fraction + 1e-9) / target));
      if (best == nullptr || gap < best_gap) {
        best = &cand;
        best_gap = gap;
      }
    }
    // A type whose candidate pool cannot reach a target converges on the
    // same predicate again (equality tops out at its most frequent label
    // set). Benchmarking the identical predicate twice says nothing new,
    // so the unreachable target's row is dropped.
    if (!out.empty() && out.back().predicate == best->first) continue;
    Combo combo;
    char label[64];
    std::snprintf(label, sizeof(label), "%s@%g%%", type_name.c_str(),
                  target * 100.0);
    combo.name = label;
    combo.predicate = best->first;
    combo.target_selectivity = target;
    combo.matching_nodes = best->second;
    out.push_back(combo);
  }
  return out;
}

/// Builds the benchmarked predicate list: for each type, the candidate
/// predicate closest to each target selectivity, all counts exact.
std::vector<Combo> BuildCombos(const flos::LabelStore& labels,
                               const std::vector<double>& targets) {
  const uint64_t n = labels.NumNodes();

  // Label ids sorted by descending popularity (Zipf generation makes this
  // id order, but measure rather than assume).
  std::vector<flos::LabelId> by_count(labels.NumLabels());
  for (uint32_t l = 0; l < labels.NumLabels(); ++l) by_count[l] = l;
  std::sort(by_count.begin(), by_count.end(),
            [&labels](flos::LabelId a, flos::LabelId b) {
              return labels.LabelNodeCount(a) > labels.LabelNodeCount(b);
            });

  // Overlap / containment candidates: every single label (overlap {l} and
  // contain {l} match the same nodes — "has label l" — so the single-label
  // counts are shared), plus multi-label variants that only each type can
  // express: overlap unions of popular labels push selectivity UP,
  // containment intersections of popular labels push it DOWN.
  std::vector<std::pair<flos::LabelPredicate, uint64_t>> overlap_cands;
  std::vector<std::pair<flos::LabelPredicate, uint64_t>> contain_cands;
  for (uint32_t l = 0; l < labels.NumLabels(); ++l) {
    const uint64_t count = labels.LabelNodeCount(l);
    auto ov = flos::LabelPredicate::Make(flos::PredicateType::kOverlap, {l});
    auto ct = flos::LabelPredicate::Make(flos::PredicateType::kContainment,
                                         {l});
    flos::bench::CheckOk(ov.status());
    flos::bench::CheckOk(ct.status());
    overlap_cands.emplace_back(*std::move(ov), count);
    contain_cands.emplace_back(*std::move(ct), count);
  }
  const size_t top = std::min<size_t>(8, by_count.size());
  for (size_t i = 0; i < top; ++i) {
    for (size_t j = i + 1; j < top; ++j) {
      auto ct = flos::LabelPredicate::Make(
          flos::PredicateType::kContainment, {by_count[i], by_count[j]});
      flos::bench::CheckOk(ct.status());
      contain_cands.emplace_back(*ct, CountMatches(labels, *ct));
      auto ov = flos::LabelPredicate::Make(
          flos::PredicateType::kOverlap, {by_count[i], by_count[j]});
      flos::bench::CheckOk(ov.status());
      overlap_cands.emplace_back(*ov, CountMatches(labels, *ov));
    }
  }

  // Equality candidates: the observed exact label sets themselves, with
  // their frequencies — equality can only match sets that actually occur.
  std::map<std::vector<flos::LabelId>, uint64_t> set_counts;
  for (uint64_t v = 0; v < n; ++v) {
    const auto span = labels.Labels(static_cast<flos::NodeId>(v));
    ++set_counts[std::vector<flos::LabelId>(span.begin(), span.end())];
  }
  std::vector<std::pair<flos::LabelPredicate, uint64_t>> eq_cands;
  for (const auto& [set, count] : set_counts) {
    if (set.empty()) continue;  // kEquality needs at least one label
    auto eq = flos::LabelPredicate::Make(flos::PredicateType::kEquality,
                                         std::vector<flos::LabelId>(set));
    flos::bench::CheckOk(eq.status());
    eq_cands.emplace_back(*std::move(eq), count);
  }

  std::vector<Combo> combos;
  Combo baseline;
  baseline.name = "unfiltered";
  baseline.matching_nodes = n;
  baseline.target_selectivity = 1.0;
  combos.push_back(baseline);
  for (Combo& c : PickClosest("eq", eq_cands, targets, n)) {
    combos.push_back(std::move(c));
  }
  for (Combo& c : PickClosest("contain", contain_cands, targets, n)) {
    combos.push_back(std::move(c));
  }
  for (Combo& c : PickClosest("overlap", overlap_cands, targets, n)) {
    combos.push_back(std::move(c));
  }
  return combos;
}

/// Result row of one combo's closed-loop run.
struct RunResult {
  uint64_t ok = 0;
  uint64_t overloaded = 0;
  uint64_t errors = 0;
  double qps = 0;
  double certified_ratio = 0;
  uint64_t p50_us = 0;
  uint64_t p95_us = 0;
  uint64_t p99_us = 0;
};

RunResult RunCombo(const flos::Graph& graph, const std::string& host,
                   uint16_t port, const flos::QueryRequest& base,
                   int64_t connections, int64_t duration_s, uint64_t seed) {
  std::atomic<bool> stop{false};
  std::vector<ClientStats> stats(static_cast<size_t>(connections));
  std::vector<std::thread> clients;
  clients.reserve(stats.size());
  for (size_t i = 0; i < stats.size(); ++i) {
    clients.emplace_back(RunClient, host, port, seed + 1000 + i,
                         std::cref(graph), std::cref(base), std::cref(stop),
                         &stats[i]);
  }
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::seconds(duration_s));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  RunResult out;
  uint64_t certified = 0;
  std::vector<uint64_t> latency_us;
  for (const ClientStats& s : stats) {
    out.ok += s.ok;
    certified += s.certified;
    out.overloaded += s.overloaded;
    out.errors += s.errors;
    latency_us.insert(latency_us.end(), s.latency_us.begin(),
                      s.latency_us.end());
  }
  std::sort(latency_us.begin(), latency_us.end());
  out.qps = elapsed_s > 0
                ? static_cast<double>(out.ok + out.overloaded) / elapsed_s
                : 0;
  out.certified_ratio =
      out.ok > 0
          ? static_cast<double>(certified) / static_cast<double>(out.ok)
          : 0;
  out.p50_us = Percentile(latency_us, 0.50);
  out.p95_us = Percentile(latency_us, 0.95);
  out.p99_us = Percentile(latency_us, 0.99);
  return out;
}

int Run(int argc, char** argv) {
  flos::FlagParser flags;
  double scale = 1.0;
  int64_t workers = 4;
  int64_t connections = 4;
  int64_t duration_s = 3;
  int64_t anytime_us = 50000;
  int64_t k = 10;
  int64_t num_labels = 500;
  int64_t labels_per_node = 3;
  double zipf_labels = 1.0;
  std::string measure_name = "php";
  int64_t seed = 42;
  std::string json_path = "BENCH_filtered.json";
  flags.AddDouble("scale", &scale,
                  "fraction of the 1M-node RAND preset to generate");
  flags.AddInt("workers", &workers, "server query worker threads");
  flags.AddInt("connections", &connections, "closed-loop client threads");
  flags.AddInt("duration-s", &duration_s,
               "measured run length per combo AND mode");
  flags.AddInt("anytime-deadline-us", &anytime_us,
               "per-query budget of the anytime pass (0 = skip the pass)");
  flags.AddInt("k", &k, "neighbors per query");
  flags.AddInt("num-labels", &num_labels, "label universe size");
  flags.AddInt("labels-per-node", &labels_per_node, "labels per node");
  flags.AddDouble("zipf-labels", &zipf_labels,
                  "label popularity skew exponent");
  flags.AddString("measure", &measure_name, "php|ei|dht|tht|rwr");
  flags.AddInt("seed", &seed, "graph + label + query sampling seed");
  flags.AddString("json", &json_path, "output file ('' = skip)");
  if (const flos::Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  const auto measure = ParseMeasure(measure_name);
  if (!measure.ok()) {
    std::fprintf(stderr, "%s\n", measure.status().ToString().c_str());
    return 1;
  }

  flos::bench::SynthSpec spec;
  spec.nodes = static_cast<uint64_t>(1000000.0 * scale);
  spec.edges = spec.nodes * 5;
  spec.rmat = false;
  spec.label = "RAND n=" + std::to_string(spec.nodes);
  const flos::Graph graph = flos::bench::CheckOk(
      flos::bench::BuildSynth(spec, static_cast<uint64_t>(seed)));
  flos::bench::PrintGraphLine(spec.label, graph);

  flos::LabelGenOptions gen;
  gen.num_nodes = graph.NumNodes();
  gen.num_labels = static_cast<uint32_t>(num_labels);
  gen.labels_per_node = static_cast<uint32_t>(labels_per_node);
  gen.zipf_exponent = zipf_labels;
  gen.seed = static_cast<uint64_t>(seed) + 7;
  const flos::LabelStore labels =
      flos::bench::CheckOk(flos::GenerateZipfLabels(gen));
  std::printf("# labels: %u universe, %lld per node, zipf %.2f\n",
              static_cast<unsigned>(labels.NumLabels()),
              static_cast<long long>(labels_per_node), zipf_labels);

  const std::vector<double> targets = {0.001, 0.01, 0.1, 0.5};
  const std::vector<Combo> combos = BuildCombos(labels, targets);

  flos::ServerOptions options;
  options.num_workers = static_cast<int>(workers);
  options.labels = &labels;
  // Both caches off: query nodes are uniform (no repeat head for the
  // result cache to serve) and the same predicate runs in both modes —
  // a cached certified answer from the to-proof pass would masquerade as
  // an instant certification in the anytime pass.
  options.query_cache_capacity = 0;
  options.subgraph_cache_capacity = 0;
  flos::ServiceServer server(&graph, options);
  flos::bench::CheckOk(server.Start());

  std::printf(
      "%lld connections x %llds per combo and mode, %s, k=%lld, "
      "%lld workers, anytime budget %lld us\n",
      static_cast<long long>(connections),
      static_cast<long long>(duration_s), measure_name.c_str(),
      static_cast<long long>(k), static_cast<long long>(workers),
      static_cast<long long>(anytime_us));

  // Per combo: a to-proof pass (deadline 0; prices certification itself)
  // and an anytime pass (fixed budget; certified_ratio is the fraction of
  // proofs that finish inside it).
  std::vector<RunResult> proof_results;
  std::vector<RunResult> anytime_results;
  uint64_t total_errors = 0;
  for (const Combo& combo : combos) {
    flos::QueryRequest base;
    base.measure = *measure;
    base.k = static_cast<uint32_t>(k);
    base.predicate = combo.predicate;
    base.deadline_us = 0;
    const RunResult proof =
        RunCombo(graph, options.host, server.port(), base, connections,
                 duration_s, static_cast<uint64_t>(seed));
    RunResult anytime;
    if (anytime_us > 0) {
      base.deadline_us = static_cast<uint64_t>(anytime_us);
      anytime =
          RunCombo(graph, options.host, server.port(), base, connections,
                   duration_s, static_cast<uint64_t>(seed) + 500);
    }
    const double achieved = static_cast<double>(combo.matching_nodes) /
                            static_cast<double>(graph.NumNodes());
    std::printf(
        "%-14s %-22s sel %7.4f%%  proof: qps %7.1f p50 %llu us p99 %llu us"
        "  anytime: qps %7.1f certified %.3f%s\n",
        combo.name.c_str(),
        combo.predicate.empty() ? "-" : combo.predicate.ToString().c_str(),
        achieved * 100.0, proof.qps,
        static_cast<unsigned long long>(proof.p50_us),
        static_cast<unsigned long long>(proof.p99_us), anytime.qps,
        anytime.certified_ratio,
        proof.errors + anytime.errors > 0 ? "  ERRORS" : "");
    total_errors += proof.errors + anytime.errors;
    proof_results.push_back(proof);
    anytime_results.push_back(anytime);
  }
  server.Shutdown();

  if (total_errors > 0) {
    std::fprintf(stderr, "bench saw %llu errors\n",
                 static_cast<unsigned long long>(total_errors));
    return 1;
  }
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    const int host_cpus = flos::ThreadPool::DefaultNumThreads();
    std::fprintf(
        f,
        "{\n"
        "  \"filtered_load\": {\n"
        "    \"_comment\": \"label-constrained exact top-k under closed-"
        "loop load; predicates are chosen by measuring candidate match "
        "counts against the generated Zipf label store, so "
        "actual_selectivity is the honest number and target_selectivity "
        "only names the row (a target the type cannot reach is dropped -- "
        "equality tops out at its most frequent label set); each combo "
        "runs twice: a to-proof pass (proof_* fields; every query runs to "
        "a certified answer, so its qps and latency price exact filtered "
        "certification) and an anytime pass under anytime_deadline_us "
        "(anytime_* fields; certified_ratio is the fraction of proofs "
        "that finished inside the budget -- selective predicates must "
        "push the boundary bound below the k-th matching score and so "
        "certify later, which is the expected trend across rows); query "
        "nodes are uniform and both server caches are disabled, so every "
        "row prices the filtered search itself\",\n"
        "    \"graph\": \"%s\",\n"
        "    \"measure\": \"%s\",\n"
        "    \"num_labels\": %lld,\n"
        "    \"labels_per_node\": %lld,\n"
        "    \"zipf_labels\": %.2f,\n"
        "    \"workers\": %lld,\n"
        "    \"connections\": %lld,\n"
        "    \"duration_s_per_combo_and_mode\": %lld,\n"
        "    \"anytime_deadline_us\": %lld,\n"
        "    \"k\": %lld,\n"
        "    \"host_cpus\": %d,\n"
        "    \"runs\": [\n",
        spec.label.c_str(), measure_name.c_str(),
        static_cast<long long>(num_labels),
        static_cast<long long>(labels_per_node), zipf_labels,
        static_cast<long long>(workers), static_cast<long long>(connections),
        static_cast<long long>(duration_s),
        static_cast<long long>(anytime_us), static_cast<long long>(k),
        host_cpus);
    for (size_t i = 0; i < combos.size(); ++i) {
      const Combo& c = combos[i];
      const RunResult& p = proof_results[i];
      const RunResult& a = anytime_results[i];
      std::fprintf(
          f,
          "      {\"name\": \"%s\", \"predicate\": \"%s\", "
          "\"target_selectivity\": %.4f, \"actual_selectivity\": %.6f, "
          "\"matching_nodes\": %llu, \"proof_qps\": %.1f, "
          "\"proof_p50_us\": %llu, \"proof_p95_us\": %llu, "
          "\"proof_p99_us\": %llu, \"proof_queries_ok\": %llu, "
          "\"anytime_qps\": %.1f, \"certified_ratio\": %.4f, "
          "\"anytime_p50_us\": %llu, \"anytime_p99_us\": %llu, "
          "\"anytime_queries_ok\": %llu}%s\n",
          c.name.c_str(),
          c.predicate.empty() ? "none" : c.predicate.ToString().c_str(),
          c.target_selectivity,
          static_cast<double>(c.matching_nodes) /
              static_cast<double>(graph.NumNodes()),
          static_cast<unsigned long long>(c.matching_nodes), p.qps,
          static_cast<unsigned long long>(p.p50_us),
          static_cast<unsigned long long>(p.p95_us),
          static_cast<unsigned long long>(p.p99_us),
          static_cast<unsigned long long>(p.ok), a.qps, a.certified_ratio,
          static_cast<unsigned long long>(a.p50_us),
          static_cast<unsigned long long>(a.p99_us),
          static_cast<unsigned long long>(a.ok),
          i + 1 < combos.size() ? "," : "");
    }
    std::fprintf(f,
                 "    ]\n"
                 "  }\n"
                 "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
