// Figure 10: running time of THT methods vs. k on the real-graph proxies:
// FLoS_THT (exact), LS_THT (approximate local search), GI_THT (global
// L-step iteration). Truncation length L = 10, as in the paper.
//
// Proxy note: truncated hitting time is only local if the L-hop ball
// around the query does not cover the graph. The paper's Amazon/DBLP
// datasets are clustered with large effective diameter; an R-MAT proxy's
// tiny diameter would make every node reachable within 10 hops and force
// any exact THT method global. This harness therefore uses Watts-Strogatz
// proxies (matched node counts and densities, low rewiring) whose diameter
// behaviour matches the originals. Pass --graph to use real SNAP files.
//
// Expected shape (paper): both local methods are orders of magnitude below
// GI_THT; FLoS_THT runs faster than LS_THT thanks to tighter bounds.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "baselines/gi.h"
#include "baselines/ls_tht.h"
#include "bench/harness.h"
#include "core/flos.h"
#include "graph/accessor.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "graph/presets.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace flos {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  bench::CommonFlags common;
  common.Register(&flags);
  int64_t length = 10;
  std::string graphs = "az,dp,yt,lj";
  double rewire_beta = 0.001;
  flags.AddInt("length", &length, "THT truncation length L");
  flags.AddString("graphs", &graphs, "comma-separated preset names");
  flags.AddDouble("rewire-beta", &rewire_beta,
                  "Watts-Strogatz rewiring probability of the proxies");
  if (const Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  const std::vector<int> ks = bench::ParseIntList(common.ks);

  std::printf("# Figure 10: THT methods on real-graph proxies (avg ms/query, "
              "%lld queries, L=%lld, scale=%.3f)\n",
              static_cast<long long>(common.queries),
              static_cast<long long>(length), common.scale);
  TablePrinter table(common.csv);
  table.AddRow({"graph", "k", "method", "avg_ms", "visited", "recall"});

  std::vector<std::string> names;
  size_t pos = 0;
  while (pos < graphs.size()) {
    const size_t comma = graphs.find(',', pos);
    names.push_back(graphs.substr(pos, comma - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  for (const std::string& name : names) {
    Graph g;
    if (!common.graph_path.empty()) {
      g = bench::CheckOk(ReadEdgeList(common.graph_path));
    } else {
      const GraphPreset preset = bench::CheckOk(FindPreset(name));
      GeneratorOptions go;
      go.num_nodes = std::max<uint64_t>(
          64, static_cast<uint64_t>(static_cast<double>(preset.paper_nodes) *
                                    common.scale));
      go.seed = common.seed;
      // Lattice degree: the original dataset's density rounded to even.
      const double density = 2.0 * static_cast<double>(preset.paper_edges) /
                             static_cast<double>(preset.paper_nodes);
      const auto lattice_degree = static_cast<uint32_t>(
          std::max(2.0, 2.0 * std::round(density / 2.0)));
      g = bench::CheckOk(
          GenerateWattsStrogatz(go, lattice_degree, rewire_beta));
    }
    bench::PrintGraphLine(name, g);
    const std::vector<NodeId> queries = bench::SampleQueries(
        g, static_cast<int>(common.queries), common.seed + 1);

    for (const int k : ks) {
      std::vector<std::vector<NodeId>> truths;
      {
        FlosOptions options;
        options.measure = Measure::kTht;
        options.tht_length = static_cast<int>(length);
        uint64_t visited = 0;
        const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
          const auto r = FlosTopK(g, q, k, options);
          bench::CheckOk(r.status());
          visited += r.value().stats.visited_nodes;
          std::vector<NodeId> ids;
          for (const auto& s : r.value().topk) ids.push_back(s.node);
          truths.push_back(std::move(ids));
          return true;
        });
        table.AddRow({name, std::to_string(k), "FLoS_THT",
                      TablePrinter::FormatDouble(t.avg_ms),
                      std::to_string(visited / queries.size()), "1.00"});
      }
      {
        LsThtOptions options;
        options.length = static_cast<int>(length);
        InMemoryAccessor accessor(&g);
        double recall = 0;
        size_t qi = 0;
        uint64_t visited = 0;
        const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
          const auto r = LsThtTopK(&accessor, q, k, options);
          bench::CheckOk(r.status());
          visited += r.value().touched_nodes;
          recall += bench::Recall(r.value().nodes, truths[qi++]);
          return true;
        });
        table.AddRow({name, std::to_string(k), "LS_THT",
                      TablePrinter::FormatDouble(t.avg_ms),
                      std::to_string(visited / queries.size()),
                      TablePrinter::FormatDouble(recall / static_cast<double>(queries.size()), 3)});
      }
      {
        GiOptions options;
        options.measure = Measure::kTht;
        options.params.tht_length = static_cast<int>(length);
        const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
          bench::CheckOk(GiTopK(g, q, k, options).status());
          return true;
        });
        table.AddRow({name, std::to_string(k), "GI_THT",
                      TablePrinter::FormatDouble(t.avg_ms),
                      std::to_string(g.NumNodes()), "1.00"});
      }
    }
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace flos

int main(int argc, char** argv) { return flos::Main(argc, argv); }
