// Motivation experiment (paper Section 1): global precomputation-based
// methods must redo their preprocessing "whenever the graph changes", while
// FLoS needs none and answers exactly immediately after updates.
//
// The harness interleaves batches of edge insertions with top-k queries on
// a DynamicGraph and reports (a) FLoS query latency right after each batch
// (no rebuild, always exact) and (b) what a precomputation-based method
// (K-dash) would have to pay to stay exact: one LU rebuild per batch.

#include <cstdio>

#include "baselines/kdash.h"
#include "bench/harness.h"
#include "core/flos.h"
#include "graph/dynamic_graph.h"
#include "graph/presets.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace flos {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  bench::CommonFlags common;
  common.scale = 0.008;  // K-dash must be able to factor the graph at all
  common.queries = 5;
  common.ks = "10";
  common.Register(&flags);
  int64_t batches = 4;
  int64_t updates_per_batch = 200;
  flags.AddInt("batches", &batches, "number of update batches");
  flags.AddInt("updates-per-batch", &updates_per_batch,
               "edge insertions per batch");
  if (const Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  const int k = bench::ParseIntList(common.ks)[0];

  const GraphPreset preset = bench::CheckOk(FindPreset("az"));
  const Graph base =
      bench::CheckOk(BuildPresetGraph(preset, common.scale, common.seed));
  DynamicGraph dyn{Graph(base)};
  bench::PrintGraphLine("az (dynamic)", base);
  std::printf("# Interleaving %lld batches of %lld insertions with top-%d "
              "queries\n",
              static_cast<long long>(batches),
              static_cast<long long>(updates_per_batch), k);

  TablePrinter table(common.csv);
  table.AddRow({"batch", "total_edges", "flos_avg_ms", "flos_exact",
                "kdash_rebuild_ms", "kdash_query_ms"});

  Rng rng(common.seed + 7);
  const std::vector<NodeId> queries = bench::SampleQueries(
      base, static_cast<int>(common.queries), common.seed + 1);

  for (int64_t b = 0; b <= batches; ++b) {
    if (b > 0) {
      for (int64_t i = 0; i < updates_per_batch; ++i) {
        const auto u = static_cast<NodeId>(rng.NextBounded(dyn.NumNodes()));
        const auto v = static_cast<NodeId>(rng.NextBounded(dyn.NumNodes()));
        if (u == v) continue;
        bench::CheckOk(dyn.AddEdge(u, v, 1.0));
      }
    }
    // FLoS: query the updated graph directly.
    FlosOptions options;
    options.measure = Measure::kPhp;
    bool all_exact = true;
    const bench::Timing t = bench::TimeQueries(queries, [&](NodeId q) {
      const auto r = FlosTopK(&dyn, q, k, options);
      bench::CheckOk(r.status());
      all_exact &= r.value().stats.exact;
      return true;
    });
    // K-dash: must refactor before it can answer exactly again.
    WallTimer rebuild_timer;
    const Graph snapshot = bench::CheckOk(dyn.Snapshot());
    KdashOptions kd;
    double rebuild_ms = -1;
    double kdash_query_ms = -1;
    auto index = KdashIndex::Build(&snapshot, kd);
    if (index.ok()) {
      rebuild_ms = rebuild_timer.ElapsedMillis();
      const bench::Timing kt = bench::TimeQueries(queries, [&](NodeId q) {
        bench::CheckOk(index->Query(q, k).status());
        return true;
      });
      kdash_query_ms = kt.avg_ms;
    }
    table.AddRow({std::to_string(b),
                  std::to_string(dyn.NumEdges()),
                  TablePrinter::FormatDouble(t.avg_ms),
                  all_exact ? "yes" : "no",
                  TablePrinter::FormatDouble(rebuild_ms),
                  TablePrinter::FormatDouble(kdash_query_ms)});
  }
  table.Print();
  std::printf("# FLoS pays zero per-update cost; the precomputation-based "
              "method pays a full rebuild per batch to stay exact.\n");
  return 0;
}

}  // namespace
}  // namespace flos

int main(int argc, char** argv) { return flos::Main(argc, argv); }
