// Theorems 2 and 6 in action: PHP, EI and DHT agree on the ranking, RWR
// reweights it by degree, and FLoS answers all of them through one engine.
// Also cross-checks FLoS against whole-graph ground truth on the fly.
//
//   ./examples/measure_comparison [--nodes=2000] [--k=8]

#include <cstdio>
#include <vector>

#include "core/flos.h"
#include "graph/generators.h"
#include "measures/exact.h"
#include "util/flags.h"

namespace {

int Run(int argc, char** argv) {
  flos::FlagParser flags;
  int64_t nodes = 2000;
  int64_t k = 8;
  int64_t seed = 11;
  flags.AddInt("nodes", &nodes, "graph size");
  flags.AddInt("k", &k, "top-k");
  flags.AddInt("seed", &seed, "generator seed");
  if (const flos::Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }

  flos::GeneratorOptions options;
  options.num_nodes = static_cast<uint64_t>(nodes);
  options.num_edges = static_cast<uint64_t>(nodes) * 3;
  options.seed = static_cast<uint64_t>(seed);
  options.random_weights = true;
  auto graph_result = flos::GenerateConnected(options);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 graph_result.status().ToString().c_str());
    return 1;
  }
  const flos::Graph graph = std::move(graph_result).value();
  const flos::NodeId query = 17;
  const double c = 0.5;

  std::printf("query node %u, k=%lld, c=%.1f\n", query,
              static_cast<long long>(k), c);
  std::printf("%-28s", "measure");
  for (int i = 0; i < k; ++i) std::printf(" #%-6d", i + 1);
  std::printf("\n");

  const struct {
    flos::Measure measure;
    const char* label;
  } rows[] = {
      {flos::Measure::kPhp, "PHP (decay 0.5)"},
      {flos::Measure::kEi, "EI (restart 0.5)"},
      {flos::Measure::kDht, "DHT (decay 0.5)"},
      {flos::Measure::kRwr, "RWR (restart 0.5)"},
      {flos::Measure::kTht, "THT (L=10)"},
  };
  for (const auto& row : rows) {
    flos::FlosOptions fo;
    fo.measure = row.measure;
    // Matching parameters for the rank-equivalence: PHP decay (1-c)
    // corresponds to EI/DHT/RWR parameter c (Theorem 2/6). Using decay
    // 0.5 for PHP and 0.5 for the others keeps them aligned.
    fo.c = c;
    fo.tht_length = 10;
    auto flos_answer = FlosTopK(graph, query, static_cast<int>(k), fo);
    if (!flos_answer.ok()) {
      std::fprintf(stderr, "%s: %s\n", row.label,
                   flos_answer.status().ToString().c_str());
      return 1;
    }
    std::printf("%-28s", row.label);
    for (const flos::ScoredNode& s : flos_answer->topk) {
      std::printf(" %-7u", s.node);
    }
    std::printf("\n");

    // Cross-check against whole-graph ground truth.
    flos::MeasureParams params;
    params.c = c;
    params.tht_length = 10;
    auto exact = ExactMeasure(graph, query, row.measure, params);
    if (exact.ok()) {
      const auto truth = flos::TopKFromScores(
          *exact, query, static_cast<int>(k),
          flos::MeasureDirection(row.measure));
      bool same_set = true;
      for (const flos::ScoredNode& s : flos_answer->topk) {
        bool found = false;
        for (const flos::NodeId t : truth) found |= (t == s.node);
        // Tolerate tie swaps: accept if the exact score matches the k-th.
        same_set &= found || std::abs((*exact)[s.node] -
                                      (*exact)[truth.back()]) < 1e-9;
      }
      if (!same_set) {
        std::printf("  !! mismatch vs ground truth\n");
        return 1;
      }
    }
  }
  std::printf(
      "\nNote how PHP, EI and DHT list identical nodes (Theorem 2), while\n"
      "RWR promotes high-degree nodes (Theorem 6: RWR ~ w_i * PHP).\n"
      "Every ranking above was verified against whole-graph ground truth.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
