// Command-line client for the FLoS query service.
//
//   ./examples/flos_client --port=7421 --node=42 --k=10 --measure=rwr
//   ./examples/flos_client --port=7421 --node=42 --deadline-us=200
//   ./examples/flos_client --port=7421 --stats
//   ./examples/flos_client --port=7421 --shutdown
//
// A query answered under a deadline prints its anytime interval answer:
// `certified=no` plus per-node [lower, upper] score bounds that are
// rigorous even though the search was cut short. --connect-retries covers
// the race against a server that is still starting (CI smoke test).

#include <cstdio>
#include <string>

#include "core/predicate.h"
#include "service/client.h"
#include "util/flags.h"

namespace {

flos::Result<flos::Measure> ParseMeasure(const std::string& name) {
  if (name == "php") return flos::Measure::kPhp;
  if (name == "ei") return flos::Measure::kEi;
  if (name == "dht") return flos::Measure::kDht;
  if (name == "tht") return flos::Measure::kTht;
  if (name == "rwr") return flos::Measure::kRwr;
  return flos::Status::InvalidArgument(
      "unknown measure '" + name + "' (expected php|ei|dht|tht|rwr)");
}

int Run(int argc, char** argv) {
  flos::FlagParser flags;
  std::string host = "127.0.0.1";
  int64_t port = 0;
  int64_t node = 0;
  int64_t k = 10;
  std::string measure_name = "php";
  double c = 0.5;
  int64_t tht_length = 10;
  int64_t deadline_us = 0;
  int64_t connect_retries = 0;
  std::string predicate_text = "none";
  bool stats = false;
  bool shutdown = false;
  flags.AddString("host", &host, "server address");
  flags.AddInt("port", &port, "server TCP port");
  flags.AddInt("node", &node, "query node id");
  flags.AddInt("k", &k, "neighbors to return");
  flags.AddString("measure", &measure_name, "php|ei|dht|tht|rwr");
  flags.AddDouble("c", &c, "decay factor / restart probability");
  flags.AddInt("tht-length", &tht_length, "THT truncation L");
  flags.AddInt("deadline-us", &deadline_us,
               "server-side budget in microseconds (0 = run to proof)");
  flags.AddInt("connect-retries", &connect_retries,
               "retry the connect this many times, 100 ms apart");
  flags.AddString("predicate", &predicate_text,
                  "label filter: none | <eq|contain|overlap>:<id>,... "
                  "(numeric label ids; server needs a label store)");
  flags.AddBool("stats", &stats, "fetch the metrics snapshot instead");
  flags.AddBool("shutdown", &shutdown, "ask the server to shut down");
  if (const flos::Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "--port is required (1-65535)\n");
    return 1;
  }

  flos::ServiceClient::ConnectRetryPolicy retry;
  retry.max_attempts = static_cast<int>(connect_retries) + 1;
  retry.initial_backoff_ms = 100;
  retry.max_backoff_ms = 100;
  flos::Result<flos::ServiceClient> client = flos::ServiceClient::Connect(
      host, static_cast<uint16_t>(port), retry);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  if (stats) {
    const auto resp = client->Stats();
    if (!resp.ok()) {
      std::fprintf(stderr, "stats: %s\n", resp.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", resp->message.c_str());
    return 0;
  }
  if (shutdown) {
    const auto resp = client->Shutdown();
    if (!resp.ok()) {
      std::fprintf(stderr, "shutdown: %s\n",
                   resp.status().ToString().c_str());
      return 1;
    }
    std::printf("server acknowledged shutdown (%s)\n",
                flos::StatusCodeName(resp->status));
    return resp->status == flos::StatusCode::kOk ? 0 : 1;
  }

  const auto measure = ParseMeasure(measure_name);
  if (!measure.ok()) {
    std::fprintf(stderr, "%s\n", measure.status().ToString().c_str());
    return 1;
  }
  flos::QueryRequest request;
  request.measure = *measure;
  request.query_node = static_cast<flos::NodeId>(node);
  request.k = static_cast<uint32_t>(k);
  request.c = c;
  request.tht_length = static_cast<uint32_t>(tht_length);
  request.deadline_us = static_cast<uint64_t>(deadline_us);
  // Numeric ids only: the client has no label table to resolve names.
  const auto predicate = flos::ParsePredicate(predicate_text, nullptr);
  if (!predicate.ok()) {
    std::fprintf(stderr, "predicate: %s\n",
                 predicate.status().ToString().c_str());
    return 1;
  }
  request.predicate = *predicate;

  const auto resp = client->Query(request);
  if (!resp.ok()) {
    std::fprintf(stderr, "query: %s\n", resp.status().ToString().c_str());
    return 1;
  }
  if (resp->status != flos::StatusCode::kOk) {
    std::fprintf(stderr, "server: %s: %s\n",
                 flos::StatusCodeName(resp->status), resp->message.c_str());
    return 1;
  }
  std::printf(
      "query %lld (%s, k=%lld): certified=%s%s%s%s, visited %llu, %llu us\n",
      static_cast<long long>(node), measure_name.c_str(),
      static_cast<long long>(k), resp->certified ? "yes" : "no",
      resp->cache_hit ? " (cache hit)" : "",
      resp->subgraph_hit ? " (warm subgraph)" : "",
      resp->halo_truncated ? " (halo-truncated)" : "",
      static_cast<unsigned long long>(resp->visited),
      static_cast<unsigned long long>(resp->wall_us));
  for (const flos::ResponseEntry& e : resp->topk) {
    std::printf("  %-10llu %-12.6g in [%.6g, %.6g]\n",
                static_cast<unsigned long long>(e.node), e.score, e.lower,
                e.upper);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
