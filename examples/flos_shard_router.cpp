// Shard router front-end: one endpoint over a fleet of shard servers.
//
//   ./examples/flos_shard_router --maps=shards --port=7421
//       --shards=127.0.0.1:7430,127.0.0.1:7431
//
// Reads shard<i>.map for every endpoint in --shards (in order) from the
// --maps directory, builds the seed routing table, and serves the standard
// wire protocol: clients talk global node ids and cannot tell the router
// from a single flos_server. Runs until SHUTDOWN or SIGINT/SIGTERM;
// --forward-shutdown also shuts the backend fleet down on exit.

#include <csignal>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "graph/partition.h"
#include "service/shard_router.h"
#include "util/flags.h"

namespace {

flos::ShardRouter* g_router = nullptr;

void HandleSignal(int /*signum*/) {
  if (g_router != nullptr) g_router->Shutdown();
}

/// "host:port,host:port" -> endpoint list.
flos::Result<std::vector<flos::ShardEndpoint>> ParseEndpoints(
    const std::string& spec) {
  std::vector<flos::ShardEndpoint> endpoints;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(start, comma - start);
    start = comma + 1;
    if (item.empty()) continue;
    const size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon == item.size() - 1) {
      return flos::Status::InvalidArgument("bad endpoint '" + item +
                                           "' (expected host:port)");
    }
    flos::ShardEndpoint ep;
    ep.host = item.substr(0, colon);
    int port = 0;
    for (size_t i = colon + 1; i < item.size(); ++i) {
      const char ch = item[i];
      if (ch < '0' || ch > '9' || port > 65535) {
        return flos::Status::InvalidArgument("bad port in '" + item + "'");
      }
      port = port * 10 + (ch - '0');
    }
    if (port < 1 || port > 65535) {
      return flos::Status::InvalidArgument("bad port in '" + item + "'");
    }
    ep.port = static_cast<uint16_t>(port);
    endpoints.push_back(std::move(ep));
  }
  if (endpoints.empty()) {
    return flos::Status::InvalidArgument("--shards lists no endpoints");
  }
  return endpoints;
}

int Run(int argc, char** argv) {
  flos::FlagParser flags;
  std::string host = "127.0.0.1";
  std::string maps_dir;
  std::string shards_spec;
  int64_t port = 0;
  int64_t workers = 4;
  int64_t max_queue = 256;
  bool forward_shutdown = false;
  flags.AddString("host", &host, "address to bind");
  flags.AddInt("port", &port, "TCP port (0 = ephemeral, printed on start)");
  flags.AddString("maps", &maps_dir,
                  "directory holding shard<i>.map files (flos_partition)");
  flags.AddString("shards", &shards_spec,
                  "comma-separated host:port, one per shard, in shard order");
  flags.AddInt("workers", &workers,
               "router worker threads (backend connections per shard)");
  flags.AddInt("max-queue", &max_queue,
               "admission-control queue cap (overloaded beyond this)");
  flags.AddBool("forward-shutdown", &forward_shutdown,
                "shut the backend servers down when the router exits");
  if (const flos::Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  if (maps_dir.empty()) {
    std::fprintf(stderr, "--maps is required\n");
    return 1;
  }

  auto endpoints = ParseEndpoints(shards_spec);
  if (!endpoints.ok()) {
    std::fprintf(stderr, "%s\n", endpoints.status().ToString().c_str());
    return 1;
  }

  std::vector<flos::ShardMeta> metas;
  metas.reserve(endpoints->size());
  for (uint32_t i = 0; i < endpoints->size(); ++i) {
    auto meta = flos::ReadShardMap(flos::ShardMapPath(maps_dir, i));
    if (!meta.ok()) {
      std::fprintf(stderr, "shard %u map: %s\n", i,
                   meta.status().ToString().c_str());
      return 1;
    }
    metas.push_back(std::move(meta).value());
  }
  auto route = flos::ShardRouteTable::Build(std::move(metas));
  if (!route.ok()) {
    std::fprintf(stderr, "route table: %s\n",
                 route.status().ToString().c_str());
    return 1;
  }
  std::printf("# routing %llu global nodes across %zu shards\n",
              static_cast<unsigned long long>(route->global_nodes()),
              route->num_shards());

  flos::ShardRouterOptions options;
  options.host = host;
  options.port = static_cast<uint16_t>(port);
  options.num_workers = static_cast<int>(workers);
  options.max_queue_depth = static_cast<size_t>(max_queue);
  options.shards = std::move(*endpoints);
  flos::ShardRouter router(std::move(*route), options);
  if (const flos::Status s = router.Start(); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }
  // The CI smoke test greps this line for the ephemeral port.
  std::printf("flos_shard_router listening on %s:%u\n", host.c_str(),
              static_cast<unsigned>(router.port()));
  std::fflush(stdout);

  g_router = &router;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  router.WaitForShutdown();
  router.Shutdown();
  g_router = nullptr;
  if (forward_shutdown) router.ShutdownBackends();
  std::printf("shutting down; final metrics:\n%s",
              router.metrics().registry.RenderText().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
