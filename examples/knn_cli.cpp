// Command-line k-NN query tool: load a SNAP-style edge list (or generate a
// synthetic graph), then answer top-k proximity queries from the command
// line — the whole library surface in one utility.
//
//   ./examples/knn_cli --graph=my_edges.txt --measure=rwr --k=10 5 42 777
//   ./examples/knn_cli --synthetic-nodes=50000 --measure=php 123
//   ./examples/knn_cli --graph=my_edges.txt --batch-file=ids.txt --threads=4
//
// Positional arguments are query node ids. Without any, a few random
// queries are run. With --batch-file (one node id per line, '#' comments),
// the whole batch is answered via the thread-pooled BatchTopK engine and
// --threads workers; results print in input order.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/batch_topk.h"
#include "core/flos.h"
#include "core/predicate.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "graph/labels.h"
#include "graph/stats.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

flos::Result<flos::Measure> ParseMeasure(const std::string& name) {
  if (name == "php") return flos::Measure::kPhp;
  if (name == "ei") return flos::Measure::kEi;
  if (name == "dht") return flos::Measure::kDht;
  if (name == "tht") return flos::Measure::kTht;
  if (name == "rwr") return flos::Measure::kRwr;
  return flos::Status::InvalidArgument(
      "unknown measure '" + name + "' (expected php|ei|dht|tht|rwr)");
}

flos::Result<std::vector<flos::NodeId>> ReadBatchFile(const std::string& path,
                                                      uint64_t num_nodes) {
  std::ifstream in(path);
  if (!in) return flos::Status::IoError("cannot open batch file " + path);
  std::vector<flos::NodeId> queries;
  std::string line;
  while (std::getline(in, line)) {
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    char* end = nullptr;
    const unsigned long v = std::strtoul(line.c_str() + start, &end, 10);
    if (end == line.c_str() + start || v >= num_nodes) {
      return flos::Status::InvalidArgument("bad query node '" + line +
                                           "' in " + path);
    }
    queries.push_back(static_cast<flos::NodeId>(v));
  }
  return queries;
}

void PrintResult(const flos::FlosResult& result, bool show_bounds) {
  for (const flos::ScoredNode& s : result.topk) {
    if (show_bounds) {
      std::printf("  %-10u %-12.6g in [%.6g, %.6g]\n", s.node, s.score,
                  s.lower, s.upper);
    } else {
      std::printf("  %-10u %.6g\n", s.node, s.score);
    }
  }
}

int Run(int argc, char** argv) {
  flos::FlagParser flags;
  std::string graph_path;
  std::string measure_name = "php";
  int64_t k = 10;
  double c = 0.5;
  int64_t tht_length = 10;
  int64_t synthetic_nodes = 10000;
  int64_t seed = 1;
  bool show_bounds = false;
  std::string batch_file;
  int64_t threads = 0;
  std::string label_file;
  std::string predicate_text = "none";
  int64_t synthetic_labels = 0;
  int64_t labels_per_node = 3;
  flags.AddString("graph", &graph_path, "SNAP-style edge list to load");
  flags.AddString("batch-file", &batch_file,
                  "file of query node ids, one per line");
  flags.AddInt("threads", &threads,
               "worker threads for --batch-file (0 = all cores)");
  flags.AddString("measure", &measure_name, "php|ei|dht|tht|rwr");
  flags.AddInt("k", &k, "neighbors to return");
  flags.AddDouble("c", &c, "decay factor / restart probability");
  flags.AddInt("tht-length", &tht_length, "THT truncation L");
  flags.AddInt("synthetic-nodes", &synthetic_nodes,
               "R-MAT size when --graph is not given");
  flags.AddInt("seed", &seed, "seed for generation / query sampling");
  flags.AddBool("bounds", &show_bounds, "print certified score intervals");
  flags.AddString("label-file", &label_file,
                  "per-node label file (line i = labels of node i)");
  flags.AddString("predicate", &predicate_text,
                  "label filter: none | <eq|contain|overlap>:<label>,...");
  flags.AddInt("synthetic-labels", &synthetic_labels,
               "generate a Zipf label universe of this size when "
               "--label-file is not given (0 = no labels)");
  flags.AddInt("labels-per-node", &labels_per_node,
               "labels per node for --synthetic-labels");
  if (const flos::Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }

  flos::Graph graph;
  if (!graph_path.empty()) {
    auto loaded = flos::ReadEdgeList(graph_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).value();
  } else {
    flos::GeneratorOptions options;
    options.num_nodes = static_cast<uint64_t>(synthetic_nodes);
    options.num_edges = static_cast<uint64_t>(synthetic_nodes) * 8;
    options.seed = static_cast<uint64_t>(seed);
    auto generated = flos::GenerateRmat(options);
    if (!generated.ok()) {
      std::fprintf(stderr, "generate: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    graph = std::move(generated).value();
  }
  std::printf("# %s\n", flos::StatsToString(flos::ComputeStats(graph)).c_str());

  auto measure = ParseMeasure(measure_name);
  if (!measure.ok()) {
    std::fprintf(stderr, "%s\n", measure.status().ToString().c_str());
    return 1;
  }
  flos::FlosOptions options;
  options.measure = *measure;
  options.c = c;
  options.tht_length = static_cast<int>(tht_length);

  // Filtered queries: attach a label store (from file or generated) and
  // the parsed predicate.
  flos::LabelStore labels;
  bool have_labels = false;
  if (!label_file.empty()) {
    auto loaded =
        flos::ReadLabelFile(label_file, static_cast<int64_t>(graph.NumNodes()));
    if (!loaded.ok()) {
      std::fprintf(stderr, "labels: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    labels = std::move(loaded).value();
    have_labels = true;
  } else if (synthetic_labels > 0) {
    flos::LabelGenOptions gen;
    gen.num_nodes = graph.NumNodes();
    gen.num_labels = static_cast<uint32_t>(synthetic_labels);
    gen.labels_per_node = static_cast<uint32_t>(labels_per_node);
    gen.seed = static_cast<uint64_t>(seed) + 7;
    auto generated = flos::GenerateZipfLabels(gen);
    if (!generated.ok()) {
      std::fprintf(stderr, "labels: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    labels = std::move(generated).value();
    have_labels = true;
  }
  auto predicate = flos::ParsePredicate(predicate_text,
                                        have_labels ? &labels.table() : nullptr);
  if (!predicate.ok()) {
    std::fprintf(stderr, "predicate: %s\n",
                 predicate.status().ToString().c_str());
    return 1;
  }
  if (!predicate->empty()) {
    if (!have_labels) {
      std::fprintf(stderr,
                   "--predicate needs --label-file or --synthetic-labels\n");
      return 1;
    }
    options.labels = &labels;
    options.predicate = *predicate;
    std::printf("# filter %s (at most %llu matching nodes)\n",
                predicate->ToString().c_str(),
                static_cast<unsigned long long>(
                    predicate->MaxMatches(labels)));
  }

  if (!batch_file.empty()) {
    auto batch = ReadBatchFile(batch_file, graph.NumNodes());
    if (!batch.ok()) {
      std::fprintf(stderr, "%s\n", batch.status().ToString().c_str());
      return 1;
    }
    const std::vector<flos::NodeId> queries = std::move(batch).value();
    flos::WallTimer timer;
    auto results = flos::BatchTopK(graph, queries, static_cast<int>(k),
                                   options, static_cast<int>(threads));
    if (!results.ok()) {
      std::fprintf(stderr, "batch: %s\n", results.status().ToString().c_str());
      return 1;
    }
    const double ms = timer.ElapsedMillis();
    std::printf("batch of %zu queries (%s, k=%lld): %.2f ms total, %.1f qps\n",
                queries.size(), flos::MeasureName(*measure).c_str(),
                static_cast<long long>(k), ms,
                1000.0 * static_cast<double>(queries.size()) / ms);
    for (size_t i = 0; i < queries.size(); ++i) {
      const flos::FlosResult& r = (*results)[i];
      std::printf("query %u: visited %llu, %s\n", queries[i],
                  static_cast<unsigned long long>(r.stats.visited_nodes),
                  r.stats.exact ? "exact" : "approximate");
      PrintResult(r, show_bounds);
    }
    return 0;
  }

  std::vector<flos::NodeId> queries;
  for (const std::string& arg : flags.positional_args()) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(arg.c_str(), &end, 10);
    if (end == arg.c_str() || *end != '\0' || v >= graph.NumNodes()) {
      std::fprintf(stderr, "bad query node '%s'\n", arg.c_str());
      return 1;
    }
    queries.push_back(static_cast<flos::NodeId>(v));
  }
  if (queries.empty()) {
    flos::Rng rng(static_cast<uint64_t>(seed) + 99);
    while (queries.size() < 3) {
      const auto q =
          static_cast<flos::NodeId>(rng.NextBounded(graph.NumNodes()));
      if (graph.Degree(q) > 0) queries.push_back(q);
    }
  }

  for (const flos::NodeId q : queries) {
    flos::WallTimer timer;
    auto result = FlosTopK(graph, q, static_cast<int>(k), options);
    if (!result.ok()) {
      std::fprintf(stderr, "query %u: %s\n", q,
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("query %u (%s, k=%lld): %.2f ms, visited %llu/%llu, %s\n", q,
                flos::MeasureName(*measure).c_str(), static_cast<long long>(k),
                timer.ElapsedMillis(),
                static_cast<unsigned long long>(result->stats.visited_nodes),
                static_cast<unsigned long long>(graph.NumNodes()),
                result->stats.exact ? "exact" : "approximate");
    PrintResult(*result, show_bounds);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
