// Out-of-core k-NN query: build a graph, serialize it to the packed disk
// format, and run FLoS against the file through a small LRU block cache —
// the paper's Section 6.4 scenario (there served by Neo4j).
//
//   ./examples/disk_graph_query [--nodes=100000] [--cache-kb=512]

#include <cstdio>
#include <string>

#include "core/flos.h"
#include "graph/generators.h"
#include "storage/disk_builder.h"
#include "storage/disk_graph.h"
#include "util/flags.h"
#include "util/timer.h"

namespace {

int Run(int argc, char** argv) {
  flos::FlagParser flags;
  int64_t nodes = 100000;
  int64_t cache_kb = 512;
  int64_t k = 10;
  std::string path = "/tmp/flos_example_graph.flosgrf";
  flags.AddInt("nodes", &nodes, "graph size");
  flags.AddInt("cache-kb", &cache_kb, "block cache budget (KiB)");
  flags.AddInt("k", &k, "neighbors to return");
  flags.AddString("path", &path, "where to write the graph file");
  if (const flos::Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }

  // 1. Build and serialize.
  flos::GeneratorOptions options;
  options.num_nodes = static_cast<uint64_t>(nodes);
  options.num_edges = static_cast<uint64_t>(nodes) * 10;
  options.seed = 7;
  auto graph = flos::GenerateRmat(options);
  if (!graph.ok()) {
    std::fprintf(stderr, "generate: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  if (const flos::Status s = flos::WriteDiskGraph(*graph, path); !s.ok()) {
    std::fprintf(stderr, "write: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%llu nodes, %llu edges)\n", path.c_str(),
              static_cast<unsigned long long>(graph->NumNodes()),
              static_cast<unsigned long long>(graph->NumEdges()));

  // 2. Open with a deliberately small cache and query out-of-core. FLoS
  //    only ever asks the store for one node's neighbors at a time, so the
  //    working set is the visited neighborhood, not the graph.
  flos::DiskGraphOptions disk_options;
  disk_options.cache_bytes = static_cast<uint64_t>(cache_kb) * 1024;
  auto disk = flos::DiskGraph::Open(path, disk_options);
  if (!disk.ok()) {
    std::fprintf(stderr, "open: %s\n", disk.status().ToString().c_str());
    return 1;
  }

  flos::FlosOptions fo;
  fo.measure = flos::Measure::kPhp;
  for (const flos::NodeId query : {5u, 4242u, 90001u}) {
    if (query >= (*disk)->NumNodes()) continue;
    (*disk)->ResetStats();
    flos::WallTimer timer;
    auto result = FlosTopK(disk->get(), query, static_cast<int>(k), fo);
    if (!result.ok()) {
      std::fprintf(stderr, "query %u: %s\n", query,
                   result.status().ToString().c_str());
      continue;
    }
    const flos::AccessStats& io = (*disk)->stats();
    std::printf(
        "query %u: top-%lld in %.2f ms | visited %llu nodes, read %.1f KiB "
        "from disk, cache hit rate %.0f%%\n",
        query, static_cast<long long>(k), timer.ElapsedMillis(),
        static_cast<unsigned long long>(result->stats.visited_nodes),
        static_cast<double>(io.bytes_read) / 1024.0,
        100.0 * static_cast<double>(io.cache_hits) /
            static_cast<double>(
                std::max<uint64_t>(1, io.cache_hits + io.cache_misses)));
    std::printf("  nearest:");
    for (const flos::ScoredNode& s : result->topk) {
      std::printf(" %u", s.node);
    }
    std::printf("\n");
  }
  std::remove(path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
