// Cross-shard parity check: a shard-router fleet must answer exactly like
// one process holding the whole graph.
//
//   ./examples/flos_shard_parity --port=<router> --synthetic-nodes=20000
//       --seed=7 --queries=20
//
// Rebuilds the full graph the fleet was partitioned from (same generator
// flags as flos_partition, or --graph for a file), runs the reference
// FlosTopK locally for sampled seeds across all five measures, queries the
// router for the same (seed, measure) pairs, and enforces:
//
//   - certified responses return the same top-k SET as the local certified
//     run (certification separates the set from the rest; the order WITHIN
//     the set follows interval midpoints and may legitimately differ), with
//     per-node [lower, upper] intervals overlapping (both bracket the same
//     exact value, up to solver tolerance), and never the halo-truncated
//     flag; a node may differ from the local set only if its interval ties
//     with the local k-th boundary interval;
//   - uncertified responses carry the halo-truncated flag (with no
//     deadline, halo clipping is the only legitimate reason not to
//     certify) and their [lower, upper] intervals are consistent and
//     bracket the exact scores of every locally-known node.
//
// Exits non-zero on the first violation; prints a certified/truncated
// tally on success. The CI shard-smoke job runs this against a 2-shard
// loopback fleet.

#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/flos.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "service/client.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {

struct MeasureCase {
  const char* name;
  flos::Measure measure;
};

constexpr MeasureCase kMeasures[] = {
    {"php", flos::Measure::kPhp}, {"ei", flos::Measure::kEi},
    {"dht", flos::Measure::kDht}, {"tht", flos::Measure::kTht},
    {"rwr", flos::Measure::kRwr},
};

// Certified rankings are exact, but the scores and bounds behind them are
// solved iteratively (FlosOptions::tolerance, tau = 1e-5), so values from
// two runs with different expansion sequences agree only to ~tau, not to
// machine eps — every cross-run comparison below carries this slack.
double Slack(double a, double b) {
  return 1e-5 * std::max(1.0, std::max(std::abs(a), std::abs(b)));
}

int Run(int argc, char** argv) {
  flos::FlagParser flags;
  std::string graph_path;
  std::string host = "127.0.0.1";
  int64_t port = 0;
  int64_t synthetic_nodes = 100000;
  int64_t seed = 1;
  int64_t queries = 20;
  int64_t k = 10;
  double c = 0.5;
  int64_t tht_length = 10;
  int64_t connect_retries = 50;
  flags.AddString("graph", &graph_path, "full edge list the fleet serves");
  flags.AddString("host", &host, "router address");
  flags.AddInt("port", &port, "router TCP port");
  flags.AddInt("synthetic-nodes", &synthetic_nodes,
               "R-MAT size when --graph is not given (must match the "
               "flos_partition invocation)");
  flags.AddInt("seed", &seed, "generator seed (must match flos_partition)");
  flags.AddInt("queries", &queries, "sampled query seeds");
  flags.AddInt("k", &k, "neighbors per query");
  flags.AddDouble("c", &c, "decay factor / restart probability");
  flags.AddInt("tht-length", &tht_length, "THT truncation L");
  flags.AddInt("connect-retries", &connect_retries,
               "retry the connect this many times, 100 ms apart");
  if (const flos::Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "--port is required (1-65535)\n");
    return 1;
  }

  flos::Graph graph;
  if (!graph_path.empty()) {
    auto loaded = flos::ReadEdgeList(graph_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).value();
  } else {
    flos::GeneratorOptions options;
    options.num_nodes = static_cast<uint64_t>(synthetic_nodes);
    options.num_edges = static_cast<uint64_t>(synthetic_nodes) * 8;
    options.seed = static_cast<uint64_t>(seed);
    auto generated = flos::GenerateRmat(options);
    if (!generated.ok()) {
      std::fprintf(stderr, "generate: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    graph = std::move(generated).value();
  }

  flos::ServiceClient::ConnectRetryPolicy retry;
  retry.max_attempts = static_cast<int>(connect_retries) + 1;
  retry.initial_backoff_ms = 100;
  retry.max_backoff_ms = 100;
  auto client = flos::ServiceClient::Connect(
      host, static_cast<uint16_t>(port), retry);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  flos::Rng rng(static_cast<uint64_t>(seed) * 0x9e3779b97f4a7c15ULL + 1);
  uint64_t certified = 0;
  uint64_t truncated = 0;
  for (int64_t q = 0; q < queries; ++q) {
    const flos::NodeId node = static_cast<flos::NodeId>(
        rng.NextBounded(graph.NumNodes()));
    for (const MeasureCase& mc : kMeasures) {
      flos::FlosOptions opts;
      opts.measure = mc.measure;
      opts.c = c;
      opts.tht_length = static_cast<int>(tht_length);
      const auto local = flos::FlosTopK(graph, node,
                                        static_cast<int>(k), opts);
      if (!local.ok()) {
        std::fprintf(stderr, "local %s@%llu: %s\n", mc.name,
                     static_cast<unsigned long long>(node),
                     local.status().ToString().c_str());
        return 1;
      }

      flos::QueryRequest request;
      request.measure = mc.measure;
      request.query_node = node;
      request.k = static_cast<uint32_t>(k);
      request.c = c;
      request.tht_length = static_cast<uint32_t>(tht_length);
      const auto remote = client->Query(request);
      if (!remote.ok()) {
        std::fprintf(stderr, "query %s@%llu: %s\n", mc.name,
                     static_cast<unsigned long long>(node),
                     remote.status().ToString().c_str());
        return 1;
      }
      if (remote->status != flos::StatusCode::kOk) {
        std::fprintf(stderr, "query %s@%llu: server: %s: %s\n", mc.name,
                     static_cast<unsigned long long>(node),
                     flos::StatusCodeName(remote->status),
                     remote->message.c_str());
        return 1;
      }

      if (remote->certified) {
        ++certified;
        if (remote->halo_truncated) {
          std::fprintf(stderr,
                       "%s@%llu: certified response carries the "
                       "halo-truncated flag\n",
                       mc.name, static_cast<unsigned long long>(node));
          return 1;
        }
        if (remote->topk.size() != local->topk.size()) {
          std::fprintf(stderr, "%s@%llu: %zu rows, expected %zu\n",
                       mc.name, static_cast<unsigned long long>(node),
                       remote->topk.size(), local->topk.size());
          return 1;
        }
        std::unordered_map<uint64_t, std::pair<double, double>> bracket;
        for (const flos::ScoredNode& l : local->topk) {
          bracket.emplace(static_cast<uint64_t>(l.node),
                          std::make_pair(l.lower, l.upper));
        }
        // The k-th boundary interval: a node may replace a local pick only
        // if it is interval-tied with this (certification cannot order
        // exact ties, so either choice is a correct top-k set).
        const flos::ScoredNode& edge = local->topk.back();
        for (const flos::ResponseEntry& r : remote->topk) {
          const auto it = bracket.find(r.node);
          const double lo = it != bracket.end() ? it->second.first
                                                : edge.lower;
          const double hi = it != bracket.end() ? it->second.second
                                                : edge.upper;
          if (r.lower > hi + Slack(r.lower, hi) ||
              lo > r.upper + Slack(lo, r.upper)) {
            std::fprintf(stderr,
                         "%s@%llu node %llu: interval [%.12g, %.12g] "
                         "disjoint from local %s [%.12g, %.12g]\n",
                         mc.name, static_cast<unsigned long long>(node),
                         static_cast<unsigned long long>(r.node), r.lower,
                         r.upper,
                         it != bracket.end() ? "interval" : "k-th boundary",
                         lo, hi);
            return 1;
          }
        }
      } else {
        ++truncated;
        if (!remote->halo_truncated) {
          std::fprintf(stderr,
                       "%s@%llu: uncertified without the halo-truncated "
                       "flag (no deadline was set)\n",
                       mc.name, static_cast<unsigned long long>(node));
          return 1;
        }
        // The anytime contract: intervals stay rigorous. Check internal
        // consistency, and bracket the exact score of every node the
        // local certified run also ranked.
        std::unordered_map<uint64_t, double> exact;
        for (const flos::ScoredNode& l : local->topk) {
          exact.emplace(static_cast<uint64_t>(l.node), l.score);
        }
        for (const flos::ResponseEntry& r : remote->topk) {
          if (r.lower > r.upper + 1e-12 || r.score < r.lower - 1e-12 ||
              r.score > r.upper + 1e-12) {
            std::fprintf(stderr,
                         "%s@%llu node %llu: inconsistent interval "
                         "[%.12g, %.12g] score %.12g\n",
                         mc.name, static_cast<unsigned long long>(node),
                         static_cast<unsigned long long>(r.node), r.lower,
                         r.upper, r.score);
            return 1;
          }
          const auto it = exact.find(r.node);
          if (it != exact.end() &&
              (it->second < r.lower - Slack(it->second, r.lower) ||
               it->second > r.upper + Slack(it->second, r.upper))) {
            std::fprintf(stderr,
                         "%s@%llu node %llu: exact %.12g outside "
                         "[%.12g, %.12g]\n",
                         mc.name, static_cast<unsigned long long>(node),
                         static_cast<unsigned long long>(r.node),
                         it->second, r.lower, r.upper);
            return 1;
          }
        }
      }
    }
  }
  std::printf("parity ok: %llu certified, %llu halo-truncated over %lld "
              "seeds x %zu measures\n",
              static_cast<unsigned long long>(certified),
              static_cast<unsigned long long>(truncated),
              static_cast<long long>(queries), std::size(kMeasures));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
