// Quickstart: build a small graph, run a FLoS top-k query, inspect the
// certified bounds and search statistics.
//
//   ./examples/quickstart

#include <cstdio>

#include "core/flos.h"
#include "graph/graph.h"
#include "measures/measure.h"

int main() {
  // A toy collaboration network: two tight triangles bridged by one edge,
  // plus a pendant node.
  //
  //      1 --- 2          5 --- 6
  //       \   /   bridge   \   /
  //        (0) ----------- (4)       7 (attached to 6)
  //
  flos::GraphBuilder builder;
  struct Edge {
    flos::NodeId u, v;
    double w;
  };
  const Edge edges[] = {{0, 1, 1.0}, {0, 2, 1.0}, {1, 2, 2.0},
                        {0, 4, 0.5},  // weak bridge
                        {4, 5, 1.0}, {4, 6, 1.0}, {5, 6, 2.0},
                        {6, 7, 1.0}};
  for (const Edge& e : edges) {
    if (const flos::Status s = builder.AddEdge(e.u, e.v, e.w); !s.ok()) {
      std::fprintf(stderr, "AddEdge: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  auto graph_result = std::move(builder).Build();
  if (!graph_result.ok()) {
    std::fprintf(stderr, "Build: %s\n", graph_result.status().ToString().c_str());
    return 1;
  }
  const flos::Graph graph = std::move(graph_result).value();
  std::printf("graph: %llu nodes, %llu edges\n",
              static_cast<unsigned long long>(graph.NumNodes()),
              static_cast<unsigned long long>(graph.NumEdges()));

  // Ask for the 3 nearest neighbors of node 0 under penalized hitting
  // probability. FLoS explores outward from the query and stops as soon as
  // its lower/upper bounds PROVE the answer — without preprocessing.
  flos::FlosOptions options;
  options.measure = flos::Measure::kPhp;
  options.c = 0.5;  // decay factor

  auto result = FlosTopK(graph, /*query=*/0, /*k=*/3, options);
  if (!result.ok()) {
    std::fprintf(stderr, "FlosTopK: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\ntop-3 nearest neighbors of node 0 (PHP, c=%.1f):\n",
              options.c);
  for (const flos::ScoredNode& s : result->topk) {
    std::printf("  node %u  score %.4f  (certified in [%.4f, %.4f])\n",
                s.node, s.score, s.lower, s.upper);
  }
  const flos::FlosStats& stats = result->stats;
  std::printf("\nsearch stats: visited %llu of %llu nodes, %llu expansions, "
              "exact=%s\n",
              static_cast<unsigned long long>(stats.visited_nodes),
              static_cast<unsigned long long>(graph.NumNodes()),
              static_cast<unsigned long long>(stats.expansions),
              stats.exact ? "yes" : "no");

  // The same call answers any of the five supported measures; switching is
  // one enum away.
  options.measure = flos::Measure::kRwr;
  auto rwr = FlosTopK(graph, 0, 3, options);
  if (rwr.ok()) {
    std::printf("\ntop-3 under RWR (restart %.1f):", options.c);
    for (const flos::ScoredNode& s : rwr->topk) std::printf(" %u", s.node);
    std::printf("\n");
  }
  return 0;
}
