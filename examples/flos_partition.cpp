// Cuts a graph into halo-replicated shards for scale-out serving.
//
//   ./examples/flos_partition --graph=edges.txt --shards=4 --out=shards
//   ./examples/flos_partition --synthetic-nodes=20000 --seed=7 --shards=2
//       --halo=2 --out=shards --write-full=shards/full.edges
//
// Writes shard<i>.edges (shard-local edge list) and shard<i>.map (node-id
// remap table + global-degree sidecar) into --out, creating the directory
// if needed, then prints a balance/replication summary. Each shard file
// pair is served by one `flos_server --shard-map=...` process; a
// `flos_shard_router` in front reassembles the fleet into one endpoint.
// --write-full keeps the unpartitioned edge list next to the shards for
// parity checks against a single-process server.

#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>

#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "graph/stats.h"
#include "util/flags.h"

namespace {

int Run(int argc, char** argv) {
  flos::FlagParser flags;
  std::string graph_path;
  std::string out_dir;
  std::string method_name = "bfs";
  std::string write_full;
  int64_t shards = 2;
  int64_t halo = 2;
  int64_t synthetic_nodes = 100000;
  int64_t seed = 1;
  int64_t partition_seed = 1;
  flags.AddString("graph", &graph_path, "SNAP-style edge list to partition");
  flags.AddString("out", &out_dir, "output directory (created if missing)");
  flags.AddInt("shards", &shards, "number of shards");
  flags.AddInt("halo", &halo, "replication radius h (>= 1)");
  flags.AddString("method", &method_name,
                  "bfs (contiguous regions) | hash (id scatter baseline)");
  flags.AddInt("synthetic-nodes", &synthetic_nodes,
               "R-MAT size when --graph is not given");
  flags.AddInt("seed", &seed, "generator seed");
  flags.AddInt("partition-seed", &partition_seed,
               "BFS-grow region seeding");
  flags.AddString("write-full", &write_full,
                  "also write the full edge list here (for parity checks)");
  if (const flos::Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  if (out_dir.empty()) {
    std::fprintf(stderr, "--out is required\n");
    return 1;
  }
  flos::PartitionMethod method;
  if (method_name == "bfs") {
    method = flos::PartitionMethod::kBfsGrow;
  } else if (method_name == "hash") {
    method = flos::PartitionMethod::kHash;
  } else {
    std::fprintf(stderr, "unknown --method '%s' (expected bfs|hash)\n",
                 method_name.c_str());
    return 1;
  }

  flos::Graph graph;
  if (!graph_path.empty()) {
    auto loaded = flos::ReadEdgeList(graph_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).value();
  } else {
    flos::GeneratorOptions options;
    options.num_nodes = static_cast<uint64_t>(synthetic_nodes);
    options.num_edges = static_cast<uint64_t>(synthetic_nodes) * 8;
    options.seed = static_cast<uint64_t>(seed);
    auto generated = flos::GenerateRmat(options);
    if (!generated.ok()) {
      std::fprintf(stderr, "generate: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    graph = std::move(generated).value();
  }
  std::printf("# %s\n",
              flos::StatsToString(flos::ComputeStats(graph)).c_str());

  flos::PartitionOptions options;
  options.num_shards = static_cast<uint32_t>(shards);
  options.method = method;
  options.halo_hops = static_cast<uint32_t>(halo);
  options.seed = static_cast<uint64_t>(partition_seed);
  auto partition = flos::PartitionGraph(graph, options);
  if (!partition.ok()) {
    std::fprintf(stderr, "partition: %s\n",
                 partition.status().ToString().c_str());
    return 1;
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "mkdir %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  if (const flos::Status s = flos::WriteShardFiles(*partition, out_dir);
      !s.ok()) {
    std::fprintf(stderr, "write: %s\n", s.ToString().c_str());
    return 1;
  }
  if (!write_full.empty()) {
    if (const flos::Status s = flos::WriteEdgeList(graph, write_full);
        !s.ok()) {
      std::fprintf(stderr, "write full: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  uint64_t replicated = 0;
  for (const flos::ShardPart& shard : partition->shards) {
    const flos::ShardMeta& m = shard.meta;
    replicated += m.num_local();
    std::printf(
        "shard %u: %llu core, %llu expandable, %llu local nodes, "
        "%llu edges -> %s\n",
        m.shard_index, static_cast<unsigned long long>(m.num_core),
        static_cast<unsigned long long>(m.num_interior),
        static_cast<unsigned long long>(m.num_local()),
        static_cast<unsigned long long>(shard.graph.NumEdges()),
        flos::ShardEdgesPath(out_dir, m.shard_index).c_str());
  }
  std::printf(
      "cut edges %llu / %llu (%.2f%%), replication factor %.3f\n",
      static_cast<unsigned long long>(partition->cut_edges),
      static_cast<unsigned long long>(graph.NumEdges()),
      graph.NumEdges() > 0 ? 100.0 * static_cast<double>(partition->cut_edges) /
                                 static_cast<double>(graph.NumEdges())
                           : 0.0,
      graph.NumNodes() > 0 ? static_cast<double>(replicated) /
                                 static_cast<double>(graph.NumNodes())
                           : 0.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
