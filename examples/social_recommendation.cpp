// Friend recommendation on a synthetic social network.
//
// Motivating scenario from the paper's introduction: given a user in a
// large social graph, recommend the k most related users. We generate an
// R-MAT graph (power-law, community-like), pick a few "users", and compare
// the recommendations produced by three proximity measures — PHP, RWR, and
// truncated hitting time — all served exactly by the same FLoS engine.
//
//   ./examples/social_recommendation [--users=3] [--k=5] [--nodes=20000]

#include <cstdio>
#include <string>
#include <vector>

#include "core/flos.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

int Run(int argc, char** argv) {
  flos::FlagParser flags;
  int64_t users = 3;
  int64_t k = 5;
  int64_t nodes = 20000;
  int64_t seed = 2026;
  flags.AddInt("users", &users, "number of example users to query");
  flags.AddInt("k", &k, "recommendations per user");
  flags.AddInt("nodes", &nodes, "social network size");
  flags.AddInt("seed", &seed, "generator seed");
  if (const flos::Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }

  flos::GeneratorOptions options;
  options.num_nodes = static_cast<uint64_t>(nodes);
  options.num_edges = static_cast<uint64_t>(nodes) * 8;
  options.seed = static_cast<uint64_t>(seed);
  auto graph_result = flos::GenerateRmat(options);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 graph_result.status().ToString().c_str());
    return 1;
  }
  const flos::Graph graph = std::move(graph_result).value();
  std::printf("social network: %s\n",
              flos::StatsToString(flos::ComputeStats(graph)).c_str());

  flos::Rng rng(static_cast<uint64_t>(seed) + 1);
  for (int64_t u = 0; u < users; ++u) {
    flos::NodeId user;
    do {
      user = static_cast<flos::NodeId>(rng.NextBounded(graph.NumNodes()));
    } while (graph.Degree(user) < 2);
    std::printf("\nuser %u (degree %u):\n", user, graph.Degree(user));

    const struct {
      flos::Measure measure;
      const char* story;
    } measures[] = {
        {flos::Measure::kPhp, "PHP   (probability a decaying walk reaches you)"},
        {flos::Measure::kRwr, "RWR   (personalized PageRank mass)"},
        {flos::Measure::kTht, "THT   (expected steps to reach you, capped)"},
    };
    for (const auto& m : measures) {
      flos::FlosOptions fo;
      fo.measure = m.measure;
      fo.c = 0.5;
      fo.tht_length = 10;
      flos::WallTimer timer;
      auto result = FlosTopK(graph, user, static_cast<int>(k), fo);
      if (!result.ok()) {
        std::fprintf(stderr, "  %s failed: %s\n", m.story,
                     result.status().ToString().c_str());
        continue;
      }
      std::printf("  %s:\n    ", m.story);
      for (const flos::ScoredNode& s : result->topk) {
        std::printf("%u (%.3g)  ", s.node, s.score);
      }
      std::printf("\n    [%.2f ms, visited %llu nodes, exact=%s]\n",
                  timer.ElapsedMillis(),
                  static_cast<unsigned long long>(result->stats.visited_nodes),
                  result->stats.exact ? "yes" : "no");
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
