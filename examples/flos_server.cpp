// Standalone FLoS k-NN query server.
//
//   ./examples/flos_server --graph=my_edges.txt --port=7421 --workers=4
//   ./examples/flos_server --synthetic-nodes=100000   # ephemeral port
//
// Loads a SNAP-style edge list (or generates an R-MAT graph), starts the
// epoll service (src/service/server.h), prints the bound address, and runs
// until a client sends SHUTDOWN (see flos_client --shutdown) or the
// process receives SIGINT/SIGTERM. On exit it prints the final metrics
// snapshot — the same text the STATS command returns.
//
// Shard mode (one process of a scaled-out fleet; see flos_partition and
// flos_shard_router):
//
//   ./examples/flos_server --shard-map=shards/shard0.map --port=7430
//
// loads shard0.{map,edges} written by flos_partition and serves the shard
// with halo-aware expansion limits; query node ids are then SHARD-LOCAL
// (the router translates global ids).

#include <csignal>
#include <cstdio>
#include <string>
#include <utility>

#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "graph/labels.h"
#include "graph/partition.h"
#include "graph/stats.h"
#include "service/server.h"
#include "util/flags.h"

namespace {

flos::ServiceServer* g_server = nullptr;

void HandleSignal(int /*signum*/) {
  // Unblocks WaitForShutdown; the main thread performs the real teardown.
  if (g_server != nullptr) g_server->Shutdown();
}

int Run(int argc, char** argv) {
  flos::FlagParser flags;
  std::string graph_path;
  std::string host = "127.0.0.1";
  int64_t port = 0;
  int64_t workers = 4;
  int64_t max_queue = 256;
  int64_t query_cache = 4096;
  int64_t subgraph_cache = 64;
  int64_t sweep_threads = 1;
  int64_t synthetic_nodes = 100000;
  int64_t seed = 1;
  std::string shard_map_path;
  std::string shard_edges_path;
  std::string label_file;
  int64_t synthetic_labels = 0;
  int64_t labels_per_node = 3;
  flags.AddString("graph", &graph_path, "SNAP-style edge list to serve");
  flags.AddString("shard-map", &shard_map_path,
                  "serve one shard: shard<i>.map from flos_partition");
  flags.AddString("shard-edges", &shard_edges_path,
                  "shard edge list (default: --shard-map with .edges)");
  flags.AddString("host", &host, "address to bind");
  flags.AddInt("port", &port, "TCP port (0 = ephemeral, printed on start)");
  flags.AddInt("workers", &workers, "query worker threads");
  flags.AddInt("max-queue", &max_queue,
               "admission-control queue cap (overloaded beyond this)");
  flags.AddInt("query-cache", &query_cache,
               "certified-result cache entries (0 = disable)");
  flags.AddInt("subgraph-cache", &subgraph_cache,
               "warm expanded-subgraph cache entries (0 = disable)");
  flags.AddInt("sweep-threads", &sweep_threads,
               "threads per query for parallel bound sweeps (1 = serial)");
  flags.AddInt("synthetic-nodes", &synthetic_nodes,
               "R-MAT size when --graph is not given");
  flags.AddInt("seed", &seed, "generator seed");
  flags.AddString("label-file", &label_file,
                  "per-node label file (GLOBAL ids; enables filtered "
                  "queries)");
  flags.AddInt("synthetic-labels", &synthetic_labels,
               "generate a Zipf label universe of this size when "
               "--label-file is not given (0 = no labels)");
  flags.AddInt("labels-per-node", &labels_per_node,
               "labels per node for --synthetic-labels");
  if (const flos::Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }

  flos::Graph graph;
  flos::ShardMeta shard_meta;  // must outlive the server in shard mode
  bool shard_mode = false;
  if (!shard_map_path.empty()) {
    auto meta = flos::ReadShardMap(shard_map_path);
    if (!meta.ok()) {
      std::fprintf(stderr, "shard map: %s\n",
                   meta.status().ToString().c_str());
      return 1;
    }
    shard_meta = std::move(meta).value();
    if (shard_edges_path.empty()) {
      const size_t dot = shard_map_path.rfind(".map");
      shard_edges_path = (dot == shard_map_path.size() - 4)
                             ? shard_map_path.substr(0, dot) + ".edges"
                             : shard_map_path + ".edges";
    }
    auto loaded = flos::ReadShardGraph(shard_edges_path, shard_meta);
    if (!loaded.ok()) {
      std::fprintf(stderr, "shard edges: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).value();
    shard_mode = true;
    std::printf("# shard %u/%u: %llu local nodes (%llu core, %llu "
                "expandable), halo %u hops\n",
                shard_meta.shard_index, shard_meta.num_shards,
                static_cast<unsigned long long>(shard_meta.num_local()),
                static_cast<unsigned long long>(shard_meta.num_core),
                static_cast<unsigned long long>(shard_meta.num_interior),
                shard_meta.halo_hops);
  } else if (!graph_path.empty()) {
    auto loaded = flos::ReadEdgeList(graph_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).value();
  } else {
    flos::GeneratorOptions options;
    options.num_nodes = static_cast<uint64_t>(synthetic_nodes);
    options.num_edges = static_cast<uint64_t>(synthetic_nodes) * 8;
    options.seed = static_cast<uint64_t>(seed);
    auto generated = flos::GenerateRmat(options);
    if (!generated.ok()) {
      std::fprintf(stderr, "generate: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    graph = std::move(generated).value();
  }
  std::printf("# %s\n", flos::StatsToString(flos::ComputeStats(graph)).c_str());

  // Label store for filtered queries. The store covers the GLOBAL graph;
  // in shard mode Start() projects it onto the shard's replicated nodes.
  flos::LabelStore labels;
  bool have_labels = false;
  const uint64_t global_nodes =
      shard_mode ? shard_meta.global_nodes : graph.NumNodes();
  if (!label_file.empty()) {
    auto loaded =
        flos::ReadLabelFile(label_file, static_cast<int64_t>(global_nodes));
    if (!loaded.ok()) {
      std::fprintf(stderr, "labels: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    labels = std::move(loaded).value();
    have_labels = true;
  } else if (synthetic_labels > 0) {
    flos::LabelGenOptions gen;
    gen.num_nodes = global_nodes;
    gen.num_labels = static_cast<uint32_t>(synthetic_labels);
    gen.labels_per_node = static_cast<uint32_t>(labels_per_node);
    // Same derivation as knn_cli so a generated graph + generated labels
    // reproduce across tools given the same --seed.
    gen.seed = static_cast<uint64_t>(seed) + 7;
    auto generated = flos::GenerateZipfLabels(gen);
    if (!generated.ok()) {
      std::fprintf(stderr, "labels: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    labels = std::move(generated).value();
    have_labels = true;
  }
  if (have_labels) {
    std::printf("# labels: %llu assignments over %u labels\n",
                static_cast<unsigned long long>(labels.NumAssignments()),
                static_cast<unsigned>(labels.NumLabels()));
  }

  flos::ServerOptions options;
  options.host = host;
  options.port = static_cast<uint16_t>(port);
  options.num_workers = static_cast<int>(workers);
  options.max_queue_depth = static_cast<size_t>(max_queue);
  options.query_cache_capacity =
      query_cache > 0 ? static_cast<size_t>(query_cache) : 0;
  options.subgraph_cache_capacity =
      subgraph_cache > 0 ? static_cast<size_t>(subgraph_cache) : 0;
  options.sweep_threads = static_cast<int>(sweep_threads);
  if (shard_mode) options.shard_meta = &shard_meta;
  if (have_labels) options.labels = &labels;
  flos::ServiceServer server(&graph, options);
  if (const flos::Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }
  // The CI smoke test greps this line for the ephemeral port.
  std::printf("flos_server listening on %s:%u\n", host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  server.WaitForShutdown();
  server.Shutdown();
  g_server = nullptr;
  std::printf("shutting down; final metrics:\n%s",
              server.metrics().registry.RenderText().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
