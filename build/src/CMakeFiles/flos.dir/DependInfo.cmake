
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/castanet.cc" "src/CMakeFiles/flos.dir/baselines/castanet.cc.o" "gcc" "src/CMakeFiles/flos.dir/baselines/castanet.cc.o.d"
  "/root/repo/src/baselines/dne.cc" "src/CMakeFiles/flos.dir/baselines/dne.cc.o" "gcc" "src/CMakeFiles/flos.dir/baselines/dne.cc.o.d"
  "/root/repo/src/baselines/ge_embed.cc" "src/CMakeFiles/flos.dir/baselines/ge_embed.cc.o" "gcc" "src/CMakeFiles/flos.dir/baselines/ge_embed.cc.o.d"
  "/root/repo/src/baselines/gi.cc" "src/CMakeFiles/flos.dir/baselines/gi.cc.o" "gcc" "src/CMakeFiles/flos.dir/baselines/gi.cc.o.d"
  "/root/repo/src/baselines/kdash.cc" "src/CMakeFiles/flos.dir/baselines/kdash.cc.o" "gcc" "src/CMakeFiles/flos.dir/baselines/kdash.cc.o.d"
  "/root/repo/src/baselines/ls_push.cc" "src/CMakeFiles/flos.dir/baselines/ls_push.cc.o" "gcc" "src/CMakeFiles/flos.dir/baselines/ls_push.cc.o.d"
  "/root/repo/src/baselines/ls_tht.cc" "src/CMakeFiles/flos.dir/baselines/ls_tht.cc.o" "gcc" "src/CMakeFiles/flos.dir/baselines/ls_tht.cc.o.d"
  "/root/repo/src/baselines/nn_ei.cc" "src/CMakeFiles/flos.dir/baselines/nn_ei.cc.o" "gcc" "src/CMakeFiles/flos.dir/baselines/nn_ei.cc.o.d"
  "/root/repo/src/core/bound_engine.cc" "src/CMakeFiles/flos.dir/core/bound_engine.cc.o" "gcc" "src/CMakeFiles/flos.dir/core/bound_engine.cc.o.d"
  "/root/repo/src/core/flos.cc" "src/CMakeFiles/flos.dir/core/flos.cc.o" "gcc" "src/CMakeFiles/flos.dir/core/flos.cc.o.d"
  "/root/repo/src/core/local_graph.cc" "src/CMakeFiles/flos.dir/core/local_graph.cc.o" "gcc" "src/CMakeFiles/flos.dir/core/local_graph.cc.o.d"
  "/root/repo/src/core/tht_bound_engine.cc" "src/CMakeFiles/flos.dir/core/tht_bound_engine.cc.o" "gcc" "src/CMakeFiles/flos.dir/core/tht_bound_engine.cc.o.d"
  "/root/repo/src/graph/accessor.cc" "src/CMakeFiles/flos.dir/graph/accessor.cc.o" "gcc" "src/CMakeFiles/flos.dir/graph/accessor.cc.o.d"
  "/root/repo/src/graph/dynamic_graph.cc" "src/CMakeFiles/flos.dir/graph/dynamic_graph.cc.o" "gcc" "src/CMakeFiles/flos.dir/graph/dynamic_graph.cc.o.d"
  "/root/repo/src/graph/edge_list_io.cc" "src/CMakeFiles/flos.dir/graph/edge_list_io.cc.o" "gcc" "src/CMakeFiles/flos.dir/graph/edge_list_io.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/flos.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/flos.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/flos.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/flos.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/presets.cc" "src/CMakeFiles/flos.dir/graph/presets.cc.o" "gcc" "src/CMakeFiles/flos.dir/graph/presets.cc.o.d"
  "/root/repo/src/graph/stats.cc" "src/CMakeFiles/flos.dir/graph/stats.cc.o" "gcc" "src/CMakeFiles/flos.dir/graph/stats.cc.o.d"
  "/root/repo/src/graph/traversal.cc" "src/CMakeFiles/flos.dir/graph/traversal.cc.o" "gcc" "src/CMakeFiles/flos.dir/graph/traversal.cc.o.d"
  "/root/repo/src/linalg/csr_matrix.cc" "src/CMakeFiles/flos.dir/linalg/csr_matrix.cc.o" "gcc" "src/CMakeFiles/flos.dir/linalg/csr_matrix.cc.o.d"
  "/root/repo/src/linalg/dense_matrix.cc" "src/CMakeFiles/flos.dir/linalg/dense_matrix.cc.o" "gcc" "src/CMakeFiles/flos.dir/linalg/dense_matrix.cc.o.d"
  "/root/repo/src/linalg/iterative_solver.cc" "src/CMakeFiles/flos.dir/linalg/iterative_solver.cc.o" "gcc" "src/CMakeFiles/flos.dir/linalg/iterative_solver.cc.o.d"
  "/root/repo/src/linalg/lu.cc" "src/CMakeFiles/flos.dir/linalg/lu.cc.o" "gcc" "src/CMakeFiles/flos.dir/linalg/lu.cc.o.d"
  "/root/repo/src/linalg/rcm.cc" "src/CMakeFiles/flos.dir/linalg/rcm.cc.o" "gcc" "src/CMakeFiles/flos.dir/linalg/rcm.cc.o.d"
  "/root/repo/src/measures/exact.cc" "src/CMakeFiles/flos.dir/measures/exact.cc.o" "gcc" "src/CMakeFiles/flos.dir/measures/exact.cc.o.d"
  "/root/repo/src/measures/measure.cc" "src/CMakeFiles/flos.dir/measures/measure.cc.o" "gcc" "src/CMakeFiles/flos.dir/measures/measure.cc.o.d"
  "/root/repo/src/measures/transforms.cc" "src/CMakeFiles/flos.dir/measures/transforms.cc.o" "gcc" "src/CMakeFiles/flos.dir/measures/transforms.cc.o.d"
  "/root/repo/src/storage/disk_builder.cc" "src/CMakeFiles/flos.dir/storage/disk_builder.cc.o" "gcc" "src/CMakeFiles/flos.dir/storage/disk_builder.cc.o.d"
  "/root/repo/src/storage/disk_graph.cc" "src/CMakeFiles/flos.dir/storage/disk_graph.cc.o" "gcc" "src/CMakeFiles/flos.dir/storage/disk_graph.cc.o.d"
  "/root/repo/src/util/flags.cc" "src/CMakeFiles/flos.dir/util/flags.cc.o" "gcc" "src/CMakeFiles/flos.dir/util/flags.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/flos.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/flos.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/flos.dir/util/status.cc.o" "gcc" "src/CMakeFiles/flos.dir/util/status.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/flos.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/flos.dir/util/table_printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
