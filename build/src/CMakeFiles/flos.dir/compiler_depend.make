# Empty compiler generated dependencies file for flos.
# This may be replaced when dependencies are built.
