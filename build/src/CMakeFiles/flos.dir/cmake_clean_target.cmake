file(REMOVE_RECURSE
  "libflos.a"
)
