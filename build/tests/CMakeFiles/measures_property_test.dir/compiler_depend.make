# Empty compiler generated dependencies file for measures_property_test.
# This may be replaced when dependencies are built.
