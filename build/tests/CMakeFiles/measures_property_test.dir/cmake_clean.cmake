file(REMOVE_RECURSE
  "CMakeFiles/measures_property_test.dir/measures_property_test.cc.o"
  "CMakeFiles/measures_property_test.dir/measures_property_test.cc.o.d"
  "measures_property_test"
  "measures_property_test.pdb"
  "measures_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measures_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
