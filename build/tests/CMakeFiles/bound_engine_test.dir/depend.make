# Empty dependencies file for bound_engine_test.
# This may be replaced when dependencies are built.
