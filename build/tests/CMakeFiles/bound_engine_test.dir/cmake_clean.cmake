file(REMOVE_RECURSE
  "CMakeFiles/bound_engine_test.dir/bound_engine_test.cc.o"
  "CMakeFiles/bound_engine_test.dir/bound_engine_test.cc.o.d"
  "bound_engine_test"
  "bound_engine_test.pdb"
  "bound_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bound_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
