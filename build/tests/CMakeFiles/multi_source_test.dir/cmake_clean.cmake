file(REMOVE_RECURSE
  "CMakeFiles/multi_source_test.dir/multi_source_test.cc.o"
  "CMakeFiles/multi_source_test.dir/multi_source_test.cc.o.d"
  "multi_source_test"
  "multi_source_test.pdb"
  "multi_source_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_source_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
