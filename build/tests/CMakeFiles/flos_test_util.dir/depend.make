# Empty dependencies file for flos_test_util.
# This may be replaced when dependencies are built.
