file(REMOVE_RECURSE
  "libflos_test_util.a"
)
