file(REMOVE_RECURSE
  "CMakeFiles/flos_test_util.dir/test_util.cc.o"
  "CMakeFiles/flos_test_util.dir/test_util.cc.o.d"
  "libflos_test_util.a"
  "libflos_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flos_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
