file(REMOVE_RECURSE
  "CMakeFiles/traversal_stats_test.dir/traversal_stats_test.cc.o"
  "CMakeFiles/traversal_stats_test.dir/traversal_stats_test.cc.o.d"
  "traversal_stats_test"
  "traversal_stats_test.pdb"
  "traversal_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traversal_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
