# Empty dependencies file for traversal_stats_test.
# This may be replaced when dependencies are built.
