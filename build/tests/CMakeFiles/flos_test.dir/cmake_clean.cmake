file(REMOVE_RECURSE
  "CMakeFiles/flos_test.dir/flos_test.cc.o"
  "CMakeFiles/flos_test.dir/flos_test.cc.o.d"
  "flos_test"
  "flos_test.pdb"
  "flos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
