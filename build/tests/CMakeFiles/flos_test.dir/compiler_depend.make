# Empty compiler generated dependencies file for flos_test.
# This may be replaced when dependencies are built.
