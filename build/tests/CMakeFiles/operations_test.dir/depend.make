# Empty dependencies file for operations_test.
# This may be replaced when dependencies are built.
