# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/flos_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/generators_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/measures_test[1]_include.cmake")
include("/root/repo/build/tests/measures_property_test[1]_include.cmake")
include("/root/repo/build/tests/operations_test[1]_include.cmake")
include("/root/repo/build/tests/bounds_test[1]_include.cmake")
include("/root/repo/build/tests/local_graph_test[1]_include.cmake")
include("/root/repo/build/tests/traversal_stats_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/bound_engine_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/dynamic_graph_test[1]_include.cmake")
include("/root/repo/build/tests/multi_source_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
