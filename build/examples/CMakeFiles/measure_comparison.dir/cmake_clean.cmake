file(REMOVE_RECURSE
  "CMakeFiles/measure_comparison.dir/measure_comparison.cpp.o"
  "CMakeFiles/measure_comparison.dir/measure_comparison.cpp.o.d"
  "measure_comparison"
  "measure_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
