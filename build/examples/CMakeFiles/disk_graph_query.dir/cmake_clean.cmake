file(REMOVE_RECURSE
  "CMakeFiles/disk_graph_query.dir/disk_graph_query.cpp.o"
  "CMakeFiles/disk_graph_query.dir/disk_graph_query.cpp.o.d"
  "disk_graph_query"
  "disk_graph_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_graph_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
