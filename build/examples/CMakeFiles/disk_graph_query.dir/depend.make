# Empty dependencies file for disk_graph_query.
# This may be replaced when dependencies are built.
