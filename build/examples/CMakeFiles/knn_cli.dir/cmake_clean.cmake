file(REMOVE_RECURSE
  "CMakeFiles/knn_cli.dir/knn_cli.cpp.o"
  "CMakeFiles/knn_cli.dir/knn_cli.cpp.o.d"
  "knn_cli"
  "knn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
