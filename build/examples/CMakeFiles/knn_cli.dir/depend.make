# Empty dependencies file for knn_cli.
# This may be replaced when dependencies are built.
