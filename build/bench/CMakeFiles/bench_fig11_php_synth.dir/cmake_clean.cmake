file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_php_synth.dir/bench_fig11_php_synth.cc.o"
  "CMakeFiles/bench_fig11_php_synth.dir/bench_fig11_php_synth.cc.o.d"
  "bench_fig11_php_synth"
  "bench_fig11_php_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_php_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
