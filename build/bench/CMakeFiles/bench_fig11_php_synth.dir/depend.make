# Empty dependencies file for bench_fig11_php_synth.
# This may be replaced when dependencies are built.
