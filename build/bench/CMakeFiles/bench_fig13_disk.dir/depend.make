# Empty dependencies file for bench_fig13_disk.
# This may be replaced when dependencies are built.
