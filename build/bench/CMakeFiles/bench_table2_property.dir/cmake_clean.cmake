file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_property.dir/bench_table2_property.cc.o"
  "CMakeFiles/bench_table2_property.dir/bench_table2_property.cc.o.d"
  "bench_table2_property"
  "bench_table2_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
