# Empty dependencies file for bench_table2_property.
# This may be replaced when dependencies are built.
