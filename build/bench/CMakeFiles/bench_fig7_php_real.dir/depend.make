# Empty dependencies file for bench_fig7_php_real.
# This may be replaced when dependencies are built.
