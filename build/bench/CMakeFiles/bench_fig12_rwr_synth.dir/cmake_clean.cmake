file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_rwr_synth.dir/bench_fig12_rwr_synth.cc.o"
  "CMakeFiles/bench_fig12_rwr_synth.dir/bench_fig12_rwr_synth.cc.o.d"
  "bench_fig12_rwr_synth"
  "bench_fig12_rwr_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_rwr_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
