# Empty dependencies file for bench_fig12_rwr_synth.
# This may be replaced when dependencies are built.
