file(REMOVE_RECURSE
  "libflos_bench_harness.a"
)
