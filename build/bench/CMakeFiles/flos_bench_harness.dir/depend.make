# Empty dependencies file for flos_bench_harness.
# This may be replaced when dependencies are built.
