file(REMOVE_RECURSE
  "CMakeFiles/flos_bench_harness.dir/harness.cc.o"
  "CMakeFiles/flos_bench_harness.dir/harness.cc.o.d"
  "libflos_bench_harness.a"
  "libflos_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flos_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
