# Empty dependencies file for bench_fig9_visited_ratio.
# This may be replaced when dependencies are built.
