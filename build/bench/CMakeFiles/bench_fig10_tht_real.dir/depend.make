# Empty dependencies file for bench_fig10_tht_real.
# This may be replaced when dependencies are built.
