file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_tht_real.dir/bench_fig10_tht_real.cc.o"
  "CMakeFiles/bench_fig10_tht_real.dir/bench_fig10_tht_real.cc.o.d"
  "bench_fig10_tht_real"
  "bench_fig10_tht_real.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_tht_real.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
