# Empty compiler generated dependencies file for bench_ablation_flos.
# This may be replaced when dependencies are built.
