file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_flos.dir/bench_ablation_flos.cc.o"
  "CMakeFiles/bench_ablation_flos.dir/bench_ablation_flos.cc.o.d"
  "bench_ablation_flos"
  "bench_ablation_flos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_flos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
