file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_rwr_real.dir/bench_fig8_rwr_real.cc.o"
  "CMakeFiles/bench_fig8_rwr_real.dir/bench_fig8_rwr_real.cc.o.d"
  "bench_fig8_rwr_real"
  "bench_fig8_rwr_real.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_rwr_real.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
