# Empty compiler generated dependencies file for bench_fig8_rwr_real.
# This may be replaced when dependencies are built.
