// Tests for the disk-resident graph store: round-trip fidelity, identical
// FLoS answers over memory and disk, cache behaviour under tiny budgets,
// and corruption detection.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "core/flos.h"
#include "storage/disk_builder.h"
#include "storage/disk_format.h"
#include "storage/disk_graph.h"
#include "storage/lru_cache.h"
#include "tests/test_util.h"

namespace flos {
namespace {

using testing::PaperExampleGraph;
using testing::RandomConnectedGraph;
using testing::ValueOrDie;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(LruBlockCacheTest, EvictsLeastRecentlyUsed) {
  LruBlockCache cache(10);
  cache.Put(1, std::vector<char>(4, 'a'));
  cache.Put(2, std::vector<char>(4, 'b'));
  ASSERT_NE(cache.Get(1), nullptr);  // touch 1 -> 2 becomes LRU
  cache.Put(3, std::vector<char>(4, 'c'));
  EXPECT_EQ(cache.Get(2), nullptr) << "block 2 should have been evicted";
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_LE(cache.used_bytes(), 10u);
}

TEST(LruBlockCacheTest, EvictionFollowsTheFullTouchOrder) {
  // Four 4-byte blocks in a 16-byte budget; every Get reshuffles recency.
  LruBlockCache cache(16);
  for (uint64_t id = 1; id <= 4; ++id) {
    cache.Put(id, std::vector<char>(4, static_cast<char>('a' + id)));
  }
  EXPECT_EQ(cache.num_blocks(), 4u);
  // After touching 3, 1, 4, 2 the recency order is (oldest) 3 1 4 2.
  ASSERT_NE(cache.Get(3), nullptr);
  ASSERT_NE(cache.Get(1), nullptr);
  ASSERT_NE(cache.Get(4), nullptr);
  ASSERT_NE(cache.Get(2), nullptr);
  cache.Put(5, std::vector<char>(4, 'e'));  // evicts 3
  EXPECT_EQ(cache.Get(3), nullptr);
  EXPECT_NE(cache.Get(1), nullptr);  // 1 freshened again
  cache.Put(6, std::vector<char>(4, 'f'));  // evicts 4 (1 was re-touched)
  EXPECT_EQ(cache.Get(4), nullptr);
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(5), nullptr);
  EXPECT_NE(cache.Get(6), nullptr);
  EXPECT_LE(cache.used_bytes(), 16u);
  EXPECT_EQ(cache.num_blocks(), 4u);
}

TEST(LruBlockCacheTest, ReinsertingAKeyReplacesItsBytes) {
  LruBlockCache cache(64);
  cache.Put(1, std::vector<char>(8, 'a'));
  cache.Put(1, std::vector<char>(16, 'b'));
  EXPECT_EQ(cache.num_blocks(), 1u);
  EXPECT_EQ(cache.used_bytes(), 16u)
      << "the old block's bytes must not leak into the budget";
  const std::vector<char>* block = cache.Get(1);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->size(), 16u);
  EXPECT_EQ((*block)[0], 'b');
}

TEST(LruBlockCacheTest, OversizedBlockIsNotCached) {
  LruBlockCache cache(4);
  cache.Put(1, std::vector<char>(16, 'x'));
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(DiskGraphTest, RoundTripsExactly) {
  const Graph g = RandomConnectedGraph(300, 900, 19);
  const std::string path = TempPath("roundtrip.flos");
  FLOS_ASSERT_OK(WriteDiskGraph(g, path));
  auto disk = ValueOrDie(DiskGraph::Open(path, DiskGraphOptions{}));
  EXPECT_EQ(disk->NumNodes(), g.NumNodes());
  EXPECT_EQ(disk->NumEdges(), g.NumEdges());
  EXPECT_DOUBLE_EQ(disk->MaxWeightedDegree(), g.MaxWeightedDegree());
  EXPECT_EQ(disk->DegreeOrder(), g.DegreeOrder());
  std::vector<Neighbor> from_disk;
  std::vector<Neighbor> from_mem;
  InMemoryAccessor mem(&g);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    FLOS_ASSERT_OK(disk->CopyNeighbors(u, &from_disk));
    FLOS_ASSERT_OK(mem.CopyNeighbors(u, &from_mem));
    ASSERT_EQ(from_disk, from_mem) << "node " << u;
    EXPECT_DOUBLE_EQ(disk->WeightedDegree(u), g.WeightedDegree(u));
  }
  std::remove(path.c_str());
}

TEST(DiskGraphTest, FlosAnswersMatchMemory) {
  const Graph g = RandomConnectedGraph(800, 2400, 23);
  const std::string path = TempPath("flos_query.flos");
  FLOS_ASSERT_OK(WriteDiskGraph(g, path));
  DiskGraphOptions disk_options;
  disk_options.cache_bytes = 1 << 16;  // small cache: force real I/O
  disk_options.block_bytes = 1 << 10;
  auto disk = ValueOrDie(DiskGraph::Open(path, disk_options));
  for (const Measure m : {Measure::kPhp, Measure::kRwr, Measure::kTht}) {
    FlosOptions options;
    options.measure = m;
    const FlosResult mem_result = ValueOrDie(FlosTopK(g, 5, 10, options));
    const FlosResult disk_result =
        ValueOrDie(FlosTopK(disk.get(), 5, 10, options));
    ASSERT_EQ(mem_result.topk.size(), disk_result.topk.size());
    for (size_t i = 0; i < mem_result.topk.size(); ++i) {
      EXPECT_EQ(mem_result.topk[i].node, disk_result.topk[i].node);
      EXPECT_NEAR(mem_result.topk[i].score, disk_result.topk[i].score, 1e-12);
    }
    EXPECT_EQ(mem_result.stats.visited_nodes, disk_result.stats.visited_nodes);
  }
  // The disk accessor actually hit the cache machinery.
  EXPECT_GT(disk->stats().cache_misses, 0u);
  EXPECT_GT(disk->stats().bytes_read, 0u);
  std::remove(path.c_str());
}

TEST(DiskGraphTest, TinyCacheStillCorrect) {
  const Graph g = RandomConnectedGraph(200, 600, 29);
  const std::string path = TempPath("tiny_cache.flos");
  FLOS_ASSERT_OK(WriteDiskGraph(g, path));
  DiskGraphOptions disk_options;
  disk_options.cache_bytes = 2048;  // two 1 KiB blocks
  disk_options.block_bytes = 1024;
  auto disk = ValueOrDie(DiskGraph::Open(path, disk_options));
  std::vector<Neighbor> nbs;
  InMemoryAccessor mem(&g);
  std::vector<Neighbor> expected;
  // Sweep twice; second sweep gets plenty of evictions.
  for (int round = 0; round < 2; ++round) {
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      FLOS_ASSERT_OK(disk->CopyNeighbors(u, &nbs));
      FLOS_ASSERT_OK(mem.CopyNeighbors(u, &expected));
      ASSERT_EQ(nbs, expected);
    }
  }
  EXPECT_GT(disk->stats().cache_hits, 0u);
  EXPECT_GT(disk->stats().cache_misses, 2u);
  std::remove(path.c_str());
}

TEST(DiskGraphTest, RepeatQueriesReuseCachedBlocksWithoutNewIo) {
  // A cache big enough for the whole adjacency region: the first query
  // pays the I/O, every later query over the same region must be served
  // from cached blocks — zero new bytes read. This is the storage-layer
  // analogue of the engine's certified-result cache: repeat work hits
  // warm state instead of the disk.
  const Graph g = RandomConnectedGraph(400, 1200, 41);
  const std::string path = TempPath("block_reuse.flos");
  FLOS_ASSERT_OK(WriteDiskGraph(g, path));
  DiskGraphOptions disk_options;
  disk_options.cache_bytes = 1 << 22;  // 4 MiB >> the whole file
  disk_options.block_bytes = 1 << 10;
  auto disk = ValueOrDie(DiskGraph::Open(path, disk_options));

  FlosOptions options;
  options.measure = Measure::kPhp;
  const FlosResult first = ValueOrDie(FlosTopK(disk.get(), 7, 10, options));
  ASSERT_TRUE(first.stats.exact);
  const uint64_t bytes_after_first = disk->stats().bytes_read;
  const uint64_t misses_after_first = disk->stats().cache_misses;
  EXPECT_GT(bytes_after_first, 0u);

  const FlosResult second = ValueOrDie(FlosTopK(disk.get(), 7, 10, options));
  ASSERT_TRUE(second.stats.exact);
  EXPECT_EQ(disk->stats().bytes_read, bytes_after_first)
      << "repeat query must not touch the disk";
  EXPECT_EQ(disk->stats().cache_misses, misses_after_first);
  EXPECT_GT(disk->stats().cache_hits, 0u);
  ASSERT_EQ(second.topk.size(), first.topk.size());
  for (size_t i = 0; i < first.topk.size(); ++i) {
    EXPECT_EQ(second.topk[i].node, first.topk[i].node);
    EXPECT_DOUBLE_EQ(second.topk[i].score, first.topk[i].score);
  }
  std::remove(path.c_str());
}

TEST(DiskGraphTest, DetectsCorruption) {
  EXPECT_FALSE(DiskGraph::Open("/no/such/file", DiskGraphOptions{}).ok());

  // Bad magic.
  const std::string bad_magic = TempPath("bad_magic.flos");
  std::FILE* f = std::fopen(bad_magic.c_str(), "wb");
  DiskHeader header{};
  std::memcpy(header.magic, "NOTFLOS!", 8);
  std::fwrite(&header, sizeof(header), 1, f);
  std::fclose(f);
  const auto r1 = DiskGraph::Open(bad_magic, DiskGraphOptions{});
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kCorruption);
  std::remove(bad_magic.c_str());

  // Truncated adjacency region.
  const Graph g = PaperExampleGraph();
  const std::string truncated = TempPath("truncated.flos");
  FLOS_ASSERT_OK(WriteDiskGraph(g, truncated));
  // Chop the last 16 bytes off.
  f = std::fopen(truncated.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  FLOS_ASSERT_OK([&]() -> Status {
    if (truncate(truncated.c_str(), size - 16) != 0) {
      return Status::IoError("truncate failed");
    }
    return Status::OK();
  }());
  auto disk = ValueOrDie(DiskGraph::Open(truncated, DiskGraphOptions{}));
  std::vector<Neighbor> nbs;
  Status last = Status::OK();
  for (NodeId u = 0; u < g.NumNodes() && last.ok(); ++u) {
    last = disk->CopyNeighbors(u, &nbs);
  }
  EXPECT_FALSE(last.ok()) << "reading past the truncation must fail";
  std::remove(truncated.c_str());
}

}  // namespace
}  // namespace flos
