// Tests for the disk-resident graph store: round-trip fidelity, identical
// FLoS answers over memory and disk, cache behaviour under tiny budgets,
// and corruption detection.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "core/flos.h"
#include "storage/disk_builder.h"
#include "storage/disk_format.h"
#include "storage/disk_graph.h"
#include "storage/lru_cache.h"
#include "tests/test_util.h"

namespace flos {
namespace {

using testing::PaperExampleGraph;
using testing::RandomConnectedGraph;
using testing::ValueOrDie;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(LruBlockCacheTest, EvictsLeastRecentlyUsed) {
  LruBlockCache cache(10);
  cache.Put(1, std::vector<char>(4, 'a'));
  cache.Put(2, std::vector<char>(4, 'b'));
  ASSERT_NE(cache.Get(1), nullptr);  // touch 1 -> 2 becomes LRU
  cache.Put(3, std::vector<char>(4, 'c'));
  EXPECT_EQ(cache.Get(2), nullptr) << "block 2 should have been evicted";
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_LE(cache.used_bytes(), 10u);
}

TEST(LruBlockCacheTest, OversizedBlockIsNotCached) {
  LruBlockCache cache(4);
  cache.Put(1, std::vector<char>(16, 'x'));
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(DiskGraphTest, RoundTripsExactly) {
  const Graph g = RandomConnectedGraph(300, 900, 19);
  const std::string path = TempPath("roundtrip.flos");
  FLOS_ASSERT_OK(WriteDiskGraph(g, path));
  auto disk = ValueOrDie(DiskGraph::Open(path, DiskGraphOptions{}));
  EXPECT_EQ(disk->NumNodes(), g.NumNodes());
  EXPECT_EQ(disk->NumEdges(), g.NumEdges());
  EXPECT_DOUBLE_EQ(disk->MaxWeightedDegree(), g.MaxWeightedDegree());
  EXPECT_EQ(disk->DegreeOrder(), g.DegreeOrder());
  std::vector<Neighbor> from_disk;
  std::vector<Neighbor> from_mem;
  InMemoryAccessor mem(&g);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    FLOS_ASSERT_OK(disk->CopyNeighbors(u, &from_disk));
    FLOS_ASSERT_OK(mem.CopyNeighbors(u, &from_mem));
    ASSERT_EQ(from_disk, from_mem) << "node " << u;
    EXPECT_DOUBLE_EQ(disk->WeightedDegree(u), g.WeightedDegree(u));
  }
  std::remove(path.c_str());
}

TEST(DiskGraphTest, FlosAnswersMatchMemory) {
  const Graph g = RandomConnectedGraph(800, 2400, 23);
  const std::string path = TempPath("flos_query.flos");
  FLOS_ASSERT_OK(WriteDiskGraph(g, path));
  DiskGraphOptions disk_options;
  disk_options.cache_bytes = 1 << 16;  // small cache: force real I/O
  disk_options.block_bytes = 1 << 10;
  auto disk = ValueOrDie(DiskGraph::Open(path, disk_options));
  for (const Measure m : {Measure::kPhp, Measure::kRwr, Measure::kTht}) {
    FlosOptions options;
    options.measure = m;
    const FlosResult mem_result = ValueOrDie(FlosTopK(g, 5, 10, options));
    const FlosResult disk_result =
        ValueOrDie(FlosTopK(disk.get(), 5, 10, options));
    ASSERT_EQ(mem_result.topk.size(), disk_result.topk.size());
    for (size_t i = 0; i < mem_result.topk.size(); ++i) {
      EXPECT_EQ(mem_result.topk[i].node, disk_result.topk[i].node);
      EXPECT_NEAR(mem_result.topk[i].score, disk_result.topk[i].score, 1e-12);
    }
    EXPECT_EQ(mem_result.stats.visited_nodes, disk_result.stats.visited_nodes);
  }
  // The disk accessor actually hit the cache machinery.
  EXPECT_GT(disk->stats().cache_misses, 0u);
  EXPECT_GT(disk->stats().bytes_read, 0u);
  std::remove(path.c_str());
}

TEST(DiskGraphTest, TinyCacheStillCorrect) {
  const Graph g = RandomConnectedGraph(200, 600, 29);
  const std::string path = TempPath("tiny_cache.flos");
  FLOS_ASSERT_OK(WriteDiskGraph(g, path));
  DiskGraphOptions disk_options;
  disk_options.cache_bytes = 2048;  // two 1 KiB blocks
  disk_options.block_bytes = 1024;
  auto disk = ValueOrDie(DiskGraph::Open(path, disk_options));
  std::vector<Neighbor> nbs;
  InMemoryAccessor mem(&g);
  std::vector<Neighbor> expected;
  // Sweep twice; second sweep gets plenty of evictions.
  for (int round = 0; round < 2; ++round) {
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      FLOS_ASSERT_OK(disk->CopyNeighbors(u, &nbs));
      FLOS_ASSERT_OK(mem.CopyNeighbors(u, &expected));
      ASSERT_EQ(nbs, expected);
    }
  }
  EXPECT_GT(disk->stats().cache_hits, 0u);
  EXPECT_GT(disk->stats().cache_misses, 2u);
  std::remove(path.c_str());
}

TEST(DiskGraphTest, DetectsCorruption) {
  EXPECT_FALSE(DiskGraph::Open("/no/such/file", DiskGraphOptions{}).ok());

  // Bad magic.
  const std::string bad_magic = TempPath("bad_magic.flos");
  std::FILE* f = std::fopen(bad_magic.c_str(), "wb");
  DiskHeader header{};
  std::memcpy(header.magic, "NOTFLOS!", 8);
  std::fwrite(&header, sizeof(header), 1, f);
  std::fclose(f);
  const auto r1 = DiskGraph::Open(bad_magic, DiskGraphOptions{});
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kCorruption);
  std::remove(bad_magic.c_str());

  // Truncated adjacency region.
  const Graph g = PaperExampleGraph();
  const std::string truncated = TempPath("truncated.flos");
  FLOS_ASSERT_OK(WriteDiskGraph(g, truncated));
  // Chop the last 16 bytes off.
  f = std::fopen(truncated.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  FLOS_ASSERT_OK([&]() -> Status {
    if (truncate(truncated.c_str(), size - 16) != 0) {
      return Status::IoError("truncate failed");
    }
    return Status::OK();
  }());
  auto disk = ValueOrDie(DiskGraph::Open(truncated, DiskGraphOptions{}));
  std::vector<Neighbor> nbs;
  Status last = Status::OK();
  for (NodeId u = 0; u < g.NumNodes() && last.ok(); ++u) {
    last = disk->CopyNeighbors(u, &nbs);
  }
  EXPECT_FALSE(last.ok()) << "reading past the truncation must fail";
  std::remove(truncated.c_str());
}

}  // namespace
}  // namespace flos
