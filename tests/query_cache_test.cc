// Tests for the certified-result query cache: hit/miss semantics, the
// certified-only admission rule, LRU eviction, exact epoch-based
// invalidation against a mutating DynamicGraph, and the FLOS_AUDIT
// backstop that a cache can never serve a stale graph epoch.

#include "core/query_cache.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/flos.h"
#include "core/flos_engine.h"
#include "graph/dynamic_graph.h"
#include "tests/test_util.h"
#include "util/check.h"

namespace flos {
namespace {

using testing::RandomConnectedGraph;
using testing::ValueOrDie;

QueryCache::Key TestKey(NodeId query, uint64_t epoch = 0) {
  QueryCache::Key key;
  key.query = query;
  key.measure = Measure::kPhp;
  key.k = 10;
  key.c = 0.5;
  key.tht_length = 10;
  key.epoch = epoch;
  return key;
}

FlosResult CertifiedResult(NodeId top_node) {
  FlosResult result;
  ScoredNode s;
  s.node = top_node;
  s.score = 0.25;
  s.lower = 0.24;
  s.upper = 0.26;
  result.topk.push_back(s);
  result.stats.exact = true;
  result.stats.visited_nodes = 42;
  return result;
}

TEST(QueryCacheTest, MissThenHitReturnsStoredResult) {
  QueryCache cache(4);
  FlosResult out;
  EXPECT_FALSE(cache.Lookup(TestKey(7), &out));
  EXPECT_EQ(cache.misses(), 1u);

  cache.Insert(TestKey(7), CertifiedResult(3));
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(cache.Lookup(TestKey(7), &out));
  EXPECT_EQ(cache.hits(), 1u);
  ASSERT_EQ(out.topk.size(), 1u);
  EXPECT_EQ(out.topk[0].node, 3u);
  EXPECT_TRUE(out.stats.exact) << "hits must stay certified";
  EXPECT_TRUE(out.stats.cache_hit) << "hits must be marked as such";
}

TEST(QueryCacheTest, KeyFieldsAllDiscriminate) {
  QueryCache cache(16);
  cache.Insert(TestKey(7), CertifiedResult(3));
  FlosResult out;
  QueryCache::Key other = TestKey(8);
  EXPECT_FALSE(cache.Lookup(other, &out));
  other = TestKey(7);
  other.measure = Measure::kRwr;
  EXPECT_FALSE(cache.Lookup(other, &out));
  other = TestKey(7);
  other.k = 11;
  EXPECT_FALSE(cache.Lookup(other, &out));
  other = TestKey(7);
  other.c = 0.6;
  EXPECT_FALSE(cache.Lookup(other, &out));
  other = TestKey(7);
  other.epoch = 1;
  EXPECT_FALSE(cache.Lookup(other, &out))
      << "a bumped epoch must never match an older entry";
}

TEST(QueryCacheTest, RejectsUncertifiedResults) {
  QueryCache cache(4);
  FlosResult anytime = CertifiedResult(3);
  anytime.stats.exact = false;  // deadline cut the proof short
  cache.Insert(TestKey(7), anytime);
  EXPECT_EQ(cache.size(), 0u) << "only certified results may be cached";
  FlosResult out;
  EXPECT_FALSE(cache.Lookup(TestKey(7), &out));
}

TEST(QueryCacheTest, EvictsLeastRecentlyUsed) {
  QueryCache cache(2);
  cache.Insert(TestKey(1), CertifiedResult(10));
  cache.Insert(TestKey(2), CertifiedResult(20));
  FlosResult out;
  ASSERT_TRUE(cache.Lookup(TestKey(1), &out));  // freshen 1 -> 2 is LRU
  cache.Insert(TestKey(3), CertifiedResult(30));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Lookup(TestKey(2), &out))
      << "key 2 was least recently used and must be evicted";
  EXPECT_TRUE(cache.Lookup(TestKey(1), &out));
  EXPECT_TRUE(cache.Lookup(TestKey(3), &out));
}

TEST(QueryCacheTest, ZeroCapacityDisablesAdmission) {
  QueryCache cache(0);
  cache.Insert(TestKey(1), CertifiedResult(10));
  EXPECT_EQ(cache.size(), 0u);
  FlosResult out;
  EXPECT_FALSE(cache.Lookup(TestKey(1), &out));
}

TEST(QueryCacheTest, ClearEmptiesTheCache) {
  QueryCache cache(4);
  cache.Insert(TestKey(1), CertifiedResult(10));
  cache.Insert(TestKey(2), CertifiedResult(20));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  FlosResult out;
  EXPECT_FALSE(cache.Lookup(TestKey(1), &out));
}

// The end-to-end contract: an engine with a cache serves the second
// identical query from the cache, and a graph mutation (epoch bump)
// exactly invalidates — the next query recomputes against the new graph.
TEST(QueryCacheTest, EngineHitsThenEpochBumpInvalidates) {
  DynamicGraph dyn{RandomConnectedGraph(300, 900, 11)};
  QueryCache cache(64);
  FlosEngine engine(&dyn);
  engine.set_query_cache(&cache);

  FlosOptions options;
  options.measure = Measure::kPhp;
  const FlosResult first = ValueOrDie(engine.TopK(5, 8, options));
  ASSERT_TRUE(first.stats.exact);
  EXPECT_FALSE(first.stats.cache_hit);
  EXPECT_EQ(cache.size(), 1u);

  const FlosResult second = ValueOrDie(engine.TopK(5, 8, options));
  EXPECT_TRUE(second.stats.cache_hit) << "identical repeat query must hit";
  EXPECT_TRUE(second.stats.exact);
  ASSERT_EQ(second.topk.size(), first.topk.size());
  for (size_t i = 0; i < first.topk.size(); ++i) {
    EXPECT_EQ(second.topk[i].node, first.topk[i].node);
    EXPECT_DOUBLE_EQ(second.topk[i].score, first.topk[i].score);
  }

  // Mutate the graph: the epoch bump makes every cached key unreachable,
  // so the same query recomputes — and agrees with a cache-free engine
  // over the updated graph.
  const uint64_t epoch_before = dyn.Epoch();
  FLOS_ASSERT_OK(dyn.AddEdge(5, 250, 3.0));
  EXPECT_GT(dyn.Epoch(), epoch_before);
  const FlosResult third = ValueOrDie(engine.TopK(5, 8, options));
  EXPECT_FALSE(third.stats.cache_hit)
      << "a graph update must invalidate the cached answer";
  const FlosResult fresh = ValueOrDie(FlosTopK(&dyn, 5, 8, options));
  ASSERT_EQ(third.topk.size(), fresh.topk.size());
  for (size_t i = 0; i < fresh.topk.size(); ++i) {
    EXPECT_EQ(third.topk[i].node, fresh.topk[i].node);
    EXPECT_NEAR(third.topk[i].score, fresh.topk[i].score, 1e-12);
  }

  // And the post-update answer is itself cached under the new epoch.
  const FlosResult fourth = ValueOrDie(engine.TopK(5, 8, options));
  EXPECT_TRUE(fourth.stats.cache_hit);
}

TEST(QueryCacheTest, MultiSourceQueriesBypassTheCache) {
  DynamicGraph dyn{RandomConnectedGraph(200, 600, 13)};
  QueryCache cache(64);
  FlosEngine engine(&dyn);
  engine.set_query_cache(&cache);
  FlosOptions options;
  const std::vector<NodeId> sources = {3, 9};
  const FlosResult a = ValueOrDie(engine.TopKSet(sources, 5, options));
  ASSERT_TRUE(a.stats.exact);
  EXPECT_EQ(cache.size(), 0u) << "set queries are not cacheable";
  const FlosResult b = ValueOrDie(engine.TopKSet(sources, 5, options));
  EXPECT_FALSE(b.stats.cache_hit);
}

#if FLOS_AUDIT_ENABLED

using QueryCacheDeathTest = ::testing::Test;

TEST(QueryCacheDeathTest, ServingAStaleEpochTripsTheAudit) {
  QueryCache cache(4);
  cache.Insert(TestKey(7), CertifiedResult(3));
  // Simulate the impossible: an entry whose stored epoch disagrees with
  // the key it is filed under (only corruption or an invalidation bug can
  // produce this). The audit tier must refuse to serve it.
  ASSERT_TRUE(cache.CorruptEpochForTest(TestKey(7), /*stored_epoch=*/99));
  FlosResult out;
  EXPECT_DEATH(cache.Lookup(TestKey(7), &out),
               "query cache serving a stale graph epoch");
}

#endif  // FLOS_AUDIT_ENABLED

}  // namespace
}  // namespace flos
