// FlosEngine workspace-reuse tests: a reused engine must return results
// bit-identical to a fresh engine (and to the one-shot FlosTopK wrappers)
// for every measure, in any interleaving, and a failed call must not
// poison the workspace for subsequent queries.

#include "core/flos_engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/flos.h"
#include "graph/accessor.h"
#include "measures/measure.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace flos {
namespace {

using testing::PaperExampleGraph;
using testing::RandomConnectedGraph;
using testing::ValueOrDie;

// Bit-identical comparison: the reused engine runs the exact same code
// path over the exact same input sequence as a fresh one, so even the
// floating-point scores must match exactly, not just within tolerance.
void ExpectBitIdentical(const FlosResult& a, const FlosResult& b) {
  ASSERT_EQ(a.topk.size(), b.topk.size());
  for (size_t i = 0; i < a.topk.size(); ++i) {
    EXPECT_EQ(a.topk[i].node, b.topk[i].node) << "entry " << i;
    EXPECT_EQ(a.topk[i].score, b.topk[i].score) << "entry " << i;
    EXPECT_EQ(a.topk[i].lower, b.topk[i].lower) << "entry " << i;
    EXPECT_EQ(a.topk[i].upper, b.topk[i].upper) << "entry " << i;
  }
  EXPECT_EQ(a.stats.visited_nodes, b.stats.visited_nodes);
  EXPECT_EQ(a.stats.expansions, b.stats.expansions);
  EXPECT_EQ(a.stats.inner_iterations, b.stats.inner_iterations);
  EXPECT_EQ(a.stats.exact, b.stats.exact);
  EXPECT_EQ(a.stats.exhausted_component, b.stats.exhausted_component);
}

FlosOptions OptionsFor(Measure measure) {
  FlosOptions options;
  options.measure = measure;
  options.c = 0.5;
  options.tht_length = 8;
  return options;
}

TEST(EngineReuseTest, SameQueryTwiceIsBitIdentical) {
  const Graph g = RandomConnectedGraph(300, 900, 17);
  InMemoryAccessor accessor(&g);
  FlosEngine engine(&accessor);
  const FlosOptions options = OptionsFor(Measure::kPhp);
  const FlosResult first = ValueOrDie(engine.TopK(4, 10, options));
  const FlosResult second = ValueOrDie(engine.TopK(4, 10, options));
  ExpectBitIdentical(first, second);
}

TEST(EngineReuseTest, ReuseMatchesFreshEngineAcrossAllMeasures) {
  const Graph g = RandomConnectedGraph(300, 900, 23);
  InMemoryAccessor accessor(&g);
  FlosEngine reused(&accessor);

  const Measure measures[] = {Measure::kPhp, Measure::kEi, Measure::kDht,
                              Measure::kTht, Measure::kRwr};
  Rng rng(5);
  // Interleave measures and queries on ONE engine; every answer must be
  // bit-identical to a throwaway engine answering only that query.
  for (int round = 0; round < 3; ++round) {
    for (const Measure m : measures) {
      const auto query = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
      const FlosOptions options = OptionsFor(m);
      const FlosResult warm = ValueOrDie(reused.TopK(query, 10, options));
      InMemoryAccessor fresh_accessor(&g);
      FlosEngine fresh(&fresh_accessor);
      const FlosResult cold = ValueOrDie(fresh.TopK(query, 10, options));
      ExpectBitIdentical(warm, cold);
    }
  }
}

TEST(EngineReuseTest, ReuseMatchesOneShotWrapper) {
  const Graph g = RandomConnectedGraph(200, 600, 31);
  InMemoryAccessor accessor(&g);
  FlosEngine engine(&accessor);
  const FlosOptions options = OptionsFor(Measure::kRwr);
  for (const NodeId query : {NodeId{0}, NodeId{7}, NodeId{199}, NodeId{7}}) {
    const FlosResult warm = ValueOrDie(engine.TopK(query, 5, options));
    const FlosResult one_shot = ValueOrDie(FlosTopK(g, query, 5, options));
    ExpectBitIdentical(warm, one_shot);
  }
}

TEST(EngineReuseTest, MultiSourceReuseMatchesFresh) {
  const Graph g = RandomConnectedGraph(200, 600, 41);
  InMemoryAccessor accessor(&g);
  FlosEngine engine(&accessor);
  const FlosOptions options = OptionsFor(Measure::kPhp);
  const std::vector<std::vector<NodeId>> query_sets = {
      {3, 77, 150}, {0, 1}, {3, 77, 150}};
  for (const auto& queries : query_sets) {
    const FlosResult warm = ValueOrDie(engine.TopKSet(queries, 8, options));
    const FlosResult cold = ValueOrDie(FlosTopKSet(g, queries, 8, options));
    ExpectBitIdentical(warm, cold);
  }
}

TEST(EngineReuseTest, FailedCallDoesNotPoisonEngine) {
  const Graph g = PaperExampleGraph();
  InMemoryAccessor accessor(&g);
  FlosEngine engine(&accessor);
  const FlosOptions options = OptionsFor(Measure::kPhp);

  const FlosResult before = ValueOrDie(engine.TopK(0, 3, options));

  // Invalid arguments of every flavor: bad k, out-of-range node, bad c,
  // multi-source with a single-source-only measure, duplicate queries.
  EXPECT_FALSE(engine.TopK(0, 0, options).ok());
  EXPECT_FALSE(
      engine.TopK(static_cast<NodeId>(g.NumNodes()), 3, options).ok());
  FlosOptions bad_c = options;
  bad_c.c = 1.5;
  EXPECT_FALSE(engine.TopK(0, 3, bad_c).ok());
  EXPECT_FALSE(engine.TopKSet({0, 1}, 3, OptionsFor(Measure::kRwr)).ok());
  EXPECT_FALSE(engine.TopKSet({0, 0}, 3, options).ok());

  const FlosResult after = ValueOrDie(engine.TopK(0, 3, options));
  ExpectBitIdentical(before, after);
}

TEST(EngineReuseTest, TruncatedRunDoesNotPoisonEngine) {
  // A best-effort (max_visited-truncated) query leaves the workspace mid
  // search; the next query must still start from a clean slate.
  const Graph g = RandomConnectedGraph(300, 900, 53);
  InMemoryAccessor accessor(&g);
  FlosEngine engine(&accessor);
  FlosOptions truncated = OptionsFor(Measure::kPhp);
  truncated.max_visited = 5;
  const FlosResult partial = ValueOrDie(engine.TopK(9, 10, truncated));
  EXPECT_FALSE(partial.stats.exact);

  const FlosOptions options = OptionsFor(Measure::kPhp);
  const FlosResult warm = ValueOrDie(engine.TopK(9, 10, options));
  const FlosResult cold = ValueOrDie(FlosTopK(g, 9, 10, options));
  ExpectBitIdentical(warm, cold);
}

}  // namespace
}  // namespace flos
