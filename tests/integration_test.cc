// End-to-end integration tests: dataset proxies through FLoS and the
// baselines, disk storage in the loop, and cross-method agreement.

#include <gtest/gtest.h>

#include <cstdio>

#include "baselines/castanet.h"
#include "baselines/gi.h"
#include "baselines/ls_push.h"
#include "baselines/nn_ei.h"
#include "core/flos.h"
#include "graph/generators.h"
#include "graph/presets.h"
#include "graph/traversal.h"
#include "measures/exact.h"
#include "storage/disk_builder.h"
#include "storage/disk_graph.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace flos {
namespace {

using testing::ValueOrDie;

// The full pipeline a bench run exercises: preset proxy -> queries ->
// FLoS for every measure -> agreement with GI ground truth.
TEST(IntegrationTest, PresetProxyAllMeasuresAgreeWithGi) {
  const GraphPreset preset = ValueOrDie(FindPreset("dp"));
  const Graph g = ValueOrDie(BuildPresetGraph(preset, 0.004, 7));
  Rng rng(3);
  MeasureParams params;
  for (int trial = 0; trial < 2; ++trial) {
    NodeId q;
    do {
      q = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    } while (g.Degree(q) == 0);
    for (const Measure m : {Measure::kPhp, Measure::kEi, Measure::kDht,
                            Measure::kTht, Measure::kRwr}) {
      FlosOptions fo;
      fo.measure = m;
      fo.tolerance = 1e-8;
      const FlosResult flos_result = ValueOrDie(FlosTopK(g, q, 10, fo));
      const auto exact = ValueOrDie(ExactMeasure(g, q, m, params));
      std::vector<NodeId> nodes;
      for (const auto& s : flos_result.topk) nodes.push_back(s.node);
      testing::ExpectTopKMatchesScores(nodes, exact, q, 10,
                                       MeasureDirection(m), 1e-6);
    }
  }
}

// FLoS over the serialized preset graph gives identical answers and the
// access statistics reflect real disk traffic.
TEST(IntegrationTest, DiskPipelineMatchesMemory) {
  const GraphPreset preset = ValueOrDie(FindPreset("az"));
  const Graph g = ValueOrDie(BuildPresetGraph(preset, 0.004, 7));
  const std::string path = ::testing::TempDir() + "/integration.flosgrf";
  FLOS_ASSERT_OK(WriteDiskGraph(g, path));
  DiskGraphOptions disk_options;
  disk_options.cache_bytes = 8192;
  disk_options.block_bytes = 1024;
  auto disk = ValueOrDie(DiskGraph::Open(path, disk_options));

  FlosOptions fo;
  fo.measure = Measure::kPhp;
  Rng rng(5);
  for (int trial = 0; trial < 3; ++trial) {
    NodeId q;
    do {
      q = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    } while (g.Degree(q) == 0);
    const FlosResult mem = ValueOrDie(FlosTopK(g, q, 8, fo));
    const FlosResult dsk = ValueOrDie(FlosTopK(disk.get(), q, 8, fo));
    ASSERT_EQ(mem.topk.size(), dsk.topk.size());
    for (size_t i = 0; i < mem.topk.size(); ++i) {
      EXPECT_EQ(mem.topk[i].node, dsk.topk[i].node);
    }
  }
  EXPECT_GT(disk->stats().bytes_read, 0u);
  std::remove(path.c_str());
}

// Exact methods agree among themselves on the same queries.
TEST(IntegrationTest, ExactMethodsAgreeOnRwr) {
  const Graph g = testing::RandomConnectedGraph(400, 1200, 31);
  NnEiOptions nn;  // EI ranking == RWR ranking after degree reweighting?
  // NN_EI ranks by EI; compare Castanet (RWR) with FLoS_RWR instead.
  (void)nn;
  FlosOptions fo;
  fo.measure = Measure::kRwr;
  CastanetOptions co;
  GiOptions go;
  go.measure = Measure::kRwr;
  const auto exact = ValueOrDie(ExactRwr(g, 9, 0.5));
  const FlosResult f = ValueOrDie(FlosTopK(g, 9, 12, fo));
  const TopKAnswer c = ValueOrDie(CastanetTopK(g, 9, 12, co));
  const TopKAnswer gi = ValueOrDie(GiTopK(g, 9, 12, go));
  std::vector<NodeId> fn;
  for (const auto& s : f.topk) fn.push_back(s.node);
  testing::ExpectTopKMatchesScores(fn, exact, 9, 12, Direction::kMaximize);
  testing::ExpectTopKMatchesScores(c.nodes, exact, 9, 12,
                                   Direction::kMaximize);
  testing::ExpectTopKMatchesScores(gi.nodes, exact, 9, 12,
                                   Direction::kMaximize);
}

// Watts-Strogatz proxies: high clustering / large diameter at low beta,
// and the THT pipeline stays local on them.
TEST(IntegrationTest, WattsStrogatzThtPipeline) {
  GeneratorOptions options;
  options.num_nodes = 4000;
  options.seed = 13;
  const Graph low_beta =
      ValueOrDie(GenerateWattsStrogatz(options, /*lattice_degree=*/6,
                                       /*rewire_beta=*/0.001));
  const Graph high_beta =
      ValueOrDie(GenerateWattsStrogatz(options, 6, /*rewire_beta=*/0.5));
  // Low rewiring -> much larger hop distances.
  const auto far_low = BfsDistances(low_beta, 0);
  const auto far_high = BfsDistances(high_beta, 0);
  int32_t max_low = 0;
  int32_t max_high = 0;
  for (const int32_t d : far_low) max_low = std::max(max_low, d);
  for (const int32_t d : far_high) max_high = std::max(max_high, d);
  EXPECT_GT(max_low, 4 * max_high)
      << "low-beta WS should have much larger diameter";

  FlosOptions fo;
  fo.measure = Measure::kTht;
  fo.tht_length = 10;
  const FlosResult r = ValueOrDie(FlosTopK(low_beta, 100, 10, fo));
  EXPECT_TRUE(r.stats.exact);
  EXPECT_LT(r.stats.visited_nodes, low_beta.NumNodes() / 10)
      << "THT search should stay local on a large-diameter graph";
  const auto exact = ValueOrDie(ExactTht(low_beta, 100, 10));
  std::vector<NodeId> nodes;
  for (const auto& s : r.topk) nodes.push_back(s.node);
  testing::ExpectTopKMatchesScores(nodes, exact, 100, 10,
                                   Direction::kMinimize);
}

// Clustered approximate search: recall improves with cluster size.
TEST(IntegrationTest, LsPushRecallGrowsWithClusterSize) {
  const Graph g = testing::RandomConnectedGraph(2000, 6000, 17);
  MeasureParams params;
  const auto exact = ValueOrDie(ExactRwr(g, 42, 0.5));
  const auto truth = TopKFromScores(exact, 42, 10, Direction::kMaximize);
  double prev_recall = -1;
  for (const uint32_t size : {50u, 2000u}) {
    LsPushOptions options;
    options.cluster_size = size;
    const LsPushIndex index = ValueOrDie(LsPushIndex::Build(&g, options));
    const TopKAnswer a = ValueOrDie(index.Query(42, 10, Measure::kRwr, params));
    double recall = 0;
    for (const NodeId t : truth) {
      for (const NodeId got : a.nodes) recall += (got == t);
    }
    recall /= static_cast<double>(truth.size());
    EXPECT_GE(recall, prev_recall);
    prev_recall = recall;
  }
  EXPECT_GT(prev_recall, 0.9) << "a whole-graph cluster is near-exact";
}

}  // namespace
}  // namespace flos
