// Negative-compile case: touching a FLOS_GUARDED_BY field without holding
// its mutex must be rejected by clang's -Wthread-safety (promoted to an
// error by -Werror). tests/compile_fail/CMakeLists.txt compiles this file
// twice: as-is it must FAIL, and with -DFLOS_COMPILE_FAIL_FIXED (the
// correctly locked variant) it must SUCCEED — proving the failure comes
// from the capability analysis and not an unrelated build problem.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(long amount) {
#ifdef FLOS_COMPILE_FAIL_FIXED
    flos::MutexLock lock(mu_);
    balance_ += amount;
#else
    balance_ += amount;  // BUG: guarded write without mu_ held
#endif
  }

 private:
  flos::Mutex mu_;
  long balance_ FLOS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return 0;
}
