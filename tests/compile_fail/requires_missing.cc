// Negative-compile case: calling a FLOS_REQUIRES(mu) function without
// holding mu must be rejected by clang's -Wthread-safety (promoted to an
// error by -Werror). tests/compile_fail/CMakeLists.txt compiles this file
// twice: as-is it must FAIL, and with -DFLOS_COMPILE_FAIL_FIXED (the
// correctly locked variant) it must SUCCEED — proving the failure comes
// from the capability analysis and not an unrelated build problem.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Ledger {
 public:
  long TotalLocked() const FLOS_REQUIRES(mu_) { return total_; }

  long ReadTotal() const {
#ifdef FLOS_COMPILE_FAIL_FIXED
    flos::MutexLock lock(mu_);
    return TotalLocked();
#else
    return TotalLocked();  // BUG: REQUIRES(mu_) callee, mu_ not held
#endif
  }

 private:
  mutable flos::Mutex mu_;
  long total_ FLOS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Ledger ledger;
  return ledger.ReadTotal() == 0 ? 0 : 1;
}
