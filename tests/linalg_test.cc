// Tests for the linear algebra substrate: CSR matrices, the fixed-point
// solver (paper Algorithm 7), dense and sparse LU, and RCM ordering.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "linalg/csr_matrix.h"
#include "linalg/dense_matrix.h"
#include "linalg/iterative_solver.h"
#include "linalg/lu.h"
#include "linalg/rcm.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace flos {
namespace {

using testing::ValueOrDie;

TEST(CsrMatrixTest, FromTripletsSumsDuplicates) {
  const CsrMatrix m = ValueOrDie(CsrMatrix::FromTriplets(
      2, 3, {{0, 1, 1.0}, {0, 1, 2.0}, {1, 2, 4.0}, {0, 0, 1.0}}));
  EXPECT_EQ(m.NumNonZeros(), 3u);
  std::vector<double> y;
  m.Multiply({1.0, 1.0, 1.0}, &y);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 4.0);  // 1 + 3
  EXPECT_DOUBLE_EQ(y[1], 4.0);
}

TEST(CsrMatrixTest, RejectsOutOfRangeAndNonFinite) {
  EXPECT_FALSE(CsrMatrix::FromTriplets(2, 2, {{2, 0, 1.0}}).ok());
  EXPECT_FALSE(CsrMatrix::FromTriplets(2, 2, {{0, 2, 1.0}}).ok());
  EXPECT_FALSE(
      CsrMatrix::FromTriplets(2, 2, {{0, 0, std::nan("")}}).ok());
}

TEST(CsrMatrixTest, TransposeRoundTrip) {
  const CsrMatrix m = ValueOrDie(CsrMatrix::FromTriplets(
      3, 2, {{0, 1, 5.0}, {2, 0, 3.0}, {1, 1, 2.0}}));
  const CsrMatrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  std::vector<double> y;
  t.Multiply({1.0, 2.0, 3.0}, &y);
  EXPECT_DOUBLE_EQ(y[0], 9.0);   // 3*3
  EXPECT_DOUBLE_EQ(y[1], 9.0);   // 5*1 + 2*2
}

TEST(CsrMatrixTest, InfinityNorm) {
  const CsrMatrix m = ValueOrDie(
      CsrMatrix::FromTriplets(2, 2, {{0, 0, -3.0}, {0, 1, 1.0}, {1, 0, 2.0}}));
  EXPECT_DOUBLE_EQ(m.InfinityNorm(), 4.0);
}

TEST(FixedPointSolveTest, SolvesContractionToTolerance) {
  // x = A x + b with A = [[0, .5], [.25, 0]], b = [1, 1].
  const CsrMatrix a = ValueOrDie(
      CsrMatrix::FromTriplets(2, 2, {{0, 1, 0.5}, {1, 0, 0.25}}));
  std::vector<double> x(2, 0.0);
  const SolveInfo info =
      FixedPointSolve(a, {1.0, 1.0}, 1e-12, 1000, a.InfinityNorm(), &x);
  EXPECT_TRUE(info.converged);
  // Exact: x0 = 1 + .5 x1, x1 = 1 + .25 x0 -> x0 = 12/7, x1 = 10/7.
  EXPECT_NEAR(x[0], 12.0 / 7.0, 1e-10);
  EXPECT_NEAR(x[1], 10.0 / 7.0, 1e-10);
  EXPECT_LT(info.error_bound, 1e-10);
}

TEST(FixedPointSolveTest, WarmStartConvergesFaster) {
  const CsrMatrix a = ValueOrDie(
      CsrMatrix::FromTriplets(2, 2, {{0, 1, 0.5}, {1, 0, 0.25}}));
  std::vector<double> cold(2, 0.0);
  const SolveInfo cold_info =
      FixedPointSolve(a, {1.0, 1.0}, 1e-12, 1000, 0.5, &cold);
  std::vector<double> warm = cold;  // already at the solution
  const SolveInfo warm_info =
      FixedPointSolve(a, {1.0, 1.0}, 1e-12, 1000, 0.5, &warm);
  EXPECT_LT(warm_info.iterations, cold_info.iterations);
}

TEST(DenseLuTest, SolvesRandomSystems) {
  Rng rng(13);
  const uint32_t n = 20;
  DenseMatrix a(n, n);
  std::vector<double> x_true(n);
  for (uint32_t i = 0; i < n; ++i) {
    x_true[i] = rng.NextDouble() * 4 - 2;
    for (uint32_t j = 0; j < n; ++j) {
      a.at(i, j) = rng.NextDouble() - 0.5;
    }
    a.at(i, i) += n;  // diagonally dominant => well-conditioned
  }
  std::vector<double> b;
  a.Multiply(x_true, &b);
  const DenseLu lu = ValueOrDie(DenseLu::Factor(a));
  std::vector<double> x;
  FLOS_ASSERT_OK(lu.Solve(b, &x));
  for (uint32_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(DenseLuTest, DetectsSingular) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 4;
  EXPECT_FALSE(DenseLu::Factor(a).ok());
}

TEST(DenseLuTest, PivotsWhenDiagonalIsZero) {
  DenseMatrix a(2, 2);
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;  // permutation matrix: needs pivoting
  const DenseLu lu = ValueOrDie(DenseLu::Factor(a));
  std::vector<double> x;
  FLOS_ASSERT_OK(lu.Solve({3.0, 7.0}, &x));
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SparseLuTest, MatchesDenseOnRandomWalkSystem) {
  // A = I - 0.5 P for a random graph: strictly diagonally dominant.
  const Graph g = testing::RandomConnectedGraph(40, 100, 3);
  const auto n = static_cast<uint32_t>(g.NumNodes());
  std::vector<Triplet> triplets;
  DenseMatrix dense(n, n);
  for (uint32_t i = 0; i < n; ++i) {
    triplets.push_back({i, i, 1.0});
    dense.at(i, i) = 1.0;
    const auto ids = g.NeighborIds(i);
    const auto ws = g.NeighborWeights(i);
    for (size_t e = 0; e < ids.size(); ++e) {
      const double v = -0.5 * ws[e] / g.WeightedDegree(i);
      triplets.push_back({i, ids[e], v});
      dense.at(i, ids[e]) = v;
    }
  }
  const CsrMatrix a = ValueOrDie(CsrMatrix::FromTriplets(n, n, triplets));
  const SparseLu sparse = ValueOrDie(SparseLu::Factor(a, 1u << 24));
  const DenseLu exact = ValueOrDie(DenseLu::Factor(dense));
  std::vector<double> b(n, 0.0);
  b[0] = 1.0;
  b[7] = -2.0;
  std::vector<double> xs;
  std::vector<double> xd;
  FLOS_ASSERT_OK(sparse.Solve(b, &xs));
  FLOS_ASSERT_OK(exact.Solve(b, &xd));
  for (uint32_t i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
}

TEST(SparseLuTest, RespectsFillBudget) {
  const Graph g = testing::RandomConnectedGraph(60, 400, 4);
  const auto n = static_cast<uint32_t>(g.NumNodes());
  std::vector<Triplet> triplets;
  for (uint32_t i = 0; i < n; ++i) {
    triplets.push_back({i, i, 1.0});
    const auto ids = g.NeighborIds(i);
    const auto ws = g.NeighborWeights(i);
    for (size_t e = 0; e < ids.size(); ++e) {
      triplets.push_back({i, ids[e], -0.4 * ws[e] / g.WeightedDegree(i)});
    }
  }
  const CsrMatrix a = ValueOrDie(CsrMatrix::FromTriplets(n, n, triplets));
  const auto result = SparseLu::Factor(a, /*max_fill_entries=*/10);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(RcmTest, ProducesValidPermutation) {
  const Graph g = testing::RandomConnectedGraph(100, 250, 6);
  const std::vector<NodeId> perm = ReverseCuthillMckee(g);
  ASSERT_EQ(perm.size(), g.NumNodes());
  const std::vector<NodeId> inv = InvertPermutation(perm);
  for (size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(inv[perm[i]], i);
  }
}

TEST(RcmTest, ReducesBandwidthOnAPath) {
  // Path graph labelled in scrambled order; RCM should recover a
  // low-bandwidth (near-path) ordering.
  GraphBuilder builder;
  const NodeId scrambled[] = {4, 9, 1, 7, 0, 5, 8, 2, 6, 3};
  for (int i = 0; i + 1 < 10; ++i) {
    FLOS_ASSERT_OK(builder.AddEdge(scrambled[i], scrambled[i + 1]));
  }
  const Graph g = ValueOrDie(std::move(builder).Build());
  const std::vector<NodeId> perm = ReverseCuthillMckee(g);
  const std::vector<NodeId> inv = InvertPermutation(perm);
  uint32_t bandwidth = 0;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (const NodeId v : g.NeighborIds(u)) {
      const uint32_t d = inv[u] > inv[v] ? inv[u] - inv[v] : inv[v] - inv[u];
      bandwidth = std::max(bandwidth, d);
    }
  }
  EXPECT_EQ(bandwidth, 1u);  // a path has optimal bandwidth 1
}

}  // namespace
}  // namespace flos
