// Scalar-vs-AVX2 sweep-backend parity. The two backends evaluate the same
// monotone fixed-point operator in different row orders (the AVX2 backend
// packs rows into length-sorted ELL blocks), so converged bounds need not
// be bitwise equal — but both must keep the bound sandwich
// lower <= exact <= upper at every node, and at convergence they must
// agree to solver tolerance. End-to-end, a forced-scalar and a
// forced-AVX2 FLoS search must certify the same top-k.

#include <gtest/gtest.h>

#include <vector>

#include "core/flos.h"
#include "core/local_graph.h"
#include "core/sweep_kernel.h"
#include "core/unified_bound_engine.h"
#include "measures/exact.h"
#include "tests/test_util.h"

namespace flos {
namespace {

using testing::RandomConnectedGraph;
using testing::ValueOrDie;

TEST(SweepBackendTest, KindResolutionAndNames) {
  EXPECT_STREQ(SweepBackendKindName(SweepBackendKind::kScalar), "scalar");
  EXPECT_STREQ(SweepBackendKindName(SweepBackendKind::kAvx2), "avx2");
  const SweepBackendKind resolved =
      ResolveSweepBackendKind(SweepBackendKind::kAuto);
  EXPECT_NE(resolved, SweepBackendKind::kAuto);
  if (!Avx2SweepAvailable()) {
    EXPECT_EQ(ResolveSweepBackendKind(SweepBackendKind::kAvx2),
              SweepBackendKind::kScalar)
        << "requesting AVX2 without hardware support must fall back";
  }
}

// Grows the same ball with one engine per backend and checks, after every
// growth round, that both keep the sandwich around the exact PHP values
// and that their converged bounds agree within a loose numerical band.
TEST(SweepBackendTest, ScalarAndAvx2KeepTheSameBoundSandwich) {
  if (!Avx2SweepAvailable()) GTEST_SKIP() << "no AVX2 on this machine";
  const Graph graph = RandomConnectedGraph(400, 1600, 17);
  const NodeId query = 9;
  const double c = 0.5;
  const std::vector<double> exact = ValueOrDie(ExactPhp(graph, query, c));

  InMemoryAccessor accessor(&graph);
  LocalGraph local_scalar(&accessor);
  LocalGraph local_avx2(&accessor);
  FLOS_ASSERT_OK(local_scalar.Init(query));
  FLOS_ASSERT_OK(local_avx2.Init(query));

  UnifiedBoundOptions be;
  be.traits = BoundTraitsFor(Measure::kPhp, c, 10);
  be.tolerance = 1e-10;
  be.backend = SweepBackendKind::kScalar;
  UnifiedBoundEngine scalar(&local_scalar, be);
  be.backend = SweepBackendKind::kAvx2;
  UnifiedBoundEngine avx2(&local_avx2, be);

  for (int round = 0; round < 6; ++round) {
    // Expand every boundary node: identical growth on both locals.
    std::vector<LocalId> ring;
    for (LocalId i = 0; i < local_scalar.Size(); ++i) {
      if (local_scalar.IsBoundary(i)) ring.push_back(i);
    }
    if (ring.empty()) break;
    // Dummy capture refers to the boundary BEFORE the expansion.
    scalar.CaptureDummyFromBoundary();
    avx2.CaptureDummyFromBoundary();
    for (const LocalId u : ring) {
      ValueOrDie(local_scalar.Expand(u));
      ValueOrDie(local_avx2.Expand(u));
    }
    ASSERT_EQ(local_scalar.Size(), local_avx2.Size());
    scalar.OnGrowth();
    avx2.OnGrowth();
    scalar.UpdateBounds();
    avx2.UpdateBounds();

    for (LocalId i = 0; i < local_scalar.Size(); ++i) {
      const double exact_i = exact[local_scalar.GlobalId(i)];
      ASSERT_LE(scalar.lower(i), scalar.upper(i)) << "scalar sandwich";
      ASSERT_LE(avx2.lower(i), avx2.upper(i)) << "avx2 sandwich";
      ASSERT_LE(scalar.lower(i), exact_i + 1e-9)
          << "scalar lower not rigorous at local " << i;
      ASSERT_GE(scalar.upper(i), exact_i - 1e-9)
          << "scalar upper not rigorous at local " << i;
      ASSERT_LE(avx2.lower(i), exact_i + 1e-9)
          << "avx2 lower not rigorous at local " << i;
      ASSERT_GE(avx2.upper(i), exact_i - 1e-9)
          << "avx2 upper not rigorous at local " << i;
      // Same operator, same tolerance: converged values agree far beyond
      // the certification band even though the row order differs.
      ASSERT_NEAR(scalar.lower(i), avx2.lower(i), 1e-6)
          << "backends diverged (lower) at local " << i;
      ASSERT_NEAR(scalar.upper(i), avx2.upper(i), 1e-6)
          << "backends diverged (upper) at local " << i;
    }
  }
}

// End-to-end: forcing either backend yields the same certified answer for
// every fixed-point measure (THT runs the DP and ignores the seam, but is
// included to pin that forcing a backend never breaks it).
TEST(SweepBackendTest, ForcedBackendsCertifyTheSameTopK) {
  if (!Avx2SweepAvailable()) GTEST_SKIP() << "no AVX2 on this machine";
  const Graph graph = RandomConnectedGraph(500, 2000, 29);
  for (const Measure measure : {Measure::kPhp, Measure::kEi, Measure::kDht,
                                Measure::kTht, Measure::kRwr}) {
    FlosOptions options;
    options.measure = measure;
    options.sweep_backend = SweepBackendKind::kScalar;
    const FlosResult scalar = ValueOrDie(FlosTopK(graph, 21, 10, options));
    options.sweep_backend = SweepBackendKind::kAvx2;
    const FlosResult avx2 = ValueOrDie(FlosTopK(graph, 21, 10, options));
    ASSERT_TRUE(scalar.stats.exact) << MeasureName(measure);
    ASSERT_TRUE(avx2.stats.exact) << MeasureName(measure);
    ASSERT_EQ(scalar.topk.size(), avx2.topk.size()) << MeasureName(measure);
    for (size_t i = 0; i < scalar.topk.size(); ++i) {
      EXPECT_EQ(scalar.topk[i].node, avx2.topk[i].node)
          << MeasureName(measure) << " rank " << i;
      EXPECT_NEAR(scalar.topk[i].score, avx2.topk[i].score, 1e-8)
          << MeasureName(measure) << " rank " << i;
    }
  }
}

}  // namespace
}  // namespace flos
