// Property tests for Section 3: the no-local-optimum property (Table 2),
// the ranking equivalences of Theorem 2, and the RWR-PHP relationship of
// Theorem 6.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "measures/exact.h"
#include "measures/measure.h"
#include "measures/transforms.h"
#include "tests/test_util.h"

namespace flos {
namespace {

using testing::RandomConnectedGraph;
using testing::ValueOrDie;

// Returns true iff some non-query node has no strictly closer neighbor.
bool HasLocalOptimum(const Graph& g, const std::vector<double>& r, NodeId q,
                     Direction dir, double tie_tol = 1e-11) {
  for (NodeId i = 0; i < g.NumNodes(); ++i) {
    if (i == q || g.Degree(i) == 0) continue;
    bool has_closer = false;
    for (const NodeId j : g.NeighborIds(i)) {
      const double margin = dir == Direction::kMaximize ? r[j] - r[i]
                                                        : r[i] - r[j];
      if (margin > tie_tol) {
        has_closer = true;
        break;
      }
    }
    if (!has_closer) return true;
  }
  return false;
}

class NoLocalOptimumTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NoLocalOptimumTest, Table2HoldsOnRandomGraphs) {
  const uint64_t seed = GetParam();
  const Graph g = RandomConnectedGraph(120, 360, seed);
  const NodeId q = static_cast<NodeId>(seed % g.NumNodes());
  ExactSolveOptions tight;
  tight.tolerance = 1e-13;
  // PHP: no local maximum (Lemma 1).
  EXPECT_FALSE(HasLocalOptimum(g, ValueOrDie(ExactPhp(g, q, 0.5, tight)), q,
                               Direction::kMaximize));
  // EI: no local maximum (Lemma 5).
  EXPECT_FALSE(HasLocalOptimum(g, ValueOrDie(ExactEi(g, q, 0.5, tight)), q,
                               Direction::kMaximize));
  // DHT: no local minimum (Lemma 6).
  EXPECT_FALSE(HasLocalOptimum(g, ValueOrDie(ExactDht(g, q, 0.5, tight)), q,
                               Direction::kMinimize));
}

TEST_P(NoLocalOptimumTest, ThtHasNoLocalMinimumWithinLHops) {
  const uint64_t seed = GetParam();
  const Graph g = RandomConnectedGraph(120, 360, seed);
  const NodeId q = static_cast<NodeId>((seed * 13) % g.NumNodes());
  const int length = 10;
  const std::vector<double> r = ValueOrDie(ExactTht(g, q, length));
  // Lemma 7 applies to nodes with value < L (those within L hops).
  for (NodeId i = 0; i < g.NumNodes(); ++i) {
    if (i == q || r[i] >= length - 1e-9) continue;
    bool has_closer = false;
    for (const NodeId j : g.NeighborIds(i)) {
      if (r[j] < r[i] - 1e-11) {
        has_closer = true;
        break;
      }
    }
    EXPECT_TRUE(has_closer) << "THT local minimum at node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoLocalOptimumTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(LocalOptimumTest, RwrHasLocalMaxima) {
  // Lemma 8: RWR has local maxima. Deterministic counterexample: a path
  // q - a - b - hub where the hub carries many leaves. RWR(i) is
  // proportional to w_i * PHP(i) (Theorem 6); with a small restart
  // probability (c = 0.1, decay 0.9) the hub's degree factor overwhelms
  // its neighbors' larger PHP values: w_h PHP_h ~ alpha/(1-alpha^2) PHP_b
  // ~ 4.7 PHP_b > w_b PHP_b = 2 PHP_b.
  GraphBuilder builder;
  FLOS_ASSERT_OK(builder.AddEdge(0, 1));  // q - a
  FLOS_ASSERT_OK(builder.AddEdge(1, 2));  // a - b
  FLOS_ASSERT_OK(builder.AddEdge(2, 3));  // b - hub
  for (NodeId leaf = 4; leaf < 24; ++leaf) {
    FLOS_ASSERT_OK(builder.AddEdge(3, leaf));
  }
  const Graph g = ValueOrDie(std::move(builder).Build());
  const std::vector<double> r = ValueOrDie(ExactRwr(g, 0, 0.1));
  // The hub beats all of its neighbors: a local maximum.
  for (const NodeId nb : g.NeighborIds(3)) {
    EXPECT_GT(r[3], r[nb]) << "hub should dominate neighbor " << nb;
  }
  EXPECT_TRUE(HasLocalOptimum(g, r, 0, Direction::kMaximize));
}

std::vector<NodeId> RankAll(const std::vector<double>& scores, NodeId q,
                            Direction dir) {
  std::vector<NodeId> ids;
  for (NodeId i = 0; i < scores.size(); ++i) {
    if (i != q) ids.push_back(i);
  }
  std::sort(ids.begin(), ids.end(), [&](NodeId a, NodeId b) {
    if (scores[a] != scores[b]) return IsCloser(dir, scores[a], scores[b]);
    return a < b;
  });
  return ids;
}

TEST(Theorem2Test, PhpEiDhtGiveTheSameRanking) {
  // Matching parameters: PHP decay (1-c) vs EI restart c vs DHT decay c.
  const double c = 0.3;
  const Graph g = RandomConnectedGraph(100, 300, 17);
  const NodeId q = 11;
  ExactSolveOptions tight;
  tight.tolerance = 1e-13;
  const auto php = ValueOrDie(ExactPhp(g, q, 1.0 - c, tight));
  const auto ei = ValueOrDie(ExactEi(g, q, c, tight));
  const auto dht = ValueOrDie(ExactDht(g, q, c, tight));
  const auto rank_php = RankAll(php, q, Direction::kMaximize);
  const auto rank_ei = RankAll(ei, q, Direction::kMaximize);
  const auto rank_dht = RankAll(dht, q, Direction::kMinimize);
  EXPECT_EQ(rank_php, rank_ei);
  EXPECT_EQ(rank_php, rank_dht);
}

TEST(Theorem2Test, DhtIsAffineInPhp) {
  // PHP(i) = 1 - c * DHT(i) with PHP decay (1-c), DHT decay c.
  const double c = 0.4;
  const Graph g = RandomConnectedGraph(80, 240, 23);
  const NodeId q = 5;
  ExactSolveOptions tight;
  tight.tolerance = 1e-13;
  const auto php = ValueOrDie(ExactPhp(g, q, 1.0 - c, tight));
  const auto dht = ValueOrDie(ExactDht(g, q, c, tight));
  for (NodeId i = 0; i < g.NumNodes(); ++i) {
    EXPECT_NEAR(php[i], PhpFromDht(dht[i], c), 1e-8);
    EXPECT_NEAR(dht[i], DhtFromPhp(php[i], c), 1e-8);
  }
}

TEST(Theorem6Test, RwrIsDegreeWeightedPhp) {
  // RWR(i) = RWR(q)/w_q * w_i * PHP(i) with PHP decay (1-c).
  const double c = 0.5;
  const Graph g = RandomConnectedGraph(90, 270, 31);
  const NodeId q = 7;
  ExactSolveOptions tight;
  tight.tolerance = 1e-13;
  const auto php = ValueOrDie(ExactPhp(g, q, 1.0 - c, tight));
  const auto rwr = ValueOrDie(ExactRwr(g, q, c, tight));
  const double key = rwr[q] / g.WeightedDegree(q);
  for (NodeId i = 0; i < g.NumNodes(); ++i) {
    EXPECT_NEAR(rwr[i], key * g.WeightedDegree(i) * php[i], 1e-8);
  }
}

TEST(Theorem6Test, RwrScaleFromPhpRecoversTheConstant) {
  const double c = 0.5;
  const Graph g = RandomConnectedGraph(90, 270, 37);
  const NodeId q = 2;
  ExactSolveOptions tight;
  tight.tolerance = 1e-13;
  const auto php = ValueOrDie(ExactPhp(g, q, 1.0 - c, tight));
  const auto rwr = ValueOrDie(ExactRwr(g, q, c, tight));
  std::vector<double> php_neighbors;
  for (const NodeId j : g.NeighborIds(q)) php_neighbors.push_back(php[j]);
  const double k = ValueOrDie(RwrScaleFromPhp(g, q, c, php_neighbors));
  EXPECT_NEAR(k, rwr[q] / g.WeightedDegree(q), 1e-8);
}

TEST(Theorem6Test, ScaleRejectsBadInput) {
  const Graph g = RandomConnectedGraph(20, 30, 1);
  EXPECT_FALSE(RwrScaleFromPhp(g, 99, 0.5, {}).ok());
  EXPECT_FALSE(RwrScaleFromPhp(g, 0, 0.5, {}).ok());  // neighbor count mismatch
}

}  // namespace
}  // namespace flos
