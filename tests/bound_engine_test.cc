// Direct tests of the unified bound engine's fixed-point internals: the
// dual-dummy upper construction, the tightened dummy values, frontier
// uppers, and the equivalence of batched and single-node expansion
// schedules.

#include "core/unified_bound_engine.h"

#include <gtest/gtest.h>

#include "core/flos.h"
#include "core/local_graph.h"
#include "graph/accessor.h"
#include "measures/exact.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace flos {
namespace {

using testing::RandomConnectedGraph;
using testing::ValueOrDie;

struct EngineHarness {
  explicit EngineHarness(const Graph* g, NodeId query,
                         const UnifiedBoundOptions& be)
      : accessor(g), local(&accessor) {
    FLOS_EXPECT_OK(local.Init(query));
    engine = std::make_unique<UnifiedBoundEngine>(&local, be);
  }

  // Expands the best-midpoint boundary node once; returns false when
  // exhausted.
  bool Step() {
    LocalId best = kInvalidLocal;
    double best_mid = -1;
    for (LocalId i = 0; i < local.Size(); ++i) {
      if (!local.IsBoundary(i)) continue;
      const double mid = 0.5 * (engine->lower(i) + engine->upper(i));
      if (mid > best_mid) {
        best = i;
        best_mid = mid;
      }
    }
    if (best == kInvalidLocal) return false;
    engine->CaptureDummyFromBoundary();
    EXPECT_TRUE(local.Expand(best).ok());
    engine->OnGrowth();
    engine->UpdateBounds();
    return true;
  }

  InMemoryAccessor accessor;
  LocalGraph local;
  std::unique_ptr<UnifiedBoundEngine> engine;
};

class DualDummyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DualDummyTest, UppersNeverCrossExactWithAllTighteningsOn) {
  const uint64_t seed = GetParam();
  const Graph g = RandomConnectedGraph(180, 540, seed);
  const NodeId q = static_cast<NodeId>(seed % g.NumNodes());
  const double alpha = 0.5;
  ExactSolveOptions tight;
  tight.tolerance = 1e-13;
  const auto exact = ValueOrDie(ExactPhp(g, q, alpha, tight));

  UnifiedBoundOptions be;
  be.traits.alpha = alpha;
  be.tolerance = 1e-9;
  be.self_loop_tightening = true;
  be.alpha_dummy_tightening = true;
  be.traits.frontier_dummy = true;  // all tightenings at once
  EngineHarness h(&g, q, be);
  int steps = 0;
  while (h.Step() && steps++ < 500) {
    for (LocalId i = 0; i < h.local.Size(); ++i) {
      const double truth = exact[h.local.GlobalId(i)];
      ASSERT_GE(h.engine->upper(i), truth - 1e-9)
          << "upper crossed exact at node " << h.local.GlobalId(i);
      ASSERT_LE(h.engine->lower(i), truth + 1e-9);
    }
    // The tight dummy must dominate every unvisited exact proximity.
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (h.local.Contains(v)) continue;
      ASSERT_GE(h.engine->tight_dummy_value(), exact[v] - 1e-9)
          << "tight dummy below unvisited node " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualDummyTest, ::testing::Values(1, 2, 3, 4));

TEST(BoundEngineTest, TightDummyIsNoLooserThanMeshDummy) {
  const Graph g = RandomConnectedGraph(150, 450, 9);
  UnifiedBoundOptions be;
  be.traits.alpha = 0.5;
  be.traits.frontier_dummy = true;
  EngineHarness h(&g, 3, be);
  for (int step = 0; step < 30 && h.Step(); ++step) {
    EXPECT_LE(h.engine->tight_dummy_value(),
              h.engine->dummy_value() + 1e-15);
  }
}

TEST(BoundEngineTest, FrontierUppersDominateUnvisitedExact) {
  const Graph g = RandomConnectedGraph(150, 450, 21);
  const NodeId q = 5;
  ExactSolveOptions tight;
  tight.tolerance = 1e-13;
  const auto exact = ValueOrDie(ExactPhp(g, q, 0.5, tight));
  UnifiedBoundOptions be;
  be.traits.alpha = 0.5;
  EngineHarness h(&g, q, be);
  for (int step = 0; step < 25 && h.Step(); ++step) {
    const auto out = h.engine->ComputeOutsideUppers();
    if (!out.any) break;
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (h.local.Contains(v)) continue;
      ASSERT_GE(out.max_value, exact[v] - 1e-9)
          << "frontier max below unvisited node " << v;
    }
  }
}

TEST(BoundEngineTest, PaperDummyRuleWhenTighteningOff) {
  // With alpha_dummy_tightening off, the dummy follows Algorithm 5 line 7
  // verbatim: max upper over the previous boundary, non-increasing.
  const Graph g = RandomConnectedGraph(100, 300, 2);
  UnifiedBoundOptions be;
  be.traits.alpha = 0.5;
  be.alpha_dummy_tightening = false;
  EngineHarness h(&g, 0, be);
  double prev = 1.0;
  for (int step = 0; step < 20 && h.Step(); ++step) {
    EXPECT_LE(h.engine->dummy_value(), prev + 1e-15);
    EXPECT_DOUBLE_EQ(h.engine->tight_dummy_value(), h.engine->dummy_value());
    prev = h.engine->dummy_value();
  }
}

TEST(ExpansionScheduleTest, BatchedAndSingleNodeSchedulesAgree) {
  // Exactness must not depend on the expansion schedule; only visited
  // counts may differ (batching can overshoot).
  const Graph g = RandomConnectedGraph(500, 1500, 77);
  MeasureParams params;
  for (const Measure m : {Measure::kPhp, Measure::kRwr}) {
    const auto exact = ValueOrDie(ExactMeasure(g, 11, m, params));
    FlosOptions single;
    single.measure = m;
    single.expansion_batch = 1;  // the paper's Algorithm 2
    FlosOptions batched;
    batched.measure = m;
    batched.expansion_batch = 0;  // adaptive default
    const FlosResult rs = ValueOrDie(FlosTopK(g, 11, 10, single));
    const FlosResult rb = ValueOrDie(FlosTopK(g, 11, 10, batched));
    EXPECT_TRUE(rs.stats.exact);
    EXPECT_TRUE(rb.stats.exact);
    std::vector<NodeId> ns;
    std::vector<NodeId> nb;
    for (const auto& s : rs.topk) ns.push_back(s.node);
    for (const auto& s : rb.topk) nb.push_back(s.node);
    testing::ExpectTopKMatchesScores(ns, exact, 11, 10, MeasureDirection(m));
    testing::ExpectTopKMatchesScores(nb, exact, 11, 10, MeasureDirection(m));
    EXPECT_GE(rb.stats.visited_nodes, rs.stats.visited_nodes / 2)
        << "sanity: both schedules explore comparable regions";
  }
}

TEST(ExpansionScheduleTest, FixedBatchRespected) {
  const Graph g = RandomConnectedGraph(300, 900, 13);
  FlosOptions options;
  options.expansion_batch = 3;
  const FlosResult r = ValueOrDie(FlosTopK(g, 2, 5, options));
  EXPECT_TRUE(r.stats.exact);
  EXPECT_GT(r.stats.expansions, 0u);
}

}  // namespace
}  // namespace flos
